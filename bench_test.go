// Benchmarks regenerating the paper's evaluation: one benchmark per figure
// (the paper's evaluation section is entirely figures; it has no numbered
// tables). Each BenchmarkFigN measures one full regeneration of that
// figure's experiment on the simulated clusters, and reports the headline
// metric the paper quotes as a custom unit so shapes can be compared at a
// glance:
//
//	go test -bench=Fig -benchmem
//
// Micro-benchmarks for the core pipeline stages (parse, plan, correlation
// analysis, translation, engine execution) follow the figure benchmarks.
package ysmart_test

import (
	"sync"
	"testing"

	"ysmart"
	"ysmart/internal/experiments"
)

var (
	benchOnce sync.Once
	benchW    *experiments.Workload
	benchErr  error
)

func benchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	benchOnce.Do(func() { benchW, benchErr = experiments.NewWorkload() })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchW
}

// BenchmarkFig2b regenerates Fig. 2(b): Hive vs hand-coded MapReduce on
// Q-AGG and Q-CSA (paper: hand-coded ~3x faster on Q-CSA, equal on Q-AGG).
func BenchmarkFig2b(b *testing.B) {
	w := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2b(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Runs[2].Total/r.Runs[3].Total, "csa-hand-speedup")
	}
}

// BenchmarkFig9 regenerates Fig. 9: the Q21 correlation ablation
// (paper: 1140s / 773s / 561s / 479s).
func BenchmarkFig9(b *testing.B) {
	w := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OneToOne.Total/r.YSmart.Total, "ysmart-speedup")
		b.ReportMetric(r.OneToOne.Total/r.ICTC.Total, "ictc-speedup")
	}
}

// BenchmarkFig10 regenerates Fig. 10: the four-system small-cluster
// comparison (paper: YSmart 1.9-2.7x over Hive).
func BenchmarkFig10(b *testing.B) {
	w := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(w)
		if err != nil {
			b.Fatal(err)
		}
		var worst = 99.0
		for _, row := range r.Rows {
			if s := row.Hive.Total / row.YSmart.Total; s < worst {
				worst = s
			}
		}
		b.ReportMetric(worst, "min-speedup")
	}
}

// BenchmarkFig11 regenerates Fig. 11: EC2 scaling and compression
// (paper: near-linear scaling; compression degrades everything).
func BenchmarkFig11(b *testing.B) {
	w := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.QCSA.Hive.Total/r.QCSA.YSmart.Total, "csa-speedup")
	}
}

// BenchmarkFig12 regenerates Fig. 12: six concurrent Q17 instances on the
// busy production-cluster model (paper: 230-310% speedup).
func BenchmarkFig12(b *testing.B) {
	w := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(w)
		if err != nil {
			b.Fatal(err)
		}
		var ys, hive float64
		for j := 0; j < 3; j++ {
			ys += r.YSmart[j].Total
			hive += r.Hive[j].Total
		}
		b.ReportMetric(hive/ys, "avg-speedup")
	}
}

// BenchmarkFig13 regenerates Fig. 13: Q18 and Q21 averages on the busy
// cluster (paper: 298% and 336%).
func BenchmarkFig13(b *testing.B) {
	w := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup[0], "q18-speedup")
		b.ReportMetric(r.Speedup[1], "q21-speedup")
	}
}

// ----- Core pipeline micro-benchmarks ---------------------------------------

// BenchmarkParseQCSA measures parsing the most deeply nested workload query.
func BenchmarkParseQCSA(b *testing.B) {
	sql := ysmart.WorkloadQueries()["Q-CSA"]
	cat := ysmart.WorkloadCatalog()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ysmart.Parse(sql, cat); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranslateQ21 measures the full analyze+merge+lower pipeline for
// the query with the most merging.
func BenchmarkTranslateQ21(b *testing.B) {
	q, err := ysmart.Parse(ysmart.WorkloadQueries()["Q21"], ysmart.WorkloadCatalog())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := q.Translate(ysmart.YSmart, ysmart.Options{QueryName: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineQAGG measures end-to-end engine execution of the simple
// aggregation on the default click data.
func BenchmarkEngineQAGG(b *testing.B) {
	q, err := ysmart.Parse(ysmart.WorkloadQueries()["Q-AGG"], ysmart.WorkloadCatalog())
	if err != nil {
		b.Fatal(err)
	}
	tr, err := q.Translate(ysmart.YSmart, ysmart.Options{QueryName: "bench-qagg"})
	if err != nil {
		b.Fatal(err)
	}
	clicks, err := ysmart.GenerateClicks(ysmart.DefaultClicks())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, err := ysmart.NewRuntime(ysmart.SmallCluster())
		if err != nil {
			b.Fatal(err)
		}
		rt.LoadTables(clicks)
		if _, err := rt.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOracleQ21 measures the pipelined DBMS executor on the most
// complex query.
func BenchmarkOracleQ21(b *testing.B) {
	cat := ysmart.WorkloadCatalog()
	q, err := ysmart.Parse(ysmart.WorkloadQueries()["Q21"], cat)
	if err != nil {
		b.Fatal(err)
	}
	tpch, err := ysmart.GenerateTPCH(ysmart.DefaultTPCH())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ysmart.OracleResult(q, cat, tpch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations measures the design-choice ablation suite (DESIGN.md):
// shared scan off, combiner off, partition-key heuristic off.
func BenchmarkAblations(b *testing.B) {
	w := benchWorkload(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(w)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Time <= row.BaseTime {
				b.Fatalf("%s: ablation did not cost time", row.Name)
			}
		}
		b.ReportMetric(r.Rows[0].Time/r.Rows[0].BaseTime, "noshare-slowdown")
	}
}
