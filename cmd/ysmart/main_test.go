package main

import (
	"os"
	"strings"
	"testing"

	"ysmart"
)

func TestParseMode(t *testing.T) {
	tests := []struct {
		in   string
		want ysmart.Mode
	}{
		{"ysmart", ysmart.YSmart},
		{"one-to-one", ysmart.OneToOne},
		{"hive", ysmart.OneToOne},
		{"pig-like", ysmart.PigLike},
		{"pig", ysmart.PigLike},
		{"ic-tc-only", ysmart.ICTCOnly},
		{"ictc", ysmart.ICTCOnly},
	}
	for _, tt := range tests {
		got, err := parseMode(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("parseMode(%q) = (%v, %v), want %v", tt.in, got, err, tt.want)
		}
	}
	if _, err := parseMode("nope"); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestParseCluster(t *testing.T) {
	for _, name := range []string{"small", "ec2-11", "ec2-101", "facebook"} {
		c, err := parseCluster(name)
		if err != nil || c == nil {
			t.Errorf("parseCluster(%q) = (%v, %v)", name, c, err)
		}
	}
	if _, err := parseCluster("nope"); err == nil {
		t.Error("unknown cluster should error")
	}
}

func TestRunExplainAllQueries(t *testing.T) {
	for name := range ysmart.WorkloadQueries() {
		for _, mode := range []string{"ysmart", "one-to-one", "ic-tc-only", "pig-like"} {
			if err := run([]string{"-query", name, "-mode", mode, "-explain"}); err != nil {
				t.Errorf("explain %s (%s): %v", name, mode, err)
			}
		}
	}
}

func TestRunExecutesQuery(t *testing.T) {
	if err := run([]string{"-query", "Q-AGG", "-run", "-max-rows", "3"}); err != nil {
		t.Fatalf("run Q-AGG: %v", err)
	}
	if err := run([]string{"-sql", "SELECT uid FROM clicks WHERE cid = 1", "-run"}); err != nil {
		t.Fatalf("run ad-hoc SQL: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{},                              // neither -query nor -sql
		{"-query", "NOPE"},              // unknown query
		{"-query", "Q17", "-mode", "x"}, // unknown mode
		{"-query", "Q17", "-run", "-cluster", "x"}, // unknown cluster
		{"-sql", "NOT SQL"},                        // parse failure
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunErrorMessagesHelpful(t *testing.T) {
	err := run([]string{"-query", "NOPE"})
	if err == nil || !strings.Contains(err.Error(), "Q-CSA") {
		t.Errorf("unknown-query error should list options: %v", err)
	}
}

func TestRunDOT(t *testing.T) {
	if err := run([]string{"-query", "Q21", "-dot"}); err != nil {
		t.Fatalf("dot: %v", err)
	}
}

func TestRunWithDataDir(t *testing.T) {
	// Generate a small data set to a temp dir through the public API, then
	// run a query against it via -data.
	dir := t.TempDir()
	clicks, err := ysmart.GenerateClicks(ysmart.ClickConfig{Users: 5, ClicksPerUser: 4, Categories: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, line := range ysmart.EncodeTable(clicks["clicks"]) {
		sb.WriteString(line + "\n")
	}
	if err := os.WriteFile(dir+"/clicks.tsv", []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-query", "Q-AGG", "-run", "-data", dir}); err != nil {
		t.Fatalf("run with -data: %v", err)
	}
	if err := run([]string{"-query", "Q-AGG", "-run", "-data", t.TempDir()}); err == nil {
		t.Error("empty data dir should error")
	}
}
