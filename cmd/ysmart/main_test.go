package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"ysmart"
)

func TestParseMode(t *testing.T) {
	tests := []struct {
		in   string
		want ysmart.Mode
	}{
		{"ysmart", ysmart.YSmart},
		{"one-to-one", ysmart.OneToOne},
		{"hive", ysmart.OneToOne},
		{"pig-like", ysmart.PigLike},
		{"pig", ysmart.PigLike},
		{"ic-tc-only", ysmart.ICTCOnly},
		{"ictc", ysmart.ICTCOnly},
	}
	for _, tt := range tests {
		got, err := parseMode(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("parseMode(%q) = (%v, %v), want %v", tt.in, got, err, tt.want)
		}
	}
	if _, err := parseMode("nope"); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestParseCluster(t *testing.T) {
	for _, name := range []string{"small", "ec2-11", "ec2-101", "facebook"} {
		c, err := parseCluster(name)
		if err != nil || c == nil {
			t.Errorf("parseCluster(%q) = (%v, %v)", name, c, err)
		}
	}
	if _, err := parseCluster("nope"); err == nil {
		t.Error("unknown cluster should error")
	}
}

func TestRunExplainAllQueries(t *testing.T) {
	for name := range ysmart.WorkloadQueries() {
		for _, mode := range []string{"ysmart", "one-to-one", "ic-tc-only", "pig-like"} {
			if err := run([]string{"-query", name, "-mode", mode, "-explain"}); err != nil {
				t.Errorf("explain %s (%s): %v", name, mode, err)
			}
		}
	}
}

func TestRunExecutesQuery(t *testing.T) {
	if err := run([]string{"-query", "Q-AGG", "-run", "-max-rows", "3"}); err != nil {
		t.Fatalf("run Q-AGG: %v", err)
	}
	if err := run([]string{"-sql", "SELECT uid FROM clicks WHERE cid = 1", "-run"}); err != nil {
		t.Fatalf("run ad-hoc SQL: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{},                              // neither -query nor -sql
		{"-query", "NOPE"},              // unknown query
		{"-query", "Q17", "-mode", "x"}, // unknown mode
		{"-query", "Q17", "-run", "-cluster", "x"}, // unknown cluster
		{"-sql", "NOT SQL"},                        // parse failure
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunErrorMessagesHelpful(t *testing.T) {
	err := run([]string{"-query", "NOPE"})
	if err == nil || !strings.Contains(err.Error(), "Q-CSA") {
		t.Errorf("unknown-query error should list options: %v", err)
	}
}

func TestRunDOT(t *testing.T) {
	if err := run([]string{"-query", "Q21", "-dot"}); err != nil {
		t.Fatalf("dot: %v", err)
	}
}

func TestRunWithDataDir(t *testing.T) {
	// Generate a small data set to a temp dir through the public API, then
	// run a query against it via -data.
	dir := t.TempDir()
	clicks, err := ysmart.GenerateClicks(ysmart.ClickConfig{Users: 5, ClicksPerUser: 4, Categories: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, line := range ysmart.EncodeTable(clicks["clicks"]) {
		sb.WriteString(line + "\n")
	}
	if err := os.WriteFile(dir+"/clicks.tsv", []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-query", "Q-AGG", "-run", "-data", dir}); err != nil {
		t.Fatalf("run with -data: %v", err)
	}
	if err := run([]string{"-query", "Q-AGG", "-run", "-data", t.TempDir()}); err == nil {
		t.Error("empty data dir should error")
	}
}

// TestRunTraceOutput is the acceptance test for -trace: the file must be
// valid Chrome trace-event JSON with job spans enclosing phase spans
// enclosing wave spans, and two runs must produce identical bytes.
func TestRunTraceOutput(t *testing.T) {
	trace := func() []byte {
		path := t.TempDir() + "/trace.json"
		if err := run([]string{"-query", "Q21", "-run", "-trace", path}); err != nil {
			t.Fatalf("run -trace: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	data := trace()

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	type span struct {
		name       string
		start, end float64
		tid        int
	}
	spans := map[string][]span{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans[ev.Cat] = append(spans[ev.Cat], span{ev.Name, ev.Ts, ev.Ts + ev.Dur, ev.Tid})
		}
	}
	if len(spans["job"]) == 0 || len(spans["phase"]) == 0 || len(spans["wave"]) == 0 {
		t.Fatalf("missing spans: %d job, %d phase, %d wave",
			len(spans["job"]), len(spans["phase"]), len(spans["wave"]))
	}
	// Containment with a microsecond of slack for the µs rounding in export.
	within := func(outer, inner span) bool {
		return outer.tid == inner.tid && outer.start <= inner.start+1 && outer.end+1 >= inner.end
	}
	enclosed := func(inner span, outers []span) bool {
		for _, o := range outers {
			if within(o, inner) {
				return true
			}
		}
		return false
	}
	for _, ph := range spans["phase"] {
		if !enclosed(ph, spans["job"]) {
			t.Errorf("phase %q [%f,%f] tid %d not inside any job span", ph.name, ph.start, ph.end, ph.tid)
		}
	}
	for _, wv := range spans["wave"] {
		if !enclosed(wv, spans["phase"]) {
			t.Errorf("wave %q [%f,%f] tid %d not inside any phase span", wv.name, wv.start, wv.end, wv.tid)
		}
	}

	if again := trace(); !bytes.Equal(data, again) {
		t.Error("two traced runs wrote different bytes")
	}
}

// TestRunFaultFlags exercises the fault-injection flags end to end: a
// scenario with task failures, stragglers and a node death must execute,
// render a timeline, and reject malformed specs.
func TestRunFaultFlags(t *testing.T) {
	args := []string{"-query", "Q-AGG", "-cluster", "ec2-11", "-faults", "task=0.3,straggler=0.2x6,node=0@13", "-fault-seed", "2", "-speculate", "-timeline"}
	if err := run(args); err != nil {
		t.Fatalf("fault run: %v", err)
	}
	// Killing the small cluster's only node must fail loudly, not hang or
	// silently drop work.
	if err := run([]string{"-query", "Q-AGG", "-faults", "node=0@13"}); err == nil ||
		!strings.Contains(err.Error(), "no surviving nodes") {
		t.Errorf("total cluster loss err = %v, want 'no surviving nodes'", err)
	}
	if err := run([]string{"-query", "Q-AGG", "-faults", "task=nope"}); err == nil {
		t.Error("malformed fault spec should error")
	}
	if err := run([]string{"-query", "Q-AGG", "-faults", "node=99@10"}); err == nil {
		t.Error("out-of-range node should fail cluster validation")
	}
}

// TestRunAdminPlaneAndLog brings up -listen on an ephemeral port, probes
// every admin endpoint while the server is live (from inside the stubbed
// interrupt wait), and checks the -log event stream is valid JSON carrying
// translator and engine lifecycle events.
func TestRunAdminPlaneAndLog(t *testing.T) {
	logPath := t.TempDir() + "/events.jsonl"
	origWait := waitInterrupt
	defer func() { waitInterrupt = origWait }()
	probeErr := make(chan error, 1)
	waitInterrupt = func() {
		probeErr <- func() error {
			base := "http://" + lastAdminAddr
			for _, path := range []string{"/metrics", "/trace", "/jobs", "/debug/pprof/"} {
				resp, err := http.Get(base + path)
				if err != nil {
					return err
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					return err
				}
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
				}
				switch path {
				case "/metrics":
					for _, want := range []string{
						"ysmart_job_map_seconds_bucket",
						"ysmart_chain_sim_seconds_sum",
						"ysmart_chain_sim_seconds_count",
					} {
						if !strings.Contains(string(body), want) {
							return fmt.Errorf("GET /metrics missing %s:\n%s", want, body)
						}
					}
				case "/jobs":
					var jobs []map[string]any
					if err := json.Unmarshal(body, &jobs); err != nil {
						return fmt.Errorf("GET /jobs not a JSON array: %v", err)
					}
					if len(jobs) == 0 {
						return fmt.Errorf("GET /jobs returned no job stats")
					}
				}
			}
			return nil
		}()
	}
	if err := run([]string{"-query", "Q21", "-listen", "127.0.0.1:0", "-log", logPath, "-max-rows", "1"}); err != nil {
		t.Fatalf("run -listen: %v", err)
	}
	if err := <-probeErr; err != nil {
		t.Fatalf("admin plane probe: %v", err)
	}

	events, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(events), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("event line not valid JSON: %v\n%s", err, line)
		}
		if ev, ok := obj["event"].(string); ok {
			seen[ev] = true
		}
	}
	for _, want := range []string{"plan.merge", "chain.start", "job.done", "chain.done"} {
		if !seen[want] {
			t.Errorf("event log missing %q events; saw %v", want, seen)
		}
	}

	if err := run([]string{"-query", "Q21", "-log", "-", "-log-level", "nope"}); err == nil {
		t.Error("unknown log level should error")
	}
}

// TestRunObservabilityFlags smoke-tests the remaining observability paths.
func TestRunObservabilityFlags(t *testing.T) {
	if err := run([]string{"-query", "Q-AGG", "-timeline", "-analyze"}); err != nil {
		t.Fatalf("timeline+analyze (implied -run): %v", err)
	}
	path := t.TempDir() + "/metrics.prom"
	if err := run([]string{"-query", "Q21", "-run", "-metrics", path}); err != nil {
		t.Fatalf("-metrics: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE ysmart_engine_jobs_total counter",
		"ysmart_engine_jobs_total",
		"ysmart_translator_rule_firings_total",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
}

// TestRunManimal: -manimal applies the scan rewrites, prints the
// applied/refused report, and the run still completes.
func TestRunManimal(t *testing.T) {
	sql := "SELECT l_shipmode, count(*) AS ship_count FROM lineitem WHERE l_shipdate >= 9300 GROUP BY l_shipmode"
	if err := run([]string{"-sql", sql, "-manimal", "-run", "-max-rows", "3"}); err != nil {
		t.Fatalf("run -manimal: %v", err)
	}
	// Report-only (no -run): the manimal section still prints with -explain.
	if err := run([]string{"-sql", sql, "-manimal", "-explain"}); err != nil {
		t.Fatalf("explain -manimal: %v", err)
	}
	// An unfiltered scan is refused, not silently skipped, and the run
	// still succeeds.
	if err := run([]string{"-query", "Q-AGG", "-manimal", "-run", "-max-rows", "3"}); err != nil {
		t.Fatalf("run -manimal on unfiltered scan: %v", err)
	}
}
