// Command ysmart translates SQL queries into MapReduce job plans and
// optionally executes them on a simulated cluster.
//
// Usage:
//
//	ysmart -query Q17 -mode ysmart -explain
//	ysmart -sql "SELECT cid, count(*) FROM clicks GROUP BY cid" -run
//	ysmart -query Q21 -mode one-to-one -run -cluster ec2-11
//
// With -explain it prints the logical plan, the detected correlations
// (input, transit, job-flow) and the generated job plan. With -run it loads
// deterministic workload data, executes the jobs, and prints the result
// rows plus per-job simulated times.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ysmart"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ysmart:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ysmart", flag.ContinueOnError)
	var (
		queryName = fs.String("query", "", "workload query name (Q17, Q18, Q21, Q-CSA, Q-AGG)")
		sqlText   = fs.String("sql", "", "SQL text (alternative to -query)")
		modeName  = fs.String("mode", "ysmart", "translation mode: ysmart, one-to-one, pig-like, ic-tc-only")
		clusterN  = fs.String("cluster", "small", "cluster model: small, ec2-11, ec2-101, facebook")
		explain   = fs.Bool("explain", false, "print plan, correlations and job plan")
		dot       = fs.Bool("dot", false, "print the job graph in Graphviz dot syntax")
		dataDir   = fs.String("data", "", "load tables from <dir>/<table>.tsv (ysmart-datagen output) instead of generating")
		runIt     = fs.Bool("run", false, "execute on workload data and print results")
		maxRows   = fs.Int("max-rows", 20, "result rows to print")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sql := *sqlText
	if sql == "" {
		if *queryName == "" {
			return fmt.Errorf("provide -query <name> or -sql <text>")
		}
		named, ok := ysmart.WorkloadQueries()[*queryName]
		if !ok {
			return fmt.Errorf("unknown query %q (have: Q17, Q18, Q21, Q-CSA, Q-AGG)", *queryName)
		}
		sql = named
	}

	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}

	q, err := ysmart.Parse(sql, ysmart.WorkloadCatalog())
	if err != nil {
		return err
	}
	label := *queryName
	if label == "" {
		label = "adhoc"
	}
	tr, err := q.Translate(mode, ysmart.Options{QueryName: strings.ToLower(label)})
	if err != nil {
		return err
	}

	if *dot {
		fmt.Print(tr.DOT())
		if !*runIt {
			return nil
		}
	} else if *explain || !*runIt {
		fmt.Println("== logical plan ==")
		fmt.Print(q.ExplainPlan())
		fmt.Println("== correlations ==")
		fmt.Print(q.ExplainCorrelations())
		fmt.Println("== job plan ==")
		fmt.Print(tr.Describe())
	}

	if !*runIt {
		return nil
	}

	cluster, err := parseCluster(*clusterN)
	if err != nil {
		return err
	}
	rt, err := ysmart.NewRuntime(cluster)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		if err := loadDataDir(rt, *dataDir); err != nil {
			return err
		}
	} else {
		tpch, err := ysmart.GenerateTPCH(ysmart.DefaultTPCH())
		if err != nil {
			return err
		}
		clicks, err := ysmart.GenerateClicks(ysmart.DefaultClicks())
		if err != nil {
			return err
		}
		rt.LoadTables(tpch)
		rt.LoadTables(clicks)
	}

	res, err := rt.Run(tr)
	if err != nil {
		return err
	}

	fmt.Println("== execution ==")
	fmt.Println(res.Stats.String())
	fmt.Printf("== result (%d rows, schema %s) ==\n", len(res.Rows), res.Schema)
	for i, row := range res.Rows {
		if i >= *maxRows {
			fmt.Printf("... %d more rows\n", len(res.Rows)-*maxRows)
			break
		}
		cells := make([]string, len(row))
		for c, v := range row {
			cells[c] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	return nil
}

// loadDataDir loads every <table>.tsv under dir into the runtime.
func loadDataDir(rt *ysmart.Runtime, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tsv") {
			continue
		}
		data, err := os.ReadFile(dir + "/" + e.Name())
		if err != nil {
			return err
		}
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		if len(lines) == 1 && lines[0] == "" {
			lines = nil
		}
		rt.LoadTableLines(strings.TrimSuffix(e.Name(), ".tsv"), lines)
		loaded++
	}
	if loaded == 0 {
		return fmt.Errorf("no .tsv tables found in %s", dir)
	}
	return nil
}

func parseMode(name string) (ysmart.Mode, error) {
	switch name {
	case "ysmart":
		return ysmart.YSmart, nil
	case "one-to-one", "hive":
		return ysmart.OneToOne, nil
	case "pig-like", "pig":
		return ysmart.PigLike, nil
	case "ic-tc-only", "ictc":
		return ysmart.ICTCOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func parseCluster(name string) (*ysmart.Cluster, error) {
	switch name {
	case "small":
		return ysmart.SmallCluster(), nil
	case "ec2-11":
		return ysmart.EC2Cluster(10), nil
	case "ec2-101":
		return ysmart.EC2Cluster(100), nil
	case "facebook":
		return ysmart.FacebookCluster(1), nil
	default:
		return nil, fmt.Errorf("unknown cluster %q", name)
	}
}
