// Command ysmart translates SQL queries into MapReduce job plans and
// optionally executes them on a simulated cluster.
//
// Usage:
//
//	ysmart -query Q17 -mode ysmart -explain
//	ysmart -sql "SELECT cid, count(*) FROM clicks GROUP BY cid" -run
//	ysmart -query Q21 -mode one-to-one -run -cluster ec2-11
//
// With -explain it prints the logical plan, the detected correlations
// (input, transit, job-flow) and the generated job plan. With -run it loads
// deterministic workload data, executes the jobs, and prints the result
// rows plus per-job simulated times.
//
// Observability flags:
//
//	ysmart -query Q21 -run -trace q21.json   # Chrome trace-event JSON (Perfetto)
//	ysmart -query Q21 -run -timeline         # ASCII Gantt of the simulated run
//	ysmart -query Q21 -run -metrics -        # Prometheus-style counter dump
//	ysmart -query Q21 -run -analyze          # job graph annotated with counters
//	ysmart -query Q21 -run -log -            # structured JSON event stream on stderr
//	ysmart -query Q21 -listen 127.0.0.1:8080 # admin HTTP plane: /metrics, /trace,
//	                                         # /jobs, /debug/pprof; blocks after the
//	                                         # run until interrupted
//
// Fault injection (deterministic, seeded; see mapreduce.FaultPlan):
//
//	ysmart -query Q21 -faults task=0.1 -timeline              # 10% task failures
//	ysmart -query Q21 -faults "straggler=0.2x6" -speculate    # stragglers + backups
//	ysmart -query Q21 -faults node=0@400 -fault-seed 7 -run   # node 0 dies at t=400s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"ysmart"
	"ysmart/internal/obs/httpserve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ysmart:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ysmart", flag.ContinueOnError)
	var (
		queryName = fs.String("query", "", "workload query name (Q17, Q18, Q21, Q-CSA, Q-AGG)")
		sqlText   = fs.String("sql", "", "SQL text (alternative to -query)")
		modeName  = fs.String("mode", "ysmart", "translation mode: ysmart, one-to-one, pig-like, ic-tc-only")
		clusterN  = fs.String("cluster", "small", "cluster model: small, ec2-11, ec2-101, facebook")
		explain   = fs.Bool("explain", false, "print plan, correlations and job plan")
		manimal   = fs.Bool("manimal", false, "apply MANIMAL-style static rewrites (early scan filters) to the jobs and print what was applied or refused")
		dot       = fs.Bool("dot", false, "print the job graph in Graphviz dot syntax")
		dataDir   = fs.String("data", "", "load tables from <dir>/<table>.tsv (ysmart-datagen output) instead of generating")
		runIt     = fs.Bool("run", false, "execute on workload data and print results")
		maxRows   = fs.Int("max-rows", 20, "result rows to print")
		traceOut  = fs.String("trace", "", "write Chrome trace-event JSON to <file> (- for stdout); implies -run")
		timeline  = fs.Bool("timeline", false, "print an ASCII timeline of the simulated execution; implies -run")
		metricsTo = fs.String("metrics", "", "write Prometheus-style metrics to <file> (- for stdout); implies -run")
		analyze   = fs.Bool("analyze", false, "print the job graph annotated with post-run counters (explain -analyze); implies -run")
		faults    = fs.String("faults", "", `fault scenario, e.g. "task=0.1,straggler=0.05x6,node=2@500"; implies -run`)
		faultSeed = fs.Int64("fault-seed", 1, "seed of the deterministic fault scenario")
		speculate = fs.Bool("speculate", false, "launch backup attempts for straggling tasks; implies -run")
		workers   = fs.Int("workers", 0, "goroutines executing engine tasks (0 = NumCPU); results are identical at any count")
		reuseIt   = fs.Bool("reuse", false, "run the query twice through a cross-query reuse store (cold, then warm replay) and print what the warm run skipped; implies -run")
		listen    = fs.String("listen", "", "serve the admin HTTP plane (/metrics, /trace, /jobs, /debug/pprof) on this address; implies -run and blocks after the run until interrupted")
		logTo     = fs.String("log", "", "write the structured JSON event stream to <file> (- for stderr); implies -run")
		logLevel  = fs.String("log-level", "info", "minimum event level: debug, info, warn, error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *traceOut != "" || *timeline || *metricsTo != "" || *analyze || *faults != "" || *speculate ||
		*listen != "" || *logTo != "" || *reuseIt {
		*runIt = true
	}

	sql := *sqlText
	if sql == "" {
		if *queryName == "" {
			return fmt.Errorf("provide -query <name> or -sql <text>")
		}
		named, ok := ysmart.WorkloadQueries()[*queryName]
		if !ok {
			return fmt.Errorf("unknown query %q (have: Q17, Q18, Q21, Q-CSA, Q-AGG)", *queryName)
		}
		sql = named
	}

	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}

	q, err := ysmart.Parse(sql, ysmart.WorkloadCatalog())
	if err != nil {
		return err
	}
	label := *queryName
	if label == "" {
		label = "adhoc"
	}

	// Instrumentation is created before translation so rule-application
	// events from the merging phase land in the same trace as execution.
	// The admin plane forces both a collector and a registry so /trace
	// and /metrics have data to serve.
	var collector *ysmart.Collector
	var registry *ysmart.Registry
	if *traceOut != "" || *timeline || *listen != "" {
		collector = ysmart.NewCollector()
	}
	if *metricsTo != "" || *listen != "" {
		registry = ysmart.NewRegistry()
	}
	var logger *ysmart.Logger
	if *logTo != "" {
		min, ok := ysmart.ParseLogLevel(*logLevel)
		if !ok {
			return fmt.Errorf("unknown log level %q", *logLevel)
		}
		w := io.Writer(os.Stderr)
		if *logTo != "-" {
			f, err := os.Create(*logTo)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		logger = ysmart.NewLogger(w, min)
	}
	opts := ysmart.Options{QueryName: strings.ToLower(label), Metrics: registry, Logger: logger}
	if collector != nil {
		opts.Tracer = collector
	}
	tr, err := q.Translate(mode, opts)
	if err != nil {
		return err
	}
	if *manimal {
		_, report := ysmart.ApplyManimal(tr)
		fmt.Println("== manimal ==")
		fmt.Print(report)
	}

	if *dot {
		fmt.Print(tr.DOT())
		if !*runIt {
			return nil
		}
	} else if *explain || !*runIt {
		fmt.Println("== logical plan ==")
		fmt.Print(q.ExplainPlan())
		fmt.Println("== correlations ==")
		fmt.Print(q.ExplainCorrelations())
		fmt.Println("== job plan ==")
		fmt.Print(tr.Describe())
	}

	if !*runIt {
		return nil
	}

	cluster, err := parseCluster(*clusterN)
	if err != nil {
		return err
	}
	if *faults != "" {
		plan, err := ysmart.ParseFaultSpec(*faults)
		if err != nil {
			return err
		}
		plan.Seed = *faultSeed
		cluster.Faults = plan
	}
	if *speculate {
		cluster.Speculation = ysmart.Speculation{Enabled: true}
	}
	rt, err := ysmart.NewRuntime(cluster)
	if err != nil {
		return err
	}
	if *workers > 0 {
		rt.SetWorkers(*workers)
	}
	if *dataDir != "" {
		if err := loadDataDir(rt, *dataDir); err != nil {
			return err
		}
	} else {
		tpch, err := ysmart.GenerateTPCH(ysmart.DefaultTPCH())
		if err != nil {
			return err
		}
		clicks, err := ysmart.GenerateClicks(ysmart.DefaultClicks())
		if err != nil {
			return err
		}
		rt.LoadTables(tpch)
		rt.LoadTables(clicks)
	}

	// The admin plane comes up before the run so a watcher can scrape
	// /metrics while the query executes.
	var admin *httpserve.Server
	if *listen != "" {
		admin = httpserve.New(registry, collector, nil)
		addr, err := admin.Start(*listen)
		if err != nil {
			return err
		}
		defer admin.Close()
		lastAdminAddr = addr
		fmt.Printf("admin plane listening on http://%s\n", addr)
	}

	var runOpts []ysmart.RunOption
	if collector != nil {
		runOpts = append(runOpts, ysmart.WithTracer(collector))
	}
	if registry != nil {
		runOpts = append(runOpts, ysmart.WithMetrics(registry))
	}
	if logger != nil {
		runOpts = append(runOpts, ysmart.WithLogger(logger))
	}
	var store *ysmart.ReuseStore
	if *reuseIt {
		store = ysmart.NewReuseStore(0, registry)
		runOpts = append(runOpts, ysmart.WithReuse(store))
		cold, err := rt.Run(tr, runOpts...)
		if err != nil {
			return err
		}
		fmt.Println("== reuse (cold) ==")
		fmt.Println(cold.Reuse.Summary())
	}
	res, err := rt.Run(tr, runOpts...)
	if err != nil {
		return err
	}
	if res.Reuse != nil {
		fmt.Println("== reuse (warm) ==")
		fmt.Println(res.Reuse.Summary())
	}
	if admin != nil {
		// Post-run, /jobs serves the executed chain's per-job stats.
		admin.SetJobs(func() any { return res.Stats.Jobs })
	}

	fmt.Println("== execution ==")
	fmt.Println(res.Stats.String())
	fmt.Printf("  scanned %s, shuffled %s\n",
		ysmart.FormatBytes(res.Stats.TotalMapInputBytes()),
		ysmart.FormatBytes(res.Stats.TotalShuffleBytes()))
	if res.Stats.TotalRetries()+res.Stats.TotalRecomputed()+res.Stats.TotalSpeculative() > 0 {
		fmt.Printf("  recovery: %d retries, %d recomputed map tasks, %d speculative backups\n",
			res.Stats.TotalRetries(), res.Stats.TotalRecomputed(), res.Stats.TotalSpeculative())
	}
	fmt.Printf("== result (%d rows, schema %s) ==\n", len(res.Rows), res.Schema)
	for i, row := range res.Rows {
		if i >= *maxRows {
			fmt.Printf("... %d more rows\n", len(res.Rows)-*maxRows)
			break
		}
		cells := make([]string, len(row))
		for c, v := range row {
			cells[c] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}

	if *timeline {
		fmt.Println("== timeline ==")
		fmt.Print(ysmart.RenderTimeline(collector.Events(), 100))
	}
	if *analyze {
		fmt.Println("== job graph (analyzed) ==")
		fmt.Print(tr.DOTAnalyzed(res.Stats))
	}
	if *traceOut != "" {
		if err := writeOutput(*traceOut, ysmart.ChromeTrace(collector.Events())); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	if *metricsTo != "" {
		var buf strings.Builder
		if err := ysmart.WriteMetrics(&buf, registry); err != nil {
			return err
		}
		if err := writeOutput(*metricsTo, []byte(buf.String())); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if admin != nil {
		fmt.Println("serving admin plane; press Ctrl-C to exit")
		waitInterrupt()
	}
	return nil
}

// lastAdminAddr records the bound address of the most recent -listen
// server so tests (which stub waitInterrupt) can probe it while it serves.
var lastAdminAddr string

// waitInterrupt blocks until the process receives an interrupt. Tests
// replace it to return immediately.
var waitInterrupt = func() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	signal.Stop(ch)
}

// writeOutput writes data to a file, or stdout when path is "-".
func writeOutput(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// loadDataDir loads every <table>.tsv under dir into the runtime.
func loadDataDir(rt *ysmart.Runtime, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tsv") {
			continue
		}
		data, err := os.ReadFile(dir + "/" + e.Name())
		if err != nil {
			return err
		}
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		if len(lines) == 1 && lines[0] == "" {
			lines = nil
		}
		rt.LoadTableLines(strings.TrimSuffix(e.Name(), ".tsv"), lines)
		loaded++
	}
	if loaded == 0 {
		return fmt.Errorf("no .tsv tables found in %s", dir)
	}
	return nil
}

func parseMode(name string) (ysmart.Mode, error) {
	switch name {
	case "ysmart":
		return ysmart.YSmart, nil
	case "one-to-one", "hive":
		return ysmart.OneToOne, nil
	case "pig-like", "pig":
		return ysmart.PigLike, nil
	case "ic-tc-only", "ictc":
		return ysmart.ICTCOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func parseCluster(name string) (*ysmart.Cluster, error) {
	switch name {
	case "small":
		return ysmart.SmallCluster(), nil
	case "ec2-11":
		return ysmart.EC2Cluster(10), nil
	case "ec2-101":
		return ysmart.EC2Cluster(100), nil
	case "facebook":
		return ysmart.FacebookCluster(1), nil
	default:
		return nil, fmt.Errorf("unknown cluster %q", name)
	}
}
