package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ysmart/internal/server"
)

// TestServerMainEndToEnd boots the full command on free ports, runs queries
// over the wire, scrapes the admin plane, and shuts down via the test hook.
func TestServerMainEndToEnd(t *testing.T) {
	var out strings.Builder
	type addrs struct{ sql, admin string }
	up := make(chan addrs, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-listen", "127.0.0.1:0",
			"-max-inflight", "2",
			"-cache-size", "8",
		}, &out, func(sqlAddr, adminAddr string) <-chan struct{} {
			up <- addrs{sqlAddr, adminAddr}
			return stop
		})
	}()

	var a addrs
	select {
	case a = <-up:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\noutput:\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		t.Fatal("server did not come up")
	}

	cli, err := server.Dial(a.sql, "maintest", "ysmart", 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", a.sql, err)
	}
	defer cli.Close()

	const sql = "SELECT cid, count(*) AS n FROM clicks GROUP BY cid"
	res1, err := cli.Query(sql)
	if err != nil {
		t.Fatalf("first query: %v", err)
	}
	if len(res1.Rows) == 0 {
		t.Fatal("first query returned no rows")
	}
	if want := fmt.Sprintf("SELECT %d", len(res1.Rows)); res1.Tag != want {
		t.Fatalf("tag = %q, want %q", res1.Tag, want)
	}
	res2, err := cli.Query(sql) // identical query: must hit the plan cache
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	if len(res2.Rows) != len(res1.Rows) {
		t.Fatalf("repeat query returned %d rows, first returned %d", len(res2.Rows), len(res1.Rows))
	}

	metrics := httpGet(t, "http://"+a.admin+"/metrics")
	for _, family := range []string{
		"ysmart_server_plancache_hits_total 1",
		"ysmart_server_plancache_misses_total 1",
		"ysmart_server_queries_total 2",
		"ysmart_server_connections_total 1",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}
	sessions := httpGet(t, "http://"+a.admin+"/sessions")
	if !strings.Contains(sessions, `"user": "maintest"`) {
		t.Errorf("/sessions does not list the live session: %s", sessions)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "serving the PostgreSQL wire protocol on") {
		t.Errorf("startup banner missing:\n%s", out.String())
	}
}

func TestServerMainFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-mode", "nope"},
		{"-cluster", "nope"},
		{"-faults", "bogus=spec"},
		{"-log", "-", "-log-level", "nope"},
	} {
		if err := run(args, io.Discard, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestServerMainReuse: a -reuse server materializes job outputs across
// sessions — a second connection running the same query gets warm
// artifact hits recorded by the first — with identical rows over the wire
// and the ysmart_reuse_* families on the admin plane.
func TestServerMainReuse(t *testing.T) {
	var out strings.Builder
	type addrs struct{ sql, admin string }
	up := make(chan addrs, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-listen", "127.0.0.1:0",
			"-reuse",
			"-cache-size", "8",
		}, &out, func(sqlAddr, adminAddr string) <-chan struct{} {
			up <- addrs{sqlAddr, adminAddr}
			return stop
		})
	}()

	var a addrs
	select {
	case a = <-up:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\noutput:\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		t.Fatal("server did not come up")
	}

	const sql = "SELECT cid, count(*) AS n FROM clicks GROUP BY cid"
	query := func(user string) []string {
		cli, err := server.Dial(a.sql, user, "ysmart", 5*time.Second)
		if err != nil {
			t.Fatalf("dial %s: %v", a.sql, err)
		}
		defer cli.Close()
		res, err := cli.Query(sql)
		if err != nil {
			t.Fatalf("%s query: %v", user, err)
		}
		var lines []string
		for _, row := range res.Rows {
			cells := make([]string, len(row))
			for i, c := range row {
				if c != nil {
					cells[i] = *c
				}
			}
			lines = append(lines, strings.Join(cells, "\t"))
		}
		return lines
	}
	cold := query("cold-session")
	warm := query("warm-session") // fresh connection: hits must cross sessions
	if len(cold) == 0 {
		t.Fatal("cold session returned no rows")
	}
	if strings.Join(warm, "\n") != strings.Join(cold, "\n") {
		t.Fatalf("warm session rows differ from cold session:\n got  %v\n want %v", warm, cold)
	}

	metrics := httpGet(t, "http://"+a.admin+"/metrics")
	for _, family := range []string{
		"ysmart_reuse_records_total",
		"ysmart_reuse_hits_total 1",
		"ysmart_reuse_entries 1",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing %q", family)
		}
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body)
}

// TestServerMainManimal: a -manimal server serves a filtered query
// through the full wire path with the scan prefilters installed, and
// repeat queries hit the (optimizer-keyed) plan cache.
func TestServerMainManimal(t *testing.T) {
	var out strings.Builder
	up := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-manimal",
			"-cache-size", "8",
		}, &out, func(sqlAddr, adminAddr string) <-chan struct{} {
			up <- sqlAddr
			return stop
		})
	}()

	var sqlAddr string
	select {
	case sqlAddr = <-up:
	case err := <-done:
		t.Fatalf("server exited before ready: %v\noutput:\n%s", err, out.String())
	case <-time.After(60 * time.Second):
		t.Fatal("server did not come up")
	}

	cli, err := server.Dial(sqlAddr, "manimaltest", "ysmart", 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", sqlAddr, err)
	}
	defer cli.Close()

	const sql = "SELECT l_shipmode, count(*) AS ship_count FROM lineitem WHERE l_shipdate >= 9300 GROUP BY l_shipmode"
	res1, err := cli.Query(sql)
	if err != nil {
		t.Fatalf("first query: %v", err)
	}
	if len(res1.Rows) == 0 {
		t.Fatal("optimized query returned no rows")
	}
	res2, err := cli.Query(sql) // must hit the optimizer-keyed cache entry
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	if len(res2.Rows) != len(res1.Rows) {
		t.Fatalf("repeat query returned %d rows, first returned %d", len(res2.Rows), len(res1.Rows))
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned: %v\noutput:\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
}
