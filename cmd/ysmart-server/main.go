// Command ysmart-server serves SQL as a long-running service: a TCP server
// speaking the PostgreSQL simple query protocol over the paper's registered
// workload datasets, so a stock psql client can connect and run queries
// against the simulated cluster:
//
//	ysmart-server -addr 127.0.0.1:5433 &
//	psql -h 127.0.0.1 -p 5433 -c 'SELECT cid, count(*) AS n FROM clicks GROUP BY cid'
//
// Every connection gets a private session runtime; all sessions share one
// plan cache (normalized SQL -> translated job chain; -cache-size) and one
// admission controller (-max-inflight executing queries, -max-queued FIFO
// waiters, -query-timeout per query). The admin HTTP plane rides along on
// -listen with /sessions plus cache/admission families on /metrics:
//
//	ysmart-server -addr 127.0.0.1:5433 -listen 127.0.0.1:8080 \
//	    -max-inflight 8 -cache-size 64 -query-timeout 30s
//
// Fault injection and the engine worker pool pass through to each session
// runtime (-faults, -fault-seed, -workers), and -log streams the server's
// structured JSON events.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ysmart"
	"ysmart/internal/obs/httpserve"
	"ysmart/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ysmart-server:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until an interrupt (or a test-supplied
// ready callback returns a stop signal). ready, when non-nil, receives the
// bound SQL and admin addresses and returns a channel whose close triggers
// shutdown — the test hook replacing SIGINT.
func run(args []string, stdout io.Writer, ready func(sqlAddr, adminAddr string) <-chan struct{}) error {
	fs := flag.NewFlagSet("ysmart-server", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:5433", "address to serve the PostgreSQL wire protocol on (port 0 picks a free port)")
		modeName  = fs.String("mode", "ysmart", "translation mode: ysmart, one-to-one, pig-like, ic-tc-only")
		clusterN  = fs.String("cluster", "small", "cluster model per session runtime: small, ec2-11, ec2-101, facebook")
		workers   = fs.Int("workers", 0, "goroutines per session engine (0 = NumCPU)")
		inflight  = fs.Int("max-inflight", 4, "queries executing concurrently across all sessions")
		queued    = fs.Int("max-queued", 64, "queries waiting in the admission FIFO before new ones are rejected")
		timeout   = fs.Duration("query-timeout", 0, "per-query bound on admission wait + execution (0 = unlimited); timed-out runs are abandoned, not aborted")
		cacheSize = fs.Int("cache-size", 128, "plan cache capacity in distinct normalized queries")
		manimal   = fs.Bool("manimal", false, "apply MANIMAL-style scan rewrites to every translated plan (optimized plans cache under separate keys)")
		reuseOn   = fs.Bool("reuse", false, "enable the cross-query materialized-output store: later queries skip jobs whose sub-plan artifacts are still valid")
		reuseCap  = fs.Int64("reuse-cap", 0, "reuse store capacity in artifact bytes (0 = unbounded); the cost-model eviction policy decides what survives")
		faults    = fs.String("faults", "", `fault scenario per session runtime, e.g. "task=0.1,straggler=0.05x6,node=2@500"`)
		faultSeed = fs.Int64("fault-seed", 1, "seed of the deterministic fault scenario")
		listen    = fs.String("listen", "", "serve the admin HTTP plane (/metrics, /sessions, /jobs, /debug/pprof) on this address")
		logTo     = fs.String("log", "", "write the structured JSON event stream to <file> (- for stderr)")
		logLevel  = fs.String("log-level", "info", "minimum event level: debug, info, warn, error")
		drainFor  = fs.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight queries before closing connections")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}
	if _, err := parseCluster(*clusterN); err != nil {
		return err
	}
	if *faults != "" {
		if _, err := ysmart.ParseFaultSpec(*faults); err != nil {
			return err
		}
	}

	var logger *ysmart.Logger
	if *logTo != "" {
		min, ok := ysmart.ParseLogLevel(*logLevel)
		if !ok {
			return fmt.Errorf("unknown log level %q", *logLevel)
		}
		w := io.Writer(os.Stderr)
		if *logTo != "-" {
			f, err := os.Create(*logTo)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		logger = ysmart.NewLogger(w, min)
	}

	fmt.Fprintln(stdout, "generating workload datasets...")
	tpch, err := ysmart.GenerateTPCH(ysmart.DefaultTPCH())
	if err != nil {
		return err
	}
	clicks, err := ysmart.GenerateClicks(ysmart.DefaultClicks())
	if err != nil {
		return err
	}
	rows := make(map[string][]ysmart.Row, len(tpch)+len(clicks))
	for name, t := range tpch {
		rows[name] = t
	}
	for name, t := range clicks {
		rows[name] = t
	}

	reg := ysmart.NewRegistry()
	cfg := server.Config{
		Catalog: ysmart.WorkloadCatalog(),
		Cluster: func() *ysmart.Cluster {
			// Each session runtime needs a private cluster model (and a
			// private fault plan: engines must not share mutable state).
			cluster, _ := parseCluster(*clusterN)
			if *faults != "" {
				plan, _ := ysmart.ParseFaultSpec(*faults)
				plan.Seed = *faultSeed
				cluster.Faults = plan
			}
			return cluster
		},
		Mode:          mode,
		Workers:       *workers,
		MaxInflight:   *inflight,
		MaxQueued:     *queued,
		QueryTimeout:  *timeout,
		CacheSize:     *cacheSize,
		Registry:      reg,
		Logger:        logger,
		Manimal:       *manimal,
		Reuse:         *reuseOn,
		ReuseCapBytes: *reuseCap,
	}
	srv, err := server.New(cfg, server.EncodeTables(rows))
	if err != nil {
		return err
	}

	sqlAddr, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "serving the PostgreSQL wire protocol on %s\n", sqlAddr)
	fmt.Fprintf(stdout, "try: psql -h %s -p %s -c 'SELECT cid, count(*) AS n FROM clicks GROUP BY cid'\n",
		hostOf(sqlAddr), portOf(sqlAddr))

	adminAddr := ""
	if *listen != "" {
		admin := httpserve.New(reg, nil, func() any { return srv.Sessions() })
		admin.Handle("/sessions", httpserve.JSONHandler(func() any { return srv.Sessions() }))
		adminAddr, err = admin.Start(*listen)
		if err != nil {
			return err
		}
		defer admin.Close()
		fmt.Fprintf(stdout, "admin plane listening on http://%s\n", adminAddr)
	}

	var stop <-chan struct{}
	if ready != nil {
		stop = ready(sqlAddr, adminAddr)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		ch := make(chan struct{})
		go func() { <-sig; close(ch) }()
		stop = ch
	}
	<-stop

	fmt.Fprintln(stdout, "shutting down...")
	if !srv.Shutdown(*drainFor) {
		fmt.Fprintln(stdout, "drain timeout: in-flight queries abandoned")
	}
	return nil
}

func hostOf(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i]
		}
	}
	return addr
}

func portOf(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[i+1:]
		}
	}
	return ""
}

func parseMode(name string) (ysmart.Mode, error) {
	switch name {
	case "ysmart":
		return ysmart.YSmart, nil
	case "one-to-one", "hive":
		return ysmart.OneToOne, nil
	case "pig-like", "pig":
		return ysmart.PigLike, nil
	case "ic-tc-only", "ictc":
		return ysmart.ICTCOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func parseCluster(name string) (*ysmart.Cluster, error) {
	switch name {
	case "small":
		return ysmart.SmallCluster(), nil
	case "ec2-11":
		return ysmart.EC2Cluster(10), nil
	case "ec2-101":
		return ysmart.EC2Cluster(100), nil
	case "facebook":
		return ysmart.FacebookCluster(1), nil
	default:
		return nil, fmt.Errorf("unknown cluster %q", name)
	}
}
