package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWritesAllTables(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{
		"-out", dir,
		"-orders", "50", "-parts", "10", "-customers", "10", "-suppliers", "5",
		"-users", "10", "-clicks", "5",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"lineitem", "orders", "part", "customer", "supplier", "nation", "clicks"} {
		path := filepath.Join(dir, table+".tsv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing %s: %v", table, err)
			continue
		}
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		if len(lines) == 0 || lines[0] == "" {
			t.Errorf("%s is empty", table)
		}
	}
	// Clicks row count is exact.
	data, err := os.ReadFile(filepath.Join(dir, "clicks.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 50 {
		t.Errorf("clicks rows = %d, want 50", n)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-out", t.TempDir(), "-orders", "0"}); err == nil {
		t.Error("zero orders should error")
	}
}
