// Command ysmart-datagen writes the deterministic workload tables (TPC-H
// subset and click stream) as tab-delimited text files, one file per table.
//
// Usage:
//
//	ysmart-datagen -out ./data -orders 2000 -users 300
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ysmart"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ysmart-datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ysmart-datagen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "data", "output directory")
		orders    = fs.Int("orders", 2000, "TPC-H orders")
		parts     = fs.Int("parts", 200, "TPC-H parts")
		customers = fs.Int("customers", 400, "TPC-H customers")
		suppliers = fs.Int("suppliers", 100, "TPC-H suppliers")
		users     = fs.Int("users", 300, "click-stream users")
		clicks    = fs.Int("clicks", 60, "clicks per user")
		seed      = fs.Int64("seed", 1, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tpch, err := ysmart.GenerateTPCH(ysmart.TPCHConfig{
		Orders: *orders, Parts: *parts, Customers: *customers,
		Suppliers: *suppliers, Seed: *seed,
	})
	if err != nil {
		return err
	}
	clickTables, err := ysmart.GenerateClicks(ysmart.ClickConfig{
		Users: *users, ClicksPerUser: *clicks, Categories: 5, Seed: *seed + 1,
	})
	if err != nil {
		return err
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	// Rows are written in the engine's row codec (tab-delimited with
	// escaped tabs/newlines, floats always carrying a decimal marker), so
	// `ysmart -data <dir>` can load the files back without a schema.
	for _, tables := range []map[string][]ysmart.Row{tpch, clickTables} {
		for name, rows := range tables {
			path := filepath.Join(*out, name+".tsv")
			var sb strings.Builder
			for _, line := range ysmart.EncodeTable(rows) {
				sb.WriteString(line)
				sb.WriteByte('\n')
			}
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d rows)\n", path, len(rows))
		}
	}
	return nil
}
