package main

import (
	"encoding/json"
	"os"
	"path/filepath"

	"ysmart/internal/lint"
)

// SARIF 2.1.0 wire types — the minimal subset GitHub code scanning
// consumes: one run, a tool driver with one rule per analyzer that ran,
// and one result per diagnostic with a physical location.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the diagnostics as one SARIF run. Rules cover the
// analyzers that ran plus the driver's staleignore audit; file URIs are
// made relative to the working directory (the repository root in CI) so
// code scanning can anchor annotations.
func writeSARIF(out *os.File, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               lint.StaleIgnoreCheck,
		ShortDescription: sarifText{Text: "lint:ignore directives that silence no diagnostic"},
	})

	cwd, _ := os.Getwd()
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		uri := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, uri); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Check,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ysmart-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
