// Command ysmart-vet runs the repo's custom static-analysis suite: the
// analyzers in internal/lint that enforce the invariants the simulator's
// correctness rests on — deterministic replay (no wall-clock, no global
// rand, no map-ordered emission, transitively through the call graph),
// common-MapReduce tag/dispatch agreement, paired trace spans, no fresh
// uses of deprecated API, data-race freedom in parallel task bodies
// (sharecheck), mutex discipline on ConcurrentReduce marker types
// (concreduce), an acyclic lock-order graph over the serving stack's
// identified mutexes (lockorder), provable goroutine termination at
// every spawn site (goleak), and no blocking operations reachable under
// a held mutex (lockheld). Every run also audits lint:ignore directives
// and reports the ones that silence nothing ([staleignore]).
//
// Usage:
//
//	ysmart-vet [-list] [-check a,b] [-json | -sarif] [package patterns]
//	ysmart-vet -optimize [-json] [package patterns]
//
// With no patterns it vets ./... from the current directory, applying
// each analyzer's package scope. Explicit directory patterns bypass the
// scopes (used by the golden corpora). -json emits the diagnostics as a
// JSON array on stdout (one object per finding: file, line, col, check,
// message) for CI annotation tooling. -sarif emits the same findings as
// a SARIF 2.1.0 log for GitHub code-scanning annotations; the two
// output modes are mutually exclusive. Exit status is 1 when any
// diagnostic is reported and 2 on a driver error.
//
// -optimize switches to report-only MANIMAL mode: instead of vetting, it
// runs the internal/optanalysis static optimizer over every mapreduce.Job
// literal in the matched packages and prints which early-filter,
// reducer-pushdown and projection-trim rewrites are provably sound (and
// which were refused, with reasons). It never rewrites anything — the
// -manimal flag on ysmart and ysmart-server applies the rewrites at run
// time. Exit status is 0 even when rewrites are found; 2 on driver error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ysmart/internal/lint"
	"ysmart/internal/optanalysis"
)

// jsonDiag is the wire form of one diagnostic under -json.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ysmart-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	check := fs.String("check", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array for CI annotations")
	asSARIF := fs.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log for GitHub code scanning")
	optimize := fs.Bool("optimize", false, "report the MANIMAL rewrites provable for each mapreduce.Job literal instead of vetting")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(stderr, "ysmart-vet: -json and -sarif are mutually exclusive")
		return 2
	}

	if *optimize {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		rep, err := optanalysis.Analyze(".", patterns)
		if err != nil {
			fmt.Fprintf(stderr, "ysmart-vet: %v\n", err)
			return 2
		}
		if *asJSON {
			fmt.Fprintln(stdout, rep.JSON())
		} else {
			fmt.Fprint(stdout, rep.Format())
		}
		return 0
	}

	if *list {
		for _, a := range lint.Analyzers {
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = strings.Join(a.Packages, ", ")
			}
			fmt.Fprintf(stdout, "%-12s %s (%s)\n", a.Name, a.Doc, scope)
		}
		return 0
	}

	analyzers := lint.Analyzers
	if *check != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.Analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*check, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "ysmart-vet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.Vet(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "ysmart-vet: %v\n", err)
		return 2
	}
	switch {
	case *asJSON:
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "ysmart-vet: %v\n", err)
			return 2
		}
	case *asSARIF:
		if err := writeSARIF(stdout, analyzers, diags); err != nil {
			fmt.Fprintf(stderr, "ysmart-vet: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
