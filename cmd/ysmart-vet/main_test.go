package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout/stderr redirected to pipes and returns
// the exit code plus both streams.
func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	errR, errW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outW, errW)
	outW.Close()
	errW.Close()
	var ob, eb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := outR.Read(buf)
		ob.Write(buf[:n])
		if err != nil {
			break
		}
	}
	for {
		n, err := errR.Read(buf)
		eb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return code, ob.String(), eb.String()
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "tagdispatch", "spanpair", "deprecated", "sharecheck", "concreduce"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errOut := capture(t, []string{"-check", "nope"})
	if code != 2 {
		t.Fatalf("unknown -check exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", errOut)
	}
}

// TestCorpusExitsNonZero runs the CLI against a golden corpus directory;
// it must report diagnostics with file:line positions and exit 1.
func TestCorpusExitsNonZero(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "determinism")
	code, out, errOut := capture(t, []string{dir})
	if code != 1 {
		t.Fatalf("corpus exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(out, "determinism.go:") || !strings.Contains(out, "[determinism]") {
		t.Errorf("diagnostics missing file:line or check tag:\n%s", out)
	}
}

// TestJSONOutput: -json must emit a machine-readable array with one
// object per finding and the same exit code as the plain run.
func TestJSONOutput(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "determinism")
	code, out, errOut := capture(t, []string{"-json", dir})
	if code != 1 {
		t.Fatalf("-json corpus exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty array for a corpus full of findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Check == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

// TestJSONCleanRun: a clean run under -json is an empty array, not
// empty output — downstream jq never sees invalid JSON.
func TestJSONCleanRun(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "kitchen")
	code, out, errOut := capture(t, []string{"-json", dir})
	if code != 0 {
		t.Fatalf("-json kitchen exit = %d, want 0 (stderr: %s, stdout: %s)", code, errOut, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json run = %q, want []", out)
	}
}

// TestDriverErrorExitsTwo: a pattern naming a directory with no Go files
// is a driver error, not a clean run.
func TestDriverErrorExitsTwo(t *testing.T) {
	code, _, errOut := capture(t, []string{t.TempDir()})
	if code != 2 {
		t.Fatalf("driver error exit = %d, want 2", code)
	}
	if errOut == "" {
		t.Error("driver error produced no stderr")
	}
}

// TestOptimizeReport: -optimize over the naive user-job corpus reports
// the provable MANIMAL rewrites (with discharge paths) and exits 0.
func TestOptimizeReport(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "userjobs")
	code, out, errOut := capture(t, []string{"-optimize", dir})
	if code != 0 {
		t.Fatalf("-optimize exit = %d, want 0 (stderr: %s)", code, errOut)
	}
	for _, want := range []string{
		"early-filter", "reducer-pushdown", "projection-trim",
		"shippedRecently", "o_totalprice > 30000", "refused",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-optimize output missing %q:\n%s", want, out)
		}
	}
}

// TestOptimizeJSON: -optimize -json is machine-readable per-job reports.
func TestOptimizeJSON(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "userjobs")
	code, out, errOut := capture(t, []string{"-optimize", "-json", dir})
	if code != 0 {
		t.Fatalf("-optimize -json exit = %d, want 0 (stderr: %s)", code, errOut)
	}
	var rep struct {
		Jobs []struct {
			Name     string `json:"name"`
			Rewrites []struct {
				Kind string `json:"kind"`
			} `json:"rewrites"`
		} `json:"Jobs"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-optimize -json is not valid JSON: %v\n%s", err, out)
	}
	if len(rep.Jobs) != 3 {
		t.Fatalf("JSON report has %d jobs, want 3", len(rep.Jobs))
	}
}

// TestOptimizeDriverError: an unloadable pattern under -optimize is a
// driver error.
func TestOptimizeDriverError(t *testing.T) {
	code, _, errOut := capture(t, []string{"-optimize", t.TempDir()})
	if code != 2 {
		t.Fatalf("-optimize driver error exit = %d, want 2", code)
	}
	if errOut == "" {
		t.Error("driver error produced no stderr")
	}
}
