package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout/stderr redirected to pipes and returns
// the exit code plus both streams.
func capture(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	outR, outW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	errR, errW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	code = run(args, outW, errW)
	outW.Close()
	errW.Close()
	var ob, eb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := outR.Read(buf)
		ob.Write(buf[:n])
		if err != nil {
			break
		}
	}
	for {
		n, err := errR.Read(buf)
		eb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return code, ob.String(), eb.String()
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("-list exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "tagdispatch", "spanpair", "deprecated", "sharecheck", "concreduce", "lockorder", "goleak", "lockheld"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errOut := capture(t, []string{"-check", "nope"})
	if code != 2 {
		t.Fatalf("unknown -check exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr missing explanation: %s", errOut)
	}
}

// TestCorpusExitsNonZero runs the CLI against a golden corpus directory;
// it must report diagnostics with file:line positions and exit 1.
func TestCorpusExitsNonZero(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "determinism")
	code, out, errOut := capture(t, []string{dir})
	if code != 1 {
		t.Fatalf("corpus exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	if !strings.Contains(out, "determinism.go:") || !strings.Contains(out, "[determinism]") {
		t.Errorf("diagnostics missing file:line or check tag:\n%s", out)
	}
}

// TestJSONOutput: -json must emit a machine-readable array with one
// object per finding and the same exit code as the plain run.
func TestJSONOutput(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "determinism")
	code, out, errOut := capture(t, []string{"-json", dir})
	if code != 1 {
		t.Fatalf("-json corpus exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	var diags []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json produced an empty array for a corpus full of findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Check == "" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %+v", d)
		}
	}
}

// TestJSONCleanRun: a clean run under -json is an empty array, not
// empty output — downstream jq never sees invalid JSON.
func TestJSONCleanRun(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "kitchen")
	code, out, errOut := capture(t, []string{"-json", dir})
	if code != 0 {
		t.Fatalf("-json kitchen exit = %d, want 0 (stderr: %s, stdout: %s)", code, errOut, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json run = %q, want []", out)
	}
}

// sarifLogShape mirrors the subset of SARIF 2.1.0 the tests assert on.
type sarifLogShape struct {
	Version string `json:"version"`
	Schema  string `json:"$schema"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID string `json:"id"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID  string `json:"ruleId"`
			Level   string `json:"level"`
			Message struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

// TestSARIFOutput: -sarif over the lockorder corpus emits a valid SARIF
// 2.1.0 log — driver name, rules for the selected analyzers, and one
// result per finding with a slash-separated relative URI and a region.
func TestSARIFOutput(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "lockorder")
	code, out, errOut := capture(t, []string{"-sarif", "-check", "lockorder", dir})
	if code != 1 {
		t.Fatalf("-sarif corpus exit = %d, want 1 (stderr: %s)", code, errOut)
	}
	var log sarifLogShape
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("wrong SARIF version/schema: %s / %s", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("SARIF log has %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ysmart-vet" {
		t.Errorf("driver name = %q, want ysmart-vet", run.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["lockorder"] || !ruleIDs["staleignore"] {
		t.Errorf("rules missing lockorder or staleignore: %v", ruleIDs)
	}
	if len(run.Results) == 0 {
		t.Fatal("-sarif produced no results for a corpus full of findings")
	}
	for _, r := range run.Results {
		if r.RuleID == "" || r.Message.Text == "" || r.Level != "error" {
			t.Errorf("incomplete SARIF result: %+v", r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("bad artifact URI %q", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine == 0 || loc.Region.StartColumn == 0 {
			t.Errorf("result missing region: %+v", loc.Region)
		}
	}
}

// TestSARIFCleanRun: a clean run still emits a complete SARIF log with
// an empty results array, so uploaders never see a truncated file.
func TestSARIFCleanRun(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "kitchen")
	code, out, errOut := capture(t, []string{"-sarif", dir})
	if code != 0 {
		t.Fatalf("-sarif kitchen exit = %d, want 0 (stderr: %s, stdout: %s)", code, errOut, out)
	}
	var log sarifLogShape
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("clean -sarif output is not valid JSON: %v\n%s", err, out)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("clean SARIF log has %d runs, want 1", len(log.Runs))
	}
	if log.Runs[0].Results == nil {
		t.Error("clean SARIF run must carry an empty results array, not null")
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("clean run reported %d results", len(log.Runs[0].Results))
	}
}

// TestJSONSarifConflict: the two machine formats are mutually exclusive.
func TestJSONSarifConflict(t *testing.T) {
	code, _, errOut := capture(t, []string{"-json", "-sarif", "."})
	if code != 2 {
		t.Fatalf("-json -sarif exit = %d, want 2", code)
	}
	if !strings.Contains(errOut, "mutually exclusive") {
		t.Errorf("stderr missing mutual-exclusion explanation: %s", errOut)
	}
}

// TestDriverErrorExitsTwo: a pattern naming a directory with no Go files
// is a driver error, not a clean run.
func TestDriverErrorExitsTwo(t *testing.T) {
	code, _, errOut := capture(t, []string{t.TempDir()})
	if code != 2 {
		t.Fatalf("driver error exit = %d, want 2", code)
	}
	if errOut == "" {
		t.Error("driver error produced no stderr")
	}
}

// TestOptimizeReport: -optimize over the naive user-job corpus reports
// the provable MANIMAL rewrites (with discharge paths) and exits 0.
func TestOptimizeReport(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "userjobs")
	code, out, errOut := capture(t, []string{"-optimize", dir})
	if code != 0 {
		t.Fatalf("-optimize exit = %d, want 0 (stderr: %s)", code, errOut)
	}
	for _, want := range []string{
		"early-filter", "reducer-pushdown", "projection-trim",
		"shippedRecently", "o_totalprice > 30000", "refused",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-optimize output missing %q:\n%s", want, out)
		}
	}
}

// TestOptimizeJSON: -optimize -json is machine-readable per-job reports.
func TestOptimizeJSON(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "userjobs")
	code, out, errOut := capture(t, []string{"-optimize", "-json", dir})
	if code != 0 {
		t.Fatalf("-optimize -json exit = %d, want 0 (stderr: %s)", code, errOut)
	}
	var rep struct {
		Jobs []struct {
			Name     string `json:"name"`
			Rewrites []struct {
				Kind string `json:"kind"`
			} `json:"rewrites"`
		} `json:"Jobs"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("-optimize -json is not valid JSON: %v\n%s", err, out)
	}
	if len(rep.Jobs) != 3 {
		t.Fatalf("JSON report has %d jobs, want 3", len(rep.Jobs))
	}
}

// TestOptimizeDriverError: an unloadable pattern under -optimize is a
// driver error.
func TestOptimizeDriverError(t *testing.T) {
	code, _, errOut := capture(t, []string{"-optimize", t.TempDir()})
	if code != 2 {
		t.Fatalf("-optimize driver error exit = %d, want 2", code)
	}
	if errOut == "" {
		t.Error("driver error produced no stderr")
	}
}
