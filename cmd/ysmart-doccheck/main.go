// Command ysmart-doccheck is the docs gate of CI. It fails (exit 1, one
// finding per line) when documentation drifts from the tree:
//
//   - a relative link in any tracked *.md file points at a file that does
//     not exist;
//   - a Go package lacks a package-level doc comment;
//   - an exported identifier in the packages listed in strictPkgs
//     (the engine-facing surface: internal/mapreduce, internal/cmf) lacks
//     a doc comment;
//   - a CLI flag registered in any cmd/* binary is mentioned in neither
//     README.md nor docs/OPERATIONS.md (flag-doc drift).
//
// Usage:
//
//	ysmart-doccheck [-root <repo>]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// strictPkgs lists the directories whose exported identifiers must all
// carry doc comments, not just the package clause.
var strictPkgs = []string{"internal/mapreduce", "internal/cmf"}

// skipDirs are never descended into.
var skipDirs = map[string]bool{".git": true, "testdata": true}

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	findings, err := check(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ysmart-doccheck:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ysmart-doccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// check runs every rule under root and returns the sorted findings.
func check(root string) ([]string, error) {
	var findings []string
	md, goDirs, err := collect(root)
	if err != nil {
		return nil, err
	}
	for _, path := range md {
		fs, err := checkLinks(root, path)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	for _, dir := range goDirs {
		fs, err := checkGoDocs(root, dir)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	fs, err := checkFlagDocs(root, goDirs)
	if err != nil {
		return nil, err
	}
	findings = append(findings, fs...)
	sort.Strings(findings)
	return findings, nil
}

// collect walks root once and returns the markdown files and the
// directories containing non-test Go files, both root-relative.
func collect(root string) (md, goDirs []string, err error) {
	dirSet := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		switch {
		case strings.HasSuffix(rel, ".md"):
			md = append(md, rel)
		case strings.HasSuffix(rel, ".go") && !strings.HasSuffix(rel, "_test.go"):
			dirSet[filepath.Dir(rel)] = true
		}
		return nil
	})
	for dir := range dirSet {
		goDirs = append(goDirs, dir)
	}
	sort.Strings(md)
	sort.Strings(goDirs)
	return md, goDirs, err
}

// mdLink matches inline links and images: [text](target) / ![alt](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies that every relative link target in the markdown
// file exists, resolved against the file's directory.
func checkLinks(root, path string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(root, path))
	if err != nil {
		return nil, err
	}
	var findings []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // pure fragment, same file
			}
			resolved := filepath.Join(root, filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				findings = append(findings,
					fmt.Sprintf("%s:%d: broken relative link %q", path, i+1, m[1]))
			}
		}
	}
	return findings, nil
}

// flagDocSources lists the files where every CLI flag must be mentioned.
var flagDocSources = []string{"README.md", "docs/OPERATIONS.md"}

// flagFuncs names the flag-registration methods whose first string literal
// argument is the flag name (the *Var forms carry it second).
var flagFuncs = map[string]bool{
	"Bool": true, "Duration": true, "Float64": true,
	"Int": true, "Int64": true, "String": true, "Uint": true, "Uint64": true,
}

// checkFlagDocs is the flag-doc drift gate: every flag registered by a
// cmd/* binary (fs.String, flag.Bool, ... calls with a literal name) must be
// mentioned as -name in one of flagDocSources. Binaries grow flags faster
// than handbooks grow sections; this keeps the operator docs honest.
func checkFlagDocs(root string, goDirs []string) ([]string, error) {
	flags := map[string][]string{} // flag name -> commands registering it
	var cmds []string
	for _, dir := range goDirs {
		if !strings.HasPrefix(dir, "cmd/") && !strings.HasPrefix(dir, "cmd"+string(os.PathSeparator)) {
			continue
		}
		names, err := commandFlags(filepath.Join(root, dir))
		if err != nil {
			return nil, err
		}
		cmd := filepath.Base(dir)
		cmds = append(cmds, cmd)
		for _, name := range names {
			flags[name] = append(flags[name], cmd)
		}
	}
	if len(flags) == 0 {
		return nil, nil
	}

	var corpus strings.Builder
	var findings []string
	for _, src := range flagDocSources {
		data, err := os.ReadFile(filepath.Join(root, src))
		if err != nil {
			findings = append(findings,
				fmt.Sprintf("%s: missing (commands %s register flags that must be documented here)",
					src, strings.Join(cmds, ", ")))
			continue
		}
		corpus.Write(data)
		corpus.WriteByte('\n')
	}
	text := corpus.String()
	for name, owners := range flags {
		// A mention is "-name" not embedded in a longer flag or word.
		re := regexp.MustCompile(`[^\w-]-` + regexp.QuoteMeta(name) + `([^\w-]|$)`)
		if !re.MatchString(text) {
			sort.Strings(owners)
			findings = append(findings,
				fmt.Sprintf("cmd flag -%s (%s) is mentioned in neither %s",
					name, strings.Join(owners, ", "), strings.Join(flagDocSources, " nor ")))
		}
	}
	return findings, nil
}

// commandFlags parses one command directory and returns the flag names it
// registers through the standard flag API.
func commandFlags(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var names []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if _, ok := sel.X.(*ast.Ident); !ok {
					return true // flag registrations hang off flag or a FlagSet variable
				}
				fn := sel.Sel.Name
				arg := 0
				if strings.HasSuffix(fn, "Var") {
					fn = strings.TrimSuffix(fn, "Var")
					arg = 1
				}
				if !flagFuncs[fn] || len(call.Args) <= arg {
					return true
				}
				lit, ok := call.Args[arg].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil || name == "" || seen[name] {
					return true
				}
				seen[name] = true
				names = append(names, name)
				return true
			})
		}
	}
	sort.Strings(names)
	return names, nil
}

// checkGoDocs parses one package directory. Every package needs a
// package doc comment; packages under strictPkgs additionally need a doc
// comment on every exported top-level declaration.
func checkGoDocs(root, dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	strict := false
	for _, p := range strictPkgs {
		if dir == p {
			strict = true
		}
	}
	var findings []string
	pos := func(p token.Pos) string {
		position := fset.Position(p)
		rel, err := filepath.Rel(root, position.Filename)
		if err != nil {
			rel = position.Filename
		}
		return fmt.Sprintf("%s:%d", rel, position.Line)
	}
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		hasPkgDoc := false
		for _, file := range pkg.Files {
			if file.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			findings = append(findings,
				fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
		if !strict {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				findings = append(findings, checkDecl(decl, pos)...)
			}
		}
	}
	return findings, nil
}

// checkDecl reports exported top-level identifiers without doc comments.
// A doc comment on a grouped var/const/type block covers the whole block.
func checkDecl(decl ast.Decl, pos func(token.Pos) string) []string {
	var findings []string
	undocumented := func(name *ast.Ident, kind string) {
		findings = append(findings,
			fmt.Sprintf("%s: exported %s %s has no doc comment", pos(name.Pos()), kind, name.Name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			undocumented(d.Name, kind)
		}
	case *ast.GenDecl:
		if d.Doc != nil {
			return nil // block comment covers every spec in the group
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil {
					undocumented(s.Name, "type")
				}
			case *ast.ValueSpec:
				if s.Doc != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						undocumented(name, d.Tok.String())
					}
				}
			}
		}
	}
	return findings
}
