package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write creates path under dir, making parent directories as needed.
func write(t *testing.T, dir, path, content string) {
	t.Helper()
	full := filepath.Join(dir, path)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRepoIsClean(t *testing.T) {
	findings, err := check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("repository has %d doc findings:\n%s",
			len(findings), strings.Join(findings, "\n"))
	}
}

func TestBrokenAndValidLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "DESIGN.md", "real file\n")
	write(t, dir, "docs/notes.md", "up-link: [design](../DESIGN.md)\n")
	write(t, dir, "README.md", strings.Join([]string{
		"[ok](DESIGN.md) [ok-frag](DESIGN.md#part) [frag](#local)",
		"[ext](https://example.com/x.md) <!-- external, never checked -->",
		"[dir](docs) [nested](docs/notes.md)",
		"[broken](MISSING.md)",
		"```",
		"[in a fence](ALSO-MISSING.md) — code blocks are skipped",
		"```",
		"![img](missing.png)",
	}, "\n")+"\n")

	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`README.md:4: broken relative link "MISSING.md"`,
		`README.md:8: broken relative link "missing.png"`,
	}
	if len(findings) != len(want) {
		t.Fatalf("findings = %v, want %v", findings, want)
	}
	for i := range want {
		if findings[i] != want[i] {
			t.Errorf("finding[%d] = %q, want %q", i, findings[i], want[i])
		}
	}
}

func TestMissingPackageDoc(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "good/good.go", "// Package good is documented.\npackage good\n")
	write(t, dir, "bad/bad.go", "package bad\n")

	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "package bad has no package doc comment") {
		t.Errorf("findings = %v, want exactly the missing package doc", findings)
	}
}

func TestStrictPackagesRequireExportedDocs(t *testing.T) {
	dir := t.TempDir()
	src := `// Package mapreduce stands in for the strict package.
package mapreduce

// Documented is fine.
type Documented struct{}

type Naked struct{}

// Grouped declarations are covered by the block comment.
const (
	A = 1
	B = 2
)

func ExportedNoDoc() {}

// Method docs count too.
func (Documented) Good() {}

func (Documented) Bad() {}

func unexported() {} // never reported
`
	write(t, dir, "internal/mapreduce/code.go", src)
	// Same omissions outside the strict list are only checked for
	// package docs.
	write(t, dir, "internal/other/code.go",
		"// Package other is lax.\npackage other\n\ntype Naked struct{}\n")

	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"type Naked", "function ExportedNoDoc", "method Bad"}
	if len(findings) != len(want) {
		t.Fatalf("findings = %v, want %d strict findings", findings, len(want))
	}
	for _, w := range want {
		found := false
		for _, f := range findings {
			if strings.Contains(f, w) && strings.HasPrefix(f, "internal/mapreduce/") {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding for %q in %v", w, findings)
		}
	}
}

func TestTestFilesAreIgnored(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "internal/cmf/cmf.go", "// Package cmf is documented.\npackage cmf\n")
	write(t, dir, "internal/cmf/cmf_test.go",
		"package cmf\n\nfunc ExportedTestHelper() {}\n")

	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("test files produced findings: %v", findings)
	}
}

func TestFlagDocDrift(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "cmd/tool/main.go", `// Command tool tests the flag gate.
package main

import "flag"

func main() {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	fs.String("documented", "", "usage")
	fs.Int("undocumented", 0, "usage")
	var v bool
	fs.BoolVar(&v, "var-form", false, "usage")
}
`)
	write(t, dir, "README.md", "Run with -documented <value>.\n")
	write(t, dir, "docs/OPERATIONS.md", "The -var-form switch.\n")

	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	var flagFindings []string
	for _, f := range findings {
		if strings.Contains(f, "cmd flag") {
			flagFindings = append(flagFindings, f)
		}
	}
	if len(flagFindings) != 1 || !strings.Contains(flagFindings[0], "-undocumented (tool)") {
		t.Errorf("flag findings = %v, want exactly -undocumented", flagFindings)
	}
}

func TestFlagDocMentionBoundaries(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "cmd/tool/main.go", `// Command tool tests mention matching.
package main

import "flag"

func main() {
	flag.String("log", "", "usage")
}
`)
	// "-log-level" must NOT count as a mention of -log.
	write(t, dir, "README.md", "Only -log-level is described here.\n")
	write(t, dir, "docs/OPERATIONS.md", "Nothing.\n")

	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range findings {
		if strings.Contains(f, "cmd flag -log ") {
			found = true
		}
	}
	if !found {
		t.Errorf("embedded mention satisfied the gate: %v", findings)
	}
}

func TestFlagDocMissingSources(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "cmd/tool/main.go", `// Command tool registers a flag.
package main

import "flag"

func main() { flag.Bool("x", false, "usage") }
`)
	findings, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	var missing int
	for _, f := range findings {
		if strings.Contains(f, "register flags that must be documented here") {
			missing++
		}
	}
	if missing != 2 {
		t.Errorf("missing-source findings = %d, want 2 (README.md and docs/OPERATIONS.md):\n%s",
			missing, strings.Join(findings, "\n"))
	}
}
