package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ysmart/internal/experiments"
)

// TestLoadgenEndToEnd replays a short stream with the admin plane up and
// asserts the bench rows carry non-zero quantiles from the histogram and
// the selfcheck probe passes against the live endpoints.
func TestLoadgenEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "rows.json")
	logPath := filepath.Join(dir, "events.jsonl")
	var out strings.Builder
	err := run([]string{
		"-queries", "Q17,Q21",
		"-clients", "2",
		"-requests", "6",
		"-listen", "127.0.0.1:0",
		"-selfcheck",
		"-json", jsonPath,
		"-log", logPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "selfcheck: all admin endpoints healthy") {
		t.Errorf("selfcheck line missing from output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "p99_ms") {
		t.Errorf("latency table missing from output:\n%s", out.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read bench rows: %v", err)
	}
	var rows []experiments.BenchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("bench rows not valid JSON: %v", err)
	}
	if len(rows) != 3 { // Q17, Q21, all
		t.Fatalf("got %d rows, want 3: %s", len(rows), data)
	}
	var sawAll bool
	for _, r := range rows {
		if r.Figure != "loadgen" {
			t.Errorf("row %s: figure = %q, want loadgen", r.Query, r.Figure)
		}
		if r.P99 <= 0 || r.P50 <= 0 || r.QPS <= 0 {
			t.Errorf("row %s: p50/p99/qps must be positive, got %+v", r.Query, r)
		}
		if r.P50 > r.P99 {
			t.Errorf("row %s: p50 %v > p99 %v", r.Query, r.P50, r.P99)
		}
		if r.Query == "all" {
			sawAll = true
			if r.Requests != 6 {
				t.Errorf("aggregate row requests = %d, want 6", r.Requests)
			}
		}
	}
	if !sawAll {
		t.Errorf("no aggregate row in %s", data)
	}

	// The structured event stream must be one valid JSON object per line
	// with job lifecycle events from the engine.
	events, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("read event log: %v", err)
	}
	var sawJobDone bool
	for _, line := range strings.Split(strings.TrimRight(string(events), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("event line not valid JSON: %v\n%s", err, line)
		}
		if obj["event"] == "job.done" {
			sawJobDone = true
		}
	}
	if !sawJobDone {
		t.Errorf("no job.done event in log:\n%s", events)
	}
}

// TestLoadgenFlagErrors covers flag validation paths.
func TestLoadgenFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-queries", "Q99"},              // unknown query
		{"-selfcheck"},                   // selfcheck without -listen
		{"-clients", "0"},                // invalid client count
		{"-requests", "0"},               // invalid request count
		{"-mode", "nope"},                // unknown mode
		{"-cluster", "nope"},             // unknown cluster
		{"-log", "-", "-log-level", "x"}, // unknown level
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
