package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"time"

	"ysmart"
	"ysmart/internal/experiments"
	"ysmart/internal/server"
)

// TestLoadgenEndToEnd replays a short stream with the admin plane up and
// asserts the bench rows carry non-zero quantiles from the histogram and
// the selfcheck probe passes against the live endpoints.
func TestLoadgenEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "rows.json")
	logPath := filepath.Join(dir, "events.jsonl")
	var out strings.Builder
	err := run([]string{
		"-queries", "Q17,Q21",
		"-clients", "2",
		"-requests", "6",
		"-listen", "127.0.0.1:0",
		"-selfcheck",
		"-json", jsonPath,
		"-log", logPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "selfcheck: all admin endpoints healthy") {
		t.Errorf("selfcheck line missing from output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "p99_ms") {
		t.Errorf("latency table missing from output:\n%s", out.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read bench rows: %v", err)
	}
	var rows []experiments.BenchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("bench rows not valid JSON: %v", err)
	}
	if len(rows) != 3 { // Q17, Q21, all
		t.Fatalf("got %d rows, want 3: %s", len(rows), data)
	}
	var sawAll bool
	for _, r := range rows {
		if r.Figure != "loadgen" {
			t.Errorf("row %s: figure = %q, want loadgen", r.Query, r.Figure)
		}
		if r.P99 <= 0 || r.P50 <= 0 || r.QPS <= 0 {
			t.Errorf("row %s: p50/p99/qps must be positive, got %+v", r.Query, r)
		}
		if r.P50 > r.P99 {
			t.Errorf("row %s: p50 %v > p99 %v", r.Query, r.P50, r.P99)
		}
		if r.Query == "all" {
			sawAll = true
			if r.Requests != 6 {
				t.Errorf("aggregate row requests = %d, want 6", r.Requests)
			}
		}
	}
	if !sawAll {
		t.Errorf("no aggregate row in %s", data)
	}

	// The structured event stream must be one valid JSON object per line
	// with job lifecycle events from the engine.
	events, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("read event log: %v", err)
	}
	var sawJobDone bool
	for _, line := range strings.Split(strings.TrimRight(string(events), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("event line not valid JSON: %v\n%s", err, line)
		}
		if obj["event"] == "job.done" {
			sawJobDone = true
		}
	}
	if !sawJobDone {
		t.Errorf("no job.done event in log:\n%s", events)
	}
}

// TestLoadgenFlagErrors covers flag validation paths.
func TestLoadgenFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-queries", "Q99"},              // unknown query
		{"-selfcheck"},                   // selfcheck without -listen
		{"-clients", "0"},                // invalid client count
		{"-requests", "0"},               // invalid request count
		{"-mode", "nope"},                // unknown mode
		{"-cluster", "nope"},             // unknown cluster
		{"-log", "-", "-log-level", "x"}, // unknown level
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestLoadgenWireMode boots a real server, drives it over the wire protocol
// and checks the bench rows plus the oracle selfcheck.
func TestLoadgenWireMode(t *testing.T) {
	tpch, err := ysmart.GenerateTPCH(ysmart.DefaultTPCH())
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := ysmart.GenerateClicks(ysmart.DefaultClicks())
	if err != nil {
		t.Fatal(err)
	}
	tables := make(map[string][]ysmart.Row, len(tpch)+len(clicks))
	for n, rows := range tpch {
		tables[n] = rows
	}
	for n, rows := range clicks {
		tables[n] = rows
	}
	srv, err := server.New(server.Config{
		Catalog:     ysmart.WorkloadCatalog(),
		Cluster:     func() *ysmart.Cluster { return ysmart.SmallCluster() },
		MaxInflight: 2,
		MaxQueued:   32,
		CacheSize:   16,
	}, server.EncodeTables(tables))
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer srv.Shutdown(10 * time.Second)

	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "rows.json")
	var out strings.Builder
	err = run([]string{
		"-server", addr,
		"-queries", "Q-AGG,Q-CSA",
		"-clients", "2",
		"-requests", "6",
		"-selfcheck",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "selfcheck: server rows match the DBMS oracle") {
		t.Errorf("oracle selfcheck line missing:\n%s", out.String())
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read bench rows: %v", err)
	}
	var rows []experiments.BenchRow
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("bench rows not valid JSON: %v", err)
	}
	if len(rows) != 3 { // Q-AGG, Q-CSA, all
		t.Fatalf("got %d rows, want 3: %s", len(rows), data)
	}
	for _, r := range rows {
		if r.System != "server" {
			t.Errorf("row %s: system = %q, want server", r.Query, r.System)
		}
		if r.P50 <= 0 || r.P99 <= 0 || r.QPS <= 0 {
			t.Errorf("row %s: p50/p99/qps must be positive: %+v", r.Query, r)
		}
	}

	// The run plus the selfcheck replay hit the shared plan cache.
	_, hits, misses, _ := srv.Cache().Stats()
	if misses != 2 {
		t.Errorf("cache misses = %v, want 2 (one per distinct query)", misses)
	}
	if hits < 6 {
		t.Errorf("cache hits = %v, want >= 6", hits)
	}
}

// TestLoadgenWireModeDialError checks a dead server address fails fast.
func TestLoadgenWireModeDialError(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-server", "127.0.0.1:1", "-requests", "2"}, &out)
	if err == nil {
		t.Fatal("run against a dead address succeeded")
	}
}
