// Command ysmart-loadgen replays a stream of workload queries at N
// concurrent clients and reports sustained QPS plus wall-clock latency
// quantiles (p50/p90/p99) read back from the shared observability
// registry's latency histograms.
//
// It has two modes. In-process (the default), each client owns a private
// Runtime (the engine is single-chain) and latency is parse-free query
// execution (translate + simulated run). In wire mode (-server), each
// client dials a running ysmart-server over the PostgreSQL wire protocol
// and latency is true end-to-end: protocol round trip, plan cache,
// admission queueing, execution, result streaming.
//
//	ysmart-loadgen -clients 4 -requests 64                 # quick local run
//	ysmart-loadgen -requests 200 -listen 127.0.0.1:8080    # live /metrics, /jobs
//	ysmart-loadgen -requests 20 -json - -log events.jsonl  # bench rows + event log
//	ysmart-loadgen -requests 10 -listen 127.0.0.1:0 -selfcheck   # CI smoke
//	ysmart-loadgen -server 127.0.0.1:5433 -clients 8 -requests 200   # drive a server
//	ysmart-loadgen -server 127.0.0.1:5433 -requests 20 -selfcheck    # + oracle check
//
// In either mode all clients record into one obs.Registry, so the admin
// HTTP plane serves a live, merged view of the run. Wire-mode -selfcheck
// additionally replays every query through the single-node DBMS oracle and
// fails unless the server's rows match exactly.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ysmart"
	"ysmart/internal/experiments"
	"ysmart/internal/obs"
	"ysmart/internal/obs/httpserve"
	"ysmart/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ysmart-loadgen:", err)
		os.Exit(1)
	}
}

// clientStatus is one client's live row on the admin plane's /jobs endpoint.
type clientStatus struct {
	Client      int     `json:"client"`
	Query       string  `json:"query"`
	Done        int     `json:"done"`
	LastSeconds float64 `json:"last_seconds"`
	LastRows    int     `json:"last_rows,omitempty"` // wire mode: rows in the last result
}

// queryTotals accumulates per-query aggregates outside the registry (the
// registry holds the latency histograms; these are the bench-row counters).
type queryTotals struct {
	requests     int
	jobs         int
	simSeconds   float64
	scanBytes    int64
	shuffleBytes int64
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ysmart-loadgen", flag.ContinueOnError)
	var (
		queryList = fs.String("queries", "Q17,Q18,Q21,Q-CSA,Q-AGG", "comma-separated workload query names to replay round-robin")
		clients   = fs.Int("clients", 4, "concurrent clients, each with a private runtime (or wire connection with -server)")
		requests  = fs.Int("requests", 32, "total requests across all clients")
		serverTo  = fs.String("server", "", "drive a running ysmart-server at this host:port over the wire protocol instead of running in-process")
		modeName  = fs.String("mode", "ysmart", "translation mode: ysmart, one-to-one, pig-like, ic-tc-only (in-process only)")
		clusterN  = fs.String("cluster", "small", "cluster model: small, ec2-11, ec2-101, facebook (in-process only)")
		workers   = fs.Int("workers", 0, "goroutines per engine (0 = NumCPU; in-process only)")
		listen    = fs.String("listen", "", "serve the admin HTTP plane (/metrics, /jobs, /debug/pprof) on this address during the run")
		jsonTo    = fs.String("json", "", "write bench-JSON rows to <file> (- for stdout)")
		logTo     = fs.String("log", "", "write the structured JSON event stream to <file> (- for stderr)")
		logLevel  = fs.String("log-level", "info", "minimum event level: debug, info, warn, error")
		selfcheck = fs.Bool("selfcheck", false, "after the run, probe the admin endpoints (requires -listen) and, with -server, replay every query through the DBMS oracle and fail on any row mismatch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 || *requests < 1 {
		return fmt.Errorf("-clients and -requests must be at least 1")
	}
	if *selfcheck && *listen == "" && *serverTo == "" {
		return fmt.Errorf("-selfcheck requires -listen or -server")
	}
	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}
	if _, err := parseCluster(*clusterN); err != nil {
		return err
	}
	names := strings.Split(*queryList, ",")
	catalog := ysmart.WorkloadCatalog()
	workload := ysmart.WorkloadQueries()
	for i, n := range names {
		names[i] = strings.TrimSpace(n)
		if _, ok := workload[names[i]]; !ok {
			return fmt.Errorf("unknown query %q (have: Q17, Q18, Q21, Q-CSA, Q-AGG)", names[i])
		}
	}

	var logger *ysmart.Logger
	if *logTo != "" {
		min, ok := ysmart.ParseLogLevel(*logLevel)
		if !ok {
			return fmt.Errorf("unknown log level %q", *logLevel)
		}
		w := io.Writer(os.Stderr)
		if *logTo != "-" {
			f, err := os.Create(*logTo)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		logger = ysmart.NewLogger(w, min)
	}

	// One registry merges every client's recordings; the engine's
	// per-job histograms and the harness's query-latency histogram
	// land side by side on /metrics.
	reg := ysmart.NewRegistry()

	var statusMu sync.Mutex
	status := make([]clientStatus, *clients)
	for i := range status {
		status[i] = clientStatus{Client: i, Query: "idle"}
	}

	var srv *httpserve.Server
	baseURL := ""
	if *listen != "" {
		srv = httpserve.New(reg, nil, func() any {
			statusMu.Lock()
			defer statusMu.Unlock()
			out := make([]clientStatus, len(status))
			copy(out, status)
			return out
		})
		addr, err := srv.Start(*listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		baseURL = "http://" + addr
		fmt.Fprintf(stdout, "admin plane listening on %s\n", baseURL)
	}

	// Generate the workload data once; runtimes share the immutable rows.
	// Wire mode only needs it for the oracle selfcheck: the server owns
	// the served data.
	var tpch, clicks map[string][]ysmart.Row
	if *serverTo == "" || *selfcheck {
		if tpch, err = ysmart.GenerateTPCH(ysmart.DefaultTPCH()); err != nil {
			return err
		}
		if clicks, err = ysmart.GenerateClicks(ysmart.DefaultClicks()); err != nil {
			return err
		}
	}

	totals := make(map[string]*queryTotals, len(names))
	for _, n := range names {
		totals[n] = &queryTotals{}
	}
	var totalsMu sync.Mutex

	var next int64 // atomically claimed global request index
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// wireClient is one wire-mode client: a persistent connection replaying
	// queries against a running ysmart-server. Latency covers the full
	// round trip (protocol, plan cache, admission queue, execution, result
	// streaming). A server-side query error keeps the connection (the
	// protocol resyncs on ReadyForQuery); a transport error ends the client.
	wireClient := func(client int) {
		cli, err := server.Dial(*serverTo, "loadgen", "ysmart", 30*time.Second)
		if err != nil {
			fail(fmt.Errorf("client %d: dial %s: %w", client, *serverTo, err))
			return
		}
		defer cli.Close()
		for {
			idx := atomic.AddInt64(&next, 1) - 1
			if idx >= int64(*requests) {
				return
			}
			name := names[idx%int64(len(names))]
			statusMu.Lock()
			status[client].Query = name
			statusMu.Unlock()

			start := time.Now()
			res, err := cli.Query(workload[name])
			lat := time.Since(start).Seconds()
			if err != nil {
				reg.Add("ysmart_loadgen_errors_total", 1, "query", name)
				if logger.Enabled(ysmart.LogError) {
					logger.Error("loadgen.error", obs.F("query", name), obs.F("error", err.Error()))
				}
				fail(fmt.Errorf("%s: %w", name, err))
				var srvErr *server.ServerError
				if !errors.As(err, &srvErr) {
					return // transport error: this connection is gone
				}
				continue
			}
			reg.Observe("ysmart_query_latency_seconds", lat)
			reg.Observe("ysmart_query_latency_seconds", lat, "query", name)
			reg.Add("ysmart_loadgen_requests_total", 1, "query", name)
			totalsMu.Lock()
			totals[name].requests++
			totalsMu.Unlock()
			statusMu.Lock()
			status[client].Done++
			status[client].LastSeconds = lat
			status[client].LastRows = len(res.Rows)
			statusMu.Unlock()
		}
	}

	var wg sync.WaitGroup
	wallStart := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			if *serverTo != "" {
				wireClient(client)
				return
			}
			// A fresh cluster model per client: engines must not
			// share mutable model state.
			cluster, _ := parseCluster(*clusterN)
			rt, err := ysmart.NewRuntime(cluster)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("client %d: %w", client, err)
				}
				errMu.Unlock()
				return
			}
			if *workers > 0 {
				rt.SetWorkers(*workers)
			}
			rt.LoadTables(tpch)
			rt.LoadTables(clicks)
			// Parse once per client so no query state is shared
			// across goroutines; translation runs per request (it
			// is part of the serving path being measured).
			queries := make(map[string]*ysmart.Query, len(names))
			for _, n := range names {
				q, err := ysmart.Parse(workload[n], catalog)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("parse %s: %w", n, err)
					}
					errMu.Unlock()
					return
				}
				queries[n] = q
			}
			runOpts := []ysmart.RunOption{ysmart.WithMetrics(reg)}
			if logger != nil {
				runOpts = append(runOpts, ysmart.WithLogger(logger))
			}
			for {
				idx := atomic.AddInt64(&next, 1) - 1
				if idx >= int64(*requests) {
					return
				}
				name := names[idx%int64(len(names))]
				statusMu.Lock()
				status[client].Query = name
				statusMu.Unlock()

				start := time.Now()
				tr, err := queries[name].Translate(mode, ysmart.Options{
					QueryName: strings.ToLower(name),
					Logger:    logger,
				})
				if err == nil {
					var res *ysmart.Result
					res, err = rt.Run(tr, runOpts...)
					if err == nil {
						totalsMu.Lock()
						t := totals[name]
						t.requests++
						t.jobs = res.Stats.NumJobs()
						t.simSeconds += res.Stats.TotalTime()
						t.scanBytes += res.Stats.TotalMapInputBytes()
						t.shuffleBytes += res.Stats.TotalShuffleBytes()
						totalsMu.Unlock()
					}
				}
				lat := time.Since(start).Seconds()
				if err != nil {
					reg.Add("ysmart_loadgen_errors_total", 1, "query", name)
					if logger.Enabled(ysmart.LogError) {
						logger.Error("loadgen.error", obs.F("query", name), obs.F("error", err.Error()))
					}
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", name, err)
					}
					errMu.Unlock()
					continue
				}
				reg.Observe("ysmart_query_latency_seconds", lat)
				reg.Observe("ysmart_query_latency_seconds", lat, "query", name)
				reg.Add("ysmart_loadgen_requests_total", 1, "query", name)
				statusMu.Lock()
				status[client].Done++
				status[client].LastSeconds = lat
				statusMu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(wallStart).Seconds()
	statusMu.Lock()
	for i := range status {
		status[i].Query = "done"
	}
	statusMu.Unlock()
	if firstErr != nil {
		return firstErr
	}

	system := *modeName
	if *serverTo != "" {
		system = "server" // the server chose its own mode; rows measure the wire path
	}
	rows := benchRows(reg, totals, names, system, *clients, *workers, *requests, elapsed)
	printReport(stdout, rows, *requests, elapsed)

	if *jsonTo != "" {
		var buf strings.Builder
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
		if *jsonTo == "-" {
			fmt.Fprint(stdout, buf.String())
		} else if err := os.WriteFile(*jsonTo, []byte(buf.String()), 0o644); err != nil {
			return err
		}
	}

	if *selfcheck {
		if *serverTo != "" {
			tables := make(map[string][]ysmart.Row, len(tpch)+len(clicks))
			for n, t := range tpch {
				tables[n] = t
			}
			for n, t := range clicks {
				tables[n] = t
			}
			if err := wireOracleCheck(*serverTo, names, workload, tables); err != nil {
				return fmt.Errorf("selfcheck: %w", err)
			}
			fmt.Fprintf(stdout, "selfcheck: server rows match the DBMS oracle for %s\n", strings.Join(names, ", "))
		}
		if baseURL != "" {
			if err := probeAdmin(baseURL); err != nil {
				return fmt.Errorf("selfcheck: %w", err)
			}
			fmt.Fprintln(stdout, "selfcheck: all admin endpoints healthy")
		}
	}
	return nil
}

// wireOracleCheck replays each query over the wire on a fresh connection and
// compares the result rows — rendered in the server's own text format and
// sorted — against the single-node DBMS oracle run on an identical locally
// generated data set. Any difference in row content or count fails.
func wireOracleCheck(addr string, names []string, workload map[string]string, tables map[string][]ysmart.Row) error {
	cli, err := server.Dial(addr, "selfcheck", "ysmart", 30*time.Second)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer cli.Close()
	for _, name := range names {
		sql := workload[name]
		res, err := cli.Query(sql)
		if err != nil {
			return fmt.Errorf("%s over the wire: %w", name, err)
		}
		got := make([]string, len(res.Rows))
		for i, row := range res.Rows {
			cells := make([]string, len(row))
			for j, c := range row {
				if c == nil {
					cells[j] = "NULL"
				} else {
					cells[j] = *c
				}
			}
			got[i] = strings.Join(cells, "\t")
		}
		sort.Strings(got)

		q, err := ysmart.Parse(sql, ysmart.WorkloadCatalog())
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		oracleRows, err := ysmart.OracleResult(q, ysmart.WorkloadCatalog(), tables)
		if err != nil {
			return fmt.Errorf("%s oracle: %w", name, err)
		}
		want := make([]string, len(oracleRows))
		for i, row := range oracleRows {
			cells := make([]string, len(row))
			for j, v := range row {
				cells[j] = server.TextValue(v)
			}
			want[i] = strings.Join(cells, "\t")
		}
		sort.Strings(want)

		if len(got) != len(want) {
			return fmt.Errorf("%s: server returned %d rows, oracle %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("%s: row %d differs\n  server: %s\n  oracle: %s", name, i, got[i], want[i])
			}
		}
	}
	return nil
}

// benchRows builds one "loadgen" bench row per query plus an aggregate
// "all" row, with quantiles read back from the registry's histograms.
func benchRows(reg *ysmart.Registry, totals map[string]*queryTotals, names []string,
	mode string, clients, workers, requests int, elapsed float64) []experiments.BenchRow {
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	var rows []experiments.BenchRow
	for _, n := range sorted {
		t := totals[n]
		if t.requests == 0 {
			continue
		}
		p50, _ := reg.Quantile("ysmart_query_latency_seconds", 0.50, "query", n)
		p90, _ := reg.Quantile("ysmart_query_latency_seconds", 0.90, "query", n)
		p99, _ := reg.Quantile("ysmart_query_latency_seconds", 0.99, "query", n)
		rows = append(rows, experiments.BenchRow{
			Figure: "loadgen", Query: n, System: mode,
			Workers: workers, Clients: clients,
			Jobs: t.jobs, Seconds: t.simSeconds / float64(t.requests),
			ScanBytes: t.scanBytes, ShuffleBytes: t.shuffleBytes,
			Requests: t.requests, QPS: float64(t.requests) / elapsed,
			P50: p50, P90: p90, P99: p99,
		})
	}
	p50, _ := reg.Quantile("ysmart_query_latency_seconds", 0.50)
	p90, _ := reg.Quantile("ysmart_query_latency_seconds", 0.90)
	p99, _ := reg.Quantile("ysmart_query_latency_seconds", 0.99)
	rows = append(rows, experiments.BenchRow{
		Figure: "loadgen", Query: "all", System: mode,
		Workers: workers, Clients: clients,
		Requests: requests, QPS: float64(requests) / elapsed,
		P50: p50, P90: p90, P99: p99,
	})
	return rows
}

// printReport renders the human-readable latency table.
func printReport(w io.Writer, rows []experiments.BenchRow, requests int, elapsed float64) {
	fmt.Fprintf(w, "== load report: %d requests in %.2fs ==\n", requests, elapsed)
	fmt.Fprintf(w, "%-8s %8s %10s %10s %10s %10s\n", "query", "requests", "qps", "p50_ms", "p90_ms", "p99_ms")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %8d %10.1f %10.2f %10.2f %10.2f\n",
			r.Query, r.Requests, r.QPS, r.P50*1e3, r.P90*1e3, r.P99*1e3)
	}
}

// probeAdmin asserts the admin plane's endpoints answer 200 and that the
// metrics body carries the query-latency histogram families.
func probeAdmin(base string) error {
	for _, path := range []string{"/metrics", "/jobs", "/trace", "/debug/pprof/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/metrics" {
			for _, family := range []string{
				"ysmart_query_latency_seconds_bucket",
				"ysmart_query_latency_seconds_sum",
				"ysmart_query_latency_seconds_count",
			} {
				if !strings.Contains(string(body), family) {
					return fmt.Errorf("GET /metrics: missing %s family", family)
				}
			}
		}
	}
	return nil
}

func parseMode(name string) (ysmart.Mode, error) {
	switch name {
	case "ysmart":
		return ysmart.YSmart, nil
	case "one-to-one", "hive":
		return ysmart.OneToOne, nil
	case "pig-like", "pig":
		return ysmart.PigLike, nil
	case "ic-tc-only", "ictc":
		return ysmart.ICTCOnly, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func parseCluster(name string) (*ysmart.Cluster, error) {
	switch name {
	case "small":
		return ysmart.SmallCluster(), nil
	case "ec2-11":
		return ysmart.EC2Cluster(10), nil
	case "ec2-101":
		return ysmart.EC2Cluster(100), nil
	case "facebook":
		return ysmart.FacebookCluster(1), nil
	default:
		return nil, fmt.Errorf("unknown cluster %q", name)
	}
}
