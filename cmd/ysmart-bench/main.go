// Command ysmart-bench regenerates the paper's evaluation figures on the
// simulated cluster models and prints them as text tables next to the
// paper's reference numbers.
//
// Usage:
//
//	ysmart-bench            # all figures
//	ysmart-bench -fig 9     # just Fig. 9
//	ysmart-bench -fig 9 -json   # machine-readable rows instead of tables
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"ysmart/internal/experiments"
	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/obs/httpserve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ysmart-bench:", err)
		os.Exit(1)
	}
}

// figResult is what every figure harness returns: a human-readable table
// and flat machine-readable rows.
type figResult interface {
	Format() string
	BenchRows() []experiments.BenchRow
}

func run(args []string) error {
	fs := flag.NewFlagSet("ysmart-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 2b, 9, 10, 11, 12, 13, ablations, scaling, robustness, manimal, reuse, all")
	asJSON := fs.Bool("json", false, "emit one JSON array of per-run rows instead of text tables")
	faultSeed := fs.Int64("fault-seed", 1, "seed of the robustness figure's deterministic fault scenarios")
	workers := fs.Int("workers", 0, "goroutines executing engine tasks (0 = NumCPU); figures are identical at any count")
	listen := fs.String("listen", "", "serve bench progress on this address while figures run (/metrics histogram of per-figure wall seconds, /jobs live figure status)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers > 0 {
		// Figure harnesses build engines internally, so the knob is the
		// package-wide default for engines constructed after this point.
		mapreduce.SetDefaultWorkers(*workers)
	}

	w, err := experiments.NewWorkload()
	if err != nil {
		return err
	}

	type figure struct {
		name string
		run  func() (figResult, error)
	}
	figures := []figure{
		{"2b", func() (figResult, error) { return experiments.Fig2b(w) }},
		{"9", func() (figResult, error) { return experiments.Fig9(w) }},
		{"10", func() (figResult, error) { return experiments.Fig10(w) }},
		{"11", func() (figResult, error) { return experiments.Fig11(w) }},
		{"12", func() (figResult, error) { return experiments.Fig12(w) }},
		{"13", func() (figResult, error) { return experiments.Fig13(w) }},
		{"ablations", func() (figResult, error) { return experiments.Ablations(w) }},
		{"scaling", func() (figResult, error) { return experiments.ScalingSweep(w) }},
		{"robustness", func() (figResult, error) { return experiments.Robustness(w, *faultSeed) }},
		{"manimal", func() (figResult, error) { return experiments.Manimal(w) }},
		{"reuse", func() (figResult, error) { return experiments.Reuse(w) }},
	}

	// Bench progress plane: the figure harnesses build engines internally,
	// so -listen serves the harness's own registry — a wall-clock histogram
	// per completed figure plus a live status table on /jobs.
	var progressMu sync.Mutex
	progress := map[string]string{}
	var reg *obs.Registry
	if *listen != "" {
		reg = obs.NewRegistry()
		srv := httpserve.New(reg, nil, func() any {
			progressMu.Lock()
			defer progressMu.Unlock()
			out := make(map[string]string, len(progress))
			for k, v := range progress {
				out[k] = v
			}
			return out
		})
		addr, err := srv.Start(*listen)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bench progress listening on http://%s\n", addr)
	}

	matched := false
	var rows []experiments.BenchRow
	for _, f := range figures {
		if *fig != "all" && *fig != f.name {
			continue
		}
		matched = true
		progressMu.Lock()
		progress[f.name] = "running"
		progressMu.Unlock()
		figStart := time.Now()
		result, err := f.run()
		if err != nil {
			return fmt.Errorf("fig %s: %w", f.name, err)
		}
		if reg != nil {
			reg.Observe("ysmart_bench_figure_seconds", time.Since(figStart).Seconds(), "figure", f.name)
			reg.Add("ysmart_bench_figures_total", 1)
		}
		progressMu.Lock()
		progress[f.name] = "done"
		progressMu.Unlock()
		if *asJSON {
			rows = append(rows, result.BenchRows()...)
			continue
		}
		fmt.Println(result.Format())
		rows = append(rows, result.BenchRows()...)
	}
	if !matched {
		return fmt.Errorf("unknown figure %q (have 2b, 9, 10, 11, 12, 13, ablations, scaling, robustness, manimal, reuse, all)", *fig)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}

	var scanned, shuffled int64
	for _, r := range rows {
		scanned += r.ScanBytes
		shuffled += r.ShuffleBytes
	}
	fmt.Printf("bench totals: %d runs, %s scanned, %s shuffled (raw counters)\n",
		len(rows), obs.FormatBytes(scanned), obs.FormatBytes(shuffled))
	return nil
}
