// Command ysmart-bench regenerates the paper's evaluation figures on the
// simulated cluster models and prints them as text tables next to the
// paper's reference numbers.
//
// Usage:
//
//	ysmart-bench            # all figures
//	ysmart-bench -fig 9     # just Fig. 9
package main

import (
	"flag"
	"fmt"
	"os"

	"ysmart/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ysmart-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ysmart-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 2b, 9, 10, 11, 12, 13, ablations, scaling, all")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := experiments.NewWorkload()
	if err != nil {
		return err
	}

	type figure struct {
		name string
		run  func() (interface{ Format() string }, error)
	}
	figures := []figure{
		{"2b", func() (interface{ Format() string }, error) { return experiments.Fig2b(w) }},
		{"9", func() (interface{ Format() string }, error) { return experiments.Fig9(w) }},
		{"10", func() (interface{ Format() string }, error) { return experiments.Fig10(w) }},
		{"11", func() (interface{ Format() string }, error) { return experiments.Fig11(w) }},
		{"12", func() (interface{ Format() string }, error) { return experiments.Fig12(w) }},
		{"13", func() (interface{ Format() string }, error) { return experiments.Fig13(w) }},
		{"ablations", func() (interface{ Format() string }, error) { return experiments.Ablations(w) }},
		{"scaling", func() (interface{ Format() string }, error) { return experiments.ScalingSweep(w) }},
	}

	matched := false
	for _, f := range figures {
		if *fig != "all" && *fig != f.name {
			continue
		}
		matched = true
		result, err := f.run()
		if err != nil {
			return fmt.Errorf("fig %s: %w", f.name, err)
		}
		fmt.Println(result.Format())
	}
	if !matched {
		return fmt.Errorf("unknown figure %q (have 2b, 9, 10, 11, 12, 13, ablations, scaling, all)", *fig)
	}
	return nil
}
