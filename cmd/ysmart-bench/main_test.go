package main

import "testing"

func TestSingleFigure(t *testing.T) {
	if err := run([]string{"-fig", "2b"}); err != nil {
		t.Fatalf("fig 2b: %v", err)
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Error("unknown figure should error")
	}
}
