package main

import (
	"encoding/json"
	"os"
	"testing"

	"ysmart/internal/experiments"
)

func TestSingleFigure(t *testing.T) {
	if err := run([]string{"-fig", "2b"}); err != nil {
		t.Fatalf("fig 2b: %v", err)
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "nope"}); err == nil {
		t.Error("unknown figure should error")
	}
}

// TestListenFlag runs one figure with the progress plane up; the server
// binds an ephemeral port and is torn down when run returns.
func TestListenFlag(t *testing.T) {
	if err := run([]string{"-fig", "2b", "-listen", "127.0.0.1:0"}); err != nil {
		t.Fatalf("fig 2b with -listen: %v", err)
	}
	if err := run([]string{"-fig", "2b", "-listen", "256.0.0.1:-1"}); err == nil {
		t.Error("bad listen address should error")
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns what
// it printed.
func captureStdout(t *testing.T, f func() error) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		var buf []byte
		chunk := make([]byte, 4096)
		for {
			n, err := r.Read(chunk)
			buf = append(buf, chunk[:n]...)
			if err != nil {
				break
			}
		}
		done <- buf
	}()
	ferr := f()
	w.Close()
	out := <-done
	os.Stdout = orig
	if ferr != nil {
		t.Fatalf("run: %v", ferr)
	}
	return out
}

func TestJSONOutput(t *testing.T) {
	out := captureStdout(t, func() error { return run([]string{"-fig", "9", "-json"}) })
	var rows []experiments.BenchRow
	if err := json.Unmarshal(out, &rows); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(rows) != 4 {
		t.Fatalf("fig 9 rows = %d, want 4 (one-op-one-job, ic+tc, ysmart, hand-coded)", len(rows))
	}
	for _, r := range rows {
		if r.Figure != "9" || r.Query == "" || r.System == "" {
			t.Errorf("row missing identity fields: %+v", r)
		}
		if r.Jobs <= 0 || r.Seconds <= 0 || r.ScanBytes <= 0 {
			t.Errorf("row missing measurements: %+v", r)
		}
	}
	// The figure's point: YSmart's merged plan beats the one-to-one baseline.
	bySystem := map[string]experiments.BenchRow{}
	for _, r := range rows {
		bySystem[r.System] = r
	}
	if ys, oto := bySystem["ysmart"], bySystem["one-op-one-job"]; ys.Seconds >= oto.Seconds || ys.Jobs >= oto.Jobs {
		t.Errorf("ysmart (%d jobs, %.0fs) should beat one-op-one-job (%d jobs, %.0fs)",
			ys.Jobs, ys.Seconds, oto.Jobs, oto.Seconds)
	}
}
