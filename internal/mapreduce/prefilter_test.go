package mapreduce

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// grepJob counts lines containing "x", with an optional early filter that
// discharges the mapper's own guard.
func grepJob(in, out string, prefilter bool) *Job {
	input := Input{
		Path: in,
		Mapper: MapperFunc(func(line string, emit Emit) error {
			if !strings.Contains(line, "x") {
				return nil
			}
			emit("x", "1")
			return nil
		}),
	}
	if prefilter {
		input.Prefilter = func(line string) bool { return strings.Contains(line, "x") }
	}
	return &Job{
		Name:   "grep",
		Inputs: []Input{input},
		Reducer: ReducerFunc(func(key string, values []string, emit func(string)) error {
			emit(key + "\t" + FormatBytes(int64(len(values))))
			return nil
		}),
		Output: out,
	}
}

// TestPrefilterByteIdenticalAndCheaper checks the contract of Input.Prefilter:
// a filter that exactly discharges the mapper's guard leaves output and every
// shuffle counter byte-identical, counts the skipped lines, and lowers the
// predicted map CPU.
func TestPrefilterByteIdenticalAndCheaper(t *testing.T) {
	lines := []string{"ax", "b", "cx", "d", "e", "fx", "g", "h"}

	run := func(prefilter bool) (*JobStats, []string) {
		t.Helper()
		e := newTestEngine(t)
		e.DFS().Write("in", lines)
		stats, err := e.RunJob(grepJob("in", "out", prefilter))
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.DFS().Read("out")
		if err != nil {
			t.Fatal(err)
		}
		return stats, out
	}

	plain, plainOut := run(false)
	filt, filtOut := run(true)

	if !reflect.DeepEqual(plainOut, filtOut) {
		t.Fatalf("prefilter changed output: %v vs %v", plainOut, filtOut)
	}
	if plain.MapRecordsFiltered != 0 {
		t.Fatalf("unfiltered run counted %d filtered records", plain.MapRecordsFiltered)
	}
	if filt.MapRecordsFiltered != 5 {
		t.Fatalf("MapRecordsFiltered = %d, want 5", filt.MapRecordsFiltered)
	}
	if filt.MapInputRecords != plain.MapInputRecords {
		t.Fatalf("prefilter changed MapInputRecords: %d vs %d", filt.MapInputRecords, plain.MapInputRecords)
	}
	if filt.MapOutputRecords != plain.MapOutputRecords || filt.MapOutputBytes != plain.MapOutputBytes {
		t.Fatalf("prefilter changed map output counters: %+v vs %+v", filt, plain)
	}

	// The CPU charge must drop by exactly (1-factor) per filtered record.
	cm := DefaultCostModel()
	saved := mapCPURecords(plain, cm, 1) - mapCPURecords(filt, cm, 1)
	want := float64(filt.MapRecordsFiltered) * (1 - cm.prefilterFactor())
	if math.Abs(saved-want) > 1e-9 {
		t.Fatalf("mapCPURecords saving = %v, want %v", saved, want)
	}
}

// TestPrefilterFaultPath runs the same job under a fault plan at several
// worker counts: retries re-execute through the same prefilter, and output
// stays byte-identical to the unfiltered fault-free run.
func TestPrefilterFaultPath(t *testing.T) {
	lines := []string{"ax", "b", "cx", "d", "e", "fx", "g", "h", "ix", "j"}

	var wantOut []string
	for _, workers := range []int{1, 2, 8} {
		for _, prefilter := range []bool{false, true} {
			cl := SmallCluster()
			cl.Nodes = 4
			cl.Cost.SplitSize = 4 // several real map tasks
			cl.Faults = &FaultPlan{Seed: 7, TaskFailureProb: 0.2, NodeFailures: []NodeFailure{{Node: 3, At: 14}}}
			e, err := NewEngine(NewDFS(), cl)
			if err != nil {
				t.Fatal(err)
			}
			e.SetWorkers(workers)
			e.DFS().Write("in", lines)
			stats, err := e.RunJob(grepJob("in", "out", prefilter))
			if err != nil {
				t.Fatalf("workers=%d prefilter=%v: %v", workers, prefilter, err)
			}
			out, err := e.DFS().Read("out")
			if err != nil {
				t.Fatal(err)
			}
			if wantOut == nil {
				wantOut = out
			}
			if !reflect.DeepEqual(out, wantOut) {
				t.Fatalf("workers=%d prefilter=%v: output diverged: %v vs %v", workers, prefilter, out, wantOut)
			}
			if prefilter && stats.MapRecordsFiltered == 0 {
				t.Fatalf("workers=%d: fault path lost the filtered-record count", workers)
			}
		}
	}
}

// TestFaultSpecRejectsNonFinite pins the NaN/Inf hardening of the fault DSL
// and of Validate: non-finite probabilities, factors and death times must be
// rejected before they can reach the scheduler's ordering.
func TestFaultSpecRejectsNonFinite(t *testing.T) {
	for _, spec := range []string{"task=NaN", "straggler=Inf", "straggler=0.1xNaN", "node=1@NaN", "node=1@+Inf"} {
		if _, err := ParseFaultSpec(spec); err == nil {
			t.Errorf("ParseFaultSpec(%q) accepted a non-finite value", spec)
		}
	}
	bad := []*FaultPlan{
		{TaskFailureProb: math.NaN()},
		{StragglerProb: math.NaN()},
		{StragglerProb: 0.1, StragglerFactor: math.NaN()},
		{StragglerProb: 0.1, StragglerFactor: math.Inf(1)},
		{NodeFailures: []NodeFailure{{Node: 0, At: math.NaN()}}},
		{NodeFailures: []NodeFailure{{Node: 0, At: math.Inf(1)}}},
	}
	for i, p := range bad {
		if err := p.Validate(4); err == nil {
			t.Errorf("Validate accepted non-finite plan %d: %+v", i, p)
		}
	}
}
