package mapreduce

import (
	"fmt"
	"math"
	"sort"

	"ysmart/internal/obs"
)

// maxTracedTasks caps per-task span emission. Jobs with more map or reduce
// tasks than this get a single "tasks-elided" instant per phase instead, so
// traces of large scaling sweeps stay loadable in Perfetto.
const maxTracedTasks = 256

// finishJob advances the simulated clock past a completed job and, when
// instrumented, emits its span hierarchy and records its counters. It runs
// on every job so traced and untraced executions share one clock path.
func (e *Engine) finishJob(j *Job, s *JobStats, start float64) {
	end := start + s.StartupTime + s.MapTime + s.ShuffleTime + s.ReduceTime
	if e.tracer.Enabled() {
		e.emitJobTrace(j, s, start)
	}
	if e.metrics != nil {
		e.recordJobMetrics(s)
	}
	e.logJob(j, s, end)
	e.simNow = end
}

// logJob emits the job's structured lifecycle events: one job.done info
// line, warn lines for recovery activity and node deaths, and (at debug)
// one line per non-primary scheduled attempt.
func (e *Engine) logJob(j *Job, s *JobStats, end float64) {
	if !e.logger.Enabled(obs.LevelError) {
		return
	}
	e.logger.Info("job.done",
		obs.F("job", j.Name),
		obs.F("sim_s", end),
		obs.F("total_s", s.StartupTime+s.MapTime+s.ShuffleTime+s.ReduceTime),
		obs.F("map_s", s.MapTime),
		obs.F("shuffle_s", s.ShuffleTime),
		obs.F("reduce_s", s.ReduceTime),
		obs.F("map_tasks", int64(s.NumMapTasks)),
		obs.F("reduce_tasks", int64(s.NumReduceTasks)),
		obs.F("scan_bytes", s.MapInputBytes),
		obs.F("shuffle_bytes", s.ShuffleBytes),
		obs.F("output_rows", s.ReduceOutputRecords),
		obs.F("cost_drift", s.CostDrift()))
	if s.HasRecovery() {
		e.logger.Warn("job.recovery",
			obs.F("job", j.Name),
			obs.F("retries", int64(s.Retries())),
			obs.F("recomputed", int64(s.RecomputedMapTasks)),
			obs.F("speculative", int64(s.SpeculativeTasks)),
			obs.F("speculative_wins", int64(s.SpeculativeWins)))
	}
	if s.NodeFailures > 0 {
		e.logger.Warn("job.node_failures",
			obs.F("job", j.Name), obs.F("nodes", int64(s.NodeFailures)))
	}
	if !e.logger.Enabled(obs.LevelDebug) {
		return
	}
	for _, a := range s.Attempts {
		if a.Attempt == 0 && a.Outcome == OutcomeOK && !a.Speculative && !a.Recompute {
			continue // primary successful attempts are the uninteresting bulk
		}
		event := "task.retry"
		switch {
		case a.Speculative:
			event = "task.speculative"
		case a.Recompute:
			event = "task.recompute"
		}
		e.logger.Debug(event,
			obs.F("job", j.Name),
			obs.F("phase", a.Phase),
			obs.F("task", int64(a.Task)),
			obs.F("attempt", int64(a.Attempt)),
			obs.F("node", int64(a.Node)),
			obs.F("outcome", a.Outcome),
			obs.F("start_s", a.Start),
			obs.F("dur_s", a.Dur))
	}
}

// emitJobTrace emits the job ⊇ phase ⊇ wave ⊇ task span hierarchy plus the
// DFS replication and CMF dispatch instants for one job.
func (e *Engine) emitJobTrace(j *Job, s *JobStats, start float64) {
	track := "job:" + j.Name
	total := s.StartupTime + s.MapTime + s.ShuffleTime + s.ReduceTime
	e.tracer.Emit(obs.SpanEvent("job", j.Name, track, start, total,
		obs.F("map_tasks", int64(s.NumMapTasks)),
		obs.F("reduce_tasks", int64(s.NumReduceTasks)),
		obs.F("map_input_records", s.MapInputRecords),
		obs.F("map_input_bytes", s.MapInputBytes),
		obs.F("map_output_records", s.MapOutputRecords),
		obs.F("shuffle_bytes", s.ShuffleBytes),
		obs.F("reduce_groups", s.ReduceGroups),
		obs.F("output_records", s.ReduceOutputRecords),
		obs.F("output_bytes", s.ReduceOutputBytes)))

	faulty := len(s.Attempts) > 0
	t := start
	if s.StartupTime > 0 {
		e.tracer.Emit(obs.SpanEvent("phase", "startup", track, t, s.StartupTime))
		t += s.StartupTime
	}
	e.tracer.Emit(obs.SpanEvent("phase", "map", track, t, s.MapTime,
		obs.F("tasks", int64(s.NumMapTasks)),
		obs.F("bottleneck", s.MapBottleneck)))
	if !faulty {
		e.emitWaves(track, "map", t, s.MapTime, s.NumMapTasks, int(e.cluster.mapSlots()))
	}
	t += s.MapTime

	if !s.MapOnly {
		e.tracer.Emit(obs.SpanEvent("phase", "shuffle", track, t, s.ShuffleTime,
			obs.F("bytes", s.ShuffleBytes)))
		t += s.ShuffleTime
		e.tracer.Emit(obs.SpanEvent("phase", "reduce", track, t, s.ReduceTime,
			obs.F("tasks", int64(s.NumReduceTasks)),
			obs.F("groups", s.ReduceGroups),
			obs.F("bottleneck", s.ReduceBottleneck)))
		if !faulty {
			e.emitWaves(track, "reduce", t, s.ReduceTime, s.NumReduceTasks, int(e.cluster.reduceSlots()))
		}
		t += s.ReduceTime
	}
	if faulty {
		e.emitAttempts(track, s, start, t)
	}

	// Output replication to the DFS completes with the final phase.
	if repl := e.cluster.Cost.HDFSReplication - 1; repl > 0 {
		e.tracer.Emit(obs.InstantEvent("dfs", "dfs.replicate", "dfs", t,
			obs.F("path", j.Output),
			obs.F("replicas", int64(repl)),
			obs.F("bytes", s.ReduceOutputBytes)))
	}

	// Per-merged-operator dispatch counts from a CMF common reducer.
	for _, d := range s.Dispatch {
		e.tracer.Emit(obs.InstantEvent("cmf", "cmf.dispatch", track, t,
			obs.F("op", d.Op),
			obs.F("in_rows", d.InRows),
			obs.F("out_rows", d.OutRows)))
	}
}

// emitWaves emits wave spans (and task spans, when few enough) for one
// phase. Task slots fill in waves of `slots`; each wave gets an equal share
// of the phase time, matching how the cost model charges per-wave overhead.
func (e *Engine) emitWaves(track, phase string, start, dur float64, tasks, slots int) {
	if tasks <= 0 || dur <= 0 {
		return
	}
	if slots < 1 {
		slots = 1
	}
	waves := int(math.Ceil(float64(tasks) / float64(slots)))
	waveDur := dur / float64(waves)
	per := tasks / waves
	rem := tasks % waves
	taskIdx := 0
	for w := 0; w < waves; w++ {
		inWave := per
		if w < rem {
			inWave++
		}
		wStart := start + float64(w)*waveDur
		e.tracer.Emit(obs.SpanEvent("wave", fmt.Sprintf("%s-wave-%d", phase, w), track,
			wStart, waveDur, obs.F("tasks", int64(inWave))))
		if tasks > maxTracedTasks {
			continue
		}
		for i := 0; i < inWave; i++ {
			// The worker id is the simulated slot the task occupies (its
			// index within the wave) — deterministic by construction. Host
			// goroutine identity deliberately never reaches traces: it would
			// differ run to run and break byte-identical replay.
			e.tracer.Emit(obs.SpanEvent("task", fmt.Sprintf("%s-task-%d", phase, taskIdx), track,
				wStart, waveDur, obs.F("worker", int64(i))))
			taskIdx++
		}
	}
	if tasks > maxTracedTasks {
		e.tracer.Emit(obs.InstantEvent("task", "tasks-elided", track, start,
			obs.F("phase", phase), obs.F("tasks", int64(tasks))))
	}
}

// emitAttempts emits the event-level schedule of a fault-injected job:
// one span per task attempt (cat "attempt", "retry" for relaunches and
// recomputes, "spec" for speculative backups) plus a "fault" instant for
// every node death inside the job's span. Ordinary first attempts respect
// the maxTracedTasks cap; recovery spans are always emitted because they
// are rare and are the point of the trace.
func (e *Engine) emitAttempts(track string, s *JobStats, start, end float64) {
	elided := make(map[string]bool)
	for _, a := range s.Attempts {
		cat := "attempt"
		switch {
		case a.Speculative:
			cat = "spec"
		case a.Attempt > 0 || a.Outcome != OutcomeOK:
			cat = "retry"
		}
		phaseTasks := s.NumMapTasks
		if a.Phase == "reduce" {
			phaseTasks = s.NumReduceTasks
		}
		if cat == "attempt" && phaseTasks > maxTracedTasks {
			if !elided[a.Phase] {
				elided[a.Phase] = true
				e.tracer.Emit(obs.InstantEvent("task", "tasks-elided", track, a.Start,
					obs.F("phase", a.Phase), obs.F("tasks", int64(phaseTasks))))
			}
			continue
		}
		args := []obs.Field{
			obs.F("node", int64(a.Node)),
			obs.F("outcome", a.Outcome),
		}
		if a.Recompute {
			args = append(args, obs.F("recompute", "true"))
		}
		e.tracer.Emit(obs.SpanEvent(cat,
			fmt.Sprintf("%s-task-%d-a%d", a.Phase, a.Task, a.Attempt), track,
			a.Start, a.Dur, args...))
	}
	for _, nf := range e.cluster.Faults.NodeFailures {
		if nf.At >= start && nf.At <= end {
			e.tracer.Emit(obs.InstantEvent("fault", "node-failure", track, nf.At,
				obs.F("node", int64(nf.Node))))
		}
	}
}

// recordJobMetrics adds one job's counters to the registry.
func (e *Engine) recordJobMetrics(s *JobStats) {
	m := e.metrics
	m.Add("ysmart_engine_jobs_total", 1)
	m.Add("ysmart_engine_map_tasks_total", float64(s.NumMapTasks))
	m.Add("ysmart_engine_reduce_tasks_total", float64(s.NumReduceTasks))
	m.Add("ysmart_engine_map_input_records_total", float64(s.MapInputRecords))
	m.Add("ysmart_engine_map_input_bytes_total", float64(s.MapInputBytes))
	m.Add("ysmart_engine_map_output_records_total", float64(s.MapOutputRecords))
	m.Add("ysmart_engine_shuffle_bytes_total", float64(s.ShuffleBytes))
	m.Add("ysmart_engine_reduce_groups_total", float64(s.ReduceGroups))
	m.Add("ysmart_engine_reduce_output_records_total", float64(s.ReduceOutputRecords))
	m.Add("ysmart_engine_reduce_output_bytes_total", float64(s.ReduceOutputBytes))
	m.Add("ysmart_engine_sim_seconds_total", s.StartupTime+s.MapTime+s.ShuffleTime+s.ReduceTime)
	m.Add("ysmart_engine_phase_seconds_total", s.StartupTime, "phase", "startup")
	m.Add("ysmart_engine_phase_seconds_total", s.MapTime, "phase", "map")
	m.Add("ysmart_engine_phase_seconds_total", s.ShuffleTime, "phase", "shuffle")
	m.Add("ysmart_engine_phase_seconds_total", s.ReduceTime, "phase", "reduce")
	// Distribution families: how map/reduce durations, shuffle volume and
	// result cardinality spread across the jobs of a workload — the
	// ReStore-style statistics deciding which sub-plan outputs are worth
	// materializing.
	m.Observe("ysmart_job_map_seconds", s.MapTime)
	if !s.MapOnly {
		m.Observe("ysmart_job_reduce_seconds", s.ReduceTime)
		m.Observe("ysmart_job_shuffle_bytes", float64(s.ShuffleBytes))
	}
	m.Observe("ysmart_job_output_rows", float64(s.ReduceOutputRecords))
	// Cost-model drift: measured versus analytically predicted job time.
	// The totals reconstruct fleet-wide drift; the per-job gauge pinpoints
	// which job the model misjudged.
	m.Add("ysmart_costmodel_predicted_seconds_total", s.PredictedTime)
	m.Add("ysmart_costmodel_actual_seconds_total", s.StartupTime+s.MapTime+s.ShuffleTime+s.ReduceTime)
	m.Set("ysmart_costmodel_drift_ratio", s.CostDrift(), "job", s.Name)
	for _, d := range s.Dispatch {
		m.Add("ysmart_cmf_op_input_rows_total", float64(d.InRows), "op", d.Op)
		m.Add("ysmart_cmf_op_output_rows_total", float64(d.OutRows), "op", d.Op)
	}
	if e.faultsActive() {
		m.Add("ysmart_engine_task_retries_total", float64(s.MapTaskRetries), "phase", "map")
		m.Add("ysmart_engine_task_retries_total", float64(s.ReduceTaskRetries), "phase", "reduce")
		m.Add("ysmart_engine_recomputed_map_tasks_total", float64(s.RecomputedMapTasks))
		m.Add("ysmart_engine_speculative_tasks_total", float64(s.SpeculativeTasks))
		m.Add("ysmart_engine_speculative_wins_total", float64(s.SpeculativeWins))
		m.Add("ysmart_engine_node_failures_total", float64(s.NodeFailures))
	}
}

// dispatchDelta subtracts a before-snapshot of cumulative dispatch counts
// from an after-snapshot, dropping operators that saw no rows this job.
func dispatchDelta(before, after []OpDispatch) []OpDispatch {
	prev := make(map[string]OpDispatch, len(before))
	for _, d := range before {
		prev[d.Op] = d
	}
	var out []OpDispatch
	for _, d := range after {
		p := prev[d.Op]
		delta := OpDispatch{Op: d.Op, InRows: d.InRows - p.InRows, OutRows: d.OutRows - p.OutRows}
		if delta.InRows != 0 || delta.OutRows != 0 {
			out = append(out, delta)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Op < out[k].Op })
	return out
}
