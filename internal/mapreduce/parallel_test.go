package mapreduce

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestDFSConcurrentAccess hammers every DFS operation from many
// goroutines; run under -race it proves the store is safe for the engine's
// worker pool. Writers stay on per-goroutine paths (the engine never has
// two tasks writing one file) while readers roam everywhere.
func TestDFSConcurrentAccess(t *testing.T) {
	d := NewDFS()
	for g := 0; g < 8; g++ {
		d.Write(fmt.Sprintf("f%d", g), []string{"seed"})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := fmt.Sprintf("f%d", g)
			for i := 0; i < 200; i++ {
				d.Append(own, []string{fmt.Sprintf("line-%d-%d", g, i)})
				if lines, err := d.Read(fmt.Sprintf("f%d", (g+i)%8)); err != nil || len(lines) == 0 {
					t.Errorf("read: %v (%d lines)", err, len(lines))
					return
				}
				d.Exists(own)
				d.SizeBytes(own)
				d.List()
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		lines, err := d.Read(fmt.Sprintf("f%d", g))
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) != 201 {
			t.Errorf("f%d has %d lines, want 201", g, len(lines))
		}
	}
	if d.Contention() < 0 {
		t.Errorf("negative contention count %d", d.Contention())
	}
}

// TestDFSAppendDoesNotAliasReadSnapshots pins the torn-read fix: a slice
// returned by Read must not observe a later Append, even when the append
// fits the original backing array's capacity.
func TestDFSAppendDoesNotAliasReadSnapshots(t *testing.T) {
	d := NewDFS()
	d.Write("f", []string{"a", "b"})
	before, err := d.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]string(nil), before...)
	d.Append("f", []string{"c"})
	d.Append("f", []string{"d"})
	if !reflect.DeepEqual(before, snapshot) {
		t.Fatalf("Append mutated an earlier Read result: %v", before)
	}
	after, err := d.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c", "d"}; !reflect.DeepEqual(after, want) {
		t.Fatalf("Read after appends = %v, want %v", after, want)
	}
}

// TestForEachTaskDeterministicError checks the worker pool reports the
// lowest-index error regardless of which goroutine hits its error first.
func TestForEachTaskDeterministicError(t *testing.T) {
	e := &Engine{workers: 8}
	for trial := 0; trial < 20; trial++ {
		err := e.forEachTask(64, func(i int) error {
			if i%7 == 3 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("trial %d: err = %v, want task 3 (lowest index)", trial, err)
		}
	}
}

// TestSetWorkersClamps checks worker-count plumbing and clamping.
func TestSetWorkersClamps(t *testing.T) {
	e := newTestEngine(t)
	e.SetWorkers(-3)
	if e.Workers() != 1 {
		t.Errorf("SetWorkers(-3) -> %d, want 1", e.Workers())
	}
	e.SetWorkers(6)
	if e.Workers() != 6 {
		t.Errorf("SetWorkers(6) -> %d, want 6", e.Workers())
	}
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d, want >= 1", DefaultWorkers())
	}
	SetDefaultWorkers(3)
	if DefaultWorkers() != 3 {
		t.Errorf("after SetDefaultWorkers(3): %d", DefaultWorkers())
	}
	SetDefaultWorkers(0) // restore NumCPU
}

// benchReducer sums integer values per key. It is stateless, so it carries
// the ConcurrentReduce marker and the engine may fan its key groups out
// across workers.
type benchReducer struct{}

func (benchReducer) Reduce(key string, values []string, emit func(line string)) error {
	var sum int64
	for _, v := range values {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return err
		}
		sum += n
	}
	emit(key + "\t" + strconv.FormatInt(sum, 10))
	return nil
}

func (benchReducer) ConcurrentReduce() {}

// benchJob builds a deliberately CPU-heavy wordcount variant: the mapper
// burns cycles per line (standing in for real deserialization + predicate
// work) so the benchmark measures compute scaling, not slice shuffling.
func benchJob() *Job {
	return &Job{
		Name: "bench[AGG1]",
		Inputs: []Input{{
			Path: "in",
			Mapper: MapperFunc(func(line string, emit Emit) error {
				h := uint64(14695981039346656037)
				for spin := 0; spin < 400; spin++ {
					for i := 0; i < len(line); i++ {
						h = (h ^ uint64(line[i])) * 1099511628211
					}
				}
				for _, w := range strings.Fields(line) {
					emit(w, strconv.FormatUint(h%10, 10))
				}
				return nil
			}),
		}},
		Reducer: benchReducer{},
		Combiner: CombinerFunc(func(key string, values []string) ([]string, error) {
			var sum int64
			for _, v := range values {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return nil, err
				}
				sum += n
			}
			return []string{strconv.FormatInt(sum, 10)}, nil
		}),
		Output: "out",
	}
}

// BenchmarkRunChain measures wall-clock scaling of one CPU-bound job
// across worker counts. Results are asserted identical to the sequential
// run, so the numbers are comparable by construction.
func BenchmarkRunChain(b *testing.B) {
	lines := make([]string, 2000)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := range lines {
		lines[i] = fmt.Sprintf("%s %s %s %s",
			words[i%8], words[(i*3+1)%8], words[(i*5+2)%8], words[(i*7+3)%8])
	}
	cluster := SmallCluster()
	cluster.Cost.SplitSize = 1024 // dozens of map tasks

	var baseline []string
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dfs := NewDFS()
				dfs.Write("in", lines)
				e, err := NewEngine(dfs, cluster)
				if err != nil {
					b.Fatal(err)
				}
				e.SetWorkers(workers)
				if _, err := e.RunChain([]*Job{benchJob()}); err != nil {
					b.Fatal(err)
				}
				out, err := dfs.Read("out")
				if err != nil {
					b.Fatal(err)
				}
				if baseline == nil {
					baseline = out
				} else if !reflect.DeepEqual(out, baseline) {
					b.Fatalf("workers=%d output differs from sequential baseline", workers)
				}
			}
		})
	}
}
