package mapreduce

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
)

// FaultPlan is a deterministic, seeded fault scenario injected into the
// engine's wave scheduler. It replaces the deprecated analytic
// Cluster.TaskFailureRate inflation with event-level recovery: failed task
// attempts are actually re-executed through the user's map/reduce code
// (re-reading their input from the surviving DFS replicas), whole-node
// failures kill in-flight attempts and force completed map tasks on the
// dead node to recompute their lost local output, and straggler attempts
// run slowed down — the mechanics Dean & Ghemawat describe that the
// paper's §III materialization argument takes for granted.
//
// Every outcome is derived by hashing (Seed, kind, job, phase, task,
// attempt), so the scenario is a pure function of the plan: independent of
// iteration order, of whether a tracer is attached, and of previous runs.
type FaultPlan struct {
	// Seed selects the deterministic fault sequence.
	Seed int64
	// TaskFailureProb is the per-attempt probability that a map or reduce
	// task attempt fails partway through and must be relaunched. In [0, 1).
	TaskFailureProb float64
	// StragglerProb is the per-attempt probability that an attempt runs
	// StragglerFactor times slower than nominal. In [0, 1).
	StragglerProb float64
	// StragglerFactor multiplies a straggling attempt's work time
	// (default 4, must be >= 1 when set).
	StragglerFactor float64
	// MaxAttempts bounds executions per task, like Hadoop's
	// mapred.map.max.attempts (default 4). The simulator injects at most
	// MaxAttempts-1 failures per task, so jobs always complete: the final
	// allowed attempt succeeds unless its node dies.
	MaxAttempts int
	// NodeFailures lists whole-node deaths. A dead node's slots never run
	// another attempt; its in-flight attempts are killed and relaunched
	// elsewhere, and map tasks that already completed on it re-execute to
	// recompute their lost (node-local) map output.
	NodeFailures []NodeFailure
}

// NodeFailure kills one node at an absolute simulated time. Times share
// the engine clock, so in a job chain a failure can land in any job, or
// between jobs.
type NodeFailure struct {
	// Node is the worker index in [0, Cluster.Nodes).
	Node int
	// At is the death time in absolute simulated seconds.
	At float64
}

// Speculation configures backup attempts for stragglers (MapReduce's
// "backup tasks"). When enabled, a successful attempt running slower than
// SlowdownThreshold times its nominal duration gets a backup attempt once
// a slot frees after the task's expected completion; the first finisher
// wins and the loser is killed.
type Speculation struct {
	Enabled bool
	// SlowdownThreshold is the slowdown factor beyond which an attempt is
	// considered straggling (default 1.5).
	SlowdownThreshold float64
}

// Default fault-plan tuning constants.
const (
	defaultStragglerFactor   = 4
	defaultMaxAttempts       = 4
	defaultSlowdownThreshold = 1.5
)

// stragglerFactor returns the configured factor or its default.
func (p *FaultPlan) stragglerFactor() float64 {
	if p.StragglerFactor <= 0 {
		return defaultStragglerFactor
	}
	return p.StragglerFactor
}

// maxAttempts returns the configured attempt cap or its default.
func (p *FaultPlan) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return defaultMaxAttempts
	}
	return p.MaxAttempts
}

// threshold returns the speculation slowdown threshold or its default.
func (sp Speculation) threshold() float64 {
	if sp.SlowdownThreshold <= 0 {
		return defaultSlowdownThreshold
	}
	return sp.SlowdownThreshold
}

// IsZero reports whether the plan injects no events at all. An engine with
// a zero plan takes the exact analytic cost path of a plan-free engine, so
// results and JobStats are byte-identical.
func (p *FaultPlan) IsZero() bool {
	return p.TaskFailureProb == 0 && p.StragglerProb == 0 && len(p.NodeFailures) == 0
}

// Validate checks the plan against the cluster it will run on.
func (p *FaultPlan) Validate(nodes int) error {
	// The range checks below are written as negated closed-interval tests
	// on purpose: NaN compares false against everything, so `< 0 || >= 1`
	// would wave a NaN probability through and later feed the scheduler's
	// sort a value no total order can place.
	switch {
	case !(p.TaskFailureProb >= 0 && p.TaskFailureProb < 1):
		return fmt.Errorf("fault plan: task failure probability must be in [0, 1)")
	case !(p.StragglerProb >= 0 && p.StragglerProb < 1):
		return fmt.Errorf("fault plan: straggler probability must be in [0, 1)")
	case p.StragglerFactor != 0 && !(p.StragglerFactor >= 1 && !math.IsInf(p.StragglerFactor, 1)):
		return fmt.Errorf("fault plan: straggler factor must be finite and >= 1")
	case p.MaxAttempts < 0:
		return fmt.Errorf("fault plan: max attempts must be positive")
	}
	for _, nf := range p.NodeFailures {
		if nf.Node < 0 || nf.Node >= nodes {
			return fmt.Errorf("fault plan: node %d out of range [0, %d)", nf.Node, nodes)
		}
		if !(nf.At >= 0 && !math.IsInf(nf.At, 1)) {
			return fmt.Errorf("fault plan: node %d failure time must be finite and >= 0", nf.Node)
		}
	}
	return nil
}

// deathTimes returns the earliest death time per node (a node can only die
// once; duplicate entries keep the earliest).
func (p *FaultPlan) deathTimes() map[int]float64 {
	if len(p.NodeFailures) == 0 {
		return nil
	}
	out := make(map[int]float64, len(p.NodeFailures))
	for _, nf := range p.NodeFailures {
		if t, ok := out[nf.Node]; !ok || nf.At < t {
			out[nf.Node] = nf.At
		}
	}
	return out
}

// roll derives a deterministic uniform value in [0, 1) for one decision.
// The key includes every coordinate of the decision, so outcomes are
// independent of scheduling order and of each other.
func (p *FaultPlan) roll(kind, job, phase string, task, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s\x00%s\x00%s\x00%d\x00%d", p.Seed, kind, job, phase, task, attempt)
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}

// TaskAttempt records one scheduled execution attempt of a task — the
// event-level recovery history kept in JobStats.Attempts and rendered by
// the trace exporters. Times are absolute simulated seconds.
type TaskAttempt struct {
	// Phase is "map" or "reduce".
	Phase string
	// Task is the task index within the phase; Attempt numbers the task's
	// executions (0 is the original).
	Task, Attempt int
	// Node is the worker the attempt ran on.
	Node int
	// Start and Dur locate the attempt on the simulated clock.
	Start, Dur float64
	// Outcome is "ok", "failed" (injected task failure), "node-lost"
	// (killed by a node death), or "killed" (lost a speculative race).
	Outcome string
	// Speculative marks backup attempts launched for stragglers.
	Speculative bool
	// Recompute marks re-executions of already-completed map tasks whose
	// output died with their node.
	Recompute bool
}

// Attempt outcome values.
const (
	OutcomeOK       = "ok"
	OutcomeFailed   = "failed"
	OutcomeNodeLost = "node-lost"
	OutcomeKilled   = "killed"
)

// ParseFaultSpec parses the compact fault DSL used by the -faults CLI
// flag: comma-separated clauses
//
//	task=P            per-attempt task failure probability
//	straggler=PxF     straggler probability P slowed by factor F (F optional)
//	node=N@T          node N dies at simulated second T (repeatable)
//	attempts=K        per-task attempt cap
//
// e.g. "task=0.1,straggler=0.05x6,node=2@500". The seed is supplied
// separately (-fault-seed) so one scenario can be replayed under many
// seeds.
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	// strconv.ParseFloat happily accepts "NaN" and "Inf"; no fault
	// coordinate may be non-finite, so reject them right at the parser.
	parseFinite := func(clause, s string) (float64, error) {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("fault spec %q: %v", clause, err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, fmt.Errorf("fault spec %q: value must be finite", clause)
		}
		return f, nil
	}
	p := &FaultPlan{}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault spec %q: want key=value", clause)
		}
		switch key {
		case "task":
			f, err := parseFinite(clause, val)
			if err != nil {
				return nil, err
			}
			p.TaskFailureProb = f
		case "straggler":
			prob, factor, hasFactor := strings.Cut(val, "x")
			f, err := parseFinite(clause, prob)
			if err != nil {
				return nil, err
			}
			p.StragglerProb = f
			if hasFactor {
				x, err := parseFinite(clause, factor)
				if err != nil {
					return nil, err
				}
				p.StragglerFactor = x
			}
		case "node":
			idx, at, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault spec %q: want node=N@T", clause)
			}
			n, err := strconv.Atoi(idx)
			if err != nil {
				return nil, fmt.Errorf("fault spec %q: %v", clause, err)
			}
			t, err := parseFinite(clause, at)
			if err != nil {
				return nil, err
			}
			p.NodeFailures = append(p.NodeFailures, NodeFailure{Node: n, At: t})
		case "attempts":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("fault spec %q: %v", clause, err)
			}
			p.MaxAttempts = n
		default:
			return nil, fmt.Errorf("fault spec: unknown key %q (have task, straggler, node, attempts)", key)
		}
	}
	sort.Slice(p.NodeFailures, func(i, k int) bool {
		a, b := p.NodeFailures[i], p.NodeFailures[k]
		// Validate and parseFinite reject NaN times, but the comparator
		// must be a total order regardless of its inputs: NaN sorts first,
		// deterministically, instead of poisoning the whole ordering.
		if math.IsNaN(a.At) || math.IsNaN(b.At) {
			if math.IsNaN(a.At) != math.IsNaN(b.At) {
				return math.IsNaN(a.At)
			}
			return a.Node < b.Node
		}
		return a.At < b.At || (a.At == b.At && a.Node < b.Node)
	})
	return p, nil
}
