package mapreduce

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ysmart/internal/obs"
)

// chainJobs builds a three-job dependent chain over the given DFS content.
func chainJobs() []*Job {
	j1 := wordCountJob("in", "m")
	j1.Name = "j1"
	j2 := wordCountJob("m", "o")
	j2.Name = "j2"
	j2.DependsOn = []*Job{j1}
	j3 := wordCountJob("o", "p")
	j3.Name = "j3"
	j3.DependsOn = []*Job{j2}
	return []*Job{j1, j2, j3}
}

func TestTopoSortDirect(t *testing.T) {
	// Diamond: d depends on b and c, which both depend on a.
	a := wordCountJob("in", "a")
	a.Name = "a"
	b := wordCountJob("a", "b")
	b.Name = "b"
	b.DependsOn = []*Job{a}
	c := wordCountJob("a", "c")
	c.Name = "c"
	c.DependsOn = []*Job{a}
	d := wordCountJob("b", "d")
	d.Name = "d"
	d.DependsOn = []*Job{b, c}
	ordered, err := topoSort([]*Job{d, c, b, a})
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, j := range ordered {
		pos[j.Name] = i
	}
	if len(ordered) != 4 || pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Errorf("diamond order wrong: %v", pos)
	}

	// Cycle.
	x := wordCountJob("in", "x")
	x.Name = "x"
	y := wordCountJob("x", "y")
	y.Name = "y"
	x.DependsOn = []*Job{y}
	y.DependsOn = []*Job{x}
	if _, err := topoSort([]*Job{x, y}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle err = %v", err)
	}

	// Dependency outside the submitted set.
	z := wordCountJob("in", "z")
	z.Name = "z"
	z.DependsOn = []*Job{a}
	if _, err := topoSort([]*Job{z}); err == nil || !strings.Contains(err.Error(), "not in the chain") {
		t.Errorf("outside-dep err = %v", err)
	}
}

func TestChainStatsTotalsIncludeGaps(t *testing.T) {
	cluster := FacebookCluster(7)
	cluster.DataScale = 1
	dfs := NewDFS()
	dfs.Write("in", []string{"a b", "b c"})
	e, err := NewEngine(dfs, cluster)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.RunChain(chainJobs())
	if err != nil {
		t.Fatal(err)
	}
	var wantTotal, phases, gaps float64
	var wantScan, wantShuffle int64
	for _, js := range st.Jobs {
		wantTotal += js.TotalTime()
		phases += js.StartupTime + js.MapTime + js.ShuffleTime + js.ReduceTime
		gaps += js.GapBefore
		wantScan += js.MapInputBytes
		wantShuffle += js.ShuffleBytes
	}
	if got := st.TotalTime(); got != wantTotal {
		t.Errorf("TotalTime = %f, want per-job sum %f", got, wantTotal)
	}
	if gaps <= 0 {
		t.Fatal("contention cluster produced no gaps")
	}
	if st.TotalTime() <= phases {
		t.Errorf("TotalTime %f must include %f of gaps beyond phase time %f", st.TotalTime(), gaps, phases)
	}
	if st.TotalMapInputBytes() != wantScan || st.TotalShuffleBytes() != wantShuffle {
		t.Errorf("byte totals = %d/%d, want %d/%d",
			st.TotalMapInputBytes(), st.TotalShuffleBytes(), wantScan, wantShuffle)
	}
}

// runChainOnce executes the canonical chain on a fresh engine, optionally
// instrumented, and returns its stats plus final output.
func runChainOnce(t *testing.T, tracer obs.Tracer, metrics *obs.Registry) (*ChainStats, []string) {
	t.Helper()
	cluster := FacebookCluster(3)
	cluster.DataScale = 1
	dfs := NewDFS()
	dfs.Write("in", []string{"a b c", "b c d", "c d e"})
	e, err := NewEngine(dfs, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if tracer != nil || metrics != nil {
		e.Instrument(tracer, metrics)
	}
	st, err := e.RunChain(chainJobs())
	if err != nil {
		t.Fatal(err)
	}
	out, err := dfs.Read("p")
	if err != nil {
		t.Fatal(err)
	}
	return st, out
}

func TestTracedRunIdenticalToUntraced(t *testing.T) {
	plain, plainOut := runChainOnce(t, nil, nil)
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	traced, tracedOut := runChainOnce(t, col, reg)

	if !reflect.DeepEqual(plain.Jobs, traced.Jobs) {
		t.Errorf("instrumentation changed JobStats:\nplain  %+v\ntraced %+v", plain.Jobs, traced.Jobs)
	}
	if !reflect.DeepEqual(plainOut, tracedOut) {
		t.Errorf("instrumentation changed results: %v vs %v", plainOut, tracedOut)
	}
	if col.Len() == 0 {
		t.Fatal("collector recorded nothing")
	}
	if reg.Value("ysmart_engine_jobs_total") != 3 {
		t.Errorf("jobs_total = %v, want 3", reg.Value("ysmart_engine_jobs_total"))
	}
}

func TestTraceSpanNesting(t *testing.T) {
	col := obs.NewCollector()
	st, _ := runChainOnce(t, col, nil)
	events := col.Events()

	byCat := make(map[string][]obs.Event)
	for _, ev := range events {
		byCat[ev.Cat] = append(byCat[ev.Cat], ev)
	}
	if len(byCat["job"]) != 3 {
		t.Fatalf("job spans = %d, want 3", len(byCat["job"]))
	}
	if len(byCat["chain"]) != 1 {
		t.Fatalf("chain spans = %d, want 1", len(byCat["chain"]))
	}
	if len(byCat["gap"]) == 0 || len(byCat["dfs"]) == 0 {
		t.Errorf("expected gap and dfs events, got %d/%d", len(byCat["gap"]), len(byCat["dfs"]))
	}

	const eps = 1e-6
	contains := func(outer, inner obs.Event) bool {
		return outer.Time <= inner.Time+eps && outer.End()+eps >= inner.End()
	}
	chain := byCat["chain"][0]
	for _, job := range byCat["job"] {
		if !contains(chain, job) {
			t.Errorf("chain [%f,%f] does not contain job %s [%f,%f]",
				chain.Time, chain.End(), job.Name, job.Time, job.End())
		}
	}
	// Every phase nests in its track's job span; every wave nests in the
	// phase it is named after; every task nests in some wave.
	jobByTrack := make(map[string]obs.Event)
	for _, job := range byCat["job"] {
		jobByTrack[job.Track] = job
	}
	for _, ph := range byCat["phase"] {
		job, ok := jobByTrack[ph.Track]
		if !ok || !contains(job, ph) {
			t.Errorf("phase %s on %s not nested in its job span", ph.Name, ph.Track)
		}
	}
	phaseSpan := func(track, name string) (obs.Event, bool) {
		for _, ph := range byCat["phase"] {
			if ph.Track == track && ph.Name == name {
				return ph, true
			}
		}
		return obs.Event{}, false
	}
	for _, wv := range byCat["wave"] {
		phaseName := strings.SplitN(wv.Name, "-", 2)[0] // "map-wave-0" -> "map"
		ph, ok := phaseSpan(wv.Track, phaseName)
		if !ok || !contains(ph, wv) {
			t.Errorf("wave %s on %s not nested in phase %s", wv.Name, wv.Track, phaseName)
		}
	}
	for _, task := range byCat["task"] {
		if task.Kind != obs.Span {
			continue // tasks-elided instant
		}
		nested := false
		for _, wv := range byCat["wave"] {
			if wv.Track == task.Track && contains(wv, task) {
				nested = true
				break
			}
		}
		if !nested {
			t.Errorf("task %s on %s not nested in any wave", task.Name, task.Track)
		}
	}
	// The chain span duration matches the stats total.
	if got, want := chain.Dur, st.TotalTime(); got < want-eps || got > want+eps {
		t.Errorf("chain span dur = %f, want stats total %f", got, want)
	}
}

func TestTraceChromeDeterministic(t *testing.T) {
	build := func() []byte {
		col := obs.NewCollector()
		runChainOnce(t, col, nil)
		return obs.ChromeTrace(col.Events())
	}
	if b1, b2 := build(), build(); !bytes.Equal(b1, b2) {
		t.Error("traced runs produced different Chrome trace bytes")
	}
}

func TestTasksElidedOverCap(t *testing.T) {
	cluster := SmallCluster()
	dfs := NewDFS()
	dfs.Write("in", []string{"a b", "c d", "e f", "g h"})
	inBytes := dfs.SizeBytes("in")
	// Scale the input so the job needs more than maxTracedTasks map tasks.
	cluster.DataScale = float64(maxTracedTasks+10) * float64(cluster.Cost.SplitSize) / float64(inBytes)
	e, err := NewEngine(dfs, cluster)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	e.Instrument(col, nil)
	if _, err := e.RunJob(wordCountJob("in", "out")); err != nil {
		t.Fatal(err)
	}
	var taskSpans, elided, waves int
	for _, ev := range col.Events() {
		switch {
		case ev.Cat == "task" && ev.Kind == obs.Span && strings.HasPrefix(ev.Name, "map-"):
			taskSpans++
		case ev.Name == "tasks-elided" && ev.Arg("phase") == "map":
			elided++
		case ev.Cat == "wave" && strings.HasPrefix(ev.Name, "map-"):
			waves++
		}
	}
	if taskSpans != 0 {
		t.Errorf("map task spans = %d, want 0 above the cap", taskSpans)
	}
	if elided != 1 {
		t.Errorf("tasks-elided instants = %d, want 1", elided)
	}
	if waves == 0 {
		t.Error("wave spans should still be emitted above the cap")
	}
}

func TestDispatchDelta(t *testing.T) {
	before := []OpDispatch{{Op: "AGG1", InRows: 10, OutRows: 4}, {Op: "JOIN1", InRows: 5, OutRows: 5}}
	after := []OpDispatch{
		{Op: "AGG1", InRows: 25, OutRows: 9},
		{Op: "JOIN1", InRows: 5, OutRows: 5}, // untouched this job -> dropped
		{Op: "SORT1", InRows: 3, OutRows: 3}, // new this job
	}
	got := dispatchDelta(before, after)
	want := []OpDispatch{
		{Op: "AGG1", InRows: 15, OutRows: 5},
		{Op: "SORT1", InRows: 3, OutRows: 3},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dispatchDelta = %+v, want %+v", got, want)
	}
}

func TestDFSInstrumentCounts(t *testing.T) {
	dfs := NewDFS()
	col := obs.NewCollector()
	reg := obs.NewRegistry()
	dfs.Instrument(col, reg, func() float64 { return 42 })
	dfs.Write("f", []string{"ab", "cd"})
	if _, err := dfs.Read("f"); err != nil {
		t.Fatal(err)
	}
	var reads, writes int
	for _, ev := range col.Events() {
		switch ev.Name {
		case "dfs.read":
			reads++
			if ev.Time != 42 || ev.Arg("path") != "f" || ev.Arg("bytes") != int64(6) {
				t.Errorf("read instant wrong: %+v", ev)
			}
		case "dfs.write":
			writes++
		}
	}
	if reads != 1 || writes != 1 {
		t.Errorf("reads=%d writes=%d, want 1/1", reads, writes)
	}
	if reg.Value("ysmart_dfs_reads_total") != 1 || reg.Value("ysmart_dfs_read_bytes_total") != 6 {
		t.Errorf("read metrics wrong: %v / %v",
			reg.Value("ysmart_dfs_reads_total"), reg.Value("ysmart_dfs_read_bytes_total"))
	}
	// Detaching restores the silent default.
	dfs.Instrument(nil, nil, nil)
	dfs.Write("g", []string{"x"})
	if col.Len() != 2 {
		t.Errorf("events after detach = %d, want 2", col.Len())
	}
}
