package mapreduce

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The worker pool. Map tasks, per-task combiners, reduce key groups and
// fault-path re-executions fan out across Engine.Workers goroutines. Every
// parallel section follows the same discipline:
//
//   - the driver builds the complete work list up front (DFS reads and
//     trace emission happen on the driver, in task order, before any
//     worker starts);
//   - each work item writes only into its own slot of a pre-sized result
//     slice;
//   - the driver gathers results by ascending task index after the join.
//
// Host scheduling therefore never reaches anything observable: JobStats,
// DFS contents, traces and fault replay are byte-identical at any worker
// count. Goroutine identity is deliberately absent from spans — task spans
// carry the deterministic simulated slot instead (see emitWaves) — because
// a host goroutine id would differ between runs and break replay.

// defaultWorkers is the worker count engines start with; NumCPU unless
// overridden by SetDefaultWorkers (the -workers CLI flag).
var defaultWorkers atomic.Int64

func init() { defaultWorkers.Store(int64(runtime.NumCPU())) }

// SetDefaultWorkers sets the worker count newly built engines use. n <= 0
// restores the NumCPU default. It exists for CLIs whose engines are
// constructed deep inside harnesses (ysmart-bench); code holding an Engine
// should call SetWorkers instead.
func SetDefaultWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the worker count newly built engines use.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// SetWorkers sets how many goroutines execute this engine's tasks. n <= 1
// means fully sequential execution on the calling goroutine. Results are
// byte-identical at any worker count; only host wall-clock changes.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Workers returns the engine's worker count.
func (e *Engine) Workers() int { return e.workers }

// forEachTask runs fn(0..n-1) across the engine's workers and joins before
// returning. Each call must confine its writes to per-index state. The
// returned error is the lowest-indexed failure, matching what a sequential
// loop that stops at the first error would report; on the inline (single
// worker) path later tasks are genuinely not run, which is indistinguishable
// because a failed job contributes no stats or output.
func (e *Engine) forEachTask(n int, fn func(i int) error) error {
	workers := e.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// lint:ignore sharecheck the atomic fetch-add hands each iteration a unique index, so errs[i] slots are disjoint
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
