package mapreduce

import (
	"strings"
	"testing"
)

func TestJobStatsTimesAndString(t *testing.T) {
	s := &JobStats{
		Name:           "j1[AGG]",
		MapInputBytes:  5 << 20,
		MapOutputBytes: 1 << 10,
		NumMapTasks:    3,
		NumReduceTasks: 2,
		ReduceGroups:   7,
		StartupTime:    12,
		MapTime:        100,
		ShuffleTime:    5,
		ReduceTime:     30,
		GapBefore:      8,
	}
	if got := s.TotalTime(); got != 155 {
		t.Errorf("TotalTime = %f, want 155", got)
	}
	if got := s.ReducePhaseTime(); got != 35 {
		t.Errorf("ReducePhaseTime = %f, want 35", got)
	}
	str := s.String()
	for _, want := range []string{"j1[AGG]", "3 tasks", "5.00MB", "1.00KB", "7 groups"} {
		if !strings.Contains(str, want) {
			t.Errorf("String missing %q: %s", want, str)
		}
	}
}

func TestChainStatsAggregates(t *testing.T) {
	c := &ChainStats{Jobs: []*JobStats{
		{Name: "a", MapInputBytes: 100, ShuffleBytes: 10, MapTime: 1, StartupTime: 2},
		{Name: "b", MapInputBytes: 200, ShuffleBytes: 30, ReduceTime: 4, GapBefore: 5},
	}}
	if c.NumJobs() != 2 {
		t.Errorf("NumJobs = %d", c.NumJobs())
	}
	if got := c.TotalMapInputBytes(); got != 300 {
		t.Errorf("TotalMapInputBytes = %d", got)
	}
	if got := c.TotalShuffleBytes(); got != 40 {
		t.Errorf("TotalShuffleBytes = %d", got)
	}
	if got := c.TotalTime(); got != 12 {
		t.Errorf("TotalTime = %f, want 12", got)
	}
	if !strings.Contains(c.String(), "2 jobs") {
		t.Errorf("String = %q", c.String())
	}
}

func TestFmtBytes(t *testing.T) {
	for in, want := range map[int64]string{
		17:          "17B",
		3 << 10:     "3.00KB",
		5 << 20:     "5.00MB",
		2 << 30:     "2.00GB",
		1<<30 + 512: "1.00GB",
	} {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	cluster := SmallCluster()
	e, err := NewEngine(NewDFS(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	if e.Cluster() != cluster {
		t.Error("Cluster accessor broken")
	}
	if e.DFS() == nil {
		t.Error("DFS accessor broken")
	}
}
