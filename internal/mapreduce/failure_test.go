package mapreduce

import (
	"errors"
	"strings"
	"testing"
)

// Failure injection: user-code errors at every stage must abort the job
// with context, never panic, and never write partial output.

func failingMapper(err error) Mapper {
	return MapperFunc(func(line string, emit Emit) error {
		if strings.HasPrefix(line, "bad") {
			return err
		}
		emit(line, "1")
		return nil
	})
}

func okReducer() Reducer {
	return ReducerFunc(func(key string, values []string, emit func(string)) error {
		emit(key)
		return nil
	})
}

func TestMapperErrorAborts(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("in", []string{"a", "bad-record", "b"})
	sentinel := errors.New("malformed record")
	j := &Job{
		Name:    "failmap",
		Inputs:  []Input{{Path: "in", Mapper: failingMapper(sentinel)}},
		Reducer: okReducer(),
		Output:  "out",
	}
	_, err := e.RunJob(j)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "map in") {
		t.Errorf("error lacks input context: %v", err)
	}
	if e.DFS().Exists("out") {
		t.Error("failed job must not write output")
	}
}

func TestReducerErrorAborts(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("in", []string{"x", "poison", "y"})
	sentinel := errors.New("reduce exploded")
	j := &Job{
		Name: "failreduce",
		Inputs: []Input{{Path: "in", Mapper: MapperFunc(func(line string, emit Emit) error {
			emit(line, "1")
			return nil
		})}},
		Reducer: ReducerFunc(func(key string, values []string, emit func(string)) error {
			if key == "poison" {
				return sentinel
			}
			emit(key)
			return nil
		}),
		Output: "out",
	}
	_, err := e.RunJob(j)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), `reduce key "poison"`) {
		t.Errorf("error lacks key context: %v", err)
	}
	if e.DFS().Exists("out") {
		t.Error("failed job must not write output")
	}
}

func TestCombinerErrorAborts(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("in", []string{"a", "a"})
	sentinel := errors.New("combine failed")
	j := &Job{
		Name: "failcombine",
		Inputs: []Input{{Path: "in", Mapper: MapperFunc(func(line string, emit Emit) error {
			emit(line, "1")
			return nil
		})}},
		Combiner: CombinerFunc(func(string, []string) ([]string, error) {
			return nil, sentinel
		}),
		Reducer: okReducer(),
		Output:  "out",
	}
	_, err := e.RunJob(j)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestChainStopsAtFirstFailure(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("in", []string{"bad-record"})
	j1 := &Job{
		Name:    "j1",
		Inputs:  []Input{{Path: "in", Mapper: failingMapper(errors.New("boom"))}},
		Reducer: okReducer(),
		Output:  "mid",
	}
	j2 := wordCountJob("mid", "out")
	j2.DependsOn = []*Job{j1}
	_, err := e.RunChain([]*Job{j1, j2})
	if err == nil || !strings.Contains(err.Error(), "job j1") {
		t.Fatalf("err = %v, want failure attributed to j1", err)
	}
	if e.DFS().Exists("out") || e.DFS().Exists("mid") {
		t.Error("downstream outputs must not exist after upstream failure")
	}
}

// TestEmptyInputJob: an empty input file is not an error; the job writes an
// empty output.
func TestEmptyInputJob(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("in", nil)
	stats, err := e.RunJob(wordCountJob("in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.DFS().Read("out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("output = %v, want empty", out)
	}
	if stats.NumMapTasks != 1 {
		t.Errorf("map tasks = %d, want the minimum 1", stats.NumMapTasks)
	}
}

// TestTaskFailureRateInflatesTime: a lossy cluster re-executes tasks, so
// execution time grows by the expected rework while results are unchanged.
func TestTaskFailureRateInflatesTime(t *testing.T) {
	lines := make([]string, 500)
	for i := range lines {
		lines[i] = "word word word"
	}
	runWith := func(rate float64) (*JobStats, []string) {
		cluster := SmallCluster()
		cluster.DataScale = 10000
		cluster.TaskFailureRate = rate
		dfs := NewDFS()
		dfs.Write("in", lines)
		e, err := NewEngine(dfs, cluster)
		if err != nil {
			t.Fatal(err)
		}
		s, err := e.RunJob(wordCountJob("in", "out"))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := dfs.Read("out")
		return s, out
	}
	clean, cleanOut := runWith(0)
	lossy, lossyOut := runWith(0.2)
	if lossy.TotalTime() <= clean.TotalTime() {
		t.Errorf("failure rate should inflate time: %.1f <= %.1f",
			lossy.TotalTime(), clean.TotalTime())
	}
	if strings.Join(cleanOut, "|") != strings.Join(lossyOut, "|") {
		t.Error("failure rate must not change results")
	}
}

func TestTaskFailureRateValidation(t *testing.T) {
	c := SmallCluster()
	c.TaskFailureRate = 1
	if err := c.Validate(); err == nil {
		t.Error("failure rate 1 should be rejected")
	}
	c.TaskFailureRate = -0.1
	if err := c.Validate(); err == nil {
		t.Error("negative failure rate should be rejected")
	}
}
