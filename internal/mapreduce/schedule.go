package mapreduce

import (
	"fmt"
	"math"
	"sort"

	"ysmart/internal/obs"
)

// This file is the event-level wave scheduler behind FaultPlan. The
// analytic cost path (costJob/costMapOnly) stays untouched for fault-free
// runs; when a non-zero plan is attached the engine instead schedules
// every task attempt onto concrete slots and nodes, injects failures,
// node deaths and stragglers, launches speculative backups, and derives
// phase times from the resulting schedule. Per-task work is calibrated so
// a fault-free schedule reproduces the analytic phase times: each task's
// nominal duration is the analytic phase base divided by its wave count,
// and every attempt pays the cost model's per-wave TaskOverhead.

// slotPool tracks per-slot next-free times for one phase's slot class.
// Slot s lives on node s % nodes; a node death permanently retires its
// slots for any attempt that would start at or after the death.
type slotPool struct {
	free   []float64
	nodes  int
	deaths map[int]float64 // node -> death time (absolute)
}

func newSlotPool(slots, nodes int, start float64, deaths map[int]float64) *slotPool {
	if slots < 1 {
		slots = 1
	}
	if nodes < 1 {
		nodes = 1
	}
	free := make([]float64, slots)
	for i := range free {
		free[i] = start
	}
	return &slotPool{free: free, nodes: nodes, deaths: deaths}
}

// deathOf returns the death time of a slot's node.
func (p *slotPool) deathOf(slot int) (float64, bool) {
	d, ok := p.deaths[slot%p.nodes]
	return d, ok
}

// acquire picks the slot giving the earliest start >= ready on a node
// still alive at that start (ties go to the lowest slot index). ok is
// false when no surviving slot remains.
func (p *slotPool) acquire(ready float64) (slot int, start float64, ok bool) {
	best := -1
	var bestStart float64
	for s, f := range p.free {
		st := f
		if ready > st {
			st = ready
		}
		if d, dead := p.deathOf(s); dead && st >= d {
			continue
		}
		if best == -1 || st < bestStart {
			best, bestStart = s, st
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return best, bestStart, true
}

// completion records where and when a task's winning attempt finished.
type completion struct {
	at   float64
	node int
}

// pendingEntry is one task execution waiting for a slot.
type pendingEntry struct {
	task      int
	ready     float64 // earliest start time
	seq       int     // enqueue order, the deterministic tie-breaker
	recompute bool

	// Speculative backups carry their straggling original's coordinates.
	speculative bool
	origEnd     float64
	origIdx     int // index into phaseSched.attempts
	origSlot    int
}

// phaseSched schedules one phase (map or reduce) of one job under a fault
// plan. It is reused across recompute rounds of the same phase so slot
// state and attempt numbering carry over.
type phaseSched struct {
	plan     *FaultPlan
	spec     Speculation
	job      string
	phase    string
	taskDur  float64 // nominal work seconds per task, excluding overhead
	overhead float64
	pool     *slotPool

	attempts    []TaskAttempt
	completions map[int]completion
	nextAttempt map[int]int
	fails       map[int]int
	specDone    map[int]bool
	nextSeq     int

	relaunches int // failed + node-lost attempts that spawned a retry
	specCount  int // backups launched
	specWins   int // backups that finished first
}

func newPhaseSched(plan *FaultPlan, spec Speculation, job, phase string, taskDur, overhead float64, pool *slotPool) *phaseSched {
	return &phaseSched{
		plan: plan, spec: spec, job: job, phase: phase,
		taskDur: taskDur, overhead: overhead, pool: pool,
		completions: make(map[int]completion),
		nextAttempt: make(map[int]int),
		fails:       make(map[int]int),
		specDone:    make(map[int]bool),
	}
}

// enqueue builds the initial pending list for n fresh tasks.
func (ps *phaseSched) initial(n int, ready float64) []pendingEntry {
	entries := make([]pendingEntry, n)
	for i := range entries {
		entries[i] = pendingEntry{task: i, ready: ready, seq: ps.nextSeq}
		ps.nextSeq++
	}
	return entries
}

// end returns the phase end: the latest attempt end, floored at start.
func (ps *phaseSched) end(start float64) float64 {
	end := start
	for i := range ps.attempts {
		if e := ps.attempts[i].Start + ps.attempts[i].Dur; e > end {
			end = e
		}
	}
	return end
}

// run drains the pending list, launching every attempt (and the retries,
// recomputes and backups it spawns) onto the slot pool. It errors only
// when no surviving slot exists for a required (non-speculative) attempt.
func (ps *phaseSched) run(pending []pendingEntry) error {
	for len(pending) > 0 {
		// Pop the entry with the smallest (ready, task, seq).
		best := 0
		for i := 1; i < len(pending); i++ {
			a, b := pending[i], pending[best]
			if a.ready < b.ready || (a.ready == b.ready && (a.task < b.task ||
				(a.task == b.task && a.seq < b.seq))) {
				best = i
			}
		}
		e := pending[best]
		pending = append(pending[:best], pending[best+1:]...)

		if e.speculative {
			ps.launchBackup(e)
			continue
		}

		slot, start, ok := ps.pool.acquire(e.ready)
		if !ok {
			return fmt.Errorf("%s phase of %s: no surviving nodes to run task %d", ps.phase, ps.job, e.task)
		}
		attemptIdx := ps.nextAttempt[e.task]
		ps.nextAttempt[e.task]++

		slow := ps.slowFactor(e.task, attemptIdx)
		dur := ps.overhead + ps.taskDur*slow
		outcome := OutcomeOK
		if ps.plan.TaskFailureProb > 0 && ps.fails[e.task] < ps.plan.maxAttempts()-1 &&
			ps.plan.roll("fail", ps.job, ps.phase, e.task, attemptIdx) < ps.plan.TaskFailureProb {
			frac := 0.25 + 0.5*ps.plan.roll("frac", ps.job, ps.phase, e.task, attemptIdx)
			dur = ps.overhead + ps.taskDur*slow*frac
			outcome = OutcomeFailed
		}
		if d, dead := ps.pool.deathOf(slot); dead && start+dur > d {
			dur = d - start
			outcome = OutcomeNodeLost
		}
		end := start + dur
		ps.pool.free[slot] = end
		recIdx := len(ps.attempts)
		ps.attempts = append(ps.attempts, TaskAttempt{
			Phase: ps.phase, Task: e.task, Attempt: attemptIdx,
			Node: slot % ps.pool.nodes, Start: start, Dur: dur,
			Outcome: outcome, Recompute: e.recompute,
		})

		switch outcome {
		case OutcomeOK:
			ps.completions[e.task] = completion{at: end, node: slot % ps.pool.nodes}
			if ps.spec.Enabled && slow >= ps.spec.threshold() && !ps.specDone[e.task] {
				ps.specDone[e.task] = true
				pending = append(pending, pendingEntry{
					task: e.task, ready: start + ps.overhead + ps.taskDur, seq: ps.nextSeq,
					speculative: true, origEnd: end, origIdx: recIdx, origSlot: slot,
					recompute: e.recompute,
				})
				ps.nextSeq++
			}
		default: // failed or node-lost: relaunch from the failure instant
			if outcome == OutcomeFailed {
				ps.fails[e.task]++
			}
			ps.relaunches++
			pending = append(pending, pendingEntry{
				task: e.task, ready: end, seq: ps.nextSeq, recompute: e.recompute,
			})
			ps.nextSeq++
		}
	}
	return nil
}

// launchBackup runs one speculative attempt racing its straggling
// original. A backup that cannot start before the original finishes is
// silently dropped; a backup overtaken by the original is killed at the
// original's completion.
func (ps *phaseSched) launchBackup(e pendingEntry) {
	slot, start, ok := ps.pool.acquire(e.ready)
	if !ok || start >= e.origEnd {
		return
	}
	attemptIdx := ps.nextAttempt[e.task]
	ps.nextAttempt[e.task]++
	ps.specCount++

	slow := ps.slowFactor(e.task, attemptIdx)
	dur := ps.overhead + ps.taskDur*slow
	outcome := OutcomeOK
	if ps.plan.TaskFailureProb > 0 &&
		ps.plan.roll("fail", ps.job, ps.phase, e.task, attemptIdx) < ps.plan.TaskFailureProb {
		frac := 0.25 + 0.5*ps.plan.roll("frac", ps.job, ps.phase, e.task, attemptIdx)
		dur = ps.overhead + ps.taskDur*slow*frac
		outcome = OutcomeFailed
	}
	if d, dead := ps.pool.deathOf(slot); dead && start+dur > d {
		dur = d - start
		outcome = OutcomeNodeLost
	}
	end := start + dur
	if end >= e.origEnd {
		// The original finishes first: the backup is killed then.
		outcome = OutcomeKilled
		dur = e.origEnd - start
		end = e.origEnd
	}
	ps.pool.free[slot] = end
	ps.attempts = append(ps.attempts, TaskAttempt{
		Phase: ps.phase, Task: e.task, Attempt: attemptIdx,
		Node: slot % ps.pool.nodes, Start: start, Dur: dur,
		Outcome: outcome, Speculative: true, Recompute: e.recompute,
	})
	if outcome == OutcomeOK {
		// Backup won the race: it defines the completion and the original
		// is killed, freeing its slot early.
		ps.specWins++
		ps.completions[e.task] = completion{at: end, node: slot % ps.pool.nodes}
		orig := &ps.attempts[e.origIdx]
		orig.Outcome = OutcomeKilled
		orig.Dur = end - orig.Start
		if ps.pool.free[e.origSlot] > end {
			ps.pool.free[e.origSlot] = end
		}
	}
}

// slowFactor draws the straggler multiplier for one attempt.
func (ps *phaseSched) slowFactor(task, attempt int) float64 {
	if ps.plan.StragglerProb > 0 &&
		ps.plan.roll("straggle", ps.job, ps.phase, task, attempt) < ps.plan.StragglerProb {
		return ps.plan.stragglerFactor()
	}
	return 1
}

// recomputeLost relaunches map tasks whose completed output died with its
// node: any completion on a node whose death falls inside (lo, hi]. It
// returns the number of tasks relaunched this round.
func (ps *phaseSched) recomputeLost(lo, hi float64) (int, error) {
	// Walk completed tasks in sorted order so the enqueue order (and the
	// seq numbers it assigns) never depends on map iteration order.
	tasks := make([]int, 0, len(ps.completions))
	for task := range ps.completions {
		tasks = append(tasks, task)
	}
	sort.Ints(tasks)
	var entries []pendingEntry
	for _, task := range tasks {
		d, dead := ps.pool.deaths[ps.completions[task].node]
		if !dead || d <= lo || d > hi {
			continue
		}
		entries = append(entries, pendingEntry{task: task, ready: d, seq: ps.nextSeq, recompute: true})
		ps.nextSeq++
	}
	if len(entries) == 0 {
		return 0, nil
	}
	return len(entries), ps.run(entries)
}

// ---------------------------------------------------------------------------
// Fault-path costing
// ---------------------------------------------------------------------------

// faultsActive reports whether the engine must take the event-level
// scheduling path. A nil or zero plan keeps the analytic path, which makes
// fault-free runs byte-identical to a plan-free engine.
func (e *Engine) faultsActive() bool {
	return e.cluster.Faults != nil && !e.cluster.Faults.IsZero()
}

// costJobFaulty is the event-level counterpart of costJob: identical phase
// bases, but phase times come from scheduling every task attempt under the
// cluster's FaultPlan, and every extra attempt re-executes the user's
// map/reduce code (reading its input again from the DFS replicas).
func (e *Engine) costJobFaulty(j *Job, s *JobStats, preCombineRecords, preCombineBytes int64, tasks []mapTask, keys []string, groups map[string][]string) error {
	cl := e.cluster
	cm := cl.Cost
	scale := cl.DataScale
	nodes := cl.effectiveNodes()
	plan := cl.Faults
	deaths := plan.deathTimes()

	inBytes := float64(s.MapInputBytes) * scale
	preBytes := float64(preCombineBytes) * scale
	outBytes := float64(s.MapOutputBytes) * scale
	spillBytes := outBytes
	var compressCPU float64
	if cl.Compress {
		spillBytes *= cm.CompressionRatio
		compressCPU = outBytes * cm.CompressCPUPerByte
	}

	mapDisk := (inBytes + spillBytes) / (nodes * cm.DiskBandwidth)
	mapCPU := (mapCPURecords(s, cm, scale)*cm.MapCPUPerRecord + preBytes*cm.SortCPUPerByte) / cl.mapSlots()
	mapBase := (math.Max(mapDisk, mapCPU) + compressCPU/cl.mapSlots()) * cl.loadFactor()
	mapWaves := math.Ceil(float64(s.NumMapTasks) / cl.mapSlots())
	s.MapBottleneck = "disk"
	if mapCPU > mapDisk {
		s.MapBottleneck = "cpu"
	}

	shuffleBytes := float64(s.ShuffleBytes) * scale
	shuffleNet := shuffleBytes / (nodes * cm.NetworkBandwidth)
	var decompressCPU float64
	if cl.Compress {
		decompressCPU = shuffleBytes * cm.DecompressCPUPerByte / cl.reduceSlots()
	}
	shuffleTime := (shuffleNet + decompressCPU) * cl.loadFactor()

	redInBytes := outBytes
	redRecords := float64(s.ReduceWorkRecords) * scale
	redOutBytes := float64(s.ReduceOutputBytes) * scale
	repl := float64(cm.HDFSReplication - 1)
	redDisk := (redInBytes + redOutBytes) / (nodes * cm.DiskBandwidth)
	redNet := redOutBytes * repl / (nodes * cm.NetworkBandwidth)
	redCPU := redRecords * cm.ReduceCPUPerRecord / cl.reduceSlots()
	redBase := math.Max(redDisk+redNet, redCPU) * cl.loadFactor()
	redWaves := math.Ceil(float64(s.NumReduceTasks) / cl.reduceSlots())
	s.ReduceBottleneck = "disk+net"
	if redCPU > redDisk+redNet {
		s.ReduceBottleneck = "cpu"
	}

	s.StartupTime = cm.JobStartup
	// The fault-free analytic equivalent of this job: what the cost model
	// predicted before recovery stretched the schedule.
	s.PredictedTime = cm.JobStartup +
		mapBase + mapWaves*cm.TaskOverhead +
		shuffleTime +
		redBase + redWaves*cm.TaskOverhead
	mapStart := e.simNow + s.StartupTime

	// ----- Map phase, with in-phase recompute of output lost to node deaths.
	mp := newPhaseSched(plan, cl.Speculation, j.Name, "map",
		mapBase/mapWaves, cm.TaskOverhead,
		newSlotPool(int(cl.mapSlots()), cl.Nodes, mapStart, deaths))
	if err := mp.run(mp.initial(s.NumMapTasks, mapStart)); err != nil {
		return err
	}
	for {
		n, err := mp.recomputeLost(mapStart, mp.end(mapStart))
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		s.RecomputedMapTasks += n
		e.logger.Warn("map.recompute",
			obs.F("job", j.Name), obs.F("tasks", int64(n)),
			obs.F("reason", "map output lost to node death"),
			obs.F("sim_s", mp.end(mapStart)))
	}
	mapEnd := mp.end(mapStart)

	// ----- Shuffle: node deaths in the shuffle window lose map output that
	// the reducers have not fetched yet; recovery extends the barrier.
	shuffleEnd := mapEnd + shuffleTime
	for {
		n, err := mp.recomputeLost(mapEnd, shuffleEnd)
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		s.RecomputedMapTasks += n
		e.logger.Warn("map.recompute",
			obs.F("job", j.Name), obs.F("tasks", int64(n)),
			obs.F("reason", "unfetched map output lost during shuffle"),
			obs.F("sim_s", shuffleEnd))
		if end := mp.end(mapStart); end > shuffleEnd {
			shuffleEnd = end
		}
	}

	// ----- Reduce phase: completed output lives on the DFS, so deaths only
	// kill in-flight attempts.
	rp := newPhaseSched(plan, cl.Speculation, j.Name, "reduce",
		redBase/redWaves, cm.TaskOverhead,
		newSlotPool(int(cl.reduceSlots()), cl.Nodes, shuffleEnd, deaths))
	if err := rp.run(rp.initial(s.NumReduceTasks, shuffleEnd)); err != nil {
		return err
	}
	reduceEnd := rp.end(shuffleEnd)

	s.MapTime = mapEnd - mapStart
	s.ShuffleTime = shuffleEnd - mapEnd
	s.ReduceTime = reduceEnd - shuffleEnd
	e.fillFaultStats(s, mp, rp, e.simNow, reduceEnd)

	if err := e.reexecuteMap(j, s, tasks, mp); err != nil {
		return err
	}
	return e.reexecuteReduce(j, s, keys, groups, rp)
}

// costMapOnlyFaulty is the event-level counterpart of costMapOnly. Map
// output goes straight to the replicated DFS, so like reduce output it
// survives node deaths; only in-flight attempts are killed.
func (e *Engine) costMapOnlyFaulty(j *Job, s *JobStats, preCombineRecords, preCombineBytes int64, tasks []mapTask) error {
	cl := e.cluster
	cm := cl.Cost
	scale := cl.DataScale
	nodes := cl.effectiveNodes()
	plan := cl.Faults

	inBytes := float64(s.MapInputBytes) * scale
	outBytes := float64(s.ReduceOutputBytes) * scale
	repl := float64(cm.HDFSReplication - 1)

	mapDisk := (inBytes + outBytes) / (nodes * cm.DiskBandwidth)
	mapNet := outBytes * repl / (nodes * cm.NetworkBandwidth)
	mapCPU := mapCPURecords(s, cm, scale) * cm.MapCPUPerRecord / cl.mapSlots()
	mapBase := math.Max(mapDisk+mapNet, mapCPU) * cl.loadFactor()
	mapWaves := math.Ceil(float64(s.NumMapTasks) / cl.mapSlots())
	s.MapBottleneck = "disk+net"
	if mapCPU > mapDisk+mapNet {
		s.MapBottleneck = "cpu"
	}

	s.StartupTime = cm.JobStartup
	s.PredictedTime = cm.JobStartup + mapBase + mapWaves*cm.TaskOverhead
	mapStart := e.simNow + s.StartupTime
	mp := newPhaseSched(plan, cl.Speculation, j.Name, "map",
		mapBase/mapWaves, cm.TaskOverhead,
		newSlotPool(int(cl.mapSlots()), cl.Nodes, mapStart, plan.deathTimes()))
	if err := mp.run(mp.initial(s.NumMapTasks, mapStart)); err != nil {
		return err
	}
	mapEnd := mp.end(mapStart)
	s.MapTime = mapEnd - mapStart
	e.fillFaultStats(s, mp, nil, e.simNow, mapEnd)
	return e.reexecuteMap(j, s, tasks, mp)
}

// fillFaultStats copies the schedulers' recovery accounting into JobStats.
func (e *Engine) fillFaultStats(s *JobStats, mp, rp *phaseSched, jobStart, jobEnd float64) {
	s.MapTaskRetries = mp.relaunches
	s.SpeculativeTasks = mp.specCount
	s.SpeculativeWins = mp.specWins
	s.Attempts = append(s.Attempts, mp.attempts...)
	if rp != nil {
		s.ReduceTaskRetries = rp.relaunches
		s.SpeculativeTasks += rp.specCount
		s.SpeculativeWins += rp.specWins
		s.Attempts = append(s.Attempts, rp.attempts...)
	}
	for _, nf := range e.cluster.Faults.NodeFailures {
		if nf.At >= jobStart && nf.At <= jobEnd {
			s.NodeFailures++
		}
	}
}

// ---------------------------------------------------------------------------
// Re-execution through the real user-code path
// ---------------------------------------------------------------------------

// reexecuteMap replays the mapper (and combiner) for every scheduled map
// execution beyond each task's first: retries, recomputes and speculative
// backups all re-read the task's input from the DFS (the surviving
// replicas) and run the real user code again. The first execution's
// output — already collected by the primary pass — stays canonical, so a
// fault-injected run is byte-identical to a fault-free one.
func (e *Engine) reexecuteMap(j *Job, s *JobStats, tasks []mapTask, mp *phaseSched) error {
	extra := make(map[int]int)
	for _, a := range mp.attempts {
		extra[a.Task]++
	}
	// The DFS re-reads run here on the driver goroutine, in ascending task
	// order, so their trace instants keep one deterministic sequence; only
	// the pure mapper/combiner re-execution fans out to the worker pool.
	var replays []int // task index, one entry per extra execution
	for task := 0; task < s.NumMapTasks; task++ {
		if task >= len(tasks) {
			break // phantom cost-model task with no data of its own
		}
		for n := extra[task] - 1; n > 0; n-- {
			mt := tasks[task]
			if _, err := e.dfs.Read(mt.input.Path); err != nil {
				return fmt.Errorf("map retry %s: %w", mt.input.Path, err)
			}
			replays = append(replays, task)
		}
	}
	return e.forEachTask(len(replays), func(i int) error {
		mt := tasks[replays[i]]
		var taskPairs []kv
		emit := func(key, value string) {
			taskPairs = append(taskPairs, kv{key, value})
		}
		for _, line := range mt.chunk {
			// Retries skip prefiltered lines exactly like the primary pass,
			// so replayed attempts run the same user code on the same rows.
			if mt.input.Prefilter != nil && !mt.input.Prefilter(line) {
				continue
			}
			if err := mt.input.Mapper.Map(line, emit); err != nil {
				return fmt.Errorf("map retry %s: %w", mt.input.Path, err)
			}
		}
		if j.Reducer != nil && j.Combiner != nil {
			if _, err := combineTask(taskPairs, j.Combiner); err != nil {
				return fmt.Errorf("combine retry: %w", err)
			}
		}
		return nil
	})
}

// reexecuteReduce replays the reducer for every scheduled reduce execution
// beyond each task's first, over the key groups hash-partitioned to that
// task. Outputs are discarded — the primary pass's output is canonical.
func (e *Engine) reexecuteReduce(j *Job, s *JobStats, keys []string, groups map[string][]string, rp *phaseSched) error {
	extra := make(map[int]int)
	for _, a := range rp.attempts {
		extra[a.Task]++
	}
	var replays []int // reduce partition, one entry per extra execution
	for task := 0; task < s.NumReduceTasks; task++ {
		for n := extra[task] - 1; n > 0; n-- {
			replays = append(replays, task)
		}
	}
	discard := func(string) {}
	replay := func(i int) error {
		task := replays[i]
		for _, k := range keys {
			if partitionOf(k, s.NumReduceTasks) != task {
				continue
			}
			if err := j.Reducer.Reduce(k, groups[k], discard); err != nil {
				return fmt.Errorf("reduce retry key %q: %w", k, err)
			}
		}
		return nil
	}
	// Partition replays run concurrently only for reducers marked safe;
	// stateful order-dependent reducers replay sequentially, like the
	// primary reduce pass.
	if _, ok := j.Reducer.(ConcurrentReducer); ok {
		return e.forEachTask(len(replays), replay)
	}
	for i := range replays {
		if err := replay(i); err != nil {
			return err
		}
	}
	return nil
}
