package mapreduce

import (
	"hash/fnv"
	"testing"
)

// FuzzPartitionOf checks the shuffle partitioner's contract for arbitrary
// keys: the result is always in [0, numReduce), stable across repeated
// calls (a re-executed reduce partition must see exactly the keys the
// original saw), collapses to 0 for a single partition, and matches the
// documented FNV-32a definition — the function the differential harness
// and the fault-replay paths both lean on.
func FuzzPartitionOf(f *testing.F) {
	f.Add("", uint8(1))
	f.Add("alpha", uint8(4))
	f.Add("the\tquick\x00fox", uint8(63))
	f.Fuzz(func(t *testing.T, key string, n uint8) {
		numReduce := int(n%64) + 1
		p := partitionOf(key, numReduce)
		if p < 0 || p >= numReduce {
			t.Fatalf("partitionOf(%q, %d) = %d, out of range", key, numReduce, p)
		}
		if q := partitionOf(key, numReduce); q != p {
			t.Fatalf("partitionOf(%q, %d) unstable: %d then %d", key, numReduce, p, q)
		}
		if partitionOf(key, 1) != 0 {
			t.Fatalf("partitionOf(%q, 1) != 0", key)
		}
		h := fnv.New32a()
		_, _ = h.Write([]byte(key))
		if want := int(h.Sum32() % uint32(numReduce)); p != want {
			t.Fatalf("partitionOf(%q, %d) = %d, want FNV-32a %% n = %d", key, numReduce, p, want)
		}
	})
}
