package mapreduce

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"ysmart/internal/obs"
)

// Engine executes jobs against a DFS and costs them against a cluster
// model. It is not safe for concurrent use: callers drive one chain at a
// time. Internally, however, the engine fans map tasks, combiners, reduce
// key groups and fault-path re-executions out across a pool of worker
// goroutines (see parallel.go); results are gathered in deterministic task
// order, so output, stats and traces are byte-identical at any worker
// count.
type Engine struct {
	dfs     *DFS
	cluster *Cluster
	gapRNG  *rand.Rand
	workers int

	tracer  obs.Tracer
	metrics *obs.Registry
	// logger receives structured lifecycle events (chains, jobs, retries,
	// recomputes, node deaths). A nil logger is a no-op; like tracing,
	// logging only observes and never changes execution.
	logger *obs.Logger
	// simNow is the simulated clock: the end time of everything executed so
	// far on this engine. Span events are stamped with it, so traces from
	// successive chains on one engine share a single timeline.
	simNow float64
}

// NewEngine builds an engine. The cluster must validate.
func NewEngine(dfs *DFS, cluster *Cluster) (*Engine, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		dfs:     dfs,
		cluster: cluster,
		gapRNG:  rand.New(rand.NewSource(cluster.Contention.Seed)),
		workers: DefaultWorkers(),
		tracer:  obs.Nop,
	}, nil
}

// DFS returns the engine's file system.
func (e *Engine) DFS() *DFS { return e.dfs }

// Cluster returns the engine's cluster model.
func (e *Engine) Cluster() *Cluster { return e.cluster }

// Instrument attaches a tracer and metrics registry to the engine and its
// DFS. Execution and counters are unaffected — tracing only observes. A
// nil tracer restores the no-op default.
func (e *Engine) Instrument(t obs.Tracer, r *obs.Registry) {
	if t == nil {
		t = obs.Nop
	}
	e.tracer = t
	e.metrics = r
	e.dfs.Instrument(t, r, e.Now)
}

// SetLogger attaches a structured event logger to the engine (nil turns
// logging off). Job lifecycle, retries, recomputes and node failures are
// logged as one JSON event per line, stamped with the simulated clock.
func (e *Engine) SetLogger(l *obs.Logger) { e.logger = l }

// Now returns the simulated clock in seconds.
func (e *Engine) Now() float64 { return e.simNow }

// RunChain executes jobs sequentially in dependency order (the way Hive
// drove its job chains) and returns per-job stats in execution order.
func (e *Engine) RunChain(jobs []*Job) (*ChainStats, error) {
	ordered, err := topoSort(jobs)
	if err != nil {
		return nil, err
	}
	stats := &ChainStats{}
	chainStart := e.simNow
	e.logger.Info("chain.start",
		obs.F("jobs", int64(len(ordered))), obs.F("sim_s", chainStart))
	// The chain span brackets every job (and survives early error returns
	// thanks to the deferred End — the pairing the spanpair analyzer
	// enforces); its byte totals are only known once the jobs have run.
	span := obs.Begin(e.tracer, "chain", fmt.Sprintf("chain(%d jobs)", len(ordered)),
		"driver", e.simNow, obs.F("jobs", int64(len(ordered))))
	defer func() {
		span.End(e.simNow,
			obs.F("map_input_bytes", stats.TotalMapInputBytes()),
			obs.F("shuffle_bytes", stats.TotalShuffleBytes()))
	}()
	for i, j := range ordered {
		var gap float64
		if i > 0 {
			gap = e.nextGap()
		}
		if gap > 0 {
			if e.tracer.Enabled() {
				e.tracer.Emit(obs.SpanEvent("gap", "gap", "job:"+j.Name, e.simNow, gap))
			}
			e.simNow += gap
		}
		js, err := e.RunJob(j)
		if err != nil {
			e.logger.Error("chain.failed",
				obs.F("job", j.Name), obs.F("error", err.Error()), obs.F("sim_s", e.simNow))
			return nil, fmt.Errorf("job %s: %w", j.Name, err)
		}
		js.GapBefore = gap
		stats.Jobs = append(stats.Jobs, js)
	}
	if e.metrics != nil {
		e.metrics.Add("ysmart_engine_chains_total", 1)
		// The chain's end-to-end simulated latency distribution: the per-query
		// histogram behind the p50/p99 figures the load harness reports.
		e.metrics.Observe("ysmart_chain_sim_seconds", e.simNow-chainStart)
	}
	e.logger.Info("chain.done",
		obs.F("jobs", int64(len(ordered))),
		obs.F("sim_s", e.simNow),
		obs.F("total_s", e.simNow-chainStart),
		obs.F("scan_bytes", stats.TotalMapInputBytes()),
		obs.F("shuffle_bytes", stats.TotalShuffleBytes()))
	return stats, nil
}

// nextGap draws the contention-induced delay inserted before a job.
func (e *Engine) nextGap() float64 {
	c := e.cluster.Contention
	if !c.Enabled {
		return 0
	}
	return c.GapMin + e.gapRNG.Float64()*(c.GapMax-c.GapMin)
}

func topoSort(jobs []*Job) ([]*Job, error) {
	state := make(map[*Job]int, len(jobs)) // 0 unseen, 1 visiting, 2 done
	inSet := make(map[*Job]bool, len(jobs))
	for _, j := range jobs {
		inSet[j] = true
	}
	var out []*Job
	var visit func(j *Job) error
	visit = func(j *Job) error {
		switch state[j] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("dependency cycle through job %s", j.Name)
		}
		state[j] = 1
		for _, d := range j.DependsOn {
			if !inSet[d] {
				return fmt.Errorf("job %s depends on %s which is not in the chain", j.Name, d.Name)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[j] = 2
		out = append(out, j)
		return nil
	}
	for _, j := range jobs {
		if err := visit(j); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// kv is one map output pair.
type kv struct{ key, value string }

// mapTask is one map task's share of a job input, kept so the fault path
// can re-execute the task's user code on retries and recomputes.
type mapTask struct {
	input Input
	chunk []string
}

// mapTaskResult is one map task's contribution, produced on a worker and
// gathered by the driver in task order. pairs holds post-combine output;
// the pre-combine counters feed the cost model's sort/spill charges.
type mapTaskResult struct {
	pairs      []kv
	preRecords int64
	preBytes   int64
	filtered   int64 // lines the input's Prefilter rejected before the mapper
}

// RunJob executes a single job: map over every input, optional combine per
// map task, shuffle/group, reduce, and write the output file. It returns
// the job's counters and simulated times, and advances the simulated clock
// past the job (emitting span events when a tracer is attached).
func (e *Engine) RunJob(j *Job) (*JobStats, error) {
	jobStart := e.simNow
	stats, err := e.runJob(j)
	if err != nil {
		return nil, err
	}
	e.finishJob(j, stats, jobStart)
	return stats, nil
}

// runJob is the execution body of RunJob, free of any clock/trace concerns.
func (e *Engine) runJob(j *Job) (*JobStats, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	cl := e.cluster
	stats := &JobStats{Name: j.Name, MapOnly: j.Reducer == nil}

	// ----- Map phase -----------------------------------------------------
	var preCombineRecords, preCombineBytes int64
	var mapOutput []kv // post-combine pairs from all tasks
	var mapOnlyLines []string

	var tasks []mapTask
	for _, in := range j.Inputs {
		lines, err := e.dfs.Read(in.Path)
		if err != nil {
			return nil, err
		}
		inBytes := linesBytes(lines)
		stats.MapInputRecords += int64(len(lines))
		stats.MapInputBytes += inBytes

		// Number of map tasks is determined by the scaled input size.
		scaled := float64(inBytes) * cl.DataScale
		nTasks := int(math.Ceil(scaled / float64(cl.Cost.SplitSize)))
		if nTasks < 1 {
			nTasks = 1
		}
		stats.NumMapTasks += nTasks

		// Split actual lines into task chunks so per-task combining matches
		// Hadoop's per-task partial aggregation.
		for _, chunk := range splitChunks(lines, nTasks) {
			tasks = append(tasks, mapTask{input: in, chunk: chunk})
		}
	}
	// Map tasks (and their combiners) run concurrently on the worker pool:
	// each task writes only its own mapResults slot, and the gather below
	// walks slots in ascending task index, so map output order is exactly
	// the sequential engine's.
	mapResults := make([]mapTaskResult, len(tasks))
	err := e.forEachTask(len(tasks), func(i int) error {
		task := tasks[i]
		var taskPairs []kv
		emit := func(key, value string) {
			taskPairs = append(taskPairs, kv{key, value})
		}
		var filtered int64
		for _, line := range task.chunk {
			if task.input.Prefilter != nil && !task.input.Prefilter(line) {
				filtered++
				continue
			}
			if err := task.input.Mapper.Map(line, emit); err != nil {
				return fmt.Errorf("map %s: %w", task.input.Path, err)
			}
		}
		r := mapTaskResult{pairs: taskPairs, preRecords: int64(len(taskPairs)), filtered: filtered}
		for _, p := range taskPairs {
			r.preBytes += int64(len(p.key) + len(p.value) + 2)
		}
		if j.Reducer != nil && j.Combiner != nil {
			combined, err := combineTask(taskPairs, j.Combiner)
			if err != nil {
				return fmt.Errorf("combine: %w", err)
			}
			r.pairs = combined
		}
		mapResults[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range mapResults {
		preCombineRecords += r.preRecords
		preCombineBytes += r.preBytes
		stats.MapRecordsFiltered += r.filtered
		if j.Reducer == nil {
			for _, p := range r.pairs {
				mapOnlyLines = append(mapOnlyLines, p.value)
			}
			continue
		}
		mapOutput = append(mapOutput, r.pairs...)
	}

	// ----- Map-only jobs write straight to the DFS -----------------------
	if j.Reducer == nil {
		e.dfs.Write(j.Output, mapOnlyLines)
		stats.MapOutputRecords = int64(len(mapOnlyLines))
		stats.MapOutputBytes = linesBytes(mapOnlyLines)
		stats.ReduceOutputRecords = stats.MapOutputRecords
		stats.ReduceOutputBytes = stats.MapOutputBytes
		if e.faultsActive() {
			if err := e.costMapOnlyFaulty(j, stats, preCombineRecords, preCombineBytes, tasks); err != nil {
				return nil, err
			}
		} else {
			e.costMapOnly(j, stats, preCombineRecords, preCombineBytes)
		}
		return stats, nil
	}

	stats.MapOutputRecords = int64(len(mapOutput))
	for _, p := range mapOutput {
		stats.MapOutputBytes += int64(len(p.key) + len(p.value) + 2)
	}
	stats.ShuffleBytes = stats.MapOutputBytes
	if cl.Compress {
		stats.ShuffleBytes = int64(float64(stats.ShuffleBytes) * cl.Cost.CompressionRatio)
	}

	// ----- Shuffle: partition and group ----------------------------------
	numReduce := j.NumReduceTasks
	if numReduce <= 0 {
		numReduce = cl.DefaultReduceTasks()
	}
	stats.NumReduceTasks = numReduce

	groups := make(map[string][]string)
	for _, p := range mapOutput {
		groups[p.key] = append(groups[p.key], p.value)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	stats.ReduceGroups = int64(len(keys))
	stats.ReduceInputRecords = int64(len(mapOutput))

	// ----- Reduce ---------------------------------------------------------
	var workStart int64
	if wr, ok := j.Reducer.(ReduceWorkReporter); ok {
		workStart = wr.ReduceWork()
	}
	var dispatchStart []OpDispatch
	if dr, ok := j.Reducer.(DispatchReporter); ok {
		dispatchStart = dr.DispatchCounts()
	}
	// Key groups run concurrently only for reducers that declare themselves
	// safe (ConcurrentReducer); each group emits into its own buffer and the
	// gather concatenates buffers in global sorted-key order, reproducing
	// the sequential engine's output exactly. Unmarked reducers may carry
	// per-call state whose evolution depends on call order, so they always
	// run sequentially over the sorted keys.
	var outLines []string
	if _, ok := j.Reducer.(ConcurrentReducer); ok && e.workers > 1 {
		outs := make([][]string, len(keys))
		err := e.forEachTask(len(keys), func(i int) error {
			k := keys[i]
			if err := j.Reducer.Reduce(k, groups[k], func(line string) { outs[i] = append(outs[i], line) }); err != nil {
				return fmt.Errorf("reduce key %q: %w", k, err)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, o := range outs {
			outLines = append(outLines, o...)
		}
	} else {
		emitLine := func(line string) { outLines = append(outLines, line) }
		for _, k := range keys {
			if err := j.Reducer.Reduce(k, groups[k], emitLine); err != nil {
				return nil, fmt.Errorf("reduce key %q: %w", k, err)
			}
		}
	}
	stats.ReduceWorkRecords = stats.ReduceInputRecords
	if wr, ok := j.Reducer.(ReduceWorkReporter); ok {
		if delta := wr.ReduceWork() - workStart; delta > stats.ReduceWorkRecords {
			stats.ReduceWorkRecords = delta
		}
	}
	if dr, ok := j.Reducer.(DispatchReporter); ok {
		stats.Dispatch = dispatchDelta(dispatchStart, dr.DispatchCounts())
	}
	e.dfs.Write(j.Output, outLines)
	stats.ReduceOutputRecords = int64(len(outLines))
	stats.ReduceOutputBytes = linesBytes(outLines)

	if e.faultsActive() {
		if err := e.costJobFaulty(j, stats, preCombineRecords, preCombineBytes, tasks, keys, groups); err != nil {
			return nil, err
		}
	} else {
		e.costJob(j, stats, preCombineRecords, preCombineBytes)
	}
	return stats, nil
}

// combineTask groups one map task's output by key and applies the combiner.
func combineTask(pairs []kv, c Combiner) ([]kv, error) {
	byKey := make(map[string][]string)
	order := make([]string, 0, len(byKey))
	for _, p := range pairs {
		if _, ok := byKey[p.key]; !ok {
			order = append(order, p.key)
		}
		byKey[p.key] = append(byKey[p.key], p.value)
	}
	var out []kv
	for _, k := range order {
		vals, err := c.Combine(k, byKey[k])
		if err != nil {
			return nil, err
		}
		for _, v := range vals {
			out = append(out, kv{k, v})
		}
	}
	return out, nil
}

// splitChunks divides lines into n nearly equal contiguous chunks.
func splitChunks(lines []string, n int) [][]string {
	if n <= 1 || len(lines) <= 1 {
		return [][]string{lines}
	}
	if n > len(lines) {
		n = len(lines)
	}
	out := make([][]string, 0, n)
	per := len(lines) / n
	rem := len(lines) % n
	i := 0
	for c := 0; c < n; c++ {
		size := per
		if c < rem {
			size++
		}
		out = append(out, lines[i:i+size])
		i += size
	}
	return out
}

// partitionOf is the default hash partitioner (exported for tests of
// grouping invariants).
func partitionOf(key string, numReduce int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(numReduce))
}

// ---------------------------------------------------------------------------
// Cost model application
// ---------------------------------------------------------------------------

// mapCPURecords returns the effective record count charged the full
// MapCPUPerRecord: records an early filter rejected cost only the
// prefilter fraction of a map invocation, so installed prefilters lower
// the predicted map CPU (and PredictedTime) in proportion to their
// selectivity. With no prefilter installed it is exactly the scaled input
// record count, keeping fault-free costing byte-identical.
func mapCPURecords(s *JobStats, cm CostModel, scale float64) float64 {
	inRecords := float64(s.MapInputRecords) * scale
	filtered := float64(s.MapRecordsFiltered) * scale
	return inRecords - filtered*(1-cm.prefilterFactor())
}

// costJob fills the simulated phase times of a full map+reduce job from its
// counters. All byte/record quantities are scaled by the cluster DataScale
// first. Each phase is costed as the maximum of its disk-, network- and
// CPU-bound times (a throughput bottleneck model) plus per-wave task
// scheduling overhead.
func (e *Engine) costJob(j *Job, s *JobStats, preCombineRecords, preCombineBytes int64) {
	cl := e.cluster
	cm := cl.Cost
	scale := cl.DataScale
	nodes := cl.effectiveNodes()

	inBytes := float64(s.MapInputBytes) * scale
	preBytes := float64(preCombineBytes) * scale
	outBytes := float64(s.MapOutputBytes) * scale
	spillBytes := outBytes
	var compressCPU float64
	if cl.Compress {
		spillBytes *= cm.CompressionRatio
		compressCPU = outBytes * cm.CompressCPUPerByte
	}

	// Map phase. Compression runs inline in the spill path, so its CPU cost
	// adds to the phase rather than overlapping the disk time.
	mapDisk := (inBytes + spillBytes) / (nodes * cm.DiskBandwidth)
	mapCPU := (mapCPURecords(s, cm, scale)*cm.MapCPUPerRecord + preBytes*cm.SortCPUPerByte) / cl.mapSlots()
	mapWaves := math.Ceil(float64(s.NumMapTasks) / cl.mapSlots())
	s.MapTime = (math.Max(mapDisk, mapCPU)+compressCPU/cl.mapSlots())*cl.loadFactor()*cl.reworkFactor() + mapWaves*cm.TaskOverhead
	s.MapBottleneck = "disk"
	if mapCPU > mapDisk {
		s.MapBottleneck = "cpu"
	}

	// Shuffle.
	shuffleBytes := float64(s.ShuffleBytes) * scale
	shuffleNet := shuffleBytes / (nodes * cm.NetworkBandwidth)
	var decompressCPU float64
	if cl.Compress {
		decompressCPU = shuffleBytes * cm.DecompressCPUPerByte / cl.reduceSlots()
	}
	s.ShuffleTime = (shuffleNet + decompressCPU) * cl.loadFactor()

	// Reduce phase: read merged input from local disk, run the reduce
	// function, write output to the DFS (one local replica on disk, the
	// rest over the network).
	redInBytes := outBytes // decompressed size
	redRecords := float64(s.ReduceWorkRecords) * scale
	redOutBytes := float64(s.ReduceOutputBytes) * scale
	repl := float64(cm.HDFSReplication - 1)
	redDisk := (redInBytes + redOutBytes) / (nodes * cm.DiskBandwidth)
	redNet := redOutBytes * repl / (nodes * cm.NetworkBandwidth)
	redCPU := redRecords * cm.ReduceCPUPerRecord / cl.reduceSlots()
	redWaves := math.Ceil(float64(s.NumReduceTasks) / cl.reduceSlots())
	s.ReduceTime = math.Max(redDisk+redNet, redCPU)*cl.loadFactor()*cl.reworkFactor() + redWaves*cm.TaskOverhead
	s.ReduceBottleneck = "disk+net"
	if redCPU > redDisk+redNet {
		s.ReduceBottleneck = "cpu"
	}

	s.StartupTime = cm.JobStartup
	// The analytic path IS the prediction, so drift is exactly 1 here.
	s.PredictedTime = s.StartupTime + s.MapTime + s.ShuffleTime + s.ReduceTime
}

// costMapOnly fills times for a job without a reduce phase: map output goes
// straight to the DFS with replication.
func (e *Engine) costMapOnly(j *Job, s *JobStats, preCombineRecords, preCombineBytes int64) {
	cl := e.cluster
	cm := cl.Cost
	scale := cl.DataScale
	nodes := cl.effectiveNodes()

	inBytes := float64(s.MapInputBytes) * scale
	outBytes := float64(s.ReduceOutputBytes) * scale
	repl := float64(cm.HDFSReplication - 1)

	mapDisk := (inBytes + outBytes) / (nodes * cm.DiskBandwidth)
	mapNet := outBytes * repl / (nodes * cm.NetworkBandwidth)
	mapCPU := mapCPURecords(s, cm, scale) * cm.MapCPUPerRecord / cl.mapSlots()
	mapWaves := math.Ceil(float64(s.NumMapTasks) / cl.mapSlots())
	s.MapTime = math.Max(mapDisk+mapNet, mapCPU)*cl.loadFactor()*cl.reworkFactor() + mapWaves*cm.TaskOverhead
	s.MapBottleneck = "disk+net"
	if mapCPU > mapDisk+mapNet {
		s.MapBottleneck = "cpu"
	}
	s.StartupTime = cm.JobStartup
	s.PredictedTime = s.StartupTime + s.MapTime
}
