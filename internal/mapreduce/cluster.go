package mapreduce

import "fmt"

// CostModel holds the hardware and framework constants that convert
// measured byte/record counters into simulated wall-clock seconds. The
// defaults approximate the Hadoop 0.19/0.20 clusters of the paper (§VII.B);
// absolute values are less important than their ratios, which determine the
// shape of every experiment.
type CostModel struct {
	// DiskBandwidth is the aggregate local-disk bandwidth per node (B/s).
	DiskBandwidth float64
	// NetworkBandwidth is the usable network bandwidth per node (B/s).
	NetworkBandwidth float64
	// MapCPUPerRecord is the map-function CPU cost per input record (s).
	MapCPUPerRecord float64
	// PrefilterCPUFactor is the fraction of MapCPUPerRecord charged for a
	// record rejected by an early filter (Input.Prefilter): the record is
	// still decoded far enough to evaluate the predicate, but the full map
	// function never runs. Values outside (0, 1] fall back to the default.
	PrefilterCPUFactor float64
	// ReduceCPUPerRecord is the reduce-function CPU cost per input value (s).
	ReduceCPUPerRecord float64
	// SortCPUPerByte is the map-output sort cost (s/B).
	SortCPUPerByte float64
	// CompressCPUPerByte / DecompressCPUPerByte are charged on map output
	// when compression is enabled (s/B).
	CompressCPUPerByte   float64
	DecompressCPUPerByte float64
	// CompressionRatio is the compressed/raw size of map output.
	CompressionRatio float64
	// HDFSReplication is the DFS replication factor; reduce output pays
	// (replication-1) network copies.
	HDFSReplication int
	// JobStartup is the fixed per-job cost of scheduling and JVM start (s).
	JobStartup float64
	// TaskOverhead is the scheduling cost per task wave (s).
	TaskOverhead float64
	// SplitSize is the map input split size in (scaled) bytes.
	SplitSize int64
}

// DefaultCostModel returns constants calibrated to 2010-era commodity
// hardware: ~60 MB/s effective disk scan, gigabit Ethernet, and Hadoop's
// heavyweight per-job start-up.
func DefaultCostModel() CostModel {
	return CostModel{
		DiskBandwidth:      60e6,
		NetworkBandwidth:   100e6,
		MapCPUPerRecord:    3e-6,
		PrefilterCPUFactor: defaultPrefilterCPUFactor,
		ReduceCPUPerRecord: 2e-6,
		SortCPUPerByte:     10e-9,
		// Codec throughput reflects zlib on 2009-era cores oversubscribed by
		// multiple task slots — the regime in which the paper measured that
		// compression degrades every query (§VII.E conclusion 3).
		CompressCPUPerByte:   120e-9,
		DecompressCPUPerByte: 40e-9,
		CompressionRatio:     0.35,
		HDFSReplication:      3,
		JobStartup:           12,
		TaskOverhead:         1.5,
		SplitSize:            64 << 20,
	}
}

// Contention models a busy shared cluster (the Facebook production cluster
// of §VII.F): a fraction of slots is taken by co-running jobs and extra
// scheduling delay appears between consecutive jobs of a chain. Delays are
// drawn from a deterministic generator so runs are reproducible.
type Contention struct {
	Enabled bool
	// SlotFactor is the fraction of task slots available to this workload.
	SlotFactor float64
	// LoadFactor multiplies phase execution times, modelling I/O
	// interference and stragglers from co-running jobs (>= 1).
	LoadFactor float64
	// GapMin/GapMax bound the extra scheduling delay inserted before each
	// job after the first (seconds). The paper observed gaps up to 5.4
	// minutes between consecutive Hive jobs (§VII.F.2).
	GapMin, GapMax float64
	// Seed selects the deterministic delay sequence.
	Seed int64
}

// Cluster describes the simulated cluster an engine runs on.
type Cluster struct {
	Name               string
	Nodes              int // worker nodes (JobTracker not counted)
	MapSlotsPerNode    int
	ReduceSlotsPerNode int
	Cost               CostModel
	// Compress enables map-output compression (Fig. 11's "c" variant).
	Compress bool
	// DataScale multiplies actual byte/record counts before costing, so
	// laptop-scale inputs exercise the cost model at paper-scale sizes.
	DataScale  float64
	Contention Contention
	// TaskFailureRate is the fraction of tasks that fail and re-execute
	// (MapReduce's per-task retry, the mechanism the intermediate
	// materialization of §III exists to support). Each phase's execution
	// time is inflated by the expected rework, 1/(1-rate). Must be in
	// [0, 1).
	//
	// Deprecated: this analytic inflation is kept only as a documented
	// fallback. Prefer Faults, which schedules and re-executes individual
	// task attempts. When Faults is set, TaskFailureRate must be zero
	// (Validate rejects both) and the inflation is never applied.
	TaskFailureRate float64
	// Faults, when non-nil and non-zero, switches the engine from the
	// analytic cost path to event-level scheduling: task attempts are
	// placed on concrete slots, injected failures/node deaths/stragglers
	// trigger real re-execution of user code, and phase times come from
	// the resulting schedule. A nil or zero plan leaves results and
	// JobStats byte-identical to a plan-free cluster.
	Faults *FaultPlan
	// Speculation enables backup attempts for stragglers. It only has an
	// effect when Faults injects stragglers.
	Speculation Speculation
}

// Validate checks the configuration is usable.
func (c *Cluster) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster %s: nodes must be positive", c.Name)
	case c.MapSlotsPerNode <= 0 || c.ReduceSlotsPerNode <= 0:
		return fmt.Errorf("cluster %s: slots must be positive", c.Name)
	case c.DataScale <= 0:
		return fmt.Errorf("cluster %s: data scale must be positive", c.Name)
	case c.Cost.HDFSReplication < 1:
		return fmt.Errorf("cluster %s: replication must be >= 1", c.Name)
	case c.Contention.Enabled && (c.Contention.SlotFactor <= 0 || c.Contention.SlotFactor > 1):
		return fmt.Errorf("cluster %s: contention slot factor must be in (0,1]", c.Name)
	case c.Contention.Enabled && c.Contention.LoadFactor < 1:
		return fmt.Errorf("cluster %s: contention load factor must be >= 1", c.Name)
	// lint:ignore deprecated Validate must range-check the fallback field
	case c.TaskFailureRate < 0 || c.TaskFailureRate >= 1:
		return fmt.Errorf("cluster %s: task failure rate must be in [0, 1)", c.Name)
	}
	if c.Faults != nil {
		// lint:ignore deprecated enforcing the rate/Faults mutual exclusion
		if c.TaskFailureRate > 0 {
			return fmt.Errorf("cluster %s: TaskFailureRate and Faults are mutually exclusive; drop the deprecated rate when using a fault plan", c.Name)
		}
		if err := c.Faults.Validate(c.Nodes); err != nil {
			return fmt.Errorf("cluster %s: %w", c.Name, err)
		}
	}
	return nil
}

// defaultPrefilterCPUFactor is the per-record CPU fraction a prefiltered
// line costs when the cost model does not set its own factor: roughly the
// decode-and-compare share of a typical map function.
const defaultPrefilterCPUFactor = 0.15

// prefilterFactor returns the clamped PrefilterCPUFactor.
func (cm CostModel) prefilterFactor() float64 {
	if cm.PrefilterCPUFactor <= 0 || cm.PrefilterCPUFactor > 1 {
		return defaultPrefilterCPUFactor
	}
	return cm.PrefilterCPUFactor
}

// reworkFactor is the expected execution inflation from task retries: with
// failure probability p per attempt, a task runs 1/(1-p) times on average.
// It is the deprecated analytic fallback and only ever runs on the analytic
// cost path: the fault-path coster never calls it, and Validate rejects a
// non-zero rate alongside a FaultPlan.
func (c *Cluster) reworkFactor() float64 {
	// lint:ignore deprecated this is the fallback's sole implementation site
	return 1 / (1 - c.TaskFailureRate)
}

// loadFactor returns the contention execution multiplier (1 when idle).
func (c *Cluster) loadFactor() float64 {
	if c.Contention.Enabled {
		return c.Contention.LoadFactor
	}
	return 1
}

// effectiveNodes returns the node count available for disk and network
// throughput: co-running jobs consume the same share of I/O as of slots.
func (c *Cluster) effectiveNodes() float64 {
	n := float64(c.Nodes)
	if c.Contention.Enabled {
		n *= c.Contention.SlotFactor
	}
	if n < 1 {
		n = 1
	}
	return n
}

// mapSlots returns the effective cluster-wide map slots.
func (c *Cluster) mapSlots() float64 {
	s := float64(c.Nodes * c.MapSlotsPerNode)
	if c.Contention.Enabled {
		s *= c.Contention.SlotFactor
	}
	if s < 1 {
		s = 1
	}
	return s
}

// reduceSlots returns the effective cluster-wide reduce slots.
func (c *Cluster) reduceSlots() float64 {
	s := float64(c.Nodes * c.ReduceSlotsPerNode)
	if c.Contention.Enabled {
		s *= c.Contention.SlotFactor
	}
	if s < 1 {
		s = 1
	}
	return s
}

// DefaultReduceTasks is the number of reduce tasks used when a job does not
// specify one (Hadoop convention: about one per reduce slot).
func (c *Cluster) DefaultReduceTasks() int {
	n := c.Nodes * c.ReduceSlotsPerNode
	if n < 1 {
		n = 1
	}
	return n
}

// SmallCluster is the paper's two-node lab cluster: one TaskTracker node
// with four task slots (§VII.B item 1).
func SmallCluster() *Cluster {
	return &Cluster{
		Name:               "small-2node",
		Nodes:              1,
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 4,
		Cost:               DefaultCostModel(),
		DataScale:          1,
	}
}

// EC2Cluster models the paper's Amazon EC2 clusters of small instances
// (1 virtual core each, §VII.B item 2). workers is the number of worker
// nodes (10 or 100 in the paper; the 11th/101st node runs the JobTracker).
func EC2Cluster(workers int) *Cluster {
	cost := DefaultCostModel()
	// EC2 small instances: slower local disk and shared network.
	cost.DiskBandwidth = 45e6
	cost.NetworkBandwidth = 60e6
	return &Cluster{
		Name:               fmt.Sprintf("ec2-%dnode", workers+1),
		Nodes:              workers,
		MapSlotsPerNode:    2,
		ReduceSlotsPerNode: 2,
		Cost:               cost,
		DataScale:          1,
	}
}

// FacebookCluster models the 747-node production cluster (§VII.B item 3,
// 8 cores, 12 disks per node) with contention from co-running workloads
// enabled (§VII.F).
func FacebookCluster(seed int64) *Cluster {
	cost := DefaultCostModel()
	cost.DiskBandwidth = 300e6 // 12 spindles
	cost.NetworkBandwidth = 100e6
	return &Cluster{
		Name:               "facebook-747node",
		Nodes:              747,
		MapSlotsPerNode:    8,
		ReduceSlotsPerNode: 4,
		Cost:               cost,
		DataScale:          1,
		Contention: Contention{
			Enabled:    true,
			SlotFactor: 0.35,
			LoadFactor: 2,
			GapMin:     20,
			GapMax:     330, // the paper observed gaps up to 5.4 minutes
			Seed:       seed,
		},
	}
}
