package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(NewDFS(), SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// wordCountJob builds the canonical wordcount job over input path.
func wordCountJob(in, out string) *Job {
	return &Job{
		Name: "wordcount",
		Inputs: []Input{{
			Path: in,
			Mapper: MapperFunc(func(line string, emit Emit) error {
				for _, w := range strings.Fields(line) {
					emit(w, "1")
				}
				return nil
			}),
		}},
		Reducer: ReducerFunc(func(key string, values []string, emit func(string)) error {
			n := 0
			for _, v := range values {
				c, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				n += c
			}
			emit(key + "\t" + strconv.Itoa(n))
			return nil
		}),
		Output: out,
	}
}

func TestWordCountEndToEnd(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("in", []string{"a b a", "c b a", ""})
	stats, err := e.RunJob(wordCountJob("in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.DFS().Read("out")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a\t3", "b\t2", "c\t1"}
	if strings.Join(out, "|") != strings.Join(want, "|") {
		t.Errorf("output = %v, want %v", out, want)
	}
	if stats.MapInputRecords != 3 {
		t.Errorf("map input records = %d, want 3", stats.MapInputRecords)
	}
	if stats.MapOutputRecords != 6 {
		t.Errorf("map output records = %d, want 6", stats.MapOutputRecords)
	}
	if stats.ReduceGroups != 3 {
		t.Errorf("reduce groups = %d, want 3", stats.ReduceGroups)
	}
	if stats.TotalTime() <= 0 || stats.MapTime <= 0 || stats.ReduceTime <= 0 {
		t.Errorf("times not positive: %+v", stats)
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("in", []string{"z y x w v u t s r q p"})
	var outs []string
	for i := 0; i < 3; i++ {
		if _, err := e.RunJob(wordCountJob("in", "out")); err != nil {
			t.Fatal(err)
		}
		lines, _ := e.DFS().Read("out")
		outs = append(outs, strings.Join(lines, "|"))
	}
	if outs[0] != outs[1] || outs[1] != outs[2] {
		t.Error("job output is not deterministic across runs")
	}
	if !sort.StringsAreSorted(strings.Split(outs[0], "|")) {
		t.Error("reduce keys not processed in sorted order")
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	lines := make([]string, 200)
	for i := range lines {
		lines[i] = "k" + strconv.Itoa(i%4)
	}
	mapper := MapperFunc(func(line string, emit Emit) error {
		emit(line, "1")
		return nil
	})
	reducer := ReducerFunc(func(key string, values []string, emit func(string)) error {
		n := 0
		for _, v := range values {
			c, _ := strconv.Atoi(v)
			n += c
		}
		emit(key + "\t" + strconv.Itoa(n))
		return nil
	})
	combiner := CombinerFunc(func(key string, values []string) ([]string, error) {
		n := 0
		for _, v := range values {
			c, err := strconv.Atoi(v)
			if err != nil {
				return nil, err
			}
			n += c
		}
		return []string{strconv.Itoa(n)}, nil
	})

	run := func(withCombiner bool) (*JobStats, []string) {
		e := newTestEngine(t)
		e.DFS().Write("in", lines)
		j := &Job{
			Name:    "agg",
			Inputs:  []Input{{Path: "in", Mapper: mapper}},
			Reducer: reducer,
			Output:  "out",
		}
		if withCombiner {
			j.Combiner = combiner
		}
		s, err := e.RunJob(j)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := e.DFS().Read("out")
		return s, out
	}

	plain, outPlain := run(false)
	combined, outCombined := run(true)
	if strings.Join(outPlain, "|") != strings.Join(outCombined, "|") {
		t.Fatalf("combiner changed the result: %v vs %v", outPlain, outCombined)
	}
	if combined.MapOutputRecords >= plain.MapOutputRecords {
		t.Errorf("combiner did not shrink map output: %d >= %d",
			combined.MapOutputRecords, plain.MapOutputRecords)
	}
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Errorf("combiner did not shrink shuffle: %d >= %d",
			combined.ShuffleBytes, plain.ShuffleBytes)
	}
}

func TestMapOnlyJob(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("in", []string{"1", "2", "3", "4"})
	j := &Job{
		Name: "sp",
		Inputs: []Input{{
			Path: "in",
			Mapper: MapperFunc(func(line string, emit Emit) error {
				n, _ := strconv.Atoi(line)
				if n%2 == 0 {
					emit("", line)
				}
				return nil
			}),
		}},
		Output: "out",
	}
	stats, err := e.RunJob(j)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := e.DFS().Read("out")
	if strings.Join(out, "|") != "2|4" {
		t.Errorf("output = %v, want [2 4]", out)
	}
	if !stats.MapOnly || stats.ShuffleBytes != 0 || stats.ReduceTime != 0 {
		t.Errorf("map-only stats wrong: %+v", stats)
	}
}

func TestMultiInputTaggedJoin(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("users", []string{"1\talice", "2\tbob"})
	e.DFS().Write("orders", []string{"1\tbook", "1\tpen", "3\tcar"})
	tagMapper := func(tag string) Mapper {
		return MapperFunc(func(line string, emit Emit) error {
			parts := strings.SplitN(line, "\t", 2)
			emit(parts[0], tag+":"+parts[1])
			return nil
		})
	}
	j := &Job{
		Name: "join",
		Inputs: []Input{
			{Path: "users", Mapper: tagMapper("U")},
			{Path: "orders", Mapper: tagMapper("O")},
		},
		Reducer: ReducerFunc(func(key string, values []string, emit func(string)) error {
			var users, orders []string
			for _, v := range values {
				switch {
				case strings.HasPrefix(v, "U:"):
					users = append(users, v[2:])
				case strings.HasPrefix(v, "O:"):
					orders = append(orders, v[2:])
				}
			}
			for _, u := range users {
				for _, o := range orders {
					emit(key + "\t" + u + "\t" + o)
				}
			}
			return nil
		}),
		Output: "out",
	}
	if _, err := e.RunJob(j); err != nil {
		t.Fatal(err)
	}
	out, _ := e.DFS().Read("out")
	want := []string{"1\talice\tbook", "1\talice\tpen"}
	if strings.Join(out, "|") != strings.Join(want, "|") {
		t.Errorf("join output = %v, want %v", out, want)
	}
}

func TestRunChainDependencies(t *testing.T) {
	e := newTestEngine(t)
	e.DFS().Write("in", []string{"b a", "c a"})
	j1 := wordCountJob("in", "mid")
	j2 := &Job{
		Name: "filter",
		Inputs: []Input{{
			Path: "mid",
			Mapper: MapperFunc(func(line string, emit Emit) error {
				if !strings.HasPrefix(line, "a") {
					emit("", line)
				}
				return nil
			}),
		}},
		Output:    "out",
		DependsOn: []*Job{j1},
	}
	// Submit out of order: RunChain must topologically sort.
	stats, err := e.RunChain([]*Job{j2, j1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NumJobs() != 2 || stats.Jobs[0].Name != "wordcount" {
		t.Fatalf("chain order wrong: %v", stats.Jobs)
	}
	out, _ := e.DFS().Read("out")
	if strings.Join(out, "|") != "b\t1|c\t1" {
		t.Errorf("output = %v", out)
	}
	if stats.TotalTime() <= stats.Jobs[0].TotalTime() {
		t.Error("chain total should exceed first job time")
	}
}

func TestChainCycleAndMissingDeps(t *testing.T) {
	a := wordCountJob("in", "a")
	b := wordCountJob("in", "b")
	a.DependsOn = []*Job{b}
	b.DependsOn = []*Job{a}
	e := newTestEngine(t)
	if _, err := e.RunChain([]*Job{a, b}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle err = %v", err)
	}
	c := wordCountJob("in", "c")
	c.DependsOn = []*Job{wordCountJob("in", "x")}
	if _, err := e.RunChain([]*Job{c}); err == nil || !strings.Contains(err.Error(), "not in the chain") {
		t.Errorf("missing dep err = %v", err)
	}
}

func TestJobValidation(t *testing.T) {
	e := newTestEngine(t)
	bad := []*Job{
		{},
		{Name: "x"},
		{Name: "x", Inputs: []Input{{Path: "p"}}},
		{Name: "x", Inputs: []Input{{Path: "p", Mapper: MapperFunc(nil)}}},
		{Name: "x", Inputs: []Input{{Path: "p", Mapper: MapperFunc(func(string, Emit) error { return nil })}}, NumReduceTasks: -1, Output: "o"},
	}
	for i, j := range bad {
		if _, err := e.RunJob(j); err == nil {
			t.Errorf("job %d validated, want error", i)
		}
	}
}

func TestMissingInputFile(t *testing.T) {
	e := newTestEngine(t)
	_, err := e.RunJob(wordCountJob("nope", "out"))
	var nf *FileNotFoundError
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v, want file-not-found", err)
	}
	_ = nf
}

// ----- Cost model behaviour ------------------------------------------------

// timedRun executes wordcount on a given cluster over ~lineCount lines and
// returns the stats.
func timedRun(t *testing.T, cluster *Cluster, lineCount int) *JobStats {
	t.Helper()
	dfs := NewDFS()
	lines := make([]string, lineCount)
	for i := range lines {
		lines[i] = fmt.Sprintf("key%d value filler filler filler", i%50)
	}
	dfs.Write("in", lines)
	e, err := NewEngine(dfs, cluster)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.RunJob(wordCountJob("in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDataScaleIncreasesTime(t *testing.T) {
	small := SmallCluster()
	small.DataScale = 1
	big := SmallCluster()
	big.DataScale = 1000
	ts := timedRun(t, small, 2000)
	tb := timedRun(t, big, 2000)
	if tb.TotalTime() <= ts.TotalTime() {
		t.Errorf("scaled run not slower: %f vs %f", tb.TotalTime(), ts.TotalTime())
	}
	if tb.MapInputBytes != ts.MapInputBytes {
		t.Error("DataScale must not change raw counters")
	}
}

func TestMoreNodesFaster(t *testing.T) {
	c1 := EC2Cluster(10)
	c1.DataScale = 50000
	c2 := EC2Cluster(100)
	c2.DataScale = 50000
	t1 := timedRun(t, c1, 2000)
	t2 := timedRun(t, c2, 2000)
	if t2.TotalTime() >= t1.TotalTime() {
		t.Errorf("100 workers not faster than 10: %f vs %f", t2.TotalTime(), t1.TotalTime())
	}
}

// Compression must hurt on an isolated cluster with the default constants —
// the paper's Fig. 11 finding (§VII.E third conclusion).
func TestCompressionHurtsWithDefaults(t *testing.T) {
	nc := EC2Cluster(10)
	nc.DataScale = 50000
	c := EC2Cluster(10)
	c.DataScale = 50000
	c.Compress = true
	tn := timedRun(t, nc, 2000)
	tc := timedRun(t, c, 2000)
	if tc.ShuffleBytes >= tn.ShuffleBytes {
		t.Errorf("compression did not shrink shuffle bytes: %d vs %d", tc.ShuffleBytes, tn.ShuffleBytes)
	}
	if tc.TotalTime() <= tn.TotalTime() {
		t.Errorf("compression should cost more time with default constants: %f vs %f",
			tc.TotalTime(), tn.TotalTime())
	}
}

func TestContentionAddsGapsDeterministically(t *testing.T) {
	run := func(seed int64) []float64 {
		cluster := FacebookCluster(seed)
		cluster.DataScale = 1
		dfs := NewDFS()
		dfs.Write("in", []string{"a b", "b c"})
		e, err := NewEngine(dfs, cluster)
		if err != nil {
			t.Fatal(err)
		}
		j1 := wordCountJob("in", "m")
		j2 := wordCountJob("m", "o")
		j2.DependsOn = []*Job{j1}
		j3 := wordCountJob("o", "p")
		j3.DependsOn = []*Job{j2}
		st, err := e.RunChain([]*Job{j1, j2, j3})
		if err != nil {
			t.Fatal(err)
		}
		var gaps []float64
		for _, js := range st.Jobs {
			gaps = append(gaps, js.GapBefore)
		}
		return gaps
	}
	g1 := run(7)
	g2 := run(7)
	g3 := run(8)
	if g1[0] != 0 {
		t.Error("first job must have no gap")
	}
	if g1[1] <= 0 || g1[2] <= 0 {
		t.Errorf("later jobs should have contention gaps: %v", g1)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Errorf("same seed produced different gaps: %v vs %v", g1, g2)
		}
	}
	if g1[1] == g3[1] && g1[2] == g3[2] {
		t.Error("different seeds should produce different gaps")
	}
}

func TestClusterValidate(t *testing.T) {
	bad := []*Cluster{
		{Name: "x", Nodes: 0, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, DataScale: 1, Cost: DefaultCostModel()},
		{Name: "x", Nodes: 1, MapSlotsPerNode: 0, ReduceSlotsPerNode: 1, DataScale: 1, Cost: DefaultCostModel()},
		{Name: "x", Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1, DataScale: 0, Cost: DefaultCostModel()},
	}
	for i, c := range bad {
		if _, err := NewEngine(NewDFS(), c); err == nil {
			t.Errorf("cluster %d validated, want error", i)
		}
	}
	c := SmallCluster()
	c.Contention = Contention{Enabled: true, SlotFactor: 2}
	if err := c.Validate(); err == nil {
		t.Error("slot factor > 1 should fail validation")
	}
}

// ----- helpers ---------------------------------------------------------------

func TestSplitChunksProperties(t *testing.T) {
	f := func(nLines uint8, nChunks uint8) bool {
		lines := make([]string, int(nLines))
		for i := range lines {
			lines[i] = strconv.Itoa(i)
		}
		n := int(nChunks)
		if n == 0 {
			n = 1
		}
		chunks := splitChunks(lines, n)
		// Concatenation preserves order and content.
		var rejoined []string
		for _, c := range chunks {
			rejoined = append(rejoined, c...)
		}
		if len(rejoined) != len(lines) {
			return false
		}
		for i := range lines {
			if rejoined[i] != lines[i] {
				return false
			}
		}
		// Chunk sizes differ by at most one (when more than one chunk).
		if len(chunks) > 1 {
			minSz, maxSz := len(chunks[0]), len(chunks[0])
			for _, c := range chunks {
				if len(c) < minSz {
					minSz = len(c)
				}
				if len(c) > maxSz {
					maxSz = len(c)
				}
			}
			if maxSz-minSz > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfStableAndInRange(t *testing.T) {
	f := func(key string) bool {
		p := partitionOf(key, 7)
		return p >= 0 && p < 7 && p == partitionOf(key, 7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDFSBasics(t *testing.T) {
	d := NewDFS()
	if d.Exists("x") {
		t.Error("fresh DFS should be empty")
	}
	d.Write("x", []string{"a", "bb"})
	if got := d.SizeBytes("x"); got != 5 { // "a\n" + "bb\n"
		t.Errorf("SizeBytes = %d, want 5", got)
	}
	d.Append("x", []string{"c"})
	lines, err := d.Read("x")
	if err != nil || len(lines) != 3 {
		t.Fatalf("Read = %v, %v", lines, err)
	}
	// Write copies its input.
	src := []string{"z"}
	d.Write("y", src)
	src[0] = "mutated"
	got, _ := d.Read("y")
	if got[0] != "z" {
		t.Error("Write did not copy input slice")
	}
	if list := d.List(); strings.Join(list, ",") != "x,y" {
		t.Errorf("List = %v", list)
	}
	d.Delete("x")
	if d.Exists("x") {
		t.Error("Delete failed")
	}
	if _, err := d.Read("x"); err == nil {
		t.Error("Read of deleted file should fail")
	}
	if d.SizeBytes("missing") != 0 {
		t.Error("SizeBytes of missing file should be 0")
	}
}
