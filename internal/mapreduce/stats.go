package mapreduce

import (
	"fmt"
	"strings"

	"ysmart/internal/obs"
)

// JobStats records the measured counters and simulated times of one job.
// Counters are raw (unscaled); times include the cluster's DataScale.
type JobStats struct {
	Name string

	// Raw counters measured during execution.
	MapInputRecords int64
	MapInputBytes   int64
	// MapRecordsFiltered counts input lines an Input.Prefilter rejected
	// before the mapper ran (zero when no early filters are installed).
	// Filtered lines are included in MapInputRecords/Bytes — the scan still
	// reads them — but pay only a fraction of the per-record map CPU.
	MapRecordsFiltered int64
	MapOutputRecords   int64 // after the combiner, if any
	MapOutputBytes     int64
	ShuffleBytes       int64 // map output bytes after optional compression
	ReduceGroups       int64
	ReduceInputRecords int64
	// ReduceWorkRecords counts row-processings inside the reducer; a common
	// reducer running several merged operators reports more work than its
	// input record count (see ReduceWorkReporter).
	ReduceWorkRecords   int64
	ReduceOutputRecords int64
	ReduceOutputBytes   int64
	NumMapTasks         int
	NumReduceTasks      int
	MapOnly             bool

	// Dispatch holds per-operator row counts when the job's reducer is a
	// common reducer running a merged operator graph (see DispatchReporter).
	// It is collected on every run, traced or not, so instrumentation never
	// changes observable stats.
	Dispatch []OpDispatch

	// Simulated wall-clock seconds.
	StartupTime float64
	MapTime     float64
	ShuffleTime float64
	ReduceTime  float64
	// GapBefore is contention-induced scheduling delay charged before the
	// job started (zero on isolated clusters).
	GapBefore float64

	// MapBottleneck and ReduceBottleneck name the resource that bounded each
	// phase under the throughput model ("disk", "cpu", or "disk+net") —
	// cost-model provenance surfaced in traces and explain -analyze.
	MapBottleneck    string
	ReduceBottleneck string

	// PredictedTime is the analytic cost model's prediction of the job's
	// startup+map+shuffle+reduce seconds (GapBefore excluded). On the
	// analytic path it equals the measured total, so drift is 1; under a
	// FaultPlan it is the fault-free analytic time, and actual/predicted
	// measures how far recovery pushed the job off the model — the
	// cost-model drift metric the admin plane exports.
	PredictedTime float64

	// Event-level fault recovery, filled only when the cluster carries an
	// active FaultPlan (all zero and nil otherwise, so fault-free runs stay
	// byte-identical to a plan-free engine).
	MapTaskRetries     int // failed or node-lost map attempts that relaunched
	ReduceTaskRetries  int // failed or node-lost reduce attempts that relaunched
	RecomputedMapTasks int // completed map tasks re-executed after a node death
	SpeculativeTasks   int // backup attempts launched for stragglers
	SpeculativeWins    int // backups that finished before their original
	NodeFailures       int // node deaths falling inside this job's span
	// Attempts is the full per-attempt schedule of a fault-injected run,
	// map phase first (absolute simulated times; nil on the analytic path).
	Attempts []TaskAttempt
}

// Retries reports all relaunched attempts across both phases.
func (s *JobStats) Retries() int { return s.MapTaskRetries + s.ReduceTaskRetries }

// HasRecovery reports whether any fault-recovery activity happened in this
// job (retries, recomputes or speculative backups).
func (s *JobStats) HasRecovery() bool {
	return s.Retries()+s.RecomputedMapTasks+s.SpeculativeTasks > 0
}

// TotalTime is the job's end-to-end simulated duration including the
// scheduling gap before it.
func (s *JobStats) TotalTime() float64 {
	return s.GapBefore + s.StartupTime + s.MapTime + s.ShuffleTime + s.ReduceTime
}

// ReducePhaseTime reports shuffle+reduce together, the way Hadoop's UI (and
// the paper's breakdown figures) attribute time to the "reduce phase".
func (s *JobStats) ReducePhaseTime() float64 { return s.ShuffleTime + s.ReduceTime }

// CostDrift is the ratio of measured to predicted job time (1 when the
// analytic model was exact, >1 when fault recovery stretched the job past
// the model's prediction). It reports 1 when no prediction was recorded.
func (s *JobStats) CostDrift() float64 {
	if s.PredictedTime <= 0 {
		return 1
	}
	return (s.StartupTime + s.MapTime + s.ShuffleTime + s.ReduceTime) / s.PredictedTime
}

// String renders the one-line per-job summary of the execution report.
func (s *JobStats) String() string {
	out := fmt.Sprintf("%s: map %.0fs (%d tasks, in %s, out %s) reduce %.0fs (%d tasks, %d groups) total %.0fs",
		s.Name, s.MapTime, s.NumMapTasks, obs.FormatBytes(s.MapInputBytes), obs.FormatBytes(s.MapOutputBytes),
		s.ReducePhaseTime(), s.NumReduceTasks, s.ReduceGroups, s.TotalTime())
	if s.HasRecovery() {
		out += fmt.Sprintf(" [retries %d, recomputed %d, speculative %d won %d]",
			s.Retries(), s.RecomputedMapTasks, s.SpeculativeTasks, s.SpeculativeWins)
	}
	return out
}

// ChainStats aggregates a job chain (one query execution).
type ChainStats struct {
	Jobs []*JobStats
}

// TotalTime is the simulated end-to-end time of the chain (jobs run
// sequentially in dependency order, as Hive did).
func (c *ChainStats) TotalTime() float64 {
	var t float64
	for _, j := range c.Jobs {
		t += j.TotalTime()
	}
	return t
}

// NumJobs returns the number of executed jobs.
func (c *ChainStats) NumJobs() int { return len(c.Jobs) }

// TotalMapInputBytes sums raw map input bytes over the chain — the "table
// scan volume" the paper's analysis tracks.
func (c *ChainStats) TotalMapInputBytes() int64 {
	var n int64
	for _, j := range c.Jobs {
		n += j.MapInputBytes
	}
	return n
}

// TotalShuffleBytes sums shuffle traffic over the chain.
func (c *ChainStats) TotalShuffleBytes() int64 {
	var n int64
	for _, j := range c.Jobs {
		n += j.ShuffleBytes
	}
	return n
}

// TotalRetries sums relaunched task attempts over the chain.
func (c *ChainStats) TotalRetries() int {
	var n int
	for _, j := range c.Jobs {
		n += j.Retries()
	}
	return n
}

// TotalRecomputed sums node-death map recomputes over the chain.
func (c *ChainStats) TotalRecomputed() int {
	var n int
	for _, j := range c.Jobs {
		n += j.RecomputedMapTasks
	}
	return n
}

// TotalSpeculative sums speculative backups launched over the chain.
func (c *ChainStats) TotalSpeculative() int {
	var n int
	for _, j := range c.Jobs {
		n += j.SpeculativeTasks
	}
	return n
}

// String renders every job's summary line plus the chain total.
func (c *ChainStats) String() string {
	var sb strings.Builder
	for _, j := range c.Jobs {
		sb.WriteString("  " + j.String() + "\n")
	}
	fmt.Fprintf(&sb, "  total: %d jobs, %.0fs", c.NumJobs(), c.TotalTime())
	return sb.String()
}

// FormatBytes is re-exported from the observability layer so existing
// callers keep one canonical byte formatter.
var FormatBytes = obs.FormatBytes
