package mapreduce

import (
	"fmt"
	"math/rand"
	"testing"
)

// Cost-model monotonicity properties: more data, fewer resources, or more
// adverse conditions can never make a job faster. Each property runs the
// same real job under two parameterizations and compares simulated times.

func costProbe(t *testing.T, mutate func(*Cluster), lines int) *JobStats {
	t.Helper()
	cluster := SmallCluster()
	cluster.DataScale = 20000
	if mutate != nil {
		mutate(cluster)
	}
	dfs := NewDFS()
	data := make([]string, lines)
	for i := range data {
		data[i] = fmt.Sprintf("key%d filler filler filler filler", i%37)
	}
	dfs.Write("in", data)
	e, err := NewEngine(dfs, cluster)
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.RunJob(wordCountJob("in", "out"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCostMonotoneInData(t *testing.T) {
	small := costProbe(t, nil, 500)
	big := costProbe(t, nil, 2000)
	if big.TotalTime() <= small.TotalTime() {
		t.Errorf("4x data not slower: %.1f <= %.1f", big.TotalTime(), small.TotalTime())
	}
}

func TestCostMonotoneInBandwidth(t *testing.T) {
	fast := costProbe(t, nil, 1000)
	slow := costProbe(t, func(c *Cluster) { c.Cost.DiskBandwidth /= 4 }, 1000)
	if slow.TotalTime() <= fast.TotalTime() {
		t.Errorf("slower disk not slower overall: %.1f <= %.1f", slow.TotalTime(), fast.TotalTime())
	}
	slowNet := costProbe(t, func(c *Cluster) { c.Cost.NetworkBandwidth /= 100 }, 1000)
	if slowNet.ShuffleTime <= fast.ShuffleTime {
		t.Errorf("slower network did not slow the shuffle: %.1f <= %.1f",
			slowNet.ShuffleTime, fast.ShuffleTime)
	}
}

func TestCostMonotoneInSlots(t *testing.T) {
	wide := costProbe(t, func(c *Cluster) { c.MapSlotsPerNode = 16; c.ReduceSlotsPerNode = 16 }, 1000)
	narrow := costProbe(t, func(c *Cluster) { c.MapSlotsPerNode = 1; c.ReduceSlotsPerNode = 1 }, 1000)
	if narrow.TotalTime() < wide.TotalTime() {
		t.Errorf("fewer slots faster: %.1f < %.1f", narrow.TotalTime(), wide.TotalTime())
	}
}

func TestCostMonotoneInReplication(t *testing.T) {
	r1 := costProbe(t, func(c *Cluster) { c.Cost.HDFSReplication = 1 }, 1000)
	r5 := costProbe(t, func(c *Cluster) { c.Cost.HDFSReplication = 5 }, 1000)
	if r5.ReduceTime < r1.ReduceTime {
		t.Errorf("higher replication faster: %.1f < %.1f", r5.ReduceTime, r1.ReduceTime)
	}
}

func TestCostMonotoneRandomizedKnobs(t *testing.T) {
	// Randomized single-knob degradations must never speed the job up.
	rng := rand.New(rand.NewSource(9))
	base := costProbe(t, nil, 800)
	knobs := []func(*Cluster, float64){
		func(c *Cluster, f float64) { c.Cost.DiskBandwidth /= 1 + f },
		func(c *Cluster, f float64) { c.Cost.NetworkBandwidth /= 1 + f },
		func(c *Cluster, f float64) { c.Cost.MapCPUPerRecord *= 1 + f },
		func(c *Cluster, f float64) { c.Cost.ReduceCPUPerRecord *= 1 + f },
		func(c *Cluster, f float64) { c.Cost.JobStartup *= 1 + f },
		func(c *Cluster, f float64) { c.TaskFailureRate = f / (1 + f) * 0.9 },
		func(c *Cluster, f float64) { c.DataScale *= 1 + f },
	}
	for trial := 0; trial < 40; trial++ {
		ki := rng.Intn(len(knobs))
		f := rng.Float64() * 5
		degraded := costProbe(t, func(c *Cluster) { knobs[ki](c, f) }, 800)
		if degraded.TotalTime() < base.TotalTime()-1e-9 {
			t.Fatalf("trial %d: degrading knob %d by %.2f made the job faster (%.2f < %.2f)",
				trial, ki, f, degraded.TotalTime(), base.TotalTime())
		}
	}
}
