package mapreduce

import (
	"fmt"
	"sort"
	"sync"
)

// DFS is the simulated distributed file system. Files are ordered lists of
// text lines. The zero value is not usable; call NewDFS.
type DFS struct {
	mu    sync.RWMutex
	files map[string][]string
}

// NewDFS returns an empty file system.
func NewDFS() *DFS {
	return &DFS{files: make(map[string][]string)}
}

// FileNotFoundError reports a read of a missing path.
type FileNotFoundError struct{ Path string }

func (e *FileNotFoundError) Error() string {
	return fmt.Sprintf("dfs: file %q not found", e.Path)
}

// Write stores lines at path, replacing any previous content. The slice is
// copied.
func (d *DFS) Write(path string, lines []string) {
	cp := make([]string, len(lines))
	copy(cp, lines)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[path] = cp
}

// Append adds lines to path, creating it if absent.
func (d *DFS) Append(path string, lines []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[path] = append(d.files[path], lines...)
}

// Read returns the lines of path. The returned slice is shared; callers
// must not mutate it.
func (d *DFS) Read(path string) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	lines, ok := d.files[path]
	if !ok {
		return nil, &FileNotFoundError{Path: path}
	}
	return lines, nil
}

// Exists reports whether path is present.
func (d *DFS) Exists(path string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.files[path]
	return ok
}

// Delete removes path; deleting a missing path is a no-op.
func (d *DFS) Delete(path string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, path)
}

// SizeBytes returns the byte size of path's content (line bytes plus one
// newline per line), or 0 if absent.
func (d *DFS) SizeBytes(path string) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, l := range d.files[path] {
		n += int64(len(l)) + 1
	}
	return n
}

// List returns all paths in sorted order.
func (d *DFS) List() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.files))
	for p := range d.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// linesBytes computes the encoded size of a line batch.
func linesBytes(lines []string) int64 {
	var n int64
	for _, l := range lines {
		n += int64(len(l)) + 1
	}
	return n
}
