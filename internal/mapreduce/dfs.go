package mapreduce

import (
	"fmt"
	"sort"
	"sync"

	"ysmart/internal/obs"
)

// DFS is the simulated distributed file system. Files are ordered lists of
// text lines. The zero value is not usable; call NewDFS.
type DFS struct {
	mu    sync.RWMutex
	files map[string][]string

	tracer  obs.Tracer
	metrics *obs.Registry
	clock   func() float64
}

// NewDFS returns an empty file system.
func NewDFS() *DFS {
	return &DFS{files: make(map[string][]string), tracer: obs.Nop}
}

// Instrument attaches a tracer and metrics registry. Read and write
// instants are stamped with clock() — the engine passes its simulated
// clock, so DFS events line up with job spans. A nil tracer restores the
// no-op default.
func (d *DFS) Instrument(t obs.Tracer, r *obs.Registry, clock func() float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t == nil {
		t = obs.Nop
	}
	d.tracer = t
	d.metrics = r
	d.clock = clock
}

// now returns the instrumented clock reading (0 before Instrument).
func (d *DFS) now() float64 {
	if d.clock == nil {
		return 0
	}
	return d.clock()
}

// observe records one DFS access on the tracer and registry.
func (d *DFS) observe(op, path string, lines []string) {
	traced := d.tracer.Enabled()
	if !traced && d.metrics == nil {
		return
	}
	bytes := linesBytes(lines)
	if traced {
		d.tracer.Emit(obs.InstantEvent("dfs", "dfs."+op, "dfs", d.now(),
			obs.F("path", path), obs.F("records", int64(len(lines))), obs.F("bytes", bytes)))
	}
	if d.metrics != nil {
		d.metrics.Add("ysmart_dfs_"+op+"s_total", 1)
		d.metrics.Add("ysmart_dfs_"+op+"_bytes_total", float64(bytes))
	}
}

// FileNotFoundError reports a read of a missing path.
type FileNotFoundError struct{ Path string }

// Error implements the error interface.
func (e *FileNotFoundError) Error() string {
	return fmt.Sprintf("dfs: file %q not found", e.Path)
}

// Write stores lines at path, replacing any previous content. The slice is
// copied.
func (d *DFS) Write(path string, lines []string) {
	cp := make([]string, len(lines))
	copy(cp, lines)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[path] = cp
	d.observe("write", path, cp)
}

// Append adds lines to path, creating it if absent.
func (d *DFS) Append(path string, lines []string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.files[path] = append(d.files[path], lines...)
	d.observe("write", path, lines)
}

// Read returns the lines of path. The returned slice is shared; callers
// must not mutate it.
func (d *DFS) Read(path string) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	lines, ok := d.files[path]
	if !ok {
		return nil, &FileNotFoundError{Path: path}
	}
	d.observe("read", path, lines)
	return lines, nil
}

// Exists reports whether path is present.
func (d *DFS) Exists(path string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.files[path]
	return ok
}

// Delete removes path; deleting a missing path is a no-op.
func (d *DFS) Delete(path string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, path)
}

// SizeBytes returns the byte size of path's content (line bytes plus one
// newline per line), or 0 if absent.
func (d *DFS) SizeBytes(path string) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, l := range d.files[path] {
		n += int64(len(l)) + 1
	}
	return n
}

// List returns all paths in sorted order.
func (d *DFS) List() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.files))
	for p := range d.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// linesBytes computes the encoded size of a line batch.
func linesBytes(lines []string) int64 {
	var n int64
	for _, l := range lines {
		n += int64(len(l)) + 1
	}
	return n
}
