package mapreduce

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ysmart/internal/obs"
)

// DFS is the simulated distributed file system. Files are ordered lists of
// text lines. The zero value is not usable; call NewDFS.
//
// All methods are safe for concurrent use: the engine's worker pool may
// read while the driver writes other paths. Write and Append never share
// backing arrays with slices handed out by earlier Reads, and observation
// (trace instants, counters) happens under the same lock as the file-map
// access so readers never see a torn path/length pair.
type DFS struct {
	mu    sync.RWMutex
	files map[string][]string
	// contention counts lock acquisitions that found the lock held. It is a
	// host-scheduling artifact, so it is exposed only through Contention()
	// and deliberately never reaches metrics or traces — those must stay
	// byte-identical across runs and worker counts.
	contention atomic.Int64

	tracer  obs.Tracer
	metrics *obs.Registry
	clock   func() float64

	// writeObs, when set, is invoked with the path of every Write, Append
	// and Delete — the hook validity-epoch tracking (internal/reuse) hangs
	// off so materialized artifacts derived from a path stop being served
	// the moment the path's content changes. Called under the DFS lock:
	// observers must be fast and must never call back into the DFS.
	writeObs func(path string)
}

// NewDFS returns an empty file system.
func NewDFS() *DFS {
	return &DFS{files: make(map[string][]string), tracer: obs.Nop}
}

// Instrument attaches a tracer and metrics registry. Read and write
// instants are stamped with clock() — the engine passes its simulated
// clock, so DFS events line up with job spans. A nil tracer restores the
// no-op default.
func (d *DFS) Instrument(t obs.Tracer, r *obs.Registry, clock func() float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if t == nil {
		t = obs.Nop
	}
	d.tracer = t
	d.metrics = r
	d.clock = clock
}

// now returns the instrumented clock reading (0 before Instrument).
func (d *DFS) now() float64 {
	if d.clock == nil {
		return 0
	}
	return d.clock()
}

// observe records one DFS access on the tracer and registry.
func (d *DFS) observe(op, path string, lines []string) {
	traced := d.tracer.Enabled()
	if !traced && d.metrics == nil {
		return
	}
	bytes := linesBytes(lines)
	if traced {
		d.tracer.Emit(obs.InstantEvent("dfs", "dfs."+op, "dfs", d.now(),
			obs.F("path", path), obs.F("records", int64(len(lines))), obs.F("bytes", bytes)))
	}
	if d.metrics != nil {
		d.metrics.Add("ysmart_dfs_"+op+"s_total", 1)
		d.metrics.Add("ysmart_dfs_"+op+"_bytes_total", float64(bytes))
	}
}

// FileNotFoundError reports a read of a missing path.
type FileNotFoundError struct{ Path string }

// Error implements the error interface.
func (e *FileNotFoundError) Error() string {
	return fmt.Sprintf("dfs: file %q not found", e.Path)
}

// lock acquires the write lock, counting contended acquisitions.
func (d *DFS) lock() {
	if !d.mu.TryLock() {
		d.contention.Add(1)
		d.mu.Lock()
	}
}

// rlock acquires the read lock, counting contended acquisitions.
func (d *DFS) rlock() {
	if !d.mu.TryRLock() {
		d.contention.Add(1)
		d.mu.RLock()
	}
}

// SetWriteObserver registers fn to be called with the path of every
// subsequent Write, Append and Delete (nil unregisters). The callback
// runs under the DFS write lock so mutation and notification are atomic;
// it must not call back into the DFS.
func (d *DFS) SetWriteObserver(fn func(path string)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeObs = fn
}

// notifyWrite invokes the write observer; callers hold the write lock.
func (d *DFS) notifyWrite(path string) {
	if d.writeObs != nil {
		d.writeObs(path)
	}
}

// Contention reports how many lock acquisitions found the lock held — a
// measure of real concurrent pressure on the DFS. The count depends on
// host scheduling and worker count, so it is diagnostic only: it never
// feeds stats, metrics or traces.
func (d *DFS) Contention() int64 { return d.contention.Load() }

// Write stores lines at path, replacing any previous content. The slice is
// copied.
func (d *DFS) Write(path string, lines []string) {
	cp := make([]string, len(lines))
	copy(cp, lines)
	d.lock()
	defer d.mu.Unlock()
	d.files[path] = cp
	d.observe("write", path, cp)
	d.notifyWrite(path)
}

// Append adds lines to path, creating it if absent. The three-index slice
// caps the existing content at its length, forcing append to allocate a
// fresh backing array instead of growing in place — growth in place would
// write into an array shared with slices earlier Reads handed out, the
// classic torn-read hazard once readers run on other goroutines.
func (d *DFS) Append(path string, lines []string) {
	d.lock()
	defer d.mu.Unlock()
	cur := d.files[path]
	d.files[path] = append(cur[:len(cur):len(cur)], lines...)
	d.observe("write", path, lines)
	d.notifyWrite(path)
}

// Read returns the lines of path. The returned slice is shared; callers
// must not mutate it.
func (d *DFS) Read(path string) ([]string, error) {
	d.rlock()
	defer d.mu.RUnlock()
	lines, ok := d.files[path]
	if !ok {
		return nil, &FileNotFoundError{Path: path}
	}
	d.observe("read", path, lines)
	return lines, nil
}

// Exists reports whether path is present.
func (d *DFS) Exists(path string) bool {
	d.rlock()
	defer d.mu.RUnlock()
	_, ok := d.files[path]
	return ok
}

// Delete removes path; deleting a missing path is a no-op.
func (d *DFS) Delete(path string) {
	d.lock()
	defer d.mu.Unlock()
	delete(d.files, path)
	d.notifyWrite(path)
}

// SizeBytes returns the byte size of path's content (line bytes plus one
// newline per line), or 0 if absent.
func (d *DFS) SizeBytes(path string) int64 {
	d.rlock()
	defer d.mu.RUnlock()
	var n int64
	for _, l := range d.files[path] {
		n += int64(len(l)) + 1
	}
	return n
}

// List returns all paths in sorted order.
func (d *DFS) List() []string {
	d.rlock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.files))
	for p := range d.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// linesBytes computes the encoded size of a line batch.
func linesBytes(lines []string) int64 {
	var n int64
	for _, l := range lines {
		n += int64(len(l)) + 1
	}
	return n
}
