package mapreduce

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ysmart/internal/obs"
)

// testFaultCluster is a 4-node cluster with a tiny split size so even the
// small test inputs produce many real map tasks (and several waves).
func testFaultCluster() *Cluster {
	c := SmallCluster()
	c.Name = "fault-test"
	c.Nodes = 4
	c.MapSlotsPerNode = 2
	c.ReduceSlotsPerNode = 2
	c.Cost.SplitSize = 64
	return c
}

// faultTestLines is a deterministic many-line input (dozens of map tasks
// at the test cluster's 64-byte split size).
func faultTestLines() []string {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	var lines []string
	for i := 0; i < 120; i++ {
		lines = append(lines, fmt.Sprintf("%s %s %s",
			words[i%len(words)], words[(i*7+3)%len(words)], words[(i*13+1)%len(words)]))
	}
	return lines
}

// runFaultChain executes the three-job wordcount chain on a fresh DFS
// under the given cluster, returning stats and the final output lines.
func runFaultChain(t *testing.T, cluster *Cluster, tracer obs.Tracer) (*ChainStats, []string) {
	t.Helper()
	dfs := NewDFS()
	dfs.Write("in", faultTestLines())
	e, err := NewEngine(dfs, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if tracer != nil {
		e.Instrument(tracer, nil)
	}
	stats, err := e.RunChain(chainJobs())
	if err != nil {
		t.Fatal(err)
	}
	out, err := dfs.Read("p")
	if err != nil {
		t.Fatal(err)
	}
	return stats, out
}

func TestZeroFaultPlanIsByteIdentical(t *testing.T) {
	base, baseOut := runFaultChain(t, testFaultCluster(), nil)

	zero := testFaultCluster()
	zero.Faults = &FaultPlan{Seed: 42} // no events
	zero.Speculation = Speculation{Enabled: true}
	got, gotOut := runFaultChain(t, zero, nil)

	if !reflect.DeepEqual(base.Jobs, got.Jobs) {
		t.Errorf("zero-event FaultPlan changed JobStats:\nbase %+v\ngot  %+v", base.Jobs, got.Jobs)
	}
	if !reflect.DeepEqual(baseOut, gotOut) {
		t.Errorf("zero-event FaultPlan changed output")
	}
}

func TestTaskFailuresPreserveOutput(t *testing.T) {
	_, want := runFaultChain(t, testFaultCluster(), nil)

	faulty := testFaultCluster()
	faulty.Faults = &FaultPlan{Seed: 1, TaskFailureProb: 0.3}
	stats, got := runFaultChain(t, faulty, nil)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("output under task failures differs from fault-free run")
	}
	if stats.TotalRetries() == 0 {
		t.Errorf("30%% failure probability produced no retries: %+v", stats.Jobs[0])
	}
	var fails int
	for _, js := range stats.Jobs {
		if js.TotalTime() <= 0 {
			t.Errorf("job %s: non-positive total time", js.Name)
		}
		for _, a := range js.Attempts {
			if a.Outcome == OutcomeFailed {
				fails++
			}
			if a.Dur < 0 {
				t.Errorf("job %s: negative attempt duration %+v", js.Name, a)
			}
		}
	}
	if fails != stats.TotalRetries() {
		// Every failed attempt relaunches exactly once (no node deaths here).
		t.Errorf("failed attempts %d != retries %d", fails, stats.TotalRetries())
	}
}

func TestNodeFailureRecomputesAndPreservesOutput(t *testing.T) {
	_, want := runFaultChain(t, testFaultCluster(), nil)

	faulty := testFaultCluster()
	// Startup is 12s and map waves run ~1.5s each, so 13.6s lands inside the
	// first job's map phase: node 0 dies with completed wave-1 output and
	// in-flight wave-2 attempts.
	faulty.Faults = &FaultPlan{Seed: 5, NodeFailures: []NodeFailure{{Node: 0, At: 13.6}}}
	collector := obs.NewCollector()
	stats, got := runFaultChain(t, faulty, collector)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("output under a node failure differs from fault-free run")
	}
	js := stats.Jobs[0]
	if js.NodeFailures != 1 {
		t.Errorf("job 1 node failures = %d, want 1", js.NodeFailures)
	}
	if js.RecomputedMapTasks == 0 && js.MapTaskRetries == 0 {
		t.Errorf("node death caused no recovery: %+v", js)
	}
	var deadNodeLate, faultInstants int
	for _, a := range js.Attempts {
		if a.Node == 0 && a.Start >= 13.6 {
			deadNodeLate++
		}
	}
	if deadNodeLate > 0 {
		t.Errorf("%d attempts scheduled on node 0 after its death", deadNodeLate)
	}
	for _, ev := range collector.Events() {
		if ev.Cat == "fault" && ev.Name == "node-failure" {
			faultInstants++
		}
	}
	if faultInstants == 0 {
		t.Errorf("trace has no node-failure instant")
	}
}

func TestSpeculationRacesStragglers(t *testing.T) {
	_, want := runFaultChain(t, testFaultCluster(), nil)

	faulty := testFaultCluster()
	faulty.Faults = &FaultPlan{Seed: 3, StragglerProb: 0.4, StragglerFactor: 8}
	faulty.Speculation = Speculation{Enabled: true}
	stats, got := runFaultChain(t, faulty, nil)

	if !reflect.DeepEqual(want, got) {
		t.Errorf("output under speculation differs from fault-free run")
	}
	var spec, wins, killed int
	for _, js := range stats.Jobs {
		spec += js.SpeculativeTasks
		wins += js.SpeculativeWins
		for _, a := range js.Attempts {
			if a.Outcome == OutcomeKilled {
				killed++
			}
		}
	}
	if spec == 0 {
		t.Fatalf("40%% stragglers at 8x with speculation on launched no backups")
	}
	if wins > spec {
		t.Errorf("speculative wins %d > launches %d", wins, spec)
	}
	// Every race has exactly one loser: a killed original per win, a killed
	// backup per loss (unless the backup failed or was node-lost first).
	if wins > 0 && killed == 0 {
		t.Errorf("%d speculative wins but no killed attempts", wins)
	}

	// With the same faults but speculation off, stragglers run to completion.
	off := testFaultCluster()
	off.Faults = &FaultPlan{Seed: 3, StragglerProb: 0.4, StragglerFactor: 8}
	offStats, offOut := runFaultChain(t, off, nil)
	if !reflect.DeepEqual(want, offOut) {
		t.Errorf("output with speculation off differs from fault-free run")
	}
	if offStats.TotalSpeculative() != 0 {
		t.Errorf("speculation disabled but %d backups launched", offStats.TotalSpeculative())
	}
}

func TestFaultReplayIsDeterministic(t *testing.T) {
	mk := func() *Cluster {
		c := testFaultCluster()
		c.Faults = &FaultPlan{
			Seed:            9,
			TaskFailureProb: 0.2,
			StragglerProb:   0.2,
			NodeFailures:    []NodeFailure{{Node: 2, At: 14}},
		}
		c.Speculation = Speculation{Enabled: true}
		return c
	}
	c1 := obs.NewCollector()
	s1, o1 := runFaultChain(t, mk(), c1)
	c2 := obs.NewCollector()
	s2, o2 := runFaultChain(t, mk(), c2)

	if !reflect.DeepEqual(s1.Jobs, s2.Jobs) {
		t.Errorf("same seed produced different JobStats")
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Errorf("same seed produced different output")
	}
	t1, t2 := obs.ChromeTrace(c1.Events()), obs.ChromeTrace(c2.Events())
	if string(t1) != string(t2) {
		t.Errorf("same seed produced different trace bytes")
	}
}

// TestSeedSweepReplayAcrossWorkers replays five distinct fault scenarios
// at one and four workers each: every seed must yield identical per-job
// stats (including the full per-attempt log), output and trace bytes at
// both worker counts. This is the fault-path half of the parallelism
// proof — retries, recomputation and speculation all take the concurrent
// re-execution paths.
func TestSeedSweepReplayAcrossWorkers(t *testing.T) {
	run := func(seed int64, workers int) (*ChainStats, []string, []byte) {
		c := testFaultCluster()
		c.Faults = &FaultPlan{Seed: seed, TaskFailureProb: 0.25, StragglerProb: 0.15, StragglerFactor: 5}
		c.Speculation = Speculation{Enabled: true}
		dfs := NewDFS()
		dfs.Write("in", faultTestLines())
		e, err := NewEngine(dfs, c)
		if err != nil {
			t.Fatal(err)
		}
		e.SetWorkers(workers)
		col := obs.NewCollector()
		e.Instrument(col, nil)
		stats, err := e.RunChain(chainJobs())
		if err != nil {
			t.Fatal(err)
		}
		out, err := dfs.Read("p")
		if err != nil {
			t.Fatal(err)
		}
		return stats, out, obs.ChromeTrace(col.Events())
	}

	var retries, backups int
	for seed := int64(1); seed <= 5; seed++ {
		base, baseOut, baseTrace := run(seed, 1)
		retries += base.TotalRetries()
		backups += base.TotalSpeculative()
		got, gotOut, gotTrace := run(seed, 4)
		for i := range base.Jobs {
			if !reflect.DeepEqual(base.Jobs[i].Attempts, got.Jobs[i].Attempts) {
				t.Errorf("seed %d: job %d attempt log differs between 1 and 4 workers", seed, i)
			}
		}
		if !reflect.DeepEqual(base.Jobs, got.Jobs) {
			t.Errorf("seed %d: JobStats differ between 1 and 4 workers", seed)
		}
		if !reflect.DeepEqual(baseOut, gotOut) {
			t.Errorf("seed %d: output differs between 1 and 4 workers", seed)
		}
		if !reflect.DeepEqual(baseTrace, gotTrace) {
			t.Errorf("seed %d: trace bytes differ between 1 and 4 workers", seed)
		}
	}
	// The sweep must actually exercise the recovery paths it claims to prove.
	if retries == 0 {
		t.Errorf("no seed in the sweep produced a retry")
	}
	if backups == 0 {
		t.Errorf("no seed in the sweep produced a speculative backup")
	}
}

func TestTracedIdenticalToUntracedUnderFaults(t *testing.T) {
	mk := func() *Cluster {
		c := testFaultCluster()
		c.Faults = &FaultPlan{Seed: 11, TaskFailureProb: 0.25, NodeFailures: []NodeFailure{{Node: 1, At: 15}}}
		return c
	}
	plain, plainOut := runFaultChain(t, mk(), nil)
	collector := obs.NewCollector()
	traced, tracedOut := runFaultChain(t, mk(), collector)

	if !reflect.DeepEqual(plain.Jobs, traced.Jobs) {
		t.Errorf("tracing changed fault-injected JobStats")
	}
	if !reflect.DeepEqual(plainOut, tracedOut) {
		t.Errorf("tracing changed fault-injected output")
	}
	var retrySpans int
	for _, ev := range collector.Events() {
		if ev.Cat == "retry" {
			retrySpans++
		}
	}
	if plain.TotalRetries() > 0 && retrySpans == 0 {
		t.Errorf("%d retries but no retry spans in trace", plain.TotalRetries())
	}
}

func TestFaultValidation(t *testing.T) {
	c := testFaultCluster()
	c.TaskFailureRate = 0.1
	c.Faults = &FaultPlan{Seed: 1, TaskFailureProb: 0.1}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("TaskFailureRate+Faults err = %v, want mutually exclusive", err)
	}

	cases := []FaultPlan{
		{TaskFailureProb: 1},
		{TaskFailureProb: -0.1},
		{StragglerProb: 1.5},
		{StragglerFactor: 0.5},
		{MaxAttempts: -1},
		{NodeFailures: []NodeFailure{{Node: 99, At: 1}}},
		{NodeFailures: []NodeFailure{{Node: 0, At: -3}}},
	}
	for i, plan := range cases {
		c := testFaultCluster()
		p := plan
		c.Faults = &p
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: plan %+v validated, want error", i, plan)
		}
	}

	ok := testFaultCluster()
	ok.Faults = &FaultPlan{Seed: 7, TaskFailureProb: 0.5, StragglerProb: 0.3, StragglerFactor: 2,
		MaxAttempts: 3, NodeFailures: []NodeFailure{{Node: 3, At: 100}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestDeprecatedRateStillWorksWithoutPlan(t *testing.T) {
	c := testFaultCluster()
	c.TaskFailureRate = 0.5
	if err := c.Validate(); err != nil {
		t.Fatalf("rate without plan rejected: %v", err)
	}
	if got := c.reworkFactor(); got != 2 {
		t.Errorf("reworkFactor = %v, want 2", got)
	}
	// Attaching any plan disables the analytic inflation.
	c.TaskFailureRate = 0
	c.Faults = &FaultPlan{Seed: 1, TaskFailureProb: 0.5}
	if got := c.reworkFactor(); got != 1 {
		t.Errorf("reworkFactor with plan = %v, want 1", got)
	}
}

func TestParseFaultSpec(t *testing.T) {
	p, err := ParseFaultSpec("task=0.1,straggler=0.05x6,node=2@500,node=1@30,attempts=3")
	if err != nil {
		t.Fatal(err)
	}
	want := &FaultPlan{
		TaskFailureProb: 0.1,
		StragglerProb:   0.05,
		StragglerFactor: 6,
		MaxAttempts:     3,
		NodeFailures:    []NodeFailure{{Node: 1, At: 30}, {Node: 2, At: 500}},
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("ParseFaultSpec = %+v, want %+v", p, want)
	}

	if p, err := ParseFaultSpec("straggler=0.2"); err != nil || p.StragglerProb != 0.2 || p.StragglerFactor != 0 {
		t.Errorf("factor-less straggler = %+v, %v", p, err)
	}
	if p, err := ParseFaultSpec(""); err != nil || !p.IsZero() {
		t.Errorf("empty spec = %+v, %v; want zero plan", p, err)
	}

	for _, bad := range []string{"bogus=1", "task", "task=x", "node=1", "node=a@3", "node=1@x", "straggler=0.1xq", "attempts=two"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q parsed, want error", bad)
		}
	}
}

func TestFaultPlanRollProperties(t *testing.T) {
	p := &FaultPlan{Seed: 1}
	a := p.roll("fail", "j1", "map", 3, 0)
	if b := p.roll("fail", "j1", "map", 3, 0); a != b {
		t.Errorf("roll not deterministic: %v vs %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Errorf("roll out of [0,1): %v", a)
	}
	if b := p.roll("fail", "j1", "map", 3, 1); a == b {
		t.Errorf("different attempt produced identical roll")
	}
	q := &FaultPlan{Seed: 2}
	if b := q.roll("fail", "j1", "map", 3, 0); a == b {
		t.Errorf("different seed produced identical roll")
	}
}

func TestMapOnlyJobUnderFaults(t *testing.T) {
	mk := func(c *Cluster) []string {
		dfs := NewDFS()
		dfs.Write("in", faultTestLines())
		e, err := NewEngine(dfs, c)
		if err != nil {
			t.Fatal(err)
		}
		job := &Job{
			Name: "filter",
			Inputs: []Input{{
				Path: "in",
				Mapper: MapperFunc(func(line string, emit Emit) error {
					if strings.Contains(line, "alpha") {
						emit("", line)
					}
					return nil
				}),
			}},
			Output: "out",
		}
		if _, err := e.RunJob(job); err != nil {
			t.Fatal(err)
		}
		out, err := dfs.Read("out")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := mk(testFaultCluster())
	faulty := testFaultCluster()
	faulty.Faults = &FaultPlan{Seed: 2, TaskFailureProb: 0.3, NodeFailures: []NodeFailure{{Node: 0, At: 13}}}
	got := mk(faulty)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("map-only output under faults differs from fault-free run")
	}
}
