// Package mapreduce implements a deterministic single-process MapReduce
// engine modelled on Hadoop circa 2010 (the substrate of the YSmart paper).
// Real records flow through user map and reduce functions, and the engine
// accounts every byte read, written, shuffled and materialized exactly the
// way Hadoop charges them: map input from the DFS, sorted map output
// spilled to local disk, shuffle over the network, reduce output written
// back to the DFS with replication. A cluster cost model converts those
// counters into simulated wall-clock seconds, which is what the experiment
// harnesses report.
//
// The engine is deterministic: results, stats and traces are reproducible
// byte-for-byte. Simulated parallelism enters through the cost model
// (nodes × slots); host parallelism enters through the engine's worker
// pool (Engine.SetWorkers), which executes tasks concurrently but gathers
// every result in task order so the two notions never interact.
package mapreduce

import "fmt"

// Emit receives one output record from a mapper (key/value) or, with an
// empty key, from a reducer (line).
type Emit func(key, value string)

// Mapper transforms one input record into zero or more key/value pairs.
// Map tasks execute concurrently on the engine's worker pool, so Map must
// be safe for concurrent calls with distinct emit functions — in practice
// mappers are stateless closures over pure decode/filter/project logic,
// exactly as Hadoop mappers are instantiated per task.
type Mapper interface {
	Map(line string, emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(line string, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(line string, emit Emit) error { return f(line, emit) }

// Reducer processes all values of one key and emits output lines (the key
// argument of emit is ignored for reducer output).
type Reducer interface {
	Reduce(key string, values []string, emit func(line string)) error
}

// ConcurrentReducer marks a Reducer whose Reduce method is safe to call
// from several goroutines at once. The engine then runs key groups
// concurrently on its worker pool, each group emitting into a private
// buffer that is reassembled in sorted-key order — output is byte-identical
// to the sequential path. Reducers without the marker always run
// sequentially over sorted keys, because interleaved calls would make any
// internal state they keep (and therefore their output and reported
// counters) depend on host scheduling.
type ConcurrentReducer interface {
	Reducer
	// ConcurrentReduce is a marker method; implementations are empty.
	ConcurrentReduce()
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values []string, emit func(line string)) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values []string, emit func(line string)) error {
	return f(key, values, emit)
}

// ReduceWorkReporter is optionally implemented by reducers that process
// each input value more than once (e.g. a common reducer dispatching values
// through several merged operators). ReduceWork returns the cumulative
// number of row-processings; the engine charges reduce CPU on the delta
// observed across a job instead of the raw input record count.
type ReduceWorkReporter interface {
	ReduceWork() int64
}

// OpDispatch counts the rows one merged operator consumed and produced
// inside a common reducer — the per-merged-reducer dispatch accounting the
// observability layer reports per job.
type OpDispatch struct {
	Op      string
	InRows  int64
	OutRows int64
}

// DispatchReporter is optionally implemented by reducers that route each
// key group through a graph of merged operators (the CMF common reducer).
// DispatchCounts returns cumulative per-operator row counts sorted by
// operator name; the engine records the delta observed across a job in
// JobStats.Dispatch.
type DispatchReporter interface {
	DispatchCounts() []OpDispatch
}

// Combiner optionally folds a key's map-side values before the shuffle —
// Hive's map-phase hash aggregation (paper §I footnote 2) is modelled this
// way. It must be algebraically compatible with the job's reducer. Like
// Map, Combine runs inside concurrent map tasks and must be safe for
// concurrent calls.
type Combiner interface {
	Combine(key string, values []string) ([]string, error)
}

// CombinerFunc adapts a function to the Combiner interface.
type CombinerFunc func(key string, values []string) ([]string, error)

// Combine implements Combiner.
func (f CombinerFunc) Combine(key string, values []string) ([]string, error) {
	return f(key, values)
}

// Input is one map-side input of a job: a DFS path processed by a mapper.
// A job with several inputs models Hadoop's MultipleInputs (used by reduce-
// side joins, where each table has its own tagging mapper).
type Input struct {
	Path   string
	Mapper Mapper
	// Prefilter, when non-nil, is an early filter consulted once per input
	// line before the mapper runs: lines for which it returns false are
	// skipped entirely and counted in JobStats.MapRecordsFiltered. An
	// installer must guarantee the mapper would have produced no output and
	// no error for every skipped line (the optanalysis rewriter only injects
	// predicates it can discharge statically), so filtered and unfiltered
	// runs stay byte-identical. Skipped lines still count as map input —
	// the scan reads them — but the cost model charges them only
	// CostModel.PrefilterCPUFactor of the per-record map CPU.
	Prefilter func(line string) bool
}

// Job describes one MapReduce job.
type Job struct {
	// Name labels the job in stats and explain output (e.g. "Job1[AGG1]").
	Name string
	// Inputs are the map-side inputs. At least one is required.
	Inputs []Input
	// Reducer processes grouped map output. A nil Reducer makes the job
	// map-only: map output values are written directly to Output.
	Reducer Reducer
	// Combiner, when non-nil, folds map output per map task before the
	// shuffle.
	Combiner Combiner
	// Output is the DFS path the job writes.
	Output string
	// NumReduceTasks overrides the cluster default when > 0. Sort jobs set
	// it to 1 for a total order.
	NumReduceTasks int
	// DependsOn lists jobs that must complete before this one starts.
	DependsOn []*Job
}

// Validate checks the job is runnable.
func (j *Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("job has no name")
	}
	if len(j.Inputs) == 0 {
		return fmt.Errorf("job %s has no inputs", j.Name)
	}
	for i, in := range j.Inputs {
		if in.Path == "" {
			return fmt.Errorf("job %s input %d has no path", j.Name, i)
		}
		if in.Mapper == nil {
			return fmt.Errorf("job %s input %d has no mapper", j.Name, i)
		}
	}
	if j.Output == "" {
		return fmt.Errorf("job %s has no output path", j.Name)
	}
	if j.NumReduceTasks < 0 {
		return fmt.Errorf("job %s has negative reduce tasks", j.Name)
	}
	return nil
}
