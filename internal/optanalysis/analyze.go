// Package optanalysis is a MANIMAL-style static optimizer for
// hand-written MapReduce programs (Jahani, Cafarella & Ré: analyze the
// user's compiled map/reduce code, recover the relational operations it
// hides, and exploit them without changing its semantics). The YSmart
// paper treats hand-coded jobs as the efficiency ceiling; this package
// closes part of the gap from the other side, for the naive programs
// people actually write.
//
// The analyzer loads the module's source through internal/lint, finds
// every mapreduce.Job composite literal, and infers three kinds of facts:
//
//   - selection predicates the mapper evaluates on decoded fields before
//     its first emit — comparisons against constants, reachable through
//     single-return helper functions via the call graph;
//   - selection predicates the reducer evaluates per value inside its
//     range-over-values loop (guards that `continue`);
//   - per-job live-column sets: which schema columns the reduce function
//     actually reads from the map value.
//
// Each fact funds a rewrite applied at run time, matched to jobs by their
// literal name:
//
//   - early-filter: a raw-line Input.Prefilter that skips lines the
//     mapper's own guard would drop, before the mapper runs;
//   - reducer-pushdown: map-output pairs the reducer's guard would skip
//     are dropped at the map side;
//   - projection-trim: dead value columns are rewritten to NULL, so the
//     shuffle never carries bytes nobody reads.
//
// Everything unprovable is refused with a recorded reason: non-literal
// job names, schemas that do not resolve to a catalog table, rows or
// values that escape to unanalyzed code, emits outside the value loop,
// combiners (which read the map values the rewrites would change). The
// rewrites mirror the Go semantics of the analyzed source — a NULL
// field's zero-valued accessor compares exactly as the user's code would
// — so results stay byte-identical by construction.
package optanalysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ysmart/internal/exec"
	"ysmart/internal/lint"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
)

// Rewrite kinds and refusal scopes.
const (
	KindEarlyFilter = "early-filter"
	KindPushdown    = "reducer-pushdown"
	KindTrim        = "projection-trim"
	KindJob         = "job"
)

// maxHelperDepth bounds guard discharge through helper calls.
const maxHelperDepth = 4

// Analyze loads the packages matched by patterns (lint.Load semantics:
// "./..." or explicit directories, resolved relative to dir) and returns
// the optimization report for every mapreduce.Job literal found.
func Analyze(dir string, patterns []string) (*Report, error) {
	prog, targets, err := lint.Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	an := &analyzer{prog: prog}
	rep := &Report{}
	for _, t := range targets {
		for _, file := range t.Pkg.Files {
			pkg := t.Pkg
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok || !an.isJobLit(pkg, lit) {
					return true
				}
				rep.Jobs = append(rep.Jobs, an.analyzeJob(pkg, lit))
				return false
			})
		}
	}
	sort.Slice(rep.Jobs, func(i, k int) bool {
		a, b := rep.Jobs[i], rep.Jobs[k]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Pos < b.Pos
	})
	return rep, nil
}

// analyzer carries the loaded program through one Analyze call.
type analyzer struct {
	prog *lint.Program
}

// posOf renders a file:line position.
func (an *analyzer) posOf(p token.Pos) string {
	pos := an.prog.Fset.Position(p)
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

// isJobLit reports whether the composite literal builds a mapreduce.Job.
func (an *analyzer) isJobLit(pkg *lint.Package, lit *ast.CompositeLit) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Job" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/mapreduce")
}

// litField returns the value of a named field in a composite literal.
func litField(lit *ast.CompositeLit, name string) ast.Expr {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return kv.Value
		}
	}
	return nil
}

// analyzeJob derives the report entry for one Job literal.
func (an *analyzer) analyzeJob(pkg *lint.Package, lit *ast.CompositeLit) *JobReport {
	jr := &JobReport{Pos: an.posOf(lit.Pos())}

	nameExpr := litField(lit, "Name")
	if nameExpr == nil {
		jr.refuse(KindJob, -1, "job literal has no Name field", jr.Pos)
		return jr
	}
	tv := pkg.Info.Types[nameExpr]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		jr.refuse(KindJob, -1,
			"job name is not a constant: the rewriter matches source jobs to runtime jobs by name",
			an.posOf(nameExpr.Pos()))
		return jr
	}
	jr.Name = constant.StringVal(tv.Value)

	hasCombiner := litField(lit, "Combiner") != nil

	// Reducer facts first: they gate the per-input value rewrites.
	rf := an.analyzeReducer(pkg, lit)

	inputsExpr, ok := litField(lit, "Inputs").(*ast.CompositeLit)
	if !ok {
		jr.refuse(KindJob, -1, "Inputs is not a slice literal; input order cannot be matched to the runtime job", jr.Pos)
		return jr
	}
	for idx, el := range inputsExpr.Elts {
		inLit, ok := el.(*ast.CompositeLit)
		if !ok {
			jr.refuse(KindJob, idx, "input is not a composite literal", an.posOf(el.Pos()))
			continue
		}
		mf := an.analyzeInput(pkg, inLit)
		an.assemble(jr, idx, mf, rf, hasCombiner)
	}
	return jr
}

// assemble turns the facts of one input (plus the job's reducer facts)
// into rewrites and refusals.
func (an *analyzer) assemble(jr *JobReport, idx int, mf mapperFacts, rf reducerFacts, hasCombiner bool) {
	if mf.refusal != "" {
		jr.refuse(KindJob, idx, mf.refusal, mf.pos)
		return
	}

	// Early filter: the mapper's own leading guard, hoisted to the scan.
	if mf.guard != nil {
		schema, keep := mf.schema, mf.guard
		jr.Rewrites = append(jr.Rewrites, &Rewrite{
			Job:       jr.Name,
			Input:     idx,
			Kind:      KindEarlyFilter,
			Table:     mf.table,
			Predicate: keep.render(schema),
			Path:      strings.Join(keep.path, " -> "),
			prefilter: func(line string) bool {
				r, err := exec.DecodeRow(line, schema)
				if err != nil {
					return true // the mapper must surface the error
				}
				return keep.eval(r)
			},
		})
	} else {
		jr.refuse(KindEarlyFilter, idx, mf.guardRefusal, mf.pos)
	}

	// Value rewrites need the reducer's whole read-set bounded, the map
	// value to be the re-encoded input row, and no combiner in between.
	switch {
	case hasCombiner:
		jr.refuse(KindPushdown, idx, "job has a combiner, which reads the map values the rewrite would change", mf.pos)
		jr.refuse(KindTrim, idx, "job has a combiner, which reads the map values the rewrite would change", mf.pos)
		return
	case !mf.emitsRow:
		jr.refuse(KindPushdown, idx, mf.emitRefusal, mf.pos)
		jr.refuse(KindTrim, idx, mf.emitRefusal, mf.pos)
		return
	case rf.refusal != "":
		jr.refuse(KindPushdown, idx, rf.refusal, rf.pos)
		jr.refuse(KindTrim, idx, rf.refusal, rf.pos)
		return
	case rf.table != "" && rf.table != mf.table:
		reason := fmt.Sprintf("reducer decodes values with the %s schema but this input scans %s", rf.table, mf.table)
		jr.refuse(KindPushdown, idx, reason, mf.pos)
		jr.refuse(KindTrim, idx, reason, mf.pos)
		return
	}

	if rf.guard != nil {
		schema, keep := mf.schema, rf.guard
		jr.Rewrites = append(jr.Rewrites, &Rewrite{
			Job:       jr.Name,
			Input:     idx,
			Kind:      KindPushdown,
			Table:     mf.table,
			Predicate: keep.render(schema),
			schema:    schema,
			guard:     keep,
		})
	} else {
		jr.refuse(KindPushdown, idx, rf.guardRefusal, rf.pos)
	}

	var dead []int
	var deadNames []string
	for c := 0; c < mf.schema.Len(); c++ {
		if !rf.live[c] {
			dead = append(dead, c)
			deadNames = append(deadNames, mf.schema.Cols[c].Name)
		}
	}
	if len(dead) > 0 {
		jr.Rewrites = append(jr.Rewrites, &Rewrite{
			Job:     jr.Name,
			Input:   idx,
			Kind:    KindTrim,
			Table:   mf.table,
			Columns: deadNames,
			schema:  mf.schema,
			dead:    dead,
		})
	} else {
		jr.refuse(KindTrim, idx, "the reducer reads every column of the map value", rf.pos)
	}
}

// ---------------------------------------------------------------------------
// Mapper analysis
// ---------------------------------------------------------------------------

// mapperFacts is what the analyzer proved about one input's map function.
type mapperFacts struct {
	table  string
	schema *exec.Schema
	// guard is the conjunction a line must satisfy to survive the
	// mapper's leading early-returns (nil with guardRefusal otherwise).
	guard        *pred
	guardRefusal string
	// emitsRow reports that every emit's value is exec.EncodeRow of the
	// decoded row (emitRefusal otherwise).
	emitsRow    bool
	emitRefusal string
	// refusal, when set, blocks every rewrite for the input.
	refusal string
	pos     string
}

// funcOf resolves an expression like mapreduce.MapperFunc(f) — where f is
// a func literal or a reference to a declared function — to the function
// body plus the defining package and parameter objects.
func (an *analyzer) funcOf(pkg *lint.Package, e ast.Expr) (*lint.Package, *ast.FuncType, *ast.BlockStmt) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if ok && len(call.Args) == 1 {
		// The MapperFunc/ReducerFunc conversion wrapper.
		e = call.Args[0]
	}
	switch f := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return pkg, f.Type, f.Body
	case *ast.Ident:
		fn, ok := pkg.Info.Uses[f].(*types.Func)
		if !ok {
			return nil, nil, nil
		}
		d, ok := an.prog.CallGraph().Decls[fn]
		if !ok || d.Decl.Body == nil {
			return nil, nil, nil
		}
		return d.Pkg, d.Decl.Type, d.Decl.Body
	}
	return nil, nil, nil
}

// paramVar returns the types.Var of the i-th parameter.
func paramVar(pkg *lint.Package, ft *ast.FuncType, i int) *types.Var {
	n := 0
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if n == i {
				v, _ := pkg.Info.Defs[name].(*types.Var)
				return v
			}
			n++
		}
	}
	return nil
}

// analyzeInput derives mapper facts from one Inputs element literal.
func (an *analyzer) analyzeInput(pkg *lint.Package, inLit *ast.CompositeLit) mapperFacts {
	mf := mapperFacts{pos: an.posOf(inLit.Pos())}
	mapperExpr := litField(inLit, "Mapper")
	if mapperExpr == nil {
		mf.refusal = "input has no Mapper field"
		return mf
	}
	fpkg, ftype, body := an.funcOf(pkg, mapperExpr)
	if body == nil {
		mf.refusal = "mapper is not a func literal or in-module function"
		return mf
	}
	lineVar, emitVar := paramVar(fpkg, ftype, 0), paramVar(fpkg, ftype, 1)
	if lineVar == nil || emitVar == nil {
		mf.refusal = "mapper does not name its line and emit parameters"
		return mf
	}
	mf.pos = an.posOf(body.Pos())

	stmts := body.List
	rowVar, table, ok := an.parseDecode(fpkg, stmts, lineVar)
	if !ok {
		mf.refusal = "mapper does not start with `row, err := exec.DecodeRow(line, <schema>)` plus the err check"
		return mf
	}
	schema, okT := queries.Catalog().Table(table)
	if !okT {
		mf.refusal = fmt.Sprintf("decode schema resolves to %q, which is not a catalog table", table)
		return mf
	}
	mf.table, mf.schema = table, schema

	// Leading guards: `if <cond> { return nil }` runs dropping lines
	// before anything can emit, so the negated conjunction is a sound
	// prefilter.
	idx := 2
	for idx < len(stmts) {
		ifs, ok := stmts[idx].(*ast.IfStmt)
		if !ok || ifs.Else != nil || ifs.Init != nil || !isReturnNil(ifs.Body) {
			break
		}
		p, err := an.guardPred(fpkg, ifs.Cond, rowVar, false, 0, nil)
		if err != nil {
			mf.guardRefusal = fmt.Sprintf("guard at %s: %v", an.posOf(ifs.Pos()), err)
			mf.guard = nil
			break
		}
		mf.guard = mf.guard.and(p)
		idx++
	}
	if mf.guard == nil && mf.guardRefusal == "" {
		mf.guardRefusal = "mapper has no leading constant-comparison guard after the decode err check"
	}

	// Emit shape: every emit's value must be the re-encoded decoded row
	// for the value rewrites to know what the reducer receives.
	emits := 0
	badEmit := ""
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fpkg.Info.Uses[id] != emitVar {
			return true
		}
		emits++
		if len(call.Args) != 2 || !an.isEncodeRowOf(fpkg, call.Args[1], rowVar) {
			badEmit = an.posOf(call.Pos())
		}
		return true
	})
	switch {
	case emits == 0:
		mf.emitRefusal = "mapper never calls emit directly; the map value shape is unknown"
	case badEmit != "":
		mf.emitRefusal = fmt.Sprintf("map value at %s is not exec.EncodeRow of the decoded row", badEmit)
	default:
		mf.emitsRow = true
	}
	return mf
}

// parseDecode matches the two-statement decode idiom and resolves the
// schema argument to a catalog table name.
func (an *analyzer) parseDecode(pkg *lint.Package, stmts []ast.Stmt, lineVar *types.Var) (rowVar *types.Var, table string, ok bool) {
	if len(stmts) < 2 {
		return nil, "", false
	}
	as, ok2 := stmts[0].(*ast.AssignStmt)
	if !ok2 || as.Tok != token.DEFINE || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil, "", false
	}
	call, ok2 := as.Rhs[0].(*ast.CallExpr)
	if !ok2 || len(call.Args) != 2 || !isPkgFunc(pkg, call.Fun, "exec", "DecodeRow") {
		return nil, "", false
	}
	if id, ok2 := ast.Unparen(call.Args[0]).(*ast.Ident); !ok2 || pkg.Info.Uses[id] != lineVar {
		return nil, "", false
	}
	table, ok2 = an.tableOf(pkg, call.Args[1])
	if !ok2 {
		return nil, "", false
	}
	rowID, ok2 := as.Lhs[0].(*ast.Ident)
	if !ok2 {
		return nil, "", false
	}
	rowVar, _ = pkg.Info.Defs[rowID].(*types.Var)
	errID, ok2 := as.Lhs[1].(*ast.Ident)
	if rowVar == nil || !ok2 {
		return nil, "", false
	}
	errVar, _ := pkg.Info.Defs[errID].(*types.Var)

	// `if err != nil { return err }`
	ifs, ok2 := stmts[1].(*ast.IfStmt)
	if !ok2 || ifs.Else != nil || len(ifs.Body.List) != 1 {
		return nil, "", false
	}
	cond, ok2 := ifs.Cond.(*ast.BinaryExpr)
	if !ok2 || cond.Op != token.NEQ {
		return nil, "", false
	}
	condID, ok2 := ast.Unparen(cond.X).(*ast.Ident)
	if !ok2 || errVar == nil || pkg.Info.Uses[condID] != errVar {
		return nil, "", false
	}
	if _, ok2 := ifs.Body.List[0].(*ast.ReturnStmt); !ok2 {
		return nil, "", false
	}
	return rowVar, table, true
}

// tableOf resolves a schema expression — a package-level var initialized
// from a one-string-argument call (mustSchema("clicks")), or such a call
// inline — to the table-name string literal.
func (an *analyzer) tableOf(pkg *lint.Package, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return "", false
		}
		init := an.varInit(v)
		if init == nil {
			return "", false
		}
		e = init
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	// The constant value is recorded in whichever package declares the
	// initializer; a string constant folds identically everywhere.
	for _, p := range an.prog.Pkgs {
		if tv, ok := p.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return constant.StringVal(tv.Value), true
		}
	}
	return "", false
}

// varInit finds the initializer expression of a package-level var.
func (an *analyzer) varInit(v *types.Var) ast.Expr {
	if v.Pkg() == nil {
		return nil
	}
	pkg := an.prog.Pkgs[v.Pkg().Path()]
	if pkg == nil {
		return nil
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					if pkg.Info.Defs[name] == v {
						return vs.Values[i]
					}
				}
			}
		}
	}
	return nil
}

// isReturnNil matches a block that is exactly `return nil`.
func isReturnNil(b *ast.BlockStmt) bool {
	if len(b.List) != 1 {
		return false
	}
	ret, ok := b.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	id, ok := ret.Results[0].(*ast.Ident)
	return ok && id.Name == "nil"
}

// isPkgFunc reports whether the call operator is the named function of
// the named package (matched by package name, resolved by types).
func isPkgFunc(pkg *lint.Package, fun ast.Expr, pkgName, fnName string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == fnName && fn.Pkg() != nil && fn.Pkg().Name() == pkgName
}

// isEncodeRowOf matches exec.EncodeRow(row) for the tracked row var.
func (an *analyzer) isEncodeRowOf(pkg *lint.Package, e ast.Expr, rowVar *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || !isPkgFunc(pkg, call.Fun, "exec", "EncodeRow") {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && pkg.Info.Uses[id] == rowVar
}

// ---------------------------------------------------------------------------
// Reducer analysis
// ---------------------------------------------------------------------------

// reducerFacts is what the analyzer proved about a job's reduce function.
type reducerFacts struct {
	// refusal, when set, blocks pushdown and trim for the whole job: the
	// reducer's reads could not be bounded.
	refusal string
	// table is the schema the reducer decodes values with ("" when it
	// never decodes them — e.g. a pure len(values) count).
	table string
	// live is the set of value columns the reducer reads.
	live map[int]bool
	// guard is the per-value keep-predicate eligible for pushdown (nil
	// with guardRefusal otherwise).
	guard        *pred
	guardRefusal string
	pos          string
}

// analyzeReducer derives reducer facts from the Job literal's Reducer
// field.
func (an *analyzer) analyzeReducer(pkg *lint.Package, jobLit *ast.CompositeLit) reducerFacts {
	rf := reducerFacts{live: map[int]bool{}, pos: an.posOf(jobLit.Pos())}
	redExpr := litField(jobLit, "Reducer")
	if redExpr == nil {
		rf.refusal = "job literal has no Reducer field"
		return rf
	}
	fpkg, ftype, body := an.funcOf(pkg, redExpr)
	if body == nil {
		rf.refusal = "reducer is not a func literal or in-module function"
		return rf
	}
	valuesVar, emitVar := paramVar(fpkg, ftype, 1), paramVar(fpkg, ftype, 2)
	if valuesVar == nil || emitVar == nil {
		rf.refusal = "reducer does not name its values and emit parameters"
		return rf
	}
	rf.pos = an.posOf(body.Pos())

	// Bound every use of the values slice: len(values) or one range loop.
	var loop *ast.RangeStmt
	usesLen := false
	bad := ""
	inspectParents(body, func(n ast.Node, parents []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || fpkg.Info.Uses[id] != valuesVar {
			return
		}
		switch p := parent(parents, 0).(type) {
		case *ast.CallExpr:
			if fid, ok := ast.Unparen(p.Fun).(*ast.Ident); ok && fid.Name == "len" {
				usesLen = true
				return
			}
		case *ast.RangeStmt:
			if p.X == n {
				if loop != nil && loop != p {
					bad = fmt.Sprintf("reducer ranges over values more than once (%s)", an.posOf(id.Pos()))
					return
				}
				loop = p
				return
			}
		}
		bad = fmt.Sprintf("values escapes the supported len/range uses at %s", an.posOf(id.Pos()))
	})
	if bad != "" {
		rf.refusal = bad
		return rf
	}

	if loop == nil {
		// A reducer that never looks inside the values reads no columns;
		// pushdown has no guard to hoist.
		rf.guardRefusal = "reducer has no per-value loop, so there is no guard to push down"
		an.checkEmitPlacement(fpkg, body, nil, token.NoPos, emitVar, &rf, usesLen)
		return rf
	}

	vrowVar, table, guardEnd := an.parseValueLoop(fpkg, loop, &rf)
	if rf.refusal != "" {
		return rf
	}
	rf.table = table

	// Live columns: every read of the decoded value row must be an
	// indexed field access.
	if vrowVar != nil {
		inspectParents(body, func(n ast.Node, parents []ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok || fpkg.Info.Uses[id] != vrowVar {
				return
			}
			ix, ok := parent(parents, 0).(*ast.IndexExpr)
			if ok && ix.X == n {
				if tv := fpkg.Info.Types[ix.Index]; tv.Value != nil && tv.Value.Kind() == constant.Int {
					c, _ := constant.Int64Val(tv.Value)
					rf.live[int(c)] = true
					return
				}
			}
			rf.refusal = fmt.Sprintf("decoded value row escapes a constant-indexed read at %s", an.posOf(id.Pos()))
		})
		if rf.refusal != "" {
			return rf
		}
	}

	an.checkEmitPlacement(fpkg, body, loop, guardEnd, emitVar, &rf, usesLen)
	return rf
}

// parseValueLoop matches the loop prefix `vrow, err := exec.DecodeRow(v,
// <schema>); if err != nil { return err }` followed by `if <atom> {
// continue }` guards, filling rf.guard. Returns the decoded row var, its
// table, and the source end of the last guard.
func (an *analyzer) parseValueLoop(pkg *lint.Package, loop *ast.RangeStmt, rf *reducerFacts) (*types.Var, string, token.Pos) {
	vID, ok := loop.Value.(*ast.Ident)
	if !ok {
		rf.guardRefusal = "value loop discards the element, so there is no guard to push down"
		return nil, "", loop.Body.Pos()
	}
	vVar, _ := pkg.Info.Defs[vID].(*types.Var)
	if vVar == nil {
		rf.refusal = "cannot resolve the value loop variable"
		return nil, "", token.NoPos
	}

	stmts := loop.Body.List
	vrowVar, table, okD := an.parseDecode(pkg, stmts, vVar)
	if !okD {
		// The loop does something else with v entirely; any use beyond
		// DecodeRow is an escape.
		esc := ""
		inspectParents(loop.Body, func(n ast.Node, parents []ast.Node) {
			id, okI := n.(*ast.Ident)
			if okI && pkg.Info.Uses[id] == vVar && esc == "" {
				esc = an.posOf(id.Pos())
			}
		})
		if esc != "" {
			rf.refusal = fmt.Sprintf("raw map value is used without the DecodeRow idiom at %s; its reads cannot be bounded", esc)
		} else {
			rf.guardRefusal = "value loop reads no fields, so there is no guard to push down"
		}
		return nil, "", token.NoPos
	}
	// v must feed DecodeRow and nothing else.
	vUses, decodeUse := 0, 1
	inspectParents(loop.Body, func(n ast.Node, parents []ast.Node) {
		if id, okI := n.(*ast.Ident); okI && pkg.Info.Uses[id] == vVar {
			vUses++
		}
	})
	if vUses > decodeUse {
		rf.refusal = "raw map value escapes beyond its DecodeRow; its reads cannot be bounded"
		return nil, "", token.NoPos
	}

	guardEnd := stmts[1].End()
	idx := 2
	for idx < len(stmts) {
		ifs, okI := stmts[idx].(*ast.IfStmt)
		if !okI || ifs.Else != nil || ifs.Init != nil || !isContinue(ifs.Body) {
			break
		}
		p, err := an.guardPred(pkg, ifs.Cond, vrowVar, false, 0, nil)
		if err != nil {
			rf.guardRefusal = fmt.Sprintf("guard at %s: %v", an.posOf(ifs.Pos()), err)
			rf.guard = nil
			return vrowVar, table, guardEnd
		}
		rf.guard = rf.guard.and(p)
		guardEnd = ifs.End()
		idx++
	}
	if rf.guard == nil {
		rf.guardRefusal = "value loop has no leading constant-comparison guard"
	}
	return vrowVar, table, guardEnd
}

// checkEmitPlacement enforces the pushdown placement rule: every emit
// must sit inside the value loop, after the last guard, and the reducer
// must not read len(values) (the pushdown changes it). Violations refuse
// pushdown only — trimming never changes the pair multiset.
func (an *analyzer) checkEmitPlacement(pkg *lint.Package, body *ast.BlockStmt, loop *ast.RangeStmt, guardEnd token.Pos, emitVar *types.Var, rf *reducerFacts, usesLen bool) {
	if rf.guard == nil {
		return
	}
	block := func(reason string) {
		rf.guard = nil
		rf.guardRefusal = reason
	}
	if usesLen {
		block("reducer reads len(values), which dropping pairs would change")
		return
	}
	violation := ""
	inspectParents(body, func(n ast.Node, parents []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || pkg.Info.Uses[id] != emitVar || violation != "" {
			return
		}
		call, ok := parent(parents, 0).(*ast.CallExpr)
		if !ok || call.Fun != ast.Expr(id) {
			violation = fmt.Sprintf("emit escapes as a value at %s", an.posOf(id.Pos()))
			return
		}
		if loop == nil || id.Pos() < loop.Body.Pos() || id.Pos() >= loop.Body.End() {
			violation = fmt.Sprintf("emit at %s is outside the per-value loop; an all-dropped group would lose it", an.posOf(id.Pos()))
			return
		}
		if id.Pos() < guardEnd {
			violation = fmt.Sprintf("emit at %s runs before the guard", an.posOf(id.Pos()))
		}
	})
	if violation != "" {
		block(violation)
	}
}

// isContinue matches a block that is exactly `continue`.
func isContinue(b *ast.BlockStmt) bool {
	if len(b.List) != 1 {
		return false
	}
	br, ok := b.List[0].(*ast.BranchStmt)
	return ok && br.Tok == token.CONTINUE && br.Label == nil
}

// ---------------------------------------------------------------------------
// Guard predicates
// ---------------------------------------------------------------------------

// guardPred converts a boolean expression over the decoded row into the
// conjunction of atoms under which it holds (sense=true) or fails
// (sense=false). Helper calls discharge through single-return in-module
// functions of one row parameter, recorded on the predicate's path.
func (an *analyzer) guardPred(pkg *lint.Package, e ast.Expr, rowVar *types.Var, sense bool, depth int, path []string) (*pred, error) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return an.guardPred(pkg, x.X, rowVar, !sense, depth, path)
		}
	case *ast.BinaryExpr:
		switch {
		case x.Op == token.LAND && sense, x.Op == token.LOR && !sense:
			// sense(a && b) and ¬(a || b) are both conjunctions.
			l, err := an.guardPred(pkg, x.X, rowVar, sense, depth, path)
			if err != nil {
				return nil, err
			}
			r, err := an.guardPred(pkg, x.Y, rowVar, sense, depth, path)
			if err != nil {
				return nil, err
			}
			return l.and(r), nil
		case x.Op == token.LAND, x.Op == token.LOR:
			return nil, fmt.Errorf("the guard needs a disjunction, which the prefilter cannot represent as a conjunction")
		default:
			a, err := an.atomOf(pkg, x, rowVar)
			if err != nil {
				return nil, err
			}
			if !sense {
				a.op = negateOp(a.op)
			}
			return &pred{atoms: []atom{a}, path: path}, nil
		}
	case *ast.CallExpr:
		if depth >= maxHelperDepth {
			return nil, fmt.Errorf("guard helpers nest deeper than %d calls", maxHelperDepth)
		}
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("guard helper takes more than the row")
		}
		if id, ok := ast.Unparen(x.Args[0]).(*ast.Ident); !ok || pkg.Info.Uses[id] != rowVar {
			return nil, fmt.Errorf("guard helper is not applied to the decoded row")
		}
		var fn *types.Func
		switch f := ast.Unparen(x.Fun).(type) {
		case *ast.Ident:
			fn, _ = pkg.Info.Uses[f].(*types.Func)
		case *ast.SelectorExpr:
			fn, _ = pkg.Info.Uses[f.Sel].(*types.Func)
		}
		if fn == nil {
			return nil, fmt.Errorf("guard calls something that is not a declared function")
		}
		d, ok := an.prog.CallGraph().Decls[fn]
		if !ok || d.Decl.Body == nil || len(d.Decl.Body.List) != 1 {
			return nil, fmt.Errorf("guard helper %s is not a single-return in-module function", fn.Name())
		}
		ret, ok := d.Decl.Body.List[0].(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return nil, fmt.Errorf("guard helper %s is not a single-return function", fn.Name())
		}
		hRow := paramVar(d.Pkg, d.Decl.Type, 0)
		if hRow == nil {
			return nil, fmt.Errorf("guard helper %s has no row parameter", fn.Name())
		}
		return an.guardPred(d.Pkg, ret.Results[0], hRow, sense, depth+1, append(path, fn.Name()))
	}
	return nil, fmt.Errorf("guard is not a comparison of a decoded field against a constant")
}

// atomOf lifts `row[C].X OP const` (either operand order) into an atom.
func (an *analyzer) atomOf(pkg *lint.Package, be *ast.BinaryExpr, rowVar *types.Var) (atom, error) {
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
	default:
		return atom{}, fmt.Errorf("guard operator %s is not a comparison", be.Op)
	}
	col, field, ok := fieldAccess(pkg, be.X, rowVar)
	constSide := be.Y
	op := be.Op
	if !ok {
		col, field, ok = fieldAccess(pkg, be.Y, rowVar)
		constSide = be.X
		op = flipOp(op)
		if !ok {
			return atom{}, fmt.Errorf("neither side of the guard reads a decoded field")
		}
	}
	tv := pkg.Info.Types[constSide]
	if tv.Value == nil {
		return atom{}, fmt.Errorf("the guard compares against a non-constant")
	}
	a := atom{col: col, field: field, op: op}
	switch field {
	case "I":
		i, exact := constant.Int64Val(constant.ToInt(tv.Value))
		if !exact {
			return atom{}, fmt.Errorf("guard constant does not fit an int64")
		}
		a.i = i
	case "F":
		f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		a.f = f
	case "S":
		if tv.Value.Kind() != constant.String {
			return atom{}, fmt.Errorf("guard compares a string field against a non-string constant")
		}
		a.s = constant.StringVal(tv.Value)
	}
	return a, nil
}

// fieldAccess matches `row[C].I|F|S` against the tracked row var.
func fieldAccess(pkg *lint.Package, e ast.Expr, rowVar *types.Var) (col int, field string, ok bool) {
	sel, okS := ast.Unparen(e).(*ast.SelectorExpr)
	if !okS {
		return 0, "", false
	}
	switch sel.Sel.Name {
	case "I", "F", "S":
		field = sel.Sel.Name
	default:
		return 0, "", false
	}
	ix, okS := ast.Unparen(sel.X).(*ast.IndexExpr)
	if !okS {
		return 0, "", false
	}
	id, okS := ast.Unparen(ix.X).(*ast.Ident)
	if !okS || pkg.Info.Uses[id] != rowVar {
		return 0, "", false
	}
	tv := pkg.Info.Types[ix.Index]
	if tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, "", false
	}
	c, _ := constant.Int64Val(tv.Value)
	return int(c), field, true
}

// negateOp returns the comparison holding exactly when op fails.
func negateOp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

// flipOp mirrors a comparison across its operands (const OP field →
// field flip(OP) const).
func flipOp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// ---------------------------------------------------------------------------
// AST walking with parent context
// ---------------------------------------------------------------------------

// inspectParents walks the tree depth-first, passing each node's
// ancestor chain (nearest first is parents[len-1]; use parent()).
func inspectParents(root ast.Node, visit func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// parent returns the n-th nearest ancestor (0 = immediate parent).
func parent(parents []ast.Node, n int) ast.Node {
	if len(parents) <= n {
		return nil
	}
	return parents[len(parents)-1-n]
}

// ---------------------------------------------------------------------------
// Predicates
// ---------------------------------------------------------------------------

// atom is one comparison of a decoded field against a constant, in the
// exact Go semantics of the source it was lifted from: the accessor of a
// NULL value reads its zero value, just as the user's code would.
type atom struct {
	col   int
	field string // the accessor the source reads: "I", "F", or "S"
	op    token.Token
	i     int64
	f     float64
	s     string
}

// eval applies the atom to a decoded row.
func (a atom) eval(r exec.Row) bool {
	if a.col < 0 || a.col >= len(r) {
		return true // width mismatch: keep, the user code decides
	}
	switch a.field {
	case "I":
		return cmpOrd(r[a.col].I, a.i, a.op)
	case "F":
		return cmpOrd(r[a.col].F, a.f, a.op)
	case "S":
		return cmpOrd(r[a.col].S, a.s, a.op)
	}
	return true
}

// cmpOrd applies a comparison token to any ordered pair.
func cmpOrd[T int64 | float64 | string](x, y T, op token.Token) bool {
	switch op {
	case token.LSS:
		return x < y
	case token.LEQ:
		return x <= y
	case token.GTR:
		return x > y
	case token.GEQ:
		return x >= y
	case token.EQL:
		return x == y
	case token.NEQ:
		return x != y
	}
	return true
}

// render prints the atom with schema column names.
func (a atom) render(schema *exec.Schema) string {
	name := fmt.Sprintf("col%d", a.col)
	if schema != nil && a.col >= 0 && a.col < schema.Len() {
		name = schema.Cols[a.col].Name
	}
	var val string
	switch a.field {
	case "I":
		val = fmt.Sprintf("%d", a.i)
	case "F":
		val = fmt.Sprintf("%g", a.f)
	case "S":
		val = fmt.Sprintf("%q", a.s)
	}
	return fmt.Sprintf("%s %s %s", name, a.op, val)
}

// pred is a conjunction of atoms plus the helper path that discharged it.
type pred struct {
	atoms []atom
	path  []string
}

// and conjoins two predicates (either may be nil).
func (p *pred) and(o *pred) *pred {
	if p == nil {
		return o
	}
	if o == nil {
		return p
	}
	return &pred{atoms: append(append([]atom{}, p.atoms...), o.atoms...), path: append(append([]string{}, p.path...), o.path...)}
}

// eval reports whether the row satisfies every atom.
func (p *pred) eval(r exec.Row) bool {
	for _, a := range p.atoms {
		if !a.eval(r) {
			return false
		}
	}
	return true
}

// render prints the conjunction with schema column names.
func (p *pred) render(schema *exec.Schema) string {
	parts := make([]string, len(p.atoms))
	for i, a := range p.atoms {
		parts[i] = a.render(schema)
	}
	return strings.Join(parts, " AND ")
}

// Compile-time guard: rewrites hold runtime hooks for these job types.
var _ mapreduce.Mapper = mapreduce.MapperFunc(nil)
