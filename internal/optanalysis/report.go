package optanalysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ysmart/internal/exec"
	"ysmart/internal/translator"
)

// Report is the full result of one Analyze call: every job literal
// found, with the rewrites the analysis could prove and the ones it
// refused.
type Report struct {
	// Jobs lists one entry per mapreduce.Job composite literal, sorted by
	// job name then source position.
	Jobs []*JobReport
}

// JobReport is the analysis result for one Job literal.
type JobReport struct {
	// Name is the job's constant name ("" when the literal's name could
	// not be resolved — see the job-level refusal).
	Name string `json:"name"`
	// Pos is the file:line of the job literal.
	Pos string `json:"pos"`
	// Rewrites are the optimizations the analysis proved sound.
	Rewrites []*Rewrite `json:"rewrites,omitempty"`
	// Refusals are the optimizations it declined, each with the blocking
	// reason.
	Refusals []Refusal `json:"refusals,omitempty"`
}

// refuse records a declined rewrite.
func (jr *JobReport) refuse(kind string, input int, reason, pos string) {
	jr.Refusals = append(jr.Refusals, Refusal{Kind: kind, Input: input, Reason: reason, Pos: pos})
}

// Rewrite is one proven optimization, carrying both the human-readable
// explanation and the unexported runtime hooks Apply installs.
type Rewrite struct {
	// Job and Input locate the rewrite target (input index into
	// Job.Inputs).
	Job   string `json:"job"`
	Input int    `json:"input"`
	// Kind is early-filter, reducer-pushdown, or projection-trim.
	Kind string `json:"kind"`
	// Table is the catalog table whose schema the proof used.
	Table string `json:"table"`
	// Predicate renders the keep-condition (filter kinds only).
	Predicate string `json:"predicate,omitempty"`
	// Columns are the dead columns a trim blanks.
	Columns []string `json:"columns,omitempty"`
	// Path is the helper-call chain that discharged the guard, empty for
	// guards inline in the map function.
	Path string `json:"path,omitempty"`
	// Applied is set by Apply once the rewrite is installed.
	Applied bool `json:"applied"`

	// Runtime hooks, populated by the analyzer and consumed by Apply;
	// excluded from JSON.
	prefilter func(string) bool
	guard     *pred
	schema    *exec.Schema
	dead      []int
}

// Refusal is one declined rewrite with its blocking reason.
type Refusal struct {
	// Kind names the rewrite declined — a rewrite kind, or "job" when
	// the whole literal was out of scope.
	Kind string `json:"kind"`
	// Input is the input index, or -1 for job- and reducer-level reasons.
	Input int `json:"input"`
	// Reason explains exactly what blocked the rewrite.
	Reason string `json:"reason"`
	// Pos is the source position the reason points at.
	Pos string `json:"pos"`
}

// Counts returns how many rewrites and refusals the report holds.
func (r *Report) Counts() (rewrites, refusals int) {
	for _, jr := range r.Jobs {
		rewrites += len(jr.Rewrites)
		refusals += len(jr.Refusals)
	}
	return rewrites, refusals
}

// JSON renders the report as indented JSON (runtime hooks excluded).
func (r *Report) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf("{%q: %q}", "error", err.Error())
	}
	return string(b)
}

// Format renders the report for humans: per job, the applied (or
// applicable) rewrites with predicate, dropped columns and discharge
// path, then every refusal with its reason.
func (r *Report) Format() string {
	var b strings.Builder
	rewrites, refusals := r.Counts()
	fmt.Fprintf(&b, "optanalysis: %d job(s), %d rewrite(s), %d refusal(s)\n",
		len(r.Jobs), rewrites, refusals)
	for _, jr := range r.Jobs {
		name := jr.Name
		if name == "" {
			name = "(unnamed)"
		}
		fmt.Fprintf(&b, "\njob %s (%s)\n", name, jr.Pos)
		for _, rw := range jr.Rewrites {
			status := "provable"
			if rw.Applied {
				status = "applied"
			}
			fmt.Fprintf(&b, "  + %s input[%d] on %s [%s]\n", rw.Kind, rw.Input, rw.Table, status)
			if rw.Predicate != "" {
				fmt.Fprintf(&b, "      keep rows where: %s\n", rw.Predicate)
			}
			if rw.Path != "" {
				fmt.Fprintf(&b, "      discharged via: %s\n", rw.Path)
			}
			if len(rw.Columns) > 0 {
				fmt.Fprintf(&b, "      columns dropped: %s\n", strings.Join(rw.Columns, ", "))
			}
		}
		for _, rf := range jr.Refusals {
			at := ""
			if rf.Input >= 0 {
				at = fmt.Sprintf(" input[%d]", rf.Input)
			}
			fmt.Fprintf(&b, "  - refused %s%s: %s (%s)\n", rf.Kind, at, rf.Reason, rf.Pos)
		}
	}
	return b.String()
}

// FormatScanFacts renders the translator's scan facts the same way the
// static report renders rewrites, for `-explain`-style output on
// translated queries.
func FormatScanFacts(applied, refused []translator.ScanFact) string {
	var b strings.Builder
	fmt.Fprintf(&b, "manimal: %d scan prefilter(s) applied, %d refused\n", len(applied), len(refused))
	all := append(append([]translator.ScanFact{}, applied...), refused...)
	sort.Slice(all, func(i, k int) bool {
		if all[i].Job != all[k].Job {
			return all[i].Job < all[k].Job
		}
		return all[i].InputIdx < all[k].InputIdx
	})
	for _, f := range all {
		if f.Refusal != "" || f.Prefilter == nil {
			reason := f.Refusal
			if reason == "" {
				reason = "no prefilter derived"
			}
			fmt.Fprintf(&b, "  - refused %s input[%d] (%s): %s\n", f.Job, f.InputIdx, f.Table, reason)
			continue
		}
		fmt.Fprintf(&b, "  + early-filter %s input[%d] on %s: %s\n",
			f.Job, f.InputIdx, f.Table, strings.Join(f.PredSQL, " AND "))
	}
	return b.String()
}
