package optanalysis

import (
	"strings"

	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/translator"
)

// Apply installs every rewrite of the report into the matching runtime
// jobs (matched by Job.Name) and returns how many rewrites it applied.
// Early filters become Input.Prefilter hooks; reducer-pushdown and
// projection-trim wrap the input's mapper so pairs the reducer would
// skip are dropped at the map side and dead value columns are blanked to
// NULL before the shuffle. Applied rewrites are marked Applied in place,
// so a report formatted after Apply shows what actually happened.
func (r *Report) Apply(jobs []*mapreduce.Job) int {
	byName := map[string]*mapreduce.Job{}
	for _, j := range jobs {
		byName[j.Name] = j
	}
	applied := 0
	for _, jr := range r.Jobs {
		job := byName[jr.Name]
		if jr.Name == "" || job == nil {
			continue
		}
		// The mapper wrap combines pushdown and trim per input, so
		// collect both before touching the job.
		type valueRewrite struct {
			schema *exec.Schema
			guard  *pred
			dead   map[int]bool
			marks  []*Rewrite
		}
		wraps := map[int]*valueRewrite{}
		for _, rw := range jr.Rewrites {
			if rw.Input < 0 || rw.Input >= len(job.Inputs) {
				continue
			}
			switch rw.Kind {
			case KindEarlyFilter:
				if rw.prefilter != nil {
					job.Inputs[rw.Input].Prefilter = rw.prefilter
					rw.Applied = true
					applied++
				}
			case KindPushdown, KindTrim:
				if rw.schema == nil {
					continue
				}
				w := wraps[rw.Input]
				if w == nil {
					w = &valueRewrite{schema: rw.schema, dead: map[int]bool{}}
					wraps[rw.Input] = w
				}
				if rw.Kind == KindPushdown {
					w.guard = rw.guard
				} else {
					for _, c := range rw.dead {
						w.dead[c] = true
					}
				}
				w.marks = append(w.marks, rw)
			}
		}
		for idx, w := range wraps {
			orig := job.Inputs[idx].Mapper
			if orig == nil || (w.guard == nil && len(w.dead) == 0) {
				continue
			}
			job.Inputs[idx].Mapper = wrapMapper(orig, w.schema, w.guard, w.dead)
			for _, rw := range w.marks {
				rw.Applied = true
				applied++
			}
		}
	}
	return applied
}

// wrapMapper interposes on the original mapper's emit: drop pairs the
// reducer's guard would skip, then blank dead columns. The original map
// function is untouched — its decode errors, its own filters, and its
// key derivation all run exactly as written.
func wrapMapper(orig mapreduce.Mapper, schema *exec.Schema, keep *pred, dead map[int]bool) mapreduce.Mapper {
	width := schema.Len()
	return mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
		return orig.Map(line, func(k, v string) {
			if keep != nil {
				if r, err := exec.DecodeRow(v, schema); err == nil && !keep.eval(r) {
					return
				}
			}
			if len(dead) > 0 {
				v = trimValue(v, width, dead)
			}
			emit(k, v)
		})
	})
}

// trimValue blanks the dead columns of an encoded row to NULL. A value
// whose field count does not match the proven schema passes through
// untouched: the analysis only covered rows of that exact shape.
func trimValue(v string, width int, dead map[int]bool) string {
	fields := strings.Split(v, "\t")
	if len(fields) != width {
		return v
	}
	for i := range fields {
		if dead[i] {
			fields[i] = `\N`
		}
	}
	return strings.Join(fields, "\t")
}

// ApplyTranslation installs the translator's own scan facts as raw-line
// prefilters on the translated jobs — the MANIMAL pipeline applied to
// generated code, where the facts come from the plan instead of the AST.
// It returns the facts it applied and the ones the translator refused.
func ApplyTranslation(tr *translator.Translation) (applied, refused []translator.ScanFact) {
	// The translation now carries rewrites: reuse artifact keys must fold
	// in the optimizer dimension so optimized and plain artifacts never
	// mix (translator.ArtifactKey, mirroring CacheKeyOpt).
	tr.Optimized = true
	byName := map[string]*mapreduce.Job{}
	for _, j := range tr.Jobs {
		byName[j.Name] = j
	}
	for _, f := range tr.ScanFacts {
		job := byName[f.Job]
		if f.Refusal != "" || f.Prefilter == nil || job == nil || f.InputIdx < 0 || f.InputIdx >= len(job.Inputs) {
			refused = append(refused, f)
			continue
		}
		job.Inputs[f.InputIdx].Prefilter = f.Prefilter
		applied = append(applied, f)
	}
	return applied, refused
}
