package optanalysis

import (
	"strings"
	"testing"

	"ysmart/internal/datagen"
	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
	"ysmart/internal/translator"
	"ysmart/internal/userjobs"
)

// analyzeCorpus runs the analyzer over the naive user-job corpus.
func analyzeCorpus(t *testing.T) *Report {
	t.Helper()
	rep, err := Analyze(".", []string{"../userjobs"})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func jobReport(t *testing.T, rep *Report, name string) *JobReport {
	t.Helper()
	for _, jr := range rep.Jobs {
		if jr.Name == name {
			return jr
		}
	}
	t.Fatalf("no report for job %s", name)
	return nil
}

func findRewrite(jr *JobReport, kind string) *Rewrite {
	for _, rw := range jr.Rewrites {
		if rw.Kind == kind {
			return rw
		}
	}
	return nil
}

func findRefusal(jr *JobReport, kind string) *Refusal {
	for i := range jr.Refusals {
		if jr.Refusals[i].Kind == kind {
			return &jr.Refusals[i]
		}
	}
	return nil
}

// TestAnalyzeUserjobs pins the exact facts the analyzer infers from the
// naive corpus: which rewrites are proven, with what predicates and
// column sets, and which are refused with what reasons.
func TestAnalyzeUserjobs(t *testing.T) {
	rep := analyzeCorpus(t)
	if len(rep.Jobs) != 3 {
		t.Fatalf("found %d job literals, want 3:\n%s", len(rep.Jobs), rep.Format())
	}

	// agg-naive: count(*) reducer reads nothing — trim every column;
	// no mapper guard and no per-value loop, so both filters refuse.
	agg := jobReport(t, rep, "agg-naive-j1")
	trim := findRewrite(agg, KindTrim)
	if trim == nil {
		t.Fatalf("agg-naive-j1: no projection-trim:\n%s", rep.Format())
	}
	if got := strings.Join(trim.Columns, ","); got != "uid,page,cid,ts" {
		t.Errorf("agg-naive-j1 trim columns = %s, want all four", got)
	}
	if rf := findRefusal(agg, KindEarlyFilter); rf == nil || !strings.Contains(rf.Reason, "no leading constant-comparison guard") {
		t.Errorf("agg-naive-j1: want early-filter refusal about the missing guard, got %+v", rf)
	}
	if rf := findRefusal(agg, KindPushdown); rf == nil || !strings.Contains(rf.Reason, "no per-value loop") {
		t.Errorf("agg-naive-j1: want pushdown refusal about the missing loop, got %+v", rf)
	}

	// highvalue-naive: the reducer's price guard pushes down to the map
	// output, and only o_totalprice stays live.
	hv := jobReport(t, rep, "highvalue-naive-j1")
	push := findRewrite(hv, KindPushdown)
	if push == nil {
		t.Fatalf("highvalue-naive-j1: no reducer-pushdown:\n%s", rep.Format())
	}
	if push.Predicate != "o_totalprice > 30000" {
		t.Errorf("pushdown predicate = %q, want o_totalprice > 30000", push.Predicate)
	}
	trim = findRewrite(hv, KindTrim)
	if trim == nil {
		t.Fatal("highvalue-naive-j1: no projection-trim")
	}
	if got := strings.Join(trim.Columns, ","); got != "o_orderkey,o_custkey,o_orderstatus,o_orderdate,o_clerk,o_comment" {
		t.Errorf("highvalue-naive-j1 trim columns = %s (o_totalprice must stay live)", got)
	}
	if rf := findRefusal(hv, KindEarlyFilter); rf == nil {
		t.Error("highvalue-naive-j1: the mapper has no guard, early-filter should refuse")
	}

	// lateship-naive: the mapper's date guard discharges through the
	// shippedRecently helper into a raw-line prefilter; the count(*)
	// reducer trims all eleven columns.
	ls := jobReport(t, rep, "lateship-naive-j1")
	ef := findRewrite(ls, KindEarlyFilter)
	if ef == nil {
		t.Fatalf("lateship-naive-j1: no early-filter:\n%s", rep.Format())
	}
	if ef.Predicate != "l_shipdate >= 9300" {
		t.Errorf("early-filter predicate = %q, want l_shipdate >= 9300", ef.Predicate)
	}
	if ef.Path != "shippedRecently" {
		t.Errorf("early-filter path = %q, want shippedRecently", ef.Path)
	}
	if ef.prefilter == nil {
		t.Error("early-filter carries no runtime prefilter")
	}
	trim = findRewrite(ls, KindTrim)
	if trim == nil || len(trim.Columns) != 11 {
		t.Errorf("lateship-naive-j1: want an 11-column trim, got %+v", trim)
	}
	if rf := findRefusal(ls, KindPushdown); rf == nil {
		t.Error("lateship-naive-j1: len(values) reducer, pushdown should refuse")
	}

	// The report must explain itself: every rewrite and refusal above is
	// visible in the human-readable rendering.
	text := rep.Format()
	for _, want := range []string{
		"early-filter", "reducer-pushdown", "projection-trim",
		"o_totalprice > 30000", "shippedRecently", "refused",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() is missing %q", want)
		}
	}
	if !strings.Contains(rep.JSON(), "\"kind\": \"early-filter\"") {
		t.Error("JSON() is missing the early-filter rewrite")
	}
}

func workload(t *testing.T) (*mapreduce.DFS, *dbms.Database) {
	t.Helper()
	dfs := mapreduce.NewDFS()
	db := dbms.NewDatabase()
	cat := queries.Catalog()
	tpch, err := datagen.TPCH(datagen.DefaultTPCH())
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := datagen.Clickstream(datagen.DefaultClicks())
	if err != nil {
		t.Fatal(err)
	}
	for _, tables := range []datagen.Tables{tpch, clicks} {
		for name, rows := range tables {
			schema, _ := cat.Table(name)
			dfs.Write(translator.TablePath(name), datagen.Lines(rows))
			db.Load(name, schema, rows)
		}
	}
	return dfs, db
}

func runProgram(t *testing.T, dfs *mapreduce.DFS, p *userjobs.Program, workers int) (*mapreduce.ChainStats, []string) {
	t.Helper()
	eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	eng.SetWorkers(workers)
	stats, err := eng.RunChain(p.Jobs)
	if err != nil {
		t.Fatalf("%s: %v", p.Jobs[0].Name, err)
	}
	rows, err := p.ReadResult(dfs)
	if err != nil {
		t.Fatal(err)
	}
	return stats, dbms.SortedLines(rows)
}

func oracleLines(t *testing.T, db *dbms.Database, sql string) []string {
	t.Helper()
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatal(err)
	}
	return dbms.SortedLines(res.Rows)
}

// TestOptimizedProgramsByteIdentical is the end-to-end proof: applying
// the inferred rewrites leaves every program's result rows byte-identical
// to both the unoptimized run and the DBMS oracle — at 1, 2 and 8
// workers — while measurably shrinking the map output.
func TestOptimizedProgramsByteIdentical(t *testing.T) {
	rep := analyzeCorpus(t)
	dfs, db := workload(t)

	for _, base := range userjobs.All() {
		name := base.Jobs[0].Name
		baseStats, baseRows := runProgram(t, dfs, base, 1)
		oracle := oracleLines(t, db, base.OracleSQL)
		if len(baseRows) == 0 {
			t.Fatalf("%s: empty baseline result", name)
		}

		for _, workers := range []int{1, 2, 8} {
			var opt *userjobs.Program
			for _, p := range userjobs.All() {
				if p.Jobs[0].Name == name {
					opt = p
				}
			}
			n := rep.Apply(opt.Jobs)
			if n == 0 {
				t.Fatalf("%s: Apply installed no rewrites", name)
			}
			optStats, optRows := runProgram(t, dfs, opt, workers)

			if len(optRows) != len(baseRows) {
				t.Fatalf("%s workers=%d: %d rows optimized, %d baseline", name, workers, len(optRows), len(baseRows))
			}
			for i := range optRows {
				if optRows[i] != baseRows[i] {
					t.Fatalf("%s workers=%d row %d: optimized %q, baseline %q", name, workers, i, optRows[i], baseRows[i])
				}
				if optRows[i] != oracle[i] {
					t.Fatalf("%s workers=%d row %d: optimized %q, oracle %q", name, workers, i, optRows[i], oracle[i])
				}
			}

			ob, bb := optStats.Jobs[0].MapOutputBytes, baseStats.Jobs[0].MapOutputBytes
			if ob >= bb {
				t.Errorf("%s workers=%d: map output %d bytes, baseline %d — the rewrites saved nothing", name, workers, ob, bb)
			}
			switch name {
			case "highvalue-naive-j1":
				if optStats.Jobs[0].MapOutputRecords >= baseStats.Jobs[0].MapOutputRecords {
					t.Errorf("%s workers=%d: pushdown did not drop map-output records", name, workers)
				}
			case "lateship-naive-j1":
				if optStats.Jobs[0].MapRecordsFiltered == 0 {
					t.Errorf("%s workers=%d: prefilter never fired", name, workers)
				}
			}
			if optStats.Jobs[0].PredictedTime <= 0 {
				t.Errorf("%s workers=%d: cost model produced no prediction", name, workers)
			}
		}
	}
}

// TestApplyTranslation checks the translator-side path: scan facts from
// a translated query install as prefilters and preserve results exactly.
func TestApplyTranslation(t *testing.T) {
	dfs, db := workload(t)
	sql := "SELECT l_shipmode, count(*) AS ship_count FROM lineitem WHERE l_shipdate >= 9300 GROUP BY l_shipmode"

	run := func(optimize bool) []string {
		root, err := queries.Plan(sql)
		if err != nil {
			t.Fatal(err)
		}
		name := "lateship-plain"
		if optimize {
			name = "lateship-manimal"
		}
		tr, err := translator.Translate(root, translator.YSmart, translator.Options{QueryName: name})
		if err != nil {
			t.Fatal(err)
		}
		if optimize {
			applied, _ := ApplyTranslation(tr)
			if len(applied) == 0 {
				t.Fatal("no scan facts applied to a filtered scan")
			}
			if text := FormatScanFacts(applied, nil); !strings.Contains(text, "early-filter") {
				t.Errorf("FormatScanFacts missing the applied filter: %s", text)
			}
		}
		eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunChain(tr.Jobs); err != nil {
			t.Fatal(err)
		}
		lines, err := dfs.Read(tr.Output)
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]exec.Row, 0, len(lines))
		for _, line := range lines {
			row, err := exec.DecodeRow(line, tr.OutputSchema)
			if err != nil {
				t.Fatal(err)
			}
			rows = append(rows, row)
		}
		return dbms.SortedLines(rows)
	}

	plain := run(false)
	opt := run(true)
	oracle := oracleLines(t, db, sql)
	if len(plain) == 0 || len(plain) != len(opt) || len(plain) != len(oracle) {
		t.Fatalf("row counts differ: plain %d, optimized %d, oracle %d", len(plain), len(opt), len(oracle))
	}
	for i := range plain {
		if plain[i] != opt[i] || plain[i] != oracle[i] {
			t.Fatalf("row %d: plain %q, optimized %q, oracle %q", i, plain[i], opt[i], oracle[i])
		}
	}
}
