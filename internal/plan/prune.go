package plan

import (
	"fmt"
	"sort"

	"ysmart/internal/exec"
	"ysmart/internal/sqlparser"
)

// RequiredColumns computes, for every node of the tree, which of its output
// columns its ancestors actually consume (the root requires all of its
// columns). The translator uses the per-Scan sets to build the minimal
// union projection of a shared table scan — the "all the required data for
// all the merged jobs" common value of paper §VI.A.
func RequiredColumns(root Node) (map[Node][]int, error) {
	req := make(map[Node]map[int]bool)
	all := make([]int, root.Schema().Len())
	for i := range all {
		all[i] = i
	}
	if err := demand(root, all, req); err != nil {
		return nil, err
	}
	out := make(map[Node][]int, len(req))
	for n, set := range req {
		cols := make([]int, 0, len(set))
		for i := range set {
			cols = append(cols, i)
		}
		sort.Ints(cols)
		out[n] = cols
	}
	return out, nil
}

func demand(n Node, cols []int, req map[Node]map[int]bool) error {
	set := req[n]
	if set == nil {
		set = make(map[int]bool)
		req[n] = set
	}
	for _, c := range cols {
		if c < 0 || c >= n.Schema().Len() {
			return fmt.Errorf("required column %d out of range for %s", c, n.Describe())
		}
		set[c] = true
	}

	switch x := n.(type) {
	case *Scan:
		return nil

	case *Filter:
		childCols, err := exprColumns(x.Cond, x.Child.Schema())
		if err != nil {
			return fmt.Errorf("filter: %w", err)
		}
		return demand(x.Child, append(childCols, cols...), req)

	case *Rebind:
		return demand(x.Child, cols, req)

	case *Limit:
		return demand(x.Child, cols, req)

	case *Sort:
		var keyCols []int
		for _, k := range x.Keys {
			kc, err := exprColumns(k.Expr, x.Child.Schema())
			if err != nil {
				return fmt.Errorf("sort: %w", err)
			}
			keyCols = append(keyCols, kc...)
		}
		return demand(x.Child, append(keyCols, cols...), req)

	case *Project:
		var childCols []int
		for _, c := range cols {
			ec, err := exprColumns(x.Exprs[c], x.Child.Schema())
			if err != nil {
				return fmt.Errorf("project: %w", err)
			}
			childCols = append(childCols, ec...)
		}
		return demand(x.Child, childCols, req)

	case *Join:
		leftW := x.Left.Schema().Len()
		var leftCols, rightCols []int
		for _, c := range cols {
			if c < leftW {
				leftCols = append(leftCols, c)
			} else {
				rightCols = append(rightCols, c-leftW)
			}
		}
		leftCols = append(leftCols, x.LeftKeys...)
		rightCols = append(rightCols, x.RightKeys...)
		if x.Residual != nil {
			rc, err := exprColumns(x.Residual, x.Schema())
			if err != nil {
				return fmt.Errorf("join residual: %w", err)
			}
			for _, c := range rc {
				if c < leftW {
					leftCols = append(leftCols, c)
				} else {
					rightCols = append(rightCols, c-leftW)
				}
			}
		}
		if err := demand(x.Left, leftCols, req); err != nil {
			return err
		}
		return demand(x.Right, rightCols, req)

	case *Aggregate:
		// Grouping always needs its columns; aggregates are computed as a
		// block, so their arguments are needed whenever the node runs.
		var childCols []int
		for _, g := range x.GroupBy {
			gc, err := exprColumns(g, x.Child.Schema())
			if err != nil {
				return fmt.Errorf("aggregate group: %w", err)
			}
			childCols = append(childCols, gc...)
		}
		for _, spec := range x.Aggs {
			if spec.Arg == nil {
				continue
			}
			ac, err := exprColumns(spec.Arg, x.Child.Schema())
			if err != nil {
				return fmt.Errorf("aggregate arg: %w", err)
			}
			childCols = append(childCols, ac...)
		}
		return demand(x.Child, childCols, req)

	default:
		return fmt.Errorf("required columns: unsupported node %T", n)
	}
}

// exprColumns resolves every column reference in e to an index of s.
func exprColumns(e sqlparser.Expr, s *exec.Schema) ([]int, error) {
	var out []int
	for _, ref := range sqlparser.ColumnRefs(e) {
		idx, err := s.Resolve(ref.Qualifier, ref.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, idx)
	}
	return out, nil
}
