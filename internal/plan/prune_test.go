package plan

import (
	"reflect"
	"testing"
)

func requiredFor(t *testing.T, sql string) (Node, map[Node][]int) {
	t.Helper()
	root := mustBuild(t, sql)
	req, err := RequiredColumns(root)
	if err != nil {
		t.Fatalf("RequiredColumns: %v", err)
	}
	return root, req
}

func scanRequired(t *testing.T, req map[Node][]int, root Node, binding string) []int {
	t.Helper()
	var found []int
	ok := false
	Walk(root, func(n Node) {
		if s, is := n.(*Scan); is && s.Binding == binding {
			found, ok = req[s], true
		}
	})
	if !ok {
		t.Fatalf("scan %s not found or not in required map", binding)
	}
	return found
}

func TestRequiredColumnsSimpleProjection(t *testing.T) {
	// clicks(uid, page, cid, ts): query touches uid (select), cid (filter).
	root, req := requiredFor(t, "SELECT uid FROM clicks WHERE cid = 5")
	got := scanRequired(t, req, root, "clicks")
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("required = %v, want [0 2] (uid, cid)", got)
	}
}

func TestRequiredColumnsJoinKeysAndResidual(t *testing.T) {
	root, req := requiredFor(t, `
		SELECT c1.page FROM clicks c1, clicks c2
		WHERE c1.uid = c2.uid AND c1.ts < c2.ts`)
	// c1 needs page (0? no: page=1), uid (key), ts (residual filter).
	c1 := scanRequired(t, req, root, "c1")
	if !reflect.DeepEqual(c1, []int{0, 1, 3}) {
		t.Errorf("c1 required = %v, want [0 1 3] (uid, page, ts)", c1)
	}
	// c2 needs only uid and ts.
	c2 := scanRequired(t, req, root, "c2")
	if !reflect.DeepEqual(c2, []int{0, 3}) {
		t.Errorf("c2 required = %v, want [0 3] (uid, ts)", c2)
	}
}

func TestRequiredColumnsAggregate(t *testing.T) {
	// Group col + agg arg are needed; other columns are not.
	root, req := requiredFor(t, "SELECT cid, min(ts) FROM clicks GROUP BY cid")
	got := scanRequired(t, req, root, "clicks")
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("required = %v, want [2 3] (cid, ts)", got)
	}
}

func TestRequiredColumnsQ17Lineitem(t *testing.T) {
	// The outer lineitem instance needs partkey, quantity, extendedprice;
	// the inner (aggregated) instance needs partkey, quantity only.
	root, req := requiredFor(t, `
		SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
		FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
		      FROM lineitem GROUP BY l_partkey) AS inner_t,
		     (SELECT l_partkey, l_quantity, l_extendedprice
		      FROM lineitem, part
		      WHERE p_partkey = l_partkey) AS outer_t
		WHERE outer_t.l_partkey = inner_t.l_partkey
		  AND outer_t.l_quantity < inner_t.t1`)
	var scans []*Scan
	Walk(root, func(n Node) {
		if s, ok := n.(*Scan); ok && s.Table == "lineitem" {
			scans = append(scans, s)
		}
	})
	if len(scans) != 2 {
		t.Fatalf("lineitem scans = %d, want 2", len(scans))
	}
	// lineitem schema: l_orderkey=0, l_partkey=1, l_suppkey=2, l_quantity=3,
	// l_extendedprice=4, ...
	sets := [][]int{req[scans[0]], req[scans[1]]}
	var inner, outer []int
	for _, s := range sets {
		if len(s) == 2 {
			inner = s
		} else {
			outer = s
		}
	}
	if !reflect.DeepEqual(inner, []int{1, 3}) {
		t.Errorf("inner lineitem required = %v, want [1 3]", inner)
	}
	if !reflect.DeepEqual(outer, []int{1, 3, 4}) {
		t.Errorf("outer lineitem required = %v, want [1 3 4]", outer)
	}
}

func TestRequiredColumnsRootRequiresAll(t *testing.T) {
	root, req := requiredFor(t, "SELECT uid, ts FROM clicks")
	if !reflect.DeepEqual(req[root], []int{0, 1}) {
		t.Errorf("root required = %v, want [0 1]", req[root])
	}
}

func TestRequiredColumnsSortKeys(t *testing.T) {
	root, req := requiredFor(t, "SELECT uid FROM clicks ORDER BY uid DESC")
	got := scanRequired(t, req, root, "clicks")
	if !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("required = %v, want [0]", got)
	}
}
