package plan

import (
	"fmt"
	"strings"

	"ysmart/internal/exec"
	"ysmart/internal/sqlparser"
)

// Node is a logical plan operator.
type Node interface {
	// Schema is the node's output schema.
	Schema() *exec.Schema
	// Lineage maps each output column to its base-table origin; computed
	// columns carry the zero ColumnID.
	Lineage() []ColumnID
	// Children returns the node's inputs in left-to-right order.
	Children() []Node
	// Describe renders a one-line operator description for EXPLAIN output.
	Describe() string
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

// Scan reads a physical base table under a binding (its alias in scope).
type Scan struct {
	Table   string // physical table name
	Binding string // name the columns are reachable through
	schema  *exec.Schema
	lineage []ColumnID
}

// NewScan builds a scan whose schema binds tableSchema's columns to binding.
func NewScan(table, binding string, tableSchema *exec.Schema) *Scan {
	s := &Scan{
		Table:   table,
		Binding: binding,
		schema:  tableSchema.Rebind(binding),
	}
	s.lineage = make([]ColumnID, len(tableSchema.Cols))
	for i, c := range tableSchema.Cols {
		s.lineage[i] = MakeColumnID(table, c.Name)
	}
	return s
}

// Schema implements Node.
func (s *Scan) Schema() *exec.Schema { return s.schema }

// Lineage implements Node.
func (s *Scan) Lineage() []ColumnID { return s.lineage }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string {
	if s.Binding != "" && !strings.EqualFold(s.Binding, s.Table) {
		return fmt.Sprintf("Scan %s AS %s", s.Table, s.Binding)
	}
	return "Scan " + s.Table
}

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------

// Filter keeps rows for which Cond evaluates to TRUE.
type Filter struct {
	Child Node
	Cond  sqlparser.Expr
}

// Schema implements Node.
func (f *Filter) Schema() *exec.Schema { return f.Child.Schema() }

// Lineage implements Node.
func (f *Filter) Lineage() []ColumnID { return f.Child.Lineage() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// Describe implements Node.
func (f *Filter) Describe() string { return "Filter " + f.Cond.SQL() }

// ---------------------------------------------------------------------------
// Project
// ---------------------------------------------------------------------------

// Project computes an output row of expressions over the child.
type Project struct {
	Child   Node
	Exprs   []sqlparser.Expr
	schema  *exec.Schema
	lineage []ColumnID
}

// NewProject builds a projection. names supplies the output column names
// (one per expression); output columns are unqualified.
func NewProject(child Node, exprs []sqlparser.Expr, names []string) (*Project, error) {
	if len(exprs) != len(names) {
		return nil, fmt.Errorf("project: %d exprs but %d names", len(exprs), len(names))
	}
	p := &Project{Child: child, Exprs: exprs}
	childSchema := child.Schema()
	childLineage := child.Lineage()
	p.schema = &exec.Schema{Cols: make([]exec.Column, len(exprs))}
	p.lineage = make([]ColumnID, len(exprs))
	for i, e := range exprs {
		t, err := exec.InferType(e, childSchema)
		if err != nil {
			return nil, fmt.Errorf("project column %q: %w", names[i], err)
		}
		p.schema.Cols[i] = exec.Column{Name: names[i], Type: t}
		if c, ok := e.(*sqlparser.ColumnRef); ok {
			if idx, err := childSchema.Resolve(c.Qualifier, c.Name); err == nil {
				p.lineage[i] = childLineage[idx]
			}
		}
	}
	return p, nil
}

// Schema implements Node.
func (p *Project) Schema() *exec.Schema { return p.schema }

// Lineage implements Node.
func (p *Project) Lineage() []ColumnID { return p.lineage }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.SQL() + " AS " + p.schema.Cols[i].Name
	}
	return "Project " + strings.Join(parts, ", ")
}

// ---------------------------------------------------------------------------
// Rebind
// ---------------------------------------------------------------------------

// Rebind re-qualifies a derived table's output columns under an alias:
// (SELECT ...) AS alias. It is a pure metadata operation.
type Rebind struct {
	Child   Node
	Binding string
	schema  *exec.Schema
}

// NewRebind wraps child so its columns resolve through binding. Duplicate
// column names in the derived output are rejected because they would be
// unreachable.
func NewRebind(child Node, binding string) (*Rebind, error) {
	seen := make(map[string]bool, child.Schema().Len())
	for _, c := range child.Schema().Cols {
		lower := strings.ToLower(c.Name)
		if seen[lower] {
			return nil, fmt.Errorf("derived table %s has duplicate column %q", binding, c.Name)
		}
		seen[lower] = true
	}
	return &Rebind{Child: child, Binding: binding, schema: child.Schema().Rebind(binding)}, nil
}

// Schema implements Node.
func (r *Rebind) Schema() *exec.Schema { return r.schema }

// Lineage implements Node.
func (r *Rebind) Lineage() []ColumnID { return r.Child.Lineage() }

// Children implements Node.
func (r *Rebind) Children() []Node { return []Node{r.Child} }

// Describe implements Node.
func (r *Rebind) Describe() string { return "As " + r.Binding }

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

// Join is an equi-join of two inputs. LeftKeys[i] pairs with RightKeys[i].
// Residual is an extra predicate applied to matched pairs (ON-clause
// conjuncts that are not equi-join conditions); for outer joins a pair
// failing Residual does not match and may be null-extended.
type Join struct {
	Type      sqlparser.JoinType
	Left      Node
	Right     Node
	LeftKeys  []int
	RightKeys []int
	Residual  sqlparser.Expr // nil if none; resolves against the concat schema
	schema    *exec.Schema
	lineage   []ColumnID
}

// NewJoin builds a join node; key slices must be equal length and non-empty.
func NewJoin(typ sqlparser.JoinType, left, right Node, leftKeys, rightKeys []int, residual sqlparser.Expr) (*Join, error) {
	if len(leftKeys) != len(rightKeys) {
		return nil, fmt.Errorf("join: %d left keys but %d right keys", len(leftKeys), len(rightKeys))
	}
	if len(leftKeys) == 0 {
		return nil, fmt.Errorf("join without an equi-join condition is not supported")
	}
	j := &Join{
		Type: typ, Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys, Residual: residual,
		schema:  left.Schema().Concat(right.Schema()),
		lineage: append(append([]ColumnID{}, left.Lineage()...), right.Lineage()...),
	}
	return j, nil
}

// Schema implements Node.
func (j *Join) Schema() *exec.Schema { return j.schema }

// Lineage implements Node.
func (j *Join) Lineage() []ColumnID { return j.lineage }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Describe implements Node.
func (j *Join) Describe() string {
	var conds []string
	ls, rs := j.Left.Schema(), j.Right.Schema()
	for i := range j.LeftKeys {
		conds = append(conds, ls.Cols[j.LeftKeys[i]].QualifiedName()+" = "+rs.Cols[j.RightKeys[i]].QualifiedName())
	}
	s := j.Type.String() + " ON " + strings.Join(conds, " AND ")
	if j.Residual != nil {
		s += " AND " + j.Residual.SQL()
	}
	return s
}

// PartKey returns the join's partition key: one component per key pair,
// containing the lineage of both sides (paper §IV.A: "The partition key of
// an equi-join is the set of columns used in the join condition").
func (j *Join) PartKey() PartKey {
	ll, rl := j.Left.Lineage(), j.Right.Lineage()
	pk := make(PartKey, len(j.LeftKeys))
	for i := range j.LeftKeys {
		pk[i] = NewKeyComponent(ll[j.LeftKeys[i]], rl[j.RightKeys[i]])
	}
	return pk
}

// SelfJoinTable reports the physical table name if both join inputs scan
// the same single base table (possibly through filters/projections), which
// enables the single-scan self-join optimization (paper §V.A).
func (j *Join) SelfJoinTable() (string, bool) {
	lt, lok := soleBaseTable(j.Left)
	rt, rok := soleBaseTable(j.Right)
	if lok && rok && lt == rt {
		return lt, true
	}
	return "", false
}

// soleBaseTable returns the physical table when the subtree reads exactly
// one base table and contains no join/aggregate boundary.
func soleBaseTable(n Node) (string, bool) {
	switch x := n.(type) {
	case *Scan:
		return x.Table, true
	case *Filter:
		return soleBaseTable(x.Child)
	case *Project:
		return soleBaseTable(x.Child)
	case *Rebind:
		return soleBaseTable(x.Child)
	default:
		return "", false
	}
}

// ---------------------------------------------------------------------------
// Aggregate
// ---------------------------------------------------------------------------

// AggSpec is one aggregate computation.
type AggSpec struct {
	Kind exec.AggKind
	Arg  sqlparser.Expr // nil for COUNT(*)
	Name string         // output column name
}

// Aggregate groups the child rows by GroupBy expressions and computes the
// aggregates. Its output schema is the grouping columns followed by the
// aggregate results. With no GroupBy it produces a single global row.
type Aggregate struct {
	Child      Node
	GroupBy    []sqlparser.Expr
	GroupNames []string // output names, parallel to GroupBy
	GroupQuals []string // output bindings (qualifier of the source column, "" if computed)
	Aggs       []AggSpec
	// PKChoice holds the indices (into GroupBy) of the partition-key
	// candidate selected by correlation analysis. The default — all
	// grouping columns — is set by NewAggregate.
	PKChoice []int
	schema   *exec.Schema
	lineage  []ColumnID
}

// NewAggregate builds an aggregate node and types its output schema.
func NewAggregate(child Node, groupBy []sqlparser.Expr, groupNames []string, aggs []AggSpec) (*Aggregate, error) {
	if len(groupBy) != len(groupNames) {
		return nil, fmt.Errorf("aggregate: %d group exprs but %d names", len(groupBy), len(groupNames))
	}
	a := &Aggregate{Child: child, GroupBy: groupBy, GroupNames: groupNames, Aggs: aggs}
	childSchema := child.Schema()
	childLineage := child.Lineage()
	n := len(groupBy) + len(aggs)
	a.schema = &exec.Schema{Cols: make([]exec.Column, 0, n)}
	a.lineage = make([]ColumnID, 0, n)
	a.GroupQuals = make([]string, len(groupBy))
	for i, g := range groupBy {
		t, err := exec.InferType(g, childSchema)
		if err != nil {
			return nil, fmt.Errorf("group by %s: %w", g.SQL(), err)
		}
		var lin ColumnID
		if c, ok := g.(*sqlparser.ColumnRef); ok {
			if idx, err := childSchema.Resolve(c.Qualifier, c.Name); err == nil {
				lin = childLineage[idx]
				a.GroupQuals[i] = childSchema.Cols[idx].Table
			}
		}
		a.schema.Cols = append(a.schema.Cols, exec.Column{Table: a.GroupQuals[i], Name: groupNames[i], Type: t})
		a.lineage = append(a.lineage, lin)
	}
	for _, spec := range aggs {
		var argType exec.Type
		if spec.Arg != nil {
			t, err := exec.InferType(spec.Arg, childSchema)
			if err != nil {
				return nil, fmt.Errorf("aggregate %s: %w", spec.Name, err)
			}
			argType = t
		} else {
			argType = exec.TypeInt
		}
		a.schema.Cols = append(a.schema.Cols, exec.Column{Name: spec.Name, Type: spec.Kind.ResultType(argType)})
		a.lineage = append(a.lineage, ColumnID{})
	}
	a.PKChoice = make([]int, len(groupBy))
	for i := range a.PKChoice {
		a.PKChoice[i] = i
	}
	return a, nil
}

// Schema implements Node.
func (a *Aggregate) Schema() *exec.Schema { return a.schema }

// Lineage implements Node.
func (a *Aggregate) Lineage() []ColumnID { return a.lineage }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// Describe implements Node.
func (a *Aggregate) Describe() string {
	var parts []string
	for i, g := range a.GroupBy {
		parts = append(parts, g.SQL()+" AS "+a.GroupNames[i])
	}
	for _, spec := range a.Aggs {
		arg := "*"
		if spec.Arg != nil {
			arg = spec.Arg.SQL()
		}
		parts = append(parts, fmt.Sprintf("%v[%s] AS %s", spec.Kind, arg, spec.Name))
	}
	return "Aggregate " + strings.Join(parts, ", ")
}

// CandidatePKs enumerates the aggregation's partition-key candidates: every
// non-empty subset of the grouping columns (paper §IV.A). Each candidate is
// returned as indices into GroupBy, smallest subsets first. A global
// aggregate (no grouping) has no candidates.
func (a *Aggregate) CandidatePKs() [][]int {
	n := len(a.GroupBy)
	if n == 0 {
		return nil
	}
	var out [][]int
	// Enumerate subsets by popcount so singleton candidates come first.
	for size := 1; size <= n; size++ {
		for mask := 1; mask < 1<<n; mask++ {
			if popcount(mask) != size {
				continue
			}
			var subset []int
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					subset = append(subset, i)
				}
			}
			out = append(out, subset)
		}
	}
	return out
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// PartKeyFor converts a candidate (indices into GroupBy) to a PartKey.
func (a *Aggregate) PartKeyFor(candidate []int) PartKey {
	childLineage := a.Child.Lineage()
	childSchema := a.Child.Schema()
	pk := make(PartKey, 0, len(candidate))
	for _, gi := range candidate {
		var comp KeyComponent
		if c, ok := a.GroupBy[gi].(*sqlparser.ColumnRef); ok {
			if idx, err := childSchema.Resolve(c.Qualifier, c.Name); err == nil {
				comp = NewKeyComponent(childLineage[idx])
			}
		}
		if comp == nil {
			comp = NewKeyComponent()
		}
		pk = append(pk, comp)
	}
	return pk
}

// PartKey returns the partition key for the chosen candidate (paper §IV.A:
// "The partition key of an aggregation can be any non-empty subset of the
// grouping columns"; YSmart's heuristic picks the choice, see
// internal/correlation).
func (a *Aggregate) PartKey() PartKey { return a.PartKeyFor(a.PKChoice) }

// ---------------------------------------------------------------------------
// Sort, Limit
// ---------------------------------------------------------------------------

// SortKey is one ORDER BY key resolved against the child schema.
type SortKey struct {
	Expr sqlparser.Expr
	Desc bool
}

// Sort orders the child's rows.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() *exec.Schema { return s.Child.Schema() }

// Lineage implements Node.
func (s *Sort) Lineage() []ColumnID { return s.Child.Lineage() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Describe implements Node.
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.Expr.SQL()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Limit keeps the first N child rows.
type Limit struct {
	Child Node
	N     int
}

// Schema implements Node.
func (l *Limit) Schema() *exec.Schema { return l.Child.Schema() }

// Lineage implements Node.
func (l *Limit) Lineage() []ColumnID { return l.Child.Lineage() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// Describe implements Node.
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.N) }

// ---------------------------------------------------------------------------
// Tree rendering
// ---------------------------------------------------------------------------

// Format renders the plan tree with indentation, one operator per line —
// the output of `ysmart explain`.
func Format(n Node) string {
	var sb strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Describe())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return sb.String()
}

// Walk visits every node in the tree pre-order.
func Walk(n Node, fn func(Node)) {
	fn(n)
	for _, c := range n.Children() {
		Walk(c, fn)
	}
}

// BaseTables returns the set of physical tables scanned anywhere under n.
func BaseTables(n Node) map[string]bool {
	out := make(map[string]bool)
	Walk(n, func(m Node) {
		if s, ok := m.(*Scan); ok {
			out[s.Table] = true
		}
	})
	return out
}
