// Package plan builds typed logical query plans from parsed SQL and exposes
// the properties YSmart's correlation analysis needs: per-node schemas,
// column lineage back to physical base tables, and partition keys (paper
// §IV.A). Plan nodes are consumed by the MapReduce translator
// (internal/translator) and by the single-node DBMS executor
// (internal/dbms).
package plan

import (
	"sort"
	"strings"
)

// ColumnID identifies a column of a physical base table. It is the unit of
// column lineage: two plan columns with the same ColumnID originate from
// the same physical data, even when reached through different aliases
// (e.g. the two instances of a self-joined table).
type ColumnID struct {
	Table  string // physical table name, lower-cased
	Column string // column name, lower-cased
}

// IsZero reports whether the ID is the "no lineage" marker used for
// computed columns.
func (c ColumnID) IsZero() bool { return c.Table == "" && c.Column == "" }

func (c ColumnID) String() string {
	if c.IsZero() {
		return "<computed>"
	}
	return c.Table + "." + c.Column
}

// MakeColumnID normalizes names into a ColumnID.
func MakeColumnID(table, column string) ColumnID {
	return ColumnID{Table: strings.ToLower(table), Column: strings.ToLower(column)}
}

// KeyComponent is one position of a partition key: the equivalence class of
// base columns that carry the same value at that position. Equi-join
// predicates merge the two sides into one class (paper §IV.B footnote: the
// columns on the two sides of `l_partkey = p_partkey` are aliases of the
// same partition key). An empty component means the key position is a
// computed value with no lineage.
type KeyComponent map[ColumnID]bool

// NewKeyComponent builds a component from ids, skipping zero IDs.
func NewKeyComponent(ids ...ColumnID) KeyComponent {
	c := make(KeyComponent)
	for _, id := range ids {
		if !id.IsZero() {
			c[id] = true
		}
	}
	return c
}

// Intersects reports whether two components share a base column.
func (c KeyComponent) Intersects(o KeyComponent) bool {
	small, large := c, o
	if len(large) < len(small) {
		small, large = large, small
	}
	for id := range small {
		if large[id] {
			return true
		}
	}
	return false
}

func (c KeyComponent) String() string {
	if len(c) == 0 {
		return "{}"
	}
	ids := make([]string, 0, len(c))
	for id := range c {
		ids = append(ids, id.String())
	}
	sort.Strings(ids)
	return "{" + strings.Join(ids, "=") + "}"
}

// PartKey is a partition key: an unordered multiset of key components
// (paper §IV.A "Partition Key"). A join's key has one component per
// equi-join column pair; an aggregation's key has one per grouping column
// in the chosen candidate.
type PartKey []KeyComponent

// Equal reports whether two partition keys partition their shared inputs
// identically: they have the same number of components and there is a
// perfect matching between components such that matched components share a
// base column. Components are few (1-3 in practice), so a backtracking
// matching is used.
func (k PartKey) Equal(o PartKey) bool {
	if len(k) != len(o) {
		return false
	}
	if len(k) == 0 {
		return true
	}
	used := make([]bool, len(o))
	var match func(i int) bool
	match = func(i int) bool {
		if i == len(k) {
			return true
		}
		for j := range o {
			if used[j] || !k[i].Intersects(o[j]) {
				continue
			}
			used[j] = true
			if match(i + 1) {
				return true
			}
			used[j] = false
		}
		return false
	}
	return match(0)
}

func (k PartKey) String() string {
	if len(k) == 0 {
		return "(none)"
	}
	parts := make([]string, len(k))
	for i, c := range k {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
