package plan

import (
	"fmt"
	"strconv"
	"strings"

	"ysmart/internal/exec"
	"ysmart/internal/sqlparser"
)

// Catalog resolves table names to schemas. Column Table bindings in the
// returned schema are ignored; the builder rebinds them to the reference's
// alias.
type Catalog interface {
	Table(name string) (*exec.Schema, bool)
}

// MapCatalog is a Catalog backed by a map with case-insensitive names.
type MapCatalog map[string]*exec.Schema

// Table implements Catalog.
func (m MapCatalog) Table(name string) (*exec.Schema, bool) {
	s, ok := m[strings.ToLower(name)]
	return s, ok
}

// Build converts a parsed SELECT statement into a logical plan.
func Build(stmt *sqlparser.SelectStmt, cat Catalog) (Node, error) {
	b := &builder{cat: cat}
	return b.buildSelect(stmt)
}

type builder struct {
	cat Catalog
}

func (b *builder) buildSelect(stmt *sqlparser.SelectStmt) (Node, error) {
	if len(stmt.From) == 0 {
		return nil, fmt.Errorf("SELECT without FROM is not supported")
	}

	// 1. FROM items.
	fromNodes := make([]Node, len(stmt.From))
	for i, tr := range stmt.From {
		n, err := b.buildTableRef(tr)
		if err != nil {
			return nil, err
		}
		fromNodes[i] = n
	}

	// 2. Extract IN-subquery conjuncts (they become semi-joins after the
	// FROM tree is assembled), then push single-table WHERE conjuncts down
	// to their FROM item.
	var inSubs []*sqlparser.InSubqueryExpr
	conjs := sqlparser.SplitConjuncts(stmt.Where)[:0:0]
	for _, c := range sqlparser.SplitConjuncts(stmt.Where) {
		if is, ok := c.(*sqlparser.InSubqueryExpr); ok {
			inSubs = append(inSubs, is)
			continue
		}
		if err := rejectNestedSubquery(c); err != nil {
			return nil, err
		}
		conjs = append(conjs, c)
	}
	used := make([]bool, len(conjs))
	for ci, c := range conjs {
		resolvesAt := -1
		count := 0
		for ni, n := range fromNodes {
			if exprResolves(c, n.Schema()) {
				resolvesAt = ni
				count++
			}
		}
		if count == 1 {
			fromNodes[resolvesAt] = &Filter{Child: fromNodes[resolvesAt], Cond: c}
			used[ci] = true
		}
	}

	// 3. Assemble comma joins using the equi-join conjuncts in WHERE.
	cur := fromNodes[0]
	for _, right := range fromNodes[1:] {
		var leftKeys, rightKeys []int
		for ci, c := range conjs {
			if used[ci] {
				continue
			}
			li, ri, ok := equiKeyPair(c, cur.Schema(), right.Schema())
			if !ok {
				continue
			}
			leftKeys = append(leftKeys, li)
			rightKeys = append(rightKeys, ri)
			used[ci] = true
		}
		if len(leftKeys) == 0 {
			return nil, fmt.Errorf("no equi-join condition links %s to the preceding tables (cross joins are not supported)", describeRef(right))
		}
		j, err := NewJoin(sqlparser.InnerJoin, cur, right, leftKeys, rightKeys, nil)
		if err != nil {
			return nil, err
		}
		cur = j
	}

	// 4. Remaining WHERE conjuncts filter the joined relation.
	var rest []sqlparser.Expr
	for ci, c := range conjs {
		if !used[ci] {
			rest = append(rest, c)
		}
	}
	if len(rest) > 0 {
		cond := sqlparser.JoinConjuncts(rest)
		if !exprResolves(cond, cur.Schema()) {
			// Surface the resolution error with context.
			if _, err := exec.Compile(cond, cur.Schema()); err != nil {
				return nil, fmt.Errorf("WHERE clause: %w", err)
			}
		}
		cur = &Filter{Child: cur, Cond: cond}
	}

	// 5. IN-subquery conjuncts become semi-joins: the query's rows keep
	// their multiplicity while the subquery side is deduplicated — the
	// rewrite the paper's authors applied by hand when flattening the
	// TPC-H queries for MapReduce (§VII.A.1).
	for i, is := range inSubs {
		next, err := b.applySemiJoin(cur, is, i)
		if err != nil {
			return nil, err
		}
		cur = next
	}

	// 6. Aggregation.
	var err error
	cur, stmt, err = b.buildAggregation(cur, stmt)
	if err != nil {
		return nil, err
	}

	// 6. Final projection.
	proj, projSubs, err := b.buildProjection(cur, stmt)
	if err != nil {
		return nil, err
	}
	cur = proj

	// 7. DISTINCT via re-grouping on all output columns.
	if stmt.Distinct {
		groupBy := make([]sqlparser.Expr, cur.Schema().Len())
		names := make([]string, cur.Schema().Len())
		for i, c := range cur.Schema().Cols {
			groupBy[i] = &sqlparser.ColumnRef{Qualifier: c.Table, Name: c.Name}
			names[i] = c.Name
		}
		agg, err := NewAggregate(cur, groupBy, names, nil)
		if err != nil {
			return nil, fmt.Errorf("DISTINCT: %w", err)
		}
		cur = agg
	}

	// 8. ORDER BY / LIMIT. Order keys that name projected expressions are
	// rewritten to references of the projection's output columns.
	if len(stmt.OrderBy) > 0 {
		keys := make([]SortKey, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			e := RewriteExpr(o.Expr, projSubs)
			if !exprResolves(e, cur.Schema()) {
				if _, cerr := exec.Compile(e, cur.Schema()); cerr != nil {
					return nil, fmt.Errorf("ORDER BY %s: %w", e.SQL(), cerr)
				}
			}
			keys[i] = SortKey{Expr: e, Desc: o.Desc}
		}
		cur = &Sort{Child: cur, Keys: keys}
	}
	if stmt.Limit >= 0 {
		cur = &Limit{Child: cur, N: stmt.Limit}
	}
	return cur, nil
}

func (b *builder) buildTableRef(tr sqlparser.TableRef) (Node, error) {
	switch x := tr.(type) {
	case *sqlparser.BaseTable:
		schema, ok := b.cat.Table(x.Name)
		if !ok {
			return nil, fmt.Errorf("unknown table %q", x.Name)
		}
		return NewScan(strings.ToLower(x.Name), x.Binding(), schema), nil

	case *sqlparser.Subquery:
		child, err := b.buildSelect(x.Select)
		if err != nil {
			return nil, fmt.Errorf("derived table %s: %w", x.Alias, err)
		}
		return NewRebind(child, x.Alias)

	case *sqlparser.Join:
		return b.buildExplicitJoin(x)

	default:
		return nil, fmt.Errorf("unsupported table reference %T", tr)
	}
}

func (b *builder) buildExplicitJoin(x *sqlparser.Join) (Node, error) {
	if x.Type == sqlparser.CrossJoin {
		return nil, fmt.Errorf("CROSS JOIN is not supported")
	}
	left, err := b.buildTableRef(x.Left)
	if err != nil {
		return nil, err
	}
	right, err := b.buildTableRef(x.Right)
	if err != nil {
		return nil, err
	}
	var leftKeys, rightKeys []int
	var residual []sqlparser.Expr
	for _, c := range sqlparser.SplitConjuncts(x.On) {
		if li, ri, ok := equiKeyPair(c, left.Schema(), right.Schema()); ok {
			leftKeys = append(leftKeys, li)
			rightKeys = append(rightKeys, ri)
			continue
		}
		residual = append(residual, c)
	}
	if len(leftKeys) == 0 {
		return nil, fmt.Errorf("%s requires at least one equi-join condition", x.Type)
	}
	res := sqlparser.JoinConjuncts(residual)
	if res != nil && !exprResolves(res, left.Schema().Concat(right.Schema())) {
		if _, cerr := exec.Compile(res, left.Schema().Concat(right.Schema())); cerr != nil {
			return nil, fmt.Errorf("ON clause: %w", cerr)
		}
	}
	return NewJoin(x.Type, left, right, leftKeys, rightKeys, res)
}

// applySemiJoin rewrites `x IN (SELECT c FROM ...)` as an inner join of the
// current tree against the deduplicated subquery result.
func (b *builder) applySemiJoin(cur Node, e *sqlparser.InSubqueryExpr, idx int) (Node, error) {
	ref, ok := e.X.(*sqlparser.ColumnRef)
	if !ok {
		return nil, fmt.Errorf("IN (SELECT ...) requires a plain column on the left, got %s", e.X.SQL())
	}
	leftIdx, err := cur.Schema().Resolve(ref.Qualifier, ref.Name)
	if err != nil {
		return nil, fmt.Errorf("IN subquery: %w", err)
	}
	sub, err := b.buildSelect(e.Select)
	if err != nil {
		return nil, fmt.Errorf("IN subquery: %w", err)
	}
	if sub.Schema().Len() != 1 {
		return nil, fmt.Errorf("IN subquery must select exactly one column, got %d", sub.Schema().Len())
	}
	binding := fmt.Sprintf("_in%d", idx)
	bound, err := NewRebind(sub, binding)
	if err != nil {
		return nil, err
	}
	var right Node = bound
	// Deduplicate unless the subquery provably yields distinct values
	// (e.g. its column is the sole grouping key).
	if !distinctOnCol(sub, 0) {
		col := bound.Schema().Cols[0]
		agg, err := NewAggregate(bound,
			[]sqlparser.Expr{&sqlparser.ColumnRef{Qualifier: binding, Name: col.Name}},
			[]string{col.Name}, nil)
		if err != nil {
			return nil, fmt.Errorf("IN subquery dedup: %w", err)
		}
		right = agg
	}
	// The subquery side is planner-internal: hide its column from
	// unqualified resolution so it never makes user references ambiguous.
	right.Schema().Cols[0].Hidden = true
	return NewJoin(sqlparser.InnerJoin, cur, right, []int{leftIdx}, []int{0}, nil)
}

// distinctOnCol reports whether column col of n provably holds distinct
// values per row (so a semi-join needs no deduplication).
func distinctOnCol(n Node, col int) bool {
	switch x := n.(type) {
	case *Aggregate:
		return len(x.GroupBy) == 1 && col == 0
	case *Filter:
		return distinctOnCol(x.Child, col)
	case *Rebind:
		return distinctOnCol(x.Child, col)
	case *Limit:
		return distinctOnCol(x.Child, col)
	case *Sort:
		return distinctOnCol(x.Child, col)
	case *Project:
		ref, ok := x.Exprs[col].(*sqlparser.ColumnRef)
		if !ok {
			return false
		}
		idx, err := x.Child.Schema().Resolve(ref.Qualifier, ref.Name)
		if err != nil {
			return false
		}
		return distinctOnCol(x.Child, idx)
	default:
		return false
	}
}

// equiKeyPair recognizes `a = b` conjuncts whose sides resolve on opposite
// inputs and returns the column indices (left, right).
func equiKeyPair(c sqlparser.Expr, left, right *exec.Schema) (int, int, bool) {
	be, ok := c.(*sqlparser.BinaryExpr)
	if !ok || be.Op != sqlparser.OpEq {
		return 0, 0, false
	}
	lc, ok := be.L.(*sqlparser.ColumnRef)
	if !ok {
		return 0, 0, false
	}
	rc, ok := be.R.(*sqlparser.ColumnRef)
	if !ok {
		return 0, 0, false
	}
	if li, err := left.Resolve(lc.Qualifier, lc.Name); err == nil {
		if ri, err := right.Resolve(rc.Qualifier, rc.Name); err == nil {
			// Reject if the ref is resolvable on both sides (ambiguous).
			if _, err := right.Resolve(lc.Qualifier, lc.Name); err == nil {
				return 0, 0, false
			}
			if _, err := left.Resolve(rc.Qualifier, rc.Name); err == nil {
				return 0, 0, false
			}
			return li, ri, true
		}
	}
	// Try the flipped orientation.
	if li, err := left.Resolve(rc.Qualifier, rc.Name); err == nil {
		if ri, err := right.Resolve(lc.Qualifier, lc.Name); err == nil {
			if _, err := right.Resolve(rc.Qualifier, rc.Name); err == nil {
				return 0, 0, false
			}
			if _, err := left.Resolve(lc.Qualifier, lc.Name); err == nil {
				return 0, 0, false
			}
			return li, ri, true
		}
	}
	return 0, 0, false
}

// rejectNestedSubquery errors when e contains an IN-subquery anywhere; the
// semi-join rewrite only applies to whole WHERE conjuncts.
func rejectNestedSubquery(e sqlparser.Expr) error {
	var found bool
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if _, ok := x.(*sqlparser.InSubqueryExpr); ok {
			found = true
			return false
		}
		return !found
	})
	if found {
		return fmt.Errorf("IN (SELECT ...) is only supported as a top-level WHERE conjunct: %s", e.SQL())
	}
	return nil
}

// exprResolves reports whether every column reference in e resolves
// unambiguously against s.
func exprResolves(e sqlparser.Expr, s *exec.Schema) bool {
	ok := true
	for _, ref := range sqlparser.ColumnRefs(e) {
		if _, err := s.Resolve(ref.Qualifier, ref.Name); err != nil {
			ok = false
			break
		}
	}
	return ok
}

func describeRef(n Node) string {
	switch x := n.(type) {
	case *Scan:
		return x.Binding
	case *Filter:
		return describeRef(x.Child)
	case *Rebind:
		return x.Binding
	default:
		return "derived table"
	}
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

// buildAggregation inserts an Aggregate (plus HAVING filter) when the
// statement groups or aggregates, and returns a statement copy whose
// select/order expressions are rewritten against the aggregate output.
func (b *builder) buildAggregation(cur Node, stmt *sqlparser.SelectStmt) (Node, *sqlparser.SelectStmt, error) {
	hasAggs := stmt.Having != nil
	for _, item := range stmt.Select {
		if !item.Star && sqlparser.ContainsAggregate(item.Expr) {
			hasAggs = true
		}
	}
	for _, o := range stmt.OrderBy {
		if sqlparser.ContainsAggregate(o.Expr) {
			hasAggs = true
		}
	}
	if !hasAggs && len(stmt.GroupBy) == 0 {
		return cur, stmt, nil
	}

	aliasSubs := selectAliasSubs(stmt)

	// Resolve grouping expressions (allowing select-alias references).
	groupBy := make([]sqlparser.Expr, 0, len(stmt.GroupBy))
	groupNames := make([]string, 0, len(stmt.GroupBy))
	subs := make(map[string]sqlparser.Expr)
	seenGroup := make(map[string]bool)
	for i, g := range stmt.GroupBy {
		aliasKey := ""
		if ref, ok := g.(*sqlparser.ColumnRef); ok && ref.Qualifier == "" {
			if !exprResolves(g, cur.Schema()) {
				if sub, ok := aliasSubs[strings.ToLower(ref.Name)]; ok {
					if sqlparser.ContainsAggregate(sub) {
						return nil, nil, fmt.Errorf("GROUP BY %s refers to an aggregate", ref.Name)
					}
					aliasKey = g.SQL()
					g = sub
				}
			}
		}
		if !exprResolves(g, cur.Schema()) {
			if _, err := exec.Compile(g, cur.Schema()); err != nil {
				return nil, nil, fmt.Errorf("GROUP BY %s: %w", g.SQL(), err)
			}
		}
		if seenGroup[g.SQL()] {
			continue
		}
		seenGroup[g.SQL()] = true
		name := "_g" + strconv.Itoa(i)
		if ref, ok := g.(*sqlparser.ColumnRef); ok {
			name = ref.Name
		} else if aliasKey != "" {
			name = aliasKey
		}
		groupBy = append(groupBy, g)
		groupNames = append(groupNames, name)
	}

	// Collect distinct aggregate calls from select, having and order by.
	var aggs []AggSpec
	aggIndex := make(map[string]string) // call SQL -> output name
	collect := func(e sqlparser.Expr) error {
		var werr error
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			f, ok := x.(*sqlparser.FuncCall)
			if !ok || !f.IsAggregate() {
				return true
			}
			key := f.SQL()
			if _, seen := aggIndex[key]; seen {
				return false
			}
			kind, err := exec.AggKindOf(f)
			if err != nil {
				werr = err
				return false
			}
			var arg sqlparser.Expr
			if !f.Star {
				arg = f.Args[0]
				if sqlparser.ContainsAggregate(arg) {
					werr = fmt.Errorf("nested aggregate in %s", key)
					return false
				}
				if !exprResolves(arg, cur.Schema()) {
					if _, cerr := exec.Compile(arg, cur.Schema()); cerr != nil {
						werr = fmt.Errorf("aggregate %s: %w", key, cerr)
						return false
					}
				}
			}
			name := "_a" + strconv.Itoa(len(aggs))
			aggs = append(aggs, AggSpec{Kind: kind, Arg: arg, Name: name})
			aggIndex[key] = name
			return false // do not descend into aggregate arguments
		})
		return werr
	}
	for _, item := range stmt.Select {
		if item.Star {
			return nil, nil, fmt.Errorf("SELECT * cannot be combined with aggregation")
		}
		if err := collect(item.Expr); err != nil {
			return nil, nil, err
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, nil, err
		}
	}
	for _, o := range stmt.OrderBy {
		if err := collect(o.Expr); err != nil {
			return nil, nil, err
		}
	}

	agg, err := NewAggregate(cur, groupBy, groupNames, aggs)
	if err != nil {
		return nil, nil, err
	}

	// Substitutions: group expressions and aggregate calls become references
	// to the aggregate's output columns.
	for i, g := range groupBy {
		subs[g.SQL()] = &sqlparser.ColumnRef{Qualifier: agg.GroupQuals[i], Name: agg.GroupNames[i]}
		// Unqualified spelling of a qualified group column also resolves,
		// provided it is unambiguous in the aggregate output.
		if ref, ok := g.(*sqlparser.ColumnRef); ok && ref.Qualifier != "" {
			bare := (&sqlparser.ColumnRef{Name: ref.Name}).SQL()
			if _, exists := subs[bare]; !exists {
				if _, rerr := agg.Schema().Resolve("", ref.Name); rerr == nil {
					subs[bare] = &sqlparser.ColumnRef{Name: ref.Name}
				}
			}
		}
	}
	for key, name := range aggIndex {
		subs[key] = &sqlparser.ColumnRef{Name: name}
	}
	// Select aliases that named group expressions map to the same outputs.
	for alias, e := range aliasSubs {
		if r, ok := subs[e.SQL()]; ok {
			if _, exists := subs[alias]; !exists {
				subs[alias] = r
			}
		}
	}

	var out Node = agg
	if stmt.Having != nil {
		having := RewriteExpr(stmt.Having, subs)
		if _, err := exec.Compile(having, out.Schema()); err != nil {
			return nil, nil, fmt.Errorf("HAVING: %w", err)
		}
		out = &Filter{Child: out, Cond: having}
	}

	// Rewrite the statement's output expressions against the aggregate.
	newStmt := *stmt
	newStmt.Select = make([]sqlparser.SelectItem, len(stmt.Select))
	for i, item := range stmt.Select {
		newStmt.Select[i] = sqlparser.SelectItem{
			Expr:  RewriteExpr(item.Expr, subs),
			Alias: item.Alias,
		}
	}
	newStmt.OrderBy = make([]sqlparser.OrderItem, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		newStmt.OrderBy[i] = sqlparser.OrderItem{Expr: RewriteExpr(o.Expr, subs), Desc: o.Desc}
	}
	newStmt.GroupBy = nil
	newStmt.Having = nil
	return out, &newStmt, nil
}

// selectAliasSubs maps lower-cased select aliases to their expressions.
func selectAliasSubs(stmt *sqlparser.SelectStmt) map[string]sqlparser.Expr {
	out := make(map[string]sqlparser.Expr)
	for _, item := range stmt.Select {
		if item.Alias != "" && item.Expr != nil {
			out[strings.ToLower(item.Alias)] = item.Expr
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Projection
// ---------------------------------------------------------------------------

// buildProjection creates the final projection and returns substitutions
// mapping each projected expression (and its alias) to a reference of the
// corresponding output column, for use by ORDER BY.
func (b *builder) buildProjection(cur Node, stmt *sqlparser.SelectStmt) (Node, map[string]sqlparser.Expr, error) {
	var exprs []sqlparser.Expr
	var names []string
	schema := cur.Schema()
	for i, item := range stmt.Select {
		if item.Star {
			for _, c := range schema.Cols {
				if c.Hidden {
					continue // planner-internal columns never reach `*`
				}
				if item.StarQualifier != "" && !strings.EqualFold(c.Table, item.StarQualifier) {
					continue
				}
				exprs = append(exprs, &sqlparser.ColumnRef{Qualifier: c.Table, Name: c.Name})
				names = append(names, c.Name)
			}
			if item.StarQualifier != "" && len(exprs) == 0 {
				return nil, nil, fmt.Errorf("unknown table %q in %s.*", item.StarQualifier, item.StarQualifier)
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if ref, ok := item.Expr.(*sqlparser.ColumnRef); ok {
				name = ref.Name
			} else {
				name = "_c" + strconv.Itoa(i)
			}
		}
		exprs = append(exprs, item.Expr)
		names = append(names, name)
	}
	if len(exprs) == 0 {
		return nil, nil, fmt.Errorf("empty select list")
	}
	p, err := NewProject(cur, exprs, names)
	if err != nil {
		return nil, nil, err
	}
	subs := make(map[string]sqlparser.Expr, 2*len(exprs))
	for i, e := range exprs {
		out := &sqlparser.ColumnRef{Name: names[i]}
		if _, ok := subs[e.SQL()]; !ok {
			subs[e.SQL()] = out
		}
		if _, ok := subs[names[i]]; !ok {
			subs[names[i]] = out
		}
	}
	return p, subs, nil
}
