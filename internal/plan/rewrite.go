package plan

import "ysmart/internal/sqlparser"

// RewriteExpr returns a copy of e in which every subtree whose rendered SQL
// equals a key of subs is replaced by the mapped expression. Replacement is
// pre-order: an enclosing match wins over matches inside it (so an
// aggregate call is replaced before its argument could be). The input
// expression is never mutated.
func RewriteExpr(e sqlparser.Expr, subs map[string]sqlparser.Expr) sqlparser.Expr {
	if e == nil {
		return nil
	}
	if r, ok := subs[e.SQL()]; ok {
		return r
	}
	switch x := e.(type) {
	case *sqlparser.ColumnRef, *sqlparser.Literal:
		return e
	case *sqlparser.BinaryExpr:
		return &sqlparser.BinaryExpr{
			Op: x.Op,
			L:  RewriteExpr(x.L, subs),
			R:  RewriteExpr(x.R, subs),
		}
	case *sqlparser.UnaryExpr:
		return &sqlparser.UnaryExpr{Op: x.Op, X: RewriteExpr(x.X, subs)}
	case *sqlparser.FuncCall:
		args := make([]sqlparser.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = RewriteExpr(a, subs)
		}
		return &sqlparser.FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star, Args: args}
	case *sqlparser.IsNullExpr:
		return &sqlparser.IsNullExpr{X: RewriteExpr(x.X, subs), Not: x.Not}
	case *sqlparser.InSubqueryExpr:
		// The subquery body belongs to its own scope and is never rewritten.
		return &sqlparser.InSubqueryExpr{X: RewriteExpr(x.X, subs), Select: x.Select}
	case *sqlparser.BetweenExpr:
		return &sqlparser.BetweenExpr{
			X:   RewriteExpr(x.X, subs),
			Lo:  RewriteExpr(x.Lo, subs),
			Hi:  RewriteExpr(x.Hi, subs),
			Not: x.Not,
		}
	case *sqlparser.InListExpr:
		items := make([]sqlparser.Expr, len(x.Items))
		for i, it := range x.Items {
			items[i] = RewriteExpr(it, subs)
		}
		return &sqlparser.InListExpr{X: RewriteExpr(x.X, subs), Items: items, Not: x.Not}
	case *sqlparser.CaseExpr:
		whens := make([]sqlparser.CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = sqlparser.CaseWhen{
				Cond: RewriteExpr(w.Cond, subs),
				Then: RewriteExpr(w.Then, subs),
			}
		}
		return &sqlparser.CaseExpr{Whens: whens, Else: RewriteExpr(x.Else, subs)}
	default:
		return e
	}
}
