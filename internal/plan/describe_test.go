package plan

import (
	"strings"
	"testing"

	"ysmart/internal/sqlparser"
)

// Display-surface coverage: Describe/String methods are part of the explain
// UX, so their content is pinned here.

func TestNodeDescribe(t *testing.T) {
	root := mustBuild(t, `
		SELECT s.n FROM
		  (SELECT cid, count(*) AS n FROM clicks GROUP BY cid) AS s
		ORDER BY s.n DESC LIMIT 7`)
	texts := map[string]bool{}
	Walk(root, func(n Node) { texts[n.Describe()] = true })

	var all []string
	for txt := range texts {
		all = append(all, txt)
	}
	joined := strings.Join(all, "\n")
	for _, want := range []string{"Scan clicks", "Aggregate", "As s", "Sort n DESC", "Limit 7", "Project"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Describe output missing %q:\n%s", want, joined)
		}
	}
}

func TestScanDescribeWithAlias(t *testing.T) {
	root := mustBuild(t, "SELECT c.uid FROM clicks AS c")
	s, _ := findNode[*Scan](root)
	if got := s.Describe(); got != "Scan clicks AS c" {
		t.Errorf("Describe = %q", got)
	}
}

func TestJoinDescribeWithResidual(t *testing.T) {
	root := mustBuild(t, `SELECT lineitem.l_orderkey FROM lineitem
		LEFT OUTER JOIN orders ON o_orderkey = l_orderkey AND o_totalprice > 5`)
	j, _ := findNode[*Join](root)
	d := j.Describe()
	if !strings.Contains(d, "LEFT OUTER JOIN") || !strings.Contains(d, "o_totalprice") {
		t.Errorf("Describe = %q", d)
	}
}

func TestLimitNodeAccessors(t *testing.T) {
	root := mustBuild(t, "SELECT uid FROM clicks ORDER BY uid LIMIT 2")
	l, ok := root.(*Limit)
	if !ok {
		t.Fatalf("root is %T", root)
	}
	if l.Schema().Len() != 1 || len(l.Lineage()) != 1 || len(l.Children()) != 1 {
		t.Error("Limit accessors inconsistent")
	}
}

func TestPartKeyAndComponentString(t *testing.T) {
	pk := PartKey{
		NewKeyComponent(cid("lineitem", "l_partkey"), cid("part", "p_partkey")),
		NewKeyComponent(),
	}
	got := pk.String()
	if !strings.Contains(got, "lineitem.l_partkey=part.p_partkey") || !strings.Contains(got, "{}") {
		t.Errorf("String = %q", got)
	}
	if (PartKey{}).String() != "(none)" {
		t.Errorf("empty PartKey String = %q", (PartKey{}).String())
	}
}

func TestJoinTypeString(t *testing.T) {
	for jt, want := range map[sqlparser.JoinType]string{
		sqlparser.InnerJoin:      "JOIN",
		sqlparser.LeftOuterJoin:  "LEFT OUTER JOIN",
		sqlparser.RightOuterJoin: "RIGHT OUTER JOIN",
		sqlparser.FullOuterJoin:  "FULL OUTER JOIN",
		sqlparser.CrossJoin:      "CROSS JOIN",
	} {
		if got := jt.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", jt, got, want)
		}
	}
}

func TestNewJoinValidation(t *testing.T) {
	root := mustBuild(t, "SELECT uid FROM clicks")
	scan, _ := findNode[*Scan](root)
	if _, err := NewJoin(sqlparser.InnerJoin, scan, scan, []int{0}, []int{0, 1}, nil); err == nil {
		t.Error("mismatched key lengths should fail")
	}
	if _, err := NewJoin(sqlparser.InnerJoin, scan, scan, nil, nil, nil); err == nil {
		t.Error("empty keys should fail")
	}
}

func TestSelfJoinTableThroughChain(t *testing.T) {
	// Scans wrapped in project + rebind still count as the same table.
	root := mustBuild(t, `
		SELECT a.u FROM
		  (SELECT uid AS u FROM clicks WHERE cid = 1) AS a,
		  (SELECT uid AS u2, ts FROM clicks) AS b
		WHERE a.u = b.u2`)
	j, ok := findNode[*Join](root)
	if !ok {
		t.Fatal("no join")
	}
	table, self := j.SelfJoinTable()
	if !self || table != "clicks" {
		t.Errorf("SelfJoinTable = (%q, %v), want (clicks, true)", table, self)
	}

	// A join input is not a sole base table.
	root2 := mustBuild(t, `
		SELECT c1.uid FROM clicks c1,
		  (SELECT c2.uid AS u FROM clicks c2, part WHERE c2.cid = p_partkey) AS x
		WHERE c1.uid = x.u`)
	var outer *Join
	Walk(root2, func(n Node) {
		if j, ok := n.(*Join); ok {
			if _, isScan := j.Left.(*Scan); isScan {
				outer = j
			}
		}
	})
	if outer == nil {
		t.Fatal("outer join not found")
	}
	if _, self := outer.SelfJoinTable(); self {
		t.Error("join-fed input must not report a self-join")
	}
}

// TestRewriteExprCoversAllNodeKinds pushes a substitution through every
// expression node type.
func TestRewriteExprCoversAllNodeKinds(t *testing.T) {
	stmt, err := sqlparser.Parse(`SELECT
		CASE WHEN x IS NULL THEN 1 WHEN x BETWEEN lo AND hi THEN 2 ELSE 3 END,
		x IN (1, y, 3),
		NOT (x > 0),
		upper(s),
		x IS NOT NULL,
		x NOT BETWEEN 1 AND 2,
		y NOT IN (4, 5)
		FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	subs := map[string]sqlparser.Expr{"x": &sqlparser.ColumnRef{Name: "z"}}
	for i, item := range stmt.Select {
		out := RewriteExpr(item.Expr, subs)
		if strings.Contains(out.SQL(), "x") {
			t.Errorf("item %d: substitution missed: %s", i, out.SQL())
		}
		// Structure is otherwise preserved.
		if len(out.SQL()) != len(item.Expr.SQL()) {
			t.Errorf("item %d: length changed: %s -> %s", i, item.Expr.SQL(), out.SQL())
		}
	}
}
