package plan

import (
	"strings"
	"testing"

	"ysmart/internal/sqlparser"
)

// Plan-level structure of the IN-subquery semi-join rewrite (end-to-end
// behaviour is covered in internal/translator).

func TestInSubqueryBecomesSemiJoin(t *testing.T) {
	n := mustBuild(t, `
		SELECT uid, ts FROM clicks
		WHERE uid IN (SELECT uid FROM clicks WHERE cid = 2)`)
	j, ok := findNode[*Join](n)
	if !ok {
		t.Fatal("no join in plan")
	}
	// The subquery side is deduplicated (raw uid column is not distinct).
	if _, ok := j.Right.(*Aggregate); !ok {
		t.Errorf("right side is %T, want dedup *Aggregate", j.Right)
	}
	// Its column is hidden from unqualified resolution...
	if !j.Schema().Cols[j.Left.Schema().Len()].Hidden {
		t.Error("subquery column should be hidden")
	}
	// ...so the outer uid still resolves unambiguously.
	if _, err := j.Schema().Resolve("", "uid"); err != nil {
		t.Errorf("outer uid became ambiguous: %v", err)
	}
}

func TestInSubquerySkipsDedupWhenDistinct(t *testing.T) {
	n := mustBuild(t, `
		SELECT uid FROM clicks
		WHERE uid IN (SELECT uid FROM clicks GROUP BY uid HAVING count(*) > 2)`)
	j, ok := findNode[*Join](n)
	if !ok {
		t.Fatal("no join")
	}
	// The grouped subquery is already distinct on uid: the right side is
	// the rebound subquery, not an extra aggregate.
	if _, ok := j.Right.(*Rebind); !ok {
		t.Errorf("right side is %T, want *Rebind (no dedup)", j.Right)
	}
}

func TestInSubqueryErrorsAtPlanLevel(t *testing.T) {
	tests := []struct {
		name, sql, want string
	}{
		{"expression lhs", "SELECT uid FROM clicks WHERE uid * 2 IN (SELECT uid FROM clicks)", "plain column"},
		{"two columns", "SELECT uid FROM clicks WHERE uid IN (SELECT uid, ts FROM clicks)", "exactly one column"},
		{"nested", "SELECT uid FROM clicks WHERE NOT (uid IN (SELECT uid FROM clicks))", "top-level WHERE conjunct"},
		{"unknown lhs", "SELECT uid FROM clicks WHERE zz IN (SELECT uid FROM clicks)", "unknown column"},
		{"bad subquery", "SELECT uid FROM clicks WHERE uid IN (SELECT zz FROM clicks)", "unknown column"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			stmt, err := sqlparser.Parse(tt.sql)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Build(stmt, testCatalog())
			if err == nil {
				t.Fatalf("Build succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestDistinctOnColBranches(t *testing.T) {
	// Sort above the distinct aggregate keeps distinctness; computed
	// projections lose it.
	distinct := mustBuild(t, "SELECT uid FROM clicks GROUP BY uid ORDER BY uid")
	if !distinctOnCol(distinct, 0) {
		t.Error("sorted grouped column should stay distinct")
	}
	computed := mustBuild(t, "SELECT uid + 1 AS u2 FROM clicks GROUP BY uid")
	if distinctOnCol(computed, 0) {
		t.Error("computed projection must not claim distinctness")
	}
	raw := mustBuild(t, "SELECT uid FROM clicks")
	if distinctOnCol(raw, 0) {
		t.Error("raw scan column is not distinct")
	}
	twoGroups := mustBuild(t, "SELECT uid, cid FROM clicks GROUP BY uid, cid")
	if distinctOnCol(twoGroups, 0) {
		t.Error("one column of a two-column group key is not distinct")
	}
}

func TestStarExcludesHiddenSemiJoinColumn(t *testing.T) {
	n := mustBuild(t, `SELECT * FROM clicks WHERE uid IN (SELECT uid FROM clicks WHERE cid = 2)`)
	// Exactly the four clicks columns, no _in0 leak.
	if n.Schema().Len() != 4 {
		t.Fatalf("star expanded to %s, want the 4 clicks columns", n.Schema())
	}
	for _, c := range n.Schema().Cols {
		if strings.Contains(c.Name, "_in") {
			t.Errorf("internal column leaked: %s", c.QualifiedName())
		}
	}
}
