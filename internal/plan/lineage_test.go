package plan

import (
	"testing"

	"ysmart/internal/sqlparser"
)

func cid(t, c string) ColumnID { return MakeColumnID(t, c) }

func TestColumnID(t *testing.T) {
	if !(ColumnID{}).IsZero() {
		t.Error("zero ColumnID should be IsZero")
	}
	if cid("T", "C") != (ColumnID{Table: "t", Column: "c"}) {
		t.Error("MakeColumnID should lower-case")
	}
	if cid("t", "c").String() != "t.c" {
		t.Errorf("String = %q", cid("t", "c").String())
	}
	if (ColumnID{}).String() != "<computed>" {
		t.Errorf("zero String = %q", (ColumnID{}).String())
	}
}

func TestKeyComponentIntersects(t *testing.T) {
	a := NewKeyComponent(cid("lineitem", "l_partkey"), cid("part", "p_partkey"))
	b := NewKeyComponent(cid("lineitem", "l_partkey"))
	c := NewKeyComponent(cid("orders", "o_orderkey"))
	empty := NewKeyComponent()

	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	if a.Intersects(empty) || empty.Intersects(empty) {
		t.Error("empty component intersects nothing")
	}
	// Zero IDs are dropped.
	if len(NewKeyComponent(ColumnID{}, cid("t", "c"))) != 1 {
		t.Error("zero ColumnID should be skipped")
	}
}

func TestPartKeyEqual(t *testing.T) {
	l := cid("lineitem", "l_partkey")
	p := cid("part", "p_partkey")
	o := cid("orders", "o_orderkey")
	u := cid("clicks", "uid")
	ts := cid("clicks", "ts")

	tests := []struct {
		name string
		a, b PartKey
		want bool
	}{
		{
			"equi-join alias matches single column",
			PartKey{NewKeyComponent(l, p)},
			PartKey{NewKeyComponent(l)},
			true,
		},
		{
			"matches through the other alias too",
			PartKey{NewKeyComponent(l, p)},
			PartKey{NewKeyComponent(p)},
			true,
		},
		{
			"different columns do not match",
			PartKey{NewKeyComponent(l)},
			PartKey{NewKeyComponent(o)},
			false,
		},
		{
			"different lengths do not match",
			PartKey{NewKeyComponent(u)},
			PartKey{NewKeyComponent(u), NewKeyComponent(ts)},
			false,
		},
		{
			"two components match in any order",
			PartKey{NewKeyComponent(u), NewKeyComponent(ts)},
			PartKey{NewKeyComponent(ts), NewKeyComponent(u)},
			true,
		},
		{
			"matching is a bijection, not a multimap",
			PartKey{NewKeyComponent(u), NewKeyComponent(u)},
			PartKey{NewKeyComponent(u), NewKeyComponent(ts)},
			false,
		},
		{
			"empty components never match",
			PartKey{NewKeyComponent()},
			PartKey{NewKeyComponent()},
			false,
		},
		{
			"empty keys are equal",
			PartKey{},
			PartKey{},
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Equal(tt.b); got != tt.want {
				t.Errorf("Equal(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Equal(tt.a); got != tt.want {
				t.Errorf("Equal is not symmetric for %v, %v", tt.a, tt.b)
			}
		})
	}
}

func TestAggregateCandidatePKs(t *testing.T) {
	n := mustBuild(t, "SELECT uid, ts, count(*) FROM clicks GROUP BY uid, ts")
	agg, ok := findNode[*Aggregate](n)
	if !ok {
		t.Fatal("no aggregate")
	}
	cands := agg.CandidatePKs()
	// Non-empty subsets of 2 columns: {0}, {1}, {0,1} — singletons first.
	if len(cands) != 3 {
		t.Fatalf("candidates = %v, want 3", cands)
	}
	if len(cands[0]) != 1 || len(cands[1]) != 1 || len(cands[2]) != 2 {
		t.Errorf("candidate sizes wrong: %v", cands)
	}

	// PartKeyFor singleton uid matches a join on clicks.uid.
	uidPK := agg.PartKeyFor([]int{0})
	joinPK := PartKey{NewKeyComponent(cid("clicks", "uid"))}
	if !uidPK.Equal(joinPK) {
		t.Errorf("PartKeyFor(uid) = %v, want equal to %v", uidPK, joinPK)
	}

	// Default choice is all grouping columns.
	if got := agg.PartKey(); len(got) != 2 {
		t.Errorf("default PK = %v, want 2 components", got)
	}
}

// The Q17 scenario from the paper (§IV.B): AGG1 on lineitem grouped by
// l_partkey, JOIN1 = lineitem ⋈ part on l_partkey = p_partkey, and JOIN2
// joining the two on l_partkey. All three partition keys must be equal.
func TestQ17PartitionKeysAllEqual(t *testing.T) {
	n := mustBuild(t, `
		SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
		FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
		      FROM lineitem GROUP BY l_partkey) AS inner_t,
		     (SELECT l_partkey, l_quantity, l_extendedprice
		      FROM lineitem, part
		      WHERE p_partkey = l_partkey) AS outer_t
		WHERE outer_t.l_partkey = inner_t.l_partkey
		  AND outer_t.l_quantity < inner_t.t1`)

	joins := collectNodes[*Join](n)
	aggs := collectNodes[*Aggregate](n)
	if len(joins) != 2 {
		t.Fatalf("joins = %d, want 2 (JOIN2 and JOIN1)", len(joins))
	}
	// Pre-order: joins[0] is JOIN2 (top), joins[1] is JOIN1 (lineitem⋈part).
	join2, join1 := joins[0], joins[1]

	var agg1 *Aggregate
	for _, a := range aggs {
		if len(a.GroupBy) == 1 {
			agg1 = a
		}
	}
	if agg1 == nil {
		t.Fatal("AGG1 (group by l_partkey) not found")
	}

	pkJoin1 := join1.PartKey()
	pkJoin2 := join2.PartKey()
	pkAgg1 := agg1.PartKeyFor([]int{0})

	if !pkJoin1.Equal(pkAgg1) {
		t.Errorf("JOIN1 pk %v != AGG1 pk %v (transit correlation prerequisite)", pkJoin1, pkAgg1)
	}
	if !pkJoin2.Equal(pkJoin1) {
		t.Errorf("JOIN2 pk %v != JOIN1 pk %v (job flow correlation prerequisite)", pkJoin2, pkJoin1)
	}
	if !pkJoin2.Equal(pkAgg1) {
		t.Errorf("JOIN2 pk %v != AGG1 pk %v (job flow correlation prerequisite)", pkJoin2, pkAgg1)
	}
}

// The Q-CSA scenario (§VII.A.2): AGG1 groups by (uid, ts1); its uid
// candidate must equal JOIN1's PK so YSmart can pick it.
func TestQCSACandidateMatchesJoin(t *testing.T) {
	n := mustBuild(t, `
		SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
		FROM clicks AS c1, clicks AS c2
		WHERE c1.uid = c2.uid AND c1.ts < c2.ts AND c1.cid = 1 AND c2.cid = 2
		GROUP BY c1.uid, c1.ts`)
	j, ok := findNode[*Join](n)
	if !ok {
		t.Fatal("no join")
	}
	agg, ok := findNode[*Aggregate](n)
	if !ok {
		t.Fatal("no aggregate")
	}
	joinPK := j.PartKey()
	uidCand := agg.PartKeyFor([]int{0}) // c1.uid
	tsCand := agg.PartKeyFor([]int{1})  // c1.ts
	if !uidCand.Equal(joinPK) {
		t.Errorf("uid candidate %v should equal join pk %v", uidCand, joinPK)
	}
	if tsCand.Equal(joinPK) {
		t.Errorf("ts candidate %v should NOT equal join pk %v", tsCand, joinPK)
	}
}

func TestRewriteExpr(t *testing.T) {
	stmt, err := sqlparser.Parse("SELECT count(*) - 2, uid + 1 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	subs := map[string]sqlparser.Expr{
		"COUNT(*)": &sqlparser.ColumnRef{Name: "_a0"},
		"uid":      &sqlparser.ColumnRef{Qualifier: "g", Name: "uid"},
	}
	got0 := RewriteExpr(stmt.Select[0].Expr, subs).SQL()
	if got0 != "(_a0 - 2)" {
		t.Errorf("rewrite 0 = %s, want (_a0 - 2)", got0)
	}
	got1 := RewriteExpr(stmt.Select[1].Expr, subs).SQL()
	if got1 != "(g.uid + 1)" {
		t.Errorf("rewrite 1 = %s, want (g.uid + 1)", got1)
	}
	// Original untouched.
	if stmt.Select[0].Expr.SQL() != "(COUNT(*) - 2)" {
		t.Error("RewriteExpr mutated its input")
	}
	if RewriteExpr(nil, subs) != nil {
		t.Error("RewriteExpr(nil) should be nil")
	}
}
