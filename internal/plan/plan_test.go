package plan

import (
	"strings"
	"testing"

	"ysmart/internal/exec"
	"ysmart/internal/sqlparser"
)

// testCatalog mirrors the tables used throughout the paper: the TPC-H
// subset (lineitem, orders, part) and the click-stream table.
func testCatalog() MapCatalog {
	return MapCatalog{
		"lineitem": exec.NewSchema(
			exec.Column{Name: "l_orderkey", Type: exec.TypeInt},
			exec.Column{Name: "l_partkey", Type: exec.TypeInt},
			exec.Column{Name: "l_suppkey", Type: exec.TypeInt},
			exec.Column{Name: "l_quantity", Type: exec.TypeFloat},
			exec.Column{Name: "l_extendedprice", Type: exec.TypeFloat},
			exec.Column{Name: "l_receiptdate", Type: exec.TypeInt},
			exec.Column{Name: "l_commitdate", Type: exec.TypeInt},
		),
		"orders": exec.NewSchema(
			exec.Column{Name: "o_orderkey", Type: exec.TypeInt},
			exec.Column{Name: "o_custkey", Type: exec.TypeInt},
			exec.Column{Name: "o_orderstatus", Type: exec.TypeString},
			exec.Column{Name: "o_totalprice", Type: exec.TypeFloat},
		),
		"part": exec.NewSchema(
			exec.Column{Name: "p_partkey", Type: exec.TypeInt},
			exec.Column{Name: "p_name", Type: exec.TypeString},
		),
		"clicks": exec.NewSchema(
			exec.Column{Name: "uid", Type: exec.TypeInt},
			exec.Column{Name: "page", Type: exec.TypeInt},
			exec.Column{Name: "cid", Type: exec.TypeInt},
			exec.Column{Name: "ts", Type: exec.TypeInt},
		),
	}
}

func mustBuild(t *testing.T, sql string) Node {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := Build(stmt, testCatalog())
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	return n
}

// findNode returns the first node of type T in pre-order.
func findNode[T Node](n Node) (T, bool) {
	var zero T
	var found T
	ok := false
	Walk(n, func(m Node) {
		if ok {
			return
		}
		if t, is := m.(T); is {
			found, ok = t, true
		}
	})
	if !ok {
		return zero, false
	}
	return found, true
}

// collectNodes returns all nodes of type T in pre-order.
func collectNodes[T Node](n Node) []T {
	var out []T
	Walk(n, func(m Node) {
		if t, is := m.(T); is {
			out = append(out, t)
		}
	})
	return out
}

func TestBuildSimpleScanFilterProject(t *testing.T) {
	n := mustBuild(t, "SELECT uid, ts FROM clicks WHERE cid = 5")
	p, ok := n.(*Project)
	if !ok {
		t.Fatalf("root is %T, want *Project", n)
	}
	if p.Schema().Len() != 2 {
		t.Fatalf("schema = %s, want 2 cols", p.Schema())
	}
	f, ok := p.Child.(*Filter)
	if !ok {
		t.Fatalf("child is %T, want *Filter", p.Child)
	}
	if _, ok := f.Child.(*Scan); !ok {
		t.Fatalf("grandchild is %T, want *Scan", f.Child)
	}
	// Lineage of both output columns traces to clicks.
	lin := p.Lineage()
	if lin[0] != MakeColumnID("clicks", "uid") || lin[1] != MakeColumnID("clicks", "ts") {
		t.Errorf("lineage = %v", lin)
	}
}

func TestBuildCommaJoinExtractsKeys(t *testing.T) {
	n := mustBuild(t, `SELECT l_partkey FROM lineitem, part WHERE p_partkey = l_partkey AND l_quantity > 5`)
	j, ok := findNode[*Join](n)
	if !ok {
		t.Fatal("no join in plan")
	}
	if len(j.LeftKeys) != 1 || len(j.RightKeys) != 1 {
		t.Fatalf("keys = %v/%v, want 1 pair", j.LeftKeys, j.RightKeys)
	}
	// The single-table predicate must be pushed below the join.
	if _, ok := j.Left.(*Filter); !ok {
		t.Errorf("left child is %T, want *Filter (pushdown of l_quantity > 5)", j.Left)
	}
	// Join PK must contain both lineage IDs in one component.
	pk := j.PartKey()
	if len(pk) != 1 {
		t.Fatalf("pk = %v, want one component", pk)
	}
	if !pk[0][MakeColumnID("lineitem", "l_partkey")] || !pk[0][MakeColumnID("part", "p_partkey")] {
		t.Errorf("pk component = %v, want {lineitem.l_partkey, part.p_partkey}", pk[0])
	}
}

func TestBuildSelfJoinDetection(t *testing.T) {
	n := mustBuild(t, `SELECT c1.uid FROM clicks AS c1, clicks AS c2
		WHERE c1.uid = c2.uid AND c1.ts < c2.ts AND c1.cid = 1 AND c2.cid = 2`)
	j, ok := findNode[*Join](n)
	if !ok {
		t.Fatal("no join in plan")
	}
	table, isSelf := j.SelfJoinTable()
	if !isSelf || table != "clicks" {
		t.Errorf("SelfJoinTable = (%q, %v), want (clicks, true)", table, isSelf)
	}
	// c1.ts < c2.ts spans both sides: must be a post-join filter.
	if _, ok := findNode[*Filter](n); !ok {
		t.Error("expected post-join filter for c1.ts < c2.ts")
	}
	// PK is uid on both sides — same base column.
	pk := j.PartKey()
	if len(pk) != 1 || !pk[0][MakeColumnID("clicks", "uid")] {
		t.Errorf("pk = %v, want {clicks.uid}", pk)
	}
}

func TestBuildExplicitLeftOuterJoin(t *testing.T) {
	n := mustBuild(t, `SELECT lineitem.l_orderkey FROM lineitem
		LEFT OUTER JOIN orders ON o_orderkey = l_orderkey AND o_totalprice > 100
		WHERE o_orderkey IS NULL`)
	j, ok := findNode[*Join](n)
	if !ok {
		t.Fatal("no join")
	}
	if j.Type != sqlparser.LeftOuterJoin {
		t.Errorf("type = %v, want LEFT OUTER", j.Type)
	}
	if j.Residual == nil {
		t.Error("non-equi ON conjunct should be residual")
	}
	// IS NULL is a post-join WHERE filter.
	root := n.(*Project)
	if _, ok := root.Child.(*Filter); !ok {
		t.Errorf("project child is %T, want *Filter", root.Child)
	}
}

func TestBuildAggregateRewriting(t *testing.T) {
	n := mustBuild(t, "SELECT cid, count(*) AS n FROM clicks GROUP BY cid")
	p := n.(*Project)
	agg, ok := p.Child.(*Aggregate)
	if !ok {
		t.Fatalf("project child is %T, want *Aggregate", p.Child)
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 1 {
		t.Fatalf("agg = %s", agg.Describe())
	}
	if agg.Aggs[0].Kind != exec.AggCountStar {
		t.Errorf("agg kind = %v", agg.Aggs[0].Kind)
	}
	// Output schema: cid int, n int.
	s := p.Schema()
	if s.Cols[0].Name != "cid" || s.Cols[1].Name != "n" || s.Cols[1].Type != exec.TypeInt {
		t.Errorf("schema = %s", s)
	}
	// Project expressions must be rewritten column refs, not the aggregate.
	if sqlparser.ContainsAggregate(p.Exprs[1]) {
		t.Errorf("select expr not rewritten: %s", p.Exprs[1].SQL())
	}
}

func TestBuildGlobalAggregate(t *testing.T) {
	n := mustBuild(t, "SELECT sum(l_extendedprice) / 7.0 AS avg_yearly FROM lineitem")
	agg, ok := findNode[*Aggregate](n)
	if !ok {
		t.Fatal("no aggregate")
	}
	if len(agg.GroupBy) != 0 {
		t.Errorf("group by = %v, want none", agg.GroupBy)
	}
	if len(agg.CandidatePKs()) != 0 {
		t.Error("global aggregate should have no PK candidates")
	}
	if n.Schema().Cols[0].Name != "avg_yearly" || n.Schema().Cols[0].Type != exec.TypeFloat {
		t.Errorf("schema = %s", n.Schema())
	}
}

func TestBuildHaving(t *testing.T) {
	n := mustBuild(t, "SELECT cid FROM clicks GROUP BY cid HAVING count(*) > 10")
	// Filter must sit between Project and Aggregate and reference the
	// rewritten aggregate output.
	p := n.(*Project)
	f, ok := p.Child.(*Filter)
	if !ok {
		t.Fatalf("project child is %T, want *Filter (HAVING)", p.Child)
	}
	if sqlparser.ContainsAggregate(f.Cond) {
		t.Errorf("HAVING not rewritten: %s", f.Cond.SQL())
	}
	if _, ok := f.Child.(*Aggregate); !ok {
		t.Fatalf("filter child is %T, want *Aggregate", f.Child)
	}
}

func TestBuildGroupByAlias(t *testing.T) {
	n := mustBuild(t, "SELECT uid, ts AS ts1, count(*) FROM clicks GROUP BY uid, ts1")
	agg, ok := findNode[*Aggregate](n)
	if !ok {
		t.Fatal("no aggregate")
	}
	if len(agg.GroupBy) != 2 {
		t.Fatalf("group cols = %d, want 2", len(agg.GroupBy))
	}
	// Second group expr must be the substituted ts column.
	if ref, ok := agg.GroupBy[1].(*sqlparser.ColumnRef); !ok || !strings.EqualFold(ref.Name, "ts") {
		t.Errorf("group[1] = %s, want ts", agg.GroupBy[1].SQL())
	}
}

func TestBuildDerivedTable(t *testing.T) {
	n := mustBuild(t, `SELECT s.n FROM (SELECT cid, count(*) AS n FROM clicks GROUP BY cid) AS s WHERE s.n > 3`)
	rb, ok := findNode[*Rebind](n)
	if !ok {
		t.Fatal("no rebind for derived table")
	}
	if rb.Binding != "s" {
		t.Errorf("binding = %q", rb.Binding)
	}
	for _, c := range rb.Schema().Cols {
		if c.Table != "s" {
			t.Errorf("column %s not rebound to s", c.QualifiedName())
		}
	}
}

func TestBuildOrderByLimitDistinct(t *testing.T) {
	n := mustBuild(t, "SELECT DISTINCT cid FROM clicks ORDER BY cid DESC LIMIT 3")
	l, ok := n.(*Limit)
	if !ok {
		t.Fatalf("root is %T, want *Limit", n)
	}
	s, ok := l.Child.(*Sort)
	if !ok {
		t.Fatalf("limit child is %T, want *Sort", l.Child)
	}
	if !s.Keys[0].Desc {
		t.Error("sort key should be DESC")
	}
	if _, ok := findNode[*Aggregate](s); !ok {
		t.Error("DISTINCT should introduce an aggregate")
	}
}

func TestBuildErrors(t *testing.T) {
	tests := []struct {
		name string
		sql  string
		want string
	}{
		{"unknown table", "SELECT a FROM nosuch", "unknown table"},
		{"unknown column", "SELECT nosuch FROM clicks", "unknown column"},
		{"cross join comma", "SELECT 1 FROM clicks, part", "equi-join"},
		{"cross join explicit", "SELECT 1 FROM clicks CROSS JOIN part", "CROSS JOIN"},
		{"join without equi", "SELECT 1 FROM clicks c1 JOIN part ON c1.uid > p_partkey", "equi-join"},
		{"non-grouped column", "SELECT uid, count(*) FROM clicks GROUP BY cid", "unknown column"},
		{"star with group by", "SELECT * FROM clicks GROUP BY cid", "aggregation"},
		{"group by aggregate alias", "SELECT count(*) AS n FROM clicks GROUP BY n", "aggregate"},
		{"no from", "SELECT 1", "FROM"},
		{"order by unknown", "SELECT uid FROM clicks ORDER BY nosuch", "unknown column"},
		{"nested aggregate", "SELECT sum(count(*)) FROM clicks", "nested aggregate"},
		{"duplicate derived columns", "SELECT x.uid FROM (SELECT uid, uid FROM clicks) AS x", "duplicate column"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			stmt, err := sqlparser.Parse(tt.sql)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Build(stmt, testCatalog())
			if err == nil {
				t.Fatalf("Build(%q) succeeded, want error containing %q", tt.sql, tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestFormatRendersTree(t *testing.T) {
	n := mustBuild(t, "SELECT cid, count(*) FROM clicks WHERE uid > 0 GROUP BY cid")
	out := Format(n)
	for _, want := range []string{"Project", "Aggregate", "Filter", "Scan clicks"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	// Indentation deepens down the tree.
	if !strings.Contains(out, "\n  Aggregate") {
		t.Errorf("expected indented Aggregate:\n%s", out)
	}
}

func TestBaseTables(t *testing.T) {
	n := mustBuild(t, `SELECT c1.uid FROM clicks c1, clicks c2, part
		WHERE c1.uid = c2.uid AND c1.cid = p_partkey`)
	tables := BaseTables(n)
	if !tables["clicks"] || !tables["part"] || len(tables) != 2 {
		t.Errorf("BaseTables = %v", tables)
	}
}
