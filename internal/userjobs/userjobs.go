// Package userjobs contains deliberately naive hand-written MapReduce
// programs — the kind MANIMAL's authors observed in the wild: the mapper
// ships the whole decoded input row to the reducer, and selections that
// belong in the map phase (or before it) are evaluated in the reduce
// function. They are the subjects of the internal/optanalysis static
// analyzer, which infers early filters and live-column sets from their
// source and rewrites the jobs at run time; each program carries the SQL
// its output must stay byte-equivalent to, so tests can prove the
// rewrites change cost and nothing else.
//
// The programs stick to analyzable idioms on purpose: job names are
// string literals (the analyzer links source jobs to runtime jobs by
// name), rows decode through the package-level schema vars below, and
// map values are exec.EncodeRow of the unmodified decoded row.
package userjobs

import (
	"strconv"

	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
	"ysmart/internal/translator"
)

// Program is a runnable naive user program plus the SQL oracle its
// result rows must match.
type Program struct {
	// Jobs are the executable jobs in dependency order.
	Jobs []*mapreduce.Job
	// Output is the DFS path of the result; OutputSchema types its rows.
	Output       string
	OutputSchema *exec.Schema
	// OracleSQL is the equivalent SQL query, run against the DBMS oracle
	// to check the program (optimized or not) byte-for-byte.
	OracleSQL string
}

// ReadResult decodes the program's result rows.
func (p *Program) ReadResult(dfs *mapreduce.DFS) ([]exec.Row, error) {
	lines, err := dfs.Read(p.Output)
	if err != nil {
		return nil, err
	}
	rows := make([]exec.Row, 0, len(lines))
	for _, line := range lines {
		row, err := exec.DecodeRow(line, p.OutputSchema)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// All returns every naive program, freshly built.
func All() []*Program {
	return []*Program{AggNaive(), HighValueNaive(), LateShipNaive()}
}

func mustSchema(table string) *exec.Schema {
	s, ok := queries.Catalog().Table(table)
	if !ok {
		panic("userjobs: unknown table " + table)
	}
	return s
}

// Package-level schema vars: the analyzer resolves DecodeRow's schema
// argument through these to the catalog table named in the initializer.
var (
	clicksSchema   = mustSchema("clicks")
	ordersSchema   = mustSchema("orders")
	lineitemSchema = mustSchema("lineitem")
)

// AggNaive counts clicks per category, shipping the entire click row to
// the reducer even though the count reads none of it: every value column
// is dead, so projection trimming applies to all four.
func AggNaive() *Program {
	out := "tmp/agg-naive/result"
	job := &mapreduce.Job{
		Name: "agg-naive-j1",
		Inputs: []mapreduce.Input{{
			Path: translator.TablePath("clicks"),
			Mapper: mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
				row, err := exec.DecodeRow(line, clicksSchema)
				if err != nil {
					return err
				}
				emit(strconv.FormatInt(row[2].I, 10), exec.EncodeRow(row))
				return nil
			}),
		}},
		Reducer: mapreduce.ReducerFunc(func(key string, values []string, emit func(string)) error {
			emit(key + "\t" + strconv.FormatInt(int64(len(values)), 10))
			return nil
		}),
		Output: out,
	}
	return &Program{
		Jobs:   []*mapreduce.Job{job},
		Output: out,
		OutputSchema: exec.NewSchema(
			exec.Column{Name: "cid", Type: exec.TypeInt},
			exec.Column{Name: "click_count", Type: exec.TypeInt},
		),
		OracleSQL: "SELECT cid, count(*) AS click_count FROM clicks GROUP BY cid",
	}
}

// HighValueNaive lists the customer and price of every high-value order,
// but evaluates the price selection in the reducer: the analyzer pushes
// the guard down to the map output (dropping the pairs the reducer would
// skip) and trims every column the reducer never reads.
func HighValueNaive() *Program {
	out := "tmp/highvalue-naive/result"
	job := &mapreduce.Job{
		Name: "highvalue-naive-j1",
		Inputs: []mapreduce.Input{{
			Path: translator.TablePath("orders"),
			Mapper: mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
				row, err := exec.DecodeRow(line, ordersSchema)
				if err != nil {
					return err
				}
				emit(strconv.FormatInt(row[1].I, 10), exec.EncodeRow(row))
				return nil
			}),
		}},
		Reducer: mapreduce.ReducerFunc(func(key string, values []string, emit func(string)) error {
			for _, v := range values {
				vrow, err := exec.DecodeRow(v, ordersSchema)
				if err != nil {
					return err
				}
				if vrow[3].F <= 30000 {
					continue
				}
				emit(key + "\t" + exec.EncodeField(vrow[3]))
			}
			return nil
		}),
		Output: out,
	}
	return &Program{
		Jobs:   []*mapreduce.Job{job},
		Output: out,
		OutputSchema: exec.NewSchema(
			exec.Column{Name: "o_custkey", Type: exec.TypeInt},
			exec.Column{Name: "o_totalprice", Type: exec.TypeFloat},
		),
		OracleSQL: "SELECT o_custkey, o_totalprice FROM orders WHERE o_totalprice > 30000",
	}
}

// LateShipNaive counts recently shipped lineitems per ship mode. The
// mapper's date guard — reached through the shippedRecently helper — is
// a selection on a decoded field against a constant, so the analyzer
// hoists it into a raw-line prefilter on the scan; the reducer reads no
// value columns, so all eleven trim away.
func LateShipNaive() *Program {
	out := "tmp/lateship-naive/result"
	job := &mapreduce.Job{
		Name: "lateship-naive-j1",
		Inputs: []mapreduce.Input{{
			Path: translator.TablePath("lineitem"),
			Mapper: mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
				row, err := exec.DecodeRow(line, lineitemSchema)
				if err != nil {
					return err
				}
				if !shippedRecently(row) {
					return nil
				}
				emit(row[9].S, exec.EncodeRow(row))
				return nil
			}),
		}},
		Reducer: mapreduce.ReducerFunc(func(key string, values []string, emit func(string)) error {
			emit(key + "\t" + strconv.FormatInt(int64(len(values)), 10))
			return nil
		}),
		Output: out,
	}
	return &Program{
		Jobs:   []*mapreduce.Job{job},
		Output: out,
		OutputSchema: exec.NewSchema(
			exec.Column{Name: "l_shipmode", Type: exec.TypeString},
			exec.Column{Name: "ship_count", Type: exec.TypeInt},
		),
		OracleSQL: "SELECT l_shipmode, count(*) AS ship_count FROM lineitem WHERE l_shipdate >= 9300 GROUP BY l_shipmode",
	}
}

// shippedRecently keeps lineitems shipped inside the survey window.
func shippedRecently(row exec.Row) bool { return row[7].I >= 9300 }
