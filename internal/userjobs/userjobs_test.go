package userjobs

import (
	"testing"

	"ysmart/internal/datagen"
	"ysmart/internal/dbms"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
	"ysmart/internal/translator"
)

func workload(t *testing.T) (*mapreduce.DFS, *dbms.Database) {
	t.Helper()
	dfs := mapreduce.NewDFS()
	db := dbms.NewDatabase()
	cat := queries.Catalog()
	tpch, err := datagen.TPCH(datagen.DefaultTPCH())
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := datagen.Clickstream(datagen.DefaultClicks())
	if err != nil {
		t.Fatal(err)
	}
	for _, tables := range []datagen.Tables{tpch, clicks} {
		for name, rows := range tables {
			schema, _ := cat.Table(name)
			dfs.Write(translator.TablePath(name), datagen.Lines(rows))
			db.Load(name, schema, rows)
		}
	}
	return dfs, db
}

// TestNaiveProgramsMatchOracle checks the unoptimized corpus against the
// DBMS oracle: the naive programs must be correct before any rewrite can
// claim to preserve them.
func TestNaiveProgramsMatchOracle(t *testing.T) {
	dfs, db := workload(t)
	for _, p := range All() {
		eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunChain(p.Jobs); err != nil {
			t.Fatalf("%s: %v", p.Jobs[0].Name, err)
		}
		rows, err := p.ReadResult(dfs)
		if err != nil {
			t.Fatal(err)
		}
		root, err := queries.Plan(p.OracleSQL)
		if err != nil {
			t.Fatalf("%s oracle: %v", p.Jobs[0].Name, err)
		}
		res, err := dbms.Execute(root, db)
		if err != nil {
			t.Fatal(err)
		}
		got, want := dbms.SortedLines(rows), dbms.SortedLines(res.Rows)
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, oracle has %d", p.Jobs[0].Name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s row %d: got %q, want %q", p.Jobs[0].Name, i, got[i], want[i])
			}
		}
		if len(got) == 0 {
			t.Fatalf("%s: empty result, the workload is not exercising the program", p.Jobs[0].Name)
		}
	}
}
