package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is implemented by every AST node.
type Node interface {
	// SQL renders the node back to SQL text (normalized spelling).
	SQL() string
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// SelectStmt is a (possibly nested) SELECT statement.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef // cross product of the listed refs; join predicates may live in Where
	Where    Expr       // nil if absent
	GroupBy  []Expr
	Having   Expr // nil if absent
	OrderBy  []OrderItem
	Limit    int // -1 if absent
}

// SelectItem is one output column of a SELECT list.
type SelectItem struct {
	// Star is true for a bare `*` (Expr is nil in that case).
	Star bool
	// StarQualifier is set for `t.*`.
	StarQualifier string
	Expr          Expr
	Alias         string // "" if none
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SQL implements Node.
func (s *SelectStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case it.Star && it.StarQualifier != "":
			sb.WriteString(it.StarQualifier + ".*")
		case it.Star:
			sb.WriteString("*")
		default:
			sb.WriteString(it.Expr.SQL())
			if it.Alias != "" {
				sb.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, tr := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(tr.SQL())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.SQL())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT " + strconv.Itoa(s.Limit))
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

// TableRef is a FROM-clause item: a base table, a derived table, or a join.
type TableRef interface {
	Node
	tableRef()
}

// BaseTable references a named table, optionally aliased.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRef() {}

// SQL implements Node.
func (t *BaseTable) SQL() string {
	if t.Alias != "" && !strings.EqualFold(t.Alias, t.Name) {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

// Binding returns the name the table is known by in scope (alias if set).
func (t *BaseTable) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// Subquery is a derived table: (SELECT ...) AS alias.
type Subquery struct {
	Select *SelectStmt
	Alias  string
}

func (*Subquery) tableRef() {}

// SQL implements Node.
func (t *Subquery) SQL() string {
	return "(" + t.Select.SQL() + ") AS " + t.Alias
}

// JoinType enumerates explicit join flavors.
type JoinType int

// Join flavors. Implicit comma joins never construct a Join node; they stay
// as multiple From items.
const (
	InnerJoin JoinType = iota + 1
	LeftOuterJoin
	RightOuterJoin
	FullOuterJoin
	CrossJoin
)

func (jt JoinType) String() string {
	switch jt {
	case InnerJoin:
		return "JOIN"
	case LeftOuterJoin:
		return "LEFT OUTER JOIN"
	case RightOuterJoin:
		return "RIGHT OUTER JOIN"
	case FullOuterJoin:
		return "FULL OUTER JOIN"
	case CrossJoin:
		return "CROSS JOIN"
	default:
		return fmt.Sprintf("JoinType(%d)", int(jt))
	}
}

// Join is an explicit JOIN ... ON table reference.
type Join struct {
	Type  JoinType
	Left  TableRef
	Right TableRef
	On    Expr // nil for CROSS JOIN
}

func (*Join) tableRef() {}

// SQL implements Node.
func (t *Join) SQL() string {
	s := t.Left.SQL() + " " + t.Type.String() + " " + t.Right.SQL()
	if t.On != nil {
		s += " ON " + t.On.SQL()
	}
	return s
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is implemented by every expression node.
type Expr interface {
	Node
	expr()
}

// ColumnRef names a column, optionally qualified by a table binding.
type ColumnRef struct {
	Qualifier string // "" if unqualified
	Name      string
}

func (*ColumnRef) expr() {}

// SQL implements Node.
func (e *ColumnRef) SQL() string {
	if e.Qualifier != "" {
		return e.Qualifier + "." + e.Name
	}
	return e.Name
}

// LiteralKind identifies the type of a literal.
type LiteralKind int

// Literal kinds.
const (
	LitInt LiteralKind = iota + 1
	LitFloat
	LitString
	LitBool
	LitNull
)

// Literal is a constant.
type Literal struct {
	Kind  LiteralKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

func (*Literal) expr() {}

// SQL implements Node.
func (e *Literal) SQL() string {
	switch e.Kind {
	case LitInt:
		return strconv.FormatInt(e.Int, 10)
	case LitFloat:
		// Plain decimal notation with a mandatory '.': the lexer has no
		// exponent syntax, and "−0" must stay recognizably a float so the
		// rendering re-parses to the same literal.
		s := strconv.FormatFloat(e.Float, 'f', -1, 64)
		if !strings.ContainsAny(s, ".") {
			s += ".0"
		}
		return s
	case LitString:
		return "'" + strings.ReplaceAll(e.Str, "'", "''") + "'"
	case LitBool:
		if e.Bool {
			return "TRUE"
		}
		return "FALSE"
	case LitNull:
		return "NULL"
	default:
		return "?"
	}
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpEq BinaryOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
)

func (op BinaryOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	default:
		return fmt.Sprintf("BinaryOp(%d)", int(op))
	}
}

// IsComparison reports whether op compares two values to a boolean.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// BinaryExpr is L op R.
type BinaryExpr struct {
	Op BinaryOp
	L  Expr
	R  Expr
}

func (*BinaryExpr) expr() {}

// SQL implements Node.
func (e *BinaryExpr) SQL() string {
	return "(" + e.L.SQL() + " " + e.Op.String() + " " + e.R.SQL() + ")"
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	OpNeg UnaryOp = iota + 1
	OpNot
)

// UnaryExpr is op X.
type UnaryExpr struct {
	Op UnaryOp
	X  Expr
}

func (*UnaryExpr) expr() {}

// SQL implements Node.
func (e *UnaryExpr) SQL() string {
	if e.Op == OpNeg {
		return "(-" + e.X.SQL() + ")"
	}
	return "(NOT " + e.X.SQL() + ")"
}

// FuncCall is a function invocation, e.g. an aggregate.
type FuncCall struct {
	Name     string // upper-cased
	Distinct bool   // COUNT(DISTINCT x)
	Star     bool   // COUNT(*)
	Args     []Expr
}

func (*FuncCall) expr() {}

// SQL implements Node.
func (e *FuncCall) SQL() string {
	if e.Star {
		return e.Name + "(*)"
	}
	var sb strings.Builder
	sb.WriteString(e.Name + "(")
	if e.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, a := range e.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.SQL())
	}
	sb.WriteString(")")
	return sb.String()
}

// AggregateFuncs lists the aggregate function names the planner understands.
var AggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the call is to a known aggregate function.
func (e *FuncCall) IsAggregate() bool { return AggregateFuncs[e.Name] }

// IsNullExpr is `X IS [NOT] NULL`.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// SQL implements Node.
func (e *IsNullExpr) SQL() string {
	if e.Not {
		return "(" + e.X.SQL() + " IS NOT NULL)"
	}
	return "(" + e.X.SQL() + " IS NULL)"
}

// BetweenExpr is `X [NOT] BETWEEN Lo AND Hi`.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*BetweenExpr) expr() {}

// SQL implements Node.
func (e *BetweenExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + e.X.SQL() + " " + not + "BETWEEN " + e.Lo.SQL() + " AND " + e.Hi.SQL() + ")"
}

// InSubqueryExpr is `X IN (SELECT ...)`. Only the positive form exists:
// NOT IN's three-valued NULL semantics make a silent rewrite hazardous, so
// the parser rejects it with a pointer to the outer-join idiom.
type InSubqueryExpr struct {
	X      Expr
	Select *SelectStmt
}

func (*InSubqueryExpr) expr() {}

// SQL implements Node.
func (e *InSubqueryExpr) SQL() string {
	return "(" + e.X.SQL() + " IN (" + e.Select.SQL() + "))"
}

// InListExpr is `X [NOT] IN (a, b, ...)` with literal/scalar items.
type InListExpr struct {
	X     Expr
	Items []Expr
	Not   bool
}

func (*InListExpr) expr() {}

// SQL implements Node.
func (e *InListExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("(" + e.X.SQL())
	if e.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	for i, it := range e.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.SQL())
	}
	sb.WriteString("))")
	return sb.String()
}

// CaseExpr is a searched CASE expression:
// CASE WHEN cond THEN val [WHEN ...] [ELSE val] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // nil if absent
}

// CaseWhen is one WHEN/THEN arm of a CaseExpr.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// SQL implements Node.
func (e *CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range e.Whens {
		sb.WriteString(" WHEN " + w.Cond.SQL() + " THEN " + w.Then.SQL())
	}
	if e.Else != nil {
		sb.WriteString(" ELSE " + e.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

// ---------------------------------------------------------------------------
// Traversal helpers
// ---------------------------------------------------------------------------

// WalkExpr calls fn for e and every sub-expression, pre-order. If fn returns
// false the walk does not descend into that node's children.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *IsNullExpr:
		WalkExpr(x.X, fn)
	case *InSubqueryExpr:
		// Only the left-hand side belongs to the enclosing scope; the
		// subquery's columns resolve against its own FROM clause.
		WalkExpr(x.X, fn)
	case *BetweenExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *InListExpr:
		WalkExpr(x.X, fn)
		for _, it := range x.Items {
			WalkExpr(it, fn)
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			WalkExpr(w.Cond, fn)
			WalkExpr(w.Then, fn)
		}
		WalkExpr(x.Else, fn)
	}
}

// ColumnRefs returns every column reference in e, in source order.
func ColumnRefs(e Expr) []*ColumnRef {
	var refs []*ColumnRef
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			refs = append(refs, c)
		}
		return true
	})
	return refs
}

// ContainsAggregate reports whether e contains an aggregate function call.
func ContainsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			found = true
			return false
		}
		return !found
	})
	return found
}

// SplitConjuncts flattens a tree of ANDs into its conjunct list.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds an AND tree from conjuncts; nil for an empty list.
func JoinConjuncts(conjs []Expr) Expr {
	var out Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = &BinaryExpr{Op: OpAnd, L: out, R: c}
		}
	}
	return out
}

// EqualExpr reports structural equality of two expressions.
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.SQL() == b.SQL()
}
