package sqlparser

import (
	"math/rand"
	"testing"
)

// TestExprRoundTripProperty generates random expression trees, renders them
// with SQL(), parses the rendering, and checks the re-rendered SQL is
// identical — the parser and printer are inverses on the printer's image.
func TestExprRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		e := randomExpr(rng, 4)
		sql := e.SQL()
		stmt, err := Parse("SELECT " + sql + " FROM t")
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, sql, err)
		}
		again := stmt.Select[0].Expr.SQL()
		if again != sql {
			t.Fatalf("trial %d: round trip changed expression:\n  first: %s\n second: %s",
				trial, sql, again)
		}
	}
}

// TestStatementRoundTripProperty does the same for whole statements.
func TestStatementRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		stmt := randomStatement(rng)
		sql := stmt.SQL()
		parsed, err := Parse(sql)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, sql, err)
		}
		if parsed.SQL() != sql {
			t.Fatalf("trial %d: round trip changed statement:\n  first: %s\n second: %s",
				trial, sql, parsed.SQL())
		}
	}
}

func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 {
		return randomLeaf(rng)
	}
	switch rng.Intn(10) {
	case 0, 1, 2:
		return randomLeaf(rng)
	case 3:
		ops := []BinaryOp{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return &BinaryExpr{
			Op: ops[rng.Intn(len(ops))],
			L:  randomExpr(rng, depth-1),
			R:  randomExpr(rng, depth-1),
		}
	case 4:
		ops := []BinaryOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return &BinaryExpr{
			Op: ops[rng.Intn(len(ops))],
			L:  randomExpr(rng, depth-1),
			R:  randomExpr(rng, depth-1),
		}
	case 5:
		ops := []BinaryOp{OpAnd, OpOr}
		return &BinaryExpr{
			Op: ops[rng.Intn(len(ops))],
			L:  randomExpr(rng, depth-1),
			R:  randomExpr(rng, depth-1),
		}
	case 6:
		if rng.Intn(2) == 0 {
			return &UnaryExpr{Op: OpNot, X: randomExpr(rng, depth-1)}
		}
		// Negation of a non-literal (literals fold their sign).
		return &UnaryExpr{Op: OpNeg, X: &ColumnRef{Name: "x"}}
	case 7:
		switch rng.Intn(3) {
		case 0:
			return &IsNullExpr{X: randomExpr(rng, depth-1), Not: rng.Intn(2) == 0}
		case 1:
			return &BetweenExpr{
				X:   randomExpr(rng, depth-1),
				Lo:  randomLeaf(rng),
				Hi:  randomLeaf(rng),
				Not: rng.Intn(2) == 0,
			}
		default:
			n := 1 + rng.Intn(3)
			items := make([]Expr, n)
			for i := range items {
				items[i] = randomLeaf(rng)
			}
			return &InListExpr{X: randomExpr(rng, depth-1), Items: items, Not: rng.Intn(2) == 0}
		}
	case 8:
		names := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}
		name := names[rng.Intn(len(names))]
		if name == "COUNT" && rng.Intn(2) == 0 {
			return &FuncCall{Name: "COUNT", Star: true}
		}
		return &FuncCall{
			Name:     name,
			Distinct: name == "COUNT" && rng.Intn(2) == 0,
			Args:     []Expr{randomExpr(rng, depth-1)},
		}
	default:
		n := 1 + rng.Intn(2)
		whens := make([]CaseWhen, n)
		for i := range whens {
			whens[i] = CaseWhen{
				Cond: randomExpr(rng, depth-1),
				Then: randomLeaf(rng),
			}
		}
		c := &CaseExpr{Whens: whens}
		if rng.Intn(2) == 0 {
			c.Else = randomLeaf(rng)
		}
		return c
	}
}

func randomLeaf(rng *rand.Rand) Expr {
	switch rng.Intn(6) {
	case 0:
		return &ColumnRef{Name: "col" + string(rune('a'+rng.Intn(4)))}
	case 1:
		return &ColumnRef{Qualifier: "t" + string(rune('0'+rng.Intn(3))), Name: "c"}
	case 2:
		return &Literal{Kind: LitInt, Int: int64(rng.Intn(2001) - 1000)}
	case 3:
		return &Literal{Kind: LitFloat, Float: float64(rng.Intn(1000)) / 8}
	case 4:
		strs := []string{"x", "it's", "a b", ""}
		return &Literal{Kind: LitString, Str: strs[rng.Intn(len(strs))]}
	default:
		if rng.Intn(3) == 0 {
			return &Literal{Kind: LitNull}
		}
		return &Literal{Kind: LitBool, Bool: rng.Intn(2) == 0}
	}
}

func randomStatement(rng *rand.Rand) *SelectStmt {
	stmt := &SelectStmt{Limit: -1}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		item := SelectItem{Expr: randomExpr(rng, 2)}
		if rng.Intn(2) == 0 {
			item.Alias = "out" + string(rune('a'+i))
		}
		stmt.Select = append(stmt.Select, item)
	}
	stmt.From = []TableRef{&BaseTable{Name: "t", Alias: "t"}}
	if rng.Intn(3) > 0 {
		stmt.From = append(stmt.From, &BaseTable{Name: "u"})
	}
	if rng.Intn(2) == 0 {
		stmt.Where = randomExpr(rng, 3)
	}
	if rng.Intn(3) == 0 {
		stmt.GroupBy = []Expr{&ColumnRef{Name: "g"}}
		if rng.Intn(2) == 0 {
			stmt.Having = randomExpr(rng, 2)
		}
	}
	if rng.Intn(3) == 0 {
		stmt.OrderBy = []OrderItem{{Expr: &ColumnRef{Name: "o"}, Desc: rng.Intn(2) == 0}}
		if rng.Intn(2) == 0 {
			stmt.Limit = rng.Intn(100)
		}
	}
	return stmt
}
