package sqlparser

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser is total: any input either parses or returns
// an error — it never panics — and anything that parses round-trips through
// SQL() to an equivalent statement.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT a, count(*) FROM t WHERE x = 1 GROUP BY a HAVING count(*) > 2",
		"SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x WHERE b.y IS NULL",
		"SELECT avg(v) FROM (SELECT v FROM t WHERE v BETWEEN 1 AND 2) AS s",
		"SELECT x FROM t WHERE x IN (SELECT y FROM u) ORDER BY x DESC LIMIT 3",
		"SELECT CASE WHEN a THEN 'x' ELSE 'y' END FROM t",
		"select '' from t where a <> -1.5e2",
		"SELECT a FROM t -- comment\n/* block */",
		"SELECT 'it''s' FROM t;",
		"\x00\xff SELECT",
		strings.Repeat("(", 50) + "a" + strings.Repeat(")", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		stmt, err := Parse(sql)
		if err != nil {
			return // rejecting is always acceptable
		}
		// Accepted statements must render and re-parse to the same shape.
		rendered := stmt.SQL()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered SQL does not re-parse: %q -> %q: %v", sql, rendered, err)
		}
		if again.SQL() != rendered {
			t.Fatalf("round trip unstable:\n first: %s\nsecond: %s", rendered, again.SQL())
		}
	})
}
