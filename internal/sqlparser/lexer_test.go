package sqlparser

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want []Token
	}{
		{
			name: "keywords and identifiers",
			src:  "SELECT foo FROM bar",
			want: []Token{
				{Kind: KindKeyword, Text: "SELECT"},
				{Kind: KindIdent, Text: "foo"},
				{Kind: KindKeyword, Text: "FROM"},
				{Kind: KindIdent, Text: "bar"},
				{Kind: KindEOF},
			},
		},
		{
			name: "case-insensitive keywords",
			src:  "select From wHeRe",
			want: []Token{
				{Kind: KindKeyword, Text: "SELECT"},
				{Kind: KindKeyword, Text: "FROM"},
				{Kind: KindKeyword, Text: "WHERE"},
				{Kind: KindEOF},
			},
		},
		{
			name: "numbers",
			src:  "1 42 3.14 0.2 7.0",
			want: []Token{
				{Kind: KindNumber, Text: "1"},
				{Kind: KindNumber, Text: "42"},
				{Kind: KindNumber, Text: "3.14"},
				{Kind: KindNumber, Text: "0.2"},
				{Kind: KindNumber, Text: "7.0"},
				{Kind: KindEOF},
			},
		},
		{
			name: "leading-dot float",
			src:  ".5",
			want: []Token{
				{Kind: KindNumber, Text: ".5"},
				{Kind: KindEOF},
			},
		},
		{
			name: "strings with escaped quote",
			src:  "'hello' 'it''s'",
			want: []Token{
				{Kind: KindString, Text: "hello"},
				{Kind: KindString, Text: "it's"},
				{Kind: KindEOF},
			},
		},
		{
			name: "symbols",
			src:  "( ) , . ; = <> < <= > >= + - * / %",
			want: []Token{
				{Kind: KindSymbol, Text: "("},
				{Kind: KindSymbol, Text: ")"},
				{Kind: KindSymbol, Text: ","},
				{Kind: KindSymbol, Text: "."},
				{Kind: KindSymbol, Text: ";"},
				{Kind: KindSymbol, Text: "="},
				{Kind: KindSymbol, Text: "<>"},
				{Kind: KindSymbol, Text: "<"},
				{Kind: KindSymbol, Text: "<="},
				{Kind: KindSymbol, Text: ">"},
				{Kind: KindSymbol, Text: ">="},
				{Kind: KindSymbol, Text: "+"},
				{Kind: KindSymbol, Text: "-"},
				{Kind: KindSymbol, Text: "*"},
				{Kind: KindSymbol, Text: "/"},
				{Kind: KindSymbol, Text: "%"},
				{Kind: KindEOF},
			},
		},
		{
			name: "bang-equals normalizes to <>",
			src:  "a != b",
			want: []Token{
				{Kind: KindIdent, Text: "a"},
				{Kind: KindSymbol, Text: "<>"},
				{Kind: KindIdent, Text: "b"},
				{Kind: KindEOF},
			},
		},
		{
			name: "line comment",
			src:  "a -- comment text\nb",
			want: []Token{
				{Kind: KindIdent, Text: "a"},
				{Kind: KindIdent, Text: "b"},
				{Kind: KindEOF},
			},
		},
		{
			name: "block comment",
			src:  "a /* multi\nline */ b",
			want: []Token{
				{Kind: KindIdent, Text: "a"},
				{Kind: KindIdent, Text: "b"},
				{Kind: KindEOF},
			},
		},
		{
			name: "dotted column stays three tokens",
			src:  "c1.uid",
			want: []Token{
				{Kind: KindIdent, Text: "c1"},
				{Kind: KindSymbol, Text: "."},
				{Kind: KindIdent, Text: "uid"},
				{Kind: KindEOF},
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Tokenize(tt.src)
			if err != nil {
				t.Fatalf("Tokenize(%q): %v", tt.src, err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %d tokens, want %d: %v", len(got), len(tt.want), got)
			}
			for i := range got {
				if got[i].Kind != tt.want[i].Kind || got[i].Text != tt.want[i].Text {
					t.Errorf("token %d = (%v, %q), want (%v, %q)",
						i, got[i].Kind, got[i].Text, tt.want[i].Kind, tt.want[i].Text)
				}
			}
		})
	}
}

func TestTokenizeErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"unterminated string", "'abc", "unterminated string"},
		{"unterminated block comment", "/* abc", "unterminated block comment"},
		{"stray bang", "a ! b", "unexpected character"},
		{"stray char", "a @ b", "unexpected character"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Tokenize(tt.src)
			if err == nil {
				t.Fatalf("Tokenize(%q) succeeded, want error containing %q", tt.src, tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestTokenPositions(t *testing.T) {
	toks, err := Tokenize("SELECT a\nFROM t")
	if err != nil {
		t.Fatal(err)
	}
	// FROM is on line 2, column 1.
	var from Token
	for _, tok := range toks {
		if tok.Kind == KindKeyword && tok.Text == "FROM" {
			from = tok
		}
	}
	if from.Line != 2 || from.Col != 1 {
		t.Errorf("FROM at line %d col %d, want 2:1", from.Line, from.Col)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Tokenize("a $")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 1 || se.Col != 3 {
		t.Errorf("error at %d:%d, want 1:3", se.Line, se.Col)
	}
	if !strings.Contains(se.Error(), "line 1 col 3") {
		t.Errorf("message %q lacks position", se.Error())
	}
}
