// Package sqlparser implements a lexer, AST, and recursive-descent parser
// for the SQL subset targeted by YSmart (ICDCS 2011, §IV): selection,
// projection, aggregation with grouping, sorting, and equi-joins (inner and
// left/right/full outer), including derived tables (sub-queries in FROM)
// and implicit comma joins whose join predicates live in WHERE.
package sqlparser

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. Keywords are folded into KindKeyword with the upper-cased
// keyword text stored in Token.Text.
const (
	KindEOF TokenKind = iota + 1
	KindIdent
	KindKeyword
	KindNumber
	KindString
	KindSymbol
)

func (k TokenKind) String() string {
	switch k {
	case KindEOF:
		return "EOF"
	case KindIdent:
		return "identifier"
	case KindKeyword:
		return "keyword"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindSymbol:
		return "symbol"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Token is a single lexical token with its position in the input.
type Token struct {
	Kind TokenKind
	// Text is the token text. Keywords are upper-cased; identifiers and
	// symbols keep their source spelling; strings exclude their quotes.
	Text string
	// Pos is the byte offset of the token's first character.
	Pos int
	// Line and Col are 1-based coordinates of the token start.
	Line, Col int
}

func (t Token) String() string {
	if t.Kind == KindEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords is the set of reserved words recognized by the lexer. Everything
// else alphanumeric is an identifier. Aggregate function names (COUNT, SUM,
// AVG, MIN, MAX) are deliberately NOT keywords: they are ordinary
// identifiers followed by '(' so that they can also be used as column names.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true,
	"BY": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"AS": true, "AND": true, "OR": true, "NOT": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true,
	"FULL": true, "OUTER": true, "ON": true, "CROSS": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "ALL": true,
	"IS": true, "NULL": true, "BETWEEN": true, "IN": true,
	"TRUE": true, "FALSE": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "UNION": true,
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(upper string) bool { return keywords[upper] }
