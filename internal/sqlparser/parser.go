package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser builds an AST from tokens. Construct with NewParser or use the
// package-level Parse helper.
type Parser struct {
	toks []Token
	i    int
}

// NewParser returns a parser over pre-lexed tokens.
func NewParser(toks []Token) *Parser { return &Parser{toks: toks} }

// Parse lexes and parses a single SELECT statement, allowing a trailing
// semicolon.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := Tokenize(sql)
	if err != nil {
		return nil, err
	}
	p := NewParser(toks)
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == KindSymbol && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != KindEOF {
		return nil, p.errorf("unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

func (p *Parser) peek() Token { return p.toks[p.i] }

func (p *Parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != KindEOF {
		p.i++
	}
	return t
}

func (p *Parser) errorf(format string, args ...any) error {
	t := p.peek()
	return &SyntaxError{
		Msg:  fmt.Sprintf(format, args...),
		Pos:  t.Pos,
		Line: t.Line,
		Col:  t.Col,
	}
}

func (p *Parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == KindKeyword && t.Text == kw
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) atSymbol(sym string) bool {
	t := p.peek()
	return t.Kind == KindSymbol && t.Text == sym
}

func (p *Parser) acceptSymbol(sym string) bool {
	if p.atSymbol(sym) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %s", sym, p.peek())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != KindIdent {
		return "", p.errorf("expected identifier, found %s", t)
	}
	p.next()
	return t.Text, nil
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}

	items, err := p.parseSelectList()
	if err != nil {
		return nil, err
	}
	stmt.Select = items

	if p.acceptKeyword("FROM") {
		refs, err := p.parseFromList()
		if err != nil {
			return nil, err
		}
		stmt.From = refs
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != KindNumber {
			return nil, p.errorf("expected number after LIMIT, found %s", t)
		}
		p.next()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *Parser) parseSelectList() ([]SelectItem, error) {
	var items []SelectItem
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		if !p.acceptSymbol(",") {
			return items, nil
		}
	}
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// `*`
	if p.atSymbol("*") {
		p.next()
		return SelectItem{Star: true}, nil
	}
	// `t.*` requires two-token lookahead before committing to parseExpr.
	if p.peek().Kind == KindIdent && p.i+2 < len(p.toks) {
		dot, star := p.toks[p.i+1], p.toks[p.i+2]
		if dot.Kind == KindSymbol && dot.Text == "." && star.Kind == KindSymbol && star.Text == "*" {
			q := p.next().Text
			p.next()
			p.next()
			return SelectItem{Star: true, StarQualifier: q}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().Kind == KindIdent {
		// Implicit alias: SELECT a b FROM ...
		item.Alias = p.next().Text
	}
	return item, nil
}

// ---------------------------------------------------------------------------
// FROM
// ---------------------------------------------------------------------------

func (p *Parser) parseFromList() ([]TableRef, error) {
	var refs []TableRef
	for {
		r, err := p.parseJoinedTable()
		if err != nil {
			return nil, err
		}
		refs = append(refs, r)
		if !p.acceptSymbol(",") {
			return refs, nil
		}
	}
}

// parseJoinedTable parses a primary table ref followed by any chain of
// explicit JOIN clauses (left associative).
func (p *Parser) parseJoinedTable() (TableRef, error) {
	left, err := p.parsePrimaryTable()
	if err != nil {
		return nil, err
	}
	for {
		jt, ok, err := p.parseJoinKind()
		if err != nil {
			return nil, err
		}
		if !ok {
			return left, nil
		}
		right, err := p.parsePrimaryTable()
		if err != nil {
			return nil, err
		}
		j := &Join{Type: jt, Left: left, Right: right}
		if jt != CrossJoin {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

// parseJoinKind consumes a join introducer if present and returns its type.
func (p *Parser) parseJoinKind() (JoinType, bool, error) {
	switch {
	case p.acceptKeyword("JOIN"):
		return InnerJoin, true, nil
	case p.acceptKeyword("INNER"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, err
		}
		return InnerJoin, true, nil
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, err
		}
		return LeftOuterJoin, true, nil
	case p.acceptKeyword("RIGHT"):
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, err
		}
		return RightOuterJoin, true, nil
	case p.acceptKeyword("FULL"):
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, err
		}
		return FullOuterJoin, true, nil
	case p.acceptKeyword("CROSS"):
		if err := p.expectKeyword("JOIN"); err != nil {
			return 0, false, err
		}
		return CrossJoin, true, nil
	}
	return 0, false, nil
}

func (p *Parser) parsePrimaryTable() (TableRef, error) {
	if p.acceptSymbol("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		p.acceptKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return nil, &SyntaxError{Msg: "derived table requires an alias", Pos: p.peek().Pos, Line: p.peek().Line, Col: p.peek().Col}
		}
		return &Subquery{Select: sub, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	bt := &BaseTable{Name: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		bt.Alias = a
	} else if p.peek().Kind == KindIdent {
		bt.Alias = p.next().Text
	}
	return bt, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

// parseExpr parses a full boolean expression: OR level.
func (p *Parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, X: x}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Not: not}, nil
	}
	// [NOT] BETWEEN / IN
	not := false
	if p.atKeyword("NOT") {
		// Only consume if followed by BETWEEN or IN.
		save := p.i
		p.next()
		if !p.atKeyword("BETWEEN") && !p.atKeyword("IN") {
			p.i = save
		} else {
			not = true
		}
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if p.atKeyword("SELECT") {
			if not {
				return nil, p.errorf("NOT IN (SELECT ...) is not supported; rewrite as a LEFT OUTER JOIN with an IS NULL filter")
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &InSubqueryExpr{X: left, Select: sub}, nil
		}
		var items []Expr
		for {
			it, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			items = append(items, it)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InListExpr{X: left, Items: items, Not: not}, nil
	}
	if not {
		return nil, p.errorf("expected BETWEEN or IN after NOT")
	}
	t := p.peek()
	if t.Kind == KindSymbol {
		if op, ok := comparisonOps[t.Text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.atSymbol("+"):
			op = OpAdd
		case p.atSymbol("-"):
			op = OpSub
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.atSymbol("*"):
			op = OpMul
		case p.atSymbol("/"):
			op = OpDiv
		case p.atSymbol("%"):
			op = OpMod
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation into numeric literals for cleaner plans.
		if lit, ok := x.(*Literal); ok {
			switch lit.Kind {
			case LitInt:
				return &Literal{Kind: LitInt, Int: -lit.Int}, nil
			case LitFloat:
				return &Literal{Kind: LitFloat, Float: -lit.Float}, nil
			}
		}
		return &UnaryExpr{Op: OpNeg, X: x}, nil
	}
	p.acceptSymbol("+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case KindNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Literal{Kind: LitFloat, Float: f}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &Literal{Kind: LitInt, Int: n}, nil

	case KindString:
		p.next()
		return &Literal{Kind: LitString, Str: t.Text}, nil

	case KindKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Kind: LitNull}, nil
		case "TRUE":
			p.next()
			return &Literal{Kind: LitBool, Bool: true}, nil
		case "FALSE":
			p.next()
			return &Literal{Kind: LitBool, Bool: false}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.Text)

	case KindIdent:
		p.next()
		// Function call?
		if p.atSymbol("(") {
			return p.parseFuncCall(t.Text)
		}
		// Qualified column?
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Qualifier: t.Text, Name: col}, nil
		}
		return &ColumnRef{Name: t.Text}, nil

	case KindSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected %s in expression", t)
}

func (p *Parser) parseFuncCall(name string) (Expr, error) {
	upper := strings.ToUpper(name)
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	call := &FuncCall{Name: upper}
	if p.acceptSymbol("*") {
		call.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.acceptKeyword("DISTINCT") {
		call.Distinct = true
	}
	if !p.atSymbol(")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if call.IsAggregate() && !call.Star && len(call.Args) != 1 {
		return nil, p.errorf("aggregate %s takes exactly one argument", upper)
	}
	return call, nil
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN arm")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
