package sqlparser

import (
	"fmt"
	"strings"
)

// Lexer splits a SQL string into tokens. The zero value is not usable; call
// NewLexer.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// SyntaxError describes a lexical or parse failure with its position.
type SyntaxError struct {
	Msg  string
	Pos  int
	Line int
	Col  int
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

func (l *Lexer) errorf(format string, args ...any) error {
	return &SyntaxError{
		Msg:  fmt.Sprintf(format, args...),
		Pos:  l.pos,
		Line: l.line,
		Col:  l.col,
	}
}

func (l *Lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for {
		c, ok := l.peekByte()
		if !ok {
			return nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token, or an error on malformed input. At end of
// input it returns a token with KindEOF.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	start, line, col := l.pos, l.line, l.col
	c, ok := l.peekByte()
	if !ok {
		return Token{Kind: KindEOF, Pos: start, Line: line, Col: col}, nil
	}

	switch {
	case isLetter(c):
		for {
			c, ok := l.peekByte()
			if !ok || !(isLetter(c) || isDigit(c)) {
				break
			}
			l.advance()
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if IsKeyword(upper) {
			return Token{Kind: KindKeyword, Text: upper, Pos: start, Line: line, Col: col}, nil
		}
		return Token{Kind: KindIdent, Text: word, Pos: start, Line: line, Col: col}, nil

	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		seenDot := false
		for {
			c, ok := l.peekByte()
			if !ok {
				break
			}
			if c == '.' {
				if seenDot {
					break
				}
				// Lookahead: "1.x" where x is not a digit is "1" "." "x".
				if l.pos+1 >= len(l.src) || !isDigit(l.src[l.pos+1]) {
					break
				}
				seenDot = true
				l.advance()
				continue
			}
			if !isDigit(c) {
				break
			}
			l.advance()
		}
		return Token{Kind: KindNumber, Text: l.src[start:l.pos], Pos: start, Line: line, Col: col}, nil

	case c == '\'':
		l.advance()
		var sb strings.Builder
		for {
			c, ok := l.peekByte()
			if !ok {
				return Token{}, l.errorf("unterminated string literal")
			}
			l.advance()
			if c == '\'' {
				// '' escapes a single quote inside a string.
				if c2, ok := l.peekByte(); ok && c2 == '\'' {
					l.advance()
					sb.WriteByte('\'')
					continue
				}
				return Token{Kind: KindString, Text: sb.String(), Pos: start, Line: line, Col: col}, nil
			}
			sb.WriteByte(c)
		}

	default:
		return l.lexSymbol(start, line, col)
	}
}

func (l *Lexer) lexSymbol(start, line, col int) (Token, error) {
	c := l.advance()
	mk := func(s string) (Token, error) {
		return Token{Kind: KindSymbol, Text: s, Pos: start, Line: line, Col: col}, nil
	}
	two := func(next byte, twoText, oneText string) (Token, error) {
		if c2, ok := l.peekByte(); ok && c2 == next {
			l.advance()
			return mk(twoText)
		}
		return mk(oneText)
	}
	switch c {
	case '(', ')', ',', '.', ';', '+', '-', '*', '/', '%':
		return mk(string(c))
	case '=':
		return mk("=")
	case '<':
		if c2, ok := l.peekByte(); ok {
			switch c2 {
			case '=':
				l.advance()
				return mk("<=")
			case '>':
				l.advance()
				return mk("<>")
			}
		}
		return mk("<")
	case '>':
		return two('=', ">=", ">")
	case '!':
		if c2, ok := l.peekByte(); ok && c2 == '=' {
			l.advance()
			return mk("<>") // normalize != to <>
		}
		return Token{}, &SyntaxError{Msg: `unexpected character "!"`, Pos: start, Line: line, Col: col}
	default:
		return Token{}, &SyntaxError{Msg: fmt.Sprintf("unexpected character %q", string(c)), Pos: start, Line: line, Col: col}
	}
}

// Tokenize lexes the whole input up to EOF.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == KindEOF {
			return toks, nil
		}
	}
}
