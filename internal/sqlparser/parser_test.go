package sqlparser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b AS bee FROM t WHERE a > 1")
	if len(stmt.Select) != 2 {
		t.Fatalf("select list len = %d, want 2", len(stmt.Select))
	}
	if stmt.Select[1].Alias != "bee" {
		t.Errorf("alias = %q, want bee", stmt.Select[1].Alias)
	}
	bt, ok := stmt.From[0].(*BaseTable)
	if !ok || bt.Name != "t" {
		t.Fatalf("from = %#v, want base table t", stmt.From[0])
	}
	cmp, ok := stmt.Where.(*BinaryExpr)
	if !ok || cmp.Op != OpGt {
		t.Fatalf("where = %#v, want a > 1", stmt.Where)
	}
}

func TestParseStarVariants(t *testing.T) {
	stmt := mustParse(t, "SELECT *, t.* FROM t")
	if !stmt.Select[0].Star || stmt.Select[0].StarQualifier != "" {
		t.Errorf("item 0 = %+v, want bare star", stmt.Select[0])
	}
	if !stmt.Select[1].Star || stmt.Select[1].StarQualifier != "t" {
		t.Errorf("item 1 = %+v, want t.*", stmt.Select[1])
	}
}

func TestParseImplicitAlias(t *testing.T) {
	stmt := mustParse(t, "SELECT a x FROM t u")
	if stmt.Select[0].Alias != "x" {
		t.Errorf("column alias = %q, want x", stmt.Select[0].Alias)
	}
	bt := stmt.From[0].(*BaseTable)
	if bt.Alias != "u" {
		t.Errorf("table alias = %q, want u", bt.Alias)
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	stmt := mustParse(t, `
		SELECT cid, count(*) AS n FROM clicks
		GROUP BY cid HAVING count(*) > 10
		ORDER BY n DESC, cid LIMIT 5`)
	if len(stmt.GroupBy) != 1 {
		t.Fatalf("group by len = %d, want 1", len(stmt.GroupBy))
	}
	if stmt.Having == nil {
		t.Fatal("missing HAVING")
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Fatalf("order by = %+v, want [n DESC, cid ASC]", stmt.OrderBy)
	}
	if stmt.Limit != 5 {
		t.Errorf("limit = %d, want 5", stmt.Limit)
	}
}

func TestParseExplicitJoins(t *testing.T) {
	tests := []struct {
		sql  string
		want JoinType
	}{
		{"SELECT * FROM a JOIN b ON a.x = b.x", InnerJoin},
		{"SELECT * FROM a INNER JOIN b ON a.x = b.x", InnerJoin},
		{"SELECT * FROM a LEFT JOIN b ON a.x = b.x", LeftOuterJoin},
		{"SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x", LeftOuterJoin},
		{"SELECT * FROM a RIGHT OUTER JOIN b ON a.x = b.x", RightOuterJoin},
		{"SELECT * FROM a FULL OUTER JOIN b ON a.x = b.x", FullOuterJoin},
	}
	for _, tt := range tests {
		stmt := mustParse(t, tt.sql)
		j, ok := stmt.From[0].(*Join)
		if !ok {
			t.Fatalf("%s: from is %T, want *Join", tt.sql, stmt.From[0])
		}
		if j.Type != tt.want {
			t.Errorf("%s: join type %v, want %v", tt.sql, j.Type, tt.want)
		}
		if j.On == nil {
			t.Errorf("%s: missing ON", tt.sql)
		}
	}
}

func TestParseJoinChainLeftAssociative(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON a.x = c.x")
	outer, ok := stmt.From[0].(*Join)
	if !ok {
		t.Fatalf("outer is %T", stmt.From[0])
	}
	inner, ok := outer.Left.(*Join)
	if !ok {
		t.Fatalf("left of outer is %T, want *Join (left-assoc)", outer.Left)
	}
	if bt := inner.Left.(*BaseTable); bt.Name != "a" {
		t.Errorf("innermost left = %s, want a", bt.Name)
	}
	if bt := outer.Right.(*BaseTable); bt.Name != "c" {
		t.Errorf("outer right = %s, want c", bt.Name)
	}
}

func TestParseCommaJoin(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM lineitem, part WHERE p_partkey = l_partkey")
	if len(stmt.From) != 2 {
		t.Fatalf("from len = %d, want 2", len(stmt.From))
	}
}

func TestParseSubquery(t *testing.T) {
	stmt := mustParse(t, `SELECT avg(x) FROM (SELECT a AS x FROM t) AS s`)
	sq, ok := stmt.From[0].(*Subquery)
	if !ok {
		t.Fatalf("from is %T, want *Subquery", stmt.From[0])
	}
	if sq.Alias != "s" {
		t.Errorf("alias = %q, want s", sq.Alias)
	}
	if len(sq.Select.Select) != 1 {
		t.Errorf("inner select list len = %d, want 1", len(sq.Select.Select))
	}
}

func TestParseSubqueryRequiresAlias(t *testing.T) {
	_, err := Parse("SELECT * FROM (SELECT a FROM t)")
	if err == nil || !strings.Contains(err.Error(), "alias") {
		t.Fatalf("err = %v, want alias error", err)
	}
}

func TestParseAggregates(t *testing.T) {
	stmt := mustParse(t, `SELECT count(*), count(distinct l_suppkey), sum(x), avg(y), min(z), max(z) FROM t`)
	want := []struct {
		name     string
		star     bool
		distinct bool
	}{
		{"COUNT", true, false},
		{"COUNT", false, true},
		{"SUM", false, false},
		{"AVG", false, false},
		{"MIN", false, false},
		{"MAX", false, false},
	}
	for i, w := range want {
		f, ok := stmt.Select[i].Expr.(*FuncCall)
		if !ok {
			t.Fatalf("item %d is %T, want *FuncCall", i, stmt.Select[i].Expr)
		}
		if f.Name != w.name || f.Star != w.star || f.Distinct != w.distinct {
			t.Errorf("item %d = %s star=%v distinct=%v, want %+v", i, f.Name, f.Star, f.Distinct, w)
		}
		if !f.IsAggregate() {
			t.Errorf("item %d not recognized as aggregate", i)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	tests := []struct {
		sql  string
		want string
	}{
		{"SELECT a + b * c FROM t", "(a + (b * c))"},
		{"SELECT (a + b) * c FROM t", "((a + b) * c)"},
		{"SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3", "((x = 1) OR ((y = 2) AND (z = 3)))"},
		{"SELECT a FROM t WHERE NOT x = 1 AND y = 2", "((NOT (x = 1)) AND (y = 2))"},
		{"SELECT 0.2 * avg(q) FROM t", "(0.2 * AVG(q))"},
		{"SELECT count(*) - 2 FROM t", "(COUNT(*) - 2)"},
		{"SELECT a FROM t WHERE x <> y", "(x <> y)"},
		{"SELECT a FROM t WHERE x != y", "(x <> y)"},
	}
	for _, tt := range tests {
		stmt := mustParse(t, tt.sql)
		var got string
		if stmt.Where != nil {
			got = stmt.Where.SQL()
		} else {
			got = stmt.Select[0].Expr.SQL()
		}
		if got != tt.want {
			t.Errorf("%s: rendered %s, want %s", tt.sql, got, tt.want)
		}
	}
}

func TestParseNegativeNumberFolding(t *testing.T) {
	stmt := mustParse(t, "SELECT -5, -2.5 FROM t")
	if lit := stmt.Select[0].Expr.(*Literal); lit.Kind != LitInt || lit.Int != -5 {
		t.Errorf("item 0 = %+v, want int -5", lit)
	}
	if lit := stmt.Select[1].Expr.(*Literal); lit.Kind != LitFloat || lit.Float != -2.5 {
		t.Errorf("item 1 = %+v, want float -2.5", lit)
	}
}

func TestParseIsNullBetweenIn(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE x IS NULL AND y IS NOT NULL
		AND z BETWEEN 1 AND 10 AND w NOT BETWEEN 2 AND 3
		AND v IN (1, 2, 3) AND u NOT IN ('a', 'b')`)
	conjs := SplitConjuncts(stmt.Where)
	if len(conjs) != 6 {
		t.Fatalf("conjuncts = %d, want 6", len(conjs))
	}
	if e := conjs[0].(*IsNullExpr); e.Not {
		t.Error("conj 0 should be IS NULL")
	}
	if e := conjs[1].(*IsNullExpr); !e.Not {
		t.Error("conj 1 should be IS NOT NULL")
	}
	if e := conjs[2].(*BetweenExpr); e.Not {
		t.Error("conj 2 should be BETWEEN")
	}
	if e := conjs[3].(*BetweenExpr); !e.Not {
		t.Error("conj 3 should be NOT BETWEEN")
	}
	if e := conjs[4].(*InListExpr); e.Not || len(e.Items) != 3 {
		t.Errorf("conj 4 = %+v, want IN with 3 items", conjs[4])
	}
	if e := conjs[5].(*InListExpr); !e.Not || len(e.Items) != 2 {
		t.Errorf("conj 5 = %+v, want NOT IN with 2 items", conjs[5])
	}
}

func TestParseCase(t *testing.T) {
	stmt := mustParse(t, "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' ELSE 'zero' END FROM t")
	c, ok := stmt.Select[0].Expr.(*CaseExpr)
	if !ok {
		t.Fatalf("item is %T, want *CaseExpr", stmt.Select[0].Expr)
	}
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case = %+v, want 2 whens and else", c)
	}
}

func TestParseDistinct(t *testing.T) {
	stmt := mustParse(t, "SELECT DISTINCT a FROM t")
	if !stmt.Distinct {
		t.Error("Distinct not set")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		sql  string
	}{
		{"empty", ""},
		{"missing from item", "SELECT a FROM"},
		{"trailing garbage", "SELECT a FROM t xyzzy plugh"},
		{"missing on", "SELECT * FROM a JOIN b"},
		{"bad limit", "SELECT a FROM t LIMIT x"},
		{"unclosed paren", "SELECT (a FROM t"},
		{"lone not", "SELECT a FROM t WHERE x NOT y"},
		{"aggregate arity", "SELECT sum(a, b) FROM t"},
		{"keyword as expr", "SELECT a FROM t WHERE GROUP"},
		{"case without when", "SELECT CASE END FROM t"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.sql); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tt.sql)
			}
		})
	}
}

// The four paper workload queries must all parse.

const paperQCSA = `
SELECT avg(pageview_count) FROM
 (SELECT c.uid, mp.ts1, (count(*) - 2) AS pageview_count
  FROM clicks AS c,
   (SELECT uid, max(ts1) AS ts1, ts2
    FROM (SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
          FROM clicks AS c1, clicks AS c2
          WHERE c1.uid = c2.uid AND c1.ts < c2.ts
            AND c1.cid = 1 AND c2.cid = 2
          GROUP BY c1.uid, c1.ts) AS cp
    GROUP BY uid, ts2) AS mp
  WHERE c.uid = mp.uid AND c.ts >= mp.ts1 AND c.ts <= mp.ts2
  GROUP BY c.uid, mp.ts1) AS pageview_counts;`

const paperQ17 = `
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
      FROM lineitem
      GROUP BY l_partkey) AS inner_t,
     (SELECT l_partkey, l_quantity, l_extendedprice
      FROM lineitem, part
      WHERE p_partkey = l_partkey) AS outer_t
WHERE outer_t.l_partkey = inner_t.l_partkey
  AND outer_t.l_quantity < inner_t.t1;`

const paperQ21Subtree = `
SELECT sq12.l_suppkey FROM
 (SELECT sq1.l_orderkey, sq1.l_suppkey FROM
   (SELECT l_suppkey, l_orderkey
    FROM lineitem, orders
    WHERE o_orderkey = l_orderkey
      AND l_receiptdate > l_commitdate
      AND o_orderstatus = 'F') AS sq1,
   (SELECT l_orderkey,
           count(distinct l_suppkey) AS cs,
           max(l_suppkey) AS ms
    FROM lineitem
    GROUP BY l_orderkey) AS sq2
  WHERE sq1.l_orderkey = sq2.l_orderkey
    AND ((sq2.cs > 1) OR
         ((sq2.cs = 1) AND (sq1.l_suppkey <> sq2.ms)))
 ) AS sq12
 LEFT OUTER JOIN
 (SELECT l_orderkey,
         count(distinct l_suppkey) AS cs,
         max(l_suppkey) AS ms
  FROM lineitem
  WHERE l_receiptdate > l_commitdate
  GROUP BY l_orderkey) AS sq3
 ON sq12.l_orderkey = sq3.l_orderkey
WHERE (sq3.cs IS NULL) OR
      ((sq3.cs = 1) AND (sq12.l_suppkey = sq3.ms))`

func TestParsePaperQueries(t *testing.T) {
	tests := []struct {
		name string
		sql  string
	}{
		{"Q-CSA", paperQCSA},
		{"Q17", paperQ17},
		{"Q21-subtree", paperQ21Subtree},
		{"Q-AGG", "SELECT cid, count(*) FROM clicks GROUP BY cid"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			stmt := mustParse(t, tt.sql)
			// Round-trip: the rendered SQL must parse again to the same shape.
			again := mustParse(t, stmt.SQL())
			if again.SQL() != stmt.SQL() {
				t.Errorf("round-trip mismatch:\n first: %s\nsecond: %s", stmt.SQL(), again.SQL())
			}
		})
	}
}

func TestWalkAndColumnRefs(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE x + y > f(z) AND w BETWEEN lo AND hi")
	refs := ColumnRefs(stmt.Where)
	var names []string
	for _, r := range refs {
		names = append(names, r.Name)
	}
	got := strings.Join(names, ",")
	if got != "x,y,z,w,lo,hi" {
		t.Errorf("ColumnRefs order = %s, want x,y,z,w,lo,hi", got)
	}
}

func TestContainsAggregate(t *testing.T) {
	stmt := mustParse(t, "SELECT count(*) - 2, a + 1 FROM t")
	if !ContainsAggregate(stmt.Select[0].Expr) {
		t.Error("count(*)-2 should contain aggregate")
	}
	if ContainsAggregate(stmt.Select[1].Expr) {
		t.Error("a+1 should not contain aggregate")
	}
}

func TestSplitJoinConjunctsRoundTrip(t *testing.T) {
	stmt := mustParse(t, "SELECT a FROM t WHERE p = 1 AND q = 2 AND r = 3")
	conjs := SplitConjuncts(stmt.Where)
	if len(conjs) != 3 {
		t.Fatalf("len = %d, want 3", len(conjs))
	}
	rebuilt := JoinConjuncts(conjs)
	if !EqualExpr(rebuilt, stmt.Where) {
		t.Errorf("rebuilt %s != original %s", rebuilt.SQL(), stmt.Where.SQL())
	}
	if JoinConjuncts(nil) != nil {
		t.Error("JoinConjuncts(nil) should be nil")
	}
}
