package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestLabelStringPrometheusEscaping(t *testing.T) {
	m := Metric{Name: "m", Labels: [][2]string{
		{"q", `say "hi"`},
		{"nl", "a\nb"},
		{"bs", `c:\tmp`},
		{"tab", "a\tb"},
		{"utf", "héllo→"},
	}}
	got := m.LabelString()
	want := `{q="say \"hi\"",nl="a\nb",bs="c:\\tmp",tab="a` + "\t" + `b",utf="héllo→"}`
	if got != want {
		t.Errorf("LabelString() = %s, want %s", got, want)
	}
	// The Prometheus exposition format escapes ONLY \, " and newline; Go's
	// %q escaping of tab or non-ASCII must never appear: the tab byte stays
	// literal and unicode stays raw UTF-8.
	if !strings.Contains(got, "a\tb") {
		t.Errorf("tab byte was escaped: %s", got)
	}
	for _, bad := range []string{`\u`, `\x`} {
		if strings.Contains(got, bad) {
			t.Errorf("LabelString() contains Go escape %q: %s", bad, got)
		}
	}
}

func TestValueIsNonMutating(t *testing.T) {
	r := NewRegistry()
	r.Add("present_total", 2)
	if v := r.Value("absent_total"); v != 0 {
		t.Errorf("Value(absent) = %v, want 0", v)
	}
	if v := r.Value("present_total", "extra", "label"); v != 0 {
		t.Errorf("Value(present, wrong labels) = %v, want 0", v)
	}
	if _, ok := r.Quantile("absent_seconds", 0.5); ok {
		t.Error("Quantile(absent) reported ok")
	}
	// None of the misses may have created a metric.
	if snap := r.Snapshot(); len(snap) != 1 {
		t.Fatalf("reads mutated the registry: snapshot has %d metrics, want 1", len(snap))
	}
	if v := r.Value("present_total"); v != 2 {
		t.Errorf("Value(present) = %v, want 2", v)
	}
}

func TestHistogramExactQuantiles(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 100; i++ {
		r.Observe("lat_seconds", float64(i))
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100}} {
		got, ok := r.Quantile("lat_seconds", tc.q)
		if !ok || got != tc.want {
			t.Errorf("Quantile(%v) = %v, %v; want %v, true", tc.q, got, ok, tc.want)
		}
	}
}

func TestHistogramInterpolatedQuantilesPastCap(t *testing.T) {
	r := NewRegistry()
	n := maxExactSamples + 1000
	for i := 0; i < n; i++ {
		r.Observe("big_seconds", 1.0) // bucket (0.512, 1.024]
	}
	got, ok := r.Quantile("big_seconds", 0.99)
	if !ok {
		t.Fatal("Quantile reported missing histogram")
	}
	if got < 0.512 || got > 1.024 {
		t.Errorf("interpolated p99 = %v, want within bucket (0.512, 1.024]", got)
	}
	// The sample set must have been dropped once incomplete.
	for _, m := range r.Snapshot() {
		if m.Name == "big_seconds" && m.Hist != nil && m.Hist.Samples != nil {
			t.Errorf("histogram past cap still retains %d samples", len(m.Hist.Samples))
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	if got := newHistogram().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	h := newHistogram()
	h.observe(5)
	if got := h.Quantile(-1); got != 5 {
		t.Errorf("Quantile(-1) = %v, want clamped 5", got)
	}
	if got := h.Quantile(2); got != 5 {
		t.Errorf("Quantile(2) = %v, want clamped 5", got)
	}
	// An observation beyond the last finite bound lands in +Inf and
	// quantile falls back to the last finite bound once interpolating.
	h2 := newHistogram()
	for i := 0; i < maxExactSamples+10; i++ {
		h2.observe(math.MaxFloat64 / 2)
	}
	if got := h2.Quantile(0.5); got != bucketBounds[numBuckets-1] {
		t.Errorf("+Inf-bucket quantile = %v, want last bound %v", got, bucketBounds[numBuckets-1])
	}
}

func TestWritePrometheusHistogramFamilies(t *testing.T) {
	r := NewRegistry()
	// Powers of two keep the _sum exactly representable.
	r.Observe("query_seconds", 0.0009765625, "query", "q17") // first bucket (<= 0.001)
	r.Observe("query_seconds", 0.0029296875, "query", "q17") // (0.002, 0.004]
	r.Observe("query_seconds", 0.0029296875, "query", "q17")
	var buf strings.Builder
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"# TYPE query_seconds histogram",
		`query_seconds_bucket{query="q17",le="0.001"} 1`,
		`query_seconds_bucket{query="q17",le="0.002"} 1`,
		`query_seconds_bucket{query="q17",le="0.004"} 3`,
		`query_seconds_bucket{query="q17",le="+Inf"} 3`,
		`query_seconds_sum{query="q17"} 0.0068359375`,
		`query_seconds_count{query="q17"} 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("prometheus output missing %q:\n%s", line, out)
		}
	}
	// Empty trailing finite buckets are elided: nothing between the last
	// populated bound and +Inf.
	if strings.Contains(out, `le="0.008"`) {
		t.Errorf("output contains empty trailing bucket 0.008:\n%s", out)
	}
	// Cumulative counts must be non-decreasing.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "query_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

func TestRegistryConcurrentRecorders(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Observe("conc_seconds", float64(i%10), "worker", fmt.Sprint(g%2))
				r.Add("conc_total", 1)
				_ = r.Value("conc_total")
				_, _ = r.Quantile("conc_seconds", 0.99, "worker", fmt.Sprint(g%2))
			}
		}(g)
	}
	wg.Wait()
	if v := r.Value("conc_total"); v != 8*500 {
		t.Errorf("conc_total = %v, want %v", v, 8*500)
	}
	var count uint64
	for _, m := range r.Snapshot() {
		if m.Name == "conc_seconds" {
			count += m.Hist.Count
		}
	}
	if count != 8*500 {
		t.Errorf("histogram count = %d, want %d", count, 8*500)
	}
}
