package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTimelineEmptyEvents(t *testing.T) {
	for _, events := range [][]Event{nil, {}} {
		got := Timeline(events, 80)
		if !strings.Contains(got, "no job spans recorded") {
			t.Errorf("Timeline(%v) = %q, want no-spans message", events, got)
		}
	}
	// Instants alone carry no job spans either.
	got := Timeline([]Event{InstantEvent("dfs", "write", "dfs", 1)}, 80)
	if !strings.Contains(got, "no job spans recorded") {
		t.Errorf("instants-only timeline = %q, want no-spans message", got)
	}
}

func TestTimelineZeroDurationSpans(t *testing.T) {
	events := []Event{
		SpanEvent("job", "j1", "job:j1", 0, 0), // zero-duration job
		SpanEvent("phase", "map", "job:j1", 0, 0),
	}
	got := Timeline(events, 40)
	if !strings.Contains(got, "1 job(s)") {
		t.Errorf("timeline lost the zero-duration job:\n%s", got)
	}
	// A zero-duration phase still paints at least one column.
	if !strings.Contains(got, "M") {
		t.Errorf("zero-duration map phase not painted:\n%s", got)
	}
}

func TestTimelineNarrowWidthClamped(t *testing.T) {
	events := []Event{SpanEvent("job", "j1", "job:j1", 0, 10)}
	got := Timeline(events, 1) // clamps to 20 columns
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "j1") && len(line) < 20 {
			t.Errorf("row narrower than clamp: %q", line)
		}
	}
}

func TestChromeTraceEmptyAndZeroDuration(t *testing.T) {
	for _, events := range [][]Event{nil, {}} {
		out := ChromeTrace(events)
		var parsed struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(out, &parsed); err != nil {
			t.Fatalf("ChromeTrace(%v) invalid JSON: %v\n%s", events, err, out)
		}
		if len(parsed.TraceEvents) != 1 { // only the process_name metadata
			t.Errorf("empty trace has %d events, want 1 metadata record", len(parsed.TraceEvents))
		}
	}

	out := ChromeTrace([]Event{
		SpanEvent("job", "j", "job:j", 1.5, 0, F("k", "v")), // zero duration
		InstantEvent("cmf", "dispatch", "job:j", 1.5),
	})
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	var sawZeroDur bool
	for _, e := range parsed.TraceEvents {
		if e["ph"] == "X" && e["dur"] == 0.0 {
			sawZeroDur = true
		}
	}
	if !sawZeroDur {
		t.Errorf("zero-duration span missing from trace:\n%s", out)
	}
}

func TestActiveSpanBeginWithoutEnd(t *testing.T) {
	c := NewCollector()
	_ = Begin(c, "job", "j", "driver", 0) // never Ended
	if c.Len() != 0 {
		t.Errorf("unended span emitted %d events, want 0", c.Len())
	}
}

func TestActiveSpanDoubleEndEmitsOnce(t *testing.T) {
	c := NewCollector()
	sp := Begin(c, "job", "j", "driver", 0)
	sp.End(1)
	sp.End(2, F("late", true))
	events := c.Events()
	if len(events) != 1 {
		t.Fatalf("double End emitted %d events, want 1", len(events))
	}
	if events[0].Dur != 1 {
		t.Errorf("span duration = %v, want 1 (first End wins)", events[0].Dur)
	}
}

func TestActiveSpanDisabledTracerInert(t *testing.T) {
	sp := Begin(Nop, "job", "j", "driver", 0)
	sp.End(1) // must not panic or emit
	sp2 := Begin(nil, "job", "j", "driver", 0)
	sp2.End(1)
	if sp != sp2 {
		t.Error("disabled Begins should share the inert span")
	}
}
