package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MetricKind distinguishes counters, gauges and histograms.
type MetricKind int

// Metric kinds.
const (
	// CounterKind is a monotonically accumulated value.
	CounterKind MetricKind = iota
	// GaugeKind is a last-write-wins value.
	GaugeKind
	// HistogramKind is a distribution: fixed exponential buckets plus
	// exact-count quantile estimation (see Histogram).
	HistogramKind
)

// Metric is one named value with optional labels.
type Metric struct {
	Name string
	// Labels are sorted key/value pairs.
	Labels [][2]string
	Kind   MetricKind
	// Value holds the counter or gauge value (unused for histograms).
	Value float64
	// Hist holds the distribution of a HistogramKind metric (nil otherwise).
	Hist *Histogram
}

// promEscapeValue escapes a label value per the Prometheus text exposition
// format: only backslash, double-quote and line-feed have escape sequences
// (`\\`, `\"`, `\n`); every other byte — tabs, control characters,
// non-ASCII UTF-8 — passes through verbatim. This deliberately differs
// from Go's %q, which would emit \t and \uXXXX sequences Prometheus
// parsers read literally.
var promEscapeValue = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// LabelString renders the labels as `{k="v",...}` (empty for none), with
// values escaped for the Prometheus text exposition format.
func (m Metric) LabelString() string {
	if len(m.Labels) == 0 {
		return ""
	}
	parts := make([]string, len(m.Labels))
	for i, kv := range m.Labels {
		parts[i] = fmt.Sprintf(`%s="%s"`, kv[0], promEscapeValue.Replace(kv[1]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Registry accumulates named counters and gauges. It is safe for
// concurrent use. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*Metric)}
}

// pairLabels turns alternating key,value strings into sorted pairs;
// a trailing unpaired key is dropped.
func pairLabels(labels []string) [][2]string {
	n := len(labels) / 2
	if n == 0 {
		return nil
	}
	out := make([][2]string, n)
	for i := 0; i < n; i++ {
		out[i] = [2]string{labels[2*i], labels[2*i+1]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// metricKey builds the registry map key of a name + sorted label set.
func metricKey(name string, pairs [][2]string) string {
	key := name
	for _, kv := range pairs {
		key += "\x00" + kv[0] + "\x01" + kv[1]
	}
	return key
}

func (r *Registry) metric(name string, kind MetricKind, labels []string) *Metric {
	pairs := pairLabels(labels)
	key := metricKey(name, pairs)
	m, ok := r.metrics[key]
	if !ok {
		m = &Metric{Name: name, Labels: pairs, Kind: kind}
		r.metrics[key] = m
	}
	return m
}

// Add accumulates delta into the named counter. labels are alternating
// key,value pairs.
func (r *Registry) Add(name string, delta float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metric(name, CounterKind, labels).Value += delta
}

// Set stores v into the named gauge. labels are alternating key,value pairs.
func (r *Registry) Set(name string, v float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metric(name, GaugeKind, labels)
	m.Kind = GaugeKind
	m.Value = v
}

// Value returns the current value of a counter or gauge. It is a strictly
// non-mutating read: a metric that was never recorded reports 0 and is NOT
// created — Snapshot and the Prometheus dump are unaffected by reads of
// absent names. (Histograms report 0 here; read them via Quantile or
// Snapshot.)
func (r *Registry) Value(name string, labels ...string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[metricKey(name, pairLabels(labels))]; ok {
		return m.Value
	}
	return 0
}

// Snapshot returns every metric sorted by name, then label string — a
// deterministic order for exporters and tests.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		cp := *m
		cp.Labels = append([][2]string(nil), m.Labels...)
		if m.Hist != nil {
			cp.Hist = m.Hist.clone()
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].LabelString() < out[j].LabelString()
	})
	return out
}
