package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
)

// ChromeTrace renders events in the Chrome trace-event JSON object format
// (the `{"traceEvents":[...]}` wrapper), loadable in Perfetto and
// chrome://tracing. Simulated seconds map to trace microseconds. Tracks
// become threads of a single "simulated cluster" process, numbered in
// first-appearance order, so the output is deterministic for a
// deterministic event stream.
func ChromeTrace(events []Event) []byte {
	var buf bytes.Buffer
	buf.WriteString(`{"traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.WriteString("\n")
		buf.WriteString(line)
	}

	emit(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"simulated cluster"}}`)

	// Assign tids in first-appearance order and name the threads.
	tidOf := make(map[string]int)
	for _, e := range events {
		if _, ok := tidOf[e.Track]; ok {
			continue
		}
		tid := len(tidOf) + 1
		tidOf[e.Track] = tid
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
			tid, jsonValue(e.Track)))
		emit(fmt.Sprintf(`{"name":"thread_sort_index","ph":"M","pid":1,"tid":%d,"args":{"sort_index":%d}}`,
			tid, tid))
	}

	for _, e := range events {
		var line bytes.Buffer
		fmt.Fprintf(&line, `{"name":%s,"cat":%s,`, jsonValue(e.Name), jsonValue(e.Cat))
		switch e.Kind {
		case Span:
			fmt.Fprintf(&line, `"ph":"X","ts":%s,"dur":%s,`, usec(e.Time), usec(e.Dur))
		default:
			fmt.Fprintf(&line, `"ph":"i","s":"t","ts":%s,`, usec(e.Time))
		}
		fmt.Fprintf(&line, `"pid":1,"tid":%d`, tidOf[e.Track])
		if len(e.Args) > 0 {
			line.WriteString(`,"args":{`)
			for i, f := range e.Args {
				if i > 0 {
					line.WriteByte(',')
				}
				fmt.Fprintf(&line, `%s:%s`, jsonValue(f.Key), jsonValue(f.Value))
			}
			line.WriteByte('}')
		}
		line.WriteByte('}')
		emit(line.String())
	}
	buf.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n")
	return buf.Bytes()
}

// usec renders simulated seconds as trace microseconds with fixed
// precision, so output bytes are stable across runs and platforms.
func usec(seconds float64) string {
	return strconv.FormatFloat(seconds*1e6, 'f', 3, 64)
}

// jsonValue marshals one argument value; values json cannot encode fall
// back to their fmt rendering.
func jsonValue(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return string(b)
}
