package obs

import (
	"fmt"
	"strings"
)

// Timeline renders the run's job spans as an ASCII Gantt chart, one row per
// job, scaled to width columns. Phases are drawn with distinct characters
// (gap '~', startup ':', map 'M', shuffle 'S', reduce 'R'), so task waves,
// phase overlapped-ness and scheduling gaps are visible in a terminal
// without leaving the shell. Fault-injected runs overlay recovery activity
// on the phase bars: 'x' where a failed or node-lost attempt was retried
// (or a lost map task recomputed), 'b' where a speculative backup ran.
func Timeline(events []Event, width int) string {
	if width < 20 {
		width = 20
	}
	var jobs []Event
	byTrack := make(map[string][]Event)  // phase and gap spans per track
	recovery := make(map[string][]Event) // retry and speculative spans per track
	for _, e := range events {
		if e.Kind != Span {
			continue
		}
		switch e.Cat {
		case "job":
			jobs = append(jobs, e)
		case "phase", "gap":
			byTrack[e.Track] = append(byTrack[e.Track], e)
		case "retry", "spec":
			recovery[e.Track] = append(recovery[e.Track], e)
		}
	}
	if len(jobs) == 0 {
		return "timeline: no job spans recorded\n"
	}

	origin := jobs[0].Time
	var end float64
	for _, j := range jobs {
		if j.End() > end {
			end = j.End()
		}
		for _, p := range byTrack[j.Track] {
			if p.Time < origin {
				origin = p.Time
			}
		}
	}
	total := end - origin
	if total <= 0 {
		total = 1
	}
	col := func(t float64) int {
		c := int((t - origin) / total * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}

	labelW := 0
	for _, j := range jobs {
		if n := len(j.Name); n > labelW {
			labelW = n
		}
	}
	if labelW > 36 {
		labelW = 36
	}

	var sb strings.Builder
	var sawRetry, sawSpec bool
	fmt.Fprintf(&sb, "timeline: %d job(s), %.0fs simulated\n", len(jobs), total)
	endLabel := fmt.Sprintf("%.0fs", total)
	dashes := width - 2 - len(endLabel)
	if dashes < 1 {
		dashes = 1
	}
	fmt.Fprintf(&sb, "%-*s 0s%s%s\n", labelW, "", strings.Repeat("-", dashes), endLabel)
	for _, j := range jobs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		fill := func(from, to float64, ch byte) {
			c0, c1 := col(from), col(to)
			if c1 <= c0 {
				c1 = c0 + 1
			}
			if c1 > width {
				c1 = width
			}
			for c := c0; c < c1; c++ {
				row[c] = ch
			}
		}
		for _, p := range byTrack[j.Track] {
			var ch byte
			switch {
			case p.Cat == "gap":
				ch = '~'
			case p.Name == "startup":
				ch = ':'
			case p.Name == "map":
				ch = 'M'
			case p.Name == "shuffle":
				ch = 'S'
			case p.Name == "reduce":
				ch = 'R'
			default:
				continue
			}
			fill(p.Time, p.End(), ch)
		}
		for _, p := range recovery[j.Track] {
			ch := byte('x')
			if p.Cat == "spec" {
				ch = 'b'
				sawSpec = true
			} else {
				sawRetry = true
			}
			fill(p.Time, p.End(), ch)
		}
		name := j.Name
		if len(name) > labelW {
			name = name[:labelW-1] + "…"
		}
		fmt.Fprintf(&sb, "%-*s %s %6.0fs", labelW, name, row, j.Dur)
		if v, ok := j.Arg("map_input_bytes").(int64); ok {
			fmt.Fprintf(&sb, "  in %s", FormatBytes(v))
		}
		if v, ok := j.Arg("shuffle_bytes").(int64); ok && v > 0 {
			fmt.Fprintf(&sb, "  shuffle %s", FormatBytes(v))
		}
		sb.WriteByte('\n')
	}
	legend := "legend: ~ gap  : startup  M map  S shuffle  R reduce"
	if sawRetry {
		legend += "  x retry"
	}
	if sawSpec {
		legend += "  b speculative"
	}
	sb.WriteString(legend + "\n")
	return sb.String()
}
