package httpserve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ysmart/internal/obs"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	body, _ := io.ReadAll(rec.Result().Body)
	return rec.Code, string(body)
}

func TestMetricsEndpointServesHistograms(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Observe("ysmart_query_latency_seconds", 0.25, "query", "q17")
	reg.Add("ysmart_engine_jobs_total", 3)
	s := New(reg, nil, nil)

	code, body := get(t, s.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	for _, want := range []string{
		"# TYPE ysmart_query_latency_seconds histogram",
		`ysmart_query_latency_seconds_bucket{query="q17",le="+Inf"} 1`,
		`ysmart_query_latency_seconds_count{query="q17"} 1`,
		"ysmart_engine_jobs_total 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestTraceEndpoint(t *testing.T) {
	col := obs.NewCollector()
	col.Emit(obs.SpanEvent("job", "j1", "job:j1", 0, 5))
	s := New(nil, col, nil)

	code, body := get(t, s.Handler(), "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d", code)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("/trace invalid JSON: %v", err)
	}
	if len(parsed.TraceEvents) < 2 {
		t.Errorf("/trace has %d events, want span + metadata", len(parsed.TraceEvents))
	}
}

func TestTraceEndpointNilCollector(t *testing.T) {
	code, body := get(t, New(nil, nil, nil).Handler(), "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d", code)
	}
	if !json.Valid([]byte(body)) {
		t.Errorf("/trace with nil collector not valid JSON: %s", body)
	}
}

func TestJobsEndpoint(t *testing.T) {
	s := New(nil, nil, func() any {
		return map[string]any{"done": 7, "queries": []string{"Q17"}}
	})
	code, body := get(t, s.Handler(), "/jobs")
	if code != http.StatusOK {
		t.Fatalf("/jobs status = %d", code)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(body), &obj); err != nil {
		t.Fatalf("/jobs invalid JSON: %v", err)
	}
	if obj["done"] != 7.0 {
		t.Errorf("/jobs done = %v, want 7", obj["done"])
	}

	// Swapping the callback while serving must take effect.
	s.SetJobs(func() any { return map[string]any{"done": 8} })
	_, body = get(t, s.Handler(), "/jobs")
	if !strings.Contains(body, "8") {
		t.Errorf("SetJobs not picked up: %s", body)
	}
}

func TestPprofAndIndexEndpoints(t *testing.T) {
	s := New(nil, nil, nil)
	for _, path := range []string{"/", "/debug/pprof/", "/debug/pprof/cmdline"} {
		code, _ := get(t, s.Handler(), path)
		if code != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, code)
		}
	}
	if code, _ := get(t, s.Handler(), "/nope"); code != http.StatusNotFound {
		t.Errorf("/nope status = %d, want 404", code)
	}
}

func TestStartServesOnRealSocket(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Observe("lat_seconds", 1)
	s := New(reg, nil, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "lat_seconds_count") {
		t.Errorf("real-socket /metrics = %d %q", resp.StatusCode, body)
	}
}

// TestConcurrentRecordersAndScrapes drives writers into the registry and
// collector while handlers scrape — the race-detector proof for the
// acceptance criterion.
func TestConcurrentRecordersAndScrapes(t *testing.T) {
	reg := obs.NewRegistry()
	col := obs.NewCollector()
	var mu sync.Mutex
	done := 0
	s := New(reg, col, func() any {
		mu.Lock()
		defer mu.Unlock()
		return map[string]int{"done": done}
	})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reg.Observe("lat_seconds", float64(i)/100)
				reg.Add("ops_total", 1)
				col.Emit(obs.SpanEvent("job", "j", "job:j", float64(i), 1))
				mu.Lock()
				done++
				mu.Unlock()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, path := range []string{"/metrics", "/jobs", "/trace"} {
					if code, _ := get(t, s.Handler(), path); code != http.StatusOK {
						t.Errorf("%s = %d under load", path, code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestHandleAndJSONHandler(t *testing.T) {
	s := New(nil, nil, nil)
	type sess struct {
		ID   int    `json:"id"`
		User string `json:"user"`
	}
	s.Handle("/sessions", JSONHandler(func() any {
		return []sess{{ID: 1, User: "alice"}}
	}))

	code, body := get(t, s.Handler(), "/sessions")
	if code != http.StatusOK {
		t.Fatalf("/sessions status = %d", code)
	}
	var got []sess
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("/sessions not valid JSON: %v\n%s", err, body)
	}
	if len(got) != 1 || got[0].User != "alice" {
		t.Fatalf("/sessions = %+v", got)
	}
	if !strings.Contains(body, "\n  ") {
		t.Errorf("/sessions not indented like /jobs:\n%s", body)
	}
}

func TestJSONHandlerMarshalError(t *testing.T) {
	h := JSONHandler(func() any { return func() {} }) // funcs cannot marshal
	req := httptest.NewRequest("GET", "/broken", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("marshal failure status = %d, want 500", rec.Code)
	}
}
