// Package httpserve is the embedded admin HTTP plane of the simulator's
// observability layer: a small server any binary can hang off a -listen
// flag to expose, while work is running,
//
//   - /metrics        the obs.Registry in Prometheus text format
//     (counter/gauge lines plus _bucket/_sum/_count
//     histogram families),
//   - /debug/pprof/*  the Go runtime profiler,
//   - /trace          the collected span stream as a Chrome trace-event
//     JSON download (loadable in Perfetto), and
//   - /jobs           a live JSON snapshot of job/chain status supplied
//     by the hosting command.
//
// The server only ever reads: the registry and collector are the
// concurrency-safe types producers already write through, and the jobs
// callback returns a snapshot the host builds under its own lock, so
// scraping never perturbs a run.
package httpserve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"ysmart/internal/obs"
)

// JobsFunc returns the host's live job/chain status. The returned value
// is marshalled as JSON; it must be a snapshot safe to read after return.
type JobsFunc func() any

// Server is the admin HTTP endpoint set over one registry and collector.
type Server struct {
	mux *http.ServeMux

	mu   sync.Mutex
	reg  *obs.Registry
	col  *obs.Collector
	jobs JobsFunc

	ln  net.Listener
	srv *http.Server
}

// New builds a server over a registry (may be nil: /metrics serves an
// empty dump), a trace collector (may be nil: /trace serves an empty
// trace) and a jobs callback (may be nil: /jobs serves null).
func New(reg *obs.Registry, col *obs.Collector, jobs JobsFunc) *Server {
	s := &Server{reg: reg, col: col, jobs: jobs, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// SetJobs swaps the live-status callback (e.g. once a load run has built
// its worker state). Safe to call while serving.
func (s *Server) SetJobs(jobs JobsFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs = jobs
}

// Handle registers an extra endpoint on the admin mux (e.g. the SQL
// server's /sessions). It must be called before Start; the path appears in
// the root index only if the host adds it there itself.
func (s *Server) Handle(path string, h http.HandlerFunc) {
	s.mux.HandleFunc(path, h)
}

// JSONHandler adapts a snapshot callback into an endpoint serving its
// result as indented JSON — the same shape /jobs uses, for hosts exposing
// additional live views (sessions, cache stats).
func JSONHandler(snapshot func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

// Handler returns the server's routing handler, for tests and for embedding
// into an existing http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free port) and serves
// in a background goroutine. It returns the bound address, so callers
// using ":0" learn the real port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("admin listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// handleIndex lists the endpoints, so a browser hitting the root finds
// its way around.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "ysmart admin endpoints:\n"+
		"  /metrics       Prometheus text exposition (histograms as _bucket/_sum/_count)\n"+
		"  /jobs          live job/chain status (JSON)\n"+
		"  /trace         Chrome trace-event JSON download (Perfetto)\n"+
		"  /debug/pprof/  Go runtime profiles\n")
}

// handleMetrics serves the registry in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	reg := s.reg
	s.mu.Unlock()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, reg)
}

// handleTrace serves the collector's events as a Chrome trace download.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	col := s.col
	s.mu.Unlock()
	var events []obs.Event
	if col != nil {
		events = col.Events()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="ysmart-trace.json"`)
	_, _ = w.Write(obs.ChromeTrace(events))
}

// handleJobs serves the host's live status snapshot as indented JSON.
func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := s.jobs
	s.mu.Unlock()
	var v any
	if jobs != nil {
		v = jobs()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
