package obs

import (
	"bytes"
	"io"
	"sync"
)

// Level orders log events by severity.
type Level int

// Log levels, least to most severe.
const (
	// LevelDebug is high-volume detail: per-attempt fault scheduling,
	// per-rule translator decisions.
	LevelDebug Level = iota
	// LevelInfo is lifecycle events: chains, jobs, merges.
	LevelInfo
	// LevelWarn is recoverable trouble: retries, recomputes, node deaths.
	LevelWarn
	// LevelError is failures that abort work.
	LevelError
)

// String returns the level's lower-case name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// Logger writes one JSON object per event, one event per line, so job
// lifecycle, retries, speculation and plan-merge decisions are greppable
// as a single stream (`jq 'select(.event=="task.retry")'`). Field order is
// deterministic: "level" and "event" first, then the caller's fields in
// the order given — never sorted, never wall-clock-stamped, so identical
// runs log identical bytes. Producers stamp simulated time as an ordinary
// field when they have it.
//
// A nil *Logger is a valid no-op: every method short-circuits, so
// producers thread loggers unconditionally and pay one nil check when
// logging is off. Logger is safe for concurrent use; each event is
// written in one Write call.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
}

// NewLogger returns a logger writing events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// Enabled reports whether events at lvl would be written. Producers can
// gate expensive field construction on it.
func (l *Logger) Enabled(lvl Level) bool {
	return l != nil && lvl >= l.min
}

// Log writes one event at lvl. Fields render in the order given, after
// the fixed "level" and "event" keys.
func (l *Logger) Log(lvl Level, event string, fields ...Field) {
	if !l.Enabled(lvl) {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(`{"level":`)
	buf.WriteString(jsonValue(lvl.String()))
	buf.WriteString(`,"event":`)
	buf.WriteString(jsonValue(event))
	for _, f := range fields {
		buf.WriteByte(',')
		buf.WriteString(jsonValue(f.Key))
		buf.WriteByte(':')
		buf.WriteString(jsonValue(f.Value))
	}
	buf.WriteString("}\n")
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(buf.Bytes())
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(event string, fields ...Field) { l.Log(LevelDebug, event, fields...) }

// Info logs at LevelInfo.
func (l *Logger) Info(event string, fields ...Field) { l.Log(LevelInfo, event, fields...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(event string, fields ...Field) { l.Log(LevelWarn, event, fields...) }

// Error logs at LevelError.
func (l *Logger) Error(event string, fields ...Field) { l.Log(LevelError, event, fields...) }

// ParseLevel maps a level name ("debug", "info", "warn", "error") to its
// Level; unknown names default to LevelInfo with ok=false.
func ParseLevel(name string) (Level, bool) {
	switch name {
	case "debug":
		return LevelDebug, true
	case "info":
		return LevelInfo, true
	case "warn":
		return LevelWarn, true
	case "error":
		return LevelError, true
	}
	return LevelInfo, false
}
