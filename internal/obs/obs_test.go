package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNopTracerDisabled(t *testing.T) {
	if Nop.Enabled() {
		t.Error("Nop tracer must report disabled")
	}
	Nop.Emit(Event{Name: "x"}) // must not panic
}

func TestCollectorRecordsInOrder(t *testing.T) {
	c := NewCollector()
	if !c.Enabled() {
		t.Error("collector must report enabled")
	}
	c.Emit(SpanEvent("job", "j1", "job:j1", 0, 10, F("k", int64(1))))
	c.Emit(InstantEvent("dfs", "dfs.read", "dfs", 3, F("path", "tables/x")))
	ev := c.Events()
	if len(ev) != 2 || c.Len() != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Name != "j1" || ev[0].Kind != Span || ev[0].End() != 10 {
		t.Errorf("span event wrong: %+v", ev[0])
	}
	if ev[1].Kind != Instant || ev[1].Arg("path") != "tables/x" {
		t.Errorf("instant event wrong: %+v", ev[1])
	}
	if ev[0].Arg("missing") != nil {
		t.Error("missing arg should be nil")
	}
	c.Reset()
	if c.Len() != 0 {
		t.Error("reset did not clear events")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Add("jobs_total", 1)
	r.Add("jobs_total", 2)
	r.Add("rows_total", 5, "op", "AGG1")
	r.Add("rows_total", 7, "op", "JOIN2")
	r.Set("scale", 1.5)
	r.Set("scale", 2.5)

	if got := r.Value("jobs_total"); got != 3 {
		t.Errorf("jobs_total = %v, want 3", got)
	}
	if got := r.Value("rows_total", "op", "AGG1"); got != 5 {
		t.Errorf("rows_total{AGG1} = %v", got)
	}
	if got := r.Value("scale"); got != 2.5 {
		t.Errorf("gauge = %v, want last write 2.5", got)
	}
	if got := r.Value("absent"); got != 0 {
		t.Errorf("absent metric = %v, want 0", got)
	}

	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d metrics, want 4", len(snap))
	}
	// Sorted by name then labels.
	wantOrder := []string{"jobs_total", "rows_total{op=\"AGG1\"}", "rows_total{op=\"JOIN2\"}", "scale"}
	for i, m := range snap {
		if m.Name+m.LabelString() != wantOrder[i] {
			t.Errorf("snapshot[%d] = %s%s, want %s", i, m.Name, m.LabelString(), wantOrder[i])
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Add("ysmart_engine_jobs_total", 4)
	r.Add("ysmart_cmf_op_input_rows_total", 10, "op", "AGG1")
	r.Set("ysmart_engine_data_scale", 12.5)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ysmart_engine_jobs_total counter",
		"ysmart_engine_jobs_total 4",
		`ysmart_cmf_op_input_rows_total{op="AGG1"} 10`,
		"# TYPE ysmart_engine_data_scale gauge",
		"ysmart_engine_data_scale 12.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus dump missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceValidAndDeterministic(t *testing.T) {
	build := func() []byte {
		c := NewCollector()
		c.Emit(SpanEvent("job", "j1", "job:j1", 0, 10, F("map_input_bytes", int64(1024))))
		c.Emit(SpanEvent("phase", "map", "job:j1", 0, 6))
		c.Emit(InstantEvent("dfs", "dfs.read", "dfs", 0, F("path", "tables/t"), F("bytes", int64(77))))
		return ChromeTrace(c.Events())
	}
	b1, b2 := build(), build()
	if !bytes.Equal(b1, b2) {
		t.Error("ChromeTrace output is not deterministic")
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b1, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"] == nil || e["tid"] == nil {
				t.Errorf("span missing dur/tid: %v", e)
			}
		case "i":
			instants++
		case "M":
			meta++
		}
	}
	if spans != 2 || instants != 1 || meta == 0 {
		t.Errorf("spans=%d instants=%d meta=%d", spans, instants, meta)
	}
}

func TestTimelineRendersPhases(t *testing.T) {
	c := NewCollector()
	c.Emit(SpanEvent("gap", "gap", "job:j2", 100, 20))
	c.Emit(SpanEvent("job", "j1", "job:j1", 0, 100, F("map_input_bytes", int64(2<<20)), F("shuffle_bytes", int64(1<<20))))
	c.Emit(SpanEvent("phase", "startup", "job:j1", 0, 12))
	c.Emit(SpanEvent("phase", "map", "job:j1", 12, 50))
	c.Emit(SpanEvent("phase", "shuffle", "job:j1", 62, 18))
	c.Emit(SpanEvent("phase", "reduce", "job:j1", 80, 20))
	c.Emit(SpanEvent("job", "j2", "job:j2", 120, 60))
	c.Emit(SpanEvent("phase", "map", "job:j2", 120, 60))
	out := Timeline(c.Events(), 40)
	for _, want := range []string{"j1", "j2", "M", "S", "R", "~", "2.00MB", "1.00MB", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if Timeline(nil, 40) == "" {
		t.Error("empty timeline should still render a message")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.00KB",
		3 << 20: "3.00MB",
		5 << 30: "5.00GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}
