package obs

import (
	"reflect"
	"testing"
)

// TestBeginEndEmitsSpan: a Begin/End pair emits one Span event whose
// duration is end-start and whose args are Begin's followed by End's.
func TestBeginEndEmitsSpan(t *testing.T) {
	c := NewCollector()
	sp := Begin(c, "chain", "chain(2 jobs)", "driver", 10, F("jobs", int64(2)))
	sp.End(25, F("bytes", int64(100)))

	events := c.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	e := events[0]
	if e.Kind != Span || e.Cat != "chain" || e.Name != "chain(2 jobs)" || e.Track != "driver" {
		t.Errorf("event = %+v", e)
	}
	if e.Time != 10 || e.Dur != 15 {
		t.Errorf("time/dur = %v/%v, want 10/15", e.Time, e.Dur)
	}
	want := []Field{F("jobs", int64(2)), F("bytes", int64(100))}
	if !reflect.DeepEqual(e.Args, want) {
		t.Errorf("args = %v, want %v", e.Args, want)
	}
}

// TestEndIsIdempotent: a second End emits nothing.
func TestEndIsIdempotent(t *testing.T) {
	c := NewCollector()
	sp := Begin(c, "job", "j", "driver", 0)
	sp.End(1)
	sp.End(2)
	if c.Len() != 1 {
		t.Fatalf("got %d events after double End, want 1", c.Len())
	}
}

// TestBeginDisabledTracer: Begin on the Nop tracer (or nil) returns an
// inert span; End never emits and never mutates the shared inert span.
func TestBeginDisabledTracer(t *testing.T) {
	sp := Begin(Nop, "job", "j", "driver", 0)
	sp.End(1)
	if sp != Begin(nil, "job", "j", "driver", 0) {
		t.Error("disabled Begins should share the inert span")
	}
	// A collector attached after the inert span was Ended still works,
	// i.e. the shared span was not marked ended.
	c := NewCollector()
	sp2 := Begin(c, "job", "j2", "driver", 3)
	sp2.End(4)
	if c.Len() != 1 {
		t.Fatalf("got %d events, want 1", c.Len())
	}
}

// TestBeginEndNoExtraArgs: End without args reuses the Begin arg slice.
func TestBeginEndNoExtraArgs(t *testing.T) {
	c := NewCollector()
	sp := Begin(c, "phase", "map", "job:q", 1, F("tasks", int64(4)))
	sp.End(2)
	e := c.Events()[0]
	want := []Field{F("tasks", int64(4))}
	if !reflect.DeepEqual(e.Args, want) {
		t.Errorf("args = %v, want %v", e.Args, want)
	}
}
