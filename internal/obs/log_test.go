package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLoggerDeterministicFieldOrder(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelDebug)
	l.Info("job.done", F("job", "q21-job1"), F("sim_s", 12.5), F("retries", int64(2)), F("ok", true))
	got := buf.String()
	want := `{"level":"info","event":"job.done","job":"q21-job1","sim_s":12.5,"retries":2,"ok":true}` + "\n"
	if got != want {
		t.Errorf("logged line = %s, want %s", got, want)
	}
	// Every line must be valid JSON.
	var obj map[string]any
	if err := json.Unmarshal([]byte(got), &obj); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelWarn)
	l.Debug("a")
	l.Info("b")
	l.Warn("c")
	l.Error("d")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], `"warn"`) || !strings.Contains(lines[1], `"error"`) {
		t.Errorf("unexpected lines: %q", lines)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled thresholds wrong")
	}
}

func TestLoggerNilIsNoop(t *testing.T) {
	var l *Logger
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
	// Must not panic.
	l.Info("event", F("k", "v"))
	l.Log(LevelError, "event")
}

func TestLoggerEscapesStrings(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, LevelInfo)
	l.Info("weird", F("msg", "line1\nline2 \"quoted\""))
	var obj map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &obj); err != nil {
		t.Fatalf("line is not valid JSON: %v\n%s", err, buf.String())
	}
	if obj["msg"] != "line1\nline2 \"quoted\"" {
		t.Errorf("round-tripped msg = %q", obj["msg"])
	}
}

func TestLoggerConcurrentWriters(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Info("tick", F("n", int64(i)))
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("got %d lines, want %d", len(lines), 8*200)
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("interleaved write produced invalid JSON line %q: %v", line, err)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for name, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn, "error": LevelError,
	} {
		got, ok := ParseLevel(name)
		if !ok || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", name, got, ok)
		}
	}
	if _, ok := ParseLevel("loud"); ok {
		t.Error("ParseLevel accepted unknown name")
	}
}

// syncBuffer is a mutex-guarded strings.Builder for concurrent tests.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
