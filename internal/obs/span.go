package obs

// ActiveSpan is a span that has begun but not yet ended: the duration of
// the work between Begin and End on the simulated clock. It exists for
// producers that learn a span's extent (and its trailing annotations)
// only at the end of a computation with early exits — the chain driver,
// for example, knows its job count up front but its byte totals only
// after the last job.
//
// The contract, enforced statically by the ysmart-vet `spanpair`
// analyzer, is that every Begin is matched by exactly one End on every
// return path of the enclosing function; `defer span.End(...)` is the
// idiomatic way to satisfy it. A second End is a no-op, so an early
// explicit End composes safely with a deferred one.
type ActiveSpan struct {
	t     Tracer
	cat   string
	name  string
	track string
	start float64
	args  []Field
	ended bool
}

// inertSpan is shared by every Begin on a disabled tracer, keeping the
// disabled path allocation-free (the same guarantee Tracer.Enabled gives
// direct Emit call sites).
var inertSpan = &ActiveSpan{}

// Begin opens a span at start on the tracer. Leading args are recorded
// now; End appends its own and emits the completed event. On a disabled
// tracer Begin returns an inert span whose End does nothing.
func Begin(t Tracer, cat, name, track string, start float64, args ...Field) *ActiveSpan {
	if t == nil || !t.Enabled() {
		return inertSpan
	}
	return &ActiveSpan{t: t, cat: cat, name: name, track: track, start: start, args: args}
}

// End closes the span at end, emitting one Span event whose duration is
// end-start and whose args are the Begin args followed by End's. Calling
// End again (or Ending an inert span) is a no-op.
func (s *ActiveSpan) End(end float64, args ...Field) {
	if s.t == nil || s.ended {
		return
	}
	s.ended = true
	all := s.args
	if len(args) > 0 {
		all = make([]Field, 0, len(s.args)+len(args))
		all = append(all, s.args...)
		all = append(all, args...)
	}
	s.t.Emit(SpanEvent(s.cat, s.name, s.track, s.start, end-s.start, all...))
}
