package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (one `# TYPE` header per metric family, then `name{labels} value`
// lines), sorted by name then labels so output is deterministic.
//
// Histograms render as the spec's three families: cumulative
// `name_bucket{le="..."}` lines ending at `le="+Inf"`, plus `name_sum` and
// `name_count`. Empty trailing buckets are elided — the bucket list stops
// at the first bound that already holds every observation, then jumps to
// +Inf — keeping text dumps of wide fixed layouts readable while staying
// cumulative and therefore spec-valid.
func WritePrometheus(w io.Writer, r *Registry) error {
	lastFamily := ""
	for _, m := range r.Snapshot() {
		if m.Name != lastFamily {
			kind := "counter"
			switch m.Kind {
			case GaugeKind:
				kind = "gauge"
			case HistogramKind:
				kind = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, kind); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		if m.Kind == HistogramKind {
			if err := writeHistogram(w, m); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			m.Name, m.LabelString(), formatFloat(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram metric's _bucket/_sum/_count lines.
func writeHistogram(w io.Writer, m Metric) error {
	h := m.Hist
	if h == nil {
		h = newHistogram()
	}
	var cum uint64
	for i, c := range h.Counts[:len(h.Bounds)] {
		cum += c
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			m.Name, bucketLabels(m.Labels, formatFloat(h.Bounds[i])), cum); err != nil {
			return err
		}
		if cum == h.Count {
			break // remaining finite buckets are empty; +Inf closes the family
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		m.Name, bucketLabels(m.Labels, "+Inf"), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", m.Name, m.LabelString(), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, m.LabelString(), h.Count)
	return err
}

// bucketLabels renders a metric's labels with `le` appended last.
func bucketLabels(labels [][2]string, le string) string {
	m := Metric{Labels: append(append([][2]string(nil), labels...), [2]string{"le", le})}
	return m.LabelString()
}

// formatFloat is the canonical number rendering of the exporter.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
