package obs

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (one `# TYPE` header per metric family, then `name{labels} value`
// lines), sorted by name then labels so output is deterministic.
func WritePrometheus(w io.Writer, r *Registry) error {
	lastFamily := ""
	for _, m := range r.Snapshot() {
		if m.Name != lastFamily {
			kind := "counter"
			if m.Kind == GaugeKind {
				kind = "gauge"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, kind); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			m.Name, m.LabelString(), strconv.FormatFloat(m.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}
