package obs

import (
	"math"
	"sort"
)

// maxExactSamples bounds the raw observations a histogram retains for
// exact quantiles. Up to this many observations Quantile answers from the
// sorted raw samples (exact-count estimation); beyond it the histogram
// stops retaining samples and Quantile falls back to linear interpolation
// inside the exponential buckets. The cap keeps a long-running recorder's
// memory bounded while load runs of a few thousand queries still get
// exact percentiles.
const maxExactSamples = 4096

// numBuckets fixed exponential buckets starting at bucketStart and
// doubling each step cover ~1e-3 .. 1.4e11: microsecond-scale latencies
// through hundred-gigabyte byte counts with one shared layout, so every
// histogram family in a Prometheus scrape has identical `le` bounds.
const (
	numBuckets  = 48
	bucketStart = 1e-3
)

// bucketBounds is the shared upper-bound table (ascending, +Inf implicit).
var bucketBounds = func() []float64 {
	b := make([]float64, numBuckets)
	v := bucketStart
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is the distribution payload of a HistogramKind metric: fixed
// exponential bucket counts for Prometheus export plus (up to
// maxExactSamples) the raw observations for exact quantile estimation.
// Values are expected to be non-negative (simulated seconds, bytes, rows);
// a negative observation lands in the first bucket.
type Histogram struct {
	// Bounds are the ascending bucket upper bounds; the final implicit
	// bucket is +Inf. Every histogram shares one fixed exponential layout.
	Bounds []float64
	// Counts holds per-bucket observation counts, len(Bounds)+1 entries
	// with the +Inf bucket last. Counts are NOT cumulative; the Prometheus
	// exporter accumulates them into the spec's cumulative `_bucket` form.
	Counts []uint64
	// Sum and Count are the totals exported as `_sum` and `_count`.
	Sum   float64
	Count uint64
	// Samples retains raw observations while Count <= maxExactSamples
	// (insertion order; Quantile sorts a copy).
	Samples []float64
}

// newHistogram returns an empty histogram on the shared bucket layout.
func newHistogram() *Histogram {
	return &Histogram{Bounds: bucketBounds, Counts: make([]uint64, numBuckets+1)}
}

// observe records one value. Callers hold the owning registry's lock.
func (h *Histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v) // first bound >= v; numBuckets means +Inf
	h.Counts[i]++
	h.Sum += v
	h.Count++
	if h.Count <= maxExactSamples {
		h.Samples = append(h.Samples, v)
	} else {
		h.Samples = nil // past the cap the raw set is no longer complete
	}
}

// clone deep-copies the histogram for Snapshot.
func (h *Histogram) clone() *Histogram {
	cp := &Histogram{Bounds: h.Bounds, Sum: h.Sum, Count: h.Count}
	cp.Counts = append([]uint64(nil), h.Counts...)
	cp.Samples = append([]float64(nil), h.Samples...)
	return cp
}

// Quantile estimates the q-quantile (q in [0,1]) of the recorded
// distribution. While the histogram still holds its complete raw sample
// set the answer is exact (nearest-rank on the sorted samples); afterwards
// it is linearly interpolated inside the exponential bucket containing the
// target rank. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if uint64(len(h.Samples)) == h.Count {
		s := append([]float64(nil), h.Samples...)
		sort.Float64s(s)
		rank := int(math.Ceil(q * float64(len(s))))
		if rank < 1 {
			rank = 1
		}
		return s[rank-1]
	}
	target := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum < target {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		if i >= len(h.Bounds) {
			// +Inf bucket: the last finite bound is the best answer.
			return h.Bounds[len(h.Bounds)-1]
		}
		frac := (target - (cum - float64(c))) / float64(c)
		return lo + frac*(h.Bounds[i]-lo)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Observe records v into the named histogram. labels are alternating
// key,value pairs. Recording a histogram under a name previously used as a
// counter or gauge converts the metric (last kind wins, like Set).
func (r *Registry) Observe(name string, v float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metric(name, HistogramKind, labels)
	m.Kind = HistogramKind
	if m.Hist == nil {
		m.Hist = newHistogram()
	}
	m.Hist.observe(v)
}

// Quantile estimates the q-quantile of the named histogram. The bool is
// false when no such histogram exists. Like Value, it is a non-mutating
// read: a miss does not create the metric.
func (r *Registry) Quantile(name string, q float64, labels ...string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[metricKey(name, pairLabels(labels))]
	if !ok || m.Hist == nil {
		return 0, false
	}
	return m.Hist.Quantile(q), true
}
