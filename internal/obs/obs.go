// Package obs is the zero-dependency tracing and metrics layer of the
// simulated MapReduce stack. Producers (the engine, the DFS, the common
// reducer, the translator's merging rules) emit typed events stamped with
// the *simulated* clock through a Tracer; a Registry accumulates named
// counters and gauges. Exporters render collected events as Chrome
// trace-event JSON (chrome.go, loadable in Perfetto), an ASCII Gantt
// timeline (timeline.go), and a Prometheus-style text dump (prom.go).
//
// The default Nop tracer makes untraced runs byte-for-byte identical to
// instrumented builds: producers guard event construction behind
// Tracer.Enabled, so the only cost of the layer when disabled is one
// interface call per site.
//
// Everything in this package is deterministic: events carry no wall-clock
// reads, collectors preserve emission order, and every exporter sorts any
// map it touches, so identical runs produce identical bytes.
package obs

import "sync"

// EventKind distinguishes the two event shapes.
type EventKind int

// Event kinds.
const (
	// Span is a duration event: [Time, Time+Dur] on its track.
	Span EventKind = iota
	// Instant is a point event at Time.
	Instant
)

// Field is one ordered key/value annotation of an event. Values should be
// strings, integers, floats or bools (the types the exporters render).
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one typed trace event on the simulated clock.
type Event struct {
	// Name labels the event (a job name, a phase, a rule).
	Name string
	// Cat is the event category: "chain", "job", "phase", "wave", "task",
	// "gap", "dfs", "cmf", "translator". Exporters group and style by it.
	Cat  string
	Kind EventKind
	// Track names the horizontal lane the event belongs to (a Chrome trace
	// thread): "driver", "translator", "dfs", or "job:<name>".
	Track string
	// Time is the event start in simulated seconds since the run began.
	Time float64
	// Dur is the span length in simulated seconds (zero for instants).
	Dur float64
	// Args are ordered annotations (counters, paths, provenance).
	Args []Field
}

// End returns the span's end time (Time for instants).
func (e Event) End() float64 { return e.Time + e.Dur }

// Arg returns the value of the named annotation, or nil.
func (e Event) Arg(key string) any {
	for _, f := range e.Args {
		if f.Key == key {
			return f.Value
		}
	}
	return nil
}

// SpanEvent builds a duration event.
func SpanEvent(cat, name, track string, start, dur float64, args ...Field) Event {
	return Event{Name: name, Cat: cat, Kind: Span, Track: track, Time: start, Dur: dur, Args: args}
}

// InstantEvent builds a point event.
func InstantEvent(cat, name, track string, at float64, args ...Field) Event {
	return Event{Name: name, Cat: cat, Kind: Instant, Track: track, Time: at, Args: args}
}

// Tracer receives events. Implementations must be safe for use from a
// single producer goroutine; the Collector is additionally safe for
// concurrent use.
type Tracer interface {
	Emit(Event)
	// Enabled reports whether events are recorded; producers skip building
	// events entirely when it returns false.
	Enabled() bool
}

// Nop is the default tracer: it records nothing and reports disabled.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) Emit(Event)    {}
func (nopTracer) Enabled() bool { return false }

// Collector is a Tracer that records every event in emission order.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit implements Tracer.
func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

// Enabled implements Tracer.
func (c *Collector) Enabled() bool { return true }

// Events returns a copy of the recorded events in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// Len reports the number of recorded events.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards all recorded events.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = nil
}
