package obs

import "fmt"

// FormatBytes renders a byte count with a binary-unit suffix (the shared
// human formatting used by stats strings, the CLI and the exporters).
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
