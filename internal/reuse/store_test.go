package reuse

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
)

// rec stores one entry under key whose encoded size is exactly bytes
// (one line of bytes-1 characters plus the newline the store accounts).
func rec(s *Store, key string, bytes int, predicted float64) {
	s.Record(key, key, nil, nil, []string{strings.Repeat("x", bytes-1)}, predicted)
}

// hitN looks key up n times to build demonstrated demand.
func hitN(t *testing.T, s *Store, key string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, ok := s.Lookup(key); !ok {
			t.Fatalf("warm-up lookup %d of %q missed", i, key)
		}
	}
}

// TestEvictionScenarios pins the cost-model eviction policy with
// deterministic scenarios: retention score is
// PredictedSeconds × (1 + Hits) / Bytes, lowest goes first, ties break on
// insertion order. Each scenario names the exact survivors.
func TestEvictionScenarios(t *testing.T) {
	scenarios := []struct {
		name      string
		run       func(t *testing.T, s *Store)
		survivors []string
	}{
		{
			name: "under-cap-keeps-everything",
			run: func(t *testing.T, s *Store) {
				rec(s, "a", 40, 1)
				rec(s, "b", 40, 1)
			},
			survivors: []string{"a", "b"},
		},
		{
			name: "cheapest-seconds-per-byte-goes-first",
			run: func(t *testing.T, s *Store) {
				rec(s, "a", 60, 60) // 1.0 s/byte
				rec(s, "b", 60, 6)  // 0.1 s/byte: the new entry is its own victim
			},
			survivors: []string{"a"},
		},
		{
			name: "hits-raise-retention",
			run: func(t *testing.T, s *Store) {
				rec(s, "a", 60, 10)
				hitN(t, s, "a", 5)  // score 10×6/60 = 1.0
				rec(s, "b", 60, 10) // score 10×1/60 ≈ 0.17
			},
			survivors: []string{"a"},
		},
		{
			name: "equal-scores-evict-oldest",
			run: func(t *testing.T, s *Store) {
				rec(s, "a", 60, 10)
				rec(s, "b", 60, 10)
			},
			survivors: []string{"b"},
		},
		{
			name: "evicts-repeatedly-until-under-cap",
			run: func(t *testing.T, s *Store) {
				rec(s, "a", 30, 1)
				rec(s, "b", 30, 2)
				rec(s, "c", 90, 100)
			},
			survivors: []string{"c"},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			s := NewStore(100, nil)
			sc.run(t, s)
			if got := s.Keys(); !reflect.DeepEqual(got, sc.survivors) {
				t.Errorf("survivors %v, want %v", got, sc.survivors)
			}
			if s.capBytes > 0 && s.BytesStored() > s.capBytes {
				t.Errorf("stored %d bytes over the %d cap", s.BytesStored(), s.capBytes)
			}
		})
	}
}

// TestRecordReplaceKeepsHits replacing an entry under the same key must
// keep its demonstrated demand, or a refresh would reset its retention.
func TestRecordReplaceKeepsHits(t *testing.T) {
	s := NewStore(0, nil)
	rec(s, "a", 40, 10)
	hitN(t, s, "a", 3)
	rec(s, "a", 50, 10)
	e, ok := s.Lookup("a")
	if !ok {
		t.Fatal("replaced entry missing")
	}
	if e.Hits != 4 { // 3 warm-ups + this lookup
		t.Errorf("Hits = %d after replace, want 4", e.Hits)
	}
	if s.BytesStored() != 50 {
		t.Errorf("BytesStored = %d, want 50 (old bytes released)", s.BytesStored())
	}
}

// TestStalenessGuard is the ISSUE's latent-hazard fix, proven from the
// failure side first: a DFS write to a base-table path must not leave
// dependent materialized outputs silently reusable. An unwatched store
// demonstrates the hazard; the write observer (WatchDFS) is the guard.
func TestStalenessGuard(t *testing.T) {
	record := func(s *Store) {
		ep := s.SnapshotEpochs([]string{"tables/clicks"})
		s.Record("k", "fp", []string{"tables/clicks"}, ep, []string{"out"}, 1)
	}

	// The hazard: without the observer the store cannot see the overwrite
	// and happily serves an artifact computed from data that no longer
	// exists. This is why every runtime attaches WatchDFS before running.
	t.Run("unwatched-store-serves-stale", func(t *testing.T) {
		dfs := mapreduce.NewDFS()
		dfs.Write("tables/clicks", []string{"old"})
		s := NewStore(0, nil)
		record(s)
		dfs.Write("tables/clicks", []string{"new"})
		if _, ok := s.Lookup("k"); !ok {
			t.Fatal("unwatched store missed — the hazard this test documents no longer reproduces; update the guard test")
		}
	})

	mutations := map[string]func(d *mapreduce.DFS){
		"write":  func(d *mapreduce.DFS) { d.Write("tables/clicks", []string{"new"}) },
		"append": func(d *mapreduce.DFS) { d.Append("tables/clicks", []string{"more"}) },
		"delete": func(d *mapreduce.DFS) { d.Delete("tables/clicks") },
	}
	for name, mutate := range mutations {
		t.Run("watched-store-invalidates-on-"+name, func(t *testing.T) {
			reg := obs.NewRegistry()
			dfs := mapreduce.NewDFS()
			dfs.Write("tables/clicks", []string{"old"})
			s := NewStore(0, reg)
			s.WatchDFS(dfs)
			record(s)
			if _, ok := s.Lookup("k"); !ok {
				t.Fatal("fresh entry missed before any mutation")
			}
			mutate(dfs)
			if _, ok := s.Lookup("k"); ok {
				t.Fatalf("stale artifact served after base-table %s", name)
			}
			if s.Len() != 0 {
				t.Errorf("stale entry still stored")
			}
			if got := reg.Value("ysmart_reuse_invalidations_total"); got != 1 {
				t.Errorf("invalidations counter = %v, want 1", got)
			}
		})
	}

	// Job outputs are products of the inputs, not inputs: writes under
	// tmp/ or restore/ must not invalidate anything.
	t.Run("non-table-writes-are-ignored", func(t *testing.T) {
		dfs := mapreduce.NewDFS()
		dfs.Write("tables/clicks", []string{"old"})
		s := NewStore(0, nil)
		s.WatchDFS(dfs)
		record(s)
		dfs.Write("tmp/q/job-1", []string{"x"})
		dfs.Write("restore/abc", []string{"y"})
		if _, ok := s.Lookup("k"); !ok {
			t.Error("intermediate-output writes invalidated a base-table artifact")
		}
	})
}

// TestLookupAtSnapshot pins the per-session consistency semantics: a
// session that copied its tables before a dataset was re-registered keeps
// hitting the artifacts consistent with its data (its snapshot), while
// lookups against the current epochs treat them as stale.
func TestLookupAtSnapshot(t *testing.T) {
	s := NewStore(0, nil)
	old := s.SnapshotEpochs([]string{"tables/clicks"})
	s.Record("k", "fp", []string{"tables/clicks"}, old, []string{"out"}, 1)
	s.BumpPath("tables/clicks")
	if _, ok := s.LookupAt("k", old); !ok {
		t.Error("session holding pre-registration data lost its consistent artifact")
	}
	if _, ok := s.LookupAt("k", s.SnapshotEpochs([]string{"tables/clicks"})); ok {
		t.Error("post-registration snapshot served the pre-registration artifact")
	}
	if _, ok := s.Lookup("k"); ok {
		t.Error("current-epoch lookup served a stale artifact")
	}
}

// TestStoreConcurrent hammers lookup/insert/evict/bump from many
// goroutines; run under -race this is the data-race proof for the shared
// server store.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(500, obs.NewRegistry())
	dfs := mapreduce.NewDFS()
	s.WatchDFS(dfs)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%13)
				switch i % 5 {
				case 0:
					ep := s.SnapshotEpochs([]string{"tables/t"})
					s.Record(key, key, []string{"tables/t"}, ep, []string{"line", "line2"}, float64(i))
				case 1:
					s.Lookup(key)
				case 2:
					s.LookupAt(key, map[string]int64{"tables/t": int64(i)})
				case 3:
					if i%50 == 3 {
						dfs.Write("tables/t", []string{"new"})
					} else {
						s.Keys()
					}
				case 4:
					if i%25 == 4 {
						s.Forget(key)
					} else {
						s.BytesStored()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if s.BytesStored() > 500 {
		t.Errorf("stored %d bytes over the cap after concurrent churn", s.BytesStored())
	}
}
