// Package reuse implements ReStore-style cross-query job reuse: a
// canonical fingerprint for operator subtrees and a materialized-output
// store that records each MapReduce job's result lines together with the
// stats and validity epochs needed to decide whether — and for how long —
// the artifact is worth serving instead of re-running the job.
//
// The fingerprint half of the package (this file) renders a plan subtree
// into a canonical S-expression: identifiers lower-cased and expressions
// re-lexed with the same token discipline as translator.NormalizeSQL, so
// two SQL spellings that tokenize identically always canonicalize — and
// therefore fingerprint — identically, while any structural difference
// (table, predicate, projection list, group/join keys, partition-key
// choice, sort keys, limit) changes the rendered text and hence the hash.
package reuse

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"ysmart/internal/plan"
	"ysmart/internal/sqlparser"
)

// CanonPlan renders a plan subtree in canonical form. The rendering is a
// pure function of query semantics: it contains no query names, job
// names, or DFS paths, so structurally identical sub-plans from different
// queries render identically and can share one materialized artifact.
func CanonPlan(n plan.Node) string {
	var sb strings.Builder
	canonNode(&sb, n)
	return sb.String()
}

func canonNode(sb *strings.Builder, n plan.Node) {
	switch x := n.(type) {
	case *plan.Scan:
		fmt.Fprintf(sb, "(scan %s as %s)", strings.ToLower(x.Table), strings.ToLower(x.Binding))
	case *plan.Filter:
		sb.WriteString("(filter ")
		sb.WriteString(CanonExpr(x.Cond))
		sb.WriteByte(' ')
		canonNode(sb, x.Child)
		sb.WriteByte(')')
	case *plan.Project:
		sb.WriteString("(project [")
		for i, e := range x.Exprs {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(sb, "%s as %s", CanonExpr(e), strings.ToLower(x.Schema().Cols[i].Name))
		}
		sb.WriteString("] ")
		canonNode(sb, x.Child)
		sb.WriteByte(')')
	case *plan.Rebind:
		fmt.Fprintf(sb, "(as %s ", strings.ToLower(x.Binding))
		canonNode(sb, x.Child)
		sb.WriteByte(')')
	case *plan.Join:
		fmt.Fprintf(sb, "(join %s keys=[", strings.ToLower(x.Type.String()))
		for i := range x.LeftKeys {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(sb, "%d:%d", x.LeftKeys[i], x.RightKeys[i])
		}
		fmt.Fprintf(sb, "] residual=%s ", CanonExpr(x.Residual))
		canonNode(sb, x.Left)
		sb.WriteByte(' ')
		canonNode(sb, x.Right)
		sb.WriteByte(')')
	case *plan.Aggregate:
		sb.WriteString("(agg group=[")
		for i, g := range x.GroupBy {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(sb, "%s as %s", CanonExpr(g), strings.ToLower(x.GroupNames[i]))
		}
		sb.WriteString("] aggs=[")
		for i, spec := range x.Aggs {
			if i > 0 {
				sb.WriteByte(' ')
			}
			arg := "*"
			if spec.Arg != nil {
				arg = CanonExpr(spec.Arg)
			}
			fmt.Fprintf(sb, "%v(%s) as %s", spec.Kind, arg, strings.ToLower(spec.Name))
		}
		// The partition-key choice decides how the reduce phase groups
		// rows, which the output bytes of a merged job can observe — two
		// aggregates differing only in PKChoice must not share artifacts.
		fmt.Fprintf(sb, "] pk=%v ", x.PKChoice)
		canonNode(sb, x.Child)
		sb.WriteByte(')')
	case *plan.Sort:
		sb.WriteString("(sort [")
		for i, k := range x.Keys {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(CanonExpr(k.Expr))
			if k.Desc {
				sb.WriteString(" desc")
			}
		}
		sb.WriteString("] ")
		canonNode(sb, x.Child)
		sb.WriteByte(')')
	case *plan.Limit:
		fmt.Fprintf(sb, "(limit %d ", x.N)
		canonNode(sb, x.Child)
		sb.WriteByte(')')
	default:
		// Unknown operators fall back to their EXPLAIN description; this
		// only widens the descriptor (never aliases two different plans to
		// one rendering) as long as Describe covers the node's semantics.
		fmt.Fprintf(sb, "(opaque %s", n.Describe())
		for _, c := range n.Children() {
			sb.WriteByte(' ')
			canonNode(sb, c)
		}
		sb.WriteByte(')')
	}
}

// CanonExpr renders an expression canonically by re-lexing its SQL text
// with the NormalizeSQL token discipline: identifiers lower-cased,
// strings re-quoted, keywords upper-cased by the lexer, != folded to <>,
// whitespace collapsed. nil (no expression) renders as "-".
func CanonExpr(e sqlparser.Expr) string {
	if e == nil {
		return "-"
	}
	src := e.SQL()
	toks, err := sqlparser.Tokenize(src)
	if err != nil {
		// Expression text produced by the planner always re-lexes; keep
		// the raw text as a safe (over-discriminating) fallback.
		return src
	}
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.Kind {
		case sqlparser.KindEOF:
		case sqlparser.KindIdent:
			parts = append(parts, strings.ToLower(t.Text))
		case sqlparser.KindString:
			parts = append(parts, "'"+strings.ReplaceAll(t.Text, "'", "''")+"'")
		default:
			parts = append(parts, t.Text)
		}
	}
	return strings.Join(parts, " ")
}

// Fingerprint hashes a canonical descriptor to a short stable hex string.
// 128 bits of SHA-256 keep accidental collisions out of reach while the
// string stays usable as a DFS path component.
func Fingerprint(canonical string) string {
	h := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(h[:16])
}
