package reuse

import (
	"sort"
	"strings"
	"sync"

	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
)

// Entry is one materialized job output. Everything except the hit counter
// is immutable after Record: lookups hand the entry out by pointer, and
// readers on other goroutines consume Lines/Bytes/PredictedSeconds
// without holding the store lock.
type Entry struct {
	// Key is the store key: the job fingerprint, prefixed with the
	// optimizer dimension (translator.ArtifactKey) so MANIMAL-rewritten
	// and plain artifacts never mix.
	Key string
	// Fingerprint is the canonical sub-plan fingerprint.
	Fingerprint string
	// Tables lists the DFS paths of every base table the artifact was
	// derived from, sorted.
	Tables []string
	// Epochs records the validity epoch of each table path at the time
	// the artifact was produced. The entry is served only while the
	// store's current epochs still match.
	Epochs map[string]int64
	// Lines is the materialized job output, byte-for-byte.
	Lines []string
	// Bytes is the encoded size of Lines (line bytes + newline each).
	Bytes int64
	// Rows is len(Lines) at record time.
	Rows int64
	// PredictedSeconds is the cost model's prediction for the producing
	// job (JobStats.PredictedTime) — the time a future query saves by
	// reading the artifact instead of re-running the job.
	PredictedSeconds float64
	// Hits counts how many lookups served this entry.
	Hits int64
	// seq is the insertion sequence number, the deterministic tie-break
	// for eviction.
	seq int64
}

// Store is the materialized-output store: a bounded, epoch-validated map
// from sub-plan fingerprints to job output lines. It is safe for
// concurrent use by many sessions. The zero value is not usable; call
// NewStore.
type Store struct {
	mu       sync.Mutex
	entries  map[string]*Entry
	epochs   map[string]int64 // current validity epoch per input path
	bytes    int64
	capBytes int64
	seq      int64
	reg      *obs.Registry
}

// NewStore returns an empty store. capBytes bounds the total stored
// artifact bytes (0 = unbounded); reg, when non-nil, receives the
// ysmart_reuse_* metric families.
func NewStore(capBytes int64, reg *obs.Registry) *Store {
	return &Store{
		entries:  make(map[string]*Entry),
		epochs:   make(map[string]int64),
		capBytes: capBytes,
		reg:      reg,
	}
}

// add is a nil-safe counter bump.
func (s *Store) add(name string, delta float64) {
	if s.reg != nil {
		s.reg.Add(name, delta)
	}
}

// gaugesLocked refreshes the size gauges; callers hold s.mu.
func (s *Store) gaugesLocked() {
	if s.reg != nil {
		s.reg.Set("ysmart_reuse_entries", float64(len(s.entries)))
		s.reg.Set("ysmart_reuse_store_bytes", float64(s.bytes))
	}
}

// Lookup returns the entry for key if one exists and is still valid
// against the store's current epochs. Stale entries are dropped (counted
// as an invalidation and a miss).
func (s *Store) Lookup(key string) (*Entry, bool) {
	return s.lookup(key, nil)
}

// LookupAt is Lookup validated against a caller-captured epoch snapshot
// instead of the store's current epochs. A server session that copied its
// input tables at connect time passes the snapshot it took then, so it
// only ever reuses artifacts consistent with the data it is actually
// serving — never artifacts produced from a later re-registration.
func (s *Store) LookupAt(key string, epochs map[string]int64) (*Entry, bool) {
	return s.lookup(key, epochs)
}

func (s *Store) lookup(key string, at map[string]int64) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if ok && !s.validLocked(e, at) {
		delete(s.entries, key)
		s.bytes -= e.Bytes
		s.add("ysmart_reuse_invalidations_total", 1)
		s.gaugesLocked()
		ok = false
	}
	if !ok {
		s.add("ysmart_reuse_misses_total", 1)
		return nil, false
	}
	e.Hits++
	s.add("ysmart_reuse_hits_total", 1)
	s.add("ysmart_reuse_bytes_saved_total", float64(e.Bytes))
	s.add("ysmart_reuse_predicted_saved_seconds_total", e.PredictedSeconds)
	return e, true
}

// validLocked reports whether e's recorded epochs match the reference
// epochs (the caller snapshot, or the store's current epochs when at is
// nil); callers hold s.mu.
func (s *Store) validLocked(e *Entry, at map[string]int64) bool {
	for _, path := range e.Tables {
		cur, ok := at[path]
		if at == nil || !ok {
			cur = s.epochs[path]
		}
		if e.Epochs[path] != cur {
			return false
		}
	}
	return true
}

// Record stores the output lines of a job run under key. epochs is the
// validity snapshot of the tables the job read, captured when the plan
// was rewritten (before execution) so a concurrent table overwrite can
// only make the entry look stale, never fresh. Existing entries are
// replaced but keep their hit history. Recording may evict other entries
// (or the new one) to respect the byte cap.
func (s *Store) Record(key, fingerprint string, tables []string, epochs map[string]int64, lines []string, predictedSeconds float64) {
	cp := make([]string, len(lines))
	copy(cp, lines)
	var bytes int64
	for _, l := range cp {
		bytes += int64(len(l)) + 1
	}
	sortedTables := append([]string(nil), tables...)
	sort.Strings(sortedTables)
	ep := make(map[string]int64, len(sortedTables))
	for _, p := range sortedTables {
		ep[p] = epochs[p]
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var hits int64
	if old, ok := s.entries[key]; ok {
		hits = old.Hits
		s.bytes -= old.Bytes
	}
	s.seq++
	s.entries[key] = &Entry{
		Key:              key,
		Fingerprint:      fingerprint,
		Tables:           sortedTables,
		Epochs:           ep,
		Lines:            cp,
		Bytes:            bytes,
		Rows:             int64(len(cp)),
		PredictedSeconds: predictedSeconds,
		Hits:             hits,
		seq:              s.seq,
	}
	s.bytes += bytes
	s.add("ysmart_reuse_records_total", 1)
	s.evictLocked()
	s.gaugesLocked()
}

// evictLocked enforces the byte cap with the cost-model policy: each
// entry's retention score is the predicted seconds the cluster saves per
// stored byte, weighted by demonstrated demand —
// PredictedSeconds × (1 + Hits) / Bytes — and the lowest-scoring entry
// goes first. Ties break on insertion order (oldest first) so eviction is
// fully deterministic. Callers hold s.mu.
func (s *Store) evictLocked() {
	for s.capBytes > 0 && s.bytes > s.capBytes && len(s.entries) > 0 {
		var victim *Entry
		var victimScore float64
		for _, e := range s.entries {
			score := s.scoreLocked(e)
			if victim == nil || score < victimScore ||
				(score == victimScore && e.seq < victim.seq) {
				victim, victimScore = e, score
			}
		}
		delete(s.entries, victim.Key)
		s.bytes -= victim.Bytes
		s.add("ysmart_reuse_evictions_total", 1)
	}
}

// scoreLocked is the eviction retention score of e (higher = keep).
func (s *Store) scoreLocked(e *Entry) float64 {
	if e.Bytes <= 0 {
		return 0
	}
	return e.PredictedSeconds * float64(1+e.Hits) / float64(e.Bytes)
}

// SnapshotEpochs returns the current validity epoch of each given path.
// Paths that were never bumped report epoch 0.
func (s *Store) SnapshotEpochs(paths []string) map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(paths))
	for _, p := range paths {
		out[p] = s.epochs[p]
	}
	return out
}

// BumpPath advances the validity epoch of a DFS path. Every entry whose
// artifact was derived from the path becomes stale and will be dropped on
// its next lookup.
func (s *Store) BumpPath(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epochs[path]++
}

// WatchDFS registers the store as d's write observer: any write, append
// or delete on a base-table path ("tables/...") bumps that path's epoch.
// Job outputs under other prefixes (tmp/, restore/) are ignored — they
// are products of the inputs, not inputs themselves.
func (s *Store) WatchDFS(d *mapreduce.DFS) {
	d.SetWriteObserver(func(path string) {
		if strings.HasPrefix(path, "tables/") {
			s.BumpPath(path)
		}
	})
}

// Forget drops the entry for key if present. Tests use it to force
// partial reuse (everything but the forgotten sub-plan comes from the
// store).
func (s *Store) Forget(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		delete(s.entries, key)
		s.bytes -= e.Bytes
		s.gaugesLocked()
	}
}

// Keys returns the stored keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len reports the number of stored entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// BytesStored reports the total artifact bytes currently held.
func (s *Store) BytesStored() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
