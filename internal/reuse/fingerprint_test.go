// Fingerprint property tests live in an external test package: they drive
// the fingerprints through the translator, which imports reuse.
package reuse_test

import (
	"reflect"
	"strings"
	"testing"

	"ysmart/internal/queries"
	"ysmart/internal/reuse"
	"ysmart/internal/translator"
)

// artifacts plans and translates sql, returning the per-job artifacts.
func artifacts(t *testing.T, sql, label string, mode translator.Mode) []translator.JobArtifact {
	t.Helper()
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	tr, err := translator.Translate(root, mode, translator.Options{QueryName: label})
	if err != nil {
		t.Fatalf("translate %q: %v", sql, err)
	}
	if len(tr.Artifacts) != len(tr.Jobs) {
		t.Fatalf("%d artifacts for %d jobs", len(tr.Artifacts), len(tr.Jobs))
	}
	return tr.Artifacts
}

// fps projects the fingerprints of an artifact slice.
func fps(arts []translator.JobArtifact) []string {
	out := make([]string, len(arts))
	for i, a := range arts {
		out[i] = a.Fingerprint
	}
	return out
}

// rootFP is the fingerprint of the job producing the query result.
func rootFP(t *testing.T, sql string) string {
	t.Helper()
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	tr, err := translator.Translate(root, translator.YSmart, translator.Options{QueryName: "fp"})
	if err != nil {
		t.Fatalf("translate %q: %v", sql, err)
	}
	key, ok := translator.RootArtifactKey(tr)
	if !ok {
		t.Fatalf("no root artifact for %q", sql)
	}
	return key
}

// TestEquivalentSpellingsCollide: different spellings of the same query —
// keyword and identifier case, whitespace, != vs <> — must produce
// identical fingerprints for every job, or the store would never hit
// across clients that format SQL differently.
func TestEquivalentSpellingsCollide(t *testing.T) {
	groups := map[string][]string{
		"identifier-and-keyword-case": {
			"SELECT cid, count(*) AS click_count FROM clicks GROUP BY cid",
			"select CID, COUNT(*) as CLICK_COUNT from CLICKS group by CID",
		},
		"whitespace": {
			"SELECT uid, max(ts) AS last_ts FROM clicks GROUP BY uid",
			"SELECT   uid,\n\tmax( ts ) AS last_ts\nFROM clicks\nGROUP BY uid",
		},
		"not-equals-spelling": {
			"SELECT uid, ts FROM clicks WHERE cid <> 3",
			"SELECT uid, ts FROM clicks WHERE cid != 3",
		},
	}
	for name, group := range groups {
		t.Run(name, func(t *testing.T) {
			base := fps(artifacts(t, group[0], "spell-a", translator.YSmart))
			for _, sql := range group[1:] {
				got := fps(artifacts(t, sql, "spell-b", translator.YSmart))
				if !reflect.DeepEqual(got, base) {
					t.Errorf("spelling %q fingerprints %v, want %v", sql, got, base)
				}
			}
		})
	}
}

// TestNormalizedSQLCollides: for every workload query, the NormalizeSQL
// rendering — the plan cache's key discipline — must fingerprint exactly
// like the original text, tying the two canonicalization layers together.
func TestNormalizedSQLCollides(t *testing.T) {
	named := queries.Named()
	for name, sql := range named {
		t.Run(name, func(t *testing.T) {
			norm, err := translator.NormalizeSQL(sql)
			if err != nil {
				t.Fatalf("normalize: %v", err)
			}
			base := fps(artifacts(t, sql, "orig", translator.YSmart))
			got := fps(artifacts(t, norm, "norm", translator.YSmart))
			if !reflect.DeepEqual(got, base) {
				t.Errorf("normalized text fingerprints %v, want %v", got, base)
			}
		})
	}
}

// TestDistinctPlansDiverge: semantically different queries must never
// share a root fingerprint — a collision would silently serve one query's
// rows as another's. Every variation dimension that changes the answer is
// represented: constants, filters, keys, aggregates, output names, limits
// and tables.
func TestDistinctPlansDiverge(t *testing.T) {
	sqls := []string{
		"SELECT cid, count(*) AS n FROM clicks GROUP BY cid",
		"SELECT cid, count(*) AS m FROM clicks GROUP BY cid",                      // output name
		"SELECT cid, count(*) AS n FROM clicks WHERE uid > 5 GROUP BY cid",        // added filter
		"SELECT cid, count(*) AS n FROM clicks WHERE uid > 6 GROUP BY cid",        // constant
		"SELECT uid, count(*) AS n FROM clicks GROUP BY uid",                      // group key
		"SELECT cid, sum(ts) AS n FROM clicks GROUP BY cid",                       // aggregate
		"SELECT cid, count(*) AS n FROM clicks GROUP BY cid ORDER BY cid",         // sort
		"SELECT cid, count(*) AS n FROM clicks GROUP BY cid ORDER BY cid LIMIT 3", // limit
		"SELECT cid, count(*) AS n FROM clicks GROUP BY cid ORDER BY cid LIMIT 4", // limit value
		"SELECT o_custkey, count(*) AS n FROM orders GROUP BY o_custkey",          // table
	}
	seen := map[string]string{}
	for _, sql := range sqls {
		fp := rootFP(t, sql)
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision:\n  %s\n  %s", prev, sql)
		}
		seen[fp] = sql
	}
}

// TestQueryNameIndependent: the artifact must not see the query label (or
// the job/tmp paths derived from it) — cross-query reuse depends on
// structurally identical jobs fingerprinting identically regardless of
// which query generated them.
func TestQueryNameIndependent(t *testing.T) {
	named := queries.Named()
	for name, sql := range named {
		t.Run(name, func(t *testing.T) {
			a := artifacts(t, sql, "alpha", translator.YSmart)
			b := artifacts(t, sql, "beta", translator.YSmart)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("artifacts depend on the query label:\n%v\nvs\n%v", a, b)
			}
		})
	}
}

// FuzzCanonStability is the stability/collision property fuzzer: for any
// SQL the planner accepts, the canonical rendering is deterministic, the
// NormalizeSQL spelling canonicalizes identically, and fingerprints agree
// exactly when canonical renderings do.
func FuzzCanonStability(f *testing.F) {
	for _, sql := range queries.Named() {
		f.Add(sql)
	}
	f.Add("SELECT uid, ts FROM clicks WHERE cid != 3")
	f.Add("SELECT cid, count(*) AS n FROM clicks GROUP BY cid ORDER BY cid LIMIT 3")
	f.Add("SELECT l_shipmode, count(*) AS c FROM lineitem WHERE l_shipdate >= 9300 GROUP BY l_shipmode")
	f.Fuzz(func(t *testing.T, sql string) {
		root, err := queries.Plan(sql)
		if err != nil {
			t.Skip()
		}
		c1 := reuse.CanonPlan(root)
		root2, err := queries.Plan(sql)
		if err != nil {
			t.Fatalf("second plan of accepted SQL failed: %v", err)
		}
		if c2 := reuse.CanonPlan(root2); c2 != c1 {
			t.Fatalf("canonical rendering unstable:\n%s\nvs\n%s", c1, c2)
		}
		if reuse.Fingerprint(c1) != reuse.Fingerprint(c1) {
			t.Fatal("fingerprint of identical canonical text differs")
		}
		norm, err := translator.NormalizeSQL(sql)
		if err != nil {
			t.Skip()
		}
		rootN, err := queries.Plan(norm)
		if err != nil {
			// Normalization is token-based; if the planner rejects the
			// round trip there is nothing to compare.
			t.Skip()
		}
		cN := reuse.CanonPlan(rootN)
		sameCanon := cN == c1
		sameFP := reuse.Fingerprint(cN) == reuse.Fingerprint(c1)
		if sameCanon != sameFP {
			t.Fatalf("fingerprint disagrees with canonical equality (canon equal=%v, fp equal=%v)\ncanon A:\n%s\ncanon B:\n%s",
				sameCanon, sameFP, c1, cN)
		}
		if strings.TrimSpace(sql) == norm && !sameCanon {
			t.Fatalf("already-normal SQL canonicalized differently after round trip")
		}
	})
}
