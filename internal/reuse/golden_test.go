package reuse_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ysmart/internal/queries"
	"ysmart/internal/translator"
)

var update = flag.Bool("update", false, "rewrite the fingerprint golden corpus from current translator output")

// TestFingerprintGolden pins the canonical fingerprint of every job of
// every workload query under every translation mode. A diff here means
// the fingerprint function (or the lowering it hashes) changed: existing
// stores will run cold after a deploy, which is safe but worth knowing —
// regenerate with -update only deliberately.
func TestFingerprintGolden(t *testing.T) {
	named := queries.Named()
	names := make([]string, 0, len(named))
	for n := range named {
		names = append(names, n)
	}
	sort.Strings(names)

	var lines []string
	for _, name := range names {
		for _, mode := range []translator.Mode{translator.OneToOne, translator.PigLike, translator.ICTCOnly, translator.YSmart} {
			for i, a := range artifacts(t, named[name], "golden", mode) {
				lines = append(lines, fmt.Sprintf("%s\t%s\tjob%d\t%s\t%s",
					name, mode, i, a.Fingerprint, strings.Join(a.Tables, ",")))
			}
		}
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "fingerprints.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	for i := 0; i < len(lines) && i < len(want); i++ {
		if lines[i] != want[i] {
			t.Errorf("line %d:\n got  %s\n want %s", i, lines[i], want[i])
		}
	}
	if len(lines) != len(want) {
		t.Errorf("%d fingerprint lines, want %d", len(lines), len(want))
	}
}
