package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/optanalysis"
	"ysmart/internal/queries"
	"ysmart/internal/translator"
	"ysmart/internal/userjobs"
)

// ManimalRow is one query of the MANIMAL ablation: the same program run
// with the static-analysis rewrites off and on.
type ManimalRow struct {
	Query  string
	Source string // "user-job" (AST analysis) or "translated" (plan scan facts)
	// Rewrites counts the optimizations installed on the "on" run.
	Rewrites int
	// Map-output volume, the byte stream the shuffle must carry.
	OffBytes, OnBytes int64
	OffRecs, OnRecs   int64
	// Filtered counts raw input lines the early filter skipped before the
	// map function ran (on-run only).
	Filtered int64
	// Simulated chain times from the cost model.
	OffTime, OnTime float64
	// ResultOK records that the two runs' result rows were byte-identical.
	ResultOK bool
	// RunOff and RunOn carry full breakdowns for the -json output.
	RunOff, RunOn Run
}

// ManimalResult is the `-fig manimal` ablation: analysis on/off per query.
type ManimalResult struct {
	Rows []ManimalRow
}

// moduleRoot walks up from the working directory to the enclosing go.mod,
// so the source analysis finds the user-job corpus from any subdirectory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod above %s: -fig manimal needs the module source", dir)
		}
	}
}

// Manimal measures the MANIMAL-style static optimizer: each naive user
// job (and one translated query) runs with the rewrites off and on, and
// the row reports the map-output bytes/records saved, the raw lines the
// early filter skipped, the cost model's predicted-time shift, and
// whether the result rows stayed byte-identical.
func Manimal(w *Workload) (*ManimalResult, error) {
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	rep, err := optanalysis.Analyze(root, []string{filepath.Join("internal", "userjobs")})
	if err != nil {
		return nil, err
	}

	out := &ManimalResult{}
	runJobs := func(jobs []*mapreduce.Job) (*mapreduce.ChainStats, *mapreduce.DFS, error) {
		dfs := w.FreshDFS()
		cluster := mapreduce.SmallCluster()
		// Paper-scale costing (like the other figures): the off and on runs
		// share the scale, so the predicted-time delta is the rewrites'.
		cluster.DataScale = w.TPCHScale(tpchSmallBytes)
		eng, err := mapreduce.NewEngine(dfs, cluster)
		if err != nil {
			return nil, nil, err
		}
		stats, err := eng.RunChain(jobs)
		return stats, dfs, err
	}

	for _, off := range userjobs.All() {
		name := off.Jobs[0].Name
		offStats, offDFS, err := runJobs(off.Jobs)
		if err != nil {
			return nil, fmt.Errorf("%s off: %w", name, err)
		}
		var on *userjobs.Program
		for _, p := range userjobs.All() {
			if p.Jobs[0].Name == name {
				on = p
			}
		}
		applied := rep.Apply(on.Jobs)
		onStats, onDFS, err := runJobs(on.Jobs)
		if err != nil {
			return nil, fmt.Errorf("%s on: %w", name, err)
		}
		offRows, err := off.ReadResult(offDFS)
		if err != nil {
			return nil, err
		}
		onRows, err := on.ReadResult(onDFS)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, manimalRow(
			name, "user-job", applied, offStats, onStats,
			sameLines(dbms.SortedLines(offRows), dbms.SortedLines(onRows))))
	}

	// One translated query, optimized from the plan's scan facts instead
	// of the AST: the same pipeline applied to generated code.
	sql := "SELECT l_shipmode, count(*) AS ship_count FROM lineitem WHERE l_shipdate >= 9300 GROUP BY l_shipmode"
	translated := func(label string, optimize bool) (*mapreduce.ChainStats, []exec.Row, int, error) {
		planRoot, err := queries.Plan(sql)
		if err != nil {
			return nil, nil, 0, err
		}
		tr, err := translator.Translate(planRoot, translator.YSmart, translator.Options{QueryName: label})
		if err != nil {
			return nil, nil, 0, err
		}
		applied := 0
		if optimize {
			a, _ := optanalysis.ApplyTranslation(tr)
			applied = len(a)
		}
		stats, dfs, err := runJobs(tr.Jobs)
		if err != nil {
			return nil, nil, 0, err
		}
		rows, err := tr.ReadResult(dfs)
		if err != nil {
			return nil, nil, 0, err
		}
		return stats, rows, applied, nil
	}
	offStats, offRows, _, err := translated("manimal-off", false)
	if err != nil {
		return nil, err
	}
	onStats, onRows, applied, err := translated("manimal-on", true)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, manimalRow(
		"Q-LATESHIP", "translated", applied, offStats, onStats,
		sameLines(dbms.SortedLines(offRows), dbms.SortedLines(onRows))))
	return out, nil
}

// manimalRow folds an off/on stat pair into one ablation row.
func manimalRow(query, source string, rewrites int, off, on *mapreduce.ChainStats, ok bool) ManimalRow {
	row := ManimalRow{
		Query: query, Source: source, Rewrites: rewrites,
		OffTime: off.TotalTime(), OnTime: on.TotalTime(),
		ResultOK: ok,
		RunOff:   runFromStats(query, "manimal-off", off),
		RunOn:    runFromStats(query, "manimal-on", on),
	}
	for _, j := range off.Jobs {
		row.OffBytes += j.MapOutputBytes
		row.OffRecs += j.MapOutputRecords
	}
	for _, j := range on.Jobs {
		row.OnBytes += j.MapOutputBytes
		row.OnRecs += j.MapOutputRecords
		row.Filtered += j.MapRecordsFiltered
	}
	return row
}

// sameLines reports element-wise equality of two sorted line slices.
func sameLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Format renders the ablation table.
func (r *ManimalResult) Format() string {
	var sb strings.Builder
	sb.WriteString("MANIMAL ablation: static-analysis rewrites off vs on (small cluster)\n")
	fmt.Fprintf(&sb, "  %-18s %-10s %8s %22s %18s %10s %13s %6s\n",
		"query", "source", "rewrites", "map-out bytes", "map-out records", "filtered", "time", "equal")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-18s %-10s %8d %10d->%-10d %8d->%-8d %10d %6.1f->%-6.1f %6v\n",
			row.Query, row.Source, row.Rewrites,
			row.OffBytes, row.OnBytes, row.OffRecs, row.OnRecs,
			row.Filtered, row.OffTime, row.OnTime, row.ResultOK)
	}
	return sb.String()
}

// BenchRows flattens the ablation into off/on row pairs.
func (r *ManimalResult) BenchRows() []BenchRow {
	rows := make([]BenchRow, 0, 2*len(r.Rows))
	for _, row := range r.Rows {
		off := benchRow("manimal", row.RunOff)
		on := benchRow("manimal", row.RunOn)
		off.ResultOK = row.ResultOK
		on.ResultOK = row.ResultOK
		rows = append(rows, off, on)
	}
	return rows
}
