package experiments

import (
	"strings"
	"testing"
)

// TestRobustnessShape narrows the sweep to one query and two rates (the
// full sweep is the bench harness's job) and checks the figure's claims:
// fault-injected runs recover to the exact fault-free output, recovery
// activity is visible at non-zero rates, and rows flatten for -json.
func TestRobustnessShape(t *testing.T) {
	w := testWorkload(t)
	origQ, origP := robustnessQueries, robustnessProbs
	robustnessQueries = []string{"Q21"}
	robustnessProbs = []float64{0, 0.15}
	defer func() { robustnessQueries, robustnessProbs = origQ, origP }()

	r, err := Robustness(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(r.Cells))
	}
	base, faulted := r.Cells[0], r.Cells[1]
	for _, c := range r.Cells {
		if !c.YSmartOK || !c.HiveOK {
			t.Errorf("p=%.2f: result mismatch (ysmart ok=%v, hive ok=%v)", c.FailureProb, c.YSmartOK, c.HiveOK)
		}
	}
	if base.YSmart.Retries+base.Hive.Retries != 0 {
		t.Errorf("fault-free runs report retries: %+v", base)
	}
	if faulted.YSmart.Retries == 0 || faulted.Hive.Retries == 0 {
		t.Errorf("15%% failure rate produced no retries: ysmart %d, hive %d",
			faulted.YSmart.Retries, faulted.Hive.Retries)
	}
	if faulted.YSmart.Total <= base.YSmart.Total {
		t.Errorf("retries did not extend ysmart time: %.0fs vs %.0fs",
			faulted.YSmart.Total, base.YSmart.Total)
	}

	text := r.Format()
	for _, want := range []string{"Robustness", "Q21", "slowdown"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "MISMATCH") {
		t.Errorf("Format reports a result mismatch:\n%s", text)
	}

	rows := r.BenchRows()
	if len(rows) != 4 {
		t.Fatalf("bench rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		if row.Figure != "robustness" || !row.ResultOK {
			t.Errorf("bad bench row: %+v", row)
		}
		if row.FailureRate > 0 && row.Retries == 0 {
			t.Errorf("faulted bench row has no retries: %+v", row)
		}
	}
}
