package experiments

import (
	"fmt"
	"strings"

	"ysmart/internal/correlation"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
	"ysmart/internal/translator"
)

// AblationRow is one design-choice ablation: the system with a feature
// removed, next to the full system.
type AblationRow struct {
	Name     string
	Detail   string
	Jobs     int
	Baseline int // jobs of the full system
	Time     float64
	BaseTime float64
	// Run and BaseRun carry the full breakdowns of the ablated and full
	// systems (used by the -json bench output).
	Run     Run
	BaseRun Run
}

// AblationsResult collects the design-choice ablations DESIGN.md calls out
// (beyond the rule-subset ablation, which is Fig. 9 itself).
type AblationsResult struct {
	Rows []AblationRow
}

// Ablations quantifies, on the small cluster: (1) disabling the shared
// table scan (Q-CSA reads clicks three times), (2) disabling map-side
// partial aggregation (Q-AGG ships every record), and (3) forcing Q-CSA's
// aggregations onto the wrong partition-key candidate (job-flow
// correlations disappear).
func Ablations(w *Workload) (*AblationsResult, error) {
	out := &AblationsResult{}

	run := func(query string, opts translator.Options, mutate func(*correlation.Analysis) error) (*mapreduce.ChainStats, int, error) {
		sql := queries.Named()[query]
		root, err := queries.Plan(sql)
		if err != nil {
			return nil, 0, err
		}
		a, err := correlation.Analyze(root)
		if err != nil {
			return nil, 0, err
		}
		if mutate != nil {
			if err := mutate(a); err != nil {
				return nil, 0, err
			}
		}
		tr, err := translator.TranslateAnalyzed(a, translator.YSmart, opts)
		if err != nil {
			return nil, 0, err
		}
		cluster := mapreduce.SmallCluster()
		cluster.DataScale = w.scaleFor(query, tpchSmallBytes)
		eng, err := mapreduce.NewEngine(w.FreshDFS(), cluster)
		if err != nil {
			return nil, 0, err
		}
		stats, err := eng.RunChain(tr.Jobs)
		if err != nil {
			return nil, 0, err
		}
		return stats, tr.NumJobs(), nil
	}

	// 1. Shared scan off (Q-CSA).
	base, baseJobs, err := run("Q-CSA", translator.Options{QueryName: "abl-base-csa"}, nil)
	if err != nil {
		return nil, err
	}
	noShare, jobs, err := run("Q-CSA", translator.Options{QueryName: "abl-noshare", DisableSharedScan: true}, nil)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, AblationRow{
		Name:   "shared-scan-off",
		Detail: "Q-CSA reads clicks once per merged stream instead of once",
		Jobs:   jobs, Baseline: baseJobs,
		Time: noShare.TotalTime(), BaseTime: base.TotalTime(),
		Run:     runFromStats("Q-CSA", "shared-scan-off", noShare),
		BaseRun: runFromStats("Q-CSA", "ysmart", base),
	})

	// 2. Combiner off (Q-AGG).
	aggBase, aggBaseJobs, err := run("Q-AGG", translator.Options{QueryName: "abl-base-agg"}, nil)
	if err != nil {
		return nil, err
	}
	noComb, jobs, err := run("Q-AGG", translator.Options{QueryName: "abl-nocomb", DisableCombiner: true}, nil)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, AblationRow{
		Name:   "combiner-off",
		Detail: "Q-AGG ships one pair per click instead of per-task partials",
		Jobs:   jobs, Baseline: aggBaseJobs,
		Time: noComb.TotalTime(), BaseTime: aggBase.TotalTime(),
		Run:     runFromStats("Q-AGG", "combiner-off", noComb),
		BaseRun: runFromStats("Q-AGG", "ysmart", aggBase),
	})

	// 3. Wrong partition-key candidate (Q-CSA).
	badPK, jobs, err := run("Q-CSA", translator.Options{QueryName: "abl-badpk"},
		func(a *correlation.Analysis) error {
			for _, op := range a.Ops {
				if op.Kind == correlation.KindAgg && len(op.Agg.GroupBy) >= 2 {
					if err := a.OverridePK(op, []int{1}); err != nil {
						return err
					}
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, AblationRow{
		Name:   "pk-heuristic-off",
		Detail: "Q-CSA aggregations keyed on timestamps: job-flow correlations vanish",
		Jobs:   jobs, Baseline: baseJobs,
		Time: badPK.TotalTime(), BaseTime: base.TotalTime(),
		Run:     runFromStats("Q-CSA", "pk-heuristic-off", badPK),
		BaseRun: runFromStats("Q-CSA", "ysmart", base),
	})

	return out, nil
}

// Format renders the ablation table.
func (r *AblationsResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Ablations: YSmart with one design choice removed (small cluster)\n")
	fmt.Fprintf(&sb, "  %-18s %10s %12s %10s  %s\n", "ablation", "jobs", "time", "slowdown", "effect")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-18s %4d -> %2d  %5.0f->%5.0fs %9.2fx  %s\n",
			row.Name, row.Baseline, row.Jobs, row.BaseTime, row.Time,
			row.Time/row.BaseTime, row.Detail)
	}
	return sb.String()
}
