package experiments

import "fmt"

// BenchRow is one machine-readable measurement of the bench harness: a
// query run by one system in one figure's configuration. The -json output
// of ysmart-bench is a flat list of these rows.
type BenchRow struct {
	Figure       string  `json:"figure"`
	Query        string  `json:"query"`
	System       string  `json:"system"`
	Workers      int     `json:"workers,omitempty"`
	Compress     bool    `json:"compress,omitempty"`
	Jobs         int     `json:"jobs"`
	Seconds      float64 `json:"seconds"`
	ScanBytes    int64   `json:"scan_bytes"`
	ShuffleBytes int64   `json:"shuffle_bytes"`
	// Fault-injection fields, set only by the robustness figure.
	FailureRate float64 `json:"failure_rate,omitempty"`
	Retries     int     `json:"retries,omitempty"`
	Recomputed  int     `json:"recomputed,omitempty"`
	Speculative int     `json:"speculative,omitempty"`
	ResultOK    bool    `json:"result_ok,omitempty"`
	// Cross-query reuse fields, set only by the reuse figure's warm rows:
	// jobs the materialized-output store let the warm replay skip, and the
	// artifact bytes read instead of recomputing them.
	JobsSkipped int   `json:"jobs_skipped,omitempty"`
	BytesSaved  int64 `json:"bytes_saved,omitempty"`
	// Load-harness fields, set only by ysmart-loadgen rows (figure
	// "loadgen"): wall-clock latency quantiles in seconds read from the
	// shared query-latency histogram, and sustained queries per second.
	Clients  int     `json:"clients,omitempty"`
	Requests int     `json:"requests,omitempty"`
	QPS      float64 `json:"qps,omitempty"`
	P50      float64 `json:"p50,omitempty"`
	P90      float64 `json:"p90,omitempty"`
	P99      float64 `json:"p99,omitempty"`
}

// benchRow flattens a Run into one figure's row.
func benchRow(figure string, r Run) BenchRow {
	return BenchRow{
		Figure: figure, Query: r.Query, System: r.System,
		Jobs: len(r.Jobs), Seconds: r.Total,
		ScanBytes: r.ScanBytes, ShuffleBytes: r.ShuffleBytes,
		Retries: r.Retries, Recomputed: r.Recomputed, Speculative: r.Speculative,
	}
}

// BenchRows flattens Fig. 2(b) for -json output.
func (r *Fig2bResult) BenchRows() []BenchRow {
	out := make([]BenchRow, 0, len(r.Runs))
	for _, run := range r.Runs {
		out = append(out, benchRow("2b", run))
	}
	return out
}

// BenchRows flattens Fig. 9 for -json output.
func (r *Fig9Result) BenchRows() []BenchRow {
	return []BenchRow{
		benchRow("9", r.OneToOne),
		benchRow("9", r.ICTC),
		benchRow("9", r.YSmart),
		benchRow("9", r.Hand),
	}
}

// BenchRows flattens Fig. 10 for -json output. The DBMS baseline has no job
// breakdown or byte counters; its row carries only the total.
func (r *Fig10Result) BenchRows() []BenchRow {
	var out []BenchRow
	for _, row := range r.Rows {
		out = append(out,
			benchRow("10", row.YSmart),
			benchRow("10", row.Hive),
			benchRow("10", row.Pig),
			BenchRow{Figure: "10", Query: row.Query, System: "pgsql", Seconds: row.PgSQL})
	}
	return out
}

// BenchRows flattens Fig. 11 for -json output.
func (r *Fig11Result) BenchRows() []BenchRow {
	var out []BenchRow
	for _, c := range r.Cells {
		for _, run := range []Run{c.YSmartRun, c.HiveRun} {
			row := benchRow("11", run)
			row.Workers = c.Workers
			row.Compress = c.Compress
			out = append(out, row)
		}
	}
	for _, run := range []Run{r.QCSA.YSmart, r.QCSA.Hive, r.QCSA.Pig} {
		row := benchRow("11d", run)
		row.Workers = 10
		out = append(out, row)
	}
	return out
}

// BenchRows flattens Fig. 12 for -json output.
func (r *Fig12Result) BenchRows() []BenchRow {
	var out []BenchRow
	for _, run := range append(r.YSmart[:], r.Hive[:]...) {
		out = append(out, benchRow("12", run))
	}
	return out
}

// BenchRows flattens Fig. 13 for -json output: one row per instance, not the
// averaged bars.
func (r *Fig13Result) BenchRows() []BenchRow {
	var out []BenchRow
	for qi := range r.Query {
		for i := 0; i < 3; i++ {
			out = append(out,
				benchRow("13", r.YSmartRuns[qi][i]),
				benchRow("13", r.HiveRuns[qi][i]))
		}
	}
	return out
}

// BenchRows flattens the ablation table for -json output: the ablated system and
// its full-system baseline each get a row.
func (r *AblationsResult) BenchRows() []BenchRow {
	var out []BenchRow
	for _, row := range r.Rows {
		out = append(out,
			benchRow("ablations", row.Run),
			benchRow("ablations", row.BaseRun))
	}
	return out
}

// BenchRows flattens the scaling sweep for -json output.
func (r *ScalingResult) BenchRows() []BenchRow {
	var out []BenchRow
	for _, p := range r.Points {
		for _, run := range []Run{p.YSmartRun, p.HiveRun} {
			row := benchRow(fmt.Sprintf("scaling-%d", p.Workers), run)
			row.Workers = p.Workers
			out = append(out, row)
		}
	}
	return out
}
