package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ysmart/internal/dbms"
	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/queries"
	"ysmart/internal/reuse"
	"ysmart/internal/translator"
)

// ReuseRow is one workload query run twice through a shared cross-query
// materialized-output store: a cold round that executes everything and
// records each job's output, then a warm replay that skips every job whose
// sub-plan artifact is still valid.
type ReuseRow struct {
	Query string
	// ColdJobs and WarmJobs count the jobs each round actually executed;
	// Skipped is the warm round's reuse hits (ColdJobs - WarmJobs).
	ColdJobs, WarmJobs, Skipped int
	// Cost-model chain times of the executed jobs; a fully-warm chain is 0.
	ColdTime, WarmTime float64
	// BytesSaved is the artifact bytes the warm round read instead of
	// recomputing; PredictedSaved the cost model's estimate of the skipped
	// work.
	BytesSaved     int64
	PredictedSaved float64
	// ResultOK records that cold and warm result rows were byte-identical.
	ResultOK bool
	// RunCold and RunWarm carry the full breakdowns for -json output.
	RunCold, RunWarm Run
}

// ReuseResult is the `-fig reuse` figure: ReStore-style warm-vs-cold
// replay per workload query.
type ReuseResult struct {
	Rows []ReuseRow
}

// Reuse measures the cross-query reuse store on the whole workload
// (TPC-H + click-stream): every query runs cold into a shared store, then
// replays warm against it. The row reports jobs skipped, artifact bytes
// read in place of recomputation, the cost model's predicted-time delta,
// and whether the warm rows stayed byte-identical to the cold ones.
func Reuse(w *Workload) (*ReuseResult, error) {
	// One DFS and one store span the whole stream of queries — that is the
	// point of cross-query reuse. The store watches the DFS so any base
	// table overwrite would invalidate dependent artifacts.
	dfs := w.FreshDFS()
	store := reuse.NewStore(0, nil)
	store.WatchDFS(dfs)

	named := queries.Named()
	names := make([]string, 0, len(named))
	for name := range named {
		names = append(names, name)
	}
	sort.Strings(names)

	out := &ReuseResult{}
	for _, name := range names {
		root, err := queries.Plan(named[name])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		label := strings.ToLower(name)
		tr, err := translator.Translate(root, translator.YSmart, translator.Options{QueryName: label})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		round := func(system string) (*translator.ReusePlan, *mapreduce.ChainStats, []string, error) {
			cluster := mapreduce.SmallCluster()
			cluster.DataScale = w.scaleFor(name, tpchSmallBytes)
			eng, err := mapreduce.NewEngine(dfs, cluster)
			if err != nil {
				return nil, nil, nil, err
			}
			rp := translator.ApplyReuse(tr, store, dfs)
			stats, err := eng.RunChain(rp.Jobs)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%s %s: %w", name, system, err)
			}
			rows, err := rp.ReadResult(dfs)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%s %s: %w", name, system, err)
			}
			rp.Record(store, dfs, stats)
			return rp, stats, dbms.SortedLines(rows), nil
		}
		_, coldStats, coldRows, err := round("reuse-cold")
		if err != nil {
			return nil, err
		}
		warmRP, warmStats, warmRows, err := round("reuse-warm")
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ReuseRow{
			Query:          name,
			ColdJobs:       len(coldStats.Jobs),
			WarmJobs:       len(warmStats.Jobs),
			Skipped:        warmRP.Skipped,
			ColdTime:       coldStats.TotalTime(),
			WarmTime:       warmStats.TotalTime(),
			BytesSaved:     warmRP.ArtifactBytes,
			PredictedSaved: warmRP.PredictedSavedSeconds,
			ResultOK:       sameLines(coldRows, warmRows),
			RunCold:        runFromStats(name, "reuse-cold", coldStats),
			RunWarm:        runFromStats(name, "reuse-warm", warmStats),
		})
	}
	return out, nil
}

// Format renders the warm-vs-cold table.
func (r *ReuseResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Cross-query reuse: cold run vs warm replay through a shared artifact store (small cluster)\n")
	fmt.Fprintf(&sb, "  %-8s %12s %8s %16s %12s %12s %6s\n",
		"query", "jobs", "skipped", "time", "bytes-read", "pred-saved", "equal")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-8s %5d->%-6d %8d %7.1f->%-7.1f %12s %11.1fs %6v\n",
			row.Query, row.ColdJobs, row.WarmJobs, row.Skipped,
			row.ColdTime, row.WarmTime,
			obs.FormatBytes(row.BytesSaved), row.PredictedSaved, row.ResultOK)
	}
	return sb.String()
}

// BenchRows flattens the figure into cold/warm row pairs; the warm row
// carries the reuse counters.
func (r *ReuseResult) BenchRows() []BenchRow {
	rows := make([]BenchRow, 0, 2*len(r.Rows))
	for _, row := range r.Rows {
		cold := benchRow("reuse", row.RunCold)
		warm := benchRow("reuse", row.RunWarm)
		cold.ResultOK = row.ResultOK
		warm.ResultOK = row.ResultOK
		warm.JobsSkipped = row.Skipped
		warm.BytesSaved = row.BytesSaved
		rows = append(rows, cold, warm)
	}
	return rows
}
