package experiments

import (
	"fmt"
	"strings"

	"ysmart/internal/mapreduce"
	"ysmart/internal/translator"
)

// JobPhase is one bar segment of the paper's breakdown figures.
type JobPhase struct {
	Name   string
	Map    float64
	Reduce float64 // shuffle + reduce, the way Hadoop attributes it
	Gap    float64
}

// Run is one query execution by one system.
type Run struct {
	Query  string
	System string
	Jobs   []JobPhase
	Total  float64
	// ScanBytes and ShuffleBytes total the chain's raw table-scan volume and
	// shuffle traffic — the counters the paper's analysis tracks per system.
	ScanBytes    int64
	ShuffleBytes int64
	// Fault-recovery totals (zero on fault-free runs; see mapreduce.FaultPlan).
	Retries     int
	Recomputed  int
	Speculative int
}

func runFromStats(query, system string, stats *mapreduce.ChainStats) Run {
	r := Run{
		Query: query, System: system, Total: stats.TotalTime(),
		ScanBytes:    stats.TotalMapInputBytes(),
		ShuffleBytes: stats.TotalShuffleBytes(),
		Retries:      stats.TotalRetries(),
		Recomputed:   stats.TotalRecomputed(),
		Speculative:  stats.TotalSpeculative(),
	}
	for _, j := range stats.Jobs {
		r.Jobs = append(r.Jobs, JobPhase{
			Name:   j.Name,
			Map:    j.StartupTime + j.MapTime,
			Reduce: j.ReducePhaseTime(),
			Gap:    j.GapBefore,
		})
	}
	return r
}

func (r Run) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-12s total %7.0fs, %d job(s)\n", r.Query, r.System, r.Total, len(r.Jobs))
	for _, j := range r.Jobs {
		fmt.Fprintf(&sb, "    %-40s map %6.0fs  reduce %6.0fs", j.Name, j.Map, j.Reduce)
		if j.Gap > 0 {
			fmt.Fprintf(&sb, "  gap %5.0fs", j.Gap)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// speedup renders "hive/ysmart" as the paper's percentage speedups.
func speedup(baseline, improved float64) string {
	if improved <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*baseline/improved)
}

// ---------------------------------------------------------------------------
// Fig. 2(b): Hive vs hand-coded MapReduce on Q-AGG and Q-CSA.
// ---------------------------------------------------------------------------

// Fig2bResult holds the four bars of Fig. 2(b).
type Fig2bResult struct {
	Runs []Run // Q-AGG/hive, Q-AGG/hand, Q-CSA/hive, Q-CSA/hand
}

// Fig2b reproduces Fig. 2(b) on the small-cluster model: on the simple
// aggregation Hive is competitive (map-side hash aggregation); on the
// click-stream query the hand-coded two-job program wins by a large factor.
func Fig2b(w *Workload) (*Fig2bResult, error) {
	out := &Fig2bResult{}
	for _, query := range []string{"Q-AGG", "Q-CSA"} {
		cluster := mapreduce.SmallCluster()
		cluster.DataScale = w.ClicksScale(clicksBytes)
		hive, err := w.RunTranslated(query, translator.OneToOne, cluster, "fig2b-"+query+"-hive")
		if err != nil {
			return nil, err
		}
		hand, err := w.RunHandCoded(query, cluster, "fig2b-"+query+"-hand")
		if err != nil {
			return nil, err
		}
		out.Runs = append(out.Runs,
			runFromStats(query, "hive", hive),
			runFromStats(query, "hand-coded", hand),
		)
	}
	return out, nil
}

// Format renders the figure as a table.
func (r *Fig2bResult) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig 2(b): Hive vs hand-coded MapReduce (small cluster, 20GB clicks)\n")
	for _, run := range r.Runs {
		fmt.Fprintf(&sb, "  %-6s %-11s %7.0fs (%d jobs)\n", run.Query, run.System, run.Total, len(run.Jobs))
	}
	hive, hand := r.Runs[2].Total, r.Runs[3].Total
	fmt.Fprintf(&sb, "  Q-CSA hand-coded speedup over Hive: %s (paper: ~300%%)\n", speedup(hive, hand))
	return sb.String()
}

// ---------------------------------------------------------------------------
// Fig. 9: breakdown of Q21 job finishing times under four translations.
// ---------------------------------------------------------------------------

// Fig9Result holds the four stacked bars of Fig. 9.
type Fig9Result struct {
	OneToOne Run
	ICTC     Run
	YSmart   Run
	Hand     Run
}

// Fig9 reproduces the correlation ablation (§VII.C): one-operation-one-job,
// input+transit correlation only, all correlations, and the hand-coded
// program, on the small cluster with 10 GB TPC-H.
func Fig9(w *Workload) (*Fig9Result, error) {
	cluster := mapreduce.SmallCluster()
	cluster.DataScale = w.TPCHScale(tpchSmallBytes)
	oto, err := w.RunTranslated("Q21", translator.OneToOne, cluster, "fig9-oto")
	if err != nil {
		return nil, err
	}
	ictc, err := w.RunTranslated("Q21", translator.ICTCOnly, cluster, "fig9-ictc")
	if err != nil {
		return nil, err
	}
	ys, err := w.RunTranslated("Q21", translator.YSmart, cluster, "fig9-ys")
	if err != nil {
		return nil, err
	}
	hand, err := w.RunHandCoded("Q21", cluster, "fig9-hand")
	if err != nil {
		return nil, err
	}
	return &Fig9Result{
		OneToOne: runFromStats("Q21", "one-op-one-job", oto),
		ICTC:     runFromStats("Q21", "ic+tc only", ictc),
		YSmart:   runFromStats("Q21", "ysmart", ys),
		Hand:     runFromStats("Q21", "hand-coded", hand),
	}, nil
}

// Format renders the four bars with per-job phases.
func (r *Fig9Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig 9: Q21 sub-tree, breakdown of job finishing times (small cluster, 10GB TPC-H)\n")
	sb.WriteString("paper: 1140s / 773s / 561s / 479s\n")
	for _, run := range []Run{r.OneToOne, r.ICTC, r.YSmart, r.Hand} {
		sb.WriteString(run.String())
	}
	fmt.Fprintf(&sb, "speedups over one-op-one-job: ic+tc %s (paper 167%%), ysmart %s (paper 203%%)\n",
		speedup(r.OneToOne.Total, r.ICTC.Total), speedup(r.OneToOne.Total, r.YSmart.Total))
	fmt.Fprintf(&sb, "ysmart vs hand-coded: %.0f%% slower (paper 17%%)\n",
		100*(r.YSmart.Total-r.Hand.Total)/r.Hand.Total)
	return sb.String()
}

// ---------------------------------------------------------------------------
// Fig. 10: small cluster — YSmart vs Hive vs Pig vs ideal parallel DBMS.
// ---------------------------------------------------------------------------

// Fig10Row is one query's bars.
type Fig10Row struct {
	Query  string
	YSmart Run
	Hive   Run
	Pig    Run
	PgSQL  float64 // seconds; the pipelined executor has no job breakdown
}

// Fig10Result holds all four queries.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 reproduces §VII.D on the small cluster: 10 GB TPC-H for Q17/Q18/Q21
// and 20 GB clicks for Q-CSA; PostgreSQL is simulated as an ideal 4-way
// parallel pipelined executor over a quarter of the data.
func Fig10(w *Workload) (*Fig10Result, error) {
	out := &Fig10Result{}
	for _, query := range []string{"Q17", "Q18", "Q21", "Q-CSA"} {
		cluster := mapreduce.SmallCluster()
		cluster.DataScale = w.scaleFor(query, tpchSmallBytes)
		ys, err := w.RunTranslated(query, translator.YSmart, cluster, "fig10-"+query+"-ys")
		if err != nil {
			return nil, err
		}
		hive, err := w.RunTranslated(query, translator.OneToOne, cluster, "fig10-"+query+"-hive")
		if err != nil {
			return nil, err
		}
		pig, err := w.RunTranslated(query, translator.PigLike, cluster, "fig10-"+query+"-pig")
		if err != nil {
			return nil, err
		}
		pg, err := w.RunDBMS(query, cluster.DataScale)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Fig10Row{
			Query:  query,
			YSmart: runFromStats(query, "ysmart", ys),
			Hive:   runFromStats(query, "hive", hive),
			Pig:    runFromStats(query, "pig", pig),
			PgSQL:  pg,
		})
	}
	return out, nil
}

// Format renders the comparison table.
func (r *Fig10Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig 10: small cluster — ysmart vs hive vs pig vs ideal parallel pgsql\n")
	sb.WriteString("paper speedups of ysmart over hive: Q17 258%, Q18 190%, Q21 252%, Q-CSA 266%\n")
	fmt.Fprintf(&sb, "  %-6s %10s %10s %10s %10s %12s\n", "query", "ysmart", "hive", "pig", "pgsql", "ys-vs-hive")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-6s %9.0fs %9.0fs %9.0fs %9.0fs %12s\n",
			row.Query, row.YSmart.Total, row.Hive.Total, row.Pig.Total, row.PgSQL,
			speedup(row.Hive.Total, row.YSmart.Total))
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Fig. 11: Amazon EC2, 11 and 101 nodes, with and without compression.
// ---------------------------------------------------------------------------

// Fig11Cell is one bar: a query on a cluster size with a compression
// setting.
type Fig11Cell struct {
	Query    string
	Workers  int
	Compress bool
	YSmart   float64
	Hive     float64
	// YSmartRun and HiveRun carry the full per-job breakdowns behind the two
	// totals (used by the -json bench output).
	YSmartRun Run
	HiveRun   Run
}

// Fig11Result holds panels (a)-(c) plus the Q-CSA panel (d).
type Fig11Result struct {
	Cells []Fig11Cell
	// Panel (d): Q-CSA on the 11-node cluster, no compression.
	QCSA struct {
		YSmart, Hive, Pig Run
	}
}

// Fig11 reproduces §VII.E: per-worker-constant data (10 GB on 10 workers,
// 100 GB on 100), compression on and off for the TPC-H queries, and the
// three-system Q-CSA comparison on the small EC2 cluster.
func Fig11(w *Workload) (*Fig11Result, error) {
	out := &Fig11Result{}
	for _, workers := range []int{10, 100} {
		target := tpchSmallBytes
		if workers == 100 {
			target = tpchLargeBytes
		}
		for _, compress := range []bool{false, true} {
			for _, query := range []string{"Q17", "Q18", "Q21"} {
				cluster := mapreduce.EC2Cluster(workers)
				cluster.Compress = compress
				cluster.DataScale = w.TPCHScale(target)
				label := fmt.Sprintf("fig11-%s-%d-%v", query, workers, compress)
				ys, err := w.RunTranslated(query, translator.YSmart, cluster, label+"-ys")
				if err != nil {
					return nil, err
				}
				hive, err := w.RunTranslated(query, translator.OneToOne, cluster, label+"-hive")
				if err != nil {
					return nil, err
				}
				out.Cells = append(out.Cells, Fig11Cell{
					Query: query, Workers: workers, Compress: compress,
					YSmart:    ys.TotalTime(),
					Hive:      hive.TotalTime(),
					YSmartRun: runFromStats(query, "ysmart", ys),
					HiveRun:   runFromStats(query, "hive", hive),
				})
			}
		}
	}
	// Panel (d).
	cluster := mapreduce.EC2Cluster(10)
	cluster.DataScale = w.ClicksScale(clicksBytes)
	ys, err := w.RunTranslated("Q-CSA", translator.YSmart, cluster, "fig11d-ys")
	if err != nil {
		return nil, err
	}
	hive, err := w.RunTranslated("Q-CSA", translator.OneToOne, cluster, "fig11d-hive")
	if err != nil {
		return nil, err
	}
	pig, err := w.RunTranslated("Q-CSA", translator.PigLike, cluster, "fig11d-pig")
	if err != nil {
		return nil, err
	}
	out.QCSA.YSmart = runFromStats("Q-CSA", "ysmart", ys)
	out.QCSA.Hive = runFromStats("Q-CSA", "hive", hive)
	out.QCSA.Pig = runFromStats("Q-CSA", "pig", pig)
	return out, nil
}

// Format renders all panels.
func (r *Fig11Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig 11(a-c): EC2 clusters, ysmart vs hive (c = compression, nc = none)\n")
	sb.WriteString("paper: max speedup 297% (Q21, 101 nodes, nc); compression always hurts\n")
	fmt.Fprintf(&sb, "  %-6s %8s %5s %10s %10s %10s\n", "query", "workers", "mode", "ysmart", "hive", "speedup")
	for _, c := range r.Cells {
		mode := "nc"
		if c.Compress {
			mode = "c"
		}
		fmt.Fprintf(&sb, "  %-6s %8d %5s %9.0fs %9.0fs %10s\n",
			c.Query, c.Workers, mode, c.YSmart, c.Hive, speedup(c.Hive, c.YSmart))
	}
	sb.WriteString("Fig 11(d): Q-CSA on the 11-node cluster (nc)\n")
	sb.WriteString("paper: ysmart 487% over hive, 840% over pig\n")
	fmt.Fprintf(&sb, "  ysmart %7.0fs   hive %7.0fs (%s)   pig %7.0fs (%s)\n",
		r.QCSA.YSmart.Total,
		r.QCSA.Hive.Total, speedup(r.QCSA.Hive.Total, r.QCSA.YSmart.Total),
		r.QCSA.Pig.Total, speedup(r.QCSA.Pig.Total, r.QCSA.YSmart.Total))
	return sb.String()
}

// ---------------------------------------------------------------------------
// Fig. 12 and Fig. 13: the busy Facebook production cluster.
// ---------------------------------------------------------------------------

// Fig12Result holds six concurrent Q17 instances (3 YSmart + 3 Hive).
type Fig12Result struct {
	YSmart [3]Run
	Hive   [3]Run
}

// Fig12 reproduces §VII.F.1: Q17 on the 747-node shared cluster with 1 TB
// of data; contention seeds differ per instance, modelling the unpredicted
// dynamics the paper observed.
func Fig12(w *Workload) (*Fig12Result, error) {
	out := &Fig12Result{}
	for i := 0; i < 3; i++ {
		cluster := mapreduce.FacebookCluster(int64(100 + i))
		cluster.DataScale = w.TPCHScale(tpchFacebookByte)
		ys, err := w.RunTranslated("Q17", translator.YSmart, cluster, fmt.Sprintf("fig12-ys%d", i+1))
		if err != nil {
			return nil, err
		}
		out.YSmart[i] = runFromStats("Q17", fmt.Sprintf("ysmart-%d", i+1), ys)

		cluster = mapreduce.FacebookCluster(int64(200 + i))
		cluster.DataScale = w.TPCHScale(tpchFacebookByte)
		hive, err := w.RunTranslated("Q17", translator.OneToOne, cluster, fmt.Sprintf("fig12-hive%d", i+1))
		if err != nil {
			return nil, err
		}
		out.Hive[i] = runFromStats("Q17", fmt.Sprintf("hive-%d", i+1), hive)
	}
	return out, nil
}

// Format renders the six instances with phase breakdowns.
func (r *Fig12Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig 12: six Q17 instances on the Facebook-like cluster (1TB, contention)\n")
	sb.WriteString("paper: ysmart speedup 230-310% over hive\n")
	for _, run := range append(r.YSmart[:], r.Hive[:]...) {
		sb.WriteString(run.String())
	}
	var ys, hive float64
	for i := 0; i < 3; i++ {
		ys += r.YSmart[i].Total
		hive += r.Hive[i].Total
	}
	fmt.Fprintf(&sb, "average speedup: %s\n", speedup(hive/3, ys/3))
	return sb.String()
}

// Fig13Result holds the Q18 and Q21 averages of three instances each.
type Fig13Result struct {
	Query   [2]string
	YSmart  [2]float64 // average of three instances
	Hive    [2]float64
	Speedup [2]float64
	// YSmartRuns and HiveRuns keep each instance's full breakdown behind the
	// averages (used by the -json bench output).
	YSmartRuns [2][3]Run
	HiveRuns   [2][3]Run
}

// Fig13 reproduces §VII.F.2: Q18 and Q21 on the busy cluster. The paper's
// key observation — speedups exceed the isolated-cluster ones because every
// extra job pays a scheduling gap — emerges from the contention model.
func Fig13(w *Workload) (*Fig13Result, error) {
	out := &Fig13Result{Query: [2]string{"Q18", "Q21"}}
	for qi, query := range out.Query {
		var ysSum, hiveSum float64
		for i := 0; i < 3; i++ {
			cluster := mapreduce.FacebookCluster(int64(300 + 10*qi + i))
			cluster.DataScale = w.TPCHScale(tpchFacebookByte)
			ys, err := w.RunTranslated(query, translator.YSmart, cluster, fmt.Sprintf("fig13-%s-ys%d", query, i))
			if err != nil {
				return nil, err
			}
			ysSum += ys.TotalTime()
			out.YSmartRuns[qi][i] = runFromStats(query, fmt.Sprintf("ysmart-%d", i+1), ys)

			cluster = mapreduce.FacebookCluster(int64(400 + 10*qi + i))
			cluster.DataScale = w.TPCHScale(tpchFacebookByte)
			hive, err := w.RunTranslated(query, translator.OneToOne, cluster, fmt.Sprintf("fig13-%s-hive%d", query, i))
			if err != nil {
				return nil, err
			}
			hiveSum += hive.TotalTime()
			out.HiveRuns[qi][i] = runFromStats(query, fmt.Sprintf("hive-%d", i+1), hive)
		}
		out.YSmart[qi] = ysSum / 3
		out.Hive[qi] = hiveSum / 3
		out.Speedup[qi] = hiveSum / ysSum
	}
	return out, nil
}

// Format renders the two averaged bars.
func (r *Fig13Result) Format() string {
	var sb strings.Builder
	sb.WriteString("Fig 13: Q18 and Q21 on the Facebook-like cluster (avg of 3 instances)\n")
	sb.WriteString("paper: average speedups 298% (Q18) and 336% (Q21)\n")
	for i := range r.Query {
		fmt.Fprintf(&sb, "  %-4s ysmart %8.0fs   hive %8.0fs   speedup %.0f%%\n",
			r.Query[i], r.YSmart[i], r.Hive[i], 100*r.Speedup[i])
	}
	return sb.String()
}
