package experiments

import (
	"strings"
	"testing"
)

// TestManimalShape pins the ablation's claims: the rewrites shrink the
// map output on every naive user job (the ISSUE's >= 2 queries with
// byte/row savings), pushdown drops records, the early filter fires
// where one is provable, the cost model gets cheaper, and no run ever
// changes a result row.
func TestManimalShape(t *testing.T) {
	w := testWorkload(t)
	r, err := Manimal(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (three user jobs + one translated query)", len(r.Rows))
	}

	byQuery := map[string]ManimalRow{}
	saved := 0
	for _, row := range r.Rows {
		byQuery[row.Query] = row
		if !row.ResultOK {
			t.Errorf("%s: optimized rows differ from unoptimized", row.Query)
		}
		if row.OnBytes < row.OffBytes {
			saved++
		}
		if row.Source == "user-job" {
			if row.Rewrites == 0 {
				t.Errorf("%s: no rewrites applied", row.Query)
			}
			if row.OnBytes >= row.OffBytes {
				t.Errorf("%s: map output %d bytes with analysis on, %d off", row.Query, row.OnBytes, row.OffBytes)
			}
			if row.OnTime >= row.OffTime {
				t.Errorf("%s: predicted time %f with analysis on, %f off — the cost model saw no saving",
					row.Query, row.OnTime, row.OffTime)
			}
		}
	}
	if saved < 2 {
		t.Errorf("map-output bytes shrank on %d queries, want >= 2", saved)
	}
	if row := byQuery["highvalue-naive-j1"]; row.OnRecs >= row.OffRecs {
		t.Errorf("highvalue pushdown did not drop map-output records (%d vs %d)", row.OnRecs, row.OffRecs)
	}
	if row := byQuery["lateship-naive-j1"]; row.Filtered == 0 {
		t.Error("lateship early filter never fired")
	}
	if row := byQuery["Q-LATESHIP"]; row.Filtered == 0 || row.Rewrites == 0 {
		t.Errorf("translated query: filtered = %d, rewrites = %d; the scan-fact prefilter should fire",
			row.Filtered, row.Rewrites)
	}

	if text := r.Format(); !strings.Contains(text, "MANIMAL") || !strings.Contains(text, "highvalue-naive-j1") {
		t.Errorf("Format incomplete:\n%s", text)
	}
	if rows := r.BenchRows(); len(rows) != 8 {
		t.Errorf("BenchRows = %d, want 8 (off/on per query)", len(rows))
	}
}
