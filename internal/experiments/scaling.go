package experiments

import (
	"fmt"
	"strings"

	"ysmart/internal/mapreduce"
	"ysmart/internal/translator"
)

// ScalingPoint is one cluster size in the sweep.
type ScalingPoint struct {
	Workers int
	YSmart  float64
	Hive    float64
	// YSmartRun and HiveRun carry the full breakdowns behind the two totals
	// (used by the -json bench output).
	YSmartRun Run
	HiveRun   Run
}

// ScalingResult extends Fig. 11's two cluster sizes into a curve: per-node
// data held constant (1 GB per worker, as on EC2), cluster size swept.
type ScalingResult struct {
	Query  string
	Points []ScalingPoint
}

// ScalingSweep measures Q21 on EC2-style clusters of increasing size with
// constant per-worker data. The paper's observation — execution times
// "almost unchanged" between 11 and 101 nodes — should extend across the
// whole sweep for both systems, with YSmart's advantage preserved.
func ScalingSweep(w *Workload) (*ScalingResult, error) {
	out := &ScalingResult{Query: "Q21"}
	for _, workers := range []int{5, 10, 25, 50, 100} {
		target := float64(workers) * 1e9
		cluster := mapreduce.EC2Cluster(workers)
		cluster.DataScale = w.TPCHScale(target)
		ys, err := w.RunTranslated("Q21", translator.YSmart, cluster,
			fmt.Sprintf("scale-%d-ys", workers))
		if err != nil {
			return nil, err
		}
		cluster = mapreduce.EC2Cluster(workers)
		cluster.DataScale = w.TPCHScale(target)
		hive, err := w.RunTranslated("Q21", translator.OneToOne, cluster,
			fmt.Sprintf("scale-%d-hive", workers))
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, ScalingPoint{
			Workers:   workers,
			YSmart:    ys.TotalTime(),
			Hive:      hive.TotalTime(),
			YSmartRun: runFromStats("Q21", "ysmart", ys),
			HiveRun:   runFromStats("Q21", "hive", hive),
		})
	}
	return out, nil
}

// Format renders the sweep as a table.
func (r *ScalingResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Scaling sweep (extension): %s, 1GB per worker, nc\n", r.Query)
	sb.WriteString("paper basis: near-linear scaling between 11 and 101 nodes (§VII.E)\n")
	fmt.Fprintf(&sb, "  %8s %10s %10s %10s\n", "workers", "ysmart", "hive", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&sb, "  %8d %9.0fs %9.0fs %10s\n",
			p.Workers, p.YSmart, p.Hive, speedup(p.Hive, p.YSmart))
	}
	return sb.String()
}
