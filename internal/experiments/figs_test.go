package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The workload is expensive to generate; share one across tests.
var (
	sharedOnce sync.Once
	sharedW    *Workload
	sharedErr  error
)

func testWorkload(t *testing.T) *Workload {
	t.Helper()
	sharedOnce.Do(func() { sharedW, sharedErr = NewWorkload() })
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedW
}

// TestFig2bShape: Hive is competitive with hand-coded MR on the simple
// aggregation but loses by a large factor on the click-stream query.
func TestFig2bShape(t *testing.T) {
	w := testWorkload(t)
	r, err := Fig2b(w)
	if err != nil {
		t.Fatal(err)
	}
	aggHive, aggHand := r.Runs[0], r.Runs[1]
	csaHive, csaHand := r.Runs[2], r.Runs[3]
	if aggHive.Query != "Q-AGG" || csaHive.Query != "Q-CSA" {
		t.Fatalf("unexpected run order: %+v", r.Runs)
	}
	// Q-AGG: comparable (within 40%; the paper shows near-equal bars).
	if aggHive.Total > 1.4*aggHand.Total {
		t.Errorf("Q-AGG hive %.0fs vs hand %.0fs: want comparable", aggHive.Total, aggHand.Total)
	}
	// Q-CSA: hand-coded at least 2x faster (paper: ~3x).
	if csaHive.Total < 2*csaHand.Total {
		t.Errorf("Q-CSA hive %.0fs vs hand %.0fs: want >= 2x gap", csaHive.Total, csaHand.Total)
	}
	// Job counts: 1/1 for Q-AGG, 6/2 for Q-CSA.
	if len(csaHive.Jobs) != 6 || len(csaHand.Jobs) != 2 {
		t.Errorf("Q-CSA job counts = %d/%d, want 6/2", len(csaHive.Jobs), len(csaHand.Jobs))
	}
	if !strings.Contains(r.Format(), "Q-CSA") {
		t.Error("Format output incomplete")
	}
}

// TestFig9Shape: strict ordering one-op-one-job > ic+tc > ysmart >= hand,
// with the paper's approximate ratios.
func TestFig9Shape(t *testing.T) {
	w := testWorkload(t)
	r, err := Fig9(w)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.OneToOne.Total > r.ICTC.Total && r.ICTC.Total > r.YSmart.Total && r.YSmart.Total >= r.Hand.Total) {
		t.Errorf("ordering violated: %0.fs / %.0fs / %.0fs / %.0fs",
			r.OneToOne.Total, r.ICTC.Total, r.YSmart.Total, r.Hand.Total)
	}
	if len(r.OneToOne.Jobs) != 5 || len(r.ICTC.Jobs) != 3 || len(r.YSmart.Jobs) != 1 || len(r.Hand.Jobs) != 1 {
		t.Errorf("job counts = %d/%d/%d/%d, want 5/3/1/1",
			len(r.OneToOne.Jobs), len(r.ICTC.Jobs), len(r.YSmart.Jobs), len(r.Hand.Jobs))
	}
	// Paper: ic+tc is a 167% speedup, ysmart 203%. Accept 1.2x-4x bands.
	ictcSpeed := r.OneToOne.Total / r.ICTC.Total
	ysSpeed := r.OneToOne.Total / r.YSmart.Total
	if ictcSpeed < 1.2 || ictcSpeed > 4 {
		t.Errorf("ic+tc speedup %.2fx out of band (paper 1.67x)", ictcSpeed)
	}
	if ysSpeed < 1.5 || ysSpeed > 5 {
		t.Errorf("ysmart speedup %.2fx out of band (paper 2.03x)", ysSpeed)
	}
	// YSmart within 2x of hand-coded (paper: 1.17x).
	if r.YSmart.Total > 2*r.Hand.Total {
		t.Errorf("ysmart %.0fs vs hand %.0fs: more than 2x", r.YSmart.Total, r.Hand.Total)
	}
	// The paper: map phases of the three lineitem-scanning jobs dominate
	// one-op-one-job (65% of total).
	var mapSum float64
	for _, j := range r.OneToOne.Jobs {
		mapSum += j.Map
	}
	if frac := mapSum / r.OneToOne.Total; frac < 0.4 {
		t.Errorf("one-to-one map fraction %.2f, want dominant (paper 0.65)", frac)
	}
}

// TestFig10Shape: YSmart beats Hive and Pig on every query; Pig never beats
// Hive; pgsql wins the TPC-H queries but not Q-CSA by much.
func TestFig10Shape(t *testing.T) {
	w := testWorkload(t)
	r, err := Fig10(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.YSmart.Total >= row.Hive.Total {
			t.Errorf("%s: ysmart %.0fs not faster than hive %.0fs", row.Query, row.YSmart.Total, row.Hive.Total)
		}
		if row.Hive.Total > row.Pig.Total {
			t.Errorf("%s: hive %.0fs slower than pig %.0fs (paper: hive is the consistent winner)",
				row.Query, row.Hive.Total, row.Pig.Total)
		}
		speed := row.Hive.Total / row.YSmart.Total
		// Q-CSA's intermediate-result amplification depends strongly on the
		// click distribution; the paper itself measured 2.66x on the small
		// cluster and 4.87x on EC2, so its band is wider.
		lo, hi := 1.5, 6.0
		if row.Query == "Q-CSA" {
			lo, hi = 2.0, 10.0
		}
		if speed < lo || speed > hi {
			t.Errorf("%s: speedup %.2fx out of band [%v, %v] (paper 1.9-2.7x)", row.Query, speed, lo, hi)
		}
	}
	// DBMS beats MapReduce clearly on the TPC-H queries...
	for _, row := range r.Rows[:3] {
		if row.PgSQL >= row.YSmart.Total {
			t.Errorf("%s: pgsql %.0fs should beat ysmart %.0fs on DSS workloads", row.Query, row.PgSQL, row.YSmart.Total)
		}
	}
	// ...but on Q-CSA YSmart is in the same ballpark (paper: "almost the
	// same execution time"). Accept within 3x either way.
	csa := r.Rows[3]
	ratio := csa.YSmart.Total / csa.PgSQL
	if ratio > 3 || ratio < 1.0/3 {
		t.Errorf("Q-CSA ysmart/pgsql ratio %.2f, want comparable", ratio)
	}
	if txt := r.Format(); !strings.Contains(txt, "pgsql") || !strings.Contains(txt, "Q-CSA") {
		t.Errorf("Format incomplete:\n%s", txt)
	}
}

// TestFig11Shape: near-linear scaling, compression hurts, YSmart always
// wins, and the Q-CSA panel shows the biggest gaps.
func TestFig11Shape(t *testing.T) {
	w := testWorkload(t)
	r, err := Fig11(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(r.Cells))
	}
	byKey := map[string]Fig11Cell{}
	for _, c := range r.Cells {
		if c.YSmart >= c.Hive {
			t.Errorf("%s w=%d c=%v: ysmart %.0fs not faster than hive %.0fs",
				c.Query, c.Workers, c.Compress, c.YSmart, c.Hive)
		}
		mode := "nc"
		if c.Compress {
			mode = "c"
		}
		byKey[c.Query+mode+string(rune('0'+c.Workers/100))] = c
	}
	for _, q := range []string{"Q17", "Q18", "Q21"} {
		// Compression degrades both systems (paper third conclusion).
		small, comp := byKey[q+"nc0"], byKey[q+"c0"]
		if comp.YSmart <= small.YSmart || comp.Hive <= small.Hive {
			t.Errorf("%s: compression should slow both systems", q)
		}
		// Near-linear scaling: 101-node time within 1.6x of the 11-node
		// time despite 10x data (paper: "almost unchanged").
		big := byKey[q+"nc1"]
		if big.YSmart > 1.6*small.YSmart {
			t.Errorf("%s: ysmart does not scale (%.0fs on 101 vs %.0fs on 11)", q, big.YSmart, small.YSmart)
		}
	}
	// Panel (d): Q-CSA speedups are larger than TPC-H ones and Pig trails.
	if r.QCSA.Pig.Total <= r.QCSA.Hive.Total {
		t.Error("Q-CSA: pig should be slowest (it ran out of disk in the paper)")
	}
	if sp := r.QCSA.Hive.Total / r.QCSA.YSmart.Total; sp < 2 {
		t.Errorf("Q-CSA speedup %.2fx, want > 2x (paper 4.87x)", sp)
	}
	if txt := r.Format(); !strings.Contains(txt, "nc") || !strings.Contains(txt, "Fig 11(d)") {
		t.Errorf("Format incomplete:\n%s", txt)
	}
}

// TestFig12And13Shape: contention preserves YSmart's advantage, and the
// chain-length effect makes busy-cluster speedups at least as large as
// isolated ones for Q21.
func TestFig12And13Shape(t *testing.T) {
	w := testWorkload(t)
	r12, err := Fig12(w)
	if err != nil {
		t.Fatal(err)
	}
	var ysAvg, hiveAvg float64
	for i := 0; i < 3; i++ {
		ysAvg += r12.YSmart[i].Total / 3
		hiveAvg += r12.Hive[i].Total / 3
	}
	if sp := hiveAvg / ysAvg; sp < 1.5 {
		t.Errorf("fig12 average speedup %.2fx, want >= 1.5x (paper 2.3-3.1x)", sp)
	}
	// Instances must differ (unpredictable dynamics), but all YSmart runs
	// beat all Hive runs.
	if r12.YSmart[0].Total == r12.YSmart[1].Total && r12.YSmart[1].Total == r12.YSmart[2].Total {
		t.Error("fig12 instances identical; contention seeds not applied")
	}

	r13, err := Fig13(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r13.Query {
		if r13.Speedup[i] < 1.5 {
			t.Errorf("fig13 %s speedup %.2fx, want >= 1.5x (paper ~3x)", r13.Query[i], r13.Speedup[i])
		}
	}
	// The Q21 speedup on the busy cluster should be at least the isolated
	// one (more jobs -> more scheduling gaps for Hive).
	iso, err := Fig10(w)
	if err != nil {
		t.Fatal(err)
	}
	var isoQ21 float64
	for _, row := range iso.Rows {
		if row.Query == "Q21" {
			isoQ21 = row.Hive.Total / row.YSmart.Total
		}
	}
	if r13.Speedup[1] < isoQ21*0.9 {
		t.Errorf("busy-cluster Q21 speedup %.2fx below isolated %.2fx", r13.Speedup[1], isoQ21)
	}
	if txt := r12.Format(); !strings.Contains(txt, "ysmart-1") {
		t.Errorf("Fig12 Format incomplete:\n%s", txt)
	}
	if txt := r13.Format(); !strings.Contains(txt, "Q18") || !strings.Contains(txt, "Q21") {
		t.Errorf("Fig13 Format incomplete:\n%s", txt)
	}
}

// TestFormats: every figure renders non-empty text mentioning the paper's
// reference numbers.
func TestFormats(t *testing.T) {
	w := testWorkload(t)
	r2, err := Fig2b(w)
	if err != nil {
		t.Fatal(err)
	}
	r9, err := Fig9(w)
	if err != nil {
		t.Fatal(err)
	}
	for name, text := range map[string]string{
		"fig2b": r2.Format(),
		"fig9":  r9.Format(),
	} {
		if len(text) == 0 || !strings.Contains(text, "paper") {
			t.Errorf("%s format output missing paper reference:\n%s", name, text)
		}
	}
}

// TestAblationsShape: every removed design choice costs time, and the
// wrong partition key also costs jobs.
func TestAblationsShape(t *testing.T) {
	w := testWorkload(t)
	r, err := Ablations(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Time <= row.BaseTime {
			t.Errorf("%s: ablated %fs not slower than baseline %fs", row.Name, row.Time, row.BaseTime)
		}
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	if row := byName["pk-heuristic-off"]; row.Jobs <= row.Baseline {
		t.Errorf("pk ablation jobs = %d, want more than %d", row.Jobs, row.Baseline)
	}
	if row := byName["shared-scan-off"]; row.Jobs != row.Baseline {
		t.Errorf("shared-scan ablation should keep the job count (%d vs %d)", row.Jobs, row.Baseline)
	}
	if !strings.Contains(r.Format(), "pk-heuristic-off") {
		t.Error("Format incomplete")
	}
}

// TestScalingSweepShape: near-linear scaling across the whole sweep, with
// YSmart ahead at every size.
func TestScalingSweepShape(t *testing.T) {
	w := testWorkload(t)
	r, err := ScalingSweep(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(r.Points))
	}
	minYS, maxYS := r.Points[0].YSmart, r.Points[0].YSmart
	for _, p := range r.Points {
		if p.YSmart >= p.Hive {
			t.Errorf("%d workers: ysmart %.0fs not faster than hive %.0fs", p.Workers, p.YSmart, p.Hive)
		}
		if p.YSmart < minYS {
			minYS = p.YSmart
		}
		if p.YSmart > maxYS {
			maxYS = p.YSmart
		}
	}
	if maxYS > 1.5*minYS {
		t.Errorf("scaling not near-linear: ysmart times range %.0f-%.0fs", minYS, maxYS)
	}
	if !strings.Contains(r.Format(), "workers") {
		t.Error("Format incomplete")
	}
}
