package experiments

import (
	"fmt"
	"reflect"
	"strings"

	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/translator"
)

// The robustness experiment answers a question the paper could not (§III
// motivates per-job materialization as the price of fault tolerance, but
// never measures it): how do YSmart's merged plans behave under real task
// failures and stragglers versus one-operation-per-job chains? Merged jobs
// have fewer, larger tasks — a lost task re-executes more work — while
// per-op chains expose more task boundaries but pay per-job startup again
// on every retry-extended phase.

// robustnessProbs is the swept per-attempt task failure probability.
var robustnessProbs = []float64{0, 0.05, 0.1, 0.2}

// robustnessQueries are the workload queries swept (the §VII.D set).
var robustnessQueries = []string{"Q17", "Q18", "Q21", "Q-CSA"}

// RobustnessCell is one (query, failure rate) measurement of both systems.
type RobustnessCell struct {
	Query       string
	FailureProb float64
	YSmart      Run
	Hive        Run
	// YSmartOK / HiveOK report whether the fault-injected run produced
	// output identical to the fault-free run — the recovery-correctness
	// claim of the tentpole.
	YSmartOK bool
	HiveOK   bool
}

// RobustnessResult holds the sweep.
type RobustnessResult struct {
	Seed  int64
	Cells []RobustnessCell
}

// Robustness sweeps the per-attempt task failure probability (with
// stragglers at half that rate and speculation enabled) for YSmart-merged
// vs one-op-per-job plans on the small cluster, verifying after every run
// that recovery reproduced the fault-free output exactly.
func Robustness(w *Workload, seed int64) (*RobustnessResult, error) {
	out := &RobustnessResult{Seed: seed}
	for _, query := range robustnessQueries {
		var refYS, refHive []exec.Row
		for _, prob := range robustnessProbs {
			cluster := func() *mapreduce.Cluster {
				c := mapreduce.SmallCluster()
				c.DataScale = w.scaleFor(query, tpchSmallBytes)
				if prob > 0 {
					c.Faults = &mapreduce.FaultPlan{
						Seed:            seed,
						TaskFailureProb: prob,
						StragglerProb:   prob / 2,
					}
					c.Speculation = mapreduce.Speculation{Enabled: true}
				}
				return c
			}
			label := fmt.Sprintf("robust-%s-p%g", query, prob)
			ysStats, ysRows, err := w.RunTranslatedResult(query, translator.YSmart, cluster(), label+"-ys")
			if err != nil {
				return nil, err
			}
			hiveStats, hiveRows, err := w.RunTranslatedResult(query, translator.OneToOne, cluster(), label+"-hive")
			if err != nil {
				return nil, err
			}
			if prob == 0 {
				refYS, refHive = ysRows, hiveRows
			}
			out.Cells = append(out.Cells, RobustnessCell{
				Query:       query,
				FailureProb: prob,
				YSmart:      runFromStats(query, "ysmart", ysStats),
				Hive:        runFromStats(query, "one-op-one-job", hiveStats),
				YSmartOK:    reflect.DeepEqual(refYS, ysRows),
				HiveOK:      reflect.DeepEqual(refHive, hiveRows),
			})
		}
	}
	return out, nil
}

// Format renders the sweep as a table: per query, simulated time and
// recovery activity of both systems at each failure rate, plus the
// merged-vs-chained slowdown each rate induces.
func (r *RobustnessResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Robustness: task failures + stragglers, speculation on (small cluster, seed %d)\n", r.Seed)
	sb.WriteString("not in the paper: event-level recovery behind the §III materialization argument\n")
	sb.WriteString("  query   p(fail)   ysmart        (retries/spec)   one-op-one-job (retries/spec)   result\n")
	byQuery := make(map[string][]RobustnessCell)
	var order []string
	for _, c := range r.Cells {
		if _, ok := byQuery[c.Query]; !ok {
			order = append(order, c.Query)
		}
		byQuery[c.Query] = append(byQuery[c.Query], c)
	}
	for _, q := range order {
		cells := byQuery[q]
		base := cells[0]
		for _, c := range cells {
			check := "ok"
			if !c.YSmartOK || !c.HiveOK {
				check = "MISMATCH"
			}
			fmt.Fprintf(&sb, "  %-6s  %5.2f   %7.0fs (%3d/%2d)        %7.0fs (%3d/%2d)          %s\n",
				c.Query, c.FailureProb,
				c.YSmart.Total, c.YSmart.Retries+c.YSmart.Recomputed, c.YSmart.Speculative,
				c.Hive.Total, c.Hive.Retries+c.Hive.Recomputed, c.Hive.Speculative,
				check)
		}
		last := cells[len(cells)-1]
		fmt.Fprintf(&sb, "  %-6s  slowdown at p=%.2f: ysmart %.2fx, one-op-one-job %.2fx; ysmart speedup %s -> %s\n",
			q, last.FailureProb,
			last.YSmart.Total/base.YSmart.Total, last.Hive.Total/base.Hive.Total,
			speedup(base.Hive.Total, base.YSmart.Total), speedup(last.Hive.Total, last.YSmart.Total))
	}
	return sb.String()
}

// BenchRows flattens the robustness sweep for -json output.
func (r *RobustnessResult) BenchRows() []BenchRow {
	var out []BenchRow
	for _, c := range r.Cells {
		ys := benchRow("robustness", c.YSmart)
		ys.FailureRate = c.FailureProb
		ys.ResultOK = c.YSmartOK
		hive := benchRow("robustness", c.Hive)
		hive.FailureRate = c.FailureProb
		hive.ResultOK = c.HiveOK
		out = append(out, ys, hive)
	}
	return out
}
