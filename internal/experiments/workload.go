// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII). Each FigN function runs the corresponding experiment
// on the simulated cluster models and returns the same rows/series the
// paper reports; Format methods render them as text tables. Absolute times
// come from the cost model, so they will not match the authors' testbed —
// the shape (who wins, by what factor, where effects appear) is the claim
// being reproduced, and EXPERIMENTS.md records both sides.
package experiments

import (
	"fmt"

	"ysmart/internal/datagen"
	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/handcoded"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
	"ysmart/internal/translator"
)

// Paper data-set sizes (§VII.B–F), simulated through DataScale.
const (
	tpchSmallBytes   = 10e9   // 10 GB TPC-H on the small cluster and EC2-11
	tpchLargeBytes   = 100e9  // 100 GB on EC2-101
	tpchFacebookByte = 1000e9 // 1 TB on the Facebook cluster
	clicksBytes      = 20e9   // 20 GB click-stream everywhere it is used
)

// Workload owns the generated data and the DBMS oracle.
type Workload struct {
	tpch     datagen.Tables
	clicks   datagen.Tables
	DB       *dbms.Database
	tpchSize int64 // bytes of all TPC-H tables as stored in the DFS
	clickSz  int64
}

// NewWorkload generates the experiment data set (larger than the test
// defaults for stabler ratios) and loads the oracle database.
func NewWorkload() (*Workload, error) {
	tpch, err := datagen.TPCH(datagen.TPCHConfig{
		Orders: 2000, Parts: 200, Customers: 400, Suppliers: 100, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	clicks, err := datagen.Clickstream(datagen.ClickConfig{
		Users: 300, ClicksPerUser: 60, Categories: 5, Seed: 8,
	})
	if err != nil {
		return nil, err
	}
	w := &Workload{tpch: tpch, clicks: clicks, DB: dbms.NewDatabase()}
	cat := queries.Catalog()
	for _, tables := range []datagen.Tables{tpch, clicks} {
		for name, rows := range tables {
			schema, ok := cat.Table(name)
			if !ok {
				return nil, fmt.Errorf("no schema for table %s", name)
			}
			w.DB.Load(name, schema, rows)
		}
	}
	dfs := w.FreshDFS()
	for name := range tpch {
		w.tpchSize += dfs.SizeBytes(translator.TablePath(name))
	}
	w.clickSz = dfs.SizeBytes(translator.TablePath("clicks"))
	return w, nil
}

// FreshDFS returns a new DFS pre-loaded with every workload table.
func (w *Workload) FreshDFS() *mapreduce.DFS {
	dfs := mapreduce.NewDFS()
	for _, tables := range []datagen.Tables{w.tpch, w.clicks} {
		for name, rows := range tables {
			dfs.Write(translator.TablePath(name), datagen.Lines(rows))
		}
	}
	return dfs
}

// TPCHScale returns the DataScale that stretches the generated TPC-H data
// to target simulated bytes.
func (w *Workload) TPCHScale(target float64) float64 {
	return target / float64(w.tpchSize)
}

// ClicksScale is TPCHScale for the click-stream table.
func (w *Workload) ClicksScale(target float64) float64 {
	return target / float64(w.clickSz)
}

// isTPCH reports whether a named workload query runs on TPC-H data.
func isTPCH(query string) bool { return query != "Q-CSA" && query != "Q-AGG" }

// scaleFor picks the data scale a query needs on a cluster sized for
// target TPC-H bytes; click-stream queries always use the 20 GB setting.
func (w *Workload) scaleFor(query string, tpchTarget float64) float64 {
	if isTPCH(query) {
		return w.TPCHScale(tpchTarget)
	}
	return w.ClicksScale(clicksBytes)
}

// RunTranslated translates a named workload query and executes it on the
// cluster.
func (w *Workload) RunTranslated(query string, mode translator.Mode, cluster *mapreduce.Cluster, label string) (*mapreduce.ChainStats, error) {
	sql, ok := queries.Named()[query]
	if !ok {
		return nil, fmt.Errorf("unknown workload query %q", query)
	}
	root, err := queries.Plan(sql)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", query, err)
	}
	tr, err := translator.Translate(root, mode, translator.Options{QueryName: label})
	if err != nil {
		return nil, fmt.Errorf("%s (%v): %w", query, mode, err)
	}
	eng, err := mapreduce.NewEngine(w.FreshDFS(), cluster)
	if err != nil {
		return nil, err
	}
	stats, err := eng.RunChain(tr.Jobs)
	if err != nil {
		return nil, fmt.Errorf("%s (%v): %w", query, mode, err)
	}
	return stats, nil
}

// RunTranslatedResult is RunTranslated plus the query's decoded output
// rows, so callers can check result integrity — the robustness figure
// compares fault-injected outputs against fault-free ones.
func (w *Workload) RunTranslatedResult(query string, mode translator.Mode, cluster *mapreduce.Cluster, label string) (*mapreduce.ChainStats, []exec.Row, error) {
	sql, ok := queries.Named()[query]
	if !ok {
		return nil, nil, fmt.Errorf("unknown workload query %q", query)
	}
	root, err := queries.Plan(sql)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", query, err)
	}
	tr, err := translator.Translate(root, mode, translator.Options{QueryName: label})
	if err != nil {
		return nil, nil, fmt.Errorf("%s (%v): %w", query, mode, err)
	}
	dfs := w.FreshDFS()
	eng, err := mapreduce.NewEngine(dfs, cluster)
	if err != nil {
		return nil, nil, err
	}
	stats, err := eng.RunChain(tr.Jobs)
	if err != nil {
		return nil, nil, fmt.Errorf("%s (%v): %w", query, mode, err)
	}
	rows, err := tr.ReadResult(dfs)
	if err != nil {
		return nil, nil, fmt.Errorf("%s (%v): %w", query, mode, err)
	}
	return stats, rows, nil
}

// RunHandCoded executes one of the hand-written programs on the cluster.
func (w *Workload) RunHandCoded(query string, cluster *mapreduce.Cluster, label string) (*mapreduce.ChainStats, error) {
	var prog *handcoded.Program
	switch query {
	case "Q-AGG":
		prog = handcoded.QAGG(label)
	case "Q-CSA":
		prog = handcoded.QCSA(label)
	case "Q21":
		prog = handcoded.Q21(label)
	default:
		return nil, fmt.Errorf("no hand-coded program for %q", query)
	}
	eng, err := mapreduce.NewEngine(w.FreshDFS(), cluster)
	if err != nil {
		return nil, err
	}
	return eng.RunChain(prog.Jobs)
}

// RunDBMS executes a named query on the pipelined executor and returns its
// simulated time under the "ideal parallel PostgreSQL" assumptions of
// §VII.D: 4-way parallelism over one quarter of the data.
func (w *Workload) RunDBMS(query string, dataScale float64) (float64, error) {
	sql, ok := queries.Named()[query]
	if !ok {
		return 0, fmt.Errorf("unknown workload query %q", query)
	}
	root, err := queries.Plan(sql)
	if err != nil {
		return 0, err
	}
	res, err := dbms.Execute(root, w.DB)
	if err != nil {
		return 0, err
	}
	cm := dbms.DefaultCostModel()
	cm.DataScale = dataScale / 4 // the paper gives pgsql 1/4 of the data
	cm.Parallelism = 1
	return cm.Time(res.Stats), nil
}
