package translator

import (
	"testing"

	"ysmart/internal/dbms"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
)

// TestComputedKeyFallsBackToSeparateScans: when one instance of a shared
// table is keyed through a computed projection, its key cannot be traced to
// a base column, so that stream falls back to its own scan — correctness
// over sharing.
func TestComputedKeyFallsBackToSeparateScans(t *testing.T) {
	// b's join column u2 is uid+0: a computed projection the shared-scan
	// mapper cannot key on from the raw row.
	sql := `
		SELECT a.uid, b.u2 FROM
		  clicks AS a,
		  (SELECT uid + 0 AS u2, ts FROM clicks) AS b
		WHERE a.uid = b.u2 AND a.cid = 1`

	dfs, db := workload(t)
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(root, YSmart, Options{QueryName: "computed-key"})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.RunChain(tr.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Both instances scan clicks separately: two full scans.
	clicksBytes := dfs.SizeBytes(TablePath("clicks"))
	if got := stats.Jobs[0].MapInputBytes; got != 2*clicksBytes {
		t.Errorf("map input = %d, want two separate clicks scans (%d)", got, 2*clicksBytes)
	}
	// And the result still matches the oracle.
	oracle, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tr.ReadResult(dfs)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, tr.OutputSchema, rows, oracle.Rows)
}

// TestLimitWithoutSortRejected: LIMIT is only expressible above the final
// ORDER BY (a single total-order reducer); anywhere else is a clear error.
func TestLimitWithoutSortRejected(t *testing.T) {
	root, err := queries.Plan("SELECT uid, count(*) FROM clicks GROUP BY uid LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(root, YSmart, Options{QueryName: "limit"}); err == nil {
		t.Error("LIMIT without ORDER BY should be rejected by the translator")
	}
	// Inside a derived table it is rejected as well.
	root, err = queries.Plan(`
		SELECT x.uid FROM
		 (SELECT uid FROM clicks ORDER BY uid LIMIT 5) AS x,
		 clicks c
		WHERE x.uid = c.uid`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(root, YSmart, Options{QueryName: "limit2"}); err == nil {
		t.Error("LIMIT inside a join input should be rejected")
	}
}
