package translator

import (
	"strings"
	"testing"

	"ysmart/internal/datagen"
	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/plan"
	"ysmart/internal/sqlparser"
)

// TestFig7MergingWalkthrough reconstructs the paper's Fig. 7 example as
// SQL and checks YSmart reaches the optimal grouping {J2, J1+4+3+5}:
//
//   - JOIN1 (r ⋈ s) and AGG2 (r grouped) have input+transit correlation;
//   - JOIN2 has job-flow correlation with JOIN1 but not AGG1 (the join
//     column on AGG1's side is a computed aggregate with no lineage);
//   - JOIN3 has job-flow correlation with both JOIN2 and AGG2.
//
// Rule 4 exchanges JOIN2's children so AGG1's job runs first, and the
// cascade of Rules 1, 3 and 4 folds everything else into one common job —
// two jobs total, exactly the paper's Fig. 7(b) outcome.
func TestFig7MergingWalkthrough(t *testing.T) {
	cat := fig7Catalog()
	stmt, err := sqlparser.Parse(fig7SQL)
	if err != nil {
		t.Fatal(err)
	}
	root, err := plan.Build(stmt, cat)
	if err != nil {
		t.Fatal(err)
	}

	oto, err := Translate(root, OneToOne, Options{QueryName: "fig7-oto"})
	if err != nil {
		t.Fatal(err)
	}
	if oto.NumJobs() != 5 {
		t.Fatalf("one-to-one jobs = %d, want 5\n%s", oto.NumJobs(), oto.Describe())
	}

	ys, err := Translate(root, YSmart, Options{QueryName: "fig7-ys"})
	if err != nil {
		t.Fatal(err)
	}
	if ys.NumJobs() != 2 {
		t.Fatalf("ysmart jobs = %d, want 2 (the Fig. 7(b) sequence)\n%s",
			ys.NumJobs(), ys.Describe())
	}
	// First job is AGG1 alone (executed before the common job, Rule 4);
	// the second is the four-operation common job.
	if got := strings.Join(ys.Groups[0], "+"); got != "AGG1" {
		t.Errorf("job 1 ops = %s, want AGG1", got)
	}
	// Operation order inside the common job follows the post-order IDs
	// after the Rule 4 exchange (AGG1's subtree first).
	if got := strings.Join(ys.Groups[1], "+"); got != "JOIN1+JOIN2+AGG2+JOIN3" {
		t.Errorf("job 2 ops = %s, want JOIN1+JOIN2+AGG2+JOIN3", got)
	}

	// Execution correctness on small data, against the oracle.
	dfs := mapreduce.NewDFS()
	db := dbms.NewDatabase()
	for name, rows := range fig7Data() {
		schema, _ := cat.Table(name)
		dfs.Write(TablePath(name), datagen.Lines(rows))
		db.Load(name, schema, rows)
	}
	oracle, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.Rows) == 0 {
		t.Fatal("fig7 data produces no rows; the scenario is vacuous")
	}
	for _, tr := range []*Translation{oto, ys} {
		eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunChain(tr.Jobs); err != nil {
			t.Fatalf("run (%v): %v", tr.Mode, err)
		}
		rows, err := tr.ReadResult(dfs)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, tr.OutputSchema, rows, oracle.Rows)
	}
}

const fig7SQL = `
SELECT j2.a, j2.c, ag2.n FROM
 (SELECT j1.a AS a, j1.c AS c FROM
    (SELECT r.a AS a, r.b AS b, s.c AS c FROM r, s WHERE r.a = s.a) AS j1,
    (SELECT d, max(e) AS me FROM t GROUP BY d) AS ag1
  WHERE j1.a = ag1.me) AS j2,
 (SELECT a, count(*) AS n FROM r GROUP BY a) AS ag2
WHERE j2.a = ag2.a`

func fig7Catalog() plan.MapCatalog {
	return plan.MapCatalog{
		"r": exec.NewSchema(
			exec.Column{Name: "a", Type: exec.TypeInt},
			exec.Column{Name: "b", Type: exec.TypeInt},
		),
		"s": exec.NewSchema(
			exec.Column{Name: "a", Type: exec.TypeInt},
			exec.Column{Name: "c", Type: exec.TypeInt},
		),
		"t": exec.NewSchema(
			exec.Column{Name: "d", Type: exec.TypeInt},
			exec.Column{Name: "e", Type: exec.TypeInt},
		),
	}
}

func fig7Data() map[string][]exec.Row {
	ir := func(vals ...int64) exec.Row {
		r := make(exec.Row, len(vals))
		for i, v := range vals {
			r[i] = exec.Int(v)
		}
		return r
	}
	return map[string][]exec.Row{
		// r.a values 1..4.
		"r": {ir(1, 10), ir(2, 20), ir(2, 21), ir(3, 30), ir(4, 40)},
		// s matches a = 1, 2, 4.
		"s": {ir(1, 100), ir(2, 200), ir(4, 400)},
		// t groups whose max(e) hits r.a values 2 and 4.
		"t": {ir(7, 1), ir(7, 2), ir(8, 4), ir(9, 99)},
	}
}
