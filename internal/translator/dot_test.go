package translator

import (
	"strings"
	"testing"

	"ysmart/internal/queries"
)

func TestDOTRendersJobGraph(t *testing.T) {
	tr := translate(t, queries.Q17, YSmart, Options{QueryName: "dot"})
	dot := tr.DOT()
	for _, want := range []string{
		"digraph ysmart",
		"cluster_0", "cluster_1", // two jobs
		"AGG1", "JOIN1", "JOIN2", "AGG2",
		"diamond",         // joins are diamonds
		"style=dashed",    // inter-job intermediate edge
		"tables/lineitem", // stream labels carry paths
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces make it parseable.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces in DOT output")
	}
}

func TestDOTMapOnlyJob(t *testing.T) {
	tr := translate(t, "SELECT uid FROM clicks WHERE cid = 1", YSmart, Options{QueryName: "dotsp"})
	dot := tr.DOT()
	if !strings.Contains(dot, "map-only SP") {
		t.Errorf("SP job not rendered:\n%s", dot)
	}
}
