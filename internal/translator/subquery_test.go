package translator

import (
	"strings"
	"testing"

	"ysmart/internal/dbms"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
)

// TestQ18OrigEqualsFlattenedQ18: the automatically flattened nested Q18
// must return exactly the rows of the paper's hand-flattened version, in
// every translation mode.
func TestQ18OrigEqualsFlattenedQ18(t *testing.T) {
	dfs, db := workload(t)
	flatRoot, err := queries.Plan(queries.Q18)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := dbms.Execute(flatRoot, db)
	if err != nil {
		t.Fatal(err)
	}
	origRoot, err := queries.Plan(queries.Q18Orig)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := dbms.Execute(origRoot, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Rows) == 0 {
		t.Fatal("Q18 returned no rows; equivalence is vacuous")
	}
	assertSameRows(t, origRoot.Schema(), orig.Rows, flat.Rows)

	for _, mode := range allModes {
		tr, err := Translate(origRoot, mode, Options{QueryName: "q18orig-" + mode.String()})
		if err != nil {
			t.Fatalf("translate (%v): %v", mode, err)
		}
		eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunChain(tr.Jobs); err != nil {
			t.Fatalf("run (%v): %v", mode, err)
		}
		rows, err := tr.ReadResult(dfs)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, tr.OutputSchema, rows, flat.Rows)
	}
}

// TestSemiJoinSkipsRedundantDedup: a subquery already grouped on its output
// column needs no extra deduplication aggregate, so the nested Q18 gets the
// same operation count as a hand-written semi-join.
func TestSemiJoinSkipsRedundantDedup(t *testing.T) {
	tr := translate(t, queries.Q18Orig, YSmart, Options{QueryName: "q18orig"})
	ops := 0
	for _, g := range tr.Groups {
		ops += len(g)
	}
	// customer⋈orders, orders⋈lineitem, AGG (subquery), semi-join, AGG2,
	// SORT — six operations; a redundant dedup would make it seven.
	if ops != 6 {
		t.Errorf("operations = %d, want 6 (no redundant dedup)\n%s", ops, tr.Describe())
	}
}

// TestSemiJoinWithDedup: a non-distinct subquery side gets a deduplication
// aggregate so the semi-join preserves outer multiplicity.
func TestSemiJoinWithDedup(t *testing.T) {
	// The subquery projects uid from raw clicks: duplicates everywhere.
	sql := `SELECT cid, ts FROM clicks
	        WHERE uid IN (SELECT uid FROM clicks WHERE cid = 2)
	          AND cid = 1`
	checkAgainstOracle(t, sql, "semi-dedup")

	tr := translate(t, sql, YSmart, Options{QueryName: "semi-dedup-ops"})
	found := false
	for _, g := range tr.Groups {
		for _, op := range g {
			if strings.HasPrefix(op, "AGG") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("expected a dedup aggregation in the job plan:\n%s", tr.Describe())
	}
}

// TestInSubqueryOnJoinKeyMerges: when the IN column is the shared partition
// key, the semi-join participates in YSmart's merging like any other join.
func TestInSubqueryOnJoinKeyMerges(t *testing.T) {
	sql := `SELECT l_orderkey, l_quantity FROM lineitem
	        WHERE l_orderkey IN (SELECT l_orderkey FROM lineitem
	                             GROUP BY l_orderkey
	                             HAVING count(*) > 3)`
	checkAgainstOracle(t, sql, "semi-merge")
	tr := translate(t, sql, YSmart, Options{QueryName: "semi-merge-ops"})
	if tr.NumJobs() != 1 {
		t.Errorf("jobs = %d, want 1 (AGG and semi-join share l_orderkey)\n%s",
			tr.NumJobs(), tr.Describe())
	}
}

func TestInSubqueryErrors(t *testing.T) {
	bad := []struct {
		name, sql, want string
	}{
		{
			"not in subquery",
			"SELECT uid FROM clicks WHERE uid NOT IN (SELECT uid FROM clicks)",
			"NOT IN",
		},
		{
			"expression lhs",
			"SELECT uid FROM clicks WHERE uid + 1 IN (SELECT uid FROM clicks)",
			"plain column",
		},
		{
			"multi-column subquery",
			"SELECT uid FROM clicks WHERE uid IN (SELECT uid, cid FROM clicks)",
			"exactly one column",
		},
		{
			"subquery under OR",
			"SELECT uid FROM clicks WHERE cid = 1 OR uid IN (SELECT uid FROM clicks)",
			"top-level WHERE conjunct",
		},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			_, err := queries.Plan(tt.sql)
			if err == nil {
				t.Fatalf("Plan(%q) succeeded, want error containing %q", tt.sql, tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}
