package translator

import (
	"fmt"
	"hash/fnv"
	"strings"

	"ysmart/internal/sqlparser"
)

// NormalizeSQL renders sql in a canonical single-line form suitable as a
// plan-cache key: comments dropped, whitespace collapsed to single spaces,
// keywords upper-cased, identifiers lower-cased (the planner resolves
// tables, columns and aliases case-insensitively, so spellings that differ
// only in identifier case are the same query), string literals re-quoted
// with ” escaping, != folded to <>, and trailing semicolons removed. Two
// SQL texts normalize to the same string exactly when they tokenize to the
// same token stream, so a cache keyed on the result can never alias two
// semantically different queries.
//
// The input is only lexed, not parsed: a string that normalizes cleanly may
// still fail to parse, and the cache-miss path reports that error.
func NormalizeSQL(sql string) (string, error) {
	toks, err := sqlparser.Tokenize(sql)
	if err != nil {
		return "", err
	}
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.Kind {
		case sqlparser.KindEOF:
		case sqlparser.KindIdent:
			parts = append(parts, strings.ToLower(t.Text))
		case sqlparser.KindString:
			parts = append(parts, "'"+strings.ReplaceAll(t.Text, "'", "''")+"'")
		default:
			// Keywords arrive upper-cased from the lexer; numbers and
			// symbols keep their source spelling (the lexer already folds
			// != to <>).
			parts = append(parts, t.Text)
		}
	}
	for len(parts) > 0 && parts[len(parts)-1] == ";" {
		parts = parts[:len(parts)-1]
	}
	if len(parts) == 0 {
		return "", fmt.Errorf("empty statement")
	}
	return strings.Join(parts, " "), nil
}

// CacheKey builds the plan-cache key of a query: its normalized SQL scoped
// by translation mode, so one cache can serve servers running in different
// modes without mixing their job chains.
func CacheKey(sql string, mode Mode) (string, error) {
	norm, err := NormalizeSQL(sql)
	if err != nil {
		return "", err
	}
	return mode.String() + "\x00" + norm, nil
}

// CacheKeyOpt builds the plan-cache key of a query with the optimizer
// dimension folded in: translations carrying the MANIMAL rewrites must
// never share a cache entry (or a QueryTag-derived DFS prefix) with
// plain translations of the same SQL.
func CacheKeyOpt(sql string, mode Mode, optimize bool) (string, error) {
	key, err := CacheKey(sql, mode)
	if err != nil {
		return "", err
	}
	if optimize {
		return "manimal\x00" + key, nil
	}
	return key, nil
}

// QueryTag derives a short stable job/DFS label from a cache key, so every
// cached plan writes its intermediate and final outputs under a distinct
// deterministic path prefix no matter which session replays it.
func QueryTag(key string) string {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return fmt.Sprintf("q%012x", h.Sum64()&0xffffffffffff)
}
