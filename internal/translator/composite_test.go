package translator

import "testing"

// Composite (multi-column) partition keys: a self-join on (uid, cid) whose
// parent aggregation groups by the same pair must merge into a single job,
// and every mode must agree with the oracle.

const compositeSQL = `
SELECT c1.uid, c1.cid, count(*) AS pairs, min(c2.ts) AS first_ts
FROM clicks c1, clicks c2
WHERE c1.uid = c2.uid AND c1.cid = c2.cid AND c1.ts < c2.ts
GROUP BY c1.uid, c1.cid`

func TestCompositeKeyMergesToOneJob(t *testing.T) {
	tr := translate(t, compositeSQL, YSmart, Options{QueryName: "composite"})
	if tr.NumJobs() != 1 {
		t.Fatalf("jobs = %d, want 1 (JOIN and AGG share the composite key)\n%s",
			tr.NumJobs(), tr.Describe())
	}
}

func TestCompositeKeyAllModesMatchOracle(t *testing.T) {
	checkAgainstOracle(t, compositeSQL, "composite")
}

// Aggregation edge cases through the full pipeline.

func TestGlobalAggregateWithHavingAllModes(t *testing.T) {
	checkAgainstOracle(t, `
		SELECT count(*) AS n, sum(ts) AS total
		FROM clicks
		WHERE cid = 1
		HAVING count(*) > 0`, "global-having")
}

func TestOrderByAggregateAllModes(t *testing.T) {
	checkAgainstOracle(t, `
		SELECT cid, count(*) AS n
		FROM clicks
		GROUP BY cid
		ORDER BY count(*) DESC, cid
		LIMIT 3`, "order-by-agg")
}

func TestDistinctThroughPipelineAllModes(t *testing.T) {
	checkAgainstOracle(t, `SELECT DISTINCT cid FROM clicks WHERE uid < 20`, "distinct")
}

func TestThreeWayJoinAllModes(t *testing.T) {
	// lineitem ⋈ orders ⋈ part: two different join keys, so the second
	// join cannot merge with the first.
	checkAgainstOracle(t, `
		SELECT o_orderstatus, p_name, l_quantity
		FROM lineitem, orders, part
		WHERE o_orderkey = l_orderkey
		  AND p_partkey = l_partkey
		  AND l_quantity > 45`, "three-way")
}

func TestThreeWayJoinJobCounts(t *testing.T) {
	sql := `
		SELECT o_orderstatus, p_name
		FROM lineitem, orders, part
		WHERE o_orderkey = l_orderkey AND p_partkey = l_partkey`
	oto := translate(t, sql, OneToOne, Options{QueryName: "tw-oto"})
	ys := translate(t, sql, YSmart, Options{QueryName: "tw-ys"})
	if oto.NumJobs() != 2 || ys.NumJobs() != 2 {
		t.Errorf("jobs = %d/%d, want 2/2 (different keys prevent merging)",
			oto.NumJobs(), ys.NumJobs())
	}
}
