package translator

import (
	"fmt"
	"sort"
	"strings"

	"ysmart/internal/cmf"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/plan"
	"ysmart/internal/reuse"
)

// JobArtifact identifies one job's output for the cross-query reuse
// store: the canonical fingerprint of the sub-plan the job computes and
// the base-table DFS paths the output was derived from. It deliberately
// contains no query names, job names or tmp paths, so structurally
// identical jobs generated for different queries fingerprint identically
// and can share a materialized artifact.
type JobArtifact struct {
	Fingerprint string
	// Tables are the DFS paths (TablePath) of every base table the job's
	// output transitively depends on, sorted.
	Tables []string
}

// ArtifactKey scopes a fingerprint by the optimizer dimension, following
// the CacheKeyOpt discipline: MANIMAL-rewritten translations must never
// share artifacts with plain translations of the same sub-plan.
func ArtifactKey(fingerprint string, optimized bool) string {
	if optimized {
		return "manimal\x00" + fingerprint
	}
	return fingerprint
}

// ArtifactPath is the DFS path a reused artifact is installed under
// before the rewritten chain runs (a NUL-free rendering of ArtifactKey).
func ArtifactPath(fingerprint string, optimized bool) string {
	if optimized {
		return "restore/manimal-" + fingerprint
	}
	return "restore/" + fingerprint
}

// artifactHeader writes the descriptor preamble: every knob that changes
// generated job bytes (mode and the lowering toggles) scopes the hash.
func (lw *lowerer) artifactHeader(sb *strings.Builder) {
	fmt.Fprintf(sb, "v1;mode=%s;prune=%t;combine=%t;share=%t\n", lw.mode, lw.prune, lw.combine, lw.share)
}

// artifactFor fingerprints one lowered job: the canonical rendering of
// every operation it executes (with the pruned column demand that shapes
// its written rows), its output tags, and — Merkle-style — the
// fingerprints of the jobs it reads intermediate results from, so an
// artifact is only ever reused when its whole upstream computation
// matches. The job that produces the query result hashes the full plan
// root instead, covering the top chain and LIMIT.
func (lw *lowerer) artifactFor(jb *jobBuild, cj *cmf.CommonJob, depFPs []string) JobArtifact {
	var sb strings.Builder
	lw.artifactHeader(&sb)
	tables := make(map[string]bool)
	for _, op := range jb.ops {
		if op == lw.analysis.RootOp {
			fmt.Fprintf(&sb, "root;limit=%d;%s\n", lw.topLimit, reuse.CanonPlan(lw.analysis.Root()))
			for t := range plan.BaseTables(lw.analysis.Root()) {
				tables[t] = true
			}
			continue
		}
		fmt.Fprintf(&sb, "op;req=%v;%s\n", lw.requiredOf(op.Node()), reuse.CanonPlan(op.Node()))
		for t := range plan.BaseTables(op.Node()) {
			tables[t] = true
		}
	}
	for _, out := range cj.Outputs {
		fmt.Fprintf(&sb, "out;%s\n", out.Tag)
	}
	for _, fp := range depFPs {
		fmt.Fprintf(&sb, "dep;%s\n", fp)
	}
	return JobArtifact{Fingerprint: reuse.Fingerprint(sb.String()), Tables: tablePathsOf(tables)}
}

// rootArtifact fingerprints the single map-only job of a pure
// selection-projection query: the full plan root.
func (lw *lowerer) rootArtifact() JobArtifact {
	var sb strings.Builder
	lw.artifactHeader(&sb)
	fmt.Fprintf(&sb, "root;limit=%d;%s\n", lw.topLimit, reuse.CanonPlan(lw.analysis.Root()))
	return JobArtifact{
		Fingerprint: reuse.Fingerprint(sb.String()),
		Tables:      tablePathsOf(plan.BaseTables(lw.analysis.Root())),
	}
}

// tablePathsOf converts a base-table set to sorted DFS paths.
func tablePathsOf(tables map[string]bool) []string {
	out := make([]string, 0, len(tables))
	for t := range tables {
		out = append(out, TablePath(t))
	}
	sort.Strings(out)
	return out
}

// reuseRecord remembers what to materialize after an executed job's run.
type reuseRecord struct {
	jobName     string
	key         string
	fingerprint string
	tables      []string
	outPath     string
}

// ReusePlan is a translation rewritten against the materialized-output
// store: the jobs that still need to run (clones — the source Translation
// is never mutated, so plan-cache leasing stays safe), with inputs that
// matched a stored artifact repointed at restore/ paths. Run rp.Jobs,
// read the result via rp.ReadResult, then call rp.Record to materialize
// the outputs of the jobs that did execute.
type ReusePlan struct {
	// Jobs is the rewritten chain (possibly empty when the whole query
	// came from the store; RunChain of an empty chain is a no-op).
	Jobs []*mapreduce.Job
	// Output/OutputTag/OutputSchema locate and type the result rows —
	// Output points into restore/ when the final job was skipped.
	Output       string
	OutputTag    string
	OutputSchema *exec.Schema
	// Hits and Misses count store lookups; Skipped of Total jobs were
	// dropped from the chain (reused or transitively unneeded).
	Hits    int
	Misses  int
	Skipped int
	Total   int
	// ArtifactBytes totals the stored bytes served in place of skipped
	// jobs; PredictedSavedSeconds totals their cost-model runtime.
	ArtifactBytes         int64
	PredictedSavedSeconds float64

	records []reuseRecord
	epochs  map[string]int64
}

// ApplyReuse rewrites tr against the store, validating artifacts with the
// store's current validity epochs. See ApplyReuseAt.
func ApplyReuse(tr *Translation, store *reuse.Store, dfs *mapreduce.DFS) *ReusePlan {
	return ApplyReuseAt(tr, store, dfs, nil)
}

// ApplyReuseAt rewrites tr against the store using a caller-captured
// epoch snapshot (nil = snapshot now). The snapshot is taken before
// lookup and kept for Record, so a table overwrite racing the run can
// only make artifacts look stale — recorded entries never claim epochs
// newer than the data they were computed from. A job is dropped from the
// chain when its own artifact is valid in the store, or when every chain
// consumer of its output was dropped; surviving jobs are cloned with
// their intermediate inputs repointed at the installed restore/ paths
// (written into dfs here) and their DependsOn edges rebuilt among the
// clones.
func ApplyReuseAt(tr *Translation, store *reuse.Store, dfs *mapreduce.DFS, epochs map[string]int64) *ReusePlan {
	rp := &ReusePlan{Output: tr.Output, OutputTag: tr.OutputTag, OutputSchema: tr.OutputSchema, Total: len(tr.Jobs)}
	if store == nil || len(tr.Jobs) == 0 || len(tr.Artifacts) != len(tr.Jobs) {
		rp.Jobs = tr.Jobs
		return rp
	}
	if epochs == nil {
		seen := make(map[string]bool)
		var all []string
		for _, a := range tr.Artifacts {
			for _, t := range a.Tables {
				if !seen[t] {
					seen[t] = true
					all = append(all, t)
				}
			}
		}
		epochs = store.SnapshotEpochs(all)
	}
	rp.epochs = epochs

	n := len(tr.Jobs)
	keys := make([]string, n)
	hit := make([]*reuse.Entry, n)
	for i, a := range tr.Artifacts {
		keys[i] = ArtifactKey(a.Fingerprint, tr.Optimized)
		if e, ok := store.LookupAt(keys[i], epochs); ok {
			hit[i] = e
			rp.Hits++
		} else {
			rp.Misses++
		}
	}

	producer := make(map[string]int, n)
	for i, j := range tr.Jobs {
		producer[j.Output] = i
	}
	rootIdx, ok := producer[tr.Output]
	if !ok {
		rp.Jobs = tr.Jobs
		return rp
	}

	// Walk the demand closure down from the result-producing job: a miss
	// must run (needed), a hit feeding a needed job must be installed
	// (used), and everything upstream of a hit disappears entirely.
	needed := make([]bool, n)
	used := make([]bool, n)
	var need func(int)
	need = func(i int) {
		if needed[i] {
			return
		}
		needed[i] = true
		for _, in := range tr.Jobs[i].Inputs {
			pi, ok := producer[in.Path]
			if !ok {
				continue
			}
			if hit[pi] != nil {
				used[pi] = true
			} else {
				need(pi)
			}
		}
	}
	if hit[rootIdx] != nil {
		used[rootIdx] = true
	} else {
		need(rootIdx)
	}

	for i := 0; i < n; i++ {
		if used[i] {
			dfs.Write(ArtifactPath(tr.Artifacts[i].Fingerprint, tr.Optimized), hit[i].Lines)
		}
		if !needed[i] && hit[i] != nil {
			rp.ArtifactBytes += hit[i].Bytes
			rp.PredictedSavedSeconds += hit[i].PredictedSeconds
		}
	}

	// Clone surviving jobs. Shallow copies share mapper/reducer instances
	// with tr — safe because a leased Translation is executed by at most
	// one engine at a time and the clones run in its place, never
	// alongside it.
	cloneOf := make(map[*mapreduce.Job]*mapreduce.Job, n)
	for i, j := range tr.Jobs {
		if !needed[i] {
			continue
		}
		cp := *j
		cp.Inputs = append([]mapreduce.Input(nil), j.Inputs...)
		for k := range cp.Inputs {
			if pi, ok := producer[cp.Inputs[k].Path]; ok && hit[pi] != nil {
				cp.Inputs[k].Path = ArtifactPath(tr.Artifacts[pi].Fingerprint, tr.Optimized)
			}
		}
		cp.DependsOn = nil
		for _, d := range j.DependsOn {
			if dc, ok := cloneOf[d]; ok {
				cp.DependsOn = append(cp.DependsOn, dc)
			}
		}
		cloneOf[j] = &cp
		rp.Jobs = append(rp.Jobs, &cp)
		rp.records = append(rp.records, reuseRecord{
			jobName:     j.Name,
			key:         keys[i],
			fingerprint: tr.Artifacts[i].Fingerprint,
			tables:      tr.Artifacts[i].Tables,
			outPath:     j.Output,
		})
	}
	rp.Skipped = rp.Total - len(rp.Jobs)
	if hit[rootIdx] != nil {
		rp.Output = ArtifactPath(tr.Artifacts[rootIdx].Fingerprint, tr.Optimized)
	}
	return rp
}

// RootArtifactKey returns the store key of the job that produces the
// query result, so callers can evict exactly the final artifact (the
// partial-reuse scenario of the differential harness). ok is false when
// the translation carries no artifacts.
func RootArtifactKey(tr *Translation) (key string, ok bool) {
	if len(tr.Artifacts) != len(tr.Jobs) {
		return "", false
	}
	for i, j := range tr.Jobs {
		if j.Output == tr.Output {
			return ArtifactKey(tr.Artifacts[i].Fingerprint, tr.Optimized), true
		}
	}
	return "", false
}

// ReadResult decodes the query result rows from the DFS — the rewritten
// chain's analogue of Translation.ReadResult.
func (rp *ReusePlan) ReadResult(dfs *mapreduce.DFS) ([]exec.Row, error) {
	lines, err := dfs.Read(rp.Output)
	if err != nil {
		return nil, err
	}
	var rows []exec.Row
	for _, line := range lines {
		tag, payload := cmf.SplitTag(line)
		if tag != rp.OutputTag {
			continue
		}
		row, err := exec.DecodeRow(payload, rp.OutputSchema)
		if err != nil {
			return nil, fmt.Errorf("result row %q: %w", line, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Record materializes the outputs of the jobs that executed into the
// store, under the epoch snapshot captured at rewrite time and with each
// job's cost-model PredictedTime as the rebuild cost the store's eviction
// policy weighs against storage.
func (rp *ReusePlan) Record(store *reuse.Store, dfs *mapreduce.DFS, stats *mapreduce.ChainStats) {
	if store == nil {
		return
	}
	predicted := make(map[string]float64)
	if stats != nil {
		for _, js := range stats.Jobs {
			predicted[js.Name] = js.PredictedTime
		}
	}
	for _, rec := range rp.records {
		lines, err := dfs.Read(rec.outPath)
		if err != nil {
			continue
		}
		store.Record(rec.key, rec.fingerprint, rec.tables, rp.epochs, lines, predicted[rec.jobName])
	}
}

// Summary renders a one-line reuse report for CLI output.
func (rp *ReusePlan) Summary() string {
	return fmt.Sprintf("reuse: %d/%d job(s) skipped (store hits %d, misses %d), %s of artifacts read, predicted %.1fs saved",
		rp.Skipped, rp.Total, rp.Hits, rp.Misses, obs.FormatBytes(rp.ArtifactBytes), rp.PredictedSavedSeconds)
}
