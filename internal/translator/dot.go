package translator

import (
	"fmt"
	"strings"

	"ysmart/internal/cmf"
)

// DOT renders the translation's job graph in Graphviz dot syntax: one
// cluster per job containing its operator dataflow (streams, merged
// operators, post-job computations), with inter-job edges for intermediate
// files. Paste into any dot renderer to get the pictures the paper draws by
// hand in Fig. 5-7.
func (t *Translation) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph ysmart {\n")
	sb.WriteString("  rankdir=BT;\n")
	sb.WriteString("  node [shape=box, fontsize=10];\n")

	opNode := func(job int, name string) string {
		return fmt.Sprintf("j%d_%s", job, sanitizeDot(name))
	}

	// Map each job's output path to its final node(s) for inter-job edges.
	outputNode := make(map[string]string) // "path\x00tag" -> node id

	for ji, cj := range t.CommonJobs {
		if cj == nil { // map-only SP job
			fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=\"job %d (map-only SP)\";\n", ji, ji+1)
			fmt.Fprintf(&sb, "    j%d_sp [label=\"scan+filter+project\"];\n  }\n", ji)
			continue
		}
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n", ji)
		fmt.Fprintf(&sb, "    label=\"job %d: %s\";\n", ji+1, strings.Join(t.Groups[ji], " + "))

		// Stream sources (inputs).
		streamNode := make(map[int]string)
		for ii, in := range cj.Inputs {
			for _, st := range in.Streams {
				id := fmt.Sprintf("j%d_s%d", ji, st.ID)
				streamNode[st.ID] = id
				label := fmt.Sprintf("stream %d\\n%s", st.ID, in.Path)
				fmt.Fprintf(&sb, "    %s [shape=ellipse, label=\"%s\"];\n", id, label)
				// Inter-job edge when the input is another job's output.
				if src, ok := outputNode[in.Path]; ok {
					fmt.Fprintf(&sb, "  %s -> %s [style=dashed];\n", src, id)
				}
				_ = ii
			}
		}

		// Operators.
		for _, op := range cj.Ops {
			id := opNode(ji, op.Name())
			shape := "box"
			if _, isJoin := op.(*cmf.JoinOp); isJoin {
				shape = "diamond"
			}
			fmt.Fprintf(&sb, "    %s [shape=%s, label=\"%s\"];\n", id, shape, op.Name())
			for _, src := range op.Sources() {
				var from string
				if src.IsOp() {
					from = opNode(ji, src.Op)
				} else {
					from = streamNode[src.Stream]
				}
				fmt.Fprintf(&sb, "    %s -> %s;\n", from, id)
			}
		}
		sb.WriteString("  }\n")

		for _, out := range cj.Outputs {
			outputNode[cj.Output] = opNode(ji, out.Op)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func sanitizeDot(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
