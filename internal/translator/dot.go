package translator

import (
	"fmt"
	"strings"

	"ysmart/internal/cmf"
	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
)

// DOT renders the translation's job graph in Graphviz dot syntax: one
// cluster per job containing its operator dataflow (streams, merged
// operators, post-job computations), with inter-job edges for intermediate
// files. Paste into any dot renderer to get the pictures the paper draws by
// hand in Fig. 5-7.
func (t *Translation) DOT() string { return t.renderDOT(nil) }

// DOTAnalyzed renders the same job graph annotated with post-run counters
// from a chain execution (explain -analyze): per-job phase times, scan /
// shuffle / output volumes with bottleneck provenance, per-operator in/out
// row counts from the common reducer's dispatch accounting, and intermediate
// file sizes on inter-job edges. Jobs are matched to stats by name, so a
// partial or reordered stats set degrades to plain DOT labels.
func (t *Translation) DOTAnalyzed(stats *mapreduce.ChainStats) string {
	return t.renderDOT(stats)
}

func (t *Translation) renderDOT(stats *mapreduce.ChainStats) string {
	statsOf := make(map[string]*mapreduce.JobStats)
	if stats != nil {
		for _, js := range stats.Jobs {
			statsOf[js.Name] = js
		}
	}

	var sb strings.Builder
	sb.WriteString("digraph ysmart {\n")
	sb.WriteString("  rankdir=BT;\n")
	sb.WriteString("  node [shape=box, fontsize=10];\n")

	opNode := func(job int, name string) string {
		return fmt.Sprintf("j%d_%s", job, sanitizeDot(name))
	}

	// Map each job's output path to its final node(s) and producing job for
	// inter-job edges.
	outputNode := make(map[string]string) // path -> node id
	outputJob := make(map[string]string)  // path -> producing job name

	for ji, cj := range t.CommonJobs {
		jobName := t.Jobs[ji].Name
		js := statsOf[jobName]
		if cj == nil { // map-only SP job
			fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=\"job %d (map-only SP)%s\";\n", ji, ji+1, jobStatsLabel(js))
			fmt.Fprintf(&sb, "    j%d_sp [label=\"scan+filter+project\"];\n  }\n", ji)
			continue
		}
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n", ji)
		fmt.Fprintf(&sb, "    label=\"job %d: %s%s\";\n", ji+1, strings.Join(t.Groups[ji], " + "), jobStatsLabel(js))

		// Stream sources (inputs).
		streamNode := make(map[int]string)
		for _, in := range cj.Inputs {
			for _, st := range in.Streams {
				id := fmt.Sprintf("j%d_s%d", ji, st.ID)
				streamNode[st.ID] = id
				label := fmt.Sprintf("stream %d\\n%s", st.ID, in.Path)
				fmt.Fprintf(&sb, "    %s [shape=ellipse, label=\"%s\"];\n", id, label)
				// Inter-job edge when the input is another job's output.
				if src, ok := outputNode[in.Path]; ok {
					edgeLabel := ""
					if p := statsOf[outputJob[in.Path]]; p != nil {
						edgeLabel = fmt.Sprintf(" [label=\"%s\"]", obs.FormatBytes(p.ReduceOutputBytes))
					}
					fmt.Fprintf(&sb, "  %s -> %s [style=dashed]%s;\n", src, id, edgeLabel)
				}
			}
		}

		// Per-operator dispatch counts from the job's common reducer.
		var dispatchOf map[string]mapreduce.OpDispatch
		if js != nil && len(js.Dispatch) > 0 {
			dispatchOf = make(map[string]mapreduce.OpDispatch, len(js.Dispatch))
			for _, d := range js.Dispatch {
				dispatchOf[d.Op] = d
			}
		}

		// Operators.
		for _, op := range cj.Ops {
			id := opNode(ji, op.Name())
			shape := "box"
			if _, isJoin := op.(*cmf.JoinOp); isJoin {
				shape = "diamond"
			}
			label := op.Name()
			if d, ok := dispatchOf[op.Name()]; ok {
				label = fmt.Sprintf("%s\\nin %d rows, out %d rows", op.Name(), d.InRows, d.OutRows)
			}
			fmt.Fprintf(&sb, "    %s [shape=%s, label=\"%s\"];\n", id, shape, label)
			for _, src := range op.Sources() {
				var from string
				if src.IsOp() {
					from = opNode(ji, src.Op)
				} else {
					from = streamNode[src.Stream]
				}
				fmt.Fprintf(&sb, "    %s -> %s;\n", from, id)
			}
		}
		sb.WriteString("  }\n")

		for _, out := range cj.Outputs {
			outputNode[cj.Output] = opNode(ji, out.Op)
			outputJob[cj.Output] = jobName
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// jobStatsLabel renders the post-run annotation appended to a job cluster
// label, or "" without stats.
func jobStatsLabel(js *mapreduce.JobStats) string {
	if js == nil {
		return ""
	}
	label := ""
	if js.MapOnly {
		label = fmt.Sprintf("\\nmap %.0fs [%s]\\nin %s, out %s",
			js.MapTime, js.MapBottleneck,
			obs.FormatBytes(js.MapInputBytes), obs.FormatBytes(js.ReduceOutputBytes))
	} else {
		label = fmt.Sprintf("\\nmap %.0fs [%s] | shuffle %.0fs | reduce %.0fs [%s]\\nin %s, shuffle %s, out %s",
			js.MapTime, js.MapBottleneck, js.ShuffleTime, js.ReduceTime, js.ReduceBottleneck,
			obs.FormatBytes(js.MapInputBytes), obs.FormatBytes(js.ShuffleBytes),
			obs.FormatBytes(js.ReduceOutputBytes))
	}
	if js.HasRecovery() {
		label += fmt.Sprintf("\\nrecovery: %d retries, %d recomputed, %d speculative (%d won)",
			js.Retries(), js.RecomputedMapTasks, js.SpeculativeTasks, js.SpeculativeWins)
	}
	return label
}

func sanitizeDot(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
