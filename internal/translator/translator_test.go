package translator

import (
	"math"
	"strings"
	"testing"

	"ysmart/internal/datagen"
	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
)

// workload loads the standard data set into a fresh DFS and database.
func workload(t *testing.T) (*mapreduce.DFS, *dbms.Database) {
	t.Helper()
	dfs := mapreduce.NewDFS()
	db := dbms.NewDatabase()
	cat := queries.Catalog()
	tpch, err := datagen.TPCH(datagen.DefaultTPCH())
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := datagen.Clickstream(datagen.DefaultClicks())
	if err != nil {
		t.Fatal(err)
	}
	for _, tables := range []datagen.Tables{tpch, clicks} {
		for name, rows := range tables {
			schema, ok := cat.Table(name)
			if !ok {
				t.Fatalf("no schema for %s", name)
			}
			dfs.Write(TablePath(name), datagen.Lines(rows))
			db.Load(name, schema, rows)
		}
	}
	return dfs, db
}

func translate(t *testing.T, sql string, mode Mode, opts Options) *Translation {
	t.Helper()
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	tr, err := Translate(root, mode, opts)
	if err != nil {
		t.Fatalf("translate (%v): %v", mode, err)
	}
	return tr
}

// runMR executes a translation on a small cluster and returns the result.
func runMR(t *testing.T, tr *Translation, dfs *mapreduce.DFS) ([]exec.Row, *mapreduce.ChainStats) {
	t.Helper()
	eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.RunChain(tr.Jobs)
	if err != nil {
		t.Fatalf("run (%v): %v", tr.Mode, err)
	}
	rows, err := tr.ReadResult(dfs)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	return rows, stats
}

// assertSameRows compares two result sets up to row order, with relative
// tolerance on float columns (combiner merge order legitimately perturbs
// float sums in the last bits).
func assertSameRows(t *testing.T, schema *exec.Schema, got, want []exec.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d\n got: %v\nwant: %v",
			len(got), len(want), dbms.SortedLines(got), dbms.SortedLines(want))
	}
	gl, wl := dbms.SortedLines(got), dbms.SortedLines(want)
	for i := range gl {
		if gl[i] == wl[i] {
			continue
		}
		gr, err := exec.DecodeRow(gl[i], schema)
		if err != nil {
			t.Fatalf("decode got row %q: %v", gl[i], err)
		}
		wr, err := exec.DecodeRow(wl[i], schema)
		if err != nil {
			t.Fatalf("decode want row %q: %v", wl[i], err)
		}
		for c := range gr {
			if valuesClose(gr[c], wr[c]) {
				continue
			}
			t.Fatalf("row %d col %d: got %v, want %v\n got: %q\nwant: %q",
				i, c, gr[c], wr[c], gl[i], wl[i])
		}
	}
}

func valuesClose(a, b exec.Value) bool {
	if a == b {
		return true
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return exec.Compare(a, b) == 0
	}
	diff := math.Abs(af - bf)
	scale := math.Max(math.Abs(af), math.Abs(bf))
	return diff <= 1e-9*scale || diff <= 1e-12
}

var allModes = []Mode{OneToOne, PigLike, ICTCOnly, YSmart}

// TestAllQueriesAllModesMatchOracle is the central integration test: every
// workload query, under every translation mode, must produce exactly the
// rows the pipelined DBMS executor produces.
func TestAllQueriesAllModesMatchOracle(t *testing.T) {
	dfs, db := workload(t)
	for name, sql := range queries.Named() {
		root, err := queries.Plan(sql)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		oracle, err := dbms.Execute(root, db)
		if err != nil {
			t.Fatalf("%s oracle: %v", name, err)
		}
		for _, mode := range allModes {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				tr := translate(t, sql, mode, Options{QueryName: name + "-" + mode.String()})
				rows, _ := runMR(t, tr, dfs)
				assertSameRows(t, tr.OutputSchema, rows, oracle.Rows)
			})
		}
	}
}

// TestJobCounts pins the number of generated jobs per query and mode to the
// paper's analysis (§VII.A.2, §VII.C, §VII.D).
func TestJobCounts(t *testing.T) {
	tests := []struct {
		query string
		sql   string
		mode  Mode
		want  int
	}{
		// Hive generates four jobs for Q17 (§VII.D); YSmart executes the
		// JOIN2 subtree in one job plus the final aggregation (§IV.B).
		{"Q17", queries.Q17, OneToOne, 4},
		{"Q17", queries.Q17, PigLike, 4},
		{"Q17", queries.Q17, ICTCOnly, 3},
		{"Q17", queries.Q17, YSmart, 2},
		// Q18: six operations; YSmart runs JOIN1+AGG1+JOIN2 in one job
		// (§VII.A.2), JOIN3+AGG2 in a second, and the sort in a third.
		{"Q18", queries.Q18, OneToOne, 6},
		{"Q18", queries.Q18, YSmart, 3},
		// Q21 subtree: five operations one-to-one (Fig. 9 case 1), three
		// jobs with IC+TC only (case 2), one job with all rules (case 3).
		{"Q21", queries.Q21, OneToOne, 5},
		{"Q21", queries.Q21, ICTCOnly, 3},
		{"Q21", queries.Q21, YSmart, 1},
		// Full Q21 (Fig. 8(b)): nine operations; YSmart runs the five-op
		// sub-tree as one job, then supplier/nation joins, the numwait
		// aggregation and the sort.
		{"Q21-full", queries.Q21Full, OneToOne, 9},
		{"Q21-full", queries.Q21Full, ICTCOnly, 7},
		{"Q21-full", queries.Q21Full, YSmart, 5},
		// Q-CSA: Hive executes six jobs, YSmart two (§VII.D).
		{"Q-CSA", queries.QCSA, OneToOne, 6},
		{"Q-CSA", queries.QCSA, YSmart, 2},
		// Q-AGG is one aggregation job everywhere.
		{"Q-AGG", queries.QAGG, OneToOne, 1},
		{"Q-AGG", queries.QAGG, YSmart, 1},
	}
	for _, tt := range tests {
		t.Run(tt.query+"/"+tt.mode.String(), func(t *testing.T) {
			tr := translate(t, tt.sql, tt.mode, Options{QueryName: "jc"})
			if got := tr.NumJobs(); got != tt.want {
				t.Errorf("jobs = %d, want %d\n%s", got, tt.want, tr.Describe())
			}
		})
	}
}

// TestQ21YSmartMergesAllFiveOps checks the composition of the single Q21
// job (paper Fig. 9 case 3).
func TestQ21YSmartMergesAllFiveOps(t *testing.T) {
	tr := translate(t, queries.Q21, YSmart, Options{QueryName: "q21"})
	if len(tr.Groups) != 1 {
		t.Fatalf("groups = %v", tr.Groups)
	}
	got := strings.Join(tr.Groups[0], "+")
	if got != "JOIN1+AGG1+JOIN2+AGG2+JOIN3" {
		t.Errorf("merged ops = %s", got)
	}
}

// TestSharedScanReducesInputBytes: YSmart's merged Q21 job must scan
// lineitem once where one-to-one scans it three times (§VII.C observation
// that three lineitem scans take 65% of the one-to-one time).
func TestSharedScanReducesInputBytes(t *testing.T) {
	dfs, _ := workload(t)
	lineitemBytes := dfs.SizeBytes(TablePath("lineitem"))

	oto := translate(t, queries.Q21, OneToOne, Options{QueryName: "q21-oto"})
	_, otoStats := runMR(t, oto, dfs)
	ys := translate(t, queries.Q21, YSmart, Options{QueryName: "q21-ys"})
	_, ysStats := runMR(t, ys, dfs)

	if got := otoStats.TotalMapInputBytes(); got < 3*lineitemBytes {
		t.Errorf("one-to-one map input %d, want >= 3 lineitem scans (%d)", got, 3*lineitemBytes)
	}
	// YSmart reads lineitem and orders once each, plus nothing else.
	ordersBytes := dfs.SizeBytes(TablePath("orders"))
	if got := ysStats.TotalMapInputBytes(); got != lineitemBytes+ordersBytes {
		t.Errorf("ysmart map input %d, want exactly %d (one scan of each table)",
			got, lineitemBytes+ordersBytes)
	}
	if ysStats.TotalTime() >= otoStats.TotalTime() {
		t.Errorf("ysmart %.0fs not faster than one-to-one %.0fs",
			ysStats.TotalTime(), otoStats.TotalTime())
	}
}

// TestSelfJoinSingleScanAblation: with shared scans disabled, the Q-CSA
// self-join reads clicks once per instance.
func TestSelfJoinSingleScanAblation(t *testing.T) {
	dfs, _ := workload(t)
	clicksBytes := dfs.SizeBytes(TablePath("clicks"))

	shared := translate(t, queries.QCSA, YSmart, Options{QueryName: "csa-shared"})
	_, sharedStats := runMR(t, shared, dfs)
	noShare := translate(t, queries.QCSA, YSmart, Options{QueryName: "csa-noshare", DisableSharedScan: true})
	_, noShareStats := runMR(t, noShare, dfs)

	if sharedStats.Jobs[0].MapInputBytes != clicksBytes {
		t.Errorf("shared scan job read %d bytes, want one clicks scan (%d)",
			sharedStats.Jobs[0].MapInputBytes, clicksBytes)
	}
	if noShareStats.Jobs[0].MapInputBytes != 3*clicksBytes {
		t.Errorf("unshared job read %d bytes, want three clicks scans (%d)",
			noShareStats.Jobs[0].MapInputBytes, 3*clicksBytes)
	}
}

// TestPigLikeShufflesMore: without projection pruning, Pig-like map output
// is strictly larger than Hive-like for the same query.
func TestPigLikeShufflesMore(t *testing.T) {
	dfs, _ := workload(t)
	hive := translate(t, queries.QCSA, OneToOne, Options{QueryName: "csa-hive"})
	_, hiveStats := runMR(t, hive, dfs)
	pig := translate(t, queries.QCSA, PigLike, Options{QueryName: "csa-pig"})
	_, pigStats := runMR(t, pig, dfs)
	if pigStats.TotalShuffleBytes() <= hiveStats.TotalShuffleBytes() {
		t.Errorf("pig shuffle %d, want > hive shuffle %d",
			pigStats.TotalShuffleBytes(), hiveStats.TotalShuffleBytes())
	}
	if pigStats.TotalTime() <= hiveStats.TotalTime() {
		t.Errorf("pig %.0fs, want slower than hive %.0fs",
			pigStats.TotalTime(), hiveStats.TotalTime())
	}
}

// TestCombinerOnQAGG: the Hive-style AGG job must shrink its shuffle with
// map-side hash aggregation (footnote 2: why Q-AGG is competitive).
func TestCombinerOnQAGG(t *testing.T) {
	dfs, _ := workload(t)
	with := translate(t, queries.QAGG, OneToOne, Options{QueryName: "qagg-comb"})
	_, withStats := runMR(t, with, dfs)
	without := translate(t, queries.QAGG, OneToOne, Options{QueryName: "qagg-nocomb", DisableCombiner: true})
	_, withoutStats := runMR(t, without, dfs)
	if withStats.TotalShuffleBytes() >= withoutStats.TotalShuffleBytes() {
		t.Errorf("combiner shuffle %d, want < %d",
			withStats.TotalShuffleBytes(), withoutStats.TotalShuffleBytes())
	}
}

// TestSPQuery: an operation-free query becomes a single map-only job.
func TestSPQuery(t *testing.T) {
	dfs, db := workload(t)
	sql := "SELECT uid, ts FROM clicks WHERE cid = 1"
	tr := translate(t, sql, YSmart, Options{QueryName: "sp"})
	if tr.NumJobs() != 1 {
		t.Fatalf("jobs = %d, want 1", tr.NumJobs())
	}
	rows, stats := runMR(t, tr, dfs)
	if !stats.Jobs[0].MapOnly {
		t.Error("SP job should be map-only")
	}
	root, _ := queries.Plan(sql)
	oracle, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, tr.OutputSchema, rows, oracle.Rows)
}

// TestExplainOutput sanity-checks Describe.
func TestExplainOutput(t *testing.T) {
	tr := translate(t, queries.Q17, YSmart, Options{QueryName: "q17"})
	d := tr.Describe()
	for _, want := range []string{"ysmart", "2 job", "AGG1", "JOIN2"} {
		if !strings.Contains(d, want) {
			t.Errorf("describe missing %q:\n%s", want, d)
		}
	}
}

// TestModeValidation rejects unknown modes.
func TestModeValidation(t *testing.T) {
	root, err := queries.Plan(queries.QAGG)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(root, Mode(99), Options{}); err == nil {
		t.Error("unknown mode should error")
	}
}
