// Package translator generates MapReduce job plans from logical query
// plans. It implements both translation modes the paper compares:
//
//   - one-operation-to-one-job (the Hive/Pig baseline of §I and §III), and
//   - YSmart's correlation-aware merging (§V): Rule 1 merges jobs with
//     input+transit correlation into a common job sharing one table scan;
//     Rules 2–4 merge operations with job-flow correlation into the reduce
//     phase of their child's job as post-job computations.
//
// Merged jobs execute on the Common MapReduce Framework (internal/cmf);
// the engine (internal/mapreduce) runs the generated chains.
package translator

import (
	"fmt"

	"ysmart/internal/cmf"
	"ysmart/internal/exec"
	"ysmart/internal/plan"
)

// effView describes the shape of rows flowing through the lowered dataflow:
// a (possibly column-pruned) view of a plan node's schema. cols maps each
// view column to its index in the full plan schema.
type effView struct {
	schema *exec.Schema
	cols   []int
}

// fullView returns the identity view of a schema.
func fullView(s *exec.Schema) effView {
	cols := make([]int, s.Len())
	for i := range cols {
		cols[i] = i
	}
	return effView{schema: s, cols: cols}
}

// restrictView returns the view of schema s keeping only cols (ascending
// full-schema indices).
func restrictView(s *exec.Schema, cols []int) effView {
	out := &exec.Schema{Cols: make([]exec.Column, len(cols))}
	for i, c := range cols {
		out.Cols[i] = s.Cols[c]
	}
	cp := make([]int, len(cols))
	copy(cp, cols)
	return effView{schema: out, cols: cp}
}

// index translates a full-schema column index into the view, or fails if
// the column was pruned away.
func (v effView) index(full int) (int, error) {
	for i, c := range v.cols {
		if c == full {
			return i, nil
		}
	}
	return 0, fmt.Errorf("column %d pruned from view %s", full, v.schema)
}

// concat joins two views the way a join concatenates rows.
func (v effView) concat(o effView, leftFullWidth int) effView {
	s := v.schema.Concat(o.schema)
	cols := make([]int, 0, len(v.cols)+len(o.cols))
	cols = append(cols, v.cols...)
	for _, c := range o.cols {
		cols = append(cols, c+leftFullWidth)
	}
	return effView{schema: s, cols: cols}
}

// rebind re-qualifies the view's columns.
func (v effView) rebind(binding string) effView {
	return effView{schema: v.schema.Rebind(binding), cols: v.cols}
}

// stage is one step of a lowered transparent chain.
type stage struct {
	pred  cmf.RowPred // filter stage when non-nil
	exprs []cmf.RowFn // projection stage when non-nil
	out   effView
}

func (s stage) isFilter() bool { return s.pred != nil }

// apply runs the stage over one row; a filter stage returns (nil, nil) for
// rejected rows.
func (s stage) apply(r exec.Row) (exec.Row, error) {
	if s.pred != nil {
		ok, err := s.pred(r)
		if err != nil || !ok {
			return nil, err
		}
		return r, nil
	}
	out := make(exec.Row, len(s.exprs))
	for i, fn := range s.exprs {
		v, err := fn(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// lowerChain lowers a transparent chain (Filter/Project/Rebind nodes
// between an operation and its input, ordered top-down) into stages over
// the input view. required supplies per-node column demands so projections
// compute only what ancestors consume.
func lowerChain(in effView, chain []plan.Node, required func(plan.Node) []int) ([]stage, effView, error) {
	var stages []stage
	cur := in
	// The chain is stored top-down; rows flow bottom-up.
	for i := len(chain) - 1; i >= 0; i-- {
		switch n := chain[i].(type) {
		case *plan.Filter:
			ev, err := exec.Compile(n.Cond, cur.schema)
			if err != nil {
				return nil, effView{}, fmt.Errorf("chain filter %s: %w", n.Cond.SQL(), err)
			}
			stages = append(stages, stage{
				pred: func(r exec.Row) (bool, error) { return exec.EvalPredicate(ev, r) },
				out:  cur,
			})
		case *plan.Project:
			req := required(n)
			if req == nil {
				return nil, effView{}, fmt.Errorf("chain project %s has no required-columns entry", n.Describe())
			}
			exprs := make([]cmf.RowFn, len(req))
			for ei, colIdx := range req {
				ev, err := exec.Compile(n.Exprs[colIdx], cur.schema)
				if err != nil {
					return nil, effView{}, fmt.Errorf("chain project %s: %w", n.Exprs[colIdx].SQL(), err)
				}
				exprs[ei] = cmf.RowFn(ev)
			}
			out := restrictView(n.Schema(), req)
			stages = append(stages, stage{exprs: exprs, out: out})
			cur = out
		case *plan.Rebind:
			// Adopt the rebind node's own schema (restricted to the live
			// columns): it carries the bindings and visibility flags the
			// planner set, which a plain re-qualification would lose.
			cur = effView{schema: restrictView(n.Schema(), cur.cols).schema, cols: cur.cols}
			if len(stages) > 0 {
				stages[len(stages)-1].out = cur
			}
		case *plan.Limit:
			return nil, effView{}, fmt.Errorf("LIMIT is only supported directly above the final ORDER BY")
		default:
			return nil, effView{}, fmt.Errorf("unsupported chain node %T", n)
		}
	}
	return stages, cur, nil
}

// applyStages runs stages over a row at map time; (nil, nil) means the row
// was filtered out.
func applyStages(stages []stage, r exec.Row) (exec.Row, error) {
	cur := r
	for _, s := range stages {
		out, err := s.apply(cur)
		if err != nil || out == nil {
			return nil, err
		}
		cur = out
	}
	return cur, nil
}

// stagesToOps turns stages into reduce-side cmf operators chained after
// src, returning the final source.
func stagesToOps(stages []stage, src cmf.Source, namePrefix string, add func(cmf.Op)) cmf.Source {
	for i, s := range stages {
		name := fmt.Sprintf("%s.c%d", namePrefix, i)
		if s.isFilter() {
			add(&cmf.FilterOp{OpName: name, In: src, Pred: s.pred})
		} else {
			add(&cmf.ProjectOp{OpName: name, In: src, Exprs: s.exprs})
		}
		src = cmf.OpSource(name)
	}
	return src
}

// projectionFns builds index-getter row functions for a projection.
func projectionFns(indices []int) []cmf.RowFn {
	fns := make([]cmf.RowFn, len(indices))
	for i, idx := range indices {
		idx := idx
		fns[i] = func(r exec.Row) (exec.Value, error) {
			if idx >= len(r) {
				return exec.Value{}, fmt.Errorf("projection index %d out of range (row width %d)", idx, len(r))
			}
			return r[idx], nil
		}
	}
	return fns
}
