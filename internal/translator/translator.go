package translator

import (
	"fmt"
	"sort"
	"strings"

	"ysmart/internal/cmf"
	"ysmart/internal/correlation"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/plan"
)

// Mode selects the translation strategy.
type Mode int

// Translation modes.
const (
	// OneToOne is the Hive baseline: one MapReduce job per operation
	// (post-order traversal), map-side hash aggregation enabled, map output
	// projected to the needed columns.
	OneToOne Mode = iota + 1
	// PigLike is the Pig baseline: one job per operation, no map-side
	// partial aggregation, and unprojected map output values — the larger
	// intermediates the paper observed (§VII.D).
	PigLike
	// ICTCOnly applies only merging Rule 1 (input + transit correlation):
	// the middle configuration of Fig. 9.
	ICTCOnly
	// YSmart applies all four merging rules (§V.B).
	YSmart
)

func (m Mode) String() string {
	switch m {
	case OneToOne:
		return "one-to-one"
	case PigLike:
		return "pig-like"
	case ICTCOnly:
		return "ic-tc-only"
	case YSmart:
		return "ysmart"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options tunes a translation.
type Options struct {
	// QueryName labels jobs and DFS paths; defaults to "query".
	QueryName string
	// DisableSharedScan turns off the shared-table-scan optimization even
	// in YSmart modes (the self-join single-scan ablation).
	DisableSharedScan bool
	// DisableCombiner turns off map-side partial aggregation in modes that
	// normally use it.
	DisableCombiner bool
	// Tracer receives rule-application events (which merging rule fired on
	// which operations, and which merges were blocked) stamped at time 0,
	// before execution starts. Nil means no tracing.
	Tracer obs.Tracer
	// Metrics, when non-nil, counts rule firings
	// (ysmart_translator_rule_firings_total{rule=...}).
	Metrics *obs.Registry
	// Logger, when non-nil, receives one structured JSON event per
	// plan-merge decision (rules fired and merges blocked), so translation
	// choices are greppable alongside the engine's job lifecycle stream.
	Logger *obs.Logger
}

// Translation is a query compiled to an executable MapReduce job chain.
type Translation struct {
	Mode     Mode
	Analysis *correlation.Analysis
	// Jobs are the executable jobs in dependency order.
	Jobs []*mapreduce.Job
	// CommonJobs holds the CMF description of each job (nil entry for the
	// map-only SP job of an operation-free query).
	CommonJobs []*cmf.CommonJob
	// Groups lists the operation names merged into each job.
	Groups [][]string
	// Output is the DFS path of the final result; OutputTag is its source
	// tag within that file ("" when the file is single-output).
	Output    string
	OutputTag string
	// OutputSchema types the final result rows.
	OutputSchema *exec.Schema
	// ScanFacts records, per base-table input, the map-side selection the
	// MANIMAL rewrite stage may discharge as an early prefilter — or why
	// it refused (see ScanFact).
	ScanFacts []ScanFact
	// Artifacts describes each job's output for the cross-query reuse
	// store, parallel to Jobs: a canonical fingerprint of the sub-plan the
	// job computes plus the base-table DFS paths the output depends on.
	Artifacts []JobArtifact
	// Optimized marks a translation carrying the MANIMAL scan rewrites.
	// Reuse keys fold it in (ArtifactKey) so optimized and plain
	// artifacts never mix, mirroring the plan cache's CacheKeyOpt.
	Optimized bool
}

// NumJobs returns the number of generated jobs.
func (t *Translation) NumJobs() int { return len(t.Jobs) }

// Describe renders the job plan for explain output.
func (t *Translation) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mode %s: %d job(s)\n", t.Mode, len(t.Jobs))
	for i, g := range t.Groups {
		fmt.Fprintf(&sb, "  job %d: %s -> %s\n", i+1, strings.Join(g, " + "), t.Jobs[i].Output)
	}
	return sb.String()
}

// ReadResult decodes the query result rows from the DFS.
func (t *Translation) ReadResult(dfs *mapreduce.DFS) ([]exec.Row, error) {
	lines, err := dfs.Read(t.Output)
	if err != nil {
		return nil, err
	}
	var rows []exec.Row
	for _, line := range lines {
		tag, payload := cmf.SplitTag(line)
		if tag != t.OutputTag {
			continue
		}
		row, err := exec.DecodeRow(payload, t.OutputSchema)
		if err != nil {
			return nil, fmt.Errorf("result row %q: %w", line, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Translate compiles a logical plan into MapReduce jobs under the given
// mode.
func Translate(root plan.Node, mode Mode, opts Options) (*Translation, error) {
	a, err := correlation.Analyze(root)
	if err != nil {
		return nil, err
	}
	return TranslateAnalyzed(a, mode, opts)
}

// TranslateAnalyzed compiles an already analyzed plan. It exists so
// ablation studies can adjust the analysis (e.g. override a partition-key
// choice) before job generation.
func TranslateAnalyzed(a *correlation.Analysis, mode Mode, opts Options) (*Translation, error) {
	switch mode {
	case OneToOne, PigLike, ICTCOnly, YSmart:
	default:
		return nil, fmt.Errorf("unknown translation mode %v", mode)
	}
	if opts.QueryName == "" {
		opts.QueryName = "query"
	}

	lw := &lowerer{
		analysis: a,
		mode:     mode,
		opts:     opts,
		prune:    mode != PigLike,
		combine:  mode != PigLike && !opts.DisableCombiner,
		share:    (mode == ICTCOnly || mode == YSmart) && !opts.DisableSharedScan,
		effOf:    make(map[*correlation.Operation]effView),
		written:  make(map[*correlation.Operation]outputRef),
	}

	if a.RootOp == nil {
		return lw.lowerSPQuery()
	}

	jobs := buildJobs(a, mode, opts.Tracer, opts.Metrics, opts.Logger)
	return lw.lowerJobs(jobs)
}

// ---------------------------------------------------------------------------
// Job grouping (merging rules)
// ---------------------------------------------------------------------------

// jobBuild is one planned job: a set of operations sharing a partition key.
type jobBuild struct {
	ops []*correlation.Operation
	pk  plan.PartKey
}

func (j *jobBuild) minID() int {
	m := j.ops[0].ID
	for _, op := range j.ops[1:] {
		if op.ID < m {
			m = op.ID
		}
	}
	return m
}

func (j *jobBuild) sortOps() {
	sort.Slice(j.ops, func(a, b int) bool { return j.ops[a].ID < j.ops[b].ID })
}

// grouping tracks the op->job assignment during merging.
type grouping struct {
	a     *correlation.Analysis
	jobs  []*jobBuild
	jobOf map[*correlation.Operation]*jobBuild

	tracer  obs.Tracer
	metrics *obs.Registry
	logger  *obs.Logger
}

// fireRule records one merging-rule application (or block) on the tracer,
// registry and event log. Rule events carry correlation provenance: which
// rule fired, the operations it merged, and the shared partition key.
func (g *grouping) fireRule(rule string, args ...obs.Field) {
	if g.tracer.Enabled() {
		g.tracer.Emit(obs.InstantEvent("translator", rule, "translator", 0, args...))
	}
	if g.metrics != nil {
		g.metrics.Add("ysmart_translator_rule_firings_total", 1, "rule", rule)
	}
	if g.logger.Enabled(obs.LevelInfo) {
		g.logger.Info("plan.merge", append([]obs.Field{obs.F("decision", rule)}, args...)...)
	}
}

// opNames renders a job's operation list for rule-event args.
func opNames(jb *jobBuild) string {
	names := make([]string, len(jb.ops))
	for i, op := range jb.ops {
		names[i] = op.Name()
	}
	return strings.Join(names, "+")
}

// buildJobs produces the job grouping for a mode: per-op jobs, then Rule 1
// (step one) for ICTCOnly and YSmart, then Rules 2-4 (step two) for YSmart.
func buildJobs(a *correlation.Analysis, mode Mode, tracer obs.Tracer, metrics *obs.Registry, logger *obs.Logger) *grouping {
	if tracer == nil {
		tracer = obs.Nop
	}
	g := &grouping{a: a, jobOf: make(map[*correlation.Operation]*jobBuild), tracer: tracer, metrics: metrics, logger: logger}
	for _, op := range a.Ops {
		jb := &jobBuild{ops: []*correlation.Operation{op}, pk: a.PK(op)}
		g.jobs = append(g.jobs, jb)
		g.jobOf[op] = jb
	}
	if mode == ICTCOnly || mode == YSmart {
		g.stepOne()
	}
	if mode == YSmart {
		g.stepTwo()
	}
	sort.Slice(g.jobs, func(i, j int) bool { return g.jobs[i].minID() < g.jobs[j].minID() })
	return g
}

// stepOne repeatedly merges job pairs with input correlation and transit
// correlation (Rule 1) until a fixpoint.
func (g *grouping) stepOne() {
	for changed := true; changed; {
		changed = false
	scan:
		for i := 0; i < len(g.jobs); i++ {
			for j := i + 1; j < len(g.jobs); j++ {
				if g.mergeableICTC(g.jobs[i], g.jobs[j]) {
					g.fireRule("rule1[IC+TC]",
						obs.F("into", opNames(g.jobs[i])),
						obs.F("merged", opNames(g.jobs[j])),
						obs.F("partition_key", g.jobs[i].pk.String()))
					g.merge(g.jobs[i], g.jobs[j])
					changed = true
					break scan
				}
			}
		}
	}
}

// mergeableICTC reports whether Rule 1 applies: equal partition keys, a
// shared input table, and no dependency between the jobs' operations.
func (g *grouping) mergeableICTC(x, y *jobBuild) bool {
	if x.pk == nil || y.pk == nil || !x.pk.Equal(y.pk) {
		return false
	}
	if !g.shareTable(x, y) {
		return false
	}
	return !g.depends(x, y) && !g.depends(y, x)
}

func (g *grouping) shareTable(x, y *jobBuild) bool {
	tx := make(map[string]bool)
	for _, op := range x.ops {
		for t := range g.a.InputTables(op) {
			tx[t] = true
		}
	}
	for _, op := range y.ops {
		for t := range g.a.InputTables(op) {
			if tx[t] {
				return true
			}
		}
	}
	return false
}

// depends reports whether any operation of x is a plan ancestor of any
// operation of y (x consumes y's results, directly or transitively).
func (g *grouping) depends(x, y *jobBuild) bool {
	for _, ox := range x.ops {
		for _, oy := range y.ops {
			for p := oy.Parent; p != nil; p = p.Parent {
				if p == ox {
					return true
				}
			}
		}
	}
	return false
}

// merge folds src into dst and drops src.
func (g *grouping) merge(dst, src *jobBuild) {
	dst.ops = append(dst.ops, src.ops...)
	dst.sortOps()
	for _, op := range src.ops {
		g.jobOf[op] = dst
	}
	for i, jb := range g.jobs {
		if jb == src {
			g.jobs = append(g.jobs[:i], g.jobs[i+1:]...)
			break
		}
	}
}

// stepTwo applies Rules 2-4: operations with job-flow correlation to a
// child move into the child's job as post-job computations. Operations are
// visited children-first, so merges cascade up the tree (the Fig. 7 walk).
func (g *grouping) stepTwo() {
	for _, op := range g.a.Ops {
		var target *jobBuild
		var rule string
		switch op.Kind {
		case correlation.KindAgg:
			// Rule 2: an aggregation merges into its only preceding job.
			if c := op.Inputs[0].Op; c != nil && g.a.JobFlowCorrelated(op, c) {
				target = g.jobOf[c]
				rule = "rule2[JFC]"
			}
		case correlation.KindJoin:
			c0, c1 := op.Inputs[0].Op, op.Inputs[1].Op
			jfc0 := c0 != nil && g.a.JobFlowCorrelated(op, c0)
			jfc1 := c1 != nil && g.a.JobFlowCorrelated(op, c1)
			switch {
			case jfc0 && jfc1 && g.jobOf[c0] == g.jobOf[c1]:
				// Rule 3: both children already share a common job.
				target = g.jobOf[c0]
				rule = "rule3[JFC]"
			case jfc0 && jfc1:
				// Both correlated but in different jobs: merge into the
				// later one; the other feeds the merged job its output
				// (Rule 4 generalized).
				target = g.jobOf[c1]
				if g.jobOf[c0].minID() > target.minID() {
					target = g.jobOf[c0]
				}
				rule = "rule4[JFC]"
			case jfc0:
				target = g.jobOf[c0] // Rule 4
				rule = "rule4[JFC]"
			case jfc1:
				target = g.jobOf[c1] // Rule 4
				rule = "rule4[JFC]"
			}
		}
		if target == nil || target == g.jobOf[op] {
			continue
		}
		if g.chainBlocksMerge(op) {
			g.fireRule("merge-blocked",
				obs.F("rule", rule), obs.F("op", op.Name()),
				obs.F("reason", "chain contains LIMIT"))
			continue
		}
		src := g.jobOf[op]
		if !g.mergeSafe(src, target) {
			g.fireRule("merge-blocked",
				obs.F("rule", rule), obs.F("op", op.Name()),
				obs.F("reason", "merge would create a job-graph cycle"))
			continue
		}
		g.fireRule(rule,
			obs.F("op", op.Name()),
			obs.F("into", opNames(target)))
		g.merge(target, src)
	}
}

// chainBlocksMerge rejects merges when the chain between op and a same-job
// child contains nodes the reduce-side dataflow cannot express (LIMIT).
func (g *grouping) chainBlocksMerge(op *correlation.Operation) bool {
	for _, in := range op.Inputs {
		for _, n := range in.Chain {
			if _, isLimit := n.(*plan.Limit); isLimit {
				return true
			}
		}
	}
	return false
}

// mergeSafe reports whether merging src into dst keeps the job graph
// acyclic: no third job may sit on a dependency path between them.
func (g *grouping) mergeSafe(src, dst *jobBuild) bool {
	for _, z := range g.jobs {
		if z == src || z == dst {
			continue
		}
		if g.depends(src, z) && g.depends(z, dst) {
			return false
		}
		if g.depends(dst, z) && g.depends(z, src) {
			return false
		}
	}
	return true
}
