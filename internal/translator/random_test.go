package translator

import (
	"fmt"
	"math/rand"
	"testing"

	"ysmart/internal/datagen"
	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
)

// TestRandomQueriesAllModesMatchOracle is a differential property test: a
// seeded generator produces structurally varied queries over the clicks
// table — selections, grouped aggregations (including COUNT DISTINCT and
// HAVING), self-joins with residual predicates, derived-table joins, and
// aggregations stacked on joins — and every translation mode must produce
// exactly the oracle's rows for each of them.
func TestRandomQueriesAllModesMatchOracle(t *testing.T) {
	clicksCfg := datagen.ClickConfig{Users: 40, ClicksPerUser: 12, Categories: 4, Seed: 5}
	clicks, err := datagen.Clickstream(clicksCfg)
	if err != nil {
		t.Fatal(err)
	}
	dfs := mapreduce.NewDFS()
	db := dbms.NewDatabase()
	cat := queries.Catalog()
	schema, _ := cat.Table("clicks")
	dfs.Write(TablePath("clicks"), datagen.Lines(clicks["clicks"]))
	db.Load("clicks", schema, clicks["clicks"])

	rng := rand.New(rand.NewSource(99))
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		sql, ordered := randomQuery(rng)
		t.Run(fmt.Sprintf("q%02d", trial), func(t *testing.T) {
			root, err := queries.Plan(sql)
			if err != nil {
				t.Fatalf("plan %q: %v", sql, err)
			}
			oracle, err := dbms.Execute(root, db)
			if err != nil {
				t.Fatalf("oracle %q: %v", sql, err)
			}
			for _, mode := range allModes {
				tr, err := Translate(root, mode, Options{
					QueryName: fmt.Sprintf("rand%02d-%s", trial, mode),
				})
				if err != nil {
					t.Fatalf("translate %q (%v): %v", sql, mode, err)
				}
				eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
				if err != nil {
					t.Fatal(err)
				}
				if _, err := eng.RunChain(tr.Jobs); err != nil {
					t.Fatalf("run %q (%v): %v", sql, mode, err)
				}
				rows, err := tr.ReadResult(dfs)
				if err != nil {
					t.Fatalf("read %q (%v): %v", sql, mode, err)
				}
				if len(rows) != len(oracle.Rows) {
					t.Fatalf("%v: %d rows, oracle %d\nquery: %s",
						mode, len(rows), len(oracle.Rows), sql)
				}
				assertSameRows(t, tr.OutputSchema, rows, oracle.Rows)
				if ordered {
					// Distributed sorts must reproduce the exact sequence.
					for i := range rows {
						if exec.EncodeRow(rows[i]) != exec.EncodeRow(oracle.Rows[i]) {
							t.Fatalf("%v: row %d out of order\nquery: %s", mode, i, sql)
						}
					}
				}
			}
		})
	}
}

// randomQuery emits one random query over clicks(uid, page, cid, ts).
// ordered reports whether the query carries a total ORDER BY, in which case
// the caller checks the exact output sequence.
func randomQuery(r *rand.Rand) (sql string, ordered bool) {
	pick := func(opts ...string) string { return opts[r.Intn(len(opts))] }

	pred := func(binding string) string {
		col := func(name string) string {
			if binding == "" {
				return name
			}
			return binding + "." + name
		}
		switch r.Intn(6) {
		case 0:
			return fmt.Sprintf("%s = %d", col("cid"), r.Intn(4))
		case 1:
			return fmt.Sprintf("%s <> %d", col("cid"), r.Intn(4))
		case 2:
			return fmt.Sprintf("%s > %d", col("uid"), r.Intn(30))
		case 3:
			return fmt.Sprintf("%s %% 2 = 0", col("ts"))
		case 4:
			return fmt.Sprintf("%s BETWEEN %d AND %d", col("page"), 500, 3500)
		default:
			return fmt.Sprintf("%s IN (0, 2, 3)", col("cid"))
		}
	}

	agg := func(binding string) string {
		col := func(name string) string {
			if binding == "" {
				return name
			}
			return binding + "." + name
		}
		return pick(
			"count(*)",
			fmt.Sprintf("sum(%s)", col("ts")),
			fmt.Sprintf("min(%s)", col("ts")),
			fmt.Sprintf("max(%s)", col("page")),
			fmt.Sprintf("avg(%s)", col("ts")),
			fmt.Sprintf("count(distinct %s)", col("cid")),
		)
	}

	switch r.Intn(7) {
	case 0: // selection-projection
		q := fmt.Sprintf("SELECT uid, %s, ts FROM clicks", pick("page", "cid"))
		if r.Intn(3) > 0 {
			q += " WHERE " + pred("")
		}
		return q, false

	case 1: // grouped aggregation, optional HAVING
		groupCol := pick("uid", "cid")
		q := fmt.Sprintf("SELECT %s, %s AS m, count(*) AS n FROM clicks", groupCol, agg(""))
		if r.Intn(2) == 0 {
			q += " WHERE " + pred("")
		}
		q += " GROUP BY " + groupCol
		if r.Intn(3) == 0 {
			q += " HAVING count(*) > 2"
		}
		return q, false

	case 2: // self-join with residual
		q := `SELECT c1.uid, c1.ts, c2.ts AS ts2 FROM clicks c1, clicks c2
			WHERE c1.uid = c2.uid AND c1.ts < c2.ts`
		if r.Intn(2) == 0 {
			q += " AND " + pred("c1")
		}
		if r.Intn(2) == 0 {
			q += " AND " + pred("c2")
		}
		return q, false

	case 3: // join against an aggregated derived table (rule 2/4 shapes)
		q := fmt.Sprintf(`SELECT c.uid, c.ts, g.mts FROM clicks c,
			(SELECT uid, max(ts) AS mts, %s AS gm FROM clicks GROUP BY uid) AS g
			WHERE c.uid = g.uid`, agg(""))
		if r.Intn(2) == 0 {
			q += " AND c.ts = g.mts"
		}
		if r.Intn(2) == 0 {
			q += " AND " + pred("c")
		}
		return q, false

	case 4: // outer self-join, optionally anti-join filtered
		q := fmt.Sprintf(`SELECT c1.uid, c1.ts, c2.ts AS ts2
			FROM clicks c1 LEFT OUTER JOIN clicks c2
			ON c1.uid = c2.uid AND c2.ts > c1.ts AND %s`, pred("c2"))
		if r.Intn(2) == 0 {
			q += " WHERE c2.ts IS NULL"
		}
		return q, false

	case 5: // distributed total-order sort over a filtered scan or aggregate
		if r.Intn(2) == 0 {
			return fmt.Sprintf(`SELECT uid, cid, ts FROM clicks WHERE %s
				ORDER BY %s DESC, ts, uid`, pred(""), pick("cid", "uid")), true
		}
		return `SELECT uid, count(*) AS n FROM clicks GROUP BY uid
			ORDER BY n DESC, uid`, true

	default: // aggregation over a self-join (rule 1 + rule 2 together)
		q := fmt.Sprintf(`SELECT c1.uid, count(*) AS pairs, %s AS m
			FROM clicks c1, clicks c2
			WHERE c1.uid = c2.uid`, agg("c2"))
		if r.Intn(2) == 0 {
			q += " AND " + pred("c1")
		}
		q += " GROUP BY c1.uid"
		return q, false
	}
}
