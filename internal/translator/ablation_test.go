package translator

import (
	"testing"

	"ysmart/internal/correlation"
	"ysmart/internal/dbms"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
)

// TestPKHeuristicAblation quantifies DESIGN.md ablation #2: forcing Q-CSA's
// aggregations onto the wrong partition-key candidate (ts instead of uid)
// destroys the job-flow correlations, so YSmart degenerates to more jobs —
// while still computing the correct result.
func TestPKHeuristicAblation(t *testing.T) {
	root, err := queries.Plan(queries.QCSA)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: the heuristic picks uid and YSmart needs two jobs.
	good, err := Translate(root, YSmart, Options{QueryName: "pk-good"})
	if err != nil {
		t.Fatal(err)
	}
	if good.NumJobs() != 2 {
		t.Fatalf("baseline jobs = %d, want 2", good.NumJobs())
	}

	// Ablated: override AGG1 and AGG2 to their non-uid candidates.
	a, err := correlation.Analyze(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range a.Ops {
		if op.Kind != correlation.KindAgg || len(op.Agg.GroupBy) < 2 {
			continue
		}
		// Candidate {1} is the timestamp column for both AGG1 and AGG2.
		if err := a.OverridePK(op, []int{1}); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := TranslateAnalyzed(a, YSmart, Options{QueryName: "pk-bad"})
	if err != nil {
		t.Fatal(err)
	}
	if bad.NumJobs() <= good.NumJobs() {
		t.Errorf("ablated jobs = %d, want more than baseline %d",
			bad.NumJobs(), good.NumJobs())
	}

	// Both translations must still be correct.
	dfs, db := workload(t)
	oracle, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []*Translation{good, bad} {
		eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.RunChain(tr.Jobs)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := tr.ReadResult(dfs)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, tr.OutputSchema, rows, oracle.Rows)
		_ = stats
	}

	// And the ablated plan must be slower.
	runTime := func(tr *Translation) float64 {
		eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.RunChain(tr.Jobs)
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalTime()
	}
	if runTime(bad) <= runTime(good) {
		t.Error("wrong partition key should cost simulated time")
	}
}

// TestOverridePKValidation covers the override's error paths.
func TestOverridePKValidation(t *testing.T) {
	root, err := queries.Plan(queries.QCSA)
	if err != nil {
		t.Fatal(err)
	}
	a, err := correlation.Analyze(root)
	if err != nil {
		t.Fatal(err)
	}
	var join, agg *correlation.Operation
	for _, op := range a.Ops {
		switch op.Kind {
		case correlation.KindJoin:
			join = op
		case correlation.KindAgg:
			if len(op.Agg.GroupBy) >= 2 && agg == nil {
				agg = op
			}
		}
	}
	if err := a.OverridePK(join, []int{0}); err == nil {
		t.Error("overriding a join PK should fail")
	}
	if err := a.OverridePK(agg, nil); err == nil {
		t.Error("empty candidate should fail")
	}
	if err := a.OverridePK(agg, []int{99}); err == nil {
		t.Error("out-of-range candidate should fail")
	}
	if err := a.OverridePK(agg, []int{0, 1}); err != nil {
		t.Errorf("valid candidate rejected: %v", err)
	}
}
