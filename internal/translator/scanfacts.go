package translator

import (
	"ysmart/internal/plan"
)

// ScanFact describes the map-side selection of one base-table input of a
// lowered job: either a raw-line Prefilter that discharges exactly the
// filters the mapper evaluates adjacent to the scan, or the reason no
// safe prefilter exists. The MANIMAL rewrite stage (internal/optanalysis)
// consumes these facts to install mapreduce.Input.Prefilter early
// filters under -manimal, and the analysis report prints them verbatim.
// Facts cover base-table inputs only; intermediate inputs read other
// jobs' outputs and are never prefiltered.
type ScanFact struct {
	// Job names the mapreduce.Job owning the input (CommonJob inputs
	// build 1:1, in order, onto the job's Inputs).
	Job string
	// InputIdx indexes the owning job's Inputs slice.
	InputIdx int
	// Table is the base table the input scans; Path is its DFS path.
	Table string
	Path  string
	// PredSQL renders the discharged predicates in SQL, one conjunct per
	// entry (a shared scan contributes one OR-across-streams entry).
	PredSQL []string
	// Prefilter is the raw-line early filter, nil when refused. It wraps
	// the mapper's own decode-and-filter path, so it skips a line exactly
	// when the mapper would have produced no output and no error for it;
	// lines that fail to decode or evaluate are kept so the mapper still
	// surfaces the error.
	Prefilter func(line string) bool
	// Refusal explains a nil Prefilter.
	Refusal string
}

// filterSQL renders a run of chain Filter nodes as SQL conjuncts.
func filterSQL(nodes []plan.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.(*plan.Filter).Cond.SQL()
	}
	return out
}
