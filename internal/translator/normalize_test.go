package translator

import (
	"strings"
	"testing"

	"ysmart/internal/queries"
)

func TestNormalizeSQLCollapsesEquivalentSpellings(t *testing.T) {
	base := "SELECT cid, count(*) AS click_count FROM clicks GROUP BY cid"
	variants := []string{
		"select cid, count(*) as click_count from clicks group by cid",
		"SELECT CID , COUNT ( * ) AS CLICK_COUNT\n\tFROM CLICKS\n\tGROUP BY CID",
		base + ";",
		base + " ; ;",
	}
	want, err := NormalizeSQL(base)
	if err != nil {
		t.Fatalf("normalize base: %v", err)
	}
	for _, v := range variants {
		got, err := NormalizeSQL(v)
		if err != nil {
			t.Fatalf("normalize %q: %v", v, err)
		}
		if got != want {
			t.Errorf("normalize %q = %q, want %q", v, got, want)
		}
	}
}

func TestNormalizeSQLKeepsDistinctQueriesDistinct(t *testing.T) {
	a, err := NormalizeSQL("SELECT cid FROM clicks")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NormalizeSQL("SELECT uid FROM clicks")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("distinct queries normalized identically: %q", a)
	}
	// String literal case must survive: 'F' and 'f' are different values.
	a, _ = NormalizeSQL("SELECT * FROM orders WHERE o_orderstatus = 'F'")
	b, _ = NormalizeSQL("SELECT * FROM orders WHERE o_orderstatus = 'f'")
	if a == b {
		t.Fatal("string literal case was folded; literals must stay verbatim")
	}
}

func TestNormalizeSQLStringEscaping(t *testing.T) {
	norm, err := NormalizeSQL("SELECT * FROM orders WHERE o_comment = 'it''s late'")
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if !strings.Contains(norm, "'it''s late'") {
		t.Fatalf("embedded quote not re-escaped: %q", norm)
	}
}

func TestNormalizeSQLErrors(t *testing.T) {
	for _, sql := range []string{"", "   ", ";;", "'unterminated"} {
		if _, err := NormalizeSQL(sql); err == nil {
			t.Errorf("NormalizeSQL(%q) succeeded, want error", sql)
		}
	}
}

func TestCacheKeyScopedByMode(t *testing.T) {
	sql := queries.QAGG
	kYSmart, err := CacheKey(sql, YSmart)
	if err != nil {
		t.Fatal(err)
	}
	kOneToOne, err := CacheKey(sql, OneToOne)
	if err != nil {
		t.Fatal(err)
	}
	if kYSmart == kOneToOne {
		t.Fatal("cache keys for different modes collide")
	}
	again, _ := CacheKey(strings.ToLower(sql)+" ;", YSmart)
	if again != kYSmart {
		t.Fatalf("equivalent spelling produced a different key:\n%q\n%q", again, kYSmart)
	}
}

func TestQueryTagStableAndDistinct(t *testing.T) {
	k1, _ := CacheKey(queries.QAGG, YSmart)
	k2, _ := CacheKey(queries.QCSA, YSmart)
	t1, t2 := QueryTag(k1), QueryTag(k2)
	if t1 != QueryTag(k1) {
		t.Fatal("QueryTag is not deterministic")
	}
	if t1 == t2 {
		t.Fatalf("tags collide for distinct keys: %s", t1)
	}
	if len(t1) != 13 || t1[0] != 'q' {
		t.Fatalf("tag %q is not in q<12 hex> form", t1)
	}
}
