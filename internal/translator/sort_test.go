package translator

import (
	"testing"

	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
)

// TestDistributedSortExactOrder: an ORDER BY without LIMIT runs with
// order-preserving keys over the cluster's full reducer count, and the
// output file's row sequence equals the oracle's exactly.
func TestDistributedSortExactOrder(t *testing.T) {
	sql := `SELECT uid, cid, ts FROM clicks
	        WHERE cid < 3
	        ORDER BY cid DESC, ts, uid`
	dfs, db := workload(t)
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle.Rows) < 100 {
		t.Fatalf("only %d rows; the scenario is too thin", len(oracle.Rows))
	}

	for _, mode := range allModes {
		tr, err := Translate(root, mode, Options{QueryName: "dsort-" + mode.String()})
		if err != nil {
			t.Fatalf("translate (%v): %v", mode, err)
		}
		eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.RunChain(tr.Jobs)
		if err != nil {
			t.Fatalf("run (%v): %v", mode, err)
		}
		// The sort job uses the cluster's reducers, not a single one.
		last := stats.Jobs[len(stats.Jobs)-1]
		if last.NumReduceTasks <= 1 {
			t.Errorf("%v: sort ran with %d reduce task(s), want the cluster default",
				mode, last.NumReduceTasks)
		}
		rows, err := tr.ReadResult(dfs)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(oracle.Rows) {
			t.Fatalf("%v: %d rows, want %d", mode, len(rows), len(oracle.Rows))
		}
		// Exact sequence comparison — this is what the ordered key encoding
		// buys: global order across range partitions.
		for i := range rows {
			if exec.EncodeRow(rows[i]) != exec.EncodeRow(oracle.Rows[i]) {
				t.Fatalf("%v: row %d out of order:\n got %s\nwant %s",
					mode, i, exec.EncodeRow(rows[i]), exec.EncodeRow(oracle.Rows[i]))
			}
		}
	}
}

// TestLimitedSortStaysSingleReducer: with LIMIT the global cut still runs
// in one reducer (the classic plan), and the sequence is exact.
func TestLimitedSortStaysSingleReducer(t *testing.T) {
	sql := `SELECT uid, ts FROM clicks ORDER BY ts DESC, uid LIMIT 10`
	dfs, db := workload(t)
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(root, YSmart, Options{QueryName: "lsort"})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.RunChain(tr.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	last := stats.Jobs[len(stats.Jobs)-1]
	if last.NumReduceTasks != 1 {
		t.Errorf("limited sort reduce tasks = %d, want 1", last.NumReduceTasks)
	}
	rows, err := tr.ReadResult(dfs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for i := range rows {
		if exec.EncodeRow(rows[i]) != exec.EncodeRow(oracle.Rows[i]) {
			t.Fatalf("row %d: got %s, want %s",
				i, exec.EncodeRow(rows[i]), exec.EncodeRow(oracle.Rows[i]))
		}
	}
}

// TestSortStringKeysDistributed: string sort keys survive the ordered
// encoding (escaping, terminators) across partitions.
func TestSortStringKeysDistributed(t *testing.T) {
	sql := `SELECT o_orderstatus, o_orderkey FROM orders ORDER BY o_orderstatus, o_orderkey DESC`
	dfs, db := workload(t)
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(root, YSmart, Options{QueryName: "ssort"})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunChain(tr.Jobs); err != nil {
		t.Fatal(err)
	}
	rows, err := tr.ReadResult(dfs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if exec.EncodeRow(rows[i]) != exec.EncodeRow(oracle.Rows[i]) {
			t.Fatalf("row %d: got %s, want %s",
				i, exec.EncodeRow(rows[i]), exec.EncodeRow(oracle.Rows[i]))
		}
	}
}
