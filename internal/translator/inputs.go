package translator

import (
	"fmt"
	"sort"
	"strings"

	"ysmart/internal/cmf"
	"ysmart/internal/correlation"
	"ysmart/internal/exec"
	"ysmart/internal/plan"
	"ysmart/internal/sqlparser"
)

// keyPositions returns the partition-key columns of an operation input as
// positions in the input's (chain-top) schema. Joins use their equi-join
// keys; aggregations inside merged jobs use the chosen partition-key
// candidate (which must be plain column references — guaranteed, because
// only lineage-carrying columns can match another operation's key).
func keyPositions(op *correlation.Operation, inputIdx int) ([]int, error) {
	switch op.Kind {
	case correlation.KindJoin:
		if inputIdx == 0 {
			return op.Join.LeftKeys, nil
		}
		return op.Join.RightKeys, nil
	case correlation.KindAgg:
		agg := op.Agg
		childSchema := agg.Child.Schema()
		out := make([]int, 0, len(agg.PKChoice))
		for _, gi := range agg.PKChoice {
			ref, ok := agg.GroupBy[gi].(*sqlparser.ColumnRef)
			if !ok {
				return nil, fmt.Errorf("%s: partition-key column %s is computed", op.Name(), agg.GroupBy[gi].SQL())
			}
			idx, err := childSchema.Resolve(ref.Qualifier, ref.Name)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", op.Name(), err)
			}
			out = append(out, idx)
		}
		return out, nil
	case correlation.KindSort:
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown op kind")
	}
}

// traceKeyToBase maps the input's key positions down through the chain to
// base-table column positions, which shared-scan mappers key on.
func (lw *lowerer) traceKeyToBase(op *correlation.Operation, inputIdx int) ([]int, bool) {
	in := op.Inputs[inputIdx]
	positions, err := keyPositions(op, inputIdx)
	if err != nil || positions == nil {
		return nil, false
	}
	out := make([]int, len(positions))
	for i, pos := range positions {
		cur := pos
		for _, n := range in.Chain { // top-down toward the scan
			switch x := n.(type) {
			case *plan.Filter, *plan.Rebind, *plan.Limit:
				// position unchanged
			case *plan.Project:
				ref, ok := x.Exprs[cur].(*sqlparser.ColumnRef)
				if !ok {
					return nil, false
				}
				idx, err := x.Child.Schema().Resolve(ref.Qualifier, ref.Name)
				if err != nil {
					return nil, false
				}
				cur = idx
			default:
				return nil, false
			}
		}
		out[i] = cur
	}
	return out, true
}

// keySpec describes how an input keys its map output: the key value
// functions plus an optional non-default encoding (order-preserving keys
// for distributed sorts are opaque to the reducer).
type keySpec struct {
	fns    []cmf.RowFn
	encode func([]exec.Value) string
}

// keyFns compiles the map-output key of an operation input against the
// reduce-side view of its rows. Standalone aggregation jobs key on the full
// grouping expressions (Hive's convention); merged aggregations key on the
// chosen partition-key candidate; joins key on their equi-join columns;
// distributed sorts key on their sort expressions with an order-preserving
// encoding so range partitions yield a total order.
func (lw *lowerer) keyFns(jb *jobBuild, op *correlation.Operation, inputIdx int, eff effView) (keySpec, error) {
	switch op.Kind {
	case correlation.KindJoin:
		positions, _ := keyPositions(op, inputIdx)
		fns := make([]cmf.RowFn, len(positions))
		for i, pos := range positions {
			effIdx, err := eff.index(pos)
			if err != nil {
				return keySpec{}, fmt.Errorf("%s key: %w", op.Name(), err)
			}
			fns[i] = projectionFns([]int{effIdx})[0]
		}
		return keySpec{fns: fns}, nil
	case correlation.KindAgg:
		exprs := op.Agg.GroupBy
		if len(jb.ops) > 1 {
			exprs = make([]sqlparser.Expr, len(op.Agg.PKChoice))
			for i, gi := range op.Agg.PKChoice {
				exprs[i] = op.Agg.GroupBy[gi]
			}
		}
		fns := make([]cmf.RowFn, len(exprs))
		for i, e := range exprs {
			ev, err := exec.Compile(e, eff.schema)
			if err != nil {
				return keySpec{}, fmt.Errorf("%s key %s: %w", op.Name(), e.SQL(), err)
			}
			fns[i] = cmf.RowFn(ev)
		}
		return keySpec{fns: fns}, nil
	case correlation.KindSort:
		if !lw.parallelSort(op) {
			// With a LIMIT the total order must be cut globally, so the
			// whole input funnels through one reduce group.
			return keySpec{}, nil
		}
		keys := op.Sort.Keys
		fns := make([]cmf.RowFn, len(keys))
		desc := make([]bool, len(keys))
		for i, k := range keys {
			ev, err := exec.Compile(k.Expr, eff.schema)
			if err != nil {
				return keySpec{}, fmt.Errorf("%s key %s: %w", op.Name(), k.Expr.SQL(), err)
			}
			fns[i] = cmf.RowFn(ev)
			desc[i] = k.Desc
		}
		return keySpec{
			fns:    fns,
			encode: func(vals []exec.Value) string { return exec.EncodeOrderedKey(vals, desc) },
		}, nil
	default:
		return keySpec{}, fmt.Errorf("unknown op kind")
	}
}

// parallelSort reports whether a sort runs with range-ordered keys over
// many reducers (possible whenever no LIMIT has to be applied globally).
func (lw *lowerer) parallelSort(op *correlation.Operation) bool {
	return !(op == lw.analysis.RootOp && lw.topLimit > 0)
}

func keyFromFns(fns []cmf.RowFn) func(exec.Row) ([]exec.Value, error) {
	return func(r exec.Row) ([]exec.Value, error) {
		out := make([]exec.Value, len(fns))
		for i, fn := range fns {
			v, err := fn(r)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
}

// buildSimpleScanInput lowers a single-stream base-table input: the mapper
// decodes the full row, prunes it, applies the whole transparent chain
// (selection and projection in the map phase, §V.A), and emits the
// chain-top row.
func (lw *lowerer) buildSimpleScanInput(cj *cmf.CommonJob, ss *sharedStream, slots map[slotKey]slot) error {
	scanEff := lw.view(ss.scan)
	stages, topEff, err := lowerChain(scanEff, ss.chain, lw.requiredOf)
	if err != nil {
		return fmt.Errorf("%s scan %s: %w", ss.op.Name(), ss.scan.Table, err)
	}
	jb := lw.jobOfOp(ss.op)
	spec, err := lw.keyFns(jb, ss.op, ss.key.inputIdx, topEff)
	if err != nil {
		return err
	}
	decodeSchema := ss.scan.Schema()
	pre := scanEff.cols
	decode := func(line string) (exec.Row, error) {
		row, err := exec.DecodeRow(line, decodeSchema)
		if err != nil {
			return nil, err
		}
		cur := make(exec.Row, len(pre))
		for i, c := range pre {
			cur[i] = row[c]
		}
		return applyStages(stages, cur)
	}
	if spec.encode != nil {
		cj.OpaqueKeys = true
	}
	fact := ScanFact{Job: cj.Name, InputIdx: len(cj.Inputs), Table: ss.scan.Table, Path: TablePath(ss.scan.Table)}
	if n := mapFilterPrefixLen(ss.chain); n == 0 {
		fact.Refusal = fmt.Sprintf("%s: no selection adjacent to the scan of %s", ss.op.Name(), ss.scan.Table)
	} else {
		fact.PredSQL = filterSQL(ss.chain[len(ss.chain)-n:])
		// The prefilter replays the mapper's own decode-and-filter chain:
		// a nil row with no error is exactly a line the mapper drops.
		fact.Prefilter = func(line string) bool {
			out, err := decode(line)
			return err != nil || out != nil
		}
	}
	lw.facts = append(lw.facts, fact)
	cj.Inputs = append(cj.Inputs, cmf.CommonInput{
		Path:      TablePath(ss.scan.Table),
		Decode:    decode,
		Key:       keyFromFns(spec.fns),
		KeyEncode: spec.encode,
		Streams:   []cmf.Stream{{ID: ss.id}},
	})
	slots[ss.key] = slot{src: cmf.StreamSource(ss.id), eff: topEff}
	return nil
}

// buildSharedInput lowers a table read by several streams into one shared
// scan (§VI.A): the common mapper evaluates every stream's selection,
// emits the union of the required columns once, and tags the streams that
// must not see the pair. Non-selection chain work runs reduce-side per
// stream.
func (lw *lowerer) buildSharedInput(cj *cmf.CommonJob, table string, streams []*sharedStream, slots map[slotKey]slot, addOp func(cmf.Op)) error {
	// Union of required base columns across streams.
	unionSet := make(map[int]bool)
	for _, ss := range streams {
		for _, c := range ss.required {
			unionSet[c] = true
		}
		for _, c := range ss.keyBase {
			unionSet[c] = true
		}
	}
	unionCols := make([]int, 0, len(unionSet))
	for c := range unionSet {
		unionCols = append(unionCols, c)
	}
	sort.Ints(unionCols)
	unionPos := make(map[int]int, len(unionCols))
	for i, c := range unionCols {
		unionPos[c] = i
	}

	decodeSchema := streams[0].scan.Schema()
	keyBase := streams[0].keyBase

	input := cmf.CommonInput{
		Path: TablePath(table),
		Decode: func(line string) (exec.Row, error) {
			return exec.DecodeRow(line, decodeSchema)
		},
		Key: func(r exec.Row) ([]exec.Value, error) {
			out := make([]exec.Value, len(keyBase))
			for i, c := range keyBase {
				out[i] = r[c]
			}
			return out, nil
		},
		Project: func(r exec.Row) exec.Row {
			out := make(exec.Row, len(unionCols))
			for i, c := range unionCols {
				out[i] = r[c]
			}
			return out
		},
	}

	fact := ScanFact{Job: cj.Name, InputIdx: len(cj.Inputs), Table: table, Path: TablePath(table)}
	var streamPreds []cmf.RowPred
	var streamSQL []string

	for _, ss := range streams {
		// Map-side selection: the maximal run of Filters adjacent to the
		// scan (the bottom of the top-down chain).
		chain := ss.chain
		nFilters := mapFilterPrefixLen(chain)
		mapFilterNodes := chain[len(chain)-nFilters:]
		reduceChain := chain[:len(chain)-nFilters]

		var preds []cmf.RowPred
		for _, n := range mapFilterNodes {
			f := n.(*plan.Filter)
			ev, err := exec.Compile(f.Cond, ss.scan.Schema())
			if err != nil {
				return fmt.Errorf("%s selection %s: %w", ss.op.Name(), f.Cond.SQL(), err)
			}
			preds = append(preds, func(r exec.Row) (bool, error) {
				return exec.EvalPredicate(ev, r)
			})
		}
		var filter cmf.RowPred
		if len(preds) > 0 {
			preds := preds
			filter = func(r exec.Row) (bool, error) {
				for _, p := range preds {
					ok, err := p(r)
					if err != nil || !ok {
						return false, err
					}
				}
				return true, nil
			}
			streamPreds = append(streamPreds, filter)
			streamSQL = append(streamSQL, "("+strings.Join(filterSQL(mapFilterNodes), " AND ")+")")
		} else if fact.Refusal == "" {
			// One unfiltered stream wants every line, so no early filter
			// can drop anything.
			fact.Refusal = fmt.Sprintf("shared scan of %s: stream %s.in%d has no map-side selection, so every line must reach its reducer",
				table, ss.op.Name(), ss.key.inputIdx)
		}
		input.Streams = append(input.Streams, cmf.Stream{ID: ss.id, Filter: filter})

		// Reduce side: project the union row down to this stream's own
		// required columns, then run the rest of the chain.
		streamEff := restrictView(ss.scan.Schema(), ss.required)
		src := cmf.Source{Stream: ss.id}
		if !intsEqual(ss.required, unionCols) {
			proj := make([]int, len(ss.required))
			for i, c := range ss.required {
				proj[i] = unionPos[c]
			}
			name := fmt.Sprintf("%s.in%d.narrow", ss.op.Name(), ss.key.inputIdx)
			addOp(&cmf.ProjectOp{OpName: name, In: src, Exprs: projectionFns(proj)})
			src = cmf.OpSource(name)
		}
		stages, topEff, err := lowerChain(streamEff, reduceChain, lw.requiredOf)
		if err != nil {
			return fmt.Errorf("%s shared scan %s: %w", ss.op.Name(), table, err)
		}
		src = stagesToOps(stages, src, fmt.Sprintf("%s.in%d", ss.op.Name(), ss.key.inputIdx), addOp)
		slots[ss.key] = slot{src: src, eff: topEff}
	}

	if fact.Refusal == "" {
		fact.PredSQL = []string{strings.Join(streamSQL, " OR ")}
		decodeFull := input.Decode
		// A line is droppable only when every stream's selection rejects
		// the decoded row; decode or evaluation errors keep the line so
		// the mapper surfaces them.
		fact.Prefilter = func(line string) bool {
			r, err := decodeFull(line)
			if err != nil || r == nil {
				return true
			}
			for _, p := range streamPreds {
				ok, err := p(r)
				if err != nil || ok {
					return true
				}
			}
			return false
		}
	}
	lw.facts = append(lw.facts, fact)

	cj.Inputs = append(cj.Inputs, input)
	return nil
}

// buildIntermediateInput lowers an input that reads another job's output:
// the mapper strips the source tag, decodes the written rows, applies the
// chain, and keys on this operation's partition columns.
func (lw *lowerer) buildIntermediateInput(cj *cmf.CommonJob, op *correlation.Operation, inputIdx int, in *correlation.Input, streamID int, slots map[slotKey]slot) error {
	ref, ok := lw.written[in.Op]
	if !ok {
		return fmt.Errorf("internal: %s consumed before %s was lowered", in.Op.Name(), op.Name())
	}
	stages, topEff, err := lowerChain(ref.eff, in.Chain, lw.requiredOf)
	if err != nil {
		return fmt.Errorf("%s intermediate input: %w", op.Name(), err)
	}
	jb := lw.jobOfOp(op)
	spec, err := lw.keyFns(jb, op, inputIdx, topEff)
	if err != nil {
		return err
	}
	wantTag := ref.tag
	effSchema := ref.eff.schema
	decode := func(line string) (exec.Row, error) {
		tag, payload := cmf.SplitTag(line)
		if tag != wantTag {
			return nil, nil // another merged job's rows in the shared file
		}
		row, err := exec.DecodeRow(payload, effSchema)
		if err != nil {
			return nil, err
		}
		return applyStages(stages, row)
	}
	if spec.encode != nil {
		cj.OpaqueKeys = true
	}
	cj.Inputs = append(cj.Inputs, cmf.CommonInput{
		Path:      ref.path,
		Decode:    decode,
		Key:       keyFromFns(spec.fns),
		KeyEncode: spec.encode,
		Streams:   []cmf.Stream{{ID: streamID}},
	})
	slots[slotKey{op.ID, inputIdx}] = slot{src: cmf.StreamSource(streamID), eff: topEff}
	return nil
}

// jobOfOp finds the job currently holding op. The lowerer only needs it to
// distinguish standalone from merged aggregations when keying.
func (lw *lowerer) jobOfOp(op *correlation.Operation) *jobBuild {
	return lw.jobLookup[op]
}

// mapFilterPrefixLen counts the Filter nodes adjacent to the bottom of a
// top-down chain — the selections a shared-scan mapper evaluates in place.
func mapFilterPrefixLen(chain []plan.Node) int {
	n := 0
	for i := len(chain) - 1; i >= 0; i-- {
		if _, ok := chain[i].(*plan.Filter); !ok {
			break
		}
		n++
	}
	return n
}
