package translator

import (
	"strings"
	"testing"

	"ysmart/internal/dbms"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
)

// Outer-join coverage beyond the workload's single LEFT OUTER JOIN: right
// and full outer joins, and the anti-join (outer join + IS NULL) pattern,
// each checked against the oracle in every translation mode.

func checkAgainstOracle(t *testing.T, sql, name string) {
	t.Helper()
	dfs, db := workload(t)
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	oracle, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if len(oracle.Rows) == 0 {
		t.Fatalf("oracle returned no rows; the scenario is vacuous:\n%s", sql)
	}
	for _, mode := range allModes {
		tr, err := Translate(root, mode, Options{QueryName: name + "-" + mode.String()})
		if err != nil {
			t.Fatalf("translate (%v): %v", mode, err)
		}
		eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunChain(tr.Jobs); err != nil {
			t.Fatalf("run (%v): %v", mode, err)
		}
		rows, err := tr.ReadResult(dfs)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRows(t, tr.OutputSchema, rows, oracle.Rows)
	}
}

func TestRightOuterJoinAllModes(t *testing.T) {
	checkAgainstOracle(t, `
		SELECT late.l_orderkey, late.n, o_orderkey, o_orderstatus
		FROM (SELECT l_orderkey, count(*) AS n
		      FROM lineitem
		      WHERE l_receiptdate > l_commitdate
		      GROUP BY l_orderkey) AS late
		RIGHT OUTER JOIN orders ON late.l_orderkey = o_orderkey`, "right-outer")
}

func TestFullOuterJoinAllModes(t *testing.T) {
	checkAgainstOracle(t, `
		SELECT late.l_orderkey, late.n, f.o_orderkey, f.o_totalprice
		FROM (SELECT l_orderkey, count(*) AS n
		      FROM lineitem
		      WHERE l_receiptdate > l_commitdate
		      GROUP BY l_orderkey) AS late
		FULL OUTER JOIN
		     (SELECT o_orderkey, o_totalprice
		      FROM orders
		      WHERE o_orderstatus = 'F') AS f
		ON late.l_orderkey = f.o_orderkey`, "full-outer")
}

func TestAntiJoinPatternAllModes(t *testing.T) {
	// Orders with no late lineitem: LEFT OUTER JOIN + IS NULL.
	checkAgainstOracle(t, `
		SELECT o_orderkey, o_orderstatus
		FROM orders
		LEFT OUTER JOIN
		     (SELECT l_orderkey, count(*) AS n
		      FROM lineitem
		      WHERE l_receiptdate > l_commitdate
		      GROUP BY l_orderkey) AS late
		ON o_orderkey = late.l_orderkey
		WHERE late.n IS NULL`, "anti-join")
}

func TestAggregationAboveOuterJoinAllModes(t *testing.T) {
	// Grouping on top of an outer join: NULL-extended rows group by the
	// preserved side's key.
	checkAgainstOracle(t, `
		SELECT o_orderstatus, count(*) AS orders_n, count(late.n) AS with_late
		FROM orders
		LEFT OUTER JOIN
		     (SELECT l_orderkey, count(*) AS n
		      FROM lineitem
		      WHERE l_receiptdate > l_commitdate
		      GROUP BY l_orderkey) AS late
		ON o_orderkey = late.l_orderkey
		GROUP BY o_orderstatus`, "agg-outer")
}

// TestCorruptTableDataSurfacesError: malformed rows in a base table produce
// a decode error naming the column, in both engines.
func TestCorruptTableDataSurfacesError(t *testing.T) {
	dfs, _ := workload(t)
	lines, err := dfs.Read(TablePath("orders"))
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]string{}, lines...)
	corrupted[3] = "not\tan\torder\trow"
	dfs.Write(TablePath("orders"), corrupted)

	root, err := queries.Plan(queries.Q21)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(root, YSmart, Options{QueryName: "corrupt"})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.RunChain(tr.Jobs)
	if err == nil {
		t.Fatal("corrupted input should fail the job")
	}
	if !strings.Contains(err.Error(), "fields") && !strings.Contains(err.Error(), "parse") {
		t.Errorf("error should describe the decode failure: %v", err)
	}
}
