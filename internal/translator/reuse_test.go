package translator

import (
	"reflect"
	"strings"
	"testing"

	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
	"ysmart/internal/reuse"
)

// runReuse executes a reuse-rewritten chain and returns its result rows.
func runReuse(t *testing.T, rp *ReusePlan, dfs *mapreduce.DFS) ([]string, *mapreduce.ChainStats) {
	t.Helper()
	eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.RunChain(rp.Jobs)
	if err != nil {
		t.Fatalf("run rewritten chain: %v", err)
	}
	rows, err := rp.ReadResult(dfs)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = exec.EncodeRow(r)
	}
	return lines, stats
}

// TestApplyReuseColdThenWarm is the tentpole round trip: a cold run
// records every job's output; a second translation of the same query
// (different label — a different query as far as the cache and job names
// are concerned) then skips the whole chain and reads the result straight
// from the store's artifact.
func TestApplyReuseColdThenWarm(t *testing.T) {
	dfs, _ := workload(t)
	store := reuse.NewStore(0, nil)
	store.WatchDFS(dfs)
	sql := queries.Named()["Q18"]

	tr := translate(t, sql, YSmart, Options{QueryName: "q18-cold"})
	rp := ApplyReuse(tr, store, dfs)
	if rp.Hits != 0 || rp.Skipped != 0 || len(rp.Jobs) != len(tr.Jobs) {
		t.Fatalf("cold rewrite touched the chain: hits=%d skipped=%d jobs=%d/%d",
			rp.Hits, rp.Skipped, len(rp.Jobs), len(tr.Jobs))
	}
	coldLines, coldStats := runReuse(t, rp, dfs)
	rp.Record(store, dfs, coldStats)
	if store.Len() != len(tr.Jobs) {
		t.Fatalf("store holds %d entries after recording %d jobs", store.Len(), len(tr.Jobs))
	}

	tr2 := translate(t, sql, YSmart, Options{QueryName: "q18-warm"})
	rp2 := ApplyReuse(tr2, store, dfs)
	if len(rp2.Jobs) != 0 {
		t.Fatalf("warm rewrite kept %d jobs, want 0", len(rp2.Jobs))
	}
	if rp2.Skipped != rp2.Total || rp2.Hits != rp2.Total || rp2.Total != len(tr2.Jobs) {
		t.Errorf("warm accounting: hits=%d skipped=%d total=%d, want all %d",
			rp2.Hits, rp2.Skipped, rp2.Total, len(tr2.Jobs))
	}
	if !strings.HasPrefix(rp2.Output, "restore/") {
		t.Errorf("warm output %q does not point into restore/", rp2.Output)
	}
	if rp2.ArtifactBytes <= 0 || rp2.PredictedSavedSeconds <= 0 {
		t.Errorf("warm savings not accounted: bytes=%d seconds=%v",
			rp2.ArtifactBytes, rp2.PredictedSavedSeconds)
	}
	warmLines, _ := runReuse(t, rp2, dfs)
	if !reflect.DeepEqual(warmLines, coldLines) {
		t.Errorf("warm rows differ from cold rows:\n got  %v\n want %v", warmLines, coldLines)
	}
}

// TestApplyReusePartial evicts exactly the result-producing artifact: the
// warm chain must re-run that one job against restored intermediate
// artifacts and reproduce the cold rows.
func TestApplyReusePartial(t *testing.T) {
	dfs, _ := workload(t)
	store := reuse.NewStore(0, nil)
	sql := queries.Named()["Q18"]

	tr := translate(t, sql, YSmart, Options{QueryName: "q18-cold"})
	rp := ApplyReuse(tr, store, dfs)
	coldLines, coldStats := runReuse(t, rp, dfs)
	rp.Record(store, dfs, coldStats)

	key, ok := RootArtifactKey(tr)
	if !ok {
		t.Fatal("no root artifact key")
	}
	store.Forget(key)

	tr2 := translate(t, sql, YSmart, Options{QueryName: "q18-warm"})
	rp2 := ApplyReuse(tr2, store, dfs)
	if len(rp2.Jobs) != 1 || rp2.Skipped != rp2.Total-1 {
		t.Fatalf("partial rewrite ran %d of %d jobs (skipped %d), want exactly the final job",
			len(rp2.Jobs), rp2.Total, rp2.Skipped)
	}
	for _, in := range rp2.Jobs[0].Inputs {
		if !strings.HasPrefix(in.Path, "restore/") && !strings.HasPrefix(in.Path, "tables/") {
			t.Errorf("surviving job reads %q; intermediate inputs must be restored artifacts", in.Path)
		}
	}
	warmLines, _ := runReuse(t, rp2, dfs)
	if !reflect.DeepEqual(warmLines, coldLines) {
		t.Errorf("partial warm rows differ from cold rows")
	}
	// Record after the partial run refreshes the root artifact: the next
	// rewrite is fully warm again.
	rp2.Record(store, dfs, nil)
	rp3 := ApplyReuse(translate(t, sql, YSmart, Options{QueryName: "q18-warm2"}), store, dfs)
	if len(rp3.Jobs) != 0 {
		t.Errorf("chain not fully warm after partial run recorded (%d jobs left)", len(rp3.Jobs))
	}
}

// TestApplyReuseNeverMutatesSource: the plan cache leases translations to
// concurrent sessions, so the rewrite must clone — the source jobs' input
// paths and dependency edges stay exactly as lowered even when the
// rewrite repoints inputs at restore/ artifacts.
func TestApplyReuseNeverMutatesSource(t *testing.T) {
	dfs, _ := workload(t)
	store := reuse.NewStore(0, nil)
	sql := queries.Named()["Q18"]

	tr := translate(t, sql, YSmart, Options{QueryName: "q18"})
	type jobShape struct {
		inputs  []string
		deps    []*mapreduce.Job
		jobPtrs *mapreduce.Job
	}
	var before []jobShape
	for _, j := range tr.Jobs {
		var ins []string
		for _, in := range j.Inputs {
			ins = append(ins, in.Path)
		}
		before = append(before, jobShape{inputs: ins, deps: append([]*mapreduce.Job(nil), j.DependsOn...), jobPtrs: j})
	}

	rp := ApplyReuse(tr, store, dfs)
	_, stats := runReuse(t, rp, dfs)
	rp.Record(store, dfs, stats)
	if key, ok := RootArtifactKey(tr); ok {
		store.Forget(key) // force a partial rewrite, the path that repoints inputs
	}
	ApplyReuse(tr, store, dfs)

	for i, j := range tr.Jobs {
		if j != before[i].jobPtrs {
			t.Fatalf("job %d pointer changed", i)
		}
		var ins []string
		for _, in := range j.Inputs {
			ins = append(ins, in.Path)
		}
		if !reflect.DeepEqual(ins, before[i].inputs) {
			t.Errorf("job %d inputs mutated: %v, want %v", i, ins, before[i].inputs)
		}
		if !reflect.DeepEqual(j.DependsOn, before[i].deps) {
			t.Errorf("job %d DependsOn mutated", i)
		}
	}
}

// TestOptimizedArtifactsDisjoint: a MANIMAL-optimized translation must
// never consume artifacts recorded by a plain one (or vice versa) — the
// optimizer dimension is part of the store key, mirroring CacheKeyOpt.
func TestOptimizedArtifactsDisjoint(t *testing.T) {
	if ArtifactKey("fp", true) == ArtifactKey("fp", false) {
		t.Fatal("optimized and plain keys collide")
	}
	if ArtifactPath("fp", true) == ArtifactPath("fp", false) {
		t.Fatal("optimized and plain artifact paths collide")
	}

	dfs, _ := workload(t)
	store := reuse.NewStore(0, nil)
	sql := queries.Named()["Q-AGG"]

	tr := translate(t, sql, YSmart, Options{QueryName: "plain"})
	rp := ApplyReuse(tr, store, dfs)
	_, stats := runReuse(t, rp, dfs)
	rp.Record(store, dfs, stats)

	opt := translate(t, sql, YSmart, Options{QueryName: "optimized"})
	opt.Optimized = true // what optanalysis.ApplyTranslation sets
	rpOpt := ApplyReuse(opt, store, dfs)
	if rpOpt.Hits != 0 || len(rpOpt.Jobs) != len(opt.Jobs) {
		t.Errorf("optimized translation consumed plain artifacts (hits=%d, jobs=%d/%d)",
			rpOpt.Hits, len(rpOpt.Jobs), len(opt.Jobs))
	}
}

// TestArtifactParity: every translation of every workload query under
// every mode carries exactly one artifact per job, each with a fingerprint
// and its base-table closure.
func TestArtifactParity(t *testing.T) {
	for name, sql := range queries.Named() {
		for _, mode := range []Mode{OneToOne, PigLike, ICTCOnly, YSmart} {
			tr := translate(t, sql, mode, Options{QueryName: "parity"})
			if len(tr.Artifacts) != len(tr.Jobs) {
				t.Errorf("%s/%v: %d artifacts for %d jobs", name, mode, len(tr.Artifacts), len(tr.Jobs))
				continue
			}
			for i, a := range tr.Artifacts {
				if a.Fingerprint == "" {
					t.Errorf("%s/%v job %d: empty fingerprint", name, mode, i)
				}
				if len(a.Tables) == 0 {
					t.Errorf("%s/%v job %d: no base tables", name, mode, i)
				}
			}
		}
	}
}
