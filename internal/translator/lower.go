package translator

import (
	"fmt"
	"sort"
	"strings"

	"ysmart/internal/cmf"
	"ysmart/internal/correlation"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/plan"
)

// TablePath is the DFS path convention for base tables; experiment
// harnesses and examples load data there.
func TablePath(table string) string { return "tables/" + strings.ToLower(table) }

// outputRef records where a job wrote an operation's results.
type outputRef struct {
	path string
	tag  string
	eff  effView
}

// lowerer turns a job grouping into executable CMF jobs.
type lowerer struct {
	analysis *correlation.Analysis
	mode     Mode
	opts     Options
	prune    bool // project map output to required columns
	combine  bool // map-side partial aggregation for standalone AGG jobs
	share    bool // shared scans for tables read by several streams

	effOf     map[*correlation.Operation]effView
	written   map[*correlation.Operation]outputRef
	jobLookup map[*correlation.Operation]*jobBuild
	// facts accumulates per-scan prefilter facts while jobs lower; they
	// land on Translation.ScanFacts.
	facts []ScanFact
	// topLimit is the LIMIT stripped from above the root sort (0 if none);
	// it decides whether that sort can run range-partitioned.
	topLimit int
}

// requiredOf returns the pruned column demand of a node, or every column
// when pruning is off (the PigLike mode's fat intermediates).
func (lw *lowerer) requiredOf(n plan.Node) []int {
	if !lw.prune {
		all := make([]int, n.Schema().Len())
		for i := range all {
			all[i] = i
		}
		return all
	}
	return lw.analysis.Required[n]
}

// view builds the effective view of a plan node.
func (lw *lowerer) view(n plan.Node) effView {
	return restrictView(n.Schema(), lw.requiredOf(n))
}

func (lw *lowerer) jobPath(idx int) string {
	return fmt.Sprintf("tmp/%s/%s/j%d", lw.opts.QueryName, lw.mode, idx)
}

// ---------------------------------------------------------------------------
// SP-only queries
// ---------------------------------------------------------------------------

// lowerSPQuery lowers an operation-free query to one map-only job.
func (lw *lowerer) lowerSPQuery() (*Translation, error) {
	in := lw.analysis.RootInput
	if in == nil || in.Scan == nil {
		return nil, fmt.Errorf("selection-projection query without a base table")
	}
	scan := in.Scan
	scanEff := lw.view(scan)
	stages, topEff, err := lowerChain(scanEff, in.Chain, lw.requiredOf)
	if err != nil {
		return nil, err
	}
	decodeSchema := scan.Schema()
	pre := scanEff.cols
	mapper := mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
		row, err := exec.DecodeRow(line, decodeSchema)
		if err != nil {
			return err
		}
		cur := make(exec.Row, len(pre))
		for i, c := range pre {
			cur[i] = row[c]
		}
		out, err := applyStages(stages, cur)
		if err != nil || out == nil {
			return err
		}
		emit("", exec.EncodeRow(out))
		return nil
	})
	path := lw.jobPath(1)
	name := fmt.Sprintf("%s-%s-j1[SP]", lw.opts.QueryName, lw.mode)
	job := &mapreduce.Job{
		Name:   name,
		Inputs: []mapreduce.Input{{Path: TablePath(scan.Table), Mapper: mapper}},
		Output: path,
	}
	fact := ScanFact{Job: name, Table: scan.Table, Path: TablePath(scan.Table)}
	if n := mapFilterPrefixLen(in.Chain); n == 0 {
		fact.Refusal = "no selection adjacent to the scan: every input line can reach the output"
	} else {
		fact.PredSQL = filterSQL(in.Chain[len(in.Chain)-n:])
		fact.Prefilter = func(line string) bool {
			row, err := exec.DecodeRow(line, decodeSchema)
			if err != nil {
				return true
			}
			cur := make(exec.Row, len(pre))
			for i, c := range pre {
				cur[i] = row[c]
			}
			out, err := applyStages(stages, cur)
			return err != nil || out != nil
		}
	}
	return &Translation{
		Mode:         lw.mode,
		Analysis:     lw.analysis,
		Jobs:         []*mapreduce.Job{job},
		CommonJobs:   []*cmf.CommonJob{nil},
		Groups:       [][]string{{"SP"}},
		Output:       path,
		OutputSchema: topEff.schema,
		ScanFacts:    []ScanFact{fact},
		Artifacts:    []JobArtifact{lw.rootArtifact()},
	}, nil
}

// ---------------------------------------------------------------------------
// Operation jobs
// ---------------------------------------------------------------------------

// lowerJobs lowers every job of the grouping in dependency order.
func (lw *lowerer) lowerJobs(g *grouping) (*Translation, error) {
	lw.jobLookup = g.jobOf
	order, err := topoJobs(g)
	if err != nil {
		return nil, err
	}

	// Strip a trailing LIMIT from the top chain; it folds into a root SORT.
	topChain, topLimit, err := lw.splitTopLimit()
	if err != nil {
		return nil, err
	}
	lw.topLimit = topLimit

	tr := &Translation{Mode: lw.mode, Analysis: lw.analysis}
	mrOf := make(map[*jobBuild]*mapreduce.Job, len(order))
	artOf := make(map[*jobBuild]JobArtifact, len(order))
	for idx, jb := range order {
		cj, err := lw.lowerJob(jb, idx+1, g, topChain, topLimit, tr)
		if err != nil {
			return nil, err
		}
		mr, err := cj.Build()
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", cj.Name, err)
		}
		deps := jobDeps(jb, g)
		for _, dep := range deps {
			mr.DependsOn = append(mr.DependsOn, mrOf[dep])
		}
		mrOf[jb] = mr
		tr.Jobs = append(tr.Jobs, mr)
		tr.CommonJobs = append(tr.CommonJobs, cj)
		group := make([]string, len(jb.ops))
		for i, op := range jb.ops {
			group[i] = op.Name()
		}
		tr.Groups = append(tr.Groups, group)

		depFPs := make([]string, len(deps))
		for i, dep := range deps {
			depFPs[i] = artOf[dep].Fingerprint
		}
		art := lw.artifactFor(jb, cj, depFPs)
		artOf[jb] = art
		tr.Artifacts = append(tr.Artifacts, art)
	}
	tr.ScanFacts = lw.facts
	return tr, nil
}

// splitTopLimit validates and removes a LIMIT from the top chain.
func (lw *lowerer) splitTopLimit() ([]plan.Node, int, error) {
	chain := lw.analysis.TopChain
	limit := 0
	for i, n := range chain {
		l, ok := n.(*plan.Limit)
		if !ok {
			continue
		}
		if i != len(chain)-1 || lw.analysis.RootOp.Kind != correlation.KindSort {
			return nil, 0, fmt.Errorf("LIMIT is only supported directly above the final ORDER BY")
		}
		limit = l.N
		chain = chain[:i]
	}
	return chain, limit, nil
}

// jobDeps lists the jobs jb reads intermediate results from.
func jobDeps(jb *jobBuild, g *grouping) []*jobBuild {
	seen := make(map[*jobBuild]bool)
	var out []*jobBuild
	for _, op := range jb.ops {
		for _, in := range op.Inputs {
			if in.Op == nil {
				continue
			}
			dep := g.jobOf[in.Op]
			if dep != jb && !seen[dep] {
				seen[dep] = true
				out = append(out, dep)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].minID() < out[j].minID() })
	return out
}

// topoJobs orders jobs so dependencies come first, breaking ties by the
// smallest operation ID (the one-to-one submission order).
func topoJobs(g *grouping) ([]*jobBuild, error) {
	remaining := append([]*jobBuild(nil), g.jobs...)
	done := make(map[*jobBuild]bool)
	var out []*jobBuild
	for len(remaining) > 0 {
		picked := -1
		for i, jb := range remaining {
			ready := true
			for _, dep := range jobDeps(jb, g) {
				if !done[dep] {
					ready = false
					break
				}
			}
			if ready && (picked < 0 || jb.minID() < remaining[picked].minID()) {
				picked = i
			}
		}
		if picked < 0 {
			return nil, fmt.Errorf("job graph has a cycle")
		}
		jb := remaining[picked]
		remaining = append(remaining[:picked], remaining[picked+1:]...)
		done[jb] = true
		out = append(out, jb)
	}
	return out, nil
}

// slotKey identifies one operation input.
type slotKey struct {
	opID     int
	inputIdx int
}

// slot is a resolved operation input on the reduce side.
type slot struct {
	src cmf.Source
	eff effView
}

// sharedStream is one merged job's view of a shared table scan.
type sharedStream struct {
	key      slotKey
	op       *correlation.Operation
	scan     *plan.Scan
	chain    []plan.Node
	id       int
	keyBase  []int // key columns as base-table positions
	required []int // base columns this stream needs in the common value
}

// lowerJob builds the CMF description of one job.
func (lw *lowerer) lowerJob(jb *jobBuild, idx int, g *grouping, topChain []plan.Node, topLimit int, tr *Translation) (*cmf.CommonJob, error) {
	opNames := make([]string, len(jb.ops))
	for i, op := range jb.ops {
		opNames[i] = op.Name()
	}
	path := lw.jobPath(idx)
	cj := &cmf.CommonJob{
		Name:   fmt.Sprintf("%s-%s-j%d[%s]", lw.opts.QueryName, lw.mode, idx, strings.Join(opNames, "+")),
		Output: path,
	}
	addOp := func(op cmf.Op) { cj.Ops = append(cj.Ops, op) }

	inJob := make(map[*correlation.Operation]bool, len(jb.ops))
	for _, op := range jb.ops {
		inJob[op] = true
	}

	// ---- Phase 1: classify stream inputs, group shareable scans ---------
	nextStream := 0
	newStreamID := func() int {
		id := nextStream
		nextStream++
		return id
	}
	slots := make(map[slotKey]slot)
	sharedByTable := make(map[string][]*sharedStream)
	var simpleScans []*sharedStream // scans lowered as independent inputs
	scanCount := make(map[string]int)
	for _, op := range jb.ops {
		for _, in := range op.Inputs {
			if in.Scan != nil {
				scanCount[in.Scan.Table]++
			}
		}
	}

	for _, op := range jb.ops {
		for i, in := range op.Inputs {
			if in.Scan == nil {
				continue
			}
			sk := slotKey{op.ID, i}
			ss := &sharedStream{key: sk, op: op, scan: in.Scan, chain: in.Chain, id: newStreamID()}
			if lw.share && scanCount[in.Scan.Table] > 1 {
				if kb, ok := lw.traceKeyToBase(op, i); ok {
					ss.keyBase = kb
					// Columns consumed only by map-side selection stay out
					// of the common value: when the whole chain is filters,
					// the demand above the top filter — which excludes the
					// filter conditions — is what the reduce side needs.
					ss.required = lw.requiredOf(in.Scan)
					if k := mapFilterPrefixLen(in.Chain); k > 0 && k == len(in.Chain) {
						ss.required = lw.requiredOf(in.Chain[0])
					}
					sharedByTable[in.Scan.Table] = append(sharedByTable[in.Scan.Table], ss)
					continue
				}
			}
			simpleScans = append(simpleScans, ss)
		}
	}
	// Demote shared groups whose streams disagree on the key base columns.
	for table, streams := range sharedByTable {
		ok := len(streams) > 1
		for _, s := range streams[1:] {
			if !intsEqual(s.keyBase, streams[0].keyBase) {
				ok = false
			}
		}
		if !ok {
			simpleScans = append(simpleScans, streams...)
			delete(sharedByTable, table)
		}
	}

	// ---- Phase 2: build inputs ------------------------------------------
	// Shared table inputs (deterministic order).
	tables := make([]string, 0, len(sharedByTable))
	for t := range sharedByTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, table := range tables {
		if err := lw.buildSharedInput(cj, table, sharedByTable[table], slots, addOp); err != nil {
			return nil, err
		}
	}
	// Simple scan inputs.
	sort.Slice(simpleScans, func(i, j int) bool { return simpleScans[i].id < simpleScans[j].id })
	for _, ss := range simpleScans {
		if err := lw.buildSimpleScanInput(cj, ss, slots); err != nil {
			return nil, err
		}
	}
	// Intermediate inputs (operation outputs from other jobs).
	for _, op := range jb.ops {
		for i, in := range op.Inputs {
			if in.Op == nil || inJob[in.Op] {
				continue
			}
			if err := lw.buildIntermediateInput(cj, op, i, in, newStreamID(), slots); err != nil {
				return nil, err
			}
		}
	}

	// ---- Phase 3: build operators in dependency order -------------------
	for _, op := range jb.ops {
		srcs := make([]cmf.Source, len(op.Inputs))
		effs := make([]effView, len(op.Inputs))
		for i, in := range op.Inputs {
			if in.Op != nil && inJob[in.Op] {
				stages, eff, err := lowerChain(lw.effOf[in.Op], in.Chain, lw.requiredOf)
				if err != nil {
					return nil, fmt.Errorf("%s input %d: %w", op.Name(), i, err)
				}
				srcs[i] = stagesToOps(stages, cmf.OpSource(in.Op.Name()),
					fmt.Sprintf("%s.in%d", op.Name(), i), addOp)
				effs[i] = eff
				continue
			}
			s, ok := slots[slotKey{op.ID, i}]
			if !ok {
				return nil, fmt.Errorf("internal: unresolved input %d of %s", i, op.Name())
			}
			srcs[i] = s.src
			effs[i] = s.eff
		}
		if err := lw.buildOp(cj, jb, op, srcs, effs, topLimit, addOp); err != nil {
			return nil, err
		}
	}

	// ---- Phase 4: outputs and the top chain ------------------------------
	var external []*correlation.Operation
	for _, op := range jb.ops {
		if op.Parent == nil || !inJob[op.Parent] {
			external = append(external, op)
		}
	}
	multi := len(external) > 1
	for _, op := range external {
		if op == lw.analysis.RootOp {
			stages, eff, err := lowerChain(lw.effOf[op], topChain, lw.requiredOf)
			if err != nil {
				return nil, fmt.Errorf("top chain: %w", err)
			}
			src := stagesToOps(stages, cmf.OpSource(op.Name()), "final", addOp)
			name := op.Name()
			if src.IsOp() {
				name = src.Op
			}
			tag := ""
			if multi {
				tag = "RESULT"
			}
			cj.Outputs = append(cj.Outputs, cmf.OutputSpec{Op: name, Tag: tag})
			tr.Output = path
			tr.OutputTag = tag
			tr.OutputSchema = eff.schema
			continue
		}
		tag := ""
		if multi {
			tag = op.Name()
		}
		cj.Outputs = append(cj.Outputs, cmf.OutputSpec{Op: op.Name(), Tag: tag})
		lw.written[op] = outputRef{path: path, tag: tag, eff: lw.effOf[op]}
	}
	return cj, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
