package translator

import (
	"fmt"

	"ysmart/internal/cmf"
	"ysmart/internal/correlation"
	"ysmart/internal/exec"
)

// buildOp lowers one operation onto the job's per-key dataflow graph.
func (lw *lowerer) buildOp(cj *cmf.CommonJob, jb *jobBuild, op *correlation.Operation, srcs []cmf.Source, effs []effView, topLimit int, addOp func(cmf.Op)) error {
	switch op.Kind {
	case correlation.KindJoin:
		j := op.Join
		effConcat := effs[0].concat(effs[1], j.Left.Schema().Len())
		var residual cmf.RowPred
		if j.Residual != nil {
			ev, err := exec.Compile(j.Residual, effConcat.schema)
			if err != nil {
				return fmt.Errorf("%s residual: %w", op.Name(), err)
			}
			residual = func(r exec.Row) (bool, error) {
				return exec.EvalPredicate(ev, r)
			}
		}
		addOp(&cmf.JoinOp{
			OpName:     op.Name(),
			Left:       srcs[0],
			Right:      srcs[1],
			LeftWidth:  len(effs[0].cols),
			RightWidth: len(effs[1].cols),
			Type:       j.Type,
			Residual:   residual,
		})
		lw.effOf[op] = effConcat
		return nil

	case correlation.KindAgg:
		agg := op.Agg
		childSchema := effs[0].schema
		groupFns := make([]cmf.RowFn, len(agg.GroupBy))
		for i, g := range agg.GroupBy {
			ev, err := exec.Compile(g, childSchema)
			if err != nil {
				return fmt.Errorf("%s group %s: %w", op.Name(), g.SQL(), err)
			}
			groupFns[i] = cmf.RowFn(ev)
		}
		aggFns := make([]cmf.AggFunc, len(agg.Aggs))
		kinds := make([]exec.AggKind, len(agg.Aggs))
		for i, spec := range agg.Aggs {
			kinds[i] = spec.Kind
			fn := cmf.AggFunc{Kind: spec.Kind}
			if spec.Arg != nil {
				ev, err := exec.Compile(spec.Arg, childSchema)
				if err != nil {
					return fmt.Errorf("%s aggregate %s: %w", op.Name(), spec.Name, err)
				}
				fn.Arg = cmf.RowFn(ev)
			}
			aggFns[i] = fn
		}
		aggOp := &cmf.AggOp{
			OpName:  op.Name(),
			In:      srcs[0],
			GroupBy: groupFns,
			Aggs:    aggFns,
		}
		// Map-side partial aggregation (Hive's hash-aggregate map phase)
		// applies to standalone aggregation jobs with decomposable
		// aggregates whose input is a mapper stream.
		if lw.combine && len(jb.ops) == 1 && !srcs[0].IsOp() && cmf.Decomposable(kinds) {
			aggOp.FromPartials = true
			cj.CombineOp = op.Name()
		}
		addOp(aggOp)
		if len(agg.GroupBy) == 0 {
			cj.NumReduceTasks = 1 // global aggregation runs in one reducer
		}
		lw.effOf[op] = fullView(agg.Schema())
		return nil

	case correlation.KindSort:
		s := op.Sort
		keys := make([]cmf.SortKey, len(s.Keys))
		for i, k := range s.Keys {
			ev, err := exec.Compile(k.Expr, effs[0].schema)
			if err != nil {
				return fmt.Errorf("%s key %s: %w", op.Name(), k.Expr.SQL(), err)
			}
			keys[i] = cmf.SortKey{Fn: cmf.RowFn(ev), Desc: k.Desc}
		}
		limit := 0
		if op == lw.analysis.RootOp {
			limit = topLimit
		}
		addOp(&cmf.SortOp{OpName: op.Name(), In: srcs[0], Keys: keys, Limit: limit})
		if !lw.parallelSort(op) {
			// A global LIMIT forces the classic single-reducer total order;
			// otherwise range-ordered keys let every reducer participate.
			cj.NumReduceTasks = 1
		}
		lw.effOf[op] = effs[0]
		return nil

	default:
		return fmt.Errorf("unknown operation kind %v", op.Kind)
	}
}
