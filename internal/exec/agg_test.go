package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ysmart/internal/sqlparser"
)

func TestAggKindOf(t *testing.T) {
	tests := []struct {
		sql  string
		want AggKind
	}{
		{"count(*)", AggCountStar},
		{"count(x)", AggCount},
		{"count(distinct x)", AggCountDistinct},
		{"sum(x)", AggSum},
		{"avg(x)", AggAvg},
		{"min(x)", AggMin},
		{"max(x)", AggMax},
	}
	for _, tt := range tests {
		stmt, err := sqlparser.Parse("SELECT " + tt.sql + " FROM t")
		if err != nil {
			t.Fatal(err)
		}
		f := stmt.Select[0].Expr.(*sqlparser.FuncCall)
		got, err := AggKindOf(f)
		if err != nil {
			t.Fatalf("AggKindOf(%s): %v", tt.sql, err)
		}
		if got != tt.want {
			t.Errorf("AggKindOf(%s) = %v, want %v", tt.sql, got, tt.want)
		}
	}
	if _, err := AggKindOf(&sqlparser.FuncCall{Name: "UPPER"}); err == nil {
		t.Error("AggKindOf(UPPER) should error")
	}
}

func feed(k AggKind, vals ...Value) Value {
	acc := NewAccumulator(k)
	for _, v := range vals {
		acc.Add(v)
	}
	return acc.Result()
}

func TestAccumulators(t *testing.T) {
	tests := []struct {
		name string
		kind AggKind
		in   []Value
		want Value
	}{
		{"count star counts everything", AggCountStar, []Value{Int(1), Null(), Str("x")}, Int(3)},
		{"count skips nulls", AggCount, []Value{Int(1), Null(), Int(2)}, Int(2)},
		{"count empty", AggCount, nil, Int(0)},
		{"count distinct", AggCountDistinct, []Value{Int(1), Int(2), Int(1), Null(), Int(2)}, Int(2)},
		{"count distinct strings", AggCountDistinct, []Value{Str("a"), Str("a"), Str("b")}, Int(2)},
		{"sum ints", AggSum, []Value{Int(1), Int(2), Int(3)}, Int(6)},
		{"sum with null", AggSum, []Value{Int(1), Null(), Int(2)}, Int(3)},
		{"sum promotes to float", AggSum, []Value{Int(1), Float(0.5)}, Float(1.5)},
		{"sum floats then int", AggSum, []Value{Float(0.5), Int(1)}, Float(1.5)},
		{"sum empty is null", AggSum, nil, Null()},
		{"sum only nulls is null", AggSum, []Value{Null(), Null()}, Null()},
		{"avg", AggAvg, []Value{Int(1), Int(2), Int(3)}, Float(2)},
		{"avg skips null", AggAvg, []Value{Int(2), Null(), Int(4)}, Float(3)},
		{"avg empty is null", AggAvg, nil, Null()},
		{"min ints", AggMin, []Value{Int(3), Int(1), Int(2)}, Int(1)},
		{"min skips null", AggMin, []Value{Null(), Int(5)}, Int(5)},
		{"min strings", AggMin, []Value{Str("b"), Str("a")}, Str("a")},
		{"min empty is null", AggMin, nil, Null()},
		{"max", AggMax, []Value{Int(3), Int(9), Int(2)}, Int(9)},
		{"max mixed numeric", AggMax, []Value{Int(3), Float(3.5)}, Float(3.5)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := feed(tt.kind, tt.in...); got != tt.want {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAggResultType(t *testing.T) {
	tests := []struct {
		kind  AggKind
		input Type
		want  Type
	}{
		{AggCountStar, TypeString, TypeInt},
		{AggCount, TypeFloat, TypeInt},
		{AggCountDistinct, TypeInt, TypeInt},
		{AggAvg, TypeInt, TypeFloat},
		{AggSum, TypeInt, TypeInt},
		{AggSum, TypeFloat, TypeFloat},
		{AggMin, TypeString, TypeString},
		{AggMax, TypeFloat, TypeFloat},
	}
	for _, tt := range tests {
		if got := tt.kind.ResultType(tt.input); got != tt.want {
			t.Errorf("%v.ResultType(%v) = %v, want %v", tt.kind, tt.input, got, tt.want)
		}
	}
}

// Property: SUM/COUNT/AVG agree with a direct computation over random
// int slices with NULLs sprinkled in.
func TestAggProperty(t *testing.T) {
	f := func(xs []int16, nullMask []bool) bool {
		sum := NewAccumulator(AggSum)
		count := NewAccumulator(AggCount)
		avg := NewAccumulator(AggAvg)
		var wantSum int64
		var wantN int64
		for i, x := range xs {
			v := Int(int64(x))
			if i < len(nullMask) && nullMask[i] {
				v = Null()
			} else {
				wantSum += int64(x)
				wantN++
			}
			sum.Add(v)
			count.Add(v)
			avg.Add(v)
		}
		if count.Result().I != wantN {
			return false
		}
		if wantN == 0 {
			return sum.Result().IsNull() && avg.Result().IsNull()
		}
		if sum.Result().I != wantSum {
			return false
		}
		return avg.Result().F == float64(wantSum)/float64(wantN)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: MIN <= every input <= MAX, and both are members of the input.
func TestMinMaxProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(20)
		minAcc := NewAccumulator(AggMin)
		maxAcc := NewAccumulator(AggMax)
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = Int(r.Int63n(1000))
			minAcc.Add(vals[i])
			maxAcc.Add(vals[i])
		}
		lo, hi := minAcc.Result(), maxAcc.Result()
		foundLo, foundHi := false, false
		for _, v := range vals {
			if Compare(v, lo) < 0 || Compare(v, hi) > 0 {
				t.Fatalf("min/max violated: %v not in [%v, %v]", v, lo, hi)
			}
			if Compare(v, lo) == 0 {
				foundLo = true
			}
			if Compare(v, hi) == 0 {
				foundHi = true
			}
		}
		if !foundLo || !foundHi {
			t.Fatal("min or max is not an input member")
		}
	}
}

// Property: COUNT DISTINCT equals the size of a reference set.
func TestCountDistinctProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		acc := NewAccumulator(AggCountDistinct)
		ref := make(map[uint8]struct{})
		for _, x := range xs {
			acc.Add(Int(int64(x)))
			ref[x] = struct{}{}
		}
		return acc.Result().I == int64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
