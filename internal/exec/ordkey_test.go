package exec

import (
	"math/rand"
	"testing"
)

// mixedCompare is the reference order EncodeOrderedKey must realize:
// component-wise Compare with desc flags flipping individual components.
func mixedCompare(a, b []Value, desc []bool) int {
	for i := range a {
		c := Compare(a[i], b[i])
		if i < len(desc) && desc[i] {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

func strCompare(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// TestOrderedKeyMatchesCompareProperty: for random value tuples, byte order
// of the encodings equals the reference order — including DESC components
// and cross-type comparisons.
func TestOrderedKeyMatchesCompareProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20000; trial++ {
		n := 1 + rng.Intn(3)
		desc := make([]bool, n)
		for i := range desc {
			desc[i] = rng.Intn(2) == 0
		}
		a := make([]Value, n)
		b := make([]Value, n)
		for i := 0; i < n; i++ {
			a[i] = randomValue(rng)
			if rng.Intn(3) == 0 {
				b[i] = a[i] // force ties so later components decide
			} else {
				b[i] = randomValue(rng)
			}
		}
		want := mixedCompare(a, b, desc)
		got := strCompare(EncodeOrderedKey(a, desc), EncodeOrderedKey(b, desc))
		if got != want {
			t.Fatalf("trial %d: order mismatch for %v vs %v (desc %v): encoded %d, want %d",
				trial, a, b, desc, got, want)
		}
	}
}

// TestOrderedKeyNullAndBoundaryStrings pins the tricky cases explicitly.
func TestOrderedKeyNullAndBoundaryStrings(t *testing.T) {
	asc := func(vals ...Value) string { return EncodeOrderedKey(vals, nil) }
	pairs := []struct {
		lo, hi Value
	}{
		{Null(), Bool(false)},
		{Bool(false), Bool(true)},
		{Bool(true), Int(-1 << 40)},
		{Int(-5), Int(-4)},
		{Int(-1), Int(0)},
		{Int(0), Float(0.5)},
		{Float(0.5), Int(1)},
		{Int(1 << 40), Str("")},
		{Str(""), Str("\x00")},
		{Str("\x00"), Str("\x00\x00")},
		{Str("\x00"), Str("\x01")},
		{Str("a"), Str("a\x00")},
		{Str("a\x00"), Str("a\x00b")},
		{Str("a\x00b"), Str("ab")},
		{Str("ab"), Str("b")},
	}
	for _, p := range pairs {
		if !(asc(p.lo) < asc(p.hi)) {
			t.Errorf("encoding order violated: %v should sort before %v", p.lo, p.hi)
		}
	}
	// Equal values encode identically.
	if asc(Int(3)) != asc(Float(3)) {
		t.Error("3 and 3.0 must encode equally (Compare treats them equal)")
	}
}

func TestOrderedKeyDescFlips(t *testing.T) {
	a := EncodeOrderedKey([]Value{Int(1), Str("x")}, []bool{true, false})
	b := EncodeOrderedKey([]Value{Int(2), Str("x")}, []bool{true, false})
	if !(b < a) {
		t.Error("desc on first component should flip its order")
	}
	// The second (asc) component still breaks ties normally.
	c := EncodeOrderedKey([]Value{Int(1), Str("a")}, []bool{true, false})
	d := EncodeOrderedKey([]Value{Int(1), Str("b")}, []bool{true, false})
	if !(c < d) {
		t.Error("asc tiebreaker must keep its order under a desc prefix")
	}
}
