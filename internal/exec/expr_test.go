package exec

import (
	"strings"
	"testing"
	"testing/quick"

	"ysmart/internal/sqlparser"
)

// compileExpr parses "SELECT <exprSQL> FROM t" and compiles the single item.
func compileExpr(t *testing.T, exprSQL string, s *Schema) Evaluator {
	t.Helper()
	stmt, err := sqlparser.Parse("SELECT " + exprSQL + " FROM t")
	if err != nil {
		t.Fatalf("parse %q: %v", exprSQL, err)
	}
	ev, err := Compile(stmt.Select[0].Expr, s)
	if err != nil {
		t.Fatalf("compile %q: %v", exprSQL, err)
	}
	return ev
}

func testSchema() *Schema {
	return NewSchema(
		Column{Table: "t", Name: "i", Type: TypeInt},
		Column{Table: "t", Name: "f", Type: TypeFloat},
		Column{Table: "t", Name: "s", Type: TypeString},
		Column{Table: "t", Name: "b", Type: TypeBool},
		Column{Table: "t", Name: "n", Type: TypeInt},
	)
}

func evalOn(t *testing.T, exprSQL string, row Row) Value {
	t.Helper()
	ev := compileExpr(t, exprSQL, testSchema())
	v, err := ev(row)
	if err != nil {
		t.Fatalf("eval %q: %v", exprSQL, err)
	}
	return v
}

var sampleRow = Row{Int(10), Float(2.5), Str("abc"), Bool(true), Null()}

func TestCompileColumnAndLiteral(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{"i", Int(10)},
		{"t.i", Int(10)},
		{"f", Float(2.5)},
		{"s", Str("abc")},
		{"b", Bool(true)},
		{"n", Null()},
		{"42", Int(42)},
		{"2.5", Float(2.5)},
		{"'hi'", Str("hi")},
		{"TRUE", Bool(true)},
		{"NULL", Null()},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.expr, sampleRow); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{"i + 1", Int(11)},
		{"i - 3", Int(7)},
		{"i * 2", Int(20)},
		{"i % 3", Int(1)},
		{"i / 4", Float(2.5)},  // division is always float
		{"i / 0", Null()},      // div by zero -> NULL (total function)
		{"i + f", Float(12.5)}, // int+float promotes
		{"f * 2", Float(5)},
		{"0.2 * i", Float(2)},
		{"i + n", Null()}, // NULL propagates
		{"n * 2", Null()},
		{"-i", Int(-10)},
		{"-f", Float(-2.5)},
		{"-n", Null()},
		{"i % 0", Null()},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.expr, sampleRow); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{"i = 10", Bool(true)},
		{"i <> 10", Bool(false)},
		{"i < 11", Bool(true)},
		{"i <= 10", Bool(true)},
		{"i > 10", Bool(false)},
		{"i >= 11", Bool(false)},
		{"f = 2.5", Bool(true)},
		{"i > f", Bool(true)}, // cross numeric comparison
		{"s = 'abc'", Bool(true)},
		{"s < 'abd'", Bool(true)},
		{"n = 0", Null()}, // NULL comparison -> NULL
		{"n <> 0", Null()},
		{"i = n", Null()},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.expr, sampleRow); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{"TRUE AND TRUE", Bool(true)},
		{"TRUE AND FALSE", Bool(false)},
		{"FALSE AND (n = 0)", Bool(false)}, // FALSE AND NULL = FALSE
		{"(n = 0) AND FALSE", Bool(false)},
		{"TRUE AND (n = 0)", Null()},    // TRUE AND NULL = NULL
		{"TRUE OR (n = 0)", Bool(true)}, // TRUE OR NULL = TRUE
		{"(n = 0) OR TRUE", Bool(true)},
		{"FALSE OR (n = 0)", Null()}, // FALSE OR NULL = NULL
		{"NOT (n = 0)", Null()},      // NOT NULL = NULL
		{"NOT FALSE", Bool(true)},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.expr, sampleRow); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestIsNullBetweenInCase(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{"n IS NULL", Bool(true)},
		{"i IS NULL", Bool(false)},
		{"n IS NOT NULL", Bool(false)},
		{"i BETWEEN 5 AND 15", Bool(true)},
		{"i BETWEEN 11 AND 15", Bool(false)},
		{"i NOT BETWEEN 11 AND 15", Bool(true)},
		{"n BETWEEN 1 AND 2", Null()},
		{"i IN (1, 10, 100)", Bool(true)},
		{"i IN (1, 2)", Bool(false)},
		{"i NOT IN (1, 2)", Bool(true)},
		{"n IN (1, 2)", Null()},
		{"i IN (1, n)", Null()},      // no match but NULL present
		{"i IN (10, n)", Bool(true)}, // match wins over NULL
		{"CASE WHEN i > 5 THEN 'big' ELSE 'small' END", Str("big")},
		{"CASE WHEN i > 50 THEN 'big' END", Null()},
		{"CASE WHEN n = 0 THEN 'x' ELSE 'y' END", Str("y")}, // NULL cond not taken
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.expr, sampleRow); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestScalarFuncs(t *testing.T) {
	tests := []struct {
		expr string
		want Value
	}{
		{"abs(-3)", Int(3)},
		{"abs(f)", Float(2.5)},
		{"upper(s)", Str("ABC")},
		{"lower('ABC')", Str("abc")},
		{"length(s)", Int(3)},
		{"coalesce(n, i)", Int(10)},
		{"coalesce(n, n)", Null()},
	}
	for _, tt := range tests {
		if got := evalOn(t, tt.expr, sampleRow); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	s := testSchema()
	bad := []string{
		"nosuch",
		"u.i",
		"sum(i)", // aggregate in scalar context
		"nosuchfunc(i)",
		"abs(i, f)",
	}
	for _, exprSQL := range bad {
		stmt, err := sqlparser.Parse("SELECT " + exprSQL + " FROM t")
		if err != nil {
			t.Fatalf("parse %q: %v", exprSQL, err)
		}
		if _, err := Compile(stmt.Select[0].Expr, s); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", exprSQL)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	tests := []string{
		"s + 1",   // arithmetic on string
		"-s",      // negate string
		"NOT i",   // NOT on int
		"i AND b", // AND on int
		"i = s",   // cross-type comparison int vs string
		"abs(s)",
	}
	for _, exprSQL := range tests {
		ev := compileExpr(t, exprSQL, testSchema())
		if _, err := ev(sampleRow); err == nil {
			t.Errorf("eval %q succeeded, want error", exprSQL)
		}
	}
}

func TestEvalPredicate(t *testing.T) {
	s := testSchema()
	truthy := compileExpr(t, "i > 5", s)
	falsy := compileExpr(t, "i > 50", s)
	nully := compileExpr(t, "n = 0", s)

	if ok, err := EvalPredicate(truthy, sampleRow); err != nil || !ok {
		t.Errorf("truthy = (%v, %v), want (true, nil)", ok, err)
	}
	if ok, err := EvalPredicate(falsy, sampleRow); err != nil || ok {
		t.Errorf("falsy = (%v, %v), want (false, nil)", ok, err)
	}
	if ok, err := EvalPredicate(nully, sampleRow); err != nil || ok {
		t.Errorf("NULL predicate = (%v, %v), want (false, nil)", ok, err)
	}
	if ok, err := EvalPredicate(nil, sampleRow); err != nil || !ok {
		t.Errorf("nil predicate = (%v, %v), want (true, nil)", ok, err)
	}
}

func TestAmbiguousAndUnknownColumns(t *testing.T) {
	s := NewSchema(
		Column{Table: "a", Name: "x", Type: TypeInt},
		Column{Table: "b", Name: "x", Type: TypeInt},
	)
	_, err := s.Resolve("", "x")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("unqualified x: err = %v, want ambiguous", err)
	}
	if idx, err := s.Resolve("b", "x"); err != nil || idx != 1 {
		t.Errorf("b.x = (%d, %v), want (1, nil)", idx, err)
	}
	_, err = s.Resolve("", "zzz")
	if err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("zzz: err = %v, want unknown", err)
	}
}

func TestInferType(t *testing.T) {
	s := testSchema()
	tests := []struct {
		expr string
		want Type
	}{
		{"i", TypeInt},
		{"f", TypeFloat},
		{"i + 1", TypeInt},
		{"i + f", TypeFloat},
		{"i / 2", TypeFloat},
		{"i > 1", TypeBool},
		{"i IS NULL", TypeBool},
		{"count(*)", TypeInt},
		{"avg(i)", TypeFloat},
		{"sum(i)", TypeInt},
		{"sum(f)", TypeFloat},
		{"max(s)", TypeString},
		{"upper(s)", TypeString},
		{"CASE WHEN b THEN 1 ELSE 2 END", TypeInt},
	}
	for _, tt := range tests {
		stmt, err := sqlparser.Parse("SELECT " + tt.expr + " FROM t")
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		got, err := InferType(stmt.Select[0].Expr, s)
		if err != nil {
			t.Fatalf("InferType(%q): %v", tt.expr, err)
		}
		if got != tt.want {
			t.Errorf("InferType(%q) = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

// Property: for random int pairs, the compiled arithmetic agrees with Go.
func TestArithmeticProperty(t *testing.T) {
	s := NewSchema(
		Column{Table: "t", Name: "x", Type: TypeInt},
		Column{Table: "t", Name: "y", Type: TypeInt},
	)
	stmt, err := sqlparser.Parse("SELECT x + y, x - y, x * y FROM t")
	if err != nil {
		t.Fatal(err)
	}
	var evs []Evaluator
	for _, item := range stmt.Select {
		ev, err := Compile(item.Expr, s)
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	f := func(x, y int32) bool {
		row := Row{Int(int64(x)), Int(int64(y))}
		add, _ := evs[0](row)
		sub, _ := evs[1](row)
		mul, _ := evs[2](row)
		return add.I == int64(x)+int64(y) &&
			sub.I == int64(x)-int64(y) &&
			mul.I == int64(x)*int64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
