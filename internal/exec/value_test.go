package exec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	tests := []struct {
		v    Value
		t    Type
		want string
	}{
		{Null(), TypeNull, "NULL"},
		{Int(42), TypeInt, "42"},
		{Int(-7), TypeInt, "-7"},
		{Float(2.5), TypeFloat, "2.5"},
		{Str("hi"), TypeString, "hi"},
		{Bool(true), TypeBool, "true"},
		{Bool(false), TypeBool, "false"},
	}
	for _, tt := range tests {
		if tt.v.T != tt.t {
			t.Errorf("%v type = %v, want %v", tt.v, tt.v.T, tt.t)
		}
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(1), Float(1.5), -1},
		{Float(1.5), Int(1), 1},
		{Float(2.0), Int(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Null(), Int(0), -1},        // NULL sorts first
		{Null(), Str(""), -1},       // before every type
		{Null(), Null(), 0},         // NULL == NULL for sorting
		{Bool(true), Int(-100), -1}, // type rank: bool < numeric
		{Int(5), Str("0"), -1},      // numeric < string
	}
	for _, tt := range tests {
		if got := Compare(tt.a, tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

// randomValue generates an arbitrary value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Null()
	case 1:
		return Int(r.Int63n(2000) - 1000)
	case 2:
		return Float(float64(r.Int63n(2000)-1000) / 8)
	case 3:
		letters := []byte("abc\tx\\yz\nNULL\\N")
		n := r.Intn(8)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return Str(string(b))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

// valueGen adapts randomValue to testing/quick.
type valueGen struct{ V Value }

// Generate implements quick.Generator.
func (valueGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(valueGen{V: randomValue(r)})
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b valueGen) bool {
		return Compare(a.V, b.V) == -Compare(b.V, a.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCompareIsTransitive(t *testing.T) {
	f := func(a, b, c valueGen) bool {
		x, y, z := a.V, b.V, c.V
		// If x <= y and y <= z then x <= z.
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCompareReflexive(t *testing.T) {
	f := func(a valueGen) bool { return Compare(a.V, a.V) == 0 }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRowCloneIndependent(t *testing.T) {
	r := Row{Int(1), Str("x")}
	c := r.Clone()
	c[0] = Int(99)
	if r[0].I != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestConcatAndNullRow(t *testing.T) {
	r := Concat(Row{Int(1)}, Row{Str("a"), Bool(true)})
	if len(r) != 3 || r[2].T != TypeBool {
		t.Errorf("Concat = %v", r)
	}
	n := NullRow(3)
	for i, v := range n {
		if !v.IsNull() {
			t.Errorf("NullRow[%d] = %v, want NULL", i, v)
		}
	}
}

func TestEqualTreatsNullEqual(t *testing.T) {
	if !Equal(Null(), Null()) {
		t.Error("Equal(NULL, NULL) should be true for grouping semantics")
	}
	if Equal(Int(1), Int(2)) {
		t.Error("Equal(1, 2) should be false")
	}
	if !Equal(Int(2), Float(2.0)) {
		t.Error("Equal(2, 2.0) should be true")
	}
}
