package exec

import (
	"fmt"
	"math"
	"strings"

	"ysmart/internal/sqlparser"
)

// Evaluator computes a value from a row. Compiled evaluators never mutate
// the row and are safe for concurrent use.
type Evaluator func(Row) (Value, error)

// Compile translates a scalar sqlparser expression into an evaluator bound
// to the given schema. Aggregate function calls are rejected: the planner
// rewrites them into column references of aggregation outputs before any
// expression reaches Compile.
func Compile(e sqlparser.Expr, s *Schema) (Evaluator, error) {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		idx, err := s.Resolve(x.Qualifier, x.Name)
		if err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			if idx >= len(r) {
				return Value{}, fmt.Errorf("row too short: index %d, len %d", idx, len(r))
			}
			return r[idx], nil
		}, nil

	case *sqlparser.Literal:
		v := literalValue(x)
		return func(Row) (Value, error) { return v, nil }, nil

	case *sqlparser.BinaryExpr:
		return compileBinary(x, s)

	case *sqlparser.UnaryExpr:
		inner, err := Compile(x.X, s)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case sqlparser.OpNeg:
			return func(r Row) (Value, error) {
				v, err := inner(r)
				if err != nil {
					return Value{}, err
				}
				switch v.T {
				case TypeNull:
					return Null(), nil
				case TypeInt:
					return Int(-v.I), nil
				case TypeFloat:
					return Float(-v.F), nil
				default:
					return Value{}, fmt.Errorf("cannot negate %s", v.T)
				}
			}, nil
		case sqlparser.OpNot:
			return func(r Row) (Value, error) {
				v, err := inner(r)
				if err != nil {
					return Value{}, err
				}
				if v.IsNull() {
					return Null(), nil
				}
				if v.T != TypeBool {
					return Value{}, fmt.Errorf("NOT applied to %s", v.T)
				}
				return Bool(!v.B), nil
			}, nil
		default:
			return nil, fmt.Errorf("unknown unary operator")
		}

	case *sqlparser.FuncCall:
		if x.IsAggregate() {
			return nil, fmt.Errorf("aggregate %s not allowed in scalar context", x.Name)
		}
		return compileScalarFunc(x, s)

	case *sqlparser.IsNullExpr:
		inner, err := Compile(x.X, s)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(r Row) (Value, error) {
			v, err := inner(r)
			if err != nil {
				return Value{}, err
			}
			return Bool(v.IsNull() != not), nil
		}, nil

	case *sqlparser.BetweenExpr:
		// x BETWEEN lo AND hi  ==  x >= lo AND x <= hi (three-valued).
		rewritten := &sqlparser.BinaryExpr{
			Op: sqlparser.OpAnd,
			L:  &sqlparser.BinaryExpr{Op: sqlparser.OpGe, L: x.X, R: x.Lo},
			R:  &sqlparser.BinaryExpr{Op: sqlparser.OpLe, L: x.X, R: x.Hi},
		}
		ev, err := Compile(rewritten, s)
		if err != nil {
			return nil, err
		}
		if !x.Not {
			return ev, nil
		}
		return func(r Row) (Value, error) {
			v, err := ev(r)
			if err != nil || v.IsNull() {
				return v, err
			}
			return Bool(!v.B), nil
		}, nil

	case *sqlparser.InListExpr:
		inner, err := Compile(x.X, s)
		if err != nil {
			return nil, err
		}
		items := make([]Evaluator, len(x.Items))
		for i, it := range x.Items {
			ev, err := Compile(it, s)
			if err != nil {
				return nil, err
			}
			items[i] = ev
		}
		not := x.Not
		return func(r Row) (Value, error) {
			v, err := inner(r)
			if err != nil {
				return Value{}, err
			}
			if v.IsNull() {
				return Null(), nil
			}
			sawNull := false
			for _, item := range items {
				iv, err := item(r)
				if err != nil {
					return Value{}, err
				}
				if iv.IsNull() {
					sawNull = true
					continue
				}
				eq, err := compareValues(sqlparser.OpEq, v, iv)
				if err != nil {
					return Value{}, err
				}
				if !eq.IsNull() && eq.B {
					return Bool(!not), nil
				}
			}
			if sawNull {
				return Null(), nil
			}
			return Bool(not), nil
		}, nil

	case *sqlparser.CaseExpr:
		type arm struct{ cond, then Evaluator }
		arms := make([]arm, len(x.Whens))
		for i, w := range x.Whens {
			c, err := Compile(w.Cond, s)
			if err != nil {
				return nil, err
			}
			t, err := Compile(w.Then, s)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{c, t}
		}
		var elseEv Evaluator
		if x.Else != nil {
			ev, err := Compile(x.Else, s)
			if err != nil {
				return nil, err
			}
			elseEv = ev
		}
		return func(r Row) (Value, error) {
			for _, a := range arms {
				cv, err := a.cond(r)
				if err != nil {
					return Value{}, err
				}
				if !cv.IsNull() && cv.T == TypeBool && cv.B {
					return a.then(r)
				}
			}
			if elseEv != nil {
				return elseEv(r)
			}
			return Null(), nil
		}, nil

	case *sqlparser.InSubqueryExpr:
		return nil, fmt.Errorf("IN (SELECT ...) is only supported as a top-level WHERE conjunct")

	default:
		return nil, fmt.Errorf("cannot compile expression %T", e)
	}
}

func literalValue(l *sqlparser.Literal) Value {
	switch l.Kind {
	case sqlparser.LitInt:
		return Int(l.Int)
	case sqlparser.LitFloat:
		return Float(l.Float)
	case sqlparser.LitString:
		return Str(l.Str)
	case sqlparser.LitBool:
		return Bool(l.Bool)
	default:
		return Null()
	}
}

func compileBinary(x *sqlparser.BinaryExpr, s *Schema) (Evaluator, error) {
	left, err := Compile(x.L, s)
	if err != nil {
		return nil, err
	}
	right, err := Compile(x.R, s)
	if err != nil {
		return nil, err
	}
	op := x.Op

	switch op {
	case sqlparser.OpAnd:
		return func(r Row) (Value, error) {
			lv, err := left(r)
			if err != nil {
				return Value{}, err
			}
			// Three-valued AND with short circuit on FALSE.
			if lv.T == TypeBool && !lv.B {
				return Bool(false), nil
			}
			rv, err := right(r)
			if err != nil {
				return Value{}, err
			}
			if rv.T == TypeBool && !rv.B {
				return Bool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			if lv.T != TypeBool || rv.T != TypeBool {
				return Value{}, fmt.Errorf("AND requires booleans, got %s and %s", lv.T, rv.T)
			}
			return Bool(true), nil
		}, nil
	case sqlparser.OpOr:
		return func(r Row) (Value, error) {
			lv, err := left(r)
			if err != nil {
				return Value{}, err
			}
			if lv.T == TypeBool && lv.B {
				return Bool(true), nil
			}
			rv, err := right(r)
			if err != nil {
				return Value{}, err
			}
			if rv.T == TypeBool && rv.B {
				return Bool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Null(), nil
			}
			if lv.T != TypeBool || rv.T != TypeBool {
				return Value{}, fmt.Errorf("OR requires booleans, got %s and %s", lv.T, rv.T)
			}
			return Bool(false), nil
		}, nil
	}

	return func(r Row) (Value, error) {
		lv, err := left(r)
		if err != nil {
			return Value{}, err
		}
		rv, err := right(r)
		if err != nil {
			return Value{}, err
		}
		if op.IsComparison() {
			return compareValues(op, lv, rv)
		}
		return arithmetic(op, lv, rv)
	}, nil
}

// compareValues implements SQL comparison with three-valued logic: any NULL
// operand yields NULL.
func compareValues(op sqlparser.BinaryOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	var c int
	switch {
	case a.IsNumeric() && b.IsNumeric():
		c = Compare(a, b)
	case a.T == b.T:
		c = Compare(a, b)
	default:
		return Value{}, fmt.Errorf("cannot compare %s with %s", a.T, b.T)
	}
	switch op {
	case sqlparser.OpEq:
		return Bool(c == 0), nil
	case sqlparser.OpNe:
		return Bool(c != 0), nil
	case sqlparser.OpLt:
		return Bool(c < 0), nil
	case sqlparser.OpLe:
		return Bool(c <= 0), nil
	case sqlparser.OpGt:
		return Bool(c > 0), nil
	case sqlparser.OpGe:
		return Bool(c >= 0), nil
	default:
		return Value{}, fmt.Errorf("not a comparison operator: %v", op)
	}
}

// arithmetic implements +, -, *, /, % with NULL propagation. Integer
// operands stay integral except for division, which always produces a
// float (matching Hive's double division).
func arithmetic(op sqlparser.BinaryOp, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null(), nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Value{}, fmt.Errorf("arithmetic on %s and %s", a.T, b.T)
	}
	if op == sqlparser.OpDiv {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		if bf == 0 {
			return Null(), nil // SQL engines raise; NULL keeps pipelines total
		}
		return Float(af / bf), nil
	}
	if a.T == TypeInt && b.T == TypeInt {
		switch op {
		case sqlparser.OpAdd:
			return Int(a.I + b.I), nil
		case sqlparser.OpSub:
			return Int(a.I - b.I), nil
		case sqlparser.OpMul:
			return Int(a.I * b.I), nil
		case sqlparser.OpMod:
			if b.I == 0 {
				return Null(), nil
			}
			return Int(a.I % b.I), nil
		}
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch op {
	case sqlparser.OpAdd:
		return Float(af + bf), nil
	case sqlparser.OpSub:
		return Float(af - bf), nil
	case sqlparser.OpMul:
		return Float(af * bf), nil
	case sqlparser.OpMod:
		if bf == 0 {
			return Null(), nil
		}
		return Float(math.Mod(af, bf)), nil
	default:
		return Value{}, fmt.Errorf("not an arithmetic operator: %v", op)
	}
}

// compileScalarFunc supports a handful of non-aggregate helpers.
func compileScalarFunc(x *sqlparser.FuncCall, s *Schema) (Evaluator, error) {
	args := make([]Evaluator, len(x.Args))
	for i, a := range x.Args {
		ev, err := Compile(a, s)
		if err != nil {
			return nil, err
		}
		args[i] = ev
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "ABS":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return v, err
			}
			switch v.T {
			case TypeInt:
				if v.I < 0 {
					return Int(-v.I), nil
				}
				return v, nil
			case TypeFloat:
				return Float(math.Abs(v.F)), nil
			default:
				return Value{}, fmt.Errorf("ABS of %s", v.T)
			}
		}, nil
	case "LOWER", "UPPER":
		if err := arity(1); err != nil {
			return nil, err
		}
		upper := x.Name == "UPPER"
		return func(r Row) (Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.T != TypeString {
				return Value{}, fmt.Errorf("%s of %s", x.Name, v.T)
			}
			if upper {
				return Str(strings.ToUpper(v.S)), nil
			}
			return Str(strings.ToLower(v.S)), nil
		}, nil
	case "LENGTH":
		if err := arity(1); err != nil {
			return nil, err
		}
		return func(r Row) (Value, error) {
			v, err := args[0](r)
			if err != nil || v.IsNull() {
				return v, err
			}
			if v.T != TypeString {
				return Value{}, fmt.Errorf("LENGTH of %s", v.T)
			}
			return Int(int64(len(v.S))), nil
		}, nil
	case "COALESCE":
		if len(args) == 0 {
			return nil, fmt.Errorf("COALESCE needs at least one argument")
		}
		return func(r Row) (Value, error) {
			for _, a := range args {
				v, err := a(r)
				if err != nil {
					return Value{}, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return Null(), nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown function %s", x.Name)
	}
}

// EvalPredicate runs a compiled predicate and reports whether the row
// passes: only a non-NULL TRUE passes (SQL WHERE semantics).
func EvalPredicate(ev Evaluator, r Row) (bool, error) {
	if ev == nil {
		return true, nil
	}
	v, err := ev(r)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.T != TypeBool {
		return false, fmt.Errorf("predicate evaluated to %s, want bool", v.T)
	}
	return v.B, nil
}

// InferType predicts the runtime type of an expression against a schema.
// It mirrors the evaluator's promotion rules and is used to type derived
// schemas. NULL literals infer as TypeNull.
func InferType(e sqlparser.Expr, s *Schema) (Type, error) {
	switch x := e.(type) {
	case *sqlparser.ColumnRef:
		idx, err := s.Resolve(x.Qualifier, x.Name)
		if err != nil {
			return 0, err
		}
		return s.Cols[idx].Type, nil
	case *sqlparser.Literal:
		switch x.Kind {
		case sqlparser.LitInt:
			return TypeInt, nil
		case sqlparser.LitFloat:
			return TypeFloat, nil
		case sqlparser.LitString:
			return TypeString, nil
		case sqlparser.LitBool:
			return TypeBool, nil
		default:
			return TypeNull, nil
		}
	case *sqlparser.BinaryExpr:
		if x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr || x.Op.IsComparison() {
			return TypeBool, nil
		}
		lt, err := InferType(x.L, s)
		if err != nil {
			return 0, err
		}
		rt, err := InferType(x.R, s)
		if err != nil {
			return 0, err
		}
		if x.Op == sqlparser.OpDiv {
			return TypeFloat, nil
		}
		if lt == TypeFloat || rt == TypeFloat {
			return TypeFloat, nil
		}
		return TypeInt, nil
	case *sqlparser.UnaryExpr:
		if x.Op == sqlparser.OpNot {
			return TypeBool, nil
		}
		return InferType(x.X, s)
	case *sqlparser.FuncCall:
		switch x.Name {
		case "COUNT", "LENGTH":
			return TypeInt, nil
		case "AVG":
			return TypeFloat, nil
		case "SUM", "MIN", "MAX", "ABS", "COALESCE":
			if x.Star || len(x.Args) == 0 {
				return TypeInt, nil
			}
			return InferType(x.Args[0], s)
		case "LOWER", "UPPER":
			return TypeString, nil
		default:
			return 0, fmt.Errorf("unknown function %s", x.Name)
		}
	case *sqlparser.IsNullExpr, *sqlparser.BetweenExpr, *sqlparser.InListExpr, *sqlparser.InSubqueryExpr:
		return TypeBool, nil
	case *sqlparser.CaseExpr:
		for _, w := range x.Whens {
			t, err := InferType(w.Then, s)
			if err != nil {
				return 0, err
			}
			if t != TypeNull {
				return t, nil
			}
		}
		if x.Else != nil {
			return InferType(x.Else, s)
		}
		return TypeNull, nil
	default:
		return 0, fmt.Errorf("cannot infer type of %T", e)
	}
}
