package exec

import (
	"fmt"

	"ysmart/internal/sqlparser"
)

// AggKind enumerates the aggregate functions of the paper's SQL subset.
type AggKind int

// Aggregate kinds.
const (
	AggCountStar AggKind = iota + 1
	AggCount
	AggCountDistinct
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (k AggKind) String() string {
	switch k {
	case AggCountStar:
		return "COUNT(*)"
	case AggCount:
		return "COUNT"
	case AggCountDistinct:
		return "COUNT(DISTINCT)"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// AggKindOf maps a parsed aggregate call to its kind.
func AggKindOf(f *sqlparser.FuncCall) (AggKind, error) {
	switch f.Name {
	case "COUNT":
		switch {
		case f.Star:
			return AggCountStar, nil
		case f.Distinct:
			return AggCountDistinct, nil
		default:
			return AggCount, nil
		}
	case "SUM":
		return AggSum, nil
	case "AVG":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	default:
		return 0, fmt.Errorf("not an aggregate function: %s", f.Name)
	}
}

// ResultType reports the output type of the aggregate for an input type.
func (k AggKind) ResultType(input Type) Type {
	switch k {
	case AggCountStar, AggCount, AggCountDistinct:
		return TypeInt
	case AggAvg:
		return TypeFloat
	default:
		return input
	}
}

// Accumulator accumulates values for one group of one aggregate.
type Accumulator interface {
	// Add feeds one input value. For COUNT(*) the value is ignored.
	Add(v Value)
	// Result returns the aggregate for the values added so far.
	Result() Value
}

// NewAccumulator creates an accumulator for the kind.
func NewAccumulator(k AggKind) Accumulator {
	switch k {
	case AggCountStar:
		return &countStarAcc{}
	case AggCount:
		return &countAcc{}
	case AggCountDistinct:
		return &countDistinctAcc{seen: make(map[string]struct{})}
	case AggSum:
		return &sumAcc{}
	case AggAvg:
		return &avgAcc{}
	case AggMin:
		return &minMaxAcc{min: true}
	case AggMax:
		return &minMaxAcc{}
	default:
		return nil
	}
}

type countStarAcc struct{ n int64 }

func (a *countStarAcc) Add(Value)     { a.n++ }
func (a *countStarAcc) Result() Value { return Int(a.n) }

type countAcc struct{ n int64 }

func (a *countAcc) Add(v Value) {
	if !v.IsNull() {
		a.n++
	}
}
func (a *countAcc) Result() Value { return Int(a.n) }

type countDistinctAcc struct{ seen map[string]struct{} }

func (a *countDistinctAcc) Add(v Value) {
	if v.IsNull() {
		return
	}
	a.seen[EncodeField(v)] = struct{}{}
}
func (a *countDistinctAcc) Result() Value { return Int(int64(len(a.seen))) }

// sumAcc keeps integer sums integral and switches to float on the first
// float input (Hive semantics: SUM(int) is bigint, SUM(double) is double).
type sumAcc struct {
	any     bool
	isFloat bool
	i       int64
	f       float64
}

func (a *sumAcc) Add(v Value) {
	switch v.T {
	case TypeInt:
		a.any = true
		if a.isFloat {
			a.f += float64(v.I)
		} else {
			a.i += v.I
		}
	case TypeFloat:
		a.any = true
		if !a.isFloat {
			a.isFloat = true
			a.f = float64(a.i)
		}
		a.f += v.F
	}
}

func (a *sumAcc) Result() Value {
	if !a.any {
		return Null() // SUM of no rows is NULL
	}
	if a.isFloat {
		return Float(a.f)
	}
	return Int(a.i)
}

type avgAcc struct {
	n   int64
	sum float64
}

func (a *avgAcc) Add(v Value) {
	if f, ok := v.AsFloat(); ok {
		a.n++
		a.sum += f
	}
}

func (a *avgAcc) Result() Value {
	if a.n == 0 {
		return Null()
	}
	return Float(a.sum / float64(a.n))
}

type minMaxAcc struct {
	min bool
	any bool
	cur Value
}

func (a *minMaxAcc) Add(v Value) {
	if v.IsNull() {
		return
	}
	if !a.any {
		a.any = true
		a.cur = v
		return
	}
	c := Compare(v, a.cur)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.cur = v
	}
}

func (a *minMaxAcc) Result() Value {
	if !a.any {
		return Null()
	}
	return a.cur
}
