package exec

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a schema. Table is the binding
// (table name or alias) the column is reachable through; it may be empty
// for computed columns.
type Column struct {
	Table string
	Name  string
	Type  Type
	// Hidden excludes the column from unqualified name resolution. The
	// planner hides columns it introduces internally (e.g. the subquery
	// side of a semi-join) so they never shadow user-visible names;
	// qualified references still resolve.
	Hidden bool
}

// QualifiedName renders table.name, or just name when unqualified.
func (c Column) QualifiedName() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Schema is an ordered list of columns. Column name matching is
// case-insensitive, mirroring SQL identifier semantics.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// AmbiguousColumnError reports a column reference that matches more than one
// schema column.
type AmbiguousColumnError struct{ Name string }

func (e *AmbiguousColumnError) Error() string {
	return fmt.Sprintf("column %q is ambiguous", e.Name)
}

// UnknownColumnError reports a column reference with no match.
type UnknownColumnError struct{ Name string }

func (e *UnknownColumnError) Error() string {
	return fmt.Sprintf("unknown column %q", e.Name)
}

// Resolve finds the index of a (possibly qualified) column reference.
// An empty qualifier matches any table; a non-empty qualifier must match
// the column's Table binding exactly (case-insensitively).
func (s *Schema) Resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.Cols {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier == "" && c.Hidden {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Table, qualifier) {
			continue
		}
		if found >= 0 {
			full := name
			if qualifier != "" {
				full = qualifier + "." + name
			}
			return 0, &AmbiguousColumnError{Name: full}
		}
		found = i
	}
	if found < 0 {
		full := name
		if qualifier != "" {
			full = qualifier + "." + name
		}
		return 0, &UnknownColumnError{Name: full}
	}
	return found, nil
}

// Rebind returns a copy of the schema with every column's Table set to
// binding — used when a derived table output is given an alias.
func (s *Schema) Rebind(binding string) *Schema {
	out := &Schema{Cols: make([]Column, len(s.Cols))}
	for i, c := range s.Cols {
		c.Table = binding
		out.Cols[i] = c
	}
	return out
}

// Concat returns a schema with s's columns followed by t's.
func (s *Schema) Concat(t *Schema) *Schema {
	out := &Schema{Cols: make([]Column, 0, len(s.Cols)+len(t.Cols))}
	out.Cols = append(out.Cols, s.Cols...)
	out.Cols = append(out.Cols, t.Cols...)
	return out
}

// String renders the schema as "(table.col type, ...)".
func (s *Schema) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.QualifiedName() + " " + c.Type.String())
	}
	sb.WriteByte(')')
	return sb.String()
}
