package exec

import (
	"math"
)

// EncodeOrderedKey encodes a list of values into a string whose
// lexicographic byte order equals the (Compare, desc-flag) order of the
// values — a memcomparable encoding, the same idea Hadoop's
// TotalOrderPartitioner relies on. Distributed ORDER BY jobs key their map
// output with it, so range partitions (and the engine's sorted key
// iteration) yield a total order without funnelling every row through one
// reducer.
//
// desc[i] inverts the i-th component's order; a nil desc means all
// ascending. Numeric components compare int/float uniformly through
// float64, so integers beyond 2^53 may collide; the workload's keys are
// far below that.
func EncodeOrderedKey(vals []Value, desc []bool) string {
	var b []byte
	for i, v := range vals {
		start := len(b)
		b = appendOrdered(b, v)
		if i < len(desc) && desc[i] {
			for j := start; j < len(b); j++ {
				b[j] = ^b[j]
			}
		}
	}
	return string(b)
}

// Component tags follow the total order of typeRank: NULL sorts first.
const (
	ordTagNull   = 0x01
	ordTagBool   = 0x02
	ordTagNumber = 0x03
	ordTagString = 0x04
)

func appendOrdered(b []byte, v Value) []byte {
	switch v.T {
	case TypeNull:
		return append(b, ordTagNull)
	case TypeBool:
		if v.B {
			return append(b, ordTagBool, 0x01)
		}
		return append(b, ordTagBool, 0x00)
	case TypeInt, TypeFloat:
		f, _ := v.AsFloat()
		bits := math.Float64bits(f)
		// Flip so that bigger floats get bigger unsigned bit patterns:
		// negative numbers invert entirely, non-negatives set the sign bit.
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		return append(b,
			ordTagNumber,
			byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
			byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
	case TypeString:
		b = append(b, ordTagString)
		// Escape 0x00 as (0x00, 0xFF) and terminate with (0x00, 0x00):
		// the terminator sorts below any escaped or plain content byte, so
		// prefixes order first, as string comparison requires.
		for i := 0; i < len(v.S); i++ {
			if v.S[i] == 0x00 {
				b = append(b, 0x00, 0xFF)
			} else {
				b = append(b, v.S[i])
			}
		}
		return append(b, 0x00, 0x00)
	default:
		return append(b, ordTagNull)
	}
}
