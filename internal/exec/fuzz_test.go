package exec

import (
	"math"
	"strings"
	"testing"
)

// FuzzDecodeRowUntyped asserts the codec is total on arbitrary input
// (decode either succeeds or errors, never panics) and idempotent on its
// own output: re-encoding a decoded row and decoding again is stable.
func FuzzDecodeRowUntyped(f *testing.F) {
	seeds := []string{
		"",
		"1\t2.5\ttext\ttrue",
		`\N`,
		`a\tb\\c\nd`,
		"\t\t",
		`x\qy`, // invalid escape
		"-0.0\tNaN\t+Inf",
		"9223372036854775807\t-9223372036854775808",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		row, err := DecodeRowUntyped(line)
		if err != nil {
			return
		}
		enc := EncodeRow(row)
		again, err := DecodeRowUntyped(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %q -> %q: %v", line, enc, err)
		}
		if EncodeRow(again) != enc {
			t.Fatalf("codec not idempotent: %q -> %q -> %q", line, enc, EncodeRow(again))
		}
	})
}

// FuzzOrderedKey checks the memcomparable property EncodeOrderedKey exists
// for: byte order of the encodings must equal (Compare, desc-flag) order of
// the value lists, and Compare-equal lists must encode identically. There
// is deliberately no decoder, so order preservation is the whole contract.
//
// Documented collisions are skipped rather than asserted around: NaN
// (Compare treats it as equal to everything) and integers at or beyond
// 2^53 (encoded through float64). -0.0 is normalized to +0.0 — the two
// compare equal but have distinct float bit patterns.
func FuzzOrderedKey(f *testing.F) {
	f.Add("1\t2.5\ttext\ttrue", "1\t2.5\ttext\tfalse", uint8(0))
	f.Add(`\N`+"\tabc", "0\tabd", uint8(2))
	f.Add("-1.5\t-2", "1\t-2", uint8(3))
	f.Add("a", "a\t0", uint8(1))
	f.Add("prefix", "prefixer", uint8(1))
	f.Fuzz(func(t *testing.T, la, lb string, descBits uint8) {
		ra, ok := normalizedRow(la)
		if !ok {
			return
		}
		rb, ok := normalizedRow(lb)
		if !ok {
			return
		}
		n := len(ra)
		if len(rb) < n {
			n = len(rb)
		}
		desc := make([]bool, n)
		for i := range desc {
			desc[i] = descBits&(1<<(i%8)) != 0
		}

		want := 0
		for i := 0; i < n && want == 0; i++ {
			c := Compare(ra[i], rb[i])
			if desc[i] {
				c = -c
			}
			want = c
		}
		if want == 0 {
			// Component encodings are prefix-free, so on an equal common
			// prefix the row with fewer components sorts first.
			switch {
			case len(ra) < len(rb):
				want = -1
			case len(ra) > len(rb):
				want = 1
			}
		}

		ka := EncodeOrderedKey(ra, desc)
		kb := EncodeOrderedKey(rb, desc)
		if got := sign(strings.Compare(ka, kb)); got != want {
			t.Fatalf("byte order %d != value order %d for %v vs %v (desc %v)", got, want, ra, rb, desc)
		}
		if want == 0 && ka != kb {
			t.Fatalf("Compare-equal rows encode differently: %v vs %v -> %x vs %x", ra, rb, ka, kb)
		}
	})
}

// normalizedRow decodes a fuzz line and rewrites it into the domain where
// the ordered-key encoding is injective on Compare classes.
func normalizedRow(line string) (Row, bool) {
	row, err := DecodeRowUntyped(line)
	if err != nil {
		return nil, false
	}
	for i, v := range row {
		switch v.T {
		case TypeFloat:
			if math.IsNaN(v.F) {
				return nil, false
			}
			if v.F == 0 {
				row[i] = Float(0)
			}
		case TypeInt:
			if v.I >= 1<<53 || v.I <= -(1<<53) {
				return nil, false
			}
		}
	}
	return row, true
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}
