package exec

import "testing"

// FuzzDecodeRowUntyped asserts the codec is total on arbitrary input
// (decode either succeeds or errors, never panics) and idempotent on its
// own output: re-encoding a decoded row and decoding again is stable.
func FuzzDecodeRowUntyped(f *testing.F) {
	seeds := []string{
		"",
		"1\t2.5\ttext\ttrue",
		`\N`,
		`a\tb\\c\nd`,
		"\t\t",
		`x\qy`, // invalid escape
		"-0.0\tNaN\t+Inf",
		"9223372036854775807\t-9223372036854775808",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		row, err := DecodeRowUntyped(line)
		if err != nil {
			return
		}
		enc := EncodeRow(row)
		again, err := DecodeRowUntyped(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %q -> %q: %v", line, enc, err)
		}
		if EncodeRow(again) != enc {
			t.Fatalf("codec not idempotent: %q -> %q -> %q", line, enc, EncodeRow(again))
		}
	})
}
