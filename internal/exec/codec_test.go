package exec

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeFieldBasics(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Null(), `\N`},
		{Int(42), "42"},
		{Int(-1), "-1"},
		{Float(2.5), "2.5"},
		{Float(3), "3.0"}, // floats always marked so type survives
		{Str("plain"), "plain"},
		{Str("a\tb"), `a\tb`},
		{Str("a\nb"), `a\nb`},
		{Str(`a\b`), `a\\b`},
		{Str(`\N`), `\\N`}, // literal backslash-N is not NULL
		{Bool(true), "true"},
	}
	for _, tt := range tests {
		if got := EncodeField(tt.v); got != tt.want {
			t.Errorf("EncodeField(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestDecodeFieldTyped(t *testing.T) {
	tests := []struct {
		field string
		typ   Type
		want  Value
	}{
		{`\N`, TypeInt, Null()},
		{"42", TypeInt, Int(42)},
		{"2.5", TypeFloat, Float(2.5)},
		{"3.0", TypeFloat, Float(3)},
		{"true", TypeBool, Bool(true)},
		{"false", TypeBool, Bool(false)},
		{`a\tb`, TypeString, Str("a\tb")},
		{"x", TypeString, Str("x")},
	}
	for _, tt := range tests {
		got, err := DecodeField(tt.field, tt.typ)
		if err != nil {
			t.Errorf("DecodeField(%q, %v): %v", tt.field, tt.typ, err)
			continue
		}
		if got != tt.want {
			t.Errorf("DecodeField(%q, %v) = %v, want %v", tt.field, tt.typ, got, tt.want)
		}
	}
}

func TestDecodeFieldErrors(t *testing.T) {
	tests := []struct {
		field string
		typ   Type
	}{
		{"abc", TypeInt},
		{"abc", TypeFloat},
		{"maybe", TypeBool},
		{`a\qb`, TypeString}, // unknown escape
		{`a\`, TypeString},   // dangling escape
	}
	for _, tt := range tests {
		if _, err := DecodeField(tt.field, tt.typ); err == nil {
			t.Errorf("DecodeField(%q, %v) succeeded, want error", tt.field, tt.typ)
		}
	}
}

func TestRowRoundTripTyped(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Type: TypeInt},
		Column{Name: "b", Type: TypeString},
		Column{Name: "c", Type: TypeFloat},
		Column{Name: "d", Type: TypeBool},
	)
	rows := []Row{
		{Int(1), Str("x"), Float(1.5), Bool(true)},
		{Null(), Str("tab\there"), Null(), Bool(false)},
		{Int(-9), Str(""), Float(0), Null()},
	}
	for _, r := range rows {
		line := EncodeRow(r)
		got, err := DecodeRow(line, s)
		if err != nil {
			t.Fatalf("DecodeRow(%q): %v", line, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("round trip %v -> %q -> %v", r, line, got)
		}
	}
}

func TestDecodeRowFieldCountMismatch(t *testing.T) {
	s := NewSchema(Column{Name: "a", Type: TypeInt})
	if _, err := DecodeRow("1\t2", s); err == nil {
		t.Error("want field-count error")
	}
}

// Property: EncodeRow/DecodeRowUntyped round-trips any row of random values
// (strings that look like numbers excepted — untyped decode infers type from
// syntax, so we regenerate those as typed checks below).
func TestUntypedRoundTripProperty(t *testing.T) {
	f := func(g1, g2, g3 valueGen) bool {
		row := Row{g1.V, g2.V, g3.V}
		line := EncodeRow(row)
		got, err := DecodeRowUntyped(line)
		if err != nil {
			return false
		}
		if len(got) != len(row) {
			return false
		}
		for i := range row {
			want := row[i]
			// A string whose text parses as a number/bool/null legitimately
			// decodes as that type under untyped decoding; skip those.
			if want.T == TypeString && looksTyped(want.S) {
				continue
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func looksTyped(s string) bool {
	if s == "" || s == "true" || s == "false" {
		return true
	}
	v, err := DecodeField(EncodeField(Str(s)), TypeNull)
	return err == nil && v.T != TypeString
}

// Property: typed round trip is exact for schema-typed rows.
func TestTypedRoundTripProperty(t *testing.T) {
	schema := NewSchema(
		Column{Name: "i", Type: TypeInt},
		Column{Name: "f", Type: TypeFloat},
		Column{Name: "s", Type: TypeString},
		Column{Name: "b", Type: TypeBool},
	)
	gen := func(r *rand.Rand, typ Type) Value {
		if r.Intn(8) == 0 {
			return Null()
		}
		switch typ {
		case TypeInt:
			return Int(r.Int63n(1e6) - 5e5)
		case TypeFloat:
			return Float(float64(r.Int63n(1e6)-5e5) / 16)
		case TypeString:
			return randomStringValue(r)
		default:
			return Bool(r.Intn(2) == 0)
		}
	}
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		row := Row{
			gen(r, TypeInt), gen(r, TypeFloat), gen(r, TypeString), gen(r, TypeBool),
		}
		line := EncodeRow(row)
		got, err := DecodeRow(line, schema)
		if err != nil {
			t.Fatalf("trial %d: DecodeRow(%q): %v", trial, line, err)
		}
		if !reflect.DeepEqual(got, row) {
			t.Fatalf("trial %d: %v -> %q -> %v", trial, row, line, got)
		}
	}
}

func randomStringValue(r *rand.Rand) Value {
	alphabet := []string{"a", "b", "\t", "\n", "\r", `\`, `\N`, "N", "0", "1.5", " "}
	n := r.Intn(6)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(alphabet[r.Intn(len(alphabet))])
	}
	return Str(sb.String())
}

// Property: the key encoding is injective — different value lists never
// produce the same key.
func TestEncodeKeyInjective(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	seen := make(map[string]Row)
	for trial := 0; trial < 5000; trial++ {
		n := 1 + r.Intn(3)
		row := make(Row, n)
		for i := range row {
			row[i] = randomValue(r)
		}
		key := EncodeKey(row)
		if prev, ok := seen[key]; ok {
			if !rowsIdentical(prev, row) {
				t.Fatalf("collision: %v and %v both encode to %q", prev, row, key)
			}
			continue
		}
		seen[key] = row.Clone()
	}
}

func rowsIdentical(a, b Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
