package exec

import (
	"strings"
	"testing"
)

func TestColumnQualifiedName(t *testing.T) {
	if got := (Column{Table: "t", Name: "c"}).QualifiedName(); got != "t.c" {
		t.Errorf("QualifiedName = %q", got)
	}
	if got := (Column{Name: "c"}).QualifiedName(); got != "c" {
		t.Errorf("unqualified = %q", got)
	}
}

func TestSchemaResolveCaseInsensitive(t *testing.T) {
	s := NewSchema(
		Column{Table: "Orders", Name: "O_OrderKey", Type: TypeInt},
	)
	for _, ref := range [][2]string{
		{"orders", "o_orderkey"},
		{"ORDERS", "O_ORDERKEY"},
		{"", "o_orderkey"},
	} {
		idx, err := s.Resolve(ref[0], ref[1])
		if err != nil || idx != 0 {
			t.Errorf("Resolve(%q, %q) = (%d, %v)", ref[0], ref[1], idx, err)
		}
	}
}

func TestSchemaRebind(t *testing.T) {
	s := NewSchema(
		Column{Table: "old", Name: "a", Type: TypeInt},
		Column{Name: "b", Type: TypeString},
	)
	r := s.Rebind("alias")
	for _, c := range r.Cols {
		if c.Table != "alias" {
			t.Errorf("column %s not rebound", c.Name)
		}
	}
	// The original is untouched.
	if s.Cols[0].Table != "old" {
		t.Error("Rebind mutated the original schema")
	}
	if _, err := r.Resolve("alias", "b"); err != nil {
		t.Errorf("rebound column not resolvable: %v", err)
	}
}

func TestSchemaConcat(t *testing.T) {
	a := NewSchema(Column{Name: "x", Type: TypeInt})
	b := NewSchema(Column{Name: "y", Type: TypeString}, Column{Name: "z", Type: TypeBool})
	c := a.Concat(b)
	if c.Len() != 3 || c.Cols[2].Name != "z" {
		t.Errorf("Concat = %s", c)
	}
	// The result is independent of its inputs.
	c.Cols[0].Name = "mutated"
	if a.Cols[0].Name != "x" {
		t.Error("Concat shares column storage")
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema(
		Column{Table: "t", Name: "a", Type: TypeInt},
		Column{Name: "b", Type: TypeFloat},
	)
	got := s.String()
	if !strings.Contains(got, "t.a int") || !strings.Contains(got, "b float") {
		t.Errorf("String = %q", got)
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		TypeNull:   "null",
		TypeInt:    "int",
		TypeFloat:  "float",
		TypeString: "string",
		TypeBool:   "bool",
		Type(99):   "Type(99)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}
