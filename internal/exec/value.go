// Package exec provides the runtime data model shared by every executor in
// the repository: typed values, rows, schemas, a Hive-style tab-delimited
// row codec, a compiler from sqlparser expressions to evaluators, and
// aggregate accumulators. Both the MapReduce reducers and the single-node
// DBMS executor are built on this package.
package exec

import (
	"fmt"
	"strconv"
)

// Type identifies the runtime type of a Value.
type Type uint8

// Runtime types.
const (
	TypeNull Type = iota + 1
	TypeInt
	TypeFloat
	TypeString
	TypeBool
)

func (t Type) String() string {
	switch t {
	case TypeNull:
		return "null"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeString:
		return "string"
	case TypeBool:
		return "bool"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a dynamically typed SQL value. The zero Value is NOT valid; use
// the constructors. NULL is represented by TypeNull.
type Value struct {
	T Type
	I int64
	F float64
	S string
	B bool
}

// Null returns the SQL NULL value.
func Null() Value { return Value{T: TypeNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{T: TypeInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{T: TypeFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{T: TypeString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{T: TypeBool, B: b} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.T == TypeInt || v.T == TypeFloat }

// AsFloat converts a numeric value to float64. ok is false for
// non-numeric values.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.T {
	case TypeInt:
		return float64(v.I), true
	case TypeFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// String renders the value for display (not for the row codec).
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeString:
		return v.S
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// typeRank orders types for the cross-type branch of Compare. It exists only
// to make sorting total; well-typed queries never compare across ranks.
func typeRank(t Type) int {
	switch t {
	case TypeNull:
		return 0
	case TypeBool:
		return 1
	case TypeInt, TypeFloat:
		return 2
	case TypeString:
		return 3
	default:
		return 4
	}
}

// Compare imposes a total order for sorting and grouping: NULL sorts before
// everything; ints and floats compare numerically with each other; bools
// order false < true; strings order lexicographically. Values of different
// non-numeric types order by an arbitrary fixed type rank.
func Compare(a, b Value) int {
	ra, rb := typeRank(a.T), typeRank(b.T)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.T {
	case TypeNull:
		return 0
	case TypeBool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	case TypeInt:
		if b.T == TypeInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		return compareFloat(float64(a.I), b.F)
	case TypeFloat:
		bf, _ := b.AsFloat()
		return compareFloat(a.F, bf)
	case TypeString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality treating NULL = NULL as true. Use Compare==0
// semantics; for three-valued logic use the expression evaluator instead.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Row is an ordered tuple of values positioned by a Schema.
type Row []Value

// Clone returns a copy of the row sharing no slice storage.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row that is r followed by s.
func Concat(r, s Row) Row {
	out := make(Row, 0, len(r)+len(s))
	out = append(out, r...)
	out = append(out, s...)
	return out
}

// NullRow returns a row of n NULLs (used for outer-join padding).
func NullRow(n int) Row {
	out := make(Row, n)
	for i := range out {
		out[i] = Null()
	}
	return out
}
