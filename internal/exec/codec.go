package exec

import (
	"fmt"
	"strconv"
	"strings"
)

// The row codec renders rows as tab-separated fields, one row per line,
// in the style of Hive's default text SerDe: NULL is `\N`, and tab,
// newline, carriage return and backslash are backslash-escaped so the
// encoding is injective. Floats always carry a '.' or exponent so that
// DecodeField can recover their type without a schema.

const nullField = `\N`

// EncodeField renders a single value as a codec field.
func EncodeField(v Value) string {
	switch v.T {
	case TypeNull:
		return nullField
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && s != "NaN" {
			s += ".0"
		}
		return s
	case TypeString:
		return escapeString(v.S)
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return nullField
	}
}

func escapeString(s string) string {
	if !strings.ContainsAny(s, "\\\t\n\r") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '\t':
			sb.WriteString(`\t`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

func unescapeString(s string) (string, error) {
	if !strings.Contains(s, `\`) {
		return s, nil
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			sb.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling escape in field %q", s)
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case 't':
			sb.WriteByte('\t')
		case 'n':
			sb.WriteByte('\n')
		case 'r':
			sb.WriteByte('\r')
		case 'N':
			// `\N` alone means NULL; embedded it round-trips as literal.
			sb.WriteString("N")
		default:
			return "", fmt.Errorf("unknown escape %q in field %q", s[i], s)
		}
	}
	return sb.String(), nil
}

// DecodeField parses a field produced by EncodeField into a value of the
// given type. With TypeNull as the expected type the field's own syntax
// decides (used for schema-less intermediate data): integers, floats,
// true/false and NULL are recognized, anything else is a string.
func DecodeField(field string, t Type) (Value, error) {
	if field == nullField {
		return Null(), nil
	}
	switch t {
	case TypeInt:
		i, err := strconv.ParseInt(field, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse int field %q: %w", field, err)
		}
		return Int(i), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse float field %q: %w", field, err)
		}
		return Float(f), nil
	case TypeBool:
		switch field {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		}
		return Value{}, fmt.Errorf("parse bool field %q", field)
	case TypeString:
		s, err := unescapeString(field)
		if err != nil {
			return Value{}, err
		}
		return Str(s), nil
	case TypeNull:
		// Untyped: infer from syntax.
		if i, err := strconv.ParseInt(field, 10, 64); err == nil {
			return Int(i), nil
		}
		if strings.ContainsAny(field, ".eE") || strings.Contains(field, "Inf") || field == "NaN" {
			if f, err := strconv.ParseFloat(field, 64); err == nil {
				return Float(f), nil
			}
		}
		if field == "true" {
			return Bool(true), nil
		}
		if field == "false" {
			return Bool(false), nil
		}
		s, err := unescapeString(field)
		if err != nil {
			return Value{}, err
		}
		return Str(s), nil
	default:
		return Value{}, fmt.Errorf("decode field: unsupported type %v", t)
	}
}

// EncodeRow renders a row as tab-separated fields.
func EncodeRow(r Row) string {
	if len(r) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, v := range r {
		if i > 0 {
			sb.WriteByte('\t')
		}
		sb.WriteString(EncodeField(v))
	}
	return sb.String()
}

// DecodeRow parses a tab-separated line into a row using the schema's
// column types.
func DecodeRow(line string, s *Schema) (Row, error) {
	fields := strings.Split(line, "\t")
	if len(fields) != len(s.Cols) {
		return nil, fmt.Errorf("row has %d fields, schema %s has %d", len(fields), s, len(s.Cols))
	}
	row := make(Row, len(fields))
	for i, f := range fields {
		v, err := DecodeField(f, s.Cols[i].Type)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", s.Cols[i].QualifiedName(), err)
		}
		row[i] = v
	}
	return row, nil
}

// DecodeRowUntyped parses a tab-separated line inferring each field's type
// from its syntax. Used for intermediate MapReduce values where only field
// count is known.
func DecodeRowUntyped(line string) (Row, error) {
	if line == "" {
		return Row{}, nil
	}
	fields := strings.Split(line, "\t")
	row := make(Row, len(fields))
	for i, f := range fields {
		v, err := DecodeField(f, TypeNull)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// EncodeKey renders a list of values as a grouping/partition key. The
// encoding is injective (delegates to EncodeRow) and preserves nothing
// about ordering; use Compare on decoded values to sort keys.
func EncodeKey(vals []Value) string { return EncodeRow(Row(vals)) }
