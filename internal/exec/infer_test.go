package exec

import (
	"testing"

	"ysmart/internal/sqlparser"
)

// Additional InferType branch coverage beyond the happy paths.
func TestInferTypeEdgeBranches(t *testing.T) {
	s := testSchema()
	tests := []struct {
		expr string
		want Type
	}{
		{"NULL", TypeNull},
		{"NOT b", TypeBool},
		{"-i", TypeInt},
		{"-f", TypeFloat},
		{"i BETWEEN 1 AND 2", TypeBool},
		{"i IN (1, 2)", TypeBool},
		{"count(distinct s)", TypeInt},
		{"min(f)", TypeFloat},
		{"coalesce(i, 2)", TypeInt},
		{"length(s)", TypeInt},
		{"abs(i)", TypeInt},
		{"lower(s)", TypeString},
		{"i AND b", TypeBool}, // typing is structural; evaluation rejects it
		{"CASE WHEN b THEN NULL ELSE 'x' END", TypeString},
		{"CASE WHEN b THEN NULL END", TypeNull},
	}
	for _, tt := range tests {
		stmt, err := sqlparser.Parse("SELECT " + tt.expr + " FROM t")
		if err != nil {
			t.Fatalf("parse %q: %v", tt.expr, err)
		}
		got, err := InferType(stmt.Select[0].Expr, s)
		if err != nil {
			t.Fatalf("InferType(%q): %v", tt.expr, err)
		}
		if got != tt.want {
			t.Errorf("InferType(%q) = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func TestInferTypeErrors(t *testing.T) {
	s := testSchema()
	bad := []string{
		"nosuchcol",
		"nosuchcol + 1",
		"nosuchfunc(i)",
		"sum(nosuchcol)",
		"CASE WHEN b THEN nosuchcol END",
	}
	for _, exprSQL := range bad {
		stmt, err := sqlparser.Parse("SELECT " + exprSQL + " FROM t")
		if err != nil {
			t.Fatalf("parse %q: %v", exprSQL, err)
		}
		if _, err := InferType(stmt.Select[0].Expr, s); err == nil {
			t.Errorf("InferType(%q) succeeded, want error", exprSQL)
		}
	}
}

func TestAggKindString(t *testing.T) {
	for kind, want := range map[AggKind]string{
		AggCountStar:     "COUNT(*)",
		AggCount:         "COUNT",
		AggCountDistinct: "COUNT(DISTINCT)",
		AggSum:           "SUM",
		AggAvg:           "AVG",
		AggMin:           "MIN",
		AggMax:           "MAX",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", kind, got, want)
		}
	}
}
