// Package datagen produces deterministic synthetic data sets for the
// paper's two workloads: a TPC-H subset (lineitem, orders, part, customer,
// supplier, nation — the columns the flattened Q17/Q18/Q21 touch) and a
// click-stream table for Q-CSA. Generation is seeded, so every experiment
// is reproducible; row counts are laptop-scale and the cluster cost model's
// DataScale knob stretches them to paper-scale sizes.
package datagen

import (
	"fmt"
	"math/rand"

	"ysmart/internal/exec"
)

// Tables maps table names to rows.
type Tables map[string][]exec.Row

// Lines encodes rows in the tab-delimited table format.
func Lines(rows []exec.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = exec.EncodeRow(r)
	}
	return out
}

// TPCHConfig sizes the TPC-H subset. All counts must be positive.
type TPCHConfig struct {
	Orders    int
	Parts     int
	Customers int
	Suppliers int
	Seed      int64
}

// DefaultTPCH returns a small configuration suitable for tests.
func DefaultTPCH() TPCHConfig {
	return TPCHConfig{Orders: 600, Parts: 80, Customers: 120, Suppliers: 30, Seed: 1}
}

// TPCH generates the TPC-H subset. Shape choices mirror the benchmark
// where the queries depend on it:
//
//   - each order has 1–7 lineitems (so Q18's HAVING sum(l_quantity) > 300
//     is selective but non-empty at realistic sizes);
//   - about half the orders have o_orderstatus = 'F' (Q21's filter);
//   - about a third of lineitems are late (l_receiptdate > l_commitdate);
//   - l_quantity is 1–50, as in TPC-H.
//
// Join keys are never NULL.
func TPCH(cfg TPCHConfig) (Tables, error) {
	if cfg.Orders <= 0 || cfg.Parts <= 0 || cfg.Customers <= 0 || cfg.Suppliers <= 0 {
		return nil, fmt.Errorf("datagen: all TPC-H counts must be positive: %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := Tables{}

	statuses := []string{"F", "O", "P"}
	orders := make([]exec.Row, cfg.Orders)
	for i := range orders {
		status := statuses[weighted(rng, 49, 49, 2)]
		orders[i] = exec.Row{
			exec.Int(int64(i + 1)),                          // o_orderkey
			exec.Int(int64(rng.Intn(cfg.Customers) + 1)),    // o_custkey
			exec.Str(status),                                // o_orderstatus
			exec.Float(1000 + float64(rng.Intn(400000))/10), // o_totalprice
			exec.Int(int64(8000 + rng.Intn(2500))),          // o_orderdate (day number)
			exec.Str(fmt.Sprintf("Clerk#%09d", rng.Intn(1000))),
			exec.Str(comment(rng, 48)),
		}
	}
	t["orders"] = orders

	var lineitems []exec.Row
	for oi := 0; oi < cfg.Orders; oi++ {
		// About 2% of orders are "large-volume": seven high-quantity lines,
		// so Q18's HAVING sum(l_quantity) > 300 finds customers at laptop
		// scale the way TPC-H's millions of orders do at full scale.
		large := rng.Intn(50) == 0
		lines := 1 + rng.Intn(7)
		if large {
			lines = 7
		}
		for li := 0; li < lines; li++ {
			qty := float64(1 + rng.Intn(50))
			if large {
				qty = float64(40 + rng.Intn(11))
			}
			price := float64(900 + rng.Intn(100000))
			commit := int64(8000 + rng.Intn(2500))
			receipt := commit + int64(rng.Intn(30)) - 9 // ~1/3 late
			lineitems = append(lineitems, exec.Row{
				exec.Int(int64(oi + 1)),                      // l_orderkey
				exec.Int(int64(rng.Intn(cfg.Parts) + 1)),     // l_partkey
				exec.Int(int64(rng.Intn(cfg.Suppliers) + 1)), // l_suppkey
				exec.Float(qty),                              // l_quantity
				exec.Float(qty * price / 100),                // l_extendedprice
				exec.Int(receipt),                            // l_receiptdate
				exec.Int(commit),                             // l_commitdate
				exec.Int(commit - int64(rng.Intn(20))),       // l_shipdate
				exec.Str([]string{"N", "R", "A"}[rng.Intn(3)]),
				exec.Str([]string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL"}[rng.Intn(5)]),
				exec.Str(comment(rng, 27)),
			})
		}
	}
	t["lineitem"] = lineitems

	parts := make([]exec.Row, cfg.Parts)
	for i := range parts {
		parts[i] = exec.Row{
			exec.Int(int64(i + 1)),
			exec.Str(fmt.Sprintf("part#%06d", i+1)),
		}
	}
	t["part"] = parts

	customers := make([]exec.Row, cfg.Customers)
	for i := range customers {
		customers[i] = exec.Row{
			exec.Int(int64(i + 1)),
			exec.Str(fmt.Sprintf("Customer#%09d", i+1)),
		}
	}
	t["customer"] = customers

	suppliers := make([]exec.Row, cfg.Suppliers)
	for i := range suppliers {
		suppliers[i] = exec.Row{
			exec.Int(int64(i + 1)),
			exec.Str(fmt.Sprintf("Supplier#%09d", i+1)),
			exec.Int(int64(rng.Intn(25))),
		}
	}
	t["supplier"] = suppliers

	nations := make([]exec.Row, 25)
	for i := range nations {
		nations[i] = exec.Row{
			exec.Int(int64(i)),
			exec.Str(fmt.Sprintf("NATION%02d", i)),
		}
	}
	t["nation"] = nations

	return t, nil
}

// comment produces TPC-H-style filler text of roughly n characters, giving
// rows realistic widths so scan-vs-shuffle proportions match the benchmark.
func comment(rng *rand.Rand, n int) string {
	words := []string{"quick", "fox", "deposits", "sleep", "ironic", "packages",
		"carefully", "final", "requests", "bold", "pinto", "beans"}
	var sb []byte
	for len(sb) < n {
		if len(sb) > 0 {
			sb = append(sb, ' ')
		}
		sb = append(sb, words[rng.Intn(len(words))]...)
	}
	return string(sb[:n])
}

func weighted(rng *rand.Rand, weights ...int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	x := rng.Intn(total)
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

// ClickConfig sizes the click-stream table.
type ClickConfig struct {
	Users         int
	ClicksPerUser int
	Categories    int // must be >= 3 so categories 1 and 2 both occur
	Seed          int64
}

// DefaultClicks returns a small configuration suitable for tests.
func DefaultClicks() ClickConfig {
	return ClickConfig{Users: 150, ClicksPerUser: 40, Categories: 5, Seed: 2}
}

// Clickstream generates the CLICKS(uid, page, cid, ts) table of the paper's
// Fig. 1. Each user has a time-ordered stream of clicks with strictly
// increasing, unique timestamps and uniformly random categories, so the
// Q-CSA pattern (a category-1 page later followed by a category-2 page)
// occurs naturally.
func Clickstream(cfg ClickConfig) (Tables, error) {
	if cfg.Users <= 0 || cfg.ClicksPerUser <= 0 {
		return nil, fmt.Errorf("datagen: click counts must be positive: %+v", cfg)
	}
	if cfg.Categories < 3 {
		return nil, fmt.Errorf("datagen: need at least 3 categories, got %d", cfg.Categories)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rows []exec.Row
	for u := 0; u < cfg.Users; u++ {
		ts := int64(1000 + rng.Intn(50))
		for c := 0; c < cfg.ClicksPerUser; c++ {
			ts += int64(1 + rng.Intn(20))
			rows = append(rows, exec.Row{
				exec.Int(int64(u + 1)),                    // uid
				exec.Int(int64(rng.Intn(5000) + 1)),       // page
				exec.Int(int64(rng.Intn(cfg.Categories))), // cid
				exec.Int(ts), // ts
			})
		}
	}
	return Tables{"clicks": rows}, nil
}
