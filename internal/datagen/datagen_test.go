package datagen

import (
	"reflect"
	"testing"

	"ysmart/internal/exec"
)

func TestTPCHDeterministicAndShaped(t *testing.T) {
	cfg := DefaultTPCH()
	a, err := TPCH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TPCH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(Lines(a["lineitem"]), Lines(b["lineitem"])) {
		t.Error("same seed must generate identical data")
	}
	cfg.Seed = 99
	c, err := TPCH(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(Lines(a["lineitem"]), Lines(c["lineitem"])) {
		t.Error("different seeds should generate different data")
	}

	if len(a["orders"]) != cfg.Orders {
		t.Errorf("orders = %d, want %d", len(a["orders"]), cfg.Orders)
	}
	if len(a["part"]) != cfg.Parts || len(a["customer"]) != cfg.Customers {
		t.Error("part/customer counts wrong")
	}
	// Lineitems: 1-7 per order.
	n := len(a["lineitem"])
	if n < cfg.Orders || n > 7*cfg.Orders {
		t.Errorf("lineitems = %d, want within [%d, %d]", n, cfg.Orders, 7*cfg.Orders)
	}

	// Workload-shape checks: some 'F' orders, some late lineitems, some
	// large-volume orders (sum quantity > 300).
	fOrders := 0
	for _, r := range a["orders"] {
		if r[2].S == "F" {
			fOrders++
		}
	}
	if fOrders == 0 || fOrders == len(a["orders"]) {
		t.Errorf("F orders = %d of %d, want a fraction", fOrders, len(a["orders"]))
	}
	late := 0
	qtyByOrder := map[int64]float64{}
	for _, r := range a["lineitem"] {
		if r[5].I > r[6].I {
			late++
		}
		qtyByOrder[r[0].I] += r[3].F
	}
	if late == 0 || late == n {
		t.Errorf("late lineitems = %d of %d, want a fraction", late, n)
	}
	big := 0
	for _, q := range qtyByOrder {
		if q > 300 {
			big++
		}
	}
	if big == 0 {
		t.Error("no large-volume orders: Q18 would be empty")
	}
	if big > cfg.Orders/10 {
		t.Errorf("large-volume orders = %d, want rare (< 10%%)", big)
	}

	// Join keys must never be NULL.
	for _, r := range a["lineitem"] {
		if r[0].IsNull() || r[1].IsNull() || r[2].IsNull() {
			t.Fatal("NULL join key in lineitem")
		}
	}
}

func TestTPCHConfigValidation(t *testing.T) {
	if _, err := TPCH(TPCHConfig{Orders: 0, Parts: 1, Customers: 1, Suppliers: 1}); err == nil {
		t.Error("zero orders should error")
	}
}

func TestClickstreamShape(t *testing.T) {
	cfg := DefaultClicks()
	tables, err := Clickstream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables["clicks"]
	if len(rows) != cfg.Users*cfg.ClicksPerUser {
		t.Fatalf("rows = %d, want %d", len(rows), cfg.Users*cfg.ClicksPerUser)
	}
	// Timestamps strictly increase within each user, and categories 1 and 2
	// both occur.
	lastTS := map[int64]int64{}
	cats := map[int64]bool{}
	for _, r := range rows {
		uid, cid, ts := r[0].I, r[2].I, r[3].I
		if prev, ok := lastTS[uid]; ok && ts <= prev {
			t.Fatalf("uid %d: ts %d not after %d", uid, ts, prev)
		}
		lastTS[uid] = ts
		cats[cid] = true
		if cid < 0 || cid >= int64(cfg.Categories) {
			t.Fatalf("cid %d out of range", cid)
		}
	}
	if !cats[1] || !cats[2] {
		t.Error("categories 1 and 2 must occur for Q-CSA")
	}
}

func TestClickstreamValidation(t *testing.T) {
	if _, err := Clickstream(ClickConfig{Users: 1, ClicksPerUser: 1, Categories: 2}); err == nil {
		t.Error("too few categories should error")
	}
}

func TestLines(t *testing.T) {
	lines := Lines([]exec.Row{{exec.Int(1), exec.Str("x")}})
	if len(lines) != 1 || lines[0] != "1\tx" {
		t.Errorf("lines = %v", lines)
	}
}
