package difftest

import (
	"bytes"
	"reflect"
	"testing"

	"ysmart"
	"ysmart/internal/queries"
)

// TestReuseByteIdentical is the ISSUE's differential acceptance proof for
// cross-query reuse: for every workload query, fault-free and under a
// seeded fault plan, in full-hit and partial-hit (root artifact evicted)
// modes, the warm replay's rows must be byte-identical to the cold run's
// and to the DBMS oracle — and the warm run itself must stay invariant
// under the worker count (rows, per-job stats, trace bytes at workers
// 1, 2 and 8), with the expected number of jobs actually skipped.
func TestReuseByteIdentical(t *testing.T) {
	named := queries.Named()
	for _, name := range QueryNames() {
		sql := named[name]
		t.Run(name, func(t *testing.T) {
			oracle, err := Oracle(sql, workload)
			if err != nil {
				t.Fatal(err)
			}
			for _, plan := range FaultPlans(3) {
				for _, partial := range []bool{false, true} {
					label := PlanLabel(plan) + "/full"
					if partial {
						label = PlanLabel(plan) + "/partial"
					}
					t.Run(label, func(t *testing.T) {
						base, err := ExecuteReuse(name, sql, ysmart.YSmart, 1, plan, workload, partial)
						if err != nil {
							t.Fatal(err)
						}
						// Warm rows must match cold rows in order, and both
						// must match the independent oracle.
						if !reflect.DeepEqual(base.Warm.Rows, base.Cold.Rows) {
							t.Errorf("warm rows differ from cold rows (%d vs %d)",
								len(base.Warm.Rows), len(base.Cold.Rows))
						}
						diffLines(t, "warm vs oracle", base.Warm.SortedLines(), oracle)
						// The skip accounting must prove reuse actually
						// happened: a full warm replay runs nothing, a
						// partial one re-runs exactly the final job.
						rp := base.WarmPlan
						if rp == nil {
							t.Fatal("warm run carried no reuse plan")
						}
						wantJobs := 0
						if partial {
							wantJobs = 1
						}
						if len(rp.Jobs) != wantJobs || rp.Skipped != rp.Total-wantJobs {
							t.Errorf("warm chain ran %d of %d jobs (skipped %d), want %d run",
								len(rp.Jobs), rp.Total, rp.Skipped, wantJobs)
						}
						if !partial && rp.Skipped == 0 {
							t.Errorf("full warm replay skipped nothing")
						}
						// The warm replay must be invariant under the worker
						// count, exactly like a normal run.
						for _, w := range []int{2, 8} {
							got, err := ExecuteReuse(name, sql, ysmart.YSmart, w, plan, workload, partial)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got.Warm.Rows, base.Warm.Rows) {
								t.Errorf("workers=%d: warm rows differ from workers=1", w)
							}
							if !reflect.DeepEqual(got.Warm.Jobs, base.Warm.Jobs) {
								t.Errorf("workers=%d: warm job stats differ from workers=1", w)
							}
							if !bytes.Equal(got.Warm.Trace, base.Warm.Trace) {
								t.Errorf("workers=%d: warm trace bytes differ from workers=1 (%d vs %d bytes)",
									w, len(got.Warm.Trace), len(base.Warm.Trace))
							}
						}
					})
				}
			}
		})
	}
}

// TestReusePartialFinalJobStats pins the partial-replay cost shape on the
// fault-free cluster (no inter-job contention gaps on the harness model):
// the one job a partial warm replay re-executes reads artifact inputs that
// are byte-for-byte the cold run's intermediate outputs, so its stats must
// equal the cold run's final-job stats exactly.
func TestReusePartialFinalJobStats(t *testing.T) {
	named := queries.Named()
	for _, name := range QueryNames() {
		sql := named[name]
		t.Run(name, func(t *testing.T) {
			run, err := ExecuteReuse(name, sql, ysmart.YSmart, 8, nil, workload, true)
			if err != nil {
				t.Fatal(err)
			}
			if len(run.Warm.Jobs) != 1 {
				t.Fatalf("partial warm replay ran %d jobs, want 1", len(run.Warm.Jobs))
			}
			coldFinal := run.Cold.Jobs[len(run.Cold.Jobs)-1]
			if !reflect.DeepEqual(run.Warm.Jobs[0], coldFinal) {
				t.Errorf("warm final-job stats differ from cold final job:\n got  %+v\n want %+v",
					*run.Warm.Jobs[0], *coldFinal)
			}
		})
	}
}
