package difftest

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ysmart"
	"ysmart/internal/queries"
)

var update = flag.Bool("update", false, "rewrite golden files from current engine output")

// workload is generated once; every run reads from its own runtime's DFS
// copy, so sharing the row slices is safe.
var workload map[string][]ysmart.Row

func TestMain(m *testing.M) {
	flag.Parse()
	var err error
	workload, err = Tables()
	if err != nil {
		panic(err)
	}
	os.Exit(m.Run())
}

// TestWorkersByteIdentical is the differential proof for the worker pool:
// for every workload query, every fault scenario and workers ∈ {1, 2, 8},
// the engine must produce the same rows in the same order, identical
// per-job stats (including attempt logs) and an identical trace byte
// stream as the sequential workers=1 run.
func TestWorkersByteIdentical(t *testing.T) {
	named := queries.Named()
	for _, name := range QueryNames() {
		sql := named[name]
		for _, plan := range FaultPlans(1, 2) {
			t.Run(name+"/"+PlanLabel(plan), func(t *testing.T) {
				base, err := Execute(name, sql, ysmart.YSmart, 1, plan, workload)
				if err != nil {
					t.Fatal(err)
				}
				if len(base.Rows) == 0 {
					t.Fatalf("baseline produced no rows")
				}
				for _, w := range []int{2, 8} {
					got, err := Execute(name, sql, ysmart.YSmart, w, plan, workload)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Rows, base.Rows) {
						t.Errorf("workers=%d: rows differ from workers=1 (got %d rows, want %d)",
							w, len(got.Rows), len(base.Rows))
					}
					if !reflect.DeepEqual(got.Jobs, base.Jobs) {
						for i := range base.Jobs {
							if i < len(got.Jobs) && !reflect.DeepEqual(got.Jobs[i], base.Jobs[i]) {
								t.Errorf("workers=%d: job %d stats differ:\n got  %+v\n want %+v",
									w, i, *got.Jobs[i], *base.Jobs[i])
							}
						}
						if len(got.Jobs) != len(base.Jobs) {
							t.Errorf("workers=%d: %d jobs, want %d", w, len(got.Jobs), len(base.Jobs))
						}
					}
					if !bytes.Equal(got.Trace, base.Trace) {
						t.Errorf("workers=%d: trace bytes differ from workers=1 (%d vs %d bytes)",
							w, len(got.Trace), len(base.Trace))
					}
				}
			})
		}
	}
}

// TestEngineMatchesOracle cross-checks the parallel engine against the
// pipelined DBMS executor, an independent implementation of the same
// queries, and pins the sorted rows in committed golden files.
func TestEngineMatchesOracle(t *testing.T) {
	named := queries.Named()
	for _, name := range QueryNames() {
		sql := named[name]
		t.Run(name, func(t *testing.T) {
			run, err := Execute(name, sql, ysmart.YSmart, 8, nil, workload)
			if err != nil {
				t.Fatal(err)
			}
			got := run.SortedLines()

			want, err := Oracle(sql, workload)
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			diffLines(t, "engine vs dbms oracle", got, want)

			golden := filepath.Join("testdata", "golden", strings.ToLower(name)+".golden")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to regenerate): %v", err)
			}
			diffLines(t, "engine vs golden", got, strings.Split(strings.TrimRight(string(data), "\n"), "\n"))
		})
	}
}

// TestModesAgree checks that the merged YSmart plan and the one-to-one
// plan compute the same relation at full parallelism — the optimizer must
// not change answers, only job counts.
func TestModesAgree(t *testing.T) {
	named := queries.Named()
	for _, name := range QueryNames() {
		sql := named[name]
		t.Run(name, func(t *testing.T) {
			merged, err := Execute(name, sql, ysmart.YSmart, 8, nil, workload)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := Execute(name, sql, ysmart.OneToOne, 8, nil, workload)
			if err != nil {
				t.Fatal(err)
			}
			diffLines(t, "ysmart vs one-to-one", merged.SortedLines(), naive.SortedLines())
		})
	}
}

// diffLines reports the first few differing lines between two sorted row
// encodings.
func diffLines(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d rows, want %d", label, len(got), len(want))
	}
	shown := 0
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			t.Errorf("%s: row %d:\n got  %s\n want %s", label, i, got[i], want[i])
			if shown++; shown >= 3 {
				t.Errorf("%s: ... further diffs elided", label)
				return
			}
		}
	}
}
