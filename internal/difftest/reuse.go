package difftest

import (
	"fmt"
	"strings"

	"ysmart"
	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/translator"
)

// ReuseRun is one cold-then-warm execution pair through a shared
// cross-query artifact store: the cold run executes everything and
// materializes each job's output; the warm run replays the same query on a
// fresh runtime loaded with the same tables — the cross-runtime shape
// server sessions exercise — and must be able to skip every job whose
// artifact the store still holds.
type ReuseRun struct {
	Cold, Warm         *Run
	ColdPlan, WarmPlan *ysmart.ReusePlan
}

// ExecuteReuse runs one workload query twice through a private store:
// cold, then warm. partial forgets the result-producing job's artifact
// between the rounds, so the warm chain must re-execute exactly the final
// job against the restored intermediate artifacts.
func ExecuteReuse(name, sql string, mode ysmart.Mode, workers int, plan *mapreduce.FaultPlan, tables map[string][]ysmart.Row, partial bool) (*ReuseRun, error) {
	store := ysmart.NewReuseStore(0, nil)
	cold, coldPlan, tr, err := reuseRound(name, sql, mode, workers, plan, tables, store)
	if err != nil {
		return nil, fmt.Errorf("cold: %w", err)
	}
	if partial {
		key, ok := translator.RootArtifactKey(tr)
		if !ok {
			return nil, fmt.Errorf("%s: translation carries no artifacts", name)
		}
		store.Forget(key)
	}
	warm, warmPlan, _, err := reuseRound(name, sql, mode, workers, plan, tables, store)
	if err != nil {
		return nil, fmt.Errorf("warm: %w", err)
	}
	return &ReuseRun{Cold: cold, Warm: warm, ColdPlan: coldPlan, WarmPlan: warmPlan}, nil
}

// reuseRound is execute with the store attached: fresh runtime, fresh
// translation (jobs carry per-run reducer state), collector for the trace
// comparison surface.
func reuseRound(name, sql string, mode ysmart.Mode, workers int, plan *mapreduce.FaultPlan, tables map[string][]ysmart.Row, store *ysmart.ReuseStore) (*Run, *ysmart.ReusePlan, *ysmart.Translation, error) {
	q, err := ysmart.Parse(sql, ysmart.WorkloadCatalog())
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	tr, err := q.Translate(mode, ysmart.Options{QueryName: strings.ToLower(name)})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", name, err)
	}
	rt, err := ysmart.NewRuntime(Cluster(plan))
	if err != nil {
		return nil, nil, nil, err
	}
	rt.SetWorkers(workers)
	rt.LoadTables(tables)
	col := obs.NewCollector()
	res, err := rt.Run(tr, ysmart.WithTracer(col), ysmart.WithReuse(store))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s (workers=%d, %s): %w", name, workers, PlanLabel(plan), err)
	}
	return &Run{Rows: res.Rows, Jobs: res.Stats.Jobs, Trace: obs.ChromeTrace(col.Events())}, res.Reuse, tr, nil
}
