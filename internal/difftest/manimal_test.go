package difftest

import (
	"reflect"
	"testing"

	"ysmart"
	"ysmart/internal/mapreduce"
)

// manimalQueries are filtered scans where the optimizer provably installs
// a prefilter from the plan's scan facts. They are deliberately not part
// of queries.Named() so the golden files stay an analysis-off surface.
var manimalQueries = map[string]string{
	"M-LATESHIP":  "SELECT l_shipmode, count(*) AS ship_count FROM lineitem WHERE l_shipdate >= 9300 GROUP BY l_shipmode",
	"M-HIGHVALUE": "SELECT o_custkey, o_totalprice FROM orders WHERE o_totalprice > 30000",
}

// TestManimalByteIdentical is the ISSUE's differential acceptance proof:
// for each filtered query, result rows with the MANIMAL rewrites applied
// are byte-identical to the analysis-off run and to the DBMS oracle, at
// workers 1, 2 and 8, fault-free and under a seeded fault plan — while
// the scan counters prove the prefilter actually fired.
func TestManimalByteIdentical(t *testing.T) {
	for name, sql := range manimalQueries {
		t.Run(name, func(t *testing.T) {
			oracle, err := Oracle(sql, workload)
			if err != nil {
				t.Fatal(err)
			}
			for _, plan := range FaultPlans(7) {
				t.Run(PlanLabel(plan), func(t *testing.T) {
					base, err := Execute(name, sql, ysmart.YSmart, 1, plan, workload)
					if err != nil {
						t.Fatal(err)
					}
					if got := base.SortedLines(); !reflect.DeepEqual(got, oracle) {
						t.Fatalf("analysis-off rows diverge from oracle:\n got %v\nwant %v", got, oracle)
					}
					for _, workers := range []int{1, 2, 8} {
						opt, err := ExecuteManimal(name, sql, ysmart.YSmart, workers, plan, workload)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(opt.Rows, base.Rows) {
							t.Errorf("workers=%d: optimized rows differ from analysis-off rows", workers)
						}
						if got := opt.SortedLines(); !reflect.DeepEqual(got, oracle) {
							t.Errorf("workers=%d: optimized rows diverge from oracle", workers)
						}
						if n := filteredRecords(opt.Jobs); n == 0 {
							t.Errorf("workers=%d: MapRecordsFiltered = 0; the prefilter never fired", workers)
						}
					}
					if n := filteredRecords(base.Jobs); n != 0 {
						t.Errorf("analysis-off run filtered %d records; baseline must not prefilter", n)
					}
				})
			}
		})
	}
}

// filteredRecords sums the early-filter counter over a chain's jobs.
func filteredRecords(jobs []*mapreduce.JobStats) int64 {
	var n int64
	for _, j := range jobs {
		n += j.MapRecordsFiltered
	}
	return n
}
