// Package difftest is the differential proof harness behind the engine's
// worker pool: it executes the workload queries through the MapReduce
// engine at several worker counts, with and without seeded fault
// injection, and asserts that result rows, per-job stats and trace event
// streams are byte-identical — host parallelism must be unobservable. Row
// content is additionally cross-checked against the pipelined DBMS
// executor (internal/dbms) as an independent oracle, and committed golden
// files pin the sorted result rows of every query.
package difftest

import (
	"fmt"
	"sort"
	"strings"

	"ysmart"
	"ysmart/internal/dbms"
	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/queries"
)

// Run captures everything one engine execution produced that must be
// invariant under the worker count.
type Run struct {
	// Rows is the query result in engine output order (not sorted: the
	// order itself must match across worker counts).
	Rows []ysmart.Row
	// Jobs is the per-job stats slice, compared with reflect.DeepEqual.
	Jobs []*mapreduce.JobStats
	// Trace is the Chrome trace-event JSON of the run, compared byte-wise.
	Trace []byte
}

// SortedLines is the canonical sorted row encoding used to compare the
// engine against the DBMS oracle and the golden files.
func (r *Run) SortedLines() []string { return dbms.SortedLines(r.Rows) }

// QueryNames returns the workload query names in sorted order.
func QueryNames() []string {
	named := queries.Named()
	names := make([]string, 0, len(named))
	for n := range named {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Cluster builds the harness cluster: four nodes with a tiny split size so
// even test-scale inputs fan out into many real map tasks, several waves
// and multiple reduce partitions — the regime where scheduling bugs would
// show. plan, when non-nil, is copied onto the cluster.
func Cluster(plan *mapreduce.FaultPlan) *ysmart.Cluster {
	c := mapreduce.SmallCluster()
	c.Name = "difftest-4node"
	c.Nodes = 4
	c.MapSlotsPerNode = 2
	c.ReduceSlotsPerNode = 2
	c.Cost.SplitSize = 512
	if plan != nil {
		cp := *plan
		c.Faults = &cp
		c.Speculation = ysmart.Speculation{Enabled: true}
	}
	return c
}

// FaultPlans returns the fault scenarios of the differential matrix: the
// fault-free baseline (nil) plus seeded plans mixing task failures,
// stragglers and a node death that lands inside the first job's map phase
// on the harness cluster.
func FaultPlans(seeds ...int64) []*mapreduce.FaultPlan {
	plans := []*mapreduce.FaultPlan{nil}
	for _, seed := range seeds {
		plans = append(plans, &mapreduce.FaultPlan{
			Seed:            seed,
			TaskFailureProb: 0.15,
			StragglerProb:   0.1,
			StragglerFactor: 4,
			NodeFailures:    []ysmart.NodeFailure{{Node: 3, At: 14}},
		})
	}
	return plans
}

// PlanLabel names a fault plan for subtest labels.
func PlanLabel(plan *mapreduce.FaultPlan) string {
	if plan == nil {
		return "fault-free"
	}
	return fmt.Sprintf("faults-seed%d", plan.Seed)
}

// Tables generates the deterministic workload data set shared by every
// execution of the harness.
func Tables() (map[string][]ysmart.Row, error) {
	tables, err := ysmart.GenerateTPCH(ysmart.DefaultTPCH())
	if err != nil {
		return nil, err
	}
	clicks, err := ysmart.GenerateClicks(ysmart.DefaultClicks())
	if err != nil {
		return nil, err
	}
	for name, rows := range clicks {
		tables[name] = rows
	}
	return tables, nil
}

// Execute runs one workload query through the engine: fresh runtime, the
// harness cluster with the given fault plan, the given worker count, and a
// collector so the trace byte stream is part of the comparison surface.
// The translation is rebuilt per run because jobs carry per-run reducer
// state.
func Execute(name, sql string, mode ysmart.Mode, workers int, plan *mapreduce.FaultPlan, tables map[string][]ysmart.Row) (*Run, error) {
	return execute(name, sql, mode, workers, plan, tables, false)
}

// ExecuteManimal is Execute with the MANIMAL scan rewrites applied to the
// translation before the run — the `-manimal` execution path. The rewrites
// must be unobservable in the result rows at any worker count and under
// any fault plan; only scan-side counters may move.
func ExecuteManimal(name, sql string, mode ysmart.Mode, workers int, plan *mapreduce.FaultPlan, tables map[string][]ysmart.Row) (*Run, error) {
	return execute(name, sql, mode, workers, plan, tables, true)
}

func execute(name, sql string, mode ysmart.Mode, workers int, plan *mapreduce.FaultPlan, tables map[string][]ysmart.Row, optimize bool) (*Run, error) {
	q, err := ysmart.Parse(sql, ysmart.WorkloadCatalog())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	tr, err := q.Translate(mode, ysmart.Options{QueryName: strings.ToLower(name)})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	if optimize {
		ysmart.ApplyManimal(tr)
	}
	rt, err := ysmart.NewRuntime(Cluster(plan))
	if err != nil {
		return nil, err
	}
	rt.SetWorkers(workers)
	rt.LoadTables(tables)
	col := obs.NewCollector()
	res, err := rt.Run(tr, ysmart.WithTracer(col))
	if err != nil {
		return nil, fmt.Errorf("%s (workers=%d, %s): %w", name, workers, PlanLabel(plan), err)
	}
	return &Run{Rows: res.Rows, Jobs: res.Stats.Jobs, Trace: obs.ChromeTrace(col.Events())}, nil
}

// Oracle runs the query on the pipelined DBMS executor and returns its
// sorted row encoding.
func Oracle(sql string, tables map[string][]ysmart.Row) ([]string, error) {
	q, err := ysmart.Parse(sql, ysmart.WorkloadCatalog())
	if err != nil {
		return nil, err
	}
	rows, err := ysmart.OracleResult(q, ysmart.WorkloadCatalog(), tables)
	if err != nil {
		return nil, err
	}
	return dbms.SortedLines(rows), nil
}
