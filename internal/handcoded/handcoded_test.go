package handcoded

import (
	"testing"

	"ysmart/internal/datagen"
	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
	"ysmart/internal/translator"
)

func workload(t *testing.T) (*mapreduce.DFS, *dbms.Database) {
	t.Helper()
	dfs := mapreduce.NewDFS()
	db := dbms.NewDatabase()
	cat := queries.Catalog()
	tpch, err := datagen.TPCH(datagen.DefaultTPCH())
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := datagen.Clickstream(datagen.DefaultClicks())
	if err != nil {
		t.Fatal(err)
	}
	for _, tables := range []datagen.Tables{tpch, clicks} {
		for name, rows := range tables {
			schema, _ := cat.Table(name)
			dfs.Write(translator.TablePath(name), datagen.Lines(rows))
			db.Load(name, schema, rows)
		}
	}
	return dfs, db
}

func runProgram(t *testing.T, p *Program, dfs *mapreduce.DFS) ([]exec.Row, *mapreduce.ChainStats) {
	t.Helper()
	eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.RunChain(p.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := p.ReadResult(dfs)
	if err != nil {
		t.Fatal(err)
	}
	return rows, stats
}

func oracle(t *testing.T, db *dbms.Database, sql string) []exec.Row {
	t.Helper()
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

// sameMultiset compares rows up to order with float tolerance.
func sameMultiset(t *testing.T, got, want []exec.Row) {
	t.Helper()
	gl, wl := dbms.SortedLines(got), dbms.SortedLines(want)
	if len(gl) != len(wl) {
		t.Fatalf("rows = %d, want %d\n got: %v\nwant: %v", len(gl), len(wl), gl, wl)
	}
	for i := range gl {
		if gl[i] != wl[i] {
			// Allow float wobble: parse and compare numerically.
			g, errG := exec.DecodeRowUntyped(gl[i])
			w, errW := exec.DecodeRowUntyped(wl[i])
			if errG != nil || errW != nil || len(g) != len(w) {
				t.Fatalf("row %d: got %q, want %q", i, gl[i], wl[i])
			}
			for c := range g {
				gf, gok := g[c].AsFloat()
				wf, wok := w[c].AsFloat()
				if gok && wok {
					diff := gf - wf
					if diff < 0 {
						diff = -diff
					}
					if diff <= 1e-9*(1+wf) && diff >= -1e-9*(1+wf) {
						continue
					}
				}
				if exec.Compare(g[c], w[c]) != 0 {
					t.Fatalf("row %d col %d: got %v, want %v", i, c, g[c], w[c])
				}
			}
		}
	}
}

func TestQAGGMatchesOracle(t *testing.T) {
	dfs, db := workload(t)
	p := QAGG("qagg")
	rows, stats := runProgram(t, p, dfs)
	sameMultiset(t, rows, oracle(t, db, queries.QAGG))
	if stats.NumJobs() != 1 {
		t.Errorf("jobs = %d, want 1", stats.NumJobs())
	}
}

func TestQCSAMatchesOracle(t *testing.T) {
	dfs, db := workload(t)
	p := QCSA("qcsa")
	rows, stats := runProgram(t, p, dfs)
	sameMultiset(t, rows, oracle(t, db, queries.QCSA))
	if stats.NumJobs() != 2 {
		t.Errorf("jobs = %d, want 2 (paper §I: single job plus final aggregation)", stats.NumJobs())
	}
	// One scan of clicks only.
	if got := stats.Jobs[0].MapInputBytes; got != dfs.SizeBytes(translator.TablePath("clicks")) {
		t.Errorf("job1 scanned %d bytes, want one clicks scan", got)
	}
}

func TestQ21MatchesOracle(t *testing.T) {
	dfs, db := workload(t)
	p := Q21("q21")
	rows, stats := runProgram(t, p, dfs)
	sameMultiset(t, rows, oracle(t, db, queries.Q21))
	if stats.NumJobs() != 1 {
		t.Errorf("jobs = %d, want 1", stats.NumJobs())
	}
}

// TestHandCodedBeatsYSmartSlightly: the paper measures YSmart within 17% of
// hand-coded on Q21 (§VII.C). Our hand-coded program must be at least as
// fast (smaller map output, short-path reduce), and YSmart must be close.
func TestHandCodedBeatsYSmartSlightly(t *testing.T) {
	dfs, _ := workload(t)
	hand := Q21("q21-hand")
	_, handStats := runProgram(t, hand, dfs)

	root, err := queries.Plan(queries.Q21)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := translator.Translate(root, translator.YSmart, translator.Options{QueryName: "q21-ys"})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	ysStats, err := eng.RunChain(tr.Jobs)
	if err != nil {
		t.Fatal(err)
	}

	if handStats.TotalShuffleBytes() > ysStats.TotalShuffleBytes() {
		t.Errorf("hand-coded shuffle %d > ysmart %d, want <=",
			handStats.TotalShuffleBytes(), ysStats.TotalShuffleBytes())
	}
	if handStats.TotalTime() > ysStats.TotalTime() {
		t.Errorf("hand-coded %.0fs slower than ysmart %.0fs",
			handStats.TotalTime(), ysStats.TotalTime())
	}
	// YSmart stays within 2x of hand-coded (the paper saw 1.17x).
	if ysStats.TotalTime() > 2*handStats.TotalTime() {
		t.Errorf("ysmart %.0fs more than 2x hand-coded %.0fs",
			ysStats.TotalTime(), handStats.TotalTime())
	}
}
