// Package handcoded contains the hand-optimized MapReduce programs an
// experienced programmer would write for the paper's workload — the
// "hand-coded" bars of Fig. 2(b) and Fig. 9. They differ from YSmart's
// generated jobs in the ways §VII.C describes:
//
//   - the reduce function is written against the query's semantics rather
//     than the plan tree, so it can take short-paths ("if JOIN1 has no
//     output, the sub-tree certainly has no output — return immediately");
//   - map output carries exactly the fields the reducer needs, with a
//     one-byte source marker instead of general stream tags.
package handcoded

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/queries"
	"ysmart/internal/translator"
)

// Program is a runnable hand-coded query implementation.
type Program struct {
	Jobs         []*mapreduce.Job
	Output       string
	OutputSchema *exec.Schema
}

// ReadResult decodes the program's result rows.
func (p *Program) ReadResult(dfs *mapreduce.DFS) ([]exec.Row, error) {
	lines, err := dfs.Read(p.Output)
	if err != nil {
		return nil, err
	}
	rows := make([]exec.Row, 0, len(lines))
	for _, line := range lines {
		row, err := exec.DecodeRow(line, p.OutputSchema)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func mustSchema(table string) *exec.Schema {
	s, ok := queries.Catalog().Table(table)
	if !ok {
		panic("handcoded: unknown table " + table)
	}
	return s
}

// ---------------------------------------------------------------------------
// Q-AGG: count clicks per category (one job, with a combiner — matching
// what any practitioner writes for wordcount-style aggregation).
// ---------------------------------------------------------------------------

// QAGG builds the hand-coded click-count program.
func QAGG(name string) *Program {
	clicks := mustSchema("clicks")
	out := "tmp/" + name + "/hand/result"
	job := &mapreduce.Job{
		Name: name + "-hand-j1",
		Inputs: []mapreduce.Input{{
			Path: translator.TablePath("clicks"),
			Mapper: mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
				row, err := exec.DecodeRow(line, clicks)
				if err != nil {
					return err
				}
				emit(strconv.FormatInt(row[2].I, 10), "1")
				return nil
			}),
		}},
		Combiner: mapreduce.CombinerFunc(func(_ string, values []string) ([]string, error) {
			n, err := sumInts(values)
			if err != nil {
				return nil, err
			}
			return []string{strconv.FormatInt(n, 10)}, nil
		}),
		Reducer: mapreduce.ReducerFunc(func(key string, values []string, emit func(string)) error {
			n, err := sumInts(values)
			if err != nil {
				return err
			}
			emit(key + "\t" + strconv.FormatInt(n, 10))
			return nil
		}),
		Output: out,
	}
	return &Program{
		Jobs:   []*mapreduce.Job{job},
		Output: out,
		OutputSchema: exec.NewSchema(
			exec.Column{Name: "cid", Type: exec.TypeInt},
			exec.Column{Name: "click_count", Type: exec.TypeInt},
		),
	}
}

func sumInts(values []string) (int64, error) {
	var n int64
	for _, v := range values {
		x, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, err
		}
		n += x
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Q-CSA: one job for everything up to AGG3, one job for the final average
// (the paper's hand-coded program uses "only a single job to execute all
// the operations except the final aggregation", §I).
// ---------------------------------------------------------------------------

// QCSA builds the hand-coded click-stream-analysis program.
func QCSA(name string) *Program {
	clicks := mustSchema("clicks")
	mid := "tmp/" + name + "/hand/j1"
	out := "tmp/" + name + "/hand/result"

	j1 := &mapreduce.Job{
		Name: name + "-hand-j1[JOIN1+AGG1+AGG2+JOIN2+AGG3]",
		Inputs: []mapreduce.Input{{
			Path: translator.TablePath("clicks"),
			Mapper: mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
				row, err := exec.DecodeRow(line, clicks)
				if err != nil {
					return err
				}
				// One compact pair per click: key uid, value "ts:cid".
				emit(strconv.FormatInt(row[0].I, 10),
					strconv.FormatInt(row[3].I, 10)+":"+strconv.FormatInt(row[2].I, 10))
				return nil
			}),
		}},
		Reducer: mapreduce.ReducerFunc(qcsaReduce),
		Output:  mid,
	}

	j2 := &mapreduce.Job{
		Name: name + "-hand-j2[AGG4]",
		Inputs: []mapreduce.Input{{
			Path: mid,
			Mapper: mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
				// j1 lines are "uid\tts1\tpageviews"; only the count matters.
				fields := strings.Split(line, "\t")
				emit("", fields[len(fields)-1])
				return nil
			}),
		}},
		Reducer: mapreduce.ReducerFunc(func(_ string, values []string, emit func(string)) error {
			var sum float64
			for _, v := range values {
				x, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return err
				}
				sum += x
			}
			if len(values) == 0 {
				emit(`\N`)
				return nil
			}
			emit(exec.EncodeField(exec.Float(sum / float64(len(values)))))
			return nil
		}),
		Output:         out,
		NumReduceTasks: 1,
		DependsOn:      []*mapreduce.Job{j1},
	}

	return &Program{
		Jobs:   []*mapreduce.Job{j1, j2},
		Output: out,
		OutputSchema: exec.NewSchema(
			exec.Column{Name: "avg_pageviews", Type: exec.TypeFloat},
		),
	}
}

// qcsaReduce computes, for one user, the pageview counts between each
// category-1 page and the first category-2 page after it, exactly as the
// nested SQL of Fig. 1 specifies — but in one pass over the user's clicks.
func qcsaReduce(key string, values []string, emit func(string)) error {
	type click struct{ ts, cid int64 }
	clicks := make([]click, 0, len(values))
	for _, v := range values {
		sep := strings.IndexByte(v, ':')
		if sep < 0 {
			return fmt.Errorf("bad click value %q", v)
		}
		ts, err := strconv.ParseInt(v[:sep], 10, 64)
		if err != nil {
			return err
		}
		cid, err := strconv.ParseInt(v[sep+1:], 10, 64)
		if err != nil {
			return err
		}
		clicks = append(clicks, click{ts, cid})
	}
	sort.Slice(clicks, func(i, j int) bool { return clicks[i].ts < clicks[j].ts })

	// Short-path: a user with no category-1 or no category-2 page produces
	// nothing; skip all further work.
	var cat2 []int64
	any1 := false
	for _, c := range clicks {
		if c.cid == 1 {
			any1 = true
		}
		if c.cid == 2 {
			cat2 = append(cat2, c.ts)
		}
	}
	if !any1 || len(cat2) == 0 {
		return nil
	}

	// cp: ts1 -> min ts2 after it. mp: ts2 -> max ts1.
	maxTS1 := make(map[int64]int64)
	var ts2Order []int64
	for _, c := range clicks {
		if c.cid != 1 {
			continue
		}
		i := sort.Search(len(cat2), func(i int) bool { return cat2[i] > c.ts })
		if i == len(cat2) {
			continue
		}
		ts2 := cat2[i]
		if prev, ok := maxTS1[ts2]; !ok || c.ts > prev {
			if !ok {
				ts2Order = append(ts2Order, ts2)
			}
			maxTS1[ts2] = c.ts
		}
	}
	// Count pageviews within each [ts1, ts2] window.
	for _, ts2 := range ts2Order {
		ts1 := maxTS1[ts2]
		count := int64(0)
		for _, c := range clicks {
			if c.ts >= ts1 && c.ts <= ts2 {
				count++
			}
		}
		emit(key + "\t" + strconv.FormatInt(ts1, 10) + "\t" + strconv.FormatInt(count-2, 10))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Q21 sub-tree: a single job whose reducer evaluates the whole Left Outer
// Join 1 sub-tree semantically, with the short-path of §VII.C case 4.
// ---------------------------------------------------------------------------

// Q21 builds the hand-coded program for the Left Outer Join 1 sub-tree.
func Q21(name string) *Program {
	lineitem := mustSchema("lineitem")
	orders := mustSchema("orders")
	out := "tmp/" + name + "/hand/result"

	job := &mapreduce.Job{
		Name: name + "-hand-j1[whole-subtree]",
		Inputs: []mapreduce.Input{
			{
				Path: translator.TablePath("lineitem"),
				Mapper: mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
					row, err := exec.DecodeRow(line, lineitem)
					if err != nil {
						return err
					}
					late := "0"
					if row[5].I > row[6].I { // l_receiptdate > l_commitdate
						late = "1"
					}
					// key l_orderkey, value "L<suppkey>:<late>".
					emit(strconv.FormatInt(row[0].I, 10),
						"L"+strconv.FormatInt(row[2].I, 10)+":"+late)
					return nil
				}),
			},
			{
				Path: translator.TablePath("orders"),
				Mapper: mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
					row, err := exec.DecodeRow(line, orders)
					if err != nil {
						return err
					}
					if row[2].S != "F" { // o_orderstatus = 'F' in the map phase
						return nil
					}
					emit(strconv.FormatInt(row[0].I, 10), "O")
					return nil
				}),
			},
		},
		Reducer: mapreduce.ReducerFunc(q21Reduce),
		Output:  out,
	}
	return &Program{
		Jobs:   []*mapreduce.Job{job},
		Output: out,
		OutputSchema: exec.NewSchema(
			exec.Column{Name: "l_suppkey", Type: exec.TypeInt},
		),
	}
}

// q21Reduce evaluates JOIN1, AGG1, JOIN2, AGG2 and the left outer join for
// one l_orderkey group.
func q21Reduce(_ string, values []string, emit func(string)) error {
	// Short-path (paper §VII.C case 4): if no order with status 'F'
	// reached this key, JOIN1 — and therefore the whole sub-tree — has no
	// output. Return before touching the lineitem values.
	hasOrder := false
	for _, v := range values {
		if v == "O" {
			hasOrder = true
			break
		}
	}
	if !hasOrder {
		return nil
	}

	var all, late []int64
	for _, v := range values {
		if v == "O" {
			continue
		}
		if !strings.HasPrefix(v, "L") {
			return fmt.Errorf("unexpected value %q", v)
		}
		sep := strings.IndexByte(v, ':')
		supp, err := strconv.ParseInt(v[1:sep], 10, 64)
		if err != nil {
			return err
		}
		all = append(all, supp)
		if v[sep+1:] == "1" {
			late = append(late, supp)
		}
	}
	if len(late) == 0 {
		return nil // sq1 (late lineitems joined with 'F' orders) is empty
	}

	// AGG1 over all lineitems: cs = count(distinct suppkey), ms = max.
	cs, ms := distinctAndMax(all)
	// AGG2 over late lineitems: the sq3 side of the outer join.
	cs3, ms3 := distinctAndMax(late)

	// sq1 rows are the late lineitems (each joined to the single 'F'
	// order); JOIN2 keeps those from multi-supplier orders; the outer join
	// side sq3 always exists here, so the final WHERE reduces to
	// cs3 = 1 AND suppkey = ms3.
	for _, supp := range late {
		if cs > 1 || (cs == 1 && supp != ms) {
			if cs3 == 1 && supp == ms3 {
				emit(strconv.FormatInt(supp, 10))
			}
		}
	}
	return nil
}

func distinctAndMax(supps []int64) (distinct int64, max int64) {
	seen := make(map[int64]bool, len(supps))
	for _, s := range supps {
		if !seen[s] {
			seen[s] = true
			distinct++
		}
		if s > max {
			max = s
		}
	}
	return distinct, max
}
