package server

import (
	"strings"
	"sync"
	"testing"

	"ysmart/internal/obs"
	"ysmart/internal/queries"
	"ysmart/internal/translator"
)

func newTestCache(capacity int, reg *obs.Registry) *PlanCache {
	return NewPlanCache(capacity, translator.YSmart, queries.Catalog(), reg)
}

func TestPlanCacheHitOnNormalizedVariants(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCache(8, reg)

	p1, err := c.Get(queries.QAGG)
	if err != nil {
		t.Fatalf("first get: %v", err)
	}
	if p1.Hit {
		t.Fatal("first get reported a hit on an empty cache")
	}
	p1.Release()

	// Same query, different whitespace, identifier case and a trailing
	// semicolon: must normalize to the same cache entry.
	variant := strings.ToUpper(strings.Join(strings.Fields(queries.QAGG), "  ")) + " ;"
	p2, err := c.Get(variant)
	if err != nil {
		t.Fatalf("variant get: %v", err)
	}
	if !p2.Hit {
		t.Fatalf("variant %q missed the cache", variant)
	}
	if p2.Normalized != p1.Normalized {
		t.Fatalf("normalized forms differ: %q vs %q", p2.Normalized, p1.Normalized)
	}
	p2.Release()

	entries, hits, misses, evictions := c.Stats()
	if entries != 1 || hits != 1 || misses != 1 || evictions != 0 {
		t.Fatalf("stats = entries %d, hits %v, misses %v, evictions %v; want 1, 1, 1, 0",
			entries, hits, misses, evictions)
	}
}

func TestPlanCacheRejectsBadSQL(t *testing.T) {
	c := newTestCache(4, nil)
	if _, err := c.Get("   "); err == nil {
		t.Fatal("empty statement did not error")
	}
	if _, err := c.Get("SELECT FROM WHERE"); err == nil {
		t.Fatal("unparsable statement did not error")
	}
	if entries, _, _, _ := c.Stats(); entries != 0 {
		t.Fatalf("failed gets left %d entries in the cache", entries)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCache(2, reg)
	q := queries.Named()

	for _, name := range []string{"Q-AGG", "Q-CSA"} {
		p, err := c.Get(q[name])
		if err != nil {
			t.Fatalf("get %s: %v", name, err)
		}
		p.Release()
	}
	// Touch Q-AGG so Q-CSA is the LRU victim when Q17 arrives.
	p, err := c.Get(q["Q-AGG"])
	if err != nil {
		t.Fatalf("touch Q-AGG: %v", err)
	}
	p.Release()
	p, err = c.Get(q["Q17"])
	if err != nil {
		t.Fatalf("get Q17: %v", err)
	}
	p.Release()

	entries, _, _, evictions := c.Stats()
	if entries != 2 || evictions != 1 {
		t.Fatalf("after overflow: entries %d evictions %v, want 2 and 1", entries, evictions)
	}
	p, err = c.Get(q["Q-AGG"])
	if err != nil {
		t.Fatalf("re-get Q-AGG: %v", err)
	}
	if !p.Hit {
		t.Fatal("recently touched Q-AGG was evicted; LRU order is wrong")
	}
	p.Release()
	p, err = c.Get(q["Q-CSA"])
	if err != nil {
		t.Fatalf("re-get Q-CSA: %v", err)
	}
	if p.Hit {
		t.Fatal("Q-CSA should have been the eviction victim")
	}
	p.Release()
}

// TestPlanCacheLeasing checks that concurrent leases of one entry never share
// a translation, and that released translations are pooled for reuse.
func TestPlanCacheLeasing(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCache(4, reg)

	p1, err := c.Get(queries.QAGG)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	p2, err := c.Get(queries.QAGG) // pool empty: must re-lower, not share
	if err != nil {
		t.Fatalf("second get: %v", err)
	}
	if p1.Translation == p2.Translation {
		t.Fatal("two live leases share one translation")
	}
	if got := reg.Value("ysmart_server_plancache_retranslations_total"); got != 1 {
		t.Fatalf("retranslations = %v, want 1", got)
	}

	p1.Release()
	p2.Release()
	p3, err := c.Get(queries.QAGG)
	if err != nil {
		t.Fatalf("third get: %v", err)
	}
	if p3.Translation != p1.Translation && p3.Translation != p2.Translation {
		t.Fatal("released translation was not pooled for reuse")
	}
	if got := reg.Value("ysmart_server_plancache_retranslations_total"); got != 1 {
		t.Fatalf("pooled lease re-lowered anyway: retranslations = %v", got)
	}
	p3.Release()
}

// TestPlanCacheConcurrent hammers one cache from many goroutines (run under
// -race) and checks the counters balance.
func TestPlanCacheConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	c := newTestCache(8, reg)
	q := queries.Named()
	sqls := []string{q["Q-AGG"], q["Q-CSA"], q["Q17"]}

	const goroutines = 8
	const perG = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p, err := c.Get(sqls[(g+i)%len(sqls)])
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				p.Release()
			}
		}(g)
	}
	wg.Wait()

	entries, hits, misses, _ := c.Stats()
	if entries != len(sqls) {
		t.Fatalf("entries = %d, want %d", entries, len(sqls))
	}
	if hits+misses != goroutines*perG {
		t.Fatalf("hits (%v) + misses (%v) != %d lookups", hits, misses, goroutines*perG)
	}
}

// TestPlanCacheManimalKeying is the optimizer-dimension correctness proof:
// a cache serving MANIMAL-optimized plans and one serving plain plans must
// never alias — different cache keys, different QueryTag-derived DFS
// prefixes, no shared pooled translation — and both must stay
// byte-identical to the DBMS oracle. Without CacheKeyOpt the two
// configurations would collide on normalized SQL and an optimized chain
// could leak into a session that asked for plain execution (or write over
// the plain chain's deterministic DFS paths).
func TestPlanCacheManimalKeying(t *testing.T) {
	sql := "SELECT l_shipmode, count(*) AS ship_count FROM lineitem WHERE l_shipdate >= 9300 GROUP BY l_shipmode"

	plainKey, err := translator.CacheKeyOpt(sql, translator.YSmart, false)
	if err != nil {
		t.Fatal(err)
	}
	optKey, err := translator.CacheKeyOpt(sql, translator.YSmart, true)
	if err != nil {
		t.Fatal(err)
	}
	if plainKey == optKey {
		t.Fatal("optimized and plain cache keys are identical")
	}

	plain := newTestCache(4, nil)
	opt := newTestCache(4, nil)
	opt.SetOptimize(true)

	pp, err := plain.Get(sql)
	if err != nil {
		t.Fatal(err)
	}
	po, err := opt.Get(sql)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Translation == po.Translation {
		t.Fatal("optimized and plain leases share one translation")
	}
	if pp.Translation.Output == po.Translation.Output {
		t.Fatalf("optimized and plain chains share the DFS output path %s", pp.Translation.Output)
	}
	prefilters := 0
	for _, j := range po.Translation.Jobs {
		for i := range j.Inputs {
			if j.Inputs[i].Prefilter != nil {
				prefilters++
			}
		}
	}
	if prefilters == 0 {
		t.Fatal("optimized lease of a filtered scan carries no prefilter")
	}
	for _, j := range pp.Translation.Jobs {
		for i := range j.Inputs {
			if j.Inputs[i].Prefilter != nil {
				t.Fatal("plain lease carries a prefilter")
			}
		}
	}

	plainLines := runLeased(t, pp)
	optLines := runLeased(t, po)
	pp.Release()
	po.Release()
	want := oracleLines(t, sql)
	diffLines(t, "plain vs oracle", plainLines, want)
	diffLines(t, "manimal vs oracle", optLines, want)

	// A pooled optimized lease keeps its prefilters across reuse.
	po2, err := opt.Get(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !po2.Hit {
		t.Fatal("second optimized get missed its own cache")
	}
	if po2.Translation.Jobs[0].Inputs[0].Prefilter == nil {
		t.Fatal("pooled optimized translation lost its prefilter")
	}
	diffLines(t, "pooled manimal vs oracle", runLeased(t, po2), want)
	po2.Release()
}

// TestPlanCacheResultsByteIdentical is the cache's correctness oracle: a
// fresh (uncached) plan, a cache-hit pooled lease and a re-lowered lease must
// all produce byte-identical sorted results, and those must match the
// single-node DBMS executor.
func TestPlanCacheResultsByteIdentical(t *testing.T) {
	q := queries.Named()
	for _, name := range []string{"Q-AGG", "Q-CSA"} {
		sql := q[name]
		c := newTestCache(4, nil)

		miss, err := c.Get(sql)
		if err != nil {
			t.Fatalf("%s miss get: %v", name, err)
		}
		relowered, err := c.Get(sql) // pool empty while miss is leased
		if err != nil {
			t.Fatalf("%s re-lowered get: %v", name, err)
		}
		missLines := runLeased(t, miss)
		reloweredLines := runLeased(t, relowered)
		miss.Release()
		relowered.Release()

		pooled, err := c.Get(sql)
		if err != nil {
			t.Fatalf("%s pooled get: %v", name, err)
		}
		if !pooled.Hit {
			t.Fatalf("%s pooled get missed", name)
		}
		pooledLines := runLeased(t, pooled)
		pooled.Release()

		want := oracleLines(t, sql)
		diffLines(t, name+" uncached vs oracle", missLines, want)
		diffLines(t, name+" re-lowered vs oracle", reloweredLines, want)
		diffLines(t, name+" pooled rerun vs oracle", pooledLines, want)
	}
}
