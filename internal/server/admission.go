package server

import (
	"errors"
	"sync"
	"time"

	"ysmart/internal/obs"
)

// Admission errors.
var (
	// ErrQueueFull rejects a query when the FIFO wait queue is at capacity
	// (SQLSTATE 53300 on the wire).
	ErrQueueFull = errors.New("admission queue full")
	// ErrQueryTimeout rejects a query whose deadline expired while it was
	// still waiting for a slot (SQLSTATE 57014 on the wire).
	ErrQueryTimeout = errors.New("query timeout expired while queued")
	// ErrDraining rejects queries arriving or waiting during graceful
	// shutdown (SQLSTATE 57P01 on the wire).
	ErrDraining = errors.New("server is draining")
)

// Admission is the server's load shield: at most maxInflight queries
// execute at once, up to maxQueued more wait in strict FIFO order, and a
// waiter whose per-query deadline expires (or that is still queued when the
// server drains) is rejected without ever running. It is safe for
// concurrent use.
//
// Metrics land in the registry as ysmart_server_inflight and
// ysmart_server_queue_depth gauges, the ysmart_server_admission_wait_seconds
// histogram (every admitted query, including zero-wait fast paths), and
// ysmart_server_admission_rejected_total{reason=...} counters.
type Admission struct {
	reg *obs.Registry

	mu        sync.Mutex
	max       int
	maxQueued int
	inflight  int
	queue     []*waiter // FIFO: queue[0] is granted first
	draining  bool
	idle      chan struct{} // closed when draining and inflight == 0
}

// waiter is one queued acquisition; grant is closed with granted set by the
// releasing goroutine, or the waiter gives up and marks itself abandoned.
type waiter struct {
	grant     chan struct{}
	abandoned bool
}

// NewAdmission builds a controller admitting maxInflight concurrent
// queries (< 1 means 1) with a wait queue of maxQueued (< 0 means 0:
// immediate rejection when saturated). The registry may be nil.
func NewAdmission(maxInflight, maxQueued int, reg *obs.Registry) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &Admission{max: maxInflight, maxQueued: maxQueued, reg: reg, idle: make(chan struct{})}
}

// Acquire blocks until a slot is granted, the deadline expires, or the
// controller drains. A zero deadline means wait forever. On success the
// returned release function must be called exactly once when the query
// finishes (or its abandoned run completes).
func (a *Admission) Acquire(deadline time.Time) (release func(), err error) {
	start := time.Now()
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		a.reject("draining")
		return nil, ErrDraining
	}
	if a.inflight < a.max {
		a.inflight++
		a.gauges()
		a.mu.Unlock()
		a.observeWait(0)
		return a.releaseFunc(), nil
	}
	if len(a.queue) >= a.maxQueued {
		a.mu.Unlock()
		a.reject("queue_full")
		return nil, ErrQueueFull
	}
	w := &waiter{grant: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.gauges()
	a.mu.Unlock()

	var timeout <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.grant:
		if w.abandoned {
			// Drain closed the grant channel without admitting us.
			a.reject("draining")
			return nil, ErrDraining
		}
		a.observeWait(time.Since(start).Seconds())
		return a.releaseFunc(), nil
	case <-timeout:
		a.mu.Lock()
		select {
		case <-w.grant:
			// The grant raced the timer; we own a slot after all.
			if !w.abandoned {
				a.mu.Unlock()
				a.observeWait(time.Since(start).Seconds())
				return a.releaseFunc(), nil
			}
			a.mu.Unlock()
			a.reject("draining")
			return nil, ErrDraining
		default:
		}
		a.unqueue(w)
		a.gauges()
		a.mu.Unlock()
		a.reject("timeout")
		return nil, ErrQueryTimeout
	}
}

// releaseFunc builds the exactly-once release closure for one admitted
// query.
func (a *Admission) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(a.release) }
}

// release hands the slot to the queue head, or retires it.
func (a *Admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		close(w.grant) // admitted: the slot transfers, inflight unchanged
		a.gauges()
		return
	}
	a.inflight--
	a.gauges()
	if a.draining && a.inflight == 0 {
		close(a.idle)
	}
}

// unqueue removes an abandoned waiter. Callers hold a.mu.
func (a *Admission) unqueue(w *waiter) {
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return
		}
	}
}

// Drain stops admitting: every queued waiter is rejected immediately, new
// Acquire calls fail with ErrDraining, and Drain blocks until the last
// in-flight query releases its slot (or the timeout elapses; timeout <= 0
// waits forever). It reports whether the controller reached idle.
func (a *Admission) Drain(timeout time.Duration) bool {
	a.mu.Lock()
	if !a.draining {
		a.draining = true
		for _, w := range a.queue {
			w.abandoned = true
			close(w.grant)
		}
		a.queue = nil
		a.gauges()
		if a.inflight == 0 {
			close(a.idle)
		}
	}
	idle := a.idle
	a.mu.Unlock()

	if timeout <= 0 {
		<-idle
		return true
	}
	select {
	case <-idle:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Inflight reports the currently executing query count.
func (a *Admission) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// QueueDepth reports the current FIFO queue length.
func (a *Admission) QueueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// gauges refreshes the inflight/queue-depth gauges. Callers hold a.mu.
func (a *Admission) gauges() {
	if a.reg == nil {
		return
	}
	a.reg.Set("ysmart_server_inflight", float64(a.inflight))
	a.reg.Set("ysmart_server_queue_depth", float64(len(a.queue)))
}

// observeWait records one admitted query's time-to-slot.
func (a *Admission) observeWait(seconds float64) {
	if a.reg != nil {
		a.reg.Observe("ysmart_server_admission_wait_seconds", seconds)
	}
}

// reject counts one rejected acquisition by reason.
func (a *Admission) reject(reason string) {
	if a.reg != nil {
		a.reg.Add("ysmart_server_admission_rejected_total", 1, "reason", reason)
	}
}
