package server

import (
	"bytes"
	"testing"

	"ysmart/internal/exec"
)

func TestWireMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := newWireWriter(&buf)
	schema := &exec.Schema{Cols: []exec.Column{
		{Name: "cid", Type: exec.TypeInt},
		{Name: "rate", Type: exec.TypeFloat},
		{Name: "name", Type: exec.TypeString},
		{Name: "ok", Type: exec.TypeBool},
	}}
	if err := w.rowDescription(schema); err != nil {
		t.Fatalf("rowDescription: %v", err)
	}
	row := exec.Row{exec.Int(42), exec.Float(1.5), exec.Null(), exec.Bool(true)}
	if err := w.dataRow(row); err != nil {
		t.Fatalf("dataRow: %v", err)
	}
	if err := w.commandComplete("SELECT 1"); err != nil {
		t.Fatalf("commandComplete: %v", err)
	}
	if err := w.readyForQuery(); err != nil {
		t.Fatalf("readyForQuery: %v", err)
	}

	r := newWireReader(&buf)
	typ, body, err := r.next()
	if err != nil || typ != msgRowDescription {
		t.Fatalf("first message: type %q err %v, want RowDescription", typ, err)
	}
	if n := int(body[0])<<8 | int(body[1]); n != 4 {
		t.Fatalf("RowDescription field count = %d, want 4", n)
	}
	typ, body, err = r.next()
	if err != nil || typ != msgDataRow {
		t.Fatalf("second message: type %q err %v, want DataRow", typ, err)
	}
	cells, err := decodeDataRow(body)
	if err != nil {
		t.Fatalf("decodeDataRow: %v", err)
	}
	want := []*string{strPtr("42"), strPtr("1.5"), nil, strPtr("t")}
	if len(cells) != len(want) {
		t.Fatalf("cell count = %d, want %d", len(cells), len(want))
	}
	for i := range want {
		switch {
		case want[i] == nil && cells[i] != nil:
			t.Fatalf("cell %d = %q, want NULL", i, *cells[i])
		case want[i] != nil && (cells[i] == nil || *cells[i] != *want[i]):
			t.Fatalf("cell %d = %v, want %q", i, cells[i], *want[i])
		}
	}
	typ, body, err = r.next()
	if err != nil || typ != msgCommandComplete || cString(body) != "SELECT 1" {
		t.Fatalf("third message: type %q tag %q err %v, want CommandComplete SELECT 1", typ, cString(body), err)
	}
	typ, body, err = r.next()
	if err != nil || typ != msgReadyForQuery || len(body) != 1 || body[0] != 'I' {
		t.Fatalf("fourth message: type %q body %q err %v, want ReadyForQuery idle", typ, body, err)
	}
}

func strPtr(s string) *string { return &s }

func TestErrorResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := newWireWriter(&buf)
	if err := w.errorResponse(sqlstateSyntaxError, "no such table"); err != nil {
		t.Fatalf("errorResponse: %v", err)
	}
	if err := w.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	r := newWireReader(&buf)
	typ, body, err := r.next()
	if err != nil || typ != msgErrorResponse {
		t.Fatalf("message: type %q err %v, want ErrorResponse", typ, err)
	}
	e := decodeError(body)
	if e.Severity != "ERROR" || e.Code != sqlstateSyntaxError || e.Message != "no such table" {
		t.Fatalf("decoded error = %+v", e)
	}
}

func TestStartupParams(t *testing.T) {
	payload := []byte("user\x00alice\x00database\x00clicks\x00\x00")
	params := startupParams(payload)
	if params["user"] != "alice" || params["database"] != "clicks" {
		t.Fatalf("params = %v", params)
	}
}

func TestMessageLengthBounds(t *testing.T) {
	// A hostile length field must not allocate; both readers reject it.
	var buf bytes.Buffer
	buf.Write([]byte{0x7f, 0xff, 0xff, 0xff})
	if _, _, err := newWireReader(&buf).startup(); err == nil {
		t.Fatal("oversized startup length accepted")
	}
	buf.Reset()
	buf.WriteByte(msgQuery)
	buf.Write([]byte{0x7f, 0xff, 0xff, 0xff})
	if _, _, err := newWireReader(&buf).next(); err == nil {
		t.Fatal("oversized message length accepted")
	}
}

func TestTextValue(t *testing.T) {
	cases := []struct {
		v    exec.Value
		want string
	}{
		{exec.Bool(true), "t"},
		{exec.Bool(false), "f"},
		{exec.Int(-7), "-7"},
		{exec.Float(2.5), "2.5"},
		{exec.Str("x"), "x"},
		{exec.Null(), "NULL"},
	}
	for _, c := range cases {
		if got := TextValue(c.v); got != c.want {
			t.Errorf("TextValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTypeOIDs(t *testing.T) {
	cases := []struct {
		t    exec.Type
		oid  int32
		size int16
	}{
		{exec.TypeBool, oidBool, 1},
		{exec.TypeInt, oidInt8, 8},
		{exec.TypeFloat, oidFloat8, 8},
		{exec.TypeString, oidText, -1},
		{exec.TypeNull, oidText, -1},
	}
	for _, c := range cases {
		oid, size := typeOID(c.t)
		if oid != c.oid || size != c.size {
			t.Errorf("typeOID(%v) = %d/%d, want %d/%d", c.t, oid, size, c.oid, c.size)
		}
	}
}
