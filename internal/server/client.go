package server

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"
)

// Client is a minimal PostgreSQL simple-query-protocol client: enough to
// drive a Server (or a real PostgreSQL) from the load generator and the
// end-to-end tests — startup, Query, result collection, Terminate. One
// query at a time; not safe for concurrent use.
type Client struct {
	conn   net.Conn
	reader *wireReader
	writer *wireWriter
	params map[string]string
}

// QueryResult is one statement's outcome: column names, rows in text
// format (nil cell = NULL), and the server's command tag.
type QueryResult struct {
	Columns []string
	Rows    [][]*string
	Tag     string
}

// ServerError is an ErrorResponse surfaced by Query, carrying the
// SQLSTATE the server attached.
type ServerError struct {
	Severity string
	Code     string
	Message  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("%s (SQLSTATE %s)", e.Message, e.Code)
}

// Dial connects to addr, performs the v3 startup handshake as user/database
// and waits for ReadyForQuery. The timeout bounds the whole handshake
// (0 = no deadline).
func Dial(addr, user, database string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	c := &Client{
		conn:   conn,
		reader: newWireReader(conn),
		writer: newWireWriter(conn),
		params: map[string]string{},
	}
	if err := c.startup(user, database); err != nil {
		conn.Close()
		return nil, err
	}
	if timeout > 0 {
		_ = conn.SetDeadline(time.Time{})
	}
	return c, nil
}

// startup sends the StartupMessage and consumes the handshake train.
func (c *Client) startup(user, database string) error {
	var payload []byte
	payload = binary.BigEndian.AppendUint32(payload, protocolVersion3)
	for _, kv := range [][2]string{{"user", user}, {"database", database}} {
		if kv[1] == "" {
			continue
		}
		payload = append(append(payload, kv[0]...), 0)
		payload = append(append(payload, kv[1]...), 0)
	}
	payload = append(payload, 0)
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)+4))
	if _, err := c.conn.Write(append(hdr[:], payload...)); err != nil {
		return err
	}
	for {
		typ, body, err := c.reader.next()
		if err != nil {
			return err
		}
		switch typ {
		case msgAuthentication:
			if len(body) < 4 || binary.BigEndian.Uint32(body[:4]) != 0 {
				return fmt.Errorf("server demands authentication; only trust is supported")
			}
		case msgParameterStatus:
			fields := splitCStrings(body)
			if len(fields) >= 2 {
				c.params[fields[0]] = fields[1]
			}
		case msgBackendKeyData, msgNoticeResponse:
			// ignored
		case msgErrorResponse:
			return decodeError(body)
		case msgReadyForQuery:
			return nil
		default:
			return fmt.Errorf("unexpected handshake message %q", typ)
		}
	}
}

// Parameter returns a ParameterStatus value reported during startup.
func (c *Client) Parameter(key string) string { return c.params[key] }

// Query runs one statement and collects its full result. A server-reported
// failure returns a *ServerError after the stream re-synchronizes on
// ReadyForQuery, so the client stays usable.
func (c *Client) Query(sql string) (*QueryResult, error) {
	c.writer.begin()
	c.writer.cstr(sql)
	if err := c.writer.end(msgQuery); err != nil {
		return nil, err
	}
	if err := c.writer.flush(); err != nil {
		return nil, err
	}
	res := &QueryResult{}
	var srvErr *ServerError
	for {
		typ, body, err := c.reader.next()
		if err != nil {
			return nil, err
		}
		switch typ {
		case msgRowDescription:
			if len(body) < 2 {
				return nil, fmt.Errorf("short RowDescription")
			}
			n := int(binary.BigEndian.Uint16(body[:2]))
			rest := body[2:]
			for i := 0; i < n; i++ {
				name := cString(rest)
				res.Columns = append(res.Columns, name)
				// name NUL + 4 (table oid) + 2 (attnum) + 4 (type oid)
				// + 2 (size) + 4 (typmod) + 2 (format)
				skip := len(name) + 1 + 18
				if skip > len(rest) {
					return nil, fmt.Errorf("short RowDescription field")
				}
				rest = rest[skip:]
			}
		case msgDataRow:
			row, err := decodeDataRow(body)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		case msgCommandComplete:
			res.Tag = cString(body)
		case msgEmptyQuery, msgNoticeResponse, msgParameterStatus:
			// ignored
		case msgErrorResponse:
			srvErr = decodeError(body)
		case msgReadyForQuery:
			if srvErr != nil {
				return nil, srvErr
			}
			return res, nil
		default:
			return nil, fmt.Errorf("unexpected message %q", typ)
		}
	}
}

// Close sends Terminate and closes the connection.
func (c *Client) Close() error {
	c.writer.begin()
	_ = c.writer.end(msgTerminate)
	_ = c.writer.flush()
	return c.conn.Close()
}

// decodeDataRow parses a DataRow body into text cells (nil = NULL).
func decodeDataRow(body []byte) ([]*string, error) {
	if len(body) < 2 {
		return nil, fmt.Errorf("short DataRow")
	}
	n := int(binary.BigEndian.Uint16(body[:2]))
	rest := body[2:]
	row := make([]*string, 0, n)
	for i := 0; i < n; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("short DataRow cell header")
		}
		l := int32(binary.BigEndian.Uint32(rest[:4]))
		rest = rest[4:]
		if l < 0 {
			row = append(row, nil)
			continue
		}
		if int(l) > len(rest) {
			return nil, fmt.Errorf("short DataRow cell")
		}
		s := string(rest[:l])
		row = append(row, &s)
		rest = rest[l:]
	}
	return row, nil
}

// decodeError parses an ErrorResponse body's tagged fields.
func decodeError(body []byte) *ServerError {
	e := &ServerError{}
	rest := body
	for len(rest) > 0 && rest[0] != 0 {
		tag := rest[0]
		val := cString(rest[1:])
		rest = rest[1+len(val)+1:]
		switch tag {
		case 'S':
			e.Severity = val
		case 'C':
			e.Code = val
		case 'M':
			e.Message = val
		}
	}
	return e
}
