package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ysmart/internal/obs"
)

func TestAdmissionFastPathAndQueueFull(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(2, 0, reg)

	r1, err := a.Acquire(time.Time{})
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	r2, err := a.Acquire(time.Time{})
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	if _, err := a.Acquire(time.Time{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third acquire with zero queue: err = %v, want ErrQueueFull", err)
	}
	if got := reg.Value("ysmart_server_admission_rejected_total", "reason", "queue_full"); got != 1 {
		t.Fatalf("queue_full rejections = %v, want 1", got)
	}

	r1()
	r1() // release is idempotent
	if got := a.Inflight(); got != 1 {
		t.Fatalf("inflight after release = %d, want 1", got)
	}
	r3, err := a.Acquire(time.Time{})
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	r3()
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after all releases = %d, want 0", got)
	}
}

// TestAdmissionFIFOOrder queues waiters one at a time behind a held slot and
// checks they are granted in arrival order as the slot hands over.
func TestAdmissionFIFOOrder(t *testing.T) {
	a := NewAdmission(1, 16, nil)
	hold, err := a.Acquire(time.Time{})
	if err != nil {
		t.Fatalf("hold acquire: %v", err)
	}

	const waiters = 5
	granted := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			release, err := a.Acquire(time.Time{})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			granted <- i
			release()
		}(i)
		// Wait until this waiter is queued before starting the next, so
		// arrival order is deterministic.
		for a.QueueDepth() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}

	hold()
	wg.Wait()
	close(granted)
	want := 0
	for got := range granted {
		if got != want {
			t.Fatalf("grant order: got waiter %d at position %d", got, want)
		}
		want++
	}
	if a.Inflight() != 0 || a.QueueDepth() != 0 {
		t.Fatalf("controller not idle: inflight=%d queued=%d", a.Inflight(), a.QueueDepth())
	}
}

func TestAdmissionTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(1, 16, reg)
	hold, err := a.Acquire(time.Time{})
	if err != nil {
		t.Fatalf("hold acquire: %v", err)
	}
	if _, err := a.Acquire(time.Now().Add(20 * time.Millisecond)); !errors.Is(err, ErrQueryTimeout) {
		t.Fatalf("queued acquire past deadline: err = %v, want ErrQueryTimeout", err)
	}
	if got := a.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after timeout = %d, want 0 (waiter must be unqueued)", got)
	}
	if got := reg.Value("ysmart_server_admission_rejected_total", "reason", "timeout"); got != 1 {
		t.Fatalf("timeout rejections = %v, want 1", got)
	}
	hold()
	// The timed-out waiter must not have consumed the slot.
	release, err := a.Acquire(time.Time{})
	if err != nil {
		t.Fatalf("acquire after timeout cycle: %v", err)
	}
	release()
}

func TestAdmissionDrain(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAdmission(1, 16, reg)
	hold, err := a.Acquire(time.Time{})
	if err != nil {
		t.Fatalf("hold acquire: %v", err)
	}

	queuedErr := make(chan error, 1)
	go func() {
		_, err := a.Acquire(time.Time{})
		queuedErr <- err
	}()
	for a.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}

	// Drain with a held slot times out; the queued waiter is rejected
	// immediately either way.
	if a.Drain(30 * time.Millisecond) {
		t.Fatal("drain reported idle while a query was in flight")
	}
	if err := <-queuedErr; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued waiter during drain: err = %v, want ErrDraining", err)
	}
	if _, err := a.Acquire(time.Time{}); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire during drain: err = %v, want ErrDraining", err)
	}

	// Releasing the last slot lets a second Drain reach idle.
	hold()
	if !a.Drain(time.Second) {
		t.Fatal("drain after final release did not reach idle")
	}
	if got := reg.Value("ysmart_server_admission_rejected_total", "reason", "draining"); got != 2 {
		t.Fatalf("draining rejections = %v, want 2", got)
	}
}

// TestAdmissionSlotTransfer checks a released slot hands directly to the
// queue head without the inflight count dipping.
func TestAdmissionSlotTransfer(t *testing.T) {
	a := NewAdmission(1, 1, nil)
	hold, _ := a.Acquire(time.Time{})
	got := make(chan func(), 1)
	go func() {
		release, err := a.Acquire(time.Time{})
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		got <- release
	}()
	for a.QueueDepth() != 1 {
		time.Sleep(time.Millisecond)
	}
	hold()
	release := <-got
	if n := a.Inflight(); n != 1 {
		t.Fatalf("inflight after transfer = %d, want 1", n)
	}
	release()
	if n := a.Inflight(); n != 0 {
		t.Fatalf("inflight after release = %d, want 0", n)
	}
}
