package server

import (
	"container/list"
	"fmt"
	"sync"

	"ysmart/internal/correlation"
	"ysmart/internal/exec"
	"ysmart/internal/obs"
	"ysmart/internal/optanalysis"
	"ysmart/internal/plan"
	"ysmart/internal/sqlparser"
	"ysmart/internal/translator"
)

// PlanCache memoizes the parse -> plan -> correlation-analysis -> translate
// pipeline keyed by normalized SQL (translator.NormalizeSQL) and mode. It is
// safe for concurrent use by many sessions.
//
// A cached chain is not handed out shared: the engine's reducers fold
// cumulative per-job accounting (see cmf's commonReducer), so one
// *translator.Translation must never execute on two engines at once. The
// cache therefore leases translations — Get pops an idle translation from
// the entry's pool (or re-lowers one from the cached analysis when every
// copy is in flight), and Plan.Release returns it. The expensive and
// alias-prone front half (lexing, parsing, plan building, correlation
// analysis) always comes from the cache on a hit.
//
// Eviction is LRU over whole entries; counters land in the registry as
// ysmart_server_plancache_{hits,misses,evictions,retranslations}_total plus
// the ysmart_server_plancache_entries gauge.
type PlanCache struct {
	mode     translator.Mode
	cat      plan.Catalog
	cap      int
	reg      *obs.Registry
	optimize bool

	mu      sync.Mutex
	entries map[string]*list.Element // cache key -> lru element
	lru     *list.List               // front = most recently used
}

// cacheEntry is one cached query: the reusable analysis plus a pool of idle
// translations.
type cacheEntry struct {
	key      string
	queryTag string
	analysis *correlation.Analysis
	schema   *exec.Schema
	norm     string

	// free holds idle leased-back translations, bounded by maxPooled.
	free []*translator.Translation
}

// maxPooled bounds the idle translations kept per entry; beyond it a
// released translation is dropped (the analysis stays, so re-lowering is
// still cheap).
const maxPooled = 8

// NewPlanCache builds a cache holding at most capacity entries (capacity
// < 1 means 1) translating in the given mode against the catalog. The
// registry may be nil.
func NewPlanCache(capacity int, mode translator.Mode, cat plan.Catalog, reg *obs.Registry) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		mode:    mode,
		cat:     cat,
		cap:     capacity,
		reg:     reg,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// SetOptimize switches the cache to the MANIMAL pipeline: cache keys gain
// the optimizer dimension (translator.CacheKeyOpt, so optimized and plain
// plans of the same SQL never share an entry, a pooled translation, or a
// QueryTag-derived DFS path), and every lowered translation gets the
// prefilters its scan facts prove sound. Call it before the first Get; it
// is not safe to flip on a cache already serving sessions.
func (c *PlanCache) SetOptimize(on bool) { c.optimize = on }

// Plan is one leased executable plan. Exactly one query executes it at a
// time; Release must be called when the run (or its abandonment) finishes.
type Plan struct {
	// Translation is the leased job chain, exclusively owned until Release.
	Translation *translator.Translation
	// Schema is the query's output schema.
	Schema *exec.Schema
	// Normalized is the canonical SQL text the plan was cached under.
	Normalized string
	// Hit reports whether the front half came from the cache.
	Hit bool

	cache *PlanCache
	entry *cacheEntry
}

// Release returns the leased translation to the entry's idle pool. It is
// idempotent.
func (p *Plan) Release() {
	if p == nil || p.cache == nil {
		return
	}
	c, e, tr := p.cache, p.entry, p.Translation
	p.cache = nil
	c.mu.Lock()
	defer c.mu.Unlock()
	// The entry may have been evicted while the lease was out; its pool is
	// then garbage and the translation is simply dropped.
	if _, live := c.entries[e.key]; live && len(e.free) < maxPooled {
		e.free = append(e.free, tr)
	}
}

// Get resolves sql to a leased plan, consulting the cache first. Errors
// are client errors (bad SQL) — the cache itself never fails.
func (c *PlanCache) Get(sql string) (*Plan, error) {
	key, err := translator.CacheKeyOpt(sql, c.mode, c.optimize)
	if err != nil {
		return nil, fmt.Errorf("normalize: %w", err)
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		var tr *translator.Translation
		if n := len(e.free); n > 0 {
			tr = e.free[n-1]
			e.free = e.free[:n-1]
		}
		c.count("hits")
		c.mu.Unlock()
		if tr == nil {
			// Every pooled copy is executing right now: re-lower a fresh
			// chain from the cached analysis (parse/plan/analyze skipped).
			tr, err = c.lower(e)
			if err != nil {
				return nil, err
			}
			c.count("retranslations")
		}
		return &Plan{Translation: tr, Schema: e.schema, Normalized: e.norm, Hit: true, cache: c, entry: e}, nil
	}
	c.mu.Unlock()

	// Miss: run the full front half outside the lock (parsing concurrent
	// queries must not serialize), then insert.
	e, tr, err := c.build(sql, key)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Another session built the same entry concurrently; keep the
		// winner's entry and lease our freshly built translation against it.
		c.lru.MoveToFront(el)
		e = el.Value.(*cacheEntry)
	} else {
		c.entries[key] = c.lru.PushFront(e)
		for c.lru.Len() > c.cap {
			back := c.lru.Back()
			victim := back.Value.(*cacheEntry)
			c.lru.Remove(back)
			delete(c.entries, victim.key)
			victim.free = nil
			c.count("evictions")
		}
		c.gauge()
	}
	c.count("misses")
	c.mu.Unlock()
	return &Plan{Translation: tr, Schema: e.schema, Normalized: e.norm, Hit: false, cache: c, entry: e}, nil
}

// build runs the full pipeline for a miss: parse, plan, analyze, lower.
func (c *PlanCache) build(sql, key string) (*cacheEntry, *translator.Translation, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, fmt.Errorf("parse: %w", err)
	}
	root, err := plan.Build(stmt, c.cat)
	if err != nil {
		return nil, nil, fmt.Errorf("plan: %w", err)
	}
	a, err := correlation.Analyze(root)
	if err != nil {
		return nil, nil, fmt.Errorf("analyze: %w", err)
	}
	norm, _ := translator.NormalizeSQL(sql)
	e := &cacheEntry{
		key:      key,
		queryTag: translator.QueryTag(key),
		analysis: a,
		schema:   root.Schema(),
		norm:     norm,
	}
	tr, err := c.lower(e)
	if err != nil {
		return nil, nil, err
	}
	return e, tr, nil
}

// lower produces an executable translation from a cached analysis. The
// query tag keys the chain's DFS paths, so every lease of the same entry
// writes the same deterministic paths.
func (c *PlanCache) lower(e *cacheEntry) (*translator.Translation, error) {
	tr, err := translator.TranslateAnalyzed(e.analysis, c.mode, translator.Options{QueryName: e.queryTag})
	if err != nil {
		return nil, fmt.Errorf("translate: %w", err)
	}
	if c.optimize {
		optanalysis.ApplyTranslation(tr)
	}
	return tr, nil
}

// Stats reports the cache's live entry count and lifetime counters.
func (c *PlanCache) Stats() (entries int, hits, misses, evictions float64) {
	c.mu.Lock()
	entries = c.lru.Len()
	c.mu.Unlock()
	if c.reg == nil {
		return entries, 0, 0, 0
	}
	return entries,
		c.reg.Value("ysmart_server_plancache_hits_total"),
		c.reg.Value("ysmart_server_plancache_misses_total"),
		c.reg.Value("ysmart_server_plancache_evictions_total")
}

// count bumps one lifetime cache counter.
func (c *PlanCache) count(which string) {
	if c.reg != nil {
		c.reg.Add("ysmart_server_plancache_"+which+"_total", 1)
	}
}

// gauge refreshes the live entry-count gauge. Callers hold c.mu.
func (c *PlanCache) gauge() {
	if c.reg != nil {
		c.reg.Set("ysmart_server_plancache_entries", float64(c.lru.Len()))
	}
}
