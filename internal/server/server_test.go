package server

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/queries"
)

// startTestServer boots a server on a free port over the shared fixture and
// returns it with its bound address. mutate tweaks the config before New.
func startTestServer(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	_, lines := fixture(t)
	cfg := Config{
		Catalog:     queries.Catalog(),
		Cluster:     func() *mapreduce.Cluster { return mapreduce.SmallCluster() },
		MaxInflight: 2,
		MaxQueued:   16,
		CacheSize:   16,
		Registry:    obs.NewRegistry(),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg, lines)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { srv.Shutdown(10 * time.Second) })
	return srv, addr
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	cli, err := Dial(addr, "test", "ysmart", 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// TestServerEndToEnd runs a workload query over a real TCP connection and
// checks the rows against the DBMS oracle.
func TestServerEndToEnd(t *testing.T) {
	_, addr := startTestServer(t, nil)
	cli := dialTest(t, addr)

	if v := cli.Parameter("server_version"); !strings.Contains(v, "ysmart") {
		t.Fatalf("server_version = %q, want an ysmart-tagged version", v)
	}

	res, err := cli.Query(queries.QAGG)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "cid" || res.Columns[1] != "click_count" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if want := fmt.Sprintf("SELECT %d", len(res.Rows)); res.Tag != want {
		t.Fatalf("command tag = %q, want %q", res.Tag, want)
	}
	diffLines(t, "Q-AGG wire vs oracle", wireLines(res), oracleWireLines(t, queries.QAGG))
}

// TestServerPlanCacheAcrossSessions checks the second connection's identical
// query hits the shared cache and returns byte-identical rows.
func TestServerPlanCacheAcrossSessions(t *testing.T) {
	srv, addr := startTestServer(t, nil)

	cli1 := dialTest(t, addr)
	res1, err := cli1.Query(queries.QAGG)
	if err != nil {
		t.Fatalf("first query: %v", err)
	}
	cli2 := dialTest(t, addr)
	res2, err := cli2.Query(queries.QAGG)
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	diffLines(t, "cached vs uncached over the wire", wireLines(res2), wireLines(res1))

	_, hits, misses, _ := srv.Cache().Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("cache hits/misses = %v/%v, want 1/1", hits, misses)
	}
	if got := srv.Registry().Value("ysmart_server_queries_total"); got != 2 {
		t.Fatalf("queries_total = %v, want 2", got)
	}
}

// TestServerErrorsKeepConnectionUsable sends bad SQL, checks the SQLSTATE,
// then reuses the same connection.
func TestServerErrorsKeepConnectionUsable(t *testing.T) {
	srv, addr := startTestServer(t, nil)
	cli := dialTest(t, addr)

	_, err := cli.Query("SELECT bogus FROM nowhere")
	var srvErr *ServerError
	if !errors.As(err, &srvErr) {
		t.Fatalf("bad SQL: err = %v, want *ServerError", err)
	}
	if srvErr.Code != sqlstateSyntaxError {
		t.Fatalf("SQLSTATE = %s, want %s", srvErr.Code, sqlstateSyntaxError)
	}
	if got := srv.Registry().Value("ysmart_server_query_errors_total"); got != 1 {
		t.Fatalf("query_errors_total = %v, want 1", got)
	}

	res, err := cli.Query(queries.QAGG)
	if err != nil {
		t.Fatalf("query after error: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("query after error returned no rows")
	}
}

// TestServerSessionCommands checks psql's housekeeping statements are
// accepted as no-ops and empty queries get EmptyQueryResponse.
func TestServerSessionCommands(t *testing.T) {
	_, addr := startTestServer(t, nil)
	cli := dialTest(t, addr)

	for stmt, wantTag := range map[string]string{
		"SET client_min_messages = warning": "SET",
		"BEGIN":                             "BEGIN",
		"COMMIT":                            "COMMIT",
		"ROLLBACK":                          "ROLLBACK",
	} {
		res, err := cli.Query(stmt)
		if err != nil {
			t.Fatalf("%q: %v", stmt, err)
		}
		if res.Tag != wantTag {
			t.Fatalf("%q tag = %q, want %q", stmt, res.Tag, wantTag)
		}
	}
	res, err := cli.Query(" ;; ")
	if err != nil {
		t.Fatalf("empty query: %v", err)
	}
	if res.Tag != "" || len(res.Rows) != 0 {
		t.Fatalf("empty query result = %+v, want empty", res)
	}
}

func TestServerSessionsSnapshot(t *testing.T) {
	srv, addr := startTestServer(t, nil)
	cli := dialTest(t, addr)
	if _, err := cli.Query(queries.QAGG); err != nil {
		t.Fatalf("query: %v", err)
	}

	sessions := srv.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(sessions))
	}
	s := sessions[0]
	if s.User != "test" || s.Database != "ysmart" {
		t.Fatalf("session identity = %s@%s, want test@ysmart", s.User, s.Database)
	}
	if s.Queries != 1 || s.Errors != 0 {
		t.Fatalf("session counters = %+v", s)
	}

	cli.Close()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.Sessions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session lingered after Terminate")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerConcurrentClients drives several connections at once through a
// small admission window; every query must succeed and match.
func TestServerConcurrentClients(t *testing.T) {
	srv, addr := startTestServer(t, func(cfg *Config) { cfg.MaxInflight = 2; cfg.MaxQueued = 32 })
	want := oracleWireLines(t, queries.QAGG)

	const clients = 5
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(addr, "test", "ysmart", 5*time.Second)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cli.Close()
			for j := 0; j < 3; j++ {
				res, err := cli.Query(queries.QAGG)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				got := wireLines(res)
				if len(got) != len(want) {
					t.Errorf("row count %d, want %d", len(got), len(want))
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := srv.Registry().Value("ysmart_server_queries_total"); got != clients*3 {
		t.Fatalf("queries_total = %v, want %d", got, clients*3)
	}
	if _, ok := srv.Registry().Quantile("ysmart_server_admission_wait_seconds", 0.5); !ok {
		t.Fatal("admission wait histogram has no observations")
	}
}

// TestServerQueryTimeout forces every query past its deadline and checks the
// client receives SQLSTATE 57014 while the session stays orderly.
func TestServerQueryTimeout(t *testing.T) {
	srv, addr := startTestServer(t, func(cfg *Config) { cfg.QueryTimeout = time.Nanosecond })
	cli := dialTest(t, addr)

	for i := 0; i < 2; i++ { // the second query exercises the abandoned-run wait
		_, err := cli.Query(queries.QAGG)
		var srvErr *ServerError
		if !errors.As(err, &srvErr) || srvErr.Code != sqlstateQueryCanceled {
			t.Fatalf("query %d: err = %v, want SQLSTATE %s", i, err, sqlstateQueryCanceled)
		}
	}
	if got := srv.Registry().Value("ysmart_server_query_timeouts_total"); got != 2 {
		t.Fatalf("query_timeouts_total = %v, want 2", got)
	}
	// Graceful drain waits for the abandoned runs to finish.
	if !srv.Shutdown(10 * time.Second) {
		t.Fatal("shutdown did not drain after abandoned runs")
	}
}

func TestServerShutdownRefusesNewConnections(t *testing.T) {
	srv, addr := startTestServer(t, nil)
	cli := dialTest(t, addr)
	if _, err := cli.Query(queries.QAGG); err != nil {
		t.Fatalf("query: %v", err)
	}
	if !srv.Shutdown(10 * time.Second) {
		t.Fatal("shutdown did not drain an idle server")
	}
	if _, err := Dial(addr, "test", "ysmart", time.Second); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}
