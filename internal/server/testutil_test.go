package server

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"ysmart/internal/datagen"
	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/plan"
	"ysmart/internal/queries"
	"ysmart/internal/sqlparser"
	"ysmart/internal/translator"
)

// The shared test fixture: one small deterministic workload data set,
// generated once per test binary (datagen is seeded, so every caller sees
// identical rows).
var (
	fixtureOnce   sync.Once
	fixtureRows   map[string][]exec.Row
	fixtureLines  map[string][]string
	fixtureOracle map[string][]string // sql -> sorted expected lines
)

func fixture(t *testing.T) (map[string][]exec.Row, map[string][]string) {
	t.Helper()
	fixtureOnce.Do(func() {
		cfg := datagen.TPCHConfig{Orders: 150, Parts: 40, Customers: 50, Suppliers: 15, Seed: 1}
		tpch, err := datagen.TPCH(cfg)
		if err != nil {
			panic(err)
		}
		clicks, err := datagen.Clickstream(datagen.DefaultClicks())
		if err != nil {
			panic(err)
		}
		fixtureRows = make(map[string][]exec.Row, len(tpch)+len(clicks))
		for name, rows := range tpch {
			fixtureRows[name] = rows
		}
		for name, rows := range clicks {
			fixtureRows[name] = rows
		}
		fixtureLines = EncodeTables(fixtureRows)
		fixtureOracle = map[string][]string{}
	})
	return fixtureRows, fixtureLines
}

// oracleLines runs sql on the single-node DBMS executor over the fixture and
// returns the sorted codec lines — the byte-identity reference.
func oracleLines(t *testing.T, sql string) []string {
	t.Helper()
	rows, _ := fixture(t)
	if lines, ok := fixtureOracle[sql]; ok {
		return lines
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("oracle parse: %v", err)
	}
	root, err := plan.Build(stmt, queries.Catalog())
	if err != nil {
		t.Fatalf("oracle plan: %v", err)
	}
	db := dbms.NewDatabase()
	for name, tableRows := range rows {
		schema, ok := queries.Catalog().Table(name)
		if !ok {
			t.Fatalf("oracle: no schema for %s", name)
		}
		db.Load(name, schema, tableRows)
	}
	res, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatalf("oracle execute: %v", err)
	}
	lines := dbms.SortedLines(res.Rows)
	fixtureOracle[sql] = lines
	return lines
}

// runLeased executes a leased plan on a fresh engine preloaded with the
// fixture tables and returns the sorted codec lines of its result. The lease
// stays with the caller.
func runLeased(t *testing.T, p *Plan) []string {
	t.Helper()
	_, lines := fixture(t)
	eng, err := mapreduce.NewEngine(mapreduce.NewDFS(), mapreduce.SmallCluster())
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	for name, tableLines := range lines {
		eng.DFS().Write(translator.TablePath(name), tableLines)
	}
	if _, err := eng.RunChain(p.Translation.Jobs); err != nil {
		t.Fatalf("run chain: %v", err)
	}
	rows, err := p.Translation.ReadResult(eng.DFS())
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	return dbms.SortedLines(rows)
}

// wireLines renders a wire result the way the oracle comparison in the load
// generator does: server text format cells joined by tabs, sorted.
func wireLines(res *QueryResult) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, c := range row {
			if c == nil {
				cells[j] = "NULL"
			} else {
				cells[j] = *c
			}
		}
		out[i] = strings.Join(cells, "\t")
	}
	sort.Strings(out)
	return out
}

// oracleWireLines renders the oracle's rows in the server's wire text format
// for comparison against wireLines output.
func oracleWireLines(t *testing.T, sql string) []string {
	t.Helper()
	rows, _ := fixture(t)
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("oracle parse: %v", err)
	}
	root, err := plan.Build(stmt, queries.Catalog())
	if err != nil {
		t.Fatalf("oracle plan: %v", err)
	}
	db := dbms.NewDatabase()
	for name, tableRows := range rows {
		schema, _ := queries.Catalog().Table(name)
		db.Load(name, schema, tableRows)
	}
	res, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatalf("oracle execute: %v", err)
	}
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			if v.IsNull() {
				cells[j] = "NULL"
			} else {
				cells[j] = TextValue(v)
			}
		}
		out[i] = strings.Join(cells, "\t")
	}
	sort.Strings(out)
	return out
}

func diffLines(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d differs\n  got:  %s\n  want: %s", label, i, got[i], want[i])
		}
	}
}
