package server

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/plan"
	"ysmart/internal/reuse"
	"ysmart/internal/translator"
)

// Config tunes a Server. The zero value is not usable; fill the required
// fields and call New.
type Config struct {
	// Catalog resolves table names for planning. Required.
	Catalog plan.Catalog
	// Cluster builds the simulated cluster model of one session runtime
	// (each session gets a private engine; cluster models hold mutable
	// state and must not be shared). Required.
	Cluster func() *mapreduce.Cluster
	// Mode is the translation mode (defaults to YSmart).
	Mode translator.Mode
	// Workers sets each session engine's worker-pool size (0 = NumCPU).
	Workers int
	// MaxInflight bounds concurrently executing queries (< 1 means 1).
	MaxInflight int
	// MaxQueued bounds the admission FIFO queue (< 0 means 0).
	MaxQueued int
	// QueryTimeout bounds one query's admission wait + execution
	// (0 = unlimited). A run that exceeds it is abandoned, not aborted:
	// the client gets SQLSTATE 57014 immediately and the slot frees when
	// the run completes.
	QueryTimeout time.Duration
	// CacheSize bounds the plan cache's entry count (< 1 means 1).
	CacheSize int
	// Registry receives server metrics (nil: a private registry).
	Registry *obs.Registry
	// Logger receives structured server events (nil: silent).
	Logger *obs.Logger
	// Manimal enables the MANIMAL-style scan rewrites on translated
	// plans: every lowered chain gets the early-filter prefilters its
	// scan facts prove sound, and optimized plans are cached under keys
	// (and DFS path prefixes) disjoint from plain ones.
	Manimal bool
	// Reuse enables the cross-query materialized-output store: job
	// outputs are recorded under canonical sub-plan fingerprints and
	// later queries — from any session — skip jobs whose artifacts are
	// still valid. Re-registering a dataset (RegisterDataset) bumps its
	// validity epoch, forcing dependent artifacts cold.
	Reuse bool
	// ReuseCapBytes bounds the reuse store's artifact bytes (0 =
	// unbounded); the cost-model eviction policy decides what survives.
	ReuseCapBytes int64
}

// Server is the long-running SQL service: a TCP listener speaking the
// PostgreSQL simple query protocol, a shared plan cache, a shared admission
// controller, and one session per connection. Start it with Serve on a
// listener; stop it with Shutdown.
type Server struct {
	cfg       Config
	cache     *PlanCache
	admission *Admission
	reg       *obs.Registry
	logger    *obs.Logger
	store     *reuse.Store        // nil unless Config.Reuse
	tables    map[string][]string // pre-encoded base table lines; guarded by mu

	mu       sync.Mutex
	ln       net.Listener
	sessions map[int64]*session
	nextID   int64
	closed   bool
	wg       sync.WaitGroup
}

// New builds a server from cfg and the datasets to register (row form;
// encoded once, shared by every session). It does not listen yet.
func New(cfg Config, tables map[string][]string) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("server: Config.Catalog is required")
	}
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("server: Config.Cluster is required")
	}
	if cfg.Mode == 0 {
		cfg.Mode = translator.YSmart
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// Copy the dataset map: RegisterDataset mutates it later, and the
	// caller's map must not change under them.
	cp := make(map[string][]string, len(tables))
	for name, lines := range tables {
		cp[name] = lines
	}
	tables = cp
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		logger:    cfg.Logger,
		tables:    tables,
		cache:     NewPlanCache(cfg.CacheSize, cfg.Mode, cfg.Catalog, reg),
		admission: NewAdmission(cfg.MaxInflight, cfg.MaxQueued, reg),
		sessions:  make(map[int64]*session),
	}
	s.cache.SetOptimize(cfg.Manimal)
	if cfg.Reuse {
		s.store = reuse.NewStore(cfg.ReuseCapBytes, reg)
	}
	return s, nil
}

// ReuseStore exposes the cross-query reuse store (nil when Config.Reuse
// is off) for stats endpoints and tests.
func (s *Server) ReuseStore() *reuse.Store { return s.store }

// RegisterDataset registers or replaces a dataset (pre-encoded lines, as
// from EncodeTables). Sessions opened after the call are preloaded with
// the new content; with reuse enabled, the table's validity epoch is
// bumped under the same lock, so artifacts derived from the old content
// are never served against the new data (and vice versa — each session
// validates lookups against the epoch snapshot taken when its tables
// were copied).
func (s *Server) RegisterDataset(name string, lines []string) {
	cp := append([]string(nil), lines...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[name] = cp
	if s.store != nil {
		s.store.BumpPath(translator.TablePath(name))
	}
}

// Registry exposes the server's metrics registry (for the admin plane).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Cache exposes the shared plan cache (for stats endpoints and tests).
func (s *Server) Cache() *PlanCache { return s.cache }

// Admission exposes the shared admission controller.
func (s *Server) Admission() *Admission { return s.admission }

// Listen binds addr (host:port; port 0 picks a free port) and starts
// serving connections in background goroutines. It returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(ln)
	}()
	return ln.Addr().String(), nil
}

// acceptLoop accepts until the listener closes.
func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // Shutdown closed the listener
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.nextID++
		id := s.nextID
		sess, err := newSession(s, id, conn)
		if err != nil {
			s.mu.Unlock()
			s.logf(obs.LevelError, "session.init_failed", id, err.Error())
			conn.Close()
			continue
		}
		s.sessions[id] = sess
		s.reg.Set("ysmart_server_sessions", float64(len(s.sessions)))
		s.reg.Add("ysmart_server_connections_total", 1)
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			sess.serve()
			s.mu.Lock()
			delete(s.sessions, id)
			s.reg.Set("ysmart_server_sessions", float64(len(s.sessions)))
			s.mu.Unlock()
		}()
	}
}

// Sessions snapshots every live session for the admin plane's /sessions
// endpoint, sorted by session id.
func (s *Server) Sessions() []SessionStatus {
	s.mu.Lock()
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	out := make([]SessionStatus, len(live))
	for i, sess := range live {
		out[i] = sess.status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Shutdown stops the server gracefully: the listener closes, the admission
// controller drains (queued queries rejected, in-flight queries given up to
// timeout to finish), and every session connection is closed. It reports
// whether the drain reached idle within the timeout.
func (s *Server) Shutdown(timeout time.Duration) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return true
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	idle := s.admission.Drain(timeout)
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.logf(obs.LevelInfo, "server.shutdown", 0, fmt.Sprintf("drained=%v", idle))
	return idle
}

// logf emits one structured server event tagged with the session id.
func (s *Server) logf(level obs.Level, event string, sessionID int64, detail string) {
	if !s.logger.Enabled(level) {
		return
	}
	fields := []obs.Field{obs.F("session", sessionID), obs.F("detail", detail)}
	switch level {
	case obs.LevelError:
		s.logger.Error(event, fields...)
	case obs.LevelWarn:
		s.logger.Warn(event, fields...)
	default:
		s.logger.Info(event, fields...)
	}
}
