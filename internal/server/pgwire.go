// Package server turns the batch translator into a long-running SQL
// service: a TCP server speaking the PostgreSQL simple query protocol
// (startup handshake, Query, RowDescription/DataRow/CommandComplete,
// ErrorResponse, Terminate), so a stock psql client can submit queries
// against the registered datasets. Each connection gets a session that
// runs queries through a shared concurrency-safe plan cache (normalized
// SQL -> parsed/planned/translated chain, internal/translator.NormalizeSQL)
// and an admission controller (bounded in-flight semaphore with a FIFO
// wait queue and per-query timeout), executing on a per-session simulated
// runtime that reuses the engine worker pool, fault plan and logger.
//
// The protocol subset is deliberately small but real: v3 startup (plus
// SSLRequest/GSSENCRequest refusal), AuthenticationOk trust auth,
// ParameterStatus, BackendKeyData, ReadyForQuery, simple Query with text
// result format, EmptyQueryResponse, ErrorResponse with SQLSTATE fields,
// and graceful Terminate. The extended (parse/bind/execute) protocol is
// not implemented; psql's default simple mode never needs it.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ysmart/internal/exec"
)

// Protocol constants of the PostgreSQL frontend/backend protocol v3.
const (
	protocolVersion3 = 196608   // 3.0
	sslRequestCode   = 80877103 // SSLRequest magic "version"
	gssEncReqCode    = 80877104 // GSSENCRequest magic "version"
	cancelReqCode    = 80877102 // CancelRequest magic "version"
)

// Backend (server -> client) message type bytes.
const (
	msgAuthentication   = 'R'
	msgParameterStatus  = 'S'
	msgBackendKeyData   = 'K'
	msgReadyForQuery    = 'Z'
	msgRowDescription   = 'T'
	msgDataRow          = 'D'
	msgCommandComplete  = 'C'
	msgEmptyQuery       = 'I'
	msgErrorResponse    = 'E'
	msgNoticeResponse   = 'N'
	msgParameterDesc    = 't'
	msgParseComplete    = '1'
	msgNoData           = 'n'
	msgPortalSuspended  = 's'
	msgBindComplete     = '2'
	msgCloseComplete    = '3'
	msgCopyInResponse   = 'G'
	msgCopyOutResponse  = 'H'
	msgFunctionCallResp = 'V'
)

// Frontend (client -> server) message type bytes.
const (
	msgQuery     = 'Q'
	msgTerminate = 'X'
	msgPassword  = 'p'
	msgParse     = 'P'
	msgBind      = 'B'
	msgExecute   = 'E'
	msgSync      = 'S'
	msgFlush     = 'H'
	msgDescribe  = 'D'
	msgClose     = 'C'
)

// PostgreSQL type OIDs for the simulator's value types (text format).
const (
	oidBool   = 16
	oidInt8   = 20
	oidFloat8 = 701
	oidText   = 25
)

// maxMessageLen bounds a single frontend message; a length beyond it is
// treated as a malformed or hostile stream and the connection is dropped.
const maxMessageLen = 1 << 20

// typeOID maps a simulator value type to its wire OID. Untyped (all-NULL)
// columns travel as text.
func typeOID(t exec.Type) (oid int32, size int16) {
	switch t {
	case exec.TypeBool:
		return oidBool, 1
	case exec.TypeInt:
		return oidInt8, 8
	case exec.TypeFloat:
		return oidFloat8, 8
	default:
		return oidText, -1
	}
}

// TextValue renders a value in the PostgreSQL text result format — the
// exact cell bytes a DataRow carries. Exported so wire clients (loadgen's
// oracle selfcheck, tests) can render expected rows the way the server
// does and compare byte-for-byte. NULLs never reach this function on the
// wire (they travel as a -1 length); a null value renders as "NULL", the
// spelling clients use for the nil cell in comparisons.
func TextValue(v exec.Value) string { return textValue(v) }

// textValue renders a value in the PostgreSQL text result format. The bool
// spelling is t/f (not Go's true/false); everything else matches
// exec.Value.String.
func textValue(v exec.Value) string {
	if v.T == exec.TypeBool {
		if v.B {
			return "t"
		}
		return "f"
	}
	return v.String()
}

// wireReader decodes frontend messages from a connection.
type wireReader struct {
	r *bufio.Reader
}

func newWireReader(r io.Reader) *wireReader {
	return &wireReader{r: bufio.NewReader(r)}
}

// startup reads one startup-phase packet: length + payload with no type
// byte. It returns the protocol "version" code and the remaining payload.
func (w *wireReader) startup() (code int32, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(w.r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := int32(binary.BigEndian.Uint32(lenBuf[:]))
	if n < 8 || n > maxMessageLen {
		return 0, nil, fmt.Errorf("startup packet length %d out of range", n)
	}
	body := make([]byte, n-4)
	if _, err := io.ReadFull(w.r, body); err != nil {
		return 0, nil, err
	}
	return int32(binary.BigEndian.Uint32(body[:4])), body[4:], nil
}

// next reads one regular frontend message (type byte + length + payload).
func (w *wireReader) next() (typ byte, payload []byte, err error) {
	t, err := w.r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(w.r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := int32(binary.BigEndian.Uint32(lenBuf[:]))
	if n < 4 || n > maxMessageLen {
		return 0, nil, fmt.Errorf("message %q length %d out of range", t, n)
	}
	body := make([]byte, n-4)
	if _, err := io.ReadFull(w.r, body); err != nil {
		return 0, nil, err
	}
	return t, body, nil
}

// startupParams parses the key/value tail of a StartupMessage.
func startupParams(payload []byte) map[string]string {
	params := map[string]string{}
	fields := splitCStrings(payload)
	for i := 0; i+1 < len(fields); i += 2 {
		params[fields[i]] = fields[i+1]
	}
	return params
}

// splitCStrings splits a NUL-delimited byte sequence, dropping the empty
// terminator field.
func splitCStrings(b []byte) []string {
	var out []string
	start := 0
	for i, c := range b {
		if c == 0 {
			if i > start {
				out = append(out, string(b[start:i]))
			} else {
				out = append(out, "")
			}
			start = i + 1
		}
	}
	if n := len(out); n > 0 && out[n-1] == "" {
		out = out[:n-1]
	}
	return out
}

// cString reads the NUL-terminated string at the front of payload (the
// Query message body).
func cString(payload []byte) string {
	for i, c := range payload {
		if c == 0 {
			return string(payload[:i])
		}
	}
	return string(payload)
}

// wireWriter encodes backend messages onto a connection. Messages
// accumulate in the bufio layer; flush sends them in one segment, which is
// what keeps a query's RowDescription/DataRow/CommandComplete/ReadyForQuery
// train a single write.
type wireWriter struct {
	w   *bufio.Writer
	buf []byte
}

func newWireWriter(w io.Writer) *wireWriter {
	return &wireWriter{w: bufio.NewWriter(w)}
}

// message begins a backend message of the given type; the returned slice
// accumulates the payload via the append helpers and end() frames it.
func (w *wireWriter) begin() { w.buf = w.buf[:0] }

func (w *wireWriter) end(typ byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(w.buf)+4))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.w.Write(w.buf)
	return err
}

func (w *wireWriter) flush() error { return w.w.Flush() }

func (w *wireWriter) int16(v int16) { w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(v)) }
func (w *wireWriter) int32(v int32) { w.buf = binary.BigEndian.AppendUint32(w.buf, uint32(v)) }
func (w *wireWriter) cstr(s string) { w.buf = append(append(w.buf, s...), 0) }
func (w *wireWriter) bytes(b []byte) {
	w.buf = append(w.buf, b...)
}

// authenticationOk writes AuthenticationOk (trust auth: no password round
// trip).
func (w *wireWriter) authenticationOk() error {
	w.begin()
	w.int32(0)
	return w.end(msgAuthentication)
}

// parameterStatus reports one server parameter to the client.
func (w *wireWriter) parameterStatus(key, value string) error {
	w.begin()
	w.cstr(key)
	w.cstr(value)
	return w.end(msgParameterStatus)
}

// backendKeyData sends the cancellation key pair (accepted, never used:
// CancelRequest connections are simply closed).
func (w *wireWriter) backendKeyData(pid, secret int32) error {
	w.begin()
	w.int32(pid)
	w.int32(secret)
	return w.end(msgBackendKeyData)
}

// readyForQuery signals the server is idle ('I'; the protocol's 'T'/'E'
// transaction states never arise — there are no transactions).
func (w *wireWriter) readyForQuery() error {
	w.begin()
	w.buf = append(w.buf, 'I')
	if err := w.end(msgReadyForQuery); err != nil {
		return err
	}
	return w.flush()
}

// rowDescription describes the result columns of a query.
func (w *wireWriter) rowDescription(schema *exec.Schema) error {
	w.begin()
	w.int16(int16(schema.Len()))
	for _, col := range schema.Cols {
		oid, size := typeOID(col.Type)
		w.cstr(col.Name)
		w.int32(0) // table OID: not a real catalog table
		w.int16(0) // attribute number
		w.int32(oid)
		w.int16(size)
		w.int32(-1) // type modifier
		w.int16(0)  // format: text
	}
	return w.end(msgRowDescription)
}

// dataRow writes one result row in text format.
func (w *wireWriter) dataRow(row exec.Row) error {
	w.begin()
	w.int16(int16(len(row)))
	for _, v := range row {
		if v.IsNull() {
			w.int32(-1)
			continue
		}
		s := textValue(v)
		w.int32(int32(len(s)))
		w.bytes([]byte(s))
	}
	return w.end(msgDataRow)
}

// commandComplete finishes a successful command with its tag
// (e.g. "SELECT 42").
func (w *wireWriter) commandComplete(tag string) error {
	w.begin()
	w.cstr(tag)
	return w.end(msgCommandComplete)
}

// emptyQueryResponse answers an empty query string.
func (w *wireWriter) emptyQueryResponse() error {
	w.begin()
	return w.end(msgEmptyQuery)
}

// errorResponse writes an ErrorResponse with severity/SQLSTATE/message
// fields. The caller still sends ReadyForQuery afterwards; a protocol-fatal
// error closes the connection instead.
func (w *wireWriter) errorResponse(sqlstate, message string) error {
	w.begin()
	w.buf = append(w.buf, 'S')
	w.cstr("ERROR")
	w.buf = append(w.buf, 'V')
	w.cstr("ERROR")
	w.buf = append(w.buf, 'C')
	w.cstr(sqlstate)
	w.buf = append(w.buf, 'M')
	w.cstr(message)
	w.buf = append(w.buf, 0)
	return w.end(msgErrorResponse)
}

// SQLSTATE codes the server emits.
const (
	sqlstateSyntaxError         = "42601" // syntax_error: parse/plan/translate failures
	sqlstateQueryCanceled       = "57014" // query_canceled: per-query timeout
	sqlstateTooManyConns        = "53300" // too_many_connections: admission queue full
	sqlstateShutdown            = "57P01" // admin_shutdown: graceful drain
	sqlstateProtocolViolation   = "08P01" // protocol_violation: unsupported message
	sqlstateFeatureNotSupported = "0A000" // feature_not_supported
)
