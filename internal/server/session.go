package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"ysmart/internal/datagen"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/translator"
)

// session is one client connection: its wire codec, its private simulated
// runtime (DFS + engine preloaded with the server's datasets) and its live
// status counters. The simple query protocol is strictly serial per
// connection, so the runtime never sees concurrent chains — with one
// exception: a timed-out query's run is abandoned, and the session waits
// for it to finish before executing the next query (the engine has no
// cancellation; see runQuery).
type session struct {
	id     int64
	srv    *Server
	conn   net.Conn
	reader *wireReader
	writer *wireWriter

	dfs    *mapreduce.DFS
	engine *mapreduce.Engine

	// reuseEpochs is the validity-epoch snapshot taken when this session
	// copied its base tables (nil when reuse is off). Lookups validate
	// against it, so the session only reuses artifacts consistent with
	// the data it actually serves — a dataset re-registered after connect
	// neither poisons nor borrows this session's artifacts. Immutable
	// after newSession.
	reuseEpochs map[string]int64

	// pending, when non-nil, is the completion signal of a timed-out,
	// abandoned run still executing on this session's engine; the next
	// query waits on it (the engine is single-chain). Only the session's
	// serve goroutine touches it.
	pending <-chan struct{}

	mu       sync.Mutex // guards the status fields below
	remote   string
	user     string
	database string
	started  time.Time
	queries  int64
	hits     int64
	errors   int64
	current  string // normalized SQL of the executing query, "" when idle
}

// SessionStatus is one session's row on the admin plane's /sessions
// endpoint.
type SessionStatus struct {
	ID        int64   `json:"id"`
	Remote    string  `json:"remote"`
	User      string  `json:"user,omitempty"`
	Database  string  `json:"database,omitempty"`
	AgeSecs   float64 `json:"age_seconds"`
	Queries   int64   `json:"queries"`
	CacheHits int64   `json:"cache_hits"`
	Errors    int64   `json:"errors"`
	Current   string  `json:"current_query,omitempty"`
}

// status snapshots the session for /sessions.
func (s *session) status() SessionStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStatus{
		ID:        s.id,
		Remote:    s.remote,
		User:      s.user,
		Database:  s.database,
		AgeSecs:   time.Since(s.started).Seconds(),
		Queries:   s.queries,
		CacheHits: s.hits,
		Errors:    s.errors,
		Current:   s.current,
	}
}

// newSession builds a session over an accepted connection with a fresh
// runtime sharing the server's pre-encoded table lines.
func newSession(srv *Server, id int64, conn net.Conn) (*session, error) {
	cluster := srv.cfg.Cluster()
	eng, err := mapreduce.NewEngine(mapreduce.NewDFS(), cluster)
	if err != nil {
		return nil, err
	}
	if srv.cfg.Workers > 0 {
		eng.SetWorkers(srv.cfg.Workers)
	}
	// All session engines record into the server's shared registry, so
	// /metrics merges per-job histograms across every connection; the
	// engine event stream joins the server's structured log.
	eng.Instrument(nil, srv.reg)
	eng.SetLogger(srv.logger)
	s := &session{
		id:      id,
		srv:     srv,
		conn:    conn,
		reader:  newWireReader(conn),
		writer:  newWireWriter(conn),
		dfs:     eng.DFS(),
		engine:  eng,
		remote:  conn.RemoteAddr().String(),
		started: time.Now(),
	}
	// The caller (acceptLoop) holds srv.mu, so the table copy and — with
	// reuse on — the epoch snapshot are atomic against RegisterDataset.
	for name, lines := range srv.tables {
		s.dfs.Write(translator.TablePath(name), lines)
	}
	if srv.store != nil {
		paths := make([]string, 0, len(srv.tables))
		for name := range srv.tables {
			paths = append(paths, translator.TablePath(name))
		}
		s.reuseEpochs = srv.store.SnapshotEpochs(paths)
	}
	return s, nil
}

// serve runs the whole connection: startup negotiation, the query loop,
// teardown. It never panics the server; any protocol or IO error just ends
// the session.
func (s *session) serve() {
	defer s.conn.Close()
	if err := s.handshake(); err != nil {
		s.srv.logf(obs.LevelWarn, "session.handshake_failed", s.id, err.Error())
		return
	}
	s.srv.logf(obs.LevelInfo, "session.open", s.id, s.remote)
	for {
		typ, payload, err := s.reader.next()
		if err != nil {
			s.srv.logf(obs.LevelInfo, "session.closed", s.id, err.Error())
			return
		}
		switch typ {
		case msgQuery:
			if err := s.handleQuery(cString(payload)); err != nil {
				s.srv.logf(obs.LevelInfo, "session.write_failed", s.id, err.Error())
				return
			}
		case msgTerminate:
			s.srv.logf(obs.LevelInfo, "session.terminated", s.id, s.remote)
			return
		default:
			// Extended-protocol or copy messages: refuse politely and keep
			// the connection usable for simple queries.
			_ = s.writer.errorResponse(sqlstateProtocolViolation,
				fmt.Sprintf("unsupported frontend message %q; only the simple query protocol is served", typ))
			if err := s.writer.readyForQuery(); err != nil {
				return
			}
		}
	}
}

// handshake performs the startup exchange: SSL/GSS refusal, the v3
// StartupMessage, trust auth, parameter reports and the first
// ReadyForQuery.
func (s *session) handshake() error {
	for {
		code, payload, err := s.reader.startup()
		if err != nil {
			return err
		}
		switch code {
		case sslRequestCode, gssEncReqCode:
			// Refuse encryption; psql falls back to plaintext.
			if _, err := s.conn.Write([]byte{'N'}); err != nil {
				return err
			}
		case cancelReqCode:
			// Cancellation connections carry no session; just drop them.
			return fmt.Errorf("cancel request connection")
		case protocolVersion3:
			params := startupParams(payload)
			s.mu.Lock()
			s.user = params["user"]
			s.database = params["database"]
			s.mu.Unlock()
			if err := s.writer.authenticationOk(); err != nil {
				return err
			}
			for _, kv := range [][2]string{
				{"server_version", "13.0 (ysmart simulated)"},
				{"server_encoding", "UTF8"},
				{"client_encoding", "UTF8"},
				{"DateStyle", "ISO, MDY"},
				{"integer_datetimes", "on"},
				{"standard_conforming_strings", "on"},
			} {
				if err := s.writer.parameterStatus(kv[0], kv[1]); err != nil {
					return err
				}
			}
			if err := s.writer.backendKeyData(int32(s.id), 0); err != nil {
				return err
			}
			return s.writer.readyForQuery()
		default:
			return fmt.Errorf("unsupported protocol version %d", code)
		}
	}
}

// handleQuery answers one simple Query message. The returned error is an IO
// error on the connection; query failures are reported to the client and
// return nil.
func (s *session) handleQuery(sql string) error {
	trimmed := strings.TrimSpace(sql)
	for strings.HasSuffix(trimmed, ";") {
		trimmed = strings.TrimSpace(strings.TrimSuffix(trimmed, ";"))
	}
	if trimmed == "" {
		if err := s.writer.emptyQueryResponse(); err != nil {
			return err
		}
		return s.writer.readyForQuery()
	}
	if tag, ok := sessionCommand(trimmed); ok {
		// SET/BEGIN/COMMIT-style session commands psql may send: accepted
		// as no-ops so scripts and \timing work against the simulator.
		if err := s.writer.commandComplete(tag); err != nil {
			return err
		}
		return s.writer.readyForQuery()
	}

	start := time.Now()
	err := s.runQuery(trimmed, start)
	if err != nil {
		s.mu.Lock()
		s.errors++
		s.mu.Unlock()
		sqlstate := sqlstateSyntaxError
		switch {
		case errors.Is(err, ErrQueryTimeout):
			sqlstate = sqlstateQueryCanceled
		case errors.Is(err, ErrQueueFull):
			sqlstate = sqlstateTooManyConns
		case errors.Is(err, ErrDraining):
			sqlstate = sqlstateShutdown
		}
		s.srv.reg.Add("ysmart_server_query_errors_total", 1)
		if werr := s.writer.errorResponse(sqlstate, err.Error()); werr != nil {
			return werr
		}
	}
	return s.writer.readyForQuery()
}

// runQuery resolves, admits and executes one statement, streaming its
// result. Client-facing failures come back as errors; wire-level write
// failures during streaming also surface here and end the session upstream.
func (s *session) runQuery(sql string, start time.Time) error {
	srv := s.srv
	if s.pending != nil {
		// An abandoned run is still using this session's engine; the
		// protocol already delivered its timeout error, so just wait.
		<-s.pending
		s.pending = nil
	}
	p, err := srv.cache.Get(sql)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.queries++
	if p.Hit {
		s.hits++
	}
	s.current = p.Normalized
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.current = ""
		s.mu.Unlock()
	}()

	var deadline time.Time
	if srv.cfg.QueryTimeout > 0 {
		deadline = start.Add(srv.cfg.QueryTimeout)
	}
	release, err := srv.admission.Acquire(deadline)
	if err != nil {
		p.Release()
		return err
	}

	// The engine cannot be interrupted mid-chain, so a timed-out run is
	// abandoned, not aborted: the client gets its error now, and the slot,
	// lease and session runtime are reclaimed when the run actually ends.
	// The session waits for that before its next query (serial runtimes).
	type outcome struct {
		rows []exec.Row
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		defer release()
		defer p.Release()
		o := outcome{}
		if srv.store != nil {
			// Rewrite the leased translation against the reuse store
			// (clones only — the cached Translation is never mutated, so
			// lease pooling stays safe), run what survived, then record
			// the executed jobs' outputs for future queries.
			rp := translator.ApplyReuseAt(p.Translation, srv.store, s.dfs, s.reuseEpochs)
			var stats *mapreduce.ChainStats
			stats, o.err = s.engine.RunChain(rp.Jobs)
			if o.err == nil {
				o.rows, o.err = rp.ReadResult(s.dfs)
			}
			if o.err == nil {
				rp.Record(srv.store, s.dfs, stats)
			}
		} else {
			_, o.err = s.engine.RunChain(p.Translation.Jobs)
			if o.err == nil {
				o.rows, o.err = p.Translation.ReadResult(s.dfs)
			}
		}
		done <- o
	}()

	var timeout <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		timeout = t.C
	}
	select {
	case o := <-done:
		if o.err != nil {
			return o.err
		}
		lat := time.Since(start).Seconds()
		srv.reg.Observe("ysmart_server_query_seconds", lat)
		srv.reg.Add("ysmart_server_queries_total", 1)
		return s.sendResult(p.Schema, o.rows)
	case <-timeout:
		srv.reg.Add("ysmart_server_query_timeouts_total", 1)
		finished := make(chan struct{})
		go func() { <-done; close(finished) }()
		s.pending = finished
		s.srv.logf(obs.LevelWarn, "session.query_abandoned", s.id, p.Normalized)
		return fmt.Errorf("%w after %s (run abandoned)", ErrQueryTimeout, srv.cfg.QueryTimeout)
	}
}

// sendResult streams RowDescription + DataRows + CommandComplete.
func (s *session) sendResult(schema *exec.Schema, rows []exec.Row) error {
	if err := s.writer.rowDescription(schema); err != nil {
		return err
	}
	for _, row := range rows {
		if err := s.writer.dataRow(row); err != nil {
			return err
		}
	}
	return s.writer.commandComplete(fmt.Sprintf("SELECT %d", len(rows)))
}

// sessionCommand recognizes statements a SQL client sends for session
// management; they are accepted as no-ops with their usual command tag.
func sessionCommand(sql string) (tag string, ok bool) {
	first := strings.ToUpper(sql)
	if i := strings.IndexAny(first, " \t\r\n"); i >= 0 {
		first = first[:i]
	}
	switch first {
	case "SET":
		return "SET", true
	case "BEGIN", "START":
		return "BEGIN", true
	case "COMMIT", "END":
		return "COMMIT", true
	case "ROLLBACK", "ABORT":
		return "ROLLBACK", true
	case "RESET":
		return "RESET", true
	case "DISCARD", "DEALLOCATE":
		return first, true
	}
	return "", false
}

// EncodeTables renders every table's rows in the engine row codec once, so
// sessions can share the immutable encoded lines instead of re-encoding per
// connection.
func EncodeTables(tables map[string][]exec.Row) map[string][]string {
	out := make(map[string][]string, len(tables))
	for name, rows := range tables {
		out[name] = datagen.Lines(rows)
	}
	return out
}
