package server

import (
	"sort"
	"strings"
	"testing"

	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/plan"
	"ysmart/internal/queries"
	"ysmart/internal/sqlparser"
)

// oracleWireLinesOver is oracleWireLines over an arbitrary data set, for
// checking results after a dataset was re-registered.
func oracleWireLinesOver(t *testing.T, sql string, rows map[string][]exec.Row) []string {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("oracle parse: %v", err)
	}
	root, err := plan.Build(stmt, queries.Catalog())
	if err != nil {
		t.Fatalf("oracle plan: %v", err)
	}
	db := dbms.NewDatabase()
	for name, tableRows := range rows {
		schema, _ := queries.Catalog().Table(name)
		db.Load(name, schema, tableRows)
	}
	res, err := dbms.Execute(root, db)
	if err != nil {
		t.Fatalf("oracle execute: %v", err)
	}
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			if v.IsNull() {
				cells[j] = "NULL"
			} else {
				cells[j] = TextValue(v)
			}
		}
		out[i] = strings.Join(cells, "\t")
	}
	sort.Strings(out)
	return out
}

// TestServerReuseAcrossSessions: with Config.Reuse on, a second session's
// identical query is served from artifacts the first session's run
// materialized — zero jobs re-executed, identical rows, hit counters on
// the shared registry.
func TestServerReuseAcrossSessions(t *testing.T) {
	srv, addr := startTestServer(t, func(c *Config) { c.Reuse = true })
	if srv.ReuseStore() == nil {
		t.Fatal("ReuseStore() is nil with Config.Reuse on")
	}

	cli1 := dialTest(t, addr)
	res1, err := cli1.Query(queries.QAGG)
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	if srv.ReuseStore().Len() == 0 {
		t.Fatal("cold run recorded no artifacts")
	}
	hitsBefore := srv.Registry().Value("ysmart_reuse_hits_total")

	cli2 := dialTest(t, addr)
	res2, err := cli2.Query(queries.QAGG)
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	diffLines(t, "warm session vs cold session", wireLines(res2), wireLines(res1))
	diffLines(t, "warm session vs oracle", wireLines(res2), oracleWireLines(t, queries.QAGG))
	if got := srv.Registry().Value("ysmart_reuse_hits_total"); got <= hitsBefore {
		t.Errorf("reuse hits %v after warm session, want > %v", got, hitsBefore)
	}
}

// TestServerReuseRegisterDatasetInvalidation is the satellite's epoch
// proof: re-registering a dataset bumps its validity epoch, so a session
// opened afterwards must re-execute cold against the new data (verified
// against the DBMS oracle over that data), while a session opened before
// keeps answering from the data it actually copied.
func TestServerReuseRegisterDatasetInvalidation(t *testing.T) {
	rows, _ := fixture(t)
	srv, addr := startTestServer(t, func(c *Config) { c.Reuse = true })

	// Session A runs cold over the fixture clicks and seeds the store.
	cliA := dialTest(t, addr)
	resA, err := cliA.Query(queries.QAGG)
	if err != nil {
		t.Fatalf("session A cold query: %v", err)
	}
	diffLines(t, "session A vs fixture oracle", wireLines(resA), oracleWireLines(t, queries.QAGG))

	// The dataset changes: half the click stream disappears.
	newClicks := rows["clicks"][:len(rows["clicks"])/2]
	srv.RegisterDataset("clicks", EncodeTables(map[string][]exec.Row{"clicks": newClicks})["clicks"])

	// Session B, opened after the re-registration, must not see session
	// A's artifacts: its rows must match the oracle over the NEW data.
	newRows := map[string][]exec.Row{}
	for name, r := range rows {
		newRows[name] = r
	}
	newRows["clicks"] = newClicks
	cliB := dialTest(t, addr)
	resB, err := cliB.Query(queries.QAGG)
	if err != nil {
		t.Fatalf("session B query: %v", err)
	}
	diffLines(t, "session B vs new-data oracle", wireLines(resB), oracleWireLinesOver(t, queries.QAGG, newRows))
	if got, old := strings.Join(wireLines(resB), "\n"), strings.Join(wireLines(resA), "\n"); got == old {
		t.Fatal("session B reproduced the pre-registration rows; the stale artifact was served")
	}

	// Session A still holds the old tables; re-running there must keep
	// answering over them — never over session B's artifacts.
	resA2, err := cliA.Query(queries.QAGG)
	if err != nil {
		t.Fatalf("session A warm query: %v", err)
	}
	diffLines(t, "session A after re-registration", wireLines(resA2), wireLines(resA))

	if got := srv.Registry().Value("ysmart_reuse_invalidations_total"); got == 0 {
		t.Error("no invalidation counted after dataset re-registration")
	}
}
