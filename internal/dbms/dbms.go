// Package dbms is a single-process pipelined query executor over logical
// plans. It plays two roles in the reproduction:
//
//   - It is the stand-in for the paper's "ideal parallel PostgreSQL"
//     baseline (§VII.D): a pipelined engine with no per-job start-up, no
//     intermediate materialization and no shuffle, whose cost is pure scan
//     bandwidth plus per-row CPU.
//
//   - It is the correctness oracle: every MapReduce execution of a query —
//     whatever translation mode produced it — must return exactly the rows
//     this executor returns.
//
// Join keys are compared with the same key-grouping semantics as the
// MapReduce engine (exec.Compare, under which two NULLs are equal), so both
// engines agree on every query; the workload generators never produce NULL
// join keys.
package dbms

import (
	"fmt"
	"sort"

	"ysmart/internal/exec"
	"ysmart/internal/plan"
	"ysmart/internal/sqlparser"
)

// Database holds named in-memory tables.
type Database struct {
	tables map[string]*table
}

type table struct {
	schema *exec.Schema
	rows   []exec.Row
	bytes  int64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*table)}
}

// Load registers a table. The rows slice is retained; callers must not
// mutate it afterwards.
func (db *Database) Load(name string, schema *exec.Schema, rows []exec.Row) {
	var bytes int64
	for _, r := range rows {
		bytes += int64(len(exec.EncodeRow(r))) + 1
	}
	db.tables[name] = &table{schema: schema, rows: rows, bytes: bytes}
}

// Stats accumulates the counters the cost model charges.
type Stats struct {
	// BytesScanned is the encoded size of every base-table scan performed.
	BytesScanned int64
	// RowsProcessed counts rows flowing through every operator.
	RowsProcessed int64
}

// CostModel converts Stats into simulated seconds for the pgsql bars of
// Fig. 10.
type CostModel struct {
	// DiskBandwidth is the sequential scan bandwidth (B/s).
	DiskBandwidth float64
	// CPUPerRow is the per-operator per-row processing cost (s).
	CPUPerRow float64
	// Parallelism divides the total cost (the paper assumes an ideal 400%
	// speedup for 4 cores by running 1/4 of the data).
	Parallelism float64
	// DataScale multiplies counters, mirroring mapreduce.Cluster.DataScale.
	DataScale float64
}

// DefaultCostModel matches the disk constants of the MapReduce cluster
// model so the comparison is apples-to-apples.
func DefaultCostModel() CostModel {
	return CostModel{
		DiskBandwidth: 60e6,
		CPUPerRow:     1e-6,
		Parallelism:   1,
		DataScale:     1,
	}
}

// Time converts the stats to simulated seconds.
func (cm CostModel) Time(s Stats) float64 {
	disk := float64(s.BytesScanned) * cm.DataScale / cm.DiskBandwidth
	cpu := float64(s.RowsProcessed) * cm.DataScale * cm.CPUPerRow
	return (disk + cpu) / cm.Parallelism
}

// Result is a query result with its execution counters.
type Result struct {
	Schema *exec.Schema
	Rows   []exec.Row
	Stats  Stats
}

// Execute runs the plan against the database.
func Execute(root plan.Node, db *Database) (*Result, error) {
	ex := &executor{db: db, scanned: make(map[string]bool)}
	rows, err := ex.eval(root)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: root.Schema(), Rows: rows, Stats: ex.stats}, nil
}

type executor struct {
	db      *Database
	stats   Stats
	scanned map[string]bool
}

func (ex *executor) eval(n plan.Node) ([]exec.Row, error) {
	switch x := n.(type) {
	case *plan.Scan:
		t, ok := ex.db.tables[x.Table]
		if !ok {
			return nil, fmt.Errorf("table %q not loaded", x.Table)
		}
		if t.schema.Len() != x.Schema().Len() {
			return nil, fmt.Errorf("table %q has %d columns, plan expects %d",
				x.Table, t.schema.Len(), x.Schema().Len())
		}
		// Disk is charged once per distinct table: the paper's PostgreSQL
		// baseline ran with a warmed buffer pool (§VII.D), so repeated
		// scans of the same table hit cache. CPU is charged per scan.
		if !ex.scanned[x.Table] {
			ex.scanned[x.Table] = true
			ex.stats.BytesScanned += t.bytes
		}
		ex.stats.RowsProcessed += int64(len(t.rows))
		return t.rows, nil

	case *plan.Filter:
		in, err := ex.eval(x.Child)
		if err != nil {
			return nil, err
		}
		pred, err := exec.Compile(x.Cond, x.Child.Schema())
		if err != nil {
			return nil, fmt.Errorf("filter: %w", err)
		}
		var out []exec.Row
		for _, r := range in {
			ok, err := exec.EvalPredicate(pred, r)
			if err != nil {
				return nil, fmt.Errorf("filter: %w", err)
			}
			if ok {
				out = append(out, r)
			}
		}
		ex.stats.RowsProcessed += int64(len(in))
		return out, nil

	case *plan.Project:
		in, err := ex.eval(x.Child)
		if err != nil {
			return nil, err
		}
		evs := make([]exec.Evaluator, len(x.Exprs))
		for i, e := range x.Exprs {
			ev, err := exec.Compile(e, x.Child.Schema())
			if err != nil {
				return nil, fmt.Errorf("project: %w", err)
			}
			evs[i] = ev
		}
		out := make([]exec.Row, len(in))
		for ri, r := range in {
			pr := make(exec.Row, len(evs))
			for i, ev := range evs {
				v, err := ev(r)
				if err != nil {
					return nil, fmt.Errorf("project: %w", err)
				}
				pr[i] = v
			}
			out[ri] = pr
		}
		ex.stats.RowsProcessed += int64(len(in))
		return out, nil

	case *plan.Rebind:
		return ex.eval(x.Child)

	case *plan.Join:
		return ex.evalJoin(x)

	case *plan.Aggregate:
		return ex.evalAggregate(x)

	case *plan.Sort:
		return ex.evalSort(x)

	case *plan.Limit:
		in, err := ex.eval(x.Child)
		if err != nil {
			return nil, err
		}
		if len(in) > x.N {
			in = in[:x.N]
		}
		return in, nil

	default:
		return nil, fmt.Errorf("dbms: unsupported node %T", n)
	}
}

func (ex *executor) evalJoin(x *plan.Join) ([]exec.Row, error) {
	left, err := ex.eval(x.Left)
	if err != nil {
		return nil, err
	}
	right, err := ex.eval(x.Right)
	if err != nil {
		return nil, err
	}
	var residual exec.Evaluator
	if x.Residual != nil {
		residual, err = exec.Compile(x.Residual, x.Schema())
		if err != nil {
			return nil, fmt.Errorf("join residual: %w", err)
		}
	}

	// Hash the right side on its keys.
	ht := make(map[string][]int, len(right))
	for ri, r := range right {
		key := joinKey(r, x.RightKeys)
		ht[key] = append(ht[key], ri)
	}

	leftW := x.Left.Schema().Len()
	rightW := x.Right.Schema().Len()
	rightMatched := make([]bool, len(right))
	var out []exec.Row
	for _, l := range left {
		key := joinKey(l, x.LeftKeys)
		matched := false
		for _, ri := range ht[key] {
			pair := exec.Concat(l, right[ri])
			if residual != nil {
				ok, err := exec.EvalPredicate(residual, pair)
				if err != nil {
					return nil, fmt.Errorf("join residual: %w", err)
				}
				if !ok {
					continue
				}
			}
			matched = true
			rightMatched[ri] = true
			out = append(out, pair)
		}
		if !matched && (x.Type == sqlparser.LeftOuterJoin || x.Type == sqlparser.FullOuterJoin) {
			out = append(out, exec.Concat(l, exec.NullRow(rightW)))
		}
	}
	if x.Type == sqlparser.RightOuterJoin || x.Type == sqlparser.FullOuterJoin {
		for ri, r := range right {
			if !rightMatched[ri] {
				out = append(out, exec.Concat(exec.NullRow(leftW), r))
			}
		}
	}
	ex.stats.RowsProcessed += int64(len(left) + len(right) + len(out))
	return out, nil
}

func joinKey(r exec.Row, keys []int) string {
	vals := make([]exec.Value, len(keys))
	for i, k := range keys {
		vals[i] = r[k]
	}
	return exec.EncodeKey(vals)
}

func (ex *executor) evalAggregate(x *plan.Aggregate) ([]exec.Row, error) {
	in, err := ex.eval(x.Child)
	if err != nil {
		return nil, err
	}
	childSchema := x.Child.Schema()
	groupEvs := make([]exec.Evaluator, len(x.GroupBy))
	for i, g := range x.GroupBy {
		ev, err := exec.Compile(g, childSchema)
		if err != nil {
			return nil, fmt.Errorf("aggregate group: %w", err)
		}
		groupEvs[i] = ev
	}
	argEvs := make([]exec.Evaluator, len(x.Aggs))
	for i, spec := range x.Aggs {
		if spec.Arg == nil {
			continue
		}
		ev, err := exec.Compile(spec.Arg, childSchema)
		if err != nil {
			return nil, fmt.Errorf("aggregate arg: %w", err)
		}
		argEvs[i] = ev
	}

	type group struct {
		vals exec.Row
		accs []exec.Accumulator
	}
	groups := make(map[string]*group)
	var order []string
	for _, r := range in {
		gvals := make(exec.Row, len(groupEvs))
		for i, ev := range groupEvs {
			v, err := ev(r)
			if err != nil {
				return nil, fmt.Errorf("aggregate group: %w", err)
			}
			gvals[i] = v
		}
		key := exec.EncodeKey(gvals)
		g, ok := groups[key]
		if !ok {
			g = &group{vals: gvals, accs: make([]exec.Accumulator, len(x.Aggs))}
			for i, spec := range x.Aggs {
				g.accs[i] = exec.NewAccumulator(spec.Kind)
			}
			groups[key] = g
			order = append(order, key)
		}
		for i := range x.Aggs {
			if argEvs[i] == nil {
				g.accs[i].Add(exec.Int(1))
				continue
			}
			v, err := argEvs[i](r)
			if err != nil {
				return nil, fmt.Errorf("aggregate arg: %w", err)
			}
			g.accs[i].Add(v)
		}
	}
	ex.stats.RowsProcessed += int64(len(in))

	if len(order) == 0 && len(x.GroupBy) == 0 {
		out := make(exec.Row, len(x.Aggs))
		for i, spec := range x.Aggs {
			out[i] = exec.NewAccumulator(spec.Kind).Result()
		}
		return []exec.Row{out}, nil
	}
	sort.Strings(order)
	out := make([]exec.Row, 0, len(order))
	for _, key := range order {
		g := groups[key]
		row := make(exec.Row, 0, len(g.vals)+len(g.accs))
		row = append(row, g.vals...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	return out, nil
}

func (ex *executor) evalSort(x *plan.Sort) ([]exec.Row, error) {
	in, err := ex.eval(x.Child)
	if err != nil {
		return nil, err
	}
	childSchema := x.Child.Schema()
	evs := make([]exec.Evaluator, len(x.Keys))
	for i, k := range x.Keys {
		ev, err := exec.Compile(k.Expr, childSchema)
		if err != nil {
			return nil, fmt.Errorf("sort: %w", err)
		}
		evs[i] = ev
	}
	out := make([]exec.Row, len(in))
	copy(out, in)
	var evalErr error
	sort.SliceStable(out, func(i, j int) bool {
		for ki, ev := range evs {
			vi, err := ev(out[i])
			if err != nil {
				evalErr = err
				return false
			}
			vj, err := ev(out[j])
			if err != nil {
				evalErr = err
				return false
			}
			c := exec.Compare(vi, vj)
			if c == 0 {
				continue
			}
			if x.Keys[ki].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if evalErr != nil {
		return nil, fmt.Errorf("sort: %w", evalErr)
	}
	ex.stats.RowsProcessed += int64(len(in))
	return out, nil
}

// SortedLines encodes result rows and sorts them lexicographically — the
// canonical form used to compare engines (MapReduce output order is
// reduce-key order, which differs from pipeline order).
func SortedLines(rows []exec.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = exec.EncodeRow(r)
	}
	sort.Strings(out)
	return out
}
